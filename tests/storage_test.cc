#include <gtest/gtest.h>

#include "storage/storage.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::D;
using testutil::TestDb;

TEST(StorageTest, InsertRoutesToPartitionAndSegment) {
  TestDb db(4);
  const TableDescriptor* orders = db.CreateOrdersTable(24);
  TableStore* store = db.storage.GetStore(orders->oid);
  ASSERT_NE(store, nullptr);

  std::vector<Row> rows;
  for (int day = 1; day <= 28; ++day) {
    rows.push_back({D(("2013-05-" + std::string(day < 10 ? "0" : "") +
                       std::to_string(day)).c_str()),
                    Datum::Double(day * 1.5), Datum::String("west")});
  }
  ASSERT_TRUE(store->InsertBatch(rows).ok());
  EXPECT_EQ(store->TotalRows(), 28u);

  // All rows are in the May-2013 leaf.
  Oid may = orders->partition_scheme->RouteValues({D("2013-05-01")});
  EXPECT_EQ(store->UnitTotalRows(may), 28u);

  // Hash distribution spread rows over more than one segment.
  int nonempty_segments = 0;
  for (int s = 0; s < 4; ++s) {
    if (!store->UnitRows(may, s).empty()) ++nonempty_segments;
  }
  EXPECT_GT(nonempty_segments, 1);
}

TEST(StorageTest, InsertOutOfRangeFails) {
  TestDb db(2);
  const TableDescriptor* orders = db.CreateOrdersTable(24);
  TableStore* store = db.storage.GetStore(orders->oid);
  Status st = store->Insert({D("2030-01-01"), Datum::Double(1), Datum::String("x")});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(StorageTest, ArityMismatchFails) {
  TestDb db(2);
  const TableDescriptor* orders = db.CreateOrdersTable(24);
  EXPECT_FALSE(db.storage.GetStore(orders->oid)->Insert({Datum::Int64(1)}).ok());
}

TEST(StorageTest, ReplicatedTableCopiesToAllSegments) {
  TestDb db(3);
  Schema schema({{"id", TypeId::kInt64}, {"name", TypeId::kString}});
  auto oid = db.catalog.CreateTable("dim", schema, TableDistribution::kReplicated, {});
  ASSERT_TRUE(oid.ok());
  const TableDescriptor* dim = db.catalog.FindTable(*oid);
  ASSERT_TRUE(db.storage.CreateStorage(dim).ok());
  TableStore* store = db.storage.GetStore(dim->oid);
  ASSERT_TRUE(store->Insert({Datum::Int64(1), Datum::String("a")}).ok());
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(store->UnitRows(dim->oid, s).size(), 1u);
  }
}

TEST(StorageTest, RandomDistributionRoundRobins) {
  TestDb db(2);
  Schema schema({{"x", TypeId::kInt64}});
  auto oid = db.catalog.CreateTable("rr", schema, TableDistribution::kRandom, {});
  ASSERT_TRUE(oid.ok());
  const TableDescriptor* table = db.catalog.FindTable(*oid);
  ASSERT_TRUE(db.storage.CreateStorage(table).ok());
  TableStore* store = db.storage.GetStore(table->oid);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store->Insert({Datum::Int64(i)}).ok());
  }
  EXPECT_EQ(store->UnitRows(table->oid, 0).size(), 5u);
  EXPECT_EQ(store->UnitRows(table->oid, 1).size(), 5u);
}

TEST(StorageTest, UnpartitionedUnitIsTableOid) {
  TestDb db(2);
  const TableDescriptor* t =
      db.CreatePlainTable("plain", Schema({{"x", TypeId::kInt64}}));
  EXPECT_EQ(db.storage.GetStore(t->oid)->UnitOids(), std::vector<Oid>{t->oid});
}

TEST(StorageTest, DuplicateStorageRejected) {
  TestDb db(2);
  const TableDescriptor* t =
      db.CreatePlainTable("plain", Schema({{"x", TypeId::kInt64}}));
  EXPECT_FALSE(db.storage.CreateStorage(t).ok());
}

TEST(StorageTest, MutableUnitRowsAllowsInPlaceEdits) {
  TestDb db(1);
  const TableDescriptor* t =
      db.CreatePlainTable("plain", Schema({{"x", TypeId::kInt64}}));
  TableStore* store = db.storage.GetStore(t->oid);
  ASSERT_TRUE(store->Insert({Datum::Int64(5)}).ok());
  std::vector<Row>* rows = store->MutableUnitRows(t->oid, 0);
  (*rows)[0][0] = Datum::Int64(6);
  EXPECT_EQ(store->UnitRows(t->oid, 0)[0][0].int64_value(), 6);
}

}  // namespace
}  // namespace mppdb
