// Concurrency stress: a PartitionSelector/DynamicScan join executed
// repeatedly on 8 segments in parallel mode — row-at-a-time and vectorized —
// to shake out races in PartitionPropagationHub, the Motion exchange barrier,
// the per-segment stats accumulators, and the per-worker kernel contexts of
// the batch path. Built and run under ThreadSanitizer by the
// tsan_parallel_stress ctest entry (see tests/CMakeLists.txt), where any
// race fails the build instead of flaking.

#include <gtest/gtest.h>

#include <memory>

#include "exec/executor.h"
#include "exec/plan.h"
#include "expr/expr.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::TestDb;

// Fig. 5(d) shape on 8 segments: dimension rows broadcast into a selector
// whose per-tuple selections feed the DynamicScan probe side of a hash join,
// gathered at the root.
PhysPtr BuildSelectorJoinPlan(const TableDescriptor* fact,
                              const TableDescriptor* dim) {
  auto dim_scan = std::make_shared<TableScanNode>(dim->oid, dim->oid,
                                                  std::vector<ColRefId>{11, 12});
  auto bcast = std::make_shared<MotionNode>(MotionKind::kBroadcast,
                                            std::vector<ColRefId>{}, dim_scan);
  // Selector predicate: fact.b (partition key, colref 2) = dim.id (11).
  ExprPtr pred =
      MakeComparison(CompareOp::kEq, MakeColumnRef(2, "b", TypeId::kInt64),
                     MakeColumnRef(11, "id", TypeId::kInt64));
  auto selector = std::make_shared<PartitionSelectorNode>(
      fact->oid, /*scan_id=*/1, std::vector<ColRefId>{2},
      std::vector<ExprPtr>{pred}, bcast);
  auto dyn_scan = std::make_shared<DynamicScanNode>(fact->oid, /*scan_id=*/1,
                                                    std::vector<ColRefId>{1, 2});
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{2},
      nullptr, selector, dyn_scan);
  return std::make_shared<MotionNode>(MotionKind::kGather,
                                      std::vector<ColRefId>{}, join);
}

TEST(ParallelStressTest, SelectorDynamicScanJoinOn8Segments) {
  TestDb db(8);
  // Fact: 512 rows over 16 partitions (b in [0, 160), width 10), hashed on a.
  const TableDescriptor* fact = db.CreateIntPartitionedTable("fact", 16);
  std::vector<Row> fact_rows;
  for (int64_t i = 0; i < 512; ++i) {
    fact_rows.push_back({Datum::Int64(i), Datum::Int64(i % 160)});
  }
  db.Insert(fact, fact_rows);
  // Dimension: ids hitting 5 of the 16 partitions.
  const TableDescriptor* dim = db.CreatePlainTable(
      "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
  std::vector<Row> dim_rows;
  for (int64_t id : {3, 17, 42, 88, 131}) {
    dim_rows.push_back({Datum::Int64(id), Datum::Int64(id * 2)});
  }
  db.Insert(dim, dim_rows);

  PhysPtr plan = BuildSelectorJoinPlan(fact, dim);

  // Serial oracle, once.
  auto oracle = db.executor.Execute(plan);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_FALSE(oracle->empty());
  ExecStats oracle_stats = db.executor.stats();
  // Dynamic elimination proof: only the 5 selected partitions are scanned.
  ASSERT_EQ(oracle_stats.PartitionsScanned(fact->oid), 5u);

  // Hammer the parallel path: fresh rendezvous state every iteration, same
  // rows and stats every time.
  Executor parallel(&db.catalog, &db.storage, Executor::Options{.parallel = true});
  for (int iteration = 0; iteration < 25; ++iteration) {
    auto result = parallel.Execute(plan);
    ASSERT_TRUE(result.ok()) << "iter " << iteration << ": "
                             << result.status().ToString();
    ASSERT_TRUE(*result == *oracle) << "iter " << iteration;
    ASSERT_TRUE(parallel.stats() == oracle_stats) << "iter " << iteration;
  }
}

// Same selector/DynamicScan join hammered through the vectorized kernel path
// composed with parallel mode: each segment worker owns its own kernel
// contexts and join pipelines, so any shared mutable state in the batch path
// shows up here (and as a race under the tsan_parallel_stress gate).
TEST(ParallelStressTest, VectorizedParallelSelectorJoinOn8Segments) {
  TestDb db(8);
  const TableDescriptor* fact = db.CreateIntPartitionedTable("fact", 16);
  std::vector<Row> fact_rows;
  for (int64_t i = 0; i < 512; ++i) {
    fact_rows.push_back({Datum::Int64(i), Datum::Int64(i % 160)});
  }
  db.Insert(fact, fact_rows);
  const TableDescriptor* dim = db.CreatePlainTable(
      "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
  std::vector<Row> dim_rows;
  for (int64_t id : {3, 17, 42, 88, 131}) {
    dim_rows.push_back({Datum::Int64(id), Datum::Int64(id * 2)});
  }
  db.Insert(dim, dim_rows);

  PhysPtr plan = BuildSelectorJoinPlan(fact, dim);

  auto oracle = db.executor.Execute(plan);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_FALSE(oracle->empty());
  ExecStats oracle_stats = db.executor.stats();

  Executor vec_parallel(&db.catalog, &db.storage,
                        Executor::Options{.parallel = true, .vectorized = true});
  for (int iteration = 0; iteration < 25; ++iteration) {
    auto result = vec_parallel.Execute(plan);
    ASSERT_TRUE(result.ok()) << "iter " << iteration << ": "
                             << result.status().ToString();
    ASSERT_TRUE(*result == *oracle) << "iter " << iteration;
    ASSERT_TRUE(vec_parallel.stats() == oracle_stats) << "iter " << iteration;
  }
}

TEST(ParallelStressTest, RedistributeExchangeRepeated) {
  TestDb db(8);
  const TableDescriptor* t = db.CreatePlainTable(
      "t", Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}), {0});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 400; ++i) {
    rows.push_back({Datum::Int64(i), Datum::Int64(i % 7)});
  }
  db.Insert(t, rows);

  // Redistribute on v (not the storage distribution key), then gather: every
  // segment both produces and consumes at the exchange.
  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                              std::vector<ColRefId>{1, 2});
  auto redist = std::make_shared<MotionNode>(MotionKind::kRedistribute,
                                             std::vector<ColRefId>{2}, scan);
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, redist);

  auto oracle = db.executor.Execute(gather);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_EQ(oracle->size(), 400u);
  ExecStats oracle_stats = db.executor.stats();

  Executor parallel(&db.catalog, &db.storage, Executor::Options{.parallel = true});
  for (int iteration = 0; iteration < 25; ++iteration) {
    auto result = parallel.Execute(gather);
    ASSERT_TRUE(result.ok()) << "iter " << iteration << ": "
                             << result.status().ToString();
    ASSERT_TRUE(*result == *oracle) << "iter " << iteration;
    ASSERT_TRUE(parallel.stats() == oracle_stats) << "iter " << iteration;
  }
}

}  // namespace
}  // namespace mppdb
