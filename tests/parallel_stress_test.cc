// Concurrency stress: a PartitionSelector/DynamicScan join executed
// repeatedly on 8 segments in parallel mode — row-at-a-time and vectorized —
// to shake out races in PartitionPropagationHub, the Motion exchange barrier,
// the per-segment stats accumulators, and the per-worker kernel contexts of
// the batch path. Built and run under ThreadSanitizer by the
// tsan_parallel_stress ctest entry (see tests/CMakeLists.txt), where any
// race fails the build instead of flaking.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "expr/expr.h"
#include "storage/storage.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::TestDb;

// Fig. 5(d) shape on 8 segments: dimension rows broadcast into a selector
// whose per-tuple selections feed the DynamicScan probe side of a hash join,
// gathered at the root.
PhysPtr BuildSelectorJoinPlan(const TableDescriptor* fact,
                              const TableDescriptor* dim) {
  auto dim_scan = std::make_shared<TableScanNode>(dim->oid, dim->oid,
                                                  std::vector<ColRefId>{11, 12});
  auto bcast = std::make_shared<MotionNode>(MotionKind::kBroadcast,
                                            std::vector<ColRefId>{}, dim_scan);
  // Selector predicate: fact.b (partition key, colref 2) = dim.id (11).
  ExprPtr pred =
      MakeComparison(CompareOp::kEq, MakeColumnRef(2, "b", TypeId::kInt64),
                     MakeColumnRef(11, "id", TypeId::kInt64));
  auto selector = std::make_shared<PartitionSelectorNode>(
      fact->oid, /*scan_id=*/1, std::vector<ColRefId>{2},
      std::vector<ExprPtr>{pred}, bcast);
  auto dyn_scan = std::make_shared<DynamicScanNode>(fact->oid, /*scan_id=*/1,
                                                    std::vector<ColRefId>{1, 2});
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{2},
      nullptr, selector, dyn_scan);
  return std::make_shared<MotionNode>(MotionKind::kGather,
                                      std::vector<ColRefId>{}, join);
}

TEST(ParallelStressTest, SelectorDynamicScanJoinOn8Segments) {
  TestDb db(8);
  // Fact: 512 rows over 16 partitions (b in [0, 160), width 10), hashed on a.
  const TableDescriptor* fact = db.CreateIntPartitionedTable("fact", 16);
  std::vector<Row> fact_rows;
  for (int64_t i = 0; i < 512; ++i) {
    fact_rows.push_back({Datum::Int64(i), Datum::Int64(i % 160)});
  }
  db.Insert(fact, fact_rows);
  // Dimension: ids hitting 5 of the 16 partitions.
  const TableDescriptor* dim = db.CreatePlainTable(
      "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
  std::vector<Row> dim_rows;
  for (int64_t id : {3, 17, 42, 88, 131}) {
    dim_rows.push_back({Datum::Int64(id), Datum::Int64(id * 2)});
  }
  db.Insert(dim, dim_rows);

  PhysPtr plan = BuildSelectorJoinPlan(fact, dim);

  // Serial oracle, once.
  auto oracle = db.executor.Execute(plan);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_FALSE(oracle->empty());
  ExecStats oracle_stats = db.executor.stats();
  // Dynamic elimination proof: only the 5 selected partitions are scanned.
  ASSERT_EQ(oracle_stats.PartitionsScanned(fact->oid), 5u);

  // Hammer the parallel path: fresh rendezvous state every iteration, same
  // rows and stats every time.
  Executor parallel(&db.catalog, &db.storage, Executor::Options{.parallel = true});
  for (int iteration = 0; iteration < 25; ++iteration) {
    auto result = parallel.Execute(plan);
    ASSERT_TRUE(result.ok()) << "iter " << iteration << ": "
                             << result.status().ToString();
    ASSERT_TRUE(*result == *oracle) << "iter " << iteration;
    ASSERT_TRUE(parallel.stats() == oracle_stats) << "iter " << iteration;
  }
}

// Same selector/DynamicScan join hammered through the vectorized kernel path
// composed with parallel mode: each segment worker owns its own kernel
// contexts and join pipelines, so any shared mutable state in the batch path
// shows up here (and as a race under the tsan_parallel_stress gate).
TEST(ParallelStressTest, VectorizedParallelSelectorJoinOn8Segments) {
  TestDb db(8);
  const TableDescriptor* fact = db.CreateIntPartitionedTable("fact", 16);
  std::vector<Row> fact_rows;
  for (int64_t i = 0; i < 512; ++i) {
    fact_rows.push_back({Datum::Int64(i), Datum::Int64(i % 160)});
  }
  db.Insert(fact, fact_rows);
  const TableDescriptor* dim = db.CreatePlainTable(
      "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
  std::vector<Row> dim_rows;
  for (int64_t id : {3, 17, 42, 88, 131}) {
    dim_rows.push_back({Datum::Int64(id), Datum::Int64(id * 2)});
  }
  db.Insert(dim, dim_rows);

  PhysPtr plan = BuildSelectorJoinPlan(fact, dim);

  auto oracle = db.executor.Execute(plan);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_FALSE(oracle->empty());
  ExecStats oracle_stats = db.executor.stats();

  Executor vec_parallel(&db.catalog, &db.storage,
                        Executor::Options{.parallel = true, .vectorized = true});
  for (int iteration = 0; iteration < 25; ++iteration) {
    auto result = vec_parallel.Execute(plan);
    ASSERT_TRUE(result.ok()) << "iter " << iteration << ": "
                             << result.status().ToString();
    ASSERT_TRUE(*result == *oracle) << "iter " << iteration;
    ASSERT_TRUE(vec_parallel.stats() == oracle_stats) << "iter " << iteration;
  }
}

TEST(ParallelStressTest, RedistributeExchangeRepeated) {
  TestDb db(8);
  const TableDescriptor* t = db.CreatePlainTable(
      "t", Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}), {0});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 400; ++i) {
    rows.push_back({Datum::Int64(i), Datum::Int64(i % 7)});
  }
  db.Insert(t, rows);

  // Redistribute on v (not the storage distribution key), then gather: every
  // segment both produces and consumes at the exchange.
  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                              std::vector<ColRefId>{1, 2});
  auto redist = std::make_shared<MotionNode>(MotionKind::kRedistribute,
                                             std::vector<ColRefId>{2}, scan);
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, redist);

  auto oracle = db.executor.Execute(gather);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_EQ(oracle->size(), 400u);
  ExecStats oracle_stats = db.executor.stats();

  Executor parallel(&db.catalog, &db.storage, Executor::Options{.parallel = true});
  for (int iteration = 0; iteration < 25; ++iteration) {
    auto result = parallel.Execute(gather);
    ASSERT_TRUE(result.ok()) << "iter " << iteration << ": "
                             << result.status().ToString();
    ASSERT_TRUE(*result == *oracle) << "iter " << iteration;
    ASSERT_TRUE(parallel.stats() == oracle_stats) << "iter " << iteration;
  }
}

// Zone-map synopses and secondary indexes both (re)build lazily on read
// paths with different protection: UnitSynopsis is lock-free under the
// segment-ownership contract, IndexLookup serializes on index_mu_. This
// stress runs them against each other: every slice is first staled via
// MutableUnitRows, then one owner thread per segment reads UnitSynopsis for
// all of its slices (each thread owns exactly one segment, as the contract
// requires) while prober threads hammer IndexLookup across all slices. Under
// the tsan_parallel_stress gate any overlap between the two rebuild paths —
// or a leak of synopsis state across segments — fails as a race.
TEST(ParallelStressTest, SynopsisReadsDuringLazyIndexBuilds) {
  constexpr int kSegments = 4;
  constexpr int64_t kRows = 4000;
  TestDb db(kSegments);
  const TableDescriptor* fact = db.CreateIntPartitionedTable("fact", 8);
  std::vector<Row> rows;
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back({Datum::Int64(i), Datum::Int64(i % 80)});
  }
  db.Insert(fact, rows);
  TableStore* store = db.storage.GetStore(fact->oid);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->CreateIndex(0).ok());

  // Stale every slice (still single-threaded) so the first UnitSynopsis and
  // IndexLookup in each thread below does a full lazy rebuild.
  const std::vector<Oid> units = store->UnitOids();
  for (Oid unit : units) {
    for (int segment = 0; segment < kSegments; ++segment) {
      store->MutableUnitRows(unit, segment);
    }
  }

  std::vector<std::thread> threads;
  std::vector<size_t> synopsis_rows(kSegments, 0);
  for (int segment = 0; segment < kSegments; ++segment) {
    threads.emplace_back([&, segment] {
      for (int iteration = 0; iteration < 50; ++iteration) {
        size_t total = 0;
        for (Oid unit : units) {
          total += store->UnitSynopsis(unit, segment).rollup.row_count;
        }
        synopsis_rows[static_cast<size_t>(segment)] = total;
      }
    });
  }
  std::vector<size_t> index_hits(kSegments, 0);
  for (int prober = 0; prober < kSegments; ++prober) {
    threads.emplace_back([&, prober] {
      size_t hits = 0;
      for (int64_t key = prober; key < kRows; key += kSegments * 4) {
        for (Oid unit : units) {
          for (int segment = 0; segment < kSegments; ++segment) {
            hits +=
                store->IndexLookup(unit, segment, 0, Datum::Int64(key)).size();
          }
        }
      }
      index_hits[static_cast<size_t>(prober)] = hits;
    });
  }
  for (std::thread& t : threads) t.join();

  size_t synopsis_total = 0;
  size_t hit_total = 0;
  for (size_t n : synopsis_rows) synopsis_total += n;
  for (size_t n : index_hits) hit_total += n;
  // Per-segment synopsis totals partition the table; each probed key (every
  // fourth value per prober, disjoint across probers) is found exactly once.
  EXPECT_EQ(synopsis_total, static_cast<size_t>(kRows));
  EXPECT_EQ(hit_total, static_cast<size_t>(kRows) / 4);
}

// Runtime join-filter rendezvous: the build-side Redistribute publishes the
// merged (global) join-filter summary from whichever worker arrives last at
// the exchange, and every worker's probe-side scan — sitting below its own
// Redistribute Motion — consumes it as soon as its segment resumes. This
// races PublishGlobalJoinFilter against FindGlobalJoinFilter from all eight
// probe slices every iteration; under the tsan_parallel_stress gate any
// publication that is not happens-before the probes fails as a race, and the
// stats equality below catches any lost or double publication.
TEST(ParallelStressTest, JoinFilterPublicationRacesParallelProbeScans) {
  TestDb db(8);
  const TableDescriptor* fact = db.CreatePlainTable(
      "fact", Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}), {0});
  std::vector<Row> fact_rows;
  for (int64_t i = 0; i < 600; ++i) {
    fact_rows.push_back({Datum::Int64(i), Datum::Int64(i % 500)});
  }
  db.Insert(fact, fact_rows);
  const TableDescriptor* dim = db.CreatePlainTable(
      "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
  std::vector<Row> dim_rows;
  for (int64_t id : {3, 17, 42, 88, 131, 257, 263, 499}) {
    dim_rows.push_back({Datum::Int64(id), Datum::Int64(id * 2)});
  }
  db.Insert(dim, dim_rows);

  // Both sides redistribute on the join key (neither is stored on it), so
  // the filter must be the cross-segment merged summary: published by the
  // build Motion, consumed by the probe scans below the probe Motion.
  auto dim_scan = std::make_shared<TableScanNode>(dim->oid, dim->oid,
                                                  std::vector<ColRefId>{11, 12});
  PhysPtr build_motion = std::make_shared<MotionNode>(
      MotionKind::kRedistribute, std::vector<ColRefId>{11}, dim_scan);
  JoinFilterAnnotations publish_ann;
  JoinFilterSpec spec;
  spec.filter_id = 0;
  spec.key_columns = {11};
  spec.build_rows_est = 8;
  spec.global = true;
  publish_ann.publishes.push_back(spec);
  build_motion =
      WithJoinFilters(build_motion, build_motion->children(), publish_ann);

  PhysPtr fact_scan = std::make_shared<TableScanNode>(
      fact->oid, fact->oid, std::vector<ColRefId>{1, 2});
  JoinFilterAnnotations probe_ann;
  JoinFilterProbe probe;
  probe.filter_id = 0;
  probe.key_columns = {2};
  probe.global = true;
  probe.below_motion = true;
  probe_ann.probes.push_back(probe);
  fact_scan = WithJoinFilters(fact_scan, fact_scan->children(), probe_ann);
  auto probe_motion = std::make_shared<MotionNode>(
      MotionKind::kRedistribute, std::vector<ColRefId>{2}, fact_scan);

  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{2},
      nullptr, build_motion, probe_motion);
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, join);

  auto oracle = db.executor.Execute(gather);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  // Each fact row with b in the dim id set joins once; b = i % 500 repeats
  // ids below 100 twice across 600 rows.
  ASSERT_FALSE(oracle->empty());
  ExecStats oracle_stats = db.executor.stats();
  ASSERT_EQ(oracle_stats.joinfilter_built, 1u);
  ASSERT_GT(oracle_stats.joinfilter_motion_rows_saved, 0u);

  for (const bool vectorized : {false, true}) {
    Executor parallel(
        &db.catalog, &db.storage,
        Executor::Options{.parallel = true, .vectorized = vectorized});
    for (int iteration = 0; iteration < 25; ++iteration) {
      auto result = parallel.Execute(gather);
      ASSERT_TRUE(result.ok()) << "iter " << iteration << ": "
                               << result.status().ToString();
      ASSERT_TRUE(*result == *oracle)
          << "iter " << iteration << " vectorized=" << vectorized;
      ASSERT_TRUE(parallel.stats() == oracle_stats)
          << "iter " << iteration << " vectorized=" << vectorized;
    }
  }
}

// Morsel dispatch stress: per-segment slices big enough to decompose into
// many morsels, executed across random morsel granularities (including sizes
// that are not chunk multiples, exercising the round-up) and random pool
// sizes — pools smaller than the segment count force every Motion
// suspension/resume path, and single-digit morsel sizes on a shared deque
// force steals. Every combination must reproduce the serial oracle's rows
// and stats bit for bit, in both the row and vectorized paths. Runs under
// the tsan_parallel_stress gate with the rest of this target.
TEST(ParallelStressTest, MorselDispatchRandomGranularitiesAndPoolSizes) {
  TestDb db(4);
  const TableDescriptor* t = db.CreatePlainTable(
      "t", Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}), {0});
  std::vector<Row> rows;
  // ~6000 rows per segment: several chunks per slice even at the auto morsel
  // size, dozens at the minimum.
  for (int64_t i = 0; i < 24000; ++i) {
    rows.push_back({Datum::Int64(i), Datum::Int64(i % 97)});
  }
  db.Insert(t, rows);

  // Filter (sargable on k, plus a residual on v) over the scan, redistributed
  // and gathered: morsel-ranged scans feed a Motion rendezvous.
  auto make_plan = [&]() -> PhysPtr {
    auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                                std::vector<ColRefId>{1, 2});
    ExprPtr pred = MakeComparison(
        CompareOp::kLt, MakeColumnRef(1, "k", TypeId::kInt64),
        MakeConst(Datum::Int64(20000)));
    auto filter = std::make_shared<FilterNode>(pred, scan);
    auto redist = std::make_shared<MotionNode>(MotionKind::kRedistribute,
                                               std::vector<ColRefId>{2}, filter);
    return std::make_shared<MotionNode>(MotionKind::kGather,
                                        std::vector<ColRefId>{}, redist);
  };
  PhysPtr plan = make_plan();

  auto oracle = db.executor.Execute(plan);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_EQ(oracle->size(), 20000u);
  ExecStats oracle_stats = db.executor.stats();

  std::mt19937 rng(20260809);
  for (const bool vectorized : {false, true}) {
    for (int iteration = 0; iteration < 10; ++iteration) {
      const int max_workers = 1 + static_cast<int>(rng() % 4);
      // Random granularity in [1, 3000]: mostly unaligned, rounded up to a
      // chunk multiple internally; small values mean many morsels per slice.
      const size_t morsel_rows = 1 + rng() % 3000;
      const bool morsels = iteration % 5 != 4;  // sprinkle morsels-off runs
      Executor parallel(&db.catalog, &db.storage,
                        Executor::Options{.parallel = true,
                                          .max_workers = max_workers,
                                          .morsels = morsels,
                                          .morsel_rows = morsel_rows,
                                          .vectorized = vectorized});
      auto result = parallel.Execute(plan);
      ASSERT_TRUE(result.ok())
          << "vec=" << vectorized << " workers=" << max_workers
          << " morsel_rows=" << morsel_rows << ": " << result.status().ToString();
      ASSERT_TRUE(*result == *oracle)
          << "vec=" << vectorized << " workers=" << max_workers
          << " morsel_rows=" << morsel_rows;
      ASSERT_TRUE(parallel.stats() == oracle_stats)
          << "vec=" << vectorized << " workers=" << max_workers
          << " morsel_rows=" << morsel_rows;
    }
  }

  // Fault sweep through actual morsel splits: with dozens of morsels per
  // slice racing on a 4-worker pool, an injected storage.scan_chunk or
  // motion fault must still yield either the oracle result (fault never
  // drew) or a clean typed error, and the executor must be whole for the
  // next iteration. Which morsel draws the fault is scheduling-dependent by
  // design; the outcome contract is not.
  Executor faulty(&db.catalog, &db.storage,
                  Executor::Options{.parallel = true,
                                    .max_workers = 4,
                                    .morsel_rows = 1024,
                                    .vectorized = true});
  for (const char* point : {"storage.scan_chunk", "motion.send", "motion.recv"}) {
    for (int iteration = 0; iteration < 6; ++iteration) {
      FaultInjector injector(static_cast<uint64_t>(iteration) * 7919 + 13);
      FaultSpec spec;
      spec.kind = FaultKind::kFatal;
      spec.probability = 0.4;
      spec.skip_first = iteration * 3;
      injector.Arm(point, spec);
      QueryContext ctx;
      ctx.set_fault_injector(&injector);
      auto result = faulty.Execute(plan, &ctx);
      if (result.ok()) {
        ASSERT_TRUE(*result == *oracle) << point << " iter " << iteration;
        ASSERT_TRUE(faulty.stats() == oracle_stats) << point << " iter " << iteration;
      } else {
        ASSERT_EQ(result.status().code(), StatusCode::kInternal)
            << point << " iter " << iteration << ": " << result.status().ToString();
      }
      auto retry = faulty.Execute(plan);
      ASSERT_TRUE(retry.ok()) << point << " iter " << iteration << ": "
                              << retry.status().ToString();
      ASSERT_TRUE(*retry == *oracle) << point << " iter " << iteration;
    }
  }
}

// --- Resilience under concurrency ------------------------------------------
//
// The three stress tests below race the cooperative-termination machinery
// against live parallel workers: an external cancel thread, a deadline that
// expires mid-rendezvous, and a memory budget the workers exhaust
// concurrently. Under the tsan_parallel_stress gate, any unsynchronized
// touch between Cancel()/the abort flag and the worker hot loops — or
// between a failed run's teardown and the next run — fails as a race.

TEST(ParallelStressTest, CancellationRacesParallelWorkers) {
  TestDb db(8);
  const TableDescriptor* fact = db.CreateIntPartitionedTable("fact", 16);
  std::vector<Row> fact_rows;
  for (int64_t i = 0; i < 512; ++i) {
    fact_rows.push_back({Datum::Int64(i), Datum::Int64(i % 160)});
  }
  db.Insert(fact, fact_rows);
  const TableDescriptor* dim = db.CreatePlainTable(
      "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
  std::vector<Row> dim_rows;
  for (int64_t id : {3, 17, 42, 88, 131}) {
    dim_rows.push_back({Datum::Int64(id), Datum::Int64(id * 2)});
  }
  db.Insert(dim, dim_rows);
  PhysPtr plan = BuildSelectorJoinPlan(fact, dim);

  auto oracle = db.executor.Execute(plan);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ExecStats oracle_stats = db.executor.stats();

  for (const bool vectorized : {false, true}) {
    Executor parallel(
        &db.catalog, &db.storage,
        Executor::Options{.parallel = true, .vectorized = vectorized});
    for (int iteration = 0; iteration < 15; ++iteration) {
      QueryContext ctx;
      // The cancel lands at an arbitrary point of the run — before the first
      // batch, mid-exchange, or after completion — and every landing must be
      // clean: either a full oracle-identical result or typed kCancelled.
      std::thread canceller([&ctx, iteration]() {
        for (int spin = 0; spin < iteration * 97; ++spin) {
          std::this_thread::yield();
        }
        ctx.Cancel();
      });
      auto result = parallel.Execute(plan, &ctx);
      canceller.join();
      if (result.ok()) {
        ASSERT_TRUE(*result == *oracle) << "iter " << iteration;
        ASSERT_TRUE(parallel.stats() == oracle_stats) << "iter " << iteration;
      } else {
        ASSERT_EQ(result.status().code(), StatusCode::kCancelled)
            << "iter " << iteration << ": " << result.status().ToString();
      }
      // The run after a cancellation must be whole again.
      ctx.Reset();
      auto retry = parallel.Execute(plan, &ctx);
      ASSERT_TRUE(retry.ok()) << "iter " << iteration << ": "
                              << retry.status().ToString();
      ASSERT_TRUE(*retry == *oracle) << "iter " << iteration;
      ASSERT_TRUE(parallel.stats() == oracle_stats) << "iter " << iteration;
    }
  }
}

TEST(ParallelStressTest, DeadlinesExpireAcrossParallelRendezvous) {
  TestDb db(8);
  const TableDescriptor* t = db.CreatePlainTable(
      "t", Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}), {0});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 400; ++i) {
    rows.push_back({Datum::Int64(i), Datum::Int64(i % 7)});
  }
  db.Insert(t, rows);
  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                              std::vector<ColRefId>{1, 2});
  auto redist = std::make_shared<MotionNode>(MotionKind::kRedistribute,
                                             std::vector<ColRefId>{2}, scan);
  PhysPtr plan = std::make_shared<MotionNode>(MotionKind::kGather,
                                              std::vector<ColRefId>{}, redist);

  auto oracle = db.executor.Execute(plan);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  Executor parallel(&db.catalog, &db.storage, Executor::Options{.parallel = true});
  for (int iteration = 0; iteration < 15; ++iteration) {
    QueryContext ctx;
    // Deadlines from "already expired" to "comfortably far": each must yield
    // either the full result or typed kDeadlineExceeded, with all eight
    // workers joined either way (Execute returning proves the join).
    ctx.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::microseconds(iteration * 400));
    auto result = parallel.Execute(plan, &ctx);
    if (result.ok()) {
      ASSERT_TRUE(*result == *oracle) << "iter " << iteration;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
          << "iter " << iteration << ": " << result.status().ToString();
    }
    ctx.Reset();
    auto retry = parallel.Execute(plan, &ctx);
    ASSERT_TRUE(retry.ok()) << "iter " << iteration << ": "
                            << retry.status().ToString();
    ASSERT_TRUE(*retry == *oracle) << "iter " << iteration;
  }
}

TEST(ParallelStressTest, BudgetExhaustionRacesParallelCharges) {
  TestDb db(8);
  const TableDescriptor* fact = db.CreateIntPartitionedTable("fact", 16);
  std::vector<Row> fact_rows;
  for (int64_t i = 0; i < 512; ++i) {
    fact_rows.push_back({Datum::Int64(i), Datum::Int64(i % 160)});
  }
  db.Insert(fact, fact_rows);
  const TableDescriptor* dim = db.CreatePlainTable(
      "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
  std::vector<Row> dim_rows;
  for (int64_t id : {3, 17, 42, 88, 131}) {
    dim_rows.push_back({Datum::Int64(id), Datum::Int64(id * 2)});
  }
  db.Insert(dim, dim_rows);
  PhysPtr plan = BuildSelectorJoinPlan(fact, dim);

  auto oracle = db.executor.Execute(plan);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  // Find the parallel run's peak, then sweep budgets across it: eight
  // workers race TryCharge against the shared accountant at every limit.
  Executor parallel(&db.catalog, &db.storage, Executor::Options{.parallel = true});
  QueryContext probe_ctx;
  probe_ctx.budget().set_limit(size_t{1} << 40);
  auto probe = parallel.Execute(plan, &probe_ctx);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const size_t peak = probe_ctx.budget().peak();
  ASSERT_GT(peak, 0u);

  for (int iteration = 0; iteration < 15; ++iteration) {
    QueryContext ctx;
    ctx.budget().set_limit(1 + (peak + 2) * static_cast<size_t>(iteration) / 12);
    auto result = parallel.Execute(plan, &ctx);
    if (result.ok()) {
      // Advisory shedding may change joinfilter/synopsis counters, never rows.
      ASSERT_TRUE(*result == *oracle) << "iter " << iteration;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted)
          << "iter " << iteration << ": " << result.status().ToString();
    }
    ctx.budget().set_limit(0);
    auto retry = parallel.Execute(plan, &ctx);
    ASSERT_TRUE(retry.ok()) << "iter " << iteration << ": "
                            << retry.status().ToString();
    ASSERT_TRUE(*retry == *oracle) << "iter " << iteration;
  }
}

}  // namespace
}  // namespace mppdb
