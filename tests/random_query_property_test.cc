// Property-based end-to-end test: generate random SQL queries over a
// partitioned star schema and assert that all four execution configurations
// agree on the result multiset:
//   1. Cascades optimizer, partition selection enabled,
//   2. Cascades optimizer, partition selection disabled,
//   3. Cascades optimizer, dynamic elimination disabled,
//   4. the legacy Planner.
// This is the strongest form of the paper's implicit contract: partition
// elimination — static or dynamic, under either optimizer — never changes
// query results, only the partitions touched.
//
// Each query additionally runs through the executor-mode matrix
// {serial, parallel} x {row-at-a-time, vectorized} x {data skipping on, off}
// x {morsels on, off, fine-grained} x {row-store, column-store, mixed-per-
// partition} — the morsel legs use a 4-worker pool
// above the 3 segments, and the fine-grained leg forces 1024-row morsels so
// steals and per-morsel stat shards are exercised — asserting bit-identical
// rows and ExecStats against the serial row-at-a-time oracle (zone-map skip
// counters are zeroed before comparing on-vs-off, since those are exactly
// what skipping is allowed to change), plus a runtime join-filter on/off
// toggle whose only allowed stats difference is the joinfilter_* counter
// family.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <utility>

#include "common/random.h"
#include "db/database.h"
#include "test_util.h"
#include "types/date.h"

namespace mppdb {
namespace {

using testutil::SameRows;

class RandomQueryTest : public ::testing::Test {
 protected:
  RandomQueryTest()
      : db_(3),
        db_parallel_(3, Executor::Options{.parallel = true}),
        db_vectorized_(3, Executor::Options{.vectorized = true}),
        db_parallel_vec_(3,
                         Executor::Options{.parallel = true, .vectorized = true}),
        db_noskip_(3, Executor::Options{.data_skipping = false}),
        db_noskip_vec_(3, Executor::Options{.vectorized = true,
                                            .data_skipping = false}),
        db_noskip_parallel_vec_(3, Executor::Options{.parallel = true,
                                                     .vectorized = true,
                                                     .data_skipping = false}),
        db_parallel_nomorsel_(3, Executor::Options{.parallel = true,
                                                   .max_workers = 4,
                                                   .morsels = false}),
        db_parallel_fine_(3, Executor::Options{.parallel = true,
                                               .max_workers = 4,
                                               .morsel_rows = 1024,
                                               .vectorized = true}),
        db_column_(3),
        db_column_vec_(3, Executor::Options{.parallel = true, .vectorized = true}),
        db_mixed_(3),
        db_nospill_(3, Executor::Options{.spill = false}),
        db_nospill_parallel_vec_(3, Executor::Options{.parallel = true,
                                                      .vectorized = true,
                                                      .spill = false}) {
    Random rng(4242);
    std::vector<Row> fact_rows;
    for (int i = 0; i < 600; ++i) {
      fact_rows.push_back({Datum::Int64(rng.UniformRange(0, 399)),
                           Datum::Int64(rng.UniformRange(1, 10)),
                           Datum::Double(rng.NextDouble() * 100)});
    }
    std::vector<Row> dim_rows;
    for (int k = 0; k < 400; k += 3) {
      dim_rows.push_back({Datum::Int64(k), Datum::Int64(k % 7),
                          Datum::String(k % 2 == 0 ? "even" : "odd")});
    }
    // All four executor-mode databases carry identical storage contents, so
    // any divergence below is an executor-mode difference.
    for (Database* db : AllModes()) {
      // fact(sk, qty, price) partitioned on sk into 16 ranges of 25.
      MPPDB_CHECK(db->CreatePartitionedTable(
                         "fact", Schema({{"sk", TypeId::kInt64},
                                         {"qty", TypeId::kInt64},
                                         {"price", TypeId::kDouble}}),
                         TableDistribution::kHashed, {1},
                         {{0, PartitionMethod::kRange}},
                         {partition_bounds::IntRanges(0, 25, 16)})
                      .ok());
      MPPDB_CHECK(db->CreateTable("dim", Schema({{"k", TypeId::kInt64},
                                                 {"grp", TypeId::kInt64},
                                                 {"tag", TypeId::kString}}),
                                  TableDistribution::kHashed, {0})
                      .ok());
      MPPDB_CHECK(db->Load("fact", fact_rows).ok());
      MPPDB_CHECK(db->Load("dim", dim_rows).ok());
      // Indexes on the join/partition keys: the reference legs may now pick
      // index access paths (range seeks, index joins), so the whole matrix
      // exercises them; the index-off leg below pins down their oracle.
      MPPDB_CHECK(db->Run("CREATE INDEX ON fact (sk)").ok());
      MPPDB_CHECK(db->Run("CREATE INDEX ON dim (k)").ok());
    }
    // Storage axis: same data, column-oriented (serial and parallel
    // vectorized) and mixed-per-partition. Encoded-data evaluation may only
    // change its own counters, never rows or downstream stats.
    for (Database* db : {&db_column_, &db_column_vec_}) {
      MPPDB_CHECK(db->Run("ALTER TABLE fact SET WITH (orientation = column)").ok());
      MPPDB_CHECK(db->Run("ALTER TABLE dim SET WITH (orientation = column)").ok());
    }
    for (int p = 0; p < 16; p += 2) {
      MPPDB_CHECK(db_mixed_
                      .Run("ALTER TABLE fact SET PARTITION r" + std::to_string(p) +
                           " WITH (orientation = column)")
                      .ok());
    }
  }

  std::vector<Database*> AllModes() {
    return {&db_,        &db_parallel_,    &db_vectorized_,
            &db_parallel_vec_, &db_noskip_, &db_noskip_vec_,
            &db_noskip_parallel_vec_, &db_parallel_nomorsel_,
            &db_parallel_fine_, &db_column_, &db_column_vec_, &db_mixed_,
            &db_nospill_, &db_nospill_parallel_vec_};
  }

  // Random predicate over the given column names (int-typed).
  std::string RandomPredicate(Random* rng, const std::vector<std::string>& columns,
                              int depth) {
    if (depth == 0 || rng->Bernoulli(0.55)) {
      const std::string& column = columns[rng->Uniform(columns.size())];
      switch (rng->Uniform(5)) {
        case 0:
          return column + " < " + std::to_string(rng->UniformRange(-50, 450));
        case 1:
          return column + " >= " + std::to_string(rng->UniformRange(-50, 450));
        case 2:
          return column + " = " + std::to_string(rng->UniformRange(0, 400));
        case 3:
          return column + " BETWEEN " + std::to_string(rng->UniformRange(0, 200)) +
                 " AND " + std::to_string(rng->UniformRange(150, 420));
        default:
          return column + " IN (" + std::to_string(rng->UniformRange(0, 400)) + ", " +
                 std::to_string(rng->UniformRange(0, 400)) + ", " +
                 std::to_string(rng->UniformRange(0, 400)) + ")";
      }
    }
    std::string op = rng->Bernoulli(0.6) ? " AND " : " OR ";
    return "(" + RandomPredicate(rng, columns, depth - 1) + op +
           RandomPredicate(rng, columns, depth - 1) + ")";
  }

  static void ZeroEncodedCounters(ExecStats* stats) {
    stats->chunks_encoded_eval = 0;
    stats->rows_late_materialized = 0;
    stats->encoded_bytes_scanned = 0;
    stats->colstore_rebuilds_shed = 0;
  }

  static void ZeroJoinFilterCounters(ExecStats* stats) {
    stats->joinfilter_built = 0;
    stats->joinfilter_probed = 0;
    stats->joinfilter_rows_rejected = 0;
    stats->joinfilter_chunks_skipped = 0;
    stats->joinfilter_motion_rows_saved = 0;
  }

  void CheckAllConfigsAgree(const std::string& sql) {
    QueryOptions reference_options;
    auto reference = db_.Run(sql, reference_options);
    ASSERT_TRUE(reference.ok()) << sql << "\n" << reference.status().ToString();

    // Executor-mode matrix: {serial, parallel} x {row, vectorized} x
    // {morsels on, off, fine-grained} must be bit-identical — same rows in
    // the same order, same ExecStats — with the serial row-at-a-time mode as
    // the oracle.
    for (Database* db : {&db_parallel_, &db_vectorized_, &db_parallel_vec_,
                         &db_parallel_nomorsel_, &db_parallel_fine_}) {
      auto mode_result = db->Run(sql, reference_options);
      ASSERT_TRUE(mode_result.ok())
          << sql << "\n" << mode_result.status().ToString();
      EXPECT_TRUE(reference->rows == mode_result->rows)
          << sql << " (parallel=" << db->exec_options().parallel
          << " vectorized=" << db->exec_options().vectorized << ")";
      EXPECT_TRUE(reference->stats == mode_result->stats)
          << sql << " (parallel=" << db->exec_options().parallel
          << " vectorized=" << db->exec_options().vectorized << ")";
    }

    // Storage axis: row-store, column-store, and mixed-per-partition must
    // produce bit-identical rows, and bit-identical stats once the encoded-
    // path counters — the only thing the encoded fast path may change — are
    // zeroed on the columnar side.
    for (Database* db : {&db_column_, &db_column_vec_, &db_mixed_}) {
      auto mode_result = db->Run(sql, reference_options);
      ASSERT_TRUE(mode_result.ok())
          << sql << "\n" << mode_result.status().ToString();
      ExecStats mode_stats = mode_result->stats;
      ZeroEncodedCounters(&mode_stats);
      EXPECT_TRUE(reference->rows == mode_result->rows)
          << sql << " (columnar, parallel=" << db->exec_options().parallel
          << " vectorized=" << db->exec_options().vectorized << ")";
      EXPECT_TRUE(reference->stats == mode_stats)
          << sql << " (columnar, parallel=" << db->exec_options().parallel
          << " vectorized=" << db->exec_options().vectorized << ")";
    }

    // Skipping-off modes: identical rows, and identical stats once the skip
    // counters — the only thing zone maps may change — are zeroed on the
    // skipping-on side. Join-filter counters are zeroed on both sides: how
    // many rows a filter probes (vs skips wholesale at chunk level) depends
    // on zone maps, but everything the filters feed downstream does not.
    ExecStats reference_noskip = reference->stats;
    reference_noskip.chunks_total = 0;
    reference_noskip.chunks_skipped = 0;
    reference_noskip.units_skipped = 0;
    ZeroJoinFilterCounters(&reference_noskip);
    for (Database* db : {&db_noskip_, &db_noskip_vec_, &db_noskip_parallel_vec_}) {
      auto mode_result = db->Run(sql, reference_options);
      ASSERT_TRUE(mode_result.ok())
          << sql << "\n" << mode_result.status().ToString();
      ExecStats mode_stats = mode_result->stats;
      ZeroJoinFilterCounters(&mode_stats);
      EXPECT_TRUE(reference->rows == mode_result->rows)
          << sql << " (skipping off, parallel=" << db->exec_options().parallel
          << " vectorized=" << db->exec_options().vectorized << ")";
      EXPECT_TRUE(reference_noskip == mode_stats)
          << sql << " (skipping off, parallel=" << db->exec_options().parallel
          << " vectorized=" << db->exec_options().vectorized << ")";
    }

    // Runtime join filters are transparent: with filters disabled the same
    // plan shape produces the same rows in the same order and bit-identical
    // stats except the joinfilter_* counters, which must all read zero.
    QueryOptions no_filters = reference_options;
    no_filters.enable_join_filters = false;
    auto unfiltered = db_.Run(sql, no_filters);
    ASSERT_TRUE(unfiltered.ok()) << sql << "\n" << unfiltered.status().ToString();
    EXPECT_TRUE(reference->rows == unfiltered->rows) << sql << " (filters off)";
    ExecStats reference_nofilter = reference->stats;
    ZeroJoinFilterCounters(&reference_nofilter);
    EXPECT_TRUE(reference_nofilter == unfiltered->stats)
        << sql << " (filters off)";

    // Index access paths: with the toggle off the optimizer plans exactly
    // as before indexes existed, yet the rows must be bit-identical — same
    // rows in the same order — and the index/top-N counters must read zero.
    // Scan-footprint stats are NOT compared: a seek can legitimately
    // displace a dynamic-elimination arrangement (different partitions
    // touched for the same answer); the shape-for-shape footprint contract
    // lives in index_exec_test.
    QueryOptions no_index = reference_options;
    no_index.enable_index_paths = false;
    auto unindexed = db_.Run(sql, no_index);
    ASSERT_TRUE(unindexed.ok()) << sql << "\n" << unindexed.status().ToString();
    EXPECT_TRUE(reference->rows == unindexed->rows) << sql << " (index off)";
    EXPECT_EQ(unindexed->stats.index_seeks, 0u) << sql;
    EXPECT_EQ(unindexed->stats.index_rows_read, 0u) << sql;
    EXPECT_EQ(unindexed->stats.topn_rows_cut, 0u) << sql;

    QueryOptions no_selection;
    no_selection.enable_partition_selection = false;
    auto unpruned = db_.Run(sql, no_selection);
    ASSERT_TRUE(unpruned.ok()) << sql;
    EXPECT_TRUE(SameRows(reference->rows, unpruned->rows)) << sql;

    QueryOptions no_dpe;
    no_dpe.enable_dynamic_elimination = false;
    auto static_only = db_.Run(sql, no_dpe);
    ASSERT_TRUE(static_only.ok()) << sql;
    EXPECT_TRUE(SameRows(reference->rows, static_only->rows)) << sql;

    QueryOptions legacy;
    legacy.optimizer = OptimizerKind::kLegacyPlanner;
    auto planner = db_.Run(sql, legacy);
    ASSERT_TRUE(planner.ok()) << sql;
    EXPECT_TRUE(SameRows(reference->rows, planner->rows)) << sql;

    // Pruning soundness: enabled never scans more than disabled. Compared
    // on index-free legs so both sides have the same plan shape — with
    // index paths in play, the cost model may pick a statically-pruned seek
    // over a dynamically-eliminated scan, and the two footprints are not
    // ordered.
    QueryOptions pruned_opts = no_index;
    pruned_opts.enable_index_join = false;
    auto pruned_plain = db_.Run(sql, pruned_opts);
    ASSERT_TRUE(pruned_plain.ok()) << sql;
    QueryOptions no_selection_plain = pruned_opts;
    no_selection_plain.enable_partition_selection = false;
    auto unpruned_plain = db_.Run(sql, no_selection_plain);
    ASSERT_TRUE(unpruned_plain.ok()) << sql;
    EXPECT_LE(pruned_plain->stats.TotalPartitionsScanned(),
              unpruned_plain->stats.TotalPartitionsScanned())
        << sql;
  }

  Database db_;
  Database db_parallel_;
  Database db_vectorized_;
  Database db_parallel_vec_;
  Database db_noskip_;
  Database db_noskip_vec_;
  Database db_noskip_parallel_vec_;
  Database db_parallel_nomorsel_;
  Database db_parallel_fine_;
  Database db_column_;
  Database db_column_vec_;
  Database db_mixed_;
  Database db_nospill_;
  Database db_nospill_parallel_vec_;
};

TEST_F(RandomQueryTest, SingleTableFilters) {
  Random rng(1);
  for (int trial = 0; trial < 60; ++trial) {
    std::string sql = "SELECT count(*), sum(qty) FROM fact WHERE " +
                      RandomPredicate(&rng, {"sk", "qty"}, 2);
    CheckAllConfigsAgree(sql);
  }
}

TEST_F(RandomQueryTest, JoinsWithRandomFilters) {
  Random rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    std::string sql =
        "SELECT count(*) FROM fact f JOIN dim d ON f.sk = d.k WHERE " +
        RandomPredicate(&rng, {"grp", "qty"}, 1);
    if (rng.Bernoulli(0.5)) {
      sql += " AND " + RandomPredicate(&rng, {"sk"}, 0);
    }
    CheckAllConfigsAgree(sql);
  }
}

TEST_F(RandomQueryTest, InSubqueries) {
  Random rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::string sql = "SELECT count(*), min(sk), max(sk) FROM fact WHERE sk IN "
                      "(SELECT k FROM dim WHERE " +
                      RandomPredicate(&rng, {"grp", "k"}, 1) + ")";
    CheckAllConfigsAgree(sql);
  }
}

TEST_F(RandomQueryTest, GroupByQueries) {
  Random rng(4);
  for (int trial = 0; trial < 25; ++trial) {
    std::string sql = "SELECT qty, count(*), avg(price) FROM fact WHERE " +
                      RandomPredicate(&rng, {"sk"}, 1) +
                      " GROUP BY qty ORDER BY qty";
    CheckAllConfigsAgree(sql);
  }
}

// Spill axis (DESIGN.md §14): random queries under random memory budgets,
// spill on vs off, composed with {serial, parallel} × {row, vectorized}.
// The property, per (query, budget, mode) cell:
//   - if spill-off succeeds, the budget never constrained anything mandatory
//     and spill-on must be bit-identical — rows, order, AND stats, so the
//     spill machinery is provably inert until the budget actually refuses;
//   - if spill-off fails kResourceExhausted, spill-on either completes with
//     exactly the unlimited oracle's rows (spilling is invisible in results)
//     or fails kResourceExhausted itself (Motion receive buffers and other
//     never-spilled mandatory charges can still exceed the budget);
//   - nothing else may happen, and no spill files survive either outcome.
TEST_F(RandomQueryTest, SpillOnOffBudgetSweepAgrees) {
  namespace fs = std::filesystem;
  const std::string spill_dir =
      (fs::temp_directory_path() /
       ("mppdb-random-spill-" + std::to_string(::getpid())))
          .string();
  fs::create_directories(spill_dir);
  const auto files_under = [&spill_dir]() {
    size_t n = 0;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(spill_dir, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (it->is_regular_file(ec)) ++n;
    }
    return n;
  };

  const std::pair<Database*, Database*> pairs[] = {
      {&db_, &db_nospill_},
      {&db_parallel_vec_, &db_nospill_parallel_vec_},
  };
  size_t spilled_cells = 0;  // cells where spilling rescued a refused query
  Random rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    std::string sql;
    switch (trial % 3) {
      case 0:
        sql = "SELECT qty, count(*), avg(price) FROM fact WHERE " +
              RandomPredicate(&rng, {"sk"}, 1) + " GROUP BY qty ORDER BY qty";
        break;
      case 1:
        sql = "SELECT count(*) FROM fact f JOIN dim d ON f.sk = d.k WHERE " +
              RandomPredicate(&rng, {"qty"}, 1);
        break;
      default:
        sql = "SELECT sk, qty FROM fact WHERE " +
              RandomPredicate(&rng, {"sk", "qty"}, 1) + " ORDER BY sk";
        break;
    }
    auto oracle = db_.Run(sql);
    ASSERT_TRUE(oracle.ok()) << sql << "\n" << oracle.status().ToString();

    for (const auto& [spill_db, nospill_db] : pairs) {
      for (int b = 0; b < 4; ++b) {
        const size_t budget = size_t{1} << rng.UniformRange(10, 17);
        QueryOptions options;
        options.memory_limit_bytes = budget;
        options.spill_dir = spill_dir;
        auto off = nospill_db->Run(sql, options);
        auto on = spill_db->Run(sql, options);
        const std::string cell =
            sql + " budget=" + std::to_string(budget) +
            " parallel=" + (spill_db->exec_options().parallel ? "1" : "0");
        if (off.ok()) {
          ASSERT_TRUE(on.ok()) << cell << ": " << on.status().ToString();
          EXPECT_TRUE(on->rows == off->rows) << cell;
          EXPECT_TRUE(on->stats == off->stats) << cell;
          EXPECT_EQ(on->stats.spill_bytes_written, 0u) << cell;
        } else {
          ASSERT_EQ(off.status().code(), StatusCode::kResourceExhausted)
              << cell << ": " << off.status().ToString();
          if (on.ok()) {
            EXPECT_TRUE(on->rows == oracle->rows) << cell;
            EXPECT_GT(on->stats.spill_bytes_written, 0u) << cell;
            ++spilled_cells;
          } else {
            EXPECT_EQ(on.status().code(), StatusCode::kResourceExhausted)
                << cell << ": " << on.status().ToString();
          }
        }
        EXPECT_EQ(files_under(), 0u) << cell << ": leaked spill files";
      }
    }
  }
  // The sweep is deterministic (fixed seed): the rescue branch — refused
  // without spilling, completed with it — must actually be exercised.
  EXPECT_GT(spilled_cells, 0u);
  std::error_code ec;
  fs::remove_all(spill_dir, ec);
}

TEST_F(RandomQueryTest, PreparedStatementsPruneConsistently) {
  Random rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    int64_t bound = rng.UniformRange(0, 420);
    QueryOptions with_param;
    with_param.params = {Datum::Int64(bound)};
    auto prepared = db_.Run("SELECT count(*) FROM fact WHERE sk < $1", with_param);
    ASSERT_TRUE(prepared.ok());
    auto inlined =
        db_.Run("SELECT count(*) FROM fact WHERE sk < " + std::to_string(bound));
    ASSERT_TRUE(inlined.ok());
    EXPECT_TRUE(SameRows(prepared->rows, inlined->rows)) << "bound=" << bound;
    // Both prune identically at run time.
    Oid fact_oid = db_.catalog().FindTable("fact")->oid;
    EXPECT_EQ(prepared->stats.PartitionsScanned(fact_oid),
              inlined->stats.PartitionsScanned(fact_oid));
  }
}

}  // namespace
}  // namespace mppdb
