#include <gtest/gtest.h>

#include "common/random.h"
#include "expr/interval.h"

namespace mppdb {
namespace {

Datum I(int64_t v) { return Datum::Int64(v); }

TEST(IntervalTest, EmptyDetection) {
  EXPECT_FALSE(Interval::All().IsEmpty());
  EXPECT_FALSE(Interval::Point(I(5)).IsEmpty());
  EXPECT_TRUE(Interval::RightOpen(I(5), I(5)).IsEmpty());
  EXPECT_FALSE(Interval::RightOpen(I(5), I(6)).IsEmpty());
  EXPECT_TRUE(Interval(IntervalBound::Exclusive(I(5)), IntervalBound::Inclusive(I(5)))
                  .IsEmpty());
  EXPECT_TRUE(Interval::Closed(I(7), I(6)).IsEmpty());
}

TEST(IntervalTest, Contains) {
  Interval in = Interval::RightOpen(I(10), I(20));
  EXPECT_TRUE(in.Contains(I(10)));
  EXPECT_TRUE(in.Contains(I(19)));
  EXPECT_FALSE(in.Contains(I(20)));
  EXPECT_FALSE(in.Contains(I(9)));
  EXPECT_FALSE(in.Contains(Datum::Null()));
  EXPECT_TRUE(Interval::All().Contains(I(-1000000)));
}

TEST(IntervalTest, IntersectAndOverlap) {
  Interval a = Interval::RightOpen(I(0), I(10));
  Interval b = Interval::RightOpen(I(5), I(15));
  Interval c = Interval::RightOpen(I(10), I(20));
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(a.Overlaps(c));  // [0,10) and [10,20) share no point
  Interval x = Interval::Intersect(a, b);
  EXPECT_TRUE(x.Contains(I(5)));
  EXPECT_TRUE(x.Contains(I(9)));
  EXPECT_FALSE(x.Contains(I(10)));
}

TEST(IntervalTest, ClosedTouchingOverlaps) {
  EXPECT_TRUE(Interval::Closed(I(0), I(10)).Overlaps(Interval::Closed(I(10), I(20))));
}

TEST(IntervalTest, ContainsInterval) {
  Interval outer = Interval::Closed(I(0), I(100));
  EXPECT_TRUE(outer.ContainsInterval(Interval::Closed(I(10), I(20))));
  EXPECT_TRUE(outer.ContainsInterval(Interval::Closed(I(0), I(100))));
  EXPECT_FALSE(outer.ContainsInterval(Interval::Closed(I(50), I(101))));
  EXPECT_TRUE(Interval::All().ContainsInterval(outer));
  EXPECT_FALSE(outer.ContainsInterval(Interval::All()));
}

TEST(ConstraintSetTest, FromComparison) {
  ConstraintSet lt = ConstraintSet::FromComparison(CompareOp::kLt, I(10));
  EXPECT_TRUE(lt.Contains(I(9)));
  EXPECT_FALSE(lt.Contains(I(10)));

  ConstraintSet ge = ConstraintSet::FromComparison(CompareOp::kGe, I(10));
  EXPECT_TRUE(ge.Contains(I(10)));
  EXPECT_FALSE(ge.Contains(I(9)));

  ConstraintSet eq = ConstraintSet::FromComparison(CompareOp::kEq, I(10));
  EXPECT_TRUE(eq.Contains(I(10)));
  EXPECT_FALSE(eq.Contains(I(11)));

  ConstraintSet ne = ConstraintSet::FromComparison(CompareOp::kNe, I(10));
  EXPECT_FALSE(ne.Contains(I(10)));
  EXPECT_TRUE(ne.Contains(I(11)));
  EXPECT_TRUE(ne.Contains(I(9)));
}

TEST(ConstraintSetTest, ComparisonWithNullIsNone) {
  EXPECT_TRUE(ConstraintSet::FromComparison(CompareOp::kEq, Datum::Null()).IsNone());
  EXPECT_TRUE(ConstraintSet::FromComparison(CompareOp::kLt, Datum::Null()).IsNone());
}

TEST(ConstraintSetTest, UnionMergesOverlapping) {
  ConstraintSet a = ConstraintSet::FromInterval(Interval::RightOpen(I(0), I(10)));
  ConstraintSet b = ConstraintSet::FromInterval(Interval::RightOpen(I(5), I(20)));
  ConstraintSet u = a.Union(b);
  EXPECT_EQ(u.intervals().size(), 1u);
  EXPECT_TRUE(u.Contains(I(0)));
  EXPECT_TRUE(u.Contains(I(19)));
  EXPECT_FALSE(u.Contains(I(20)));
}

TEST(ConstraintSetTest, UnionMergesTouching) {
  // [0,10) U [10,20) is contiguous.
  ConstraintSet u = ConstraintSet::FromInterval(Interval::RightOpen(I(0), I(10)))
                        .Union(ConstraintSet::FromInterval(Interval::RightOpen(I(10), I(20))));
  EXPECT_EQ(u.intervals().size(), 1u);
  EXPECT_TRUE(u.Contains(I(10)));
}

TEST(ConstraintSetTest, UnionKeepsGaps) {
  ConstraintSet u = ConstraintSet::FromInterval(Interval::RightOpen(I(0), I(5)))
                        .Union(ConstraintSet::FromInterval(Interval::RightOpen(I(10), I(15))));
  EXPECT_EQ(u.intervals().size(), 2u);
  EXPECT_FALSE(u.Contains(I(7)));
}

TEST(ConstraintSetTest, IntersectBasics) {
  ConstraintSet range = ConstraintSet::FromInterval(Interval::Closed(I(0), I(100)));
  ConstraintSet points = ConstraintSet::FromPoints({I(-5), I(50), I(105)});
  ConstraintSet x = range.Intersect(points);
  EXPECT_TRUE(x.Contains(I(50)));
  EXPECT_FALSE(x.Contains(I(-5)));
  EXPECT_FALSE(x.Contains(I(105)));
}

TEST(ConstraintSetTest, AllAndNone) {
  EXPECT_TRUE(ConstraintSet::All().IsAll());
  EXPECT_TRUE(ConstraintSet::None().IsNone());
  EXPECT_TRUE(ConstraintSet::All().Intersect(ConstraintSet::None()).IsNone());
  EXPECT_TRUE(ConstraintSet::All().Union(ConstraintSet::None()).IsAll());
  ConstraintSet x = ConstraintSet::FromComparison(CompareOp::kLt, I(3));
  EXPECT_TRUE(x.Intersect(ConstraintSet::All()).Contains(I(2)));
  EXPECT_TRUE(x.Union(ConstraintSet::All()).IsAll());
}

// Property: for randomized interval unions, membership in the union equals
// membership in at least one source interval, and intersect/union are
// consistent with boolean algebra on membership.
TEST(ConstraintSetPropertyTest, RandomizedAlgebraConsistency) {
  Random rng(20140622);
  for (int trial = 0; trial < 200; ++trial) {
    auto random_set = [&rng]() {
      ConstraintSet s = ConstraintSet::None();
      int n = static_cast<int>(rng.Uniform(4));
      for (int i = 0; i < n; ++i) {
        int64_t lo = rng.UniformRange(-50, 50);
        int64_t hi = lo + rng.UniformRange(0, 30);
        s = s.Union(ConstraintSet::FromInterval(
            rng.Bernoulli(0.5) ? Interval::RightOpen(I(lo), I(hi))
                               : Interval::Closed(I(lo), I(hi))));
      }
      return s;
    };
    ConstraintSet a = random_set();
    ConstraintSet b = random_set();
    ConstraintSet u = a.Union(b);
    ConstraintSet x = a.Intersect(b);
    for (int64_t v = -60; v <= 90; ++v) {
      bool in_a = a.Contains(I(v));
      bool in_b = b.Contains(I(v));
      EXPECT_EQ(u.Contains(I(v)), in_a || in_b) << "v=" << v;
      EXPECT_EQ(x.Contains(I(v)), in_a && in_b) << "v=" << v;
    }
  }
}

// Property: normalized interval lists are pairwise disjoint and sorted.
TEST(ConstraintSetPropertyTest, NormalizedFormIsDisjoint) {
  Random rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    ConstraintSet s = ConstraintSet::None();
    for (int i = 0; i < 6; ++i) {
      int64_t lo = rng.UniformRange(-100, 100);
      s = s.Union(ConstraintSet::FromInterval(
          Interval::RightOpen(I(lo), I(lo + rng.UniformRange(1, 40)))));
    }
    const auto& intervals = s.intervals();
    for (size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_FALSE(intervals[i - 1].Overlaps(intervals[i]));
      // Sorted: previous upper bound strictly below next lower bound.
      EXPECT_LT(Datum::Compare(intervals[i - 1].hi().value, intervals[i].lo().value),
                1);
    }
  }
}

}  // namespace
}  // namespace mppdb
