// Executor- and Database-level resilience integration tests: cooperative
// cancellation, deadlines (including the Motion-rendezvous hang regression),
// memory-budget enforcement with graceful shedding, transient-fault retries,
// DML safety under cancellation, and executor reuse after failed runs.
//
// Unit coverage of the building blocks lives in fault_injection_test.cc; the
// randomized fault × mode matrix lives in fault_matrix_test.cc.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "db/database.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "expr/expr.h"
#include "runtime/query_context.h"
#include "storage/storage.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::TestDb;

int64_t ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The parallel stress suite's Fig. 5(d) shape: broadcast dimension into a
// PartitionSelector feeding a DynamicScan probe of a hash join, gathered at
// the root. Exercises the hub, both Motion kinds, and the join — every
// subsystem the teardown/retry logic must reset.
PhysPtr BuildSelectorJoinPlan(const TableDescriptor* fact,
                              const TableDescriptor* dim) {
  auto dim_scan = std::make_shared<TableScanNode>(dim->oid, dim->oid,
                                                  std::vector<ColRefId>{11, 12});
  auto bcast = std::make_shared<MotionNode>(MotionKind::kBroadcast,
                                            std::vector<ColRefId>{}, dim_scan);
  ExprPtr pred =
      MakeComparison(CompareOp::kEq, MakeColumnRef(2, "b", TypeId::kInt64),
                     MakeColumnRef(11, "id", TypeId::kInt64));
  auto selector = std::make_shared<PartitionSelectorNode>(
      fact->oid, /*scan_id=*/1, std::vector<ColRefId>{2},
      std::vector<ExprPtr>{pred}, bcast);
  auto dyn_scan = std::make_shared<DynamicScanNode>(fact->oid, /*scan_id=*/1,
                                                    std::vector<ColRefId>{1, 2});
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{2},
      nullptr, selector, dyn_scan);
  return std::make_shared<MotionNode>(MotionKind::kGather,
                                      std::vector<ColRefId>{}, join);
}

struct JoinFixture {
  explicit JoinFixture(int segments = 4) : db(segments) {
    fact = db.CreateIntPartitionedTable("fact", 16);
    std::vector<Row> fact_rows;
    for (int64_t i = 0; i < 512; ++i) {
      fact_rows.push_back({Datum::Int64(i), Datum::Int64(i % 160)});
    }
    db.Insert(fact, fact_rows);
    dim = db.CreatePlainTable(
        "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
    std::vector<Row> dim_rows;
    for (int64_t id : {3, 17, 42, 88, 131}) {
      dim_rows.push_back({Datum::Int64(id), Datum::Int64(id * 2)});
    }
    db.Insert(dim, dim_rows);
    plan = BuildSelectorJoinPlan(fact, dim);
    auto oracle_result = db.executor.Execute(plan);
    MPPDB_CHECK(oracle_result.ok());
    oracle = std::move(oracle_result).value();
    oracle_stats = db.executor.stats();
  }

  TestDb db;
  const TableDescriptor* fact;
  const TableDescriptor* dim;
  PhysPtr plan;
  std::vector<Row> oracle;
  ExecStats oracle_stats;
};

// All four executor modes every resilience behavior must hold in.
const Executor::Options kModes[] = {
    {.parallel = false, .vectorized = false},
    {.parallel = false, .vectorized = true},
    {.parallel = true, .vectorized = false},
    {.parallel = true, .vectorized = true},
};

std::string ModeName(const Executor::Options& mode) {
  return std::string(mode.parallel ? "parallel" : "serial") + "/" +
         (mode.vectorized ? "vec" : "row");
}

// --- Cancellation ---------------------------------------------------------

TEST(ResilienceExecTest, PreCancelledContextStopsEveryMode) {
  JoinFixture fx;
  for (const Executor::Options& mode : kModes) {
    Executor exec(&fx.db.catalog, &fx.db.storage, mode);
    QueryContext ctx;
    ctx.Cancel();
    auto result = exec.Execute(fx.plan, &ctx);
    ASSERT_FALSE(result.ok()) << ModeName(mode);
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << ModeName(mode);

    // The context is reusable after Reset, and the executor after a failed
    // run: hub channels, exchanges, and filters were all torn down.
    ctx.Reset();
    auto retry = exec.Execute(fx.plan, &ctx);
    ASSERT_TRUE(retry.ok()) << ModeName(mode) << ": " << retry.status().ToString();
    EXPECT_TRUE(*retry == fx.oracle) << ModeName(mode);
    EXPECT_TRUE(exec.stats() == fx.oracle_stats) << ModeName(mode);
  }
}

TEST(ResilienceExecTest, CancelThreadTerminatesRunningQuery) {
  JoinFixture fx;
  for (const Executor::Options& mode : kModes) {
    Executor exec(&fx.db.catalog, &fx.db.storage, mode);
    // A 5 s stall at the first scan chunk gives the canceller a wide window;
    // the StopSource hook must cut it short as soon as Cancel lands.
    FaultInjector injector(1);
    FaultSpec stall;
    stall.kind = FaultKind::kDelay;
    stall.delay_ms = 5000;
    stall.max_fires = 1;
    injector.Arm("storage.scan_chunk", stall);

    QueryContext ctx;
    ctx.set_fault_injector(&injector);
    auto start = std::chrono::steady_clock::now();
    std::thread canceller([&ctx]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      ctx.Cancel();
    });
    auto result = exec.Execute(fx.plan, &ctx);
    canceller.join();
    ASSERT_FALSE(result.ok()) << ModeName(mode);
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << ModeName(mode);
    // Well under the injected 5 s stall: cancellation interrupted it.
    EXPECT_LT(ElapsedMs(start), 4000) << ModeName(mode);

    ctx.Reset();
    injector.Reset();
    auto retry = exec.Execute(fx.plan, &ctx);
    ASSERT_TRUE(retry.ok()) << ModeName(mode) << ": " << retry.status().ToString();
    EXPECT_TRUE(*retry == fx.oracle) << ModeName(mode);
  }
}

// --- Deadlines ------------------------------------------------------------

TEST(ResilienceExecTest, DeadlineExpiryIsTypedAndPrompt) {
  JoinFixture fx;
  for (const Executor::Options& mode : kModes) {
    Executor exec(&fx.db.catalog, &fx.db.storage, mode);
    FaultInjector injector(1);
    FaultSpec stall;
    stall.kind = FaultKind::kDelay;
    stall.delay_ms = 5000;
    stall.max_fires = 1;
    injector.Arm("storage.scan_chunk", stall);

    QueryContext ctx;
    ctx.set_fault_injector(&injector);
    ctx.SetTimeout(std::chrono::milliseconds(150));
    auto start = std::chrono::steady_clock::now();
    auto result = exec.Execute(fx.plan, &ctx);
    ASSERT_FALSE(result.ok()) << ModeName(mode);
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << ModeName(mode) << ": " << result.status().ToString();
    EXPECT_LT(ElapsedMs(start), 4000) << ModeName(mode);
  }
}

// Regression for the Motion rendezvous hang: one segment stalls before its
// exchange deposit while every other worker waits at the barrier. Without a
// deadline-aware wait (plus abort propagation from the stalled peer), the
// waiters sleep on the condition variable forever. With the fix the query
// returns kDeadlineExceeded promptly, all threads joined.
TEST(ResilienceExecTest, MotionRendezvousStalledPeerDoesNotHang) {
  JoinFixture fx(4);
  Executor exec(&fx.db.catalog, &fx.db.storage,
                Executor::Options{.parallel = true});
  FaultInjector injector(1);
  FaultSpec stall;
  stall.kind = FaultKind::kDelay;
  stall.delay_ms = 5000;
  stall.segment = 0;  // exactly one peer wedges; the rest reach the barrier
  injector.Arm("motion.send", stall);

  QueryContext ctx;
  ctx.set_fault_injector(&injector);
  ctx.SetTimeout(std::chrono::milliseconds(250));
  auto start = std::chrono::steady_clock::now();
  auto result = exec.Execute(fx.plan, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  EXPECT_LT(ElapsedMs(start), 4000) << "barrier waiters did not observe the "
                                       "deadline / peer abort";

  // Clean teardown: the same executor runs the same plan to completion.
  ctx.Reset();
  injector.Reset();
  auto retry = exec.Execute(fx.plan, &ctx);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(*retry == fx.oracle);
}

// --- Failure propagation and executor reuse -------------------------------

TEST(ResilienceExecTest, FatalFaultPropagatesAndExecutorIsReusable) {
  JoinFixture fx;
  for (const Executor::Options& mode : kModes) {
    Executor exec(&fx.db.catalog, &fx.db.storage, mode);
    FaultInjector injector(1);
    FaultSpec fatal;
    fatal.kind = FaultKind::kFatal;
    fatal.max_fires = 1;
    injector.Arm("hub.push", fatal);

    QueryContext ctx;
    ctx.set_fault_injector(&injector);
    auto result = exec.Execute(fx.plan, &ctx);
    ASSERT_FALSE(result.ok()) << ModeName(mode);
    // The originating failure surfaces, not a secondhand peer abort.
    EXPECT_EQ(result.status().code(), StatusCode::kInternal)
        << ModeName(mode) << ": " << result.status().ToString();
    EXPECT_EQ(injector.fires("hub.push"), 1u) << ModeName(mode);

    // Fault exhausted (max_fires = 1): the same executor and context must
    // deliver the oracle rows and stats — hub channels, exchanges, and
    // join-filter state were reset by the failed run's teardown.
    auto retry = exec.Execute(fx.plan, &ctx);
    ASSERT_TRUE(retry.ok()) << ModeName(mode) << ": " << retry.status().ToString();
    EXPECT_TRUE(*retry == fx.oracle) << ModeName(mode);
    EXPECT_TRUE(exec.stats() == fx.oracle_stats) << ModeName(mode);
  }
}

// --- Memory budget --------------------------------------------------------

TEST(ResilienceExecTest, TinyBudgetFailsTypedInEveryMode) {
  JoinFixture fx;
  for (const Executor::Options& mode : kModes) {
    Executor exec(&fx.db.catalog, &fx.db.storage, mode);
    QueryContext ctx;
    ctx.budget().set_limit(1);  // below any mandatory charge
    auto result = exec.Execute(fx.plan, &ctx);
    ASSERT_FALSE(result.ok()) << ModeName(mode);
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << ModeName(mode) << ": " << result.status().ToString();

    ctx.budget().set_limit(0);  // unlimited again
    auto retry = exec.Execute(fx.plan, &ctx);
    ASSERT_TRUE(retry.ok()) << ModeName(mode) << ": " << retry.status().ToString();
    EXPECT_TRUE(*retry == fx.oracle) << ModeName(mode);
  }
}

// Graceful degradation, stage 1: join-filter summaries shed before the query
// fails. The join is built empty-result (disjoint keys) so the gather buffer
// charges nothing and the peak charge of the whole run is the last segment's
// advisory summary publication; a limit of peak-1 therefore sheds exactly
// that publish and everything mandatory still fits.
TEST(ResilienceExecTest, JoinFilterSummariesShedUnderBudgetPressure) {
  TestDb db(4);
  const TableDescriptor* fact = db.CreatePlainTable(
      "fact", Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}), {0});
  std::vector<Row> fact_rows;
  for (int64_t i = 0; i < 200; ++i) {
    fact_rows.push_back({Datum::Int64(i), Datum::Int64(i + 1000)});
  }
  db.Insert(fact, fact_rows);
  const TableDescriptor* dim = db.CreatePlainTable(
      "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
  std::vector<Row> dim_rows;
  for (int64_t id = 0; id < 64; ++id) {
    dim_rows.push_back({Datum::Int64(id), Datum::Int64(id * 2)});
  }
  db.Insert(dim, dim_rows);

  // Local filter: published by the hash-join build side, probed by the
  // colocated fact scan on the same segment.
  PhysPtr dim_scan = std::make_shared<TableScanNode>(
      dim->oid, dim->oid, std::vector<ColRefId>{11, 12});
  PhysPtr fact_scan = std::make_shared<TableScanNode>(
      fact->oid, fact->oid, std::vector<ColRefId>{1, 2});
  JoinFilterAnnotations probe_ann;
  JoinFilterProbe probe;
  probe.filter_id = 0;
  probe.key_columns = {2};
  probe_ann.probes.push_back(probe);
  fact_scan = WithJoinFilters(fact_scan, fact_scan->children(), probe_ann);
  PhysPtr join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{2},
      nullptr, dim_scan, fact_scan);
  JoinFilterAnnotations publish_ann;
  JoinFilterSpec spec;
  spec.filter_id = 0;
  spec.key_columns = {11};
  spec.build_rows_est = 64;
  publish_ann.publishes.push_back(spec);
  join = WithJoinFilters(join, join->children(), publish_ann);
  PhysPtr plan = std::make_shared<MotionNode>(MotionKind::kGather,
                                              std::vector<ColRefId>{}, join);

  // Pass 1: a huge (but limited, so the accountant tracks) budget records the
  // peak and the fault-free filter stats.
  QueryContext ctx;
  ctx.budget().set_limit(size_t{1} << 40);
  auto unlimited = db.executor.Execute(plan, &ctx);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
  EXPECT_TRUE(unlimited->empty());  // keys are disjoint by construction
  const size_t peak = ctx.budget().peak();
  ASSERT_GT(peak, 0u);
  const size_t built_unlimited = db.executor.stats().joinfilter_built;
  ASSERT_GT(built_unlimited, 0u);
  EXPECT_EQ(db.executor.stats().joinfilter_shed, 0u);

  // Pass 2: one byte below the peak sheds the final advisory publish; the
  // query still succeeds with identical rows.
  ctx.budget().set_limit(peak - 1);
  auto pressured = db.executor.Execute(plan, &ctx);
  ASSERT_TRUE(pressured.ok()) << pressured.status().ToString();
  EXPECT_TRUE(*pressured == *unlimited);
  EXPECT_EQ(db.executor.stats().joinfilter_shed, 1u);
  EXPECT_EQ(db.executor.stats().joinfilter_built, built_unlimited - 1);
}

// Graceful degradation, stage 2: stale zone-map rebuilds shed under budget
// pressure — the scan runs unskipped instead of charging rebuild scratch,
// and the query still succeeds with identical rows.
TEST(ResilienceExecTest, SynopsisRebuildsShedUnderBudgetPressure) {
  TestDb db(4);
  const TableDescriptor* t = db.CreatePlainTable(
      "t", Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}), {0});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 400; ++i) {
    rows.push_back({Datum::Int64(i), Datum::Int64(i % 7)});
  }
  db.Insert(t, rows);
  // Stale every slice so the next synopsis read needs a rebuild.
  TableStore* store = db.storage.GetStore(t->oid);
  ASSERT_NE(store, nullptr);
  for (Oid unit : store->UnitOids()) {
    for (int segment = 0; segment < db.storage.num_segments(); ++segment) {
      store->MutableUnitRows(unit, segment);
      ASSERT_FALSE(store->SynopsisFresh(unit, segment));
    }
  }

  // Sargable, empty-result filter: a < 0 prunes everything via the rollup
  // when the synopsis is available, and selects nothing either way — so the
  // gather buffer charges 0 bytes and a 16-byte budget leaves room for
  // nothing but the scan itself.
  PhysPtr scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                                 std::vector<ColRefId>{1, 2});
  PhysPtr filter = std::make_shared<FilterNode>(
      MakeComparison(CompareOp::kLt, MakeColumnRef(1, "a", TypeId::kInt64),
                     MakeConst(Datum::Int64(0))),
      scan);
  PhysPtr plan = std::make_shared<MotionNode>(MotionKind::kGather,
                                              std::vector<ColRefId>{}, filter);

  QueryContext ctx;
  ctx.budget().set_limit(16);  // refuses every rebuild-scratch charge
  auto result = db.executor.Execute(plan, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
  EXPECT_GT(db.executor.stats().synopsis_rebuilds_shed, 0u);
  // Shed rebuilds mean no chunks were skipped, but the answer is unchanged.
  EXPECT_EQ(db.executor.stats().chunks_skipped, 0u);

  // With room to rebuild, the same query prunes via zone maps again.
  ctx.budget().set_limit(size_t{1} << 40);
  auto roomy = db.executor.Execute(plan, &ctx);
  ASSERT_TRUE(roomy.ok()) << roomy.status().ToString();
  EXPECT_TRUE(*roomy == *result);
  EXPECT_EQ(db.executor.stats().synopsis_rebuilds_shed, 0u);
  EXPECT_GT(db.executor.stats().chunks_skipped, 0u);
}

// --- DML safety -----------------------------------------------------------

TEST(ResilienceExecTest, CancelledDmlLeavesStorageUntouched) {
  TestDb db(4);
  const TableDescriptor* t =
      db.CreatePlainTable("dml_t", Schema({{"x", TypeId::kInt64}}), {0});
  db.Insert(t, {{Datum::Int64(1)}, {Datum::Int64(2)}, {Datum::Int64(3)}});
  const size_t before = db.storage.GetStore(t->oid)->TotalRows();

  auto values = std::make_shared<ValuesNode>(
      std::vector<Row>{{Datum::Int64(10)}, {Datum::Int64(11)}},
      std::vector<ColRefId>{1});
  PhysPtr insert = std::make_shared<InsertNode>(t->oid, 50, values);

  QueryContext ctx;
  ctx.Cancel();
  auto result = db.executor.Execute(insert, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(db.storage.GetStore(t->oid)->TotalRows(), before);

  // Deadline expiry mid-read (before the write applies) also leaves storage
  // untouched: the stalled scan feeding the delete never reaches the apply.
  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                              std::vector<ColRefId>{1},
                                              std::vector<ColRefId>{60, 61, 62});
  PhysPtr gathered = std::make_shared<MotionNode>(
      MotionKind::kGather, std::vector<ColRefId>{}, scan);
  PhysPtr del = std::make_shared<DeleteNode>(
      t->oid, std::vector<ColRefId>{60, 61, 62}, 51, gathered);
  FaultInjector injector(1);
  FaultSpec stall;
  stall.kind = FaultKind::kDelay;
  stall.delay_ms = 2000;
  stall.max_fires = 1;
  injector.Arm("storage.scan_chunk", stall);
  QueryContext dctx;
  dctx.set_fault_injector(&injector);
  dctx.SetTimeout(std::chrono::milliseconds(100));
  auto dresult = db.executor.Execute(del, &dctx);
  ASSERT_FALSE(dresult.ok());
  EXPECT_EQ(dresult.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(db.storage.GetStore(t->oid)->TotalRows(), before);
}

// --- Database layer: retries, query registry, cancellation by id ----------

struct DatabaseFixture {
  DatabaseFixture() : db(4) {
    Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}});
    auto oid = db.CreateTable("t", schema, TableDistribution::kHashed, {0});
    MPPDB_CHECK(oid.ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 100; ++i) {
      rows.push_back({Datum::Int64(i), Datum::Int64(i % 10)});
    }
    MPPDB_CHECK(db.Load("t", rows).ok());
  }
  Database db;
};

TEST(ResilienceDatabaseTest, TransientFaultIsRetriedToSuccess) {
  DatabaseFixture fx;
  FaultInjector injector(1);
  FaultSpec transient;
  transient.kind = FaultKind::kTransient;
  transient.max_fires = 1;
  injector.Arm("storage.scan_chunk", transient);

  QueryOptions options;
  options.fault_injector = &injector;
  options.retry_backoff_ms = 0;
  auto result = fx.db.Run("SELECT a FROM t WHERE b = 3", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 10u);
  // Exactly one fault fired; the second attempt succeeded.
  EXPECT_EQ(injector.fires("storage.scan_chunk"), 1u);
}

TEST(ResilienceDatabaseTest, PersistentTransientFaultExhaustsRetries) {
  DatabaseFixture fx;
  FaultInjector injector(1);
  FaultSpec transient;
  transient.kind = FaultKind::kTransient;  // unlimited fires
  injector.Arm("storage.scan_chunk", transient);

  QueryOptions options;
  options.fault_injector = &injector;
  options.max_transient_retries = 2;
  options.retry_backoff_ms = 0;
  auto result = fx.db.Run("SELECT a FROM t WHERE b = 3", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTransientIO);
  // Initial attempt + 2 retries, each killed by the armed fault.
  EXPECT_EQ(injector.fires("storage.scan_chunk"), 3u);
}

TEST(ResilienceDatabaseTest, DmlNeverRetriesOnTransientFault) {
  DatabaseFixture fx;
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}});
  auto oid = fx.db.CreateTable("t2", schema, TableDistribution::kHashed, {0});
  ASSERT_TRUE(oid.ok());
  const TableDescriptor* t2 = fx.db.catalog().FindTable(*oid);
  ASSERT_NE(t2, nullptr);
  const TableDescriptor* t = fx.db.catalog().FindTable("t");
  ASSERT_NE(t, nullptr);

  // INSERT INTO t2 SELECT * FROM t, as a physical plan.
  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                              std::vector<ColRefId>{1, 2});
  PhysPtr gathered = std::make_shared<MotionNode>(
      MotionKind::kGather, std::vector<ColRefId>{}, scan);
  PhysPtr insert = std::make_shared<InsertNode>(t2->oid, 50, gathered);

  FaultInjector injector(1);
  FaultSpec transient;
  transient.kind = FaultKind::kTransient;
  transient.max_fires = 1;
  injector.Arm("storage.scan_chunk", transient);
  QueryOptions options;
  options.fault_injector = &injector;
  options.retry_backoff_ms = 0;
  auto result = fx.db.ExecutePlan(insert, options);
  // A read-only plan would have retried past max_fires = 1 and succeeded;
  // the DML plan must surface the transient error instead.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTransientIO);
  EXPECT_EQ(injector.fires("storage.scan_chunk"), 1u);
  EXPECT_EQ(fx.db.storage().GetStore(t2->oid)->TotalRows(), 0u);

  // The fault is exhausted: the same plan now applies exactly once.
  auto retry = fx.db.ExecutePlan(insert, options);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(fx.db.storage().GetStore(t2->oid)->TotalRows(), 100u);
}

TEST(ResilienceDatabaseTest, CancelByQueryIdTerminatesRunningStatement) {
  DatabaseFixture fx;
  EXPECT_FALSE(fx.db.Cancel(42));  // nothing registered yet

  FaultInjector injector(1);
  FaultSpec stall;
  stall.kind = FaultKind::kDelay;
  stall.delay_ms = 5000;
  stall.max_fires = 1;
  injector.Arm("storage.scan_chunk", stall);

  QueryOptions options;
  options.query_id = 42;
  options.fault_injector = &injector;
  Result<QueryResult> result = Status::Internal("not run");
  auto start = std::chrono::steady_clock::now();
  std::thread runner([&]() { result = fx.db.Run("SELECT a FROM t", options); });
  // Poll until the statement registers, then cancel it.
  bool cancelled = false;
  for (int i = 0; i < 2000 && !cancelled; ++i) {
    cancelled = fx.db.Cancel(42);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  runner.join();
  ASSERT_TRUE(cancelled);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_LT(ElapsedMs(start), 4000);
  // The statement unregistered on exit.
  EXPECT_FALSE(fx.db.Cancel(42));
}

TEST(ResilienceDatabaseTest, TimeoutOptionSurfacesDeadlineExceeded) {
  DatabaseFixture fx;
  FaultInjector injector(1);
  FaultSpec stall;
  stall.kind = FaultKind::kDelay;
  stall.delay_ms = 5000;
  stall.max_fires = 1;
  injector.Arm("storage.scan_chunk", stall);

  QueryOptions options;
  options.timeout_ms = 100;
  options.fault_injector = &injector;
  auto start = std::chrono::steady_clock::now();
  auto result = fx.db.Run("SELECT a FROM t", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ElapsedMs(start), 4000);

  // The deadline covers retries too: an expired context must not burn the
  // retry allowance on attempts that are dead on arrival.
  EXPECT_LE(injector.fires("storage.scan_chunk"), 1u);
}

TEST(ResilienceDatabaseTest, MemoryLimitOptionSurfacesResourceExhausted) {
  DatabaseFixture fx;
  QueryOptions options;
  options.memory_limit_bytes = 1;
  auto result = fx.db.Run("SELECT a FROM t ORDER BY a", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();

  options.memory_limit_bytes = 0;
  auto roomy = fx.db.Run("SELECT a FROM t ORDER BY a", options);
  ASSERT_TRUE(roomy.ok()) << roomy.status().ToString();
  EXPECT_EQ(roomy->rows.size(), 100u);
}

}  // namespace
}  // namespace mppdb
