#include <gtest/gtest.h>

#include <algorithm>

#include "catalog/catalog.h"
#include "catalog/partition_scheme.h"
#include "common/random.h"
#include "types/date.h"

namespace mppdb {
namespace {

// Builds the paper's running example: a table partitioned into 24 monthly
// partitions (Fig. 1), optionally subpartitioned by region (Fig. 9).
std::unique_ptr<PartitionScheme> MonthlyScheme(int months = 24, int key_column = 0) {
  Oid next_oid = 1;
  auto root = BuildUniformHierarchy({partition_bounds::Monthly(2012, 1, months)},
                                    &next_oid);
  return std::make_unique<PartitionScheme>(
      std::vector<PartitionLevelDesc>{{key_column, PartitionMethod::kRange}},
      std::move(root));
}

std::unique_ptr<PartitionScheme> MonthlyRegionScheme(int months, int regions) {
  Oid next_oid = 1;
  std::vector<Datum> region_values;
  for (int r = 1; r <= regions; ++r) {
    region_values.push_back(Datum::String("Region " + std::to_string(r)));
  }
  auto root = BuildUniformHierarchy({partition_bounds::Monthly(2012, 1, months),
                                     partition_bounds::ListValues(region_values)},
                                    &next_oid);
  return std::make_unique<PartitionScheme>(
      std::vector<PartitionLevelDesc>{{0, PartitionMethod::kRange},
                                      {1, PartitionMethod::kList}},
      std::move(root));
}

TEST(PartitionSchemeTest, LeafCount) {
  EXPECT_EQ(MonthlyScheme()->NumLeaves(), 24u);
  EXPECT_EQ(MonthlyRegionScheme(24, 3)->NumLeaves(), 72u);
}

TEST(PartitionSchemeTest, RouteTupleToMonth) {
  auto scheme = MonthlyScheme();
  Oid jan = scheme->RouteValues({Datum::DateFromString("2012-01-15")});
  Oid feb = scheme->RouteValues({Datum::DateFromString("2012-02-01")});
  Oid dec13 = scheme->RouteValues({Datum::DateFromString("2013-12-31")});
  EXPECT_NE(jan, kInvalidOid);
  EXPECT_NE(jan, feb);
  EXPECT_NE(dec13, kInvalidOid);
  // Out of the 2-year range: the invalid partition ⊥.
  EXPECT_EQ(scheme->RouteValues({Datum::DateFromString("2014-01-01")}), kInvalidOid);
  EXPECT_EQ(scheme->RouteValues({Datum::DateFromString("2011-12-31")}), kInvalidOid);
  // NULL key maps to ⊥ without a default partition.
  EXPECT_EQ(scheme->RouteValues({Datum::Null()}), kInvalidOid);
}

TEST(PartitionSchemeTest, DefaultPartitionCatchesStrays) {
  Oid next_oid = 1;
  std::vector<PartitionBound> bounds = partition_bounds::Monthly(2012, 1, 3);
  bounds.push_back(PartitionBound::Default("others"));
  auto root = BuildUniformHierarchy({bounds}, &next_oid);
  PartitionScheme scheme({{0, PartitionMethod::kRange}}, std::move(root));
  Oid stray = scheme.RouteValues({Datum::DateFromString("2020-06-01")});
  EXPECT_NE(stray, kInvalidOid);
  // Default partition is always selected conservatively.
  ConstraintSet jan_only = ConstraintSet::FromComparison(
      CompareOp::kEq, Datum::DateFromString("2012-01-10"));
  std::vector<Oid> selected = scheme.SelectPartitions({jan_only});
  EXPECT_EQ(selected.size(), 2u);  // january + default
  EXPECT_NE(std::find(selected.begin(), selected.end(), stray), selected.end());
}

TEST(PartitionSchemeTest, SelectByEquality) {
  auto scheme = MonthlyScheme();
  ConstraintSet eq = ConstraintSet::FromComparison(CompareOp::kEq,
                                                   Datum::DateFromString("2013-05-20"));
  std::vector<Oid> selected = scheme->SelectPartitions({eq});
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], scheme->RouteValues({Datum::DateFromString("2013-05-01")}));
}

TEST(PartitionSchemeTest, SelectByRangeLastQuarter) {
  // The paper's Fig. 2 query: last quarter of 2013 = 3 of 24 partitions.
  auto scheme = MonthlyScheme();
  ConstraintSet q4 = ConstraintSet::FromInterval(
      Interval::Closed(Datum::DateFromString("2013-10-01"),
                       Datum::DateFromString("2013-12-31")));
  EXPECT_EQ(scheme->SelectPartitions({q4}).size(), 3u);
}

TEST(PartitionSchemeTest, SelectAllWhenUnconstrained) {
  auto scheme = MonthlyScheme();
  EXPECT_EQ(scheme->SelectPartitions({}).size(), 24u);
  EXPECT_EQ(scheme->SelectPartitions({ConstraintSet::All()}).size(), 24u);
  EXPECT_TRUE(scheme->SelectPartitions({ConstraintSet::None()}).empty());
}

TEST(PartitionSchemeTest, MultiLevelSelection) {
  // Paper Fig. 10: date eq selects one month's region partitions; region eq
  // selects that region across all months; both select exactly one leaf.
  auto scheme = MonthlyRegionScheme(24, 4);
  ConstraintSet jan = ConstraintSet::FromComparison(
      CompareOp::kEq, Datum::DateFromString("2012-01-05"));
  ConstraintSet region1 =
      ConstraintSet::FromComparison(CompareOp::kEq, Datum::String("Region 1"));

  EXPECT_EQ(scheme->SelectPartitions({jan}).size(), 4u);
  EXPECT_EQ(scheme->SelectPartitions({ConstraintSet::All(), region1}).size(), 24u);
  EXPECT_EQ(scheme->SelectPartitions({jan, region1}).size(), 1u);
  EXPECT_EQ(scheme->SelectPartitions({}).size(), 96u);
}

TEST(PartitionSchemeTest, MultiLevelRouting) {
  auto scheme = MonthlyRegionScheme(2, 2);
  Oid a = scheme->RouteValues({Datum::DateFromString("2012-01-10"),
                               Datum::String("Region 1")});
  Oid b = scheme->RouteValues({Datum::DateFromString("2012-01-10"),
                               Datum::String("Region 2")});
  Oid c = scheme->RouteValues({Datum::DateFromString("2012-02-10"),
                               Datum::String("Region 1")});
  EXPECT_NE(a, kInvalidOid);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(scheme->RouteValues({Datum::DateFromString("2012-01-10"),
                                 Datum::String("Region 9")}),
            kInvalidOid);
}

TEST(PartitionSchemeTest, LeafInfoConstraints) {
  auto scheme = MonthlyScheme(3);
  const auto& leaves = scheme->Leaves();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_TRUE(leaves[0].level_constraints[0].Contains(
      Datum::DateFromString("2012-01-31")));
  EXPECT_FALSE(leaves[0].level_constraints[0].Contains(
      Datum::DateFromString("2012-02-01")));
  EXPECT_TRUE(scheme->IsLeafOid(leaves[2].oid));
  EXPECT_FALSE(scheme->IsLeafOid(99999));
}

// Soundness property of f*_T (the core pruning invariant): any value routed
// to leaf L by f_T and satisfying constraint c implies L ∈ f*_T(c).
TEST(PartitionSchemePropertyTest, SelectionCoversRouting) {
  Random rng(99);
  auto scheme = MonthlyRegionScheme(12, 3);
  for (int trial = 0; trial < 500; ++trial) {
    int32_t day = date::FromYMD(2012, 1, 1) + static_cast<int32_t>(rng.Uniform(366));
    std::string region = "Region " + std::to_string(1 + rng.Uniform(3));
    Datum date_val = Datum::Date(day);
    Datum region_val = Datum::String(region);
    Oid routed = scheme->RouteValues({date_val, region_val});
    ASSERT_NE(routed, kInvalidOid);

    // Random range constraint on date; point constraint on region.
    int32_t lo = date::FromYMD(2012, 1, 1) + static_cast<int32_t>(rng.Uniform(366));
    int32_t hi = lo + static_cast<int32_t>(rng.Uniform(120));
    ConstraintSet date_c =
        ConstraintSet::FromInterval(Interval::Closed(Datum::Date(lo), Datum::Date(hi)));
    ConstraintSet region_c = ConstraintSet::FromComparison(CompareOp::kEq, region_val);

    bool satisfies = date_c.Contains(date_val);
    std::vector<Oid> selected = scheme->SelectPartitions({date_c, region_c});
    bool in_selected =
        std::find(selected.begin(), selected.end(), routed) != selected.end();
    if (satisfies) {
      EXPECT_TRUE(in_selected)
          << "leaf holding a qualifying tuple was pruned (unsound)";
    }
  }
}

TEST(CatalogTest, CreateAndLookup) {
  Catalog catalog;
  Schema schema({{"id", TypeId::kInt64}, {"amount", TypeId::kDouble}});
  auto oid = catalog.CreateTable("plain", schema, TableDistribution::kHashed, {0});
  ASSERT_TRUE(oid.ok());
  EXPECT_NE(catalog.FindTable("plain"), nullptr);
  EXPECT_EQ(catalog.FindTable(*oid)->name, "plain");
  EXPECT_EQ(catalog.FindTable("absent"), nullptr);
  // Duplicate name rejected.
  EXPECT_FALSE(catalog.CreateTable("plain", schema, TableDistribution::kRandom, {}).ok());
  // Hash distribution without columns rejected.
  EXPECT_FALSE(catalog.CreateTable("bad", schema, TableDistribution::kHashed, {}).ok());
  // Bad column index rejected.
  EXPECT_FALSE(catalog.CreateTable("bad2", schema, TableDistribution::kHashed, {7}).ok());
}

TEST(CatalogTest, CreatePartitionedTable) {
  Catalog catalog;
  Schema schema({{"date", TypeId::kDate}, {"amount", TypeId::kDouble}});
  auto oid = catalog.CreatePartitionedTable(
      "orders", schema, TableDistribution::kHashed, {1},
      {{0, PartitionMethod::kRange}}, {partition_bounds::Monthly(2012, 1, 24)});
  ASSERT_TRUE(oid.ok());
  const TableDescriptor* table = catalog.FindTable("orders");
  ASSERT_NE(table, nullptr);
  ASSERT_TRUE(table->IsPartitioned());
  EXPECT_EQ(table->partition_scheme->NumLeaves(), 24u);
  EXPECT_EQ(table->PartitionKeyColumns(), std::vector<int>{0});
  // Partition OIDs are distinct from the table OID.
  for (Oid leaf : table->partition_scheme->AllLeafOids()) {
    EXPECT_NE(leaf, table->oid);
  }
}

}  // namespace
}  // namespace mppdb
