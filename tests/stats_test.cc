#include <gtest/gtest.h>

#include "optimizer/stats.h"
#include "test_util.h"

namespace mppdb {
namespace {

ExprPtr Col(ColRefId id) { return MakeColumnRef(id, "c", TypeId::kInt64); }
ExprPtr Lit(int64_t v) { return MakeConst(Datum::Int64(v)); }

TEST(SelectivityTest, ComparisonShapes) {
  double eq = CardinalityEstimator::Selectivity(
      MakeComparison(CompareOp::kEq, Col(1), Lit(5)));
  double range = CardinalityEstimator::Selectivity(
      MakeComparison(CompareOp::kLt, Col(1), Lit(5)));
  double ne = CardinalityEstimator::Selectivity(
      MakeComparison(CompareOp::kNe, Col(1), Lit(5)));
  EXPECT_LT(eq, range);
  EXPECT_LT(range, ne);
  EXPECT_GT(eq, 0);
  EXPECT_LE(ne, 1.0);
}

TEST(SelectivityTest, ConjunctionShrinksDisjunctionGrows) {
  ExprPtr a = MakeComparison(CompareOp::kLt, Col(1), Lit(5));
  ExprPtr b = MakeComparison(CompareOp::kGt, Col(2), Lit(5));
  double sa = CardinalityEstimator::Selectivity(a);
  EXPECT_LT(CardinalityEstimator::Selectivity(Conj({a, b})), sa);
  EXPECT_GT(CardinalityEstimator::Selectivity(MakeOr({a, b})), sa);
}

TEST(SelectivityTest, NullPredicateIsOne) {
  EXPECT_DOUBLE_EQ(CardinalityEstimator::Selectivity(nullptr), 1.0);
}

TEST(SelectivityTest, ConstantPredicates) {
  EXPECT_DOUBLE_EQ(
      CardinalityEstimator::Selectivity(MakeConst(Datum::Bool(false))), 0.0);
  EXPECT_DOUBLE_EQ(CardinalityEstimator::Selectivity(MakeConst(Datum::Bool(true))),
                   1.0);
}

TEST(EstimatorTest, TracksTableSizesAndOperators) {
  testutil::TestDb db(2);
  const TableDescriptor* big =
      db.CreatePlainTable("big", Schema({{"x", TypeId::kInt64}}));
  const TableDescriptor* small =
      db.CreatePlainTable("small", Schema({{"y", TypeId::kInt64}}));
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back({Datum::Int64(i)});
  db.Insert(big, rows);
  db.Insert(small, {{Datum::Int64(1)}, {Datum::Int64(2)}});

  CardinalityEstimator estimator(&db.storage);
  auto big_get = std::make_shared<LogicalGet>(big, "big", std::vector<ColRefId>{1});
  auto small_get =
      std::make_shared<LogicalGet>(small, "small", std::vector<ColRefId>{2});
  EXPECT_DOUBLE_EQ(estimator.EstimateRows(big_get), 1000.0);
  EXPECT_DOUBLE_EQ(estimator.EstimateRows(small_get), 2.0);

  // Selection shrinks.
  auto select = std::make_shared<LogicalSelect>(
      MakeComparison(CompareOp::kEq, Col(1), Lit(5)), big_get);
  EXPECT_LT(estimator.EstimateRows(select), 1000.0);
  EXPECT_GE(estimator.EstimateRows(select), 1.0);

  // Equi join is bounded by the larger side under the containment heuristic.
  auto join = std::make_shared<LogicalJoin>(
      JoinType::kInner, MakeComparison(CompareOp::kEq, Col(1), Col(2)), big_get,
      small_get);
  double join_rows = estimator.EstimateRows(join);
  EXPECT_GT(join_rows, 0);
  EXPECT_LE(join_rows, 1000.0 * 2.0);

  // Scalar aggregates produce one row; limits cap.
  auto agg = std::make_shared<LogicalAgg>(std::vector<ColRefId>{},
                                          std::vector<AggItem>{}, big_get);
  EXPECT_DOUBLE_EQ(estimator.EstimateRows(agg), 1.0);
  auto limit = std::make_shared<LogicalLimit>(10, big_get);
  EXPECT_DOUBLE_EQ(estimator.EstimateRows(limit), 10.0);
}

}  // namespace
}  // namespace mppdb
