#include <gtest/gtest.h>

#include "db/database.h"
#include "optimizer/cascades/cascades_optimizer.h"
#include "optimizer/cascades/memo.h"
#include "optimizer/distribution.h"
#include "optimizer/placement.h"
#include "sql/binder.h"
#include "test_util.h"

namespace mppdb {
namespace {

PhysPtr FindNode(const PhysPtr& plan, PhysNodeKind kind) {
  if (plan->kind() == kind) return plan;
  for (const auto& child : plan->children()) {
    if (PhysPtr found = FindNode(child, kind)) return found;
  }
  return nullptr;
}

int CountNodes(const PhysPtr& plan, PhysNodeKind kind) {
  int count = plan->kind() == kind ? 1 : 0;
  for (const auto& child : plan->children()) count += CountNodes(child, kind);
  return count;
}

TEST(DistributionSpecTest, SatisfiesMatrix) {
  auto hashed_a = DistributionSpec::Hashed({1});
  auto hashed_b = DistributionSpec::Hashed({2});
  EXPECT_TRUE(hashed_a.Satisfies(DistributionSpec::Any()));
  EXPECT_TRUE(hashed_a.Satisfies(hashed_a));
  EXPECT_FALSE(hashed_a.Satisfies(hashed_b));
  EXPECT_FALSE(hashed_a.Satisfies(DistributionSpec::Replicated()));
  EXPECT_FALSE(hashed_a.Satisfies(DistributionSpec::Singleton()));
  // Singleton trivially co-locates.
  EXPECT_TRUE(DistributionSpec::Singleton().Satisfies(hashed_a));
  EXPECT_TRUE(DistributionSpec::Singleton().Satisfies(DistributionSpec::Singleton()));
  EXPECT_TRUE(DistributionSpec::Replicated().Satisfies(DistributionSpec::Replicated()));
  EXPECT_FALSE(DistributionSpec::Random().Satisfies(hashed_a));
  EXPECT_TRUE(DistributionSpec::Random().Satisfies(DistributionSpec::Any()));
}

/// Fixture replicating the paper's §3.1 example: R hash-distributed on R.a
/// and partitioned on R.pk; S hash-distributed on S.a; query
/// SELECT * FROM R, S WHERE R.pk = S.a.
class CascadesPaperExampleTest : public ::testing::Test {
 protected:
  CascadesPaperExampleTest() : db_(4) {
    MPPDB_CHECK(db_.CreatePartitionedTable(
                       "r", Schema({{"a", TypeId::kInt64}, {"pk", TypeId::kInt64}}),
                       TableDistribution::kHashed, {0},
                       {{1, PartitionMethod::kRange}},
                       {partition_bounds::IntRanges(0, 100, 10)})
                    .ok());
    MPPDB_CHECK(db_.CreateTable("s", Schema({{"a", TypeId::kInt64},
                                             {"b", TypeId::kInt64}}),
                                TableDistribution::kHashed, {0})
                    .ok());
    std::vector<Row> r_rows, s_rows;
    for (int i = 0; i < 300; ++i) {
      r_rows.push_back({Datum::Int64(i), Datum::Int64(i * 3 % 1000)});
    }
    for (int i = 0; i < 30; ++i) {
      s_rows.push_back({Datum::Int64(i * 5 % 150), Datum::Int64(i)});
    }
    MPPDB_CHECK(db_.Load("r", r_rows).ok());
    MPPDB_CHECK(db_.Load("s", s_rows).ok());
  }

  Database db_;
};

TEST_F(CascadesPaperExampleTest, WinningPlanMatchesFig14Plan4) {
  // The paper's Fig. 14 Plan 4: replicate S, run the PartitionSelector on
  // top of the Replicate (same slice as the join), DynamicScan R.
  auto plan = db_.PlanSql("SELECT * FROM r, s WHERE r.pk = s.a");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  auto selector_node = FindNode(*plan, PhysNodeKind::kPartitionSelector);
  ASSERT_NE(selector_node, nullptr);
  const auto& selector = static_cast<const PartitionSelectorNode&>(*selector_node);
  // Pass-through selector whose child is the Broadcast motion — the valid
  // enforcer order of Fig. 12/13 (Selector above Replicate, never below).
  ASSERT_TRUE(selector.HasChild());
  EXPECT_EQ(selector.child(0)->kind(), PhysNodeKind::kMotion);
  EXPECT_EQ(static_cast<const MotionNode&>(*selector.child(0)).motion_kind(),
            MotionKind::kBroadcast);

  // The DynamicScan keeps R's natural distribution: no Motion between the
  // join and the scan.
  EXPECT_TRUE(ValidateSelectorPlacement(*plan).ok());
  auto scan = FindNode(*plan, PhysNodeKind::kDynamicScan);
  ASSERT_NE(scan, nullptr);

  // And it executes correctly with pruning.
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  Oid r_oid = db_.catalog().FindTable("r")->oid;
  EXPECT_LT(result->stats.PartitionsScanned(r_oid), 10u);
}

TEST_F(CascadesPaperExampleTest, DisablingDynamicEliminationRemovesPassThrough) {
  QueryOptions options;
  options.enable_dynamic_elimination = false;
  auto plan = db_.PlanSql("SELECT * FROM r, s WHERE r.pk = s.a", options);
  ASSERT_TRUE(plan.ok());
  auto selector_node = FindNode(*plan, PhysNodeKind::kPartitionSelector);
  ASSERT_NE(selector_node, nullptr);
  // Selector still exists (it must open the channel) but is standalone.
  EXPECT_FALSE(
      static_cast<const PartitionSelectorNode&>(*selector_node).HasChild());
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  Oid r_oid = db_.catalog().FindTable("r")->oid;
  EXPECT_EQ(result->stats.PartitionsScanned(r_oid), 10u);
}

TEST_F(CascadesPaperExampleTest, SelectionDisabledSelectorHasNoPredicates) {
  QueryOptions options;
  options.enable_partition_selection = false;
  auto plan = db_.PlanSql("SELECT * FROM r WHERE r.pk < 100", options);
  ASSERT_TRUE(plan.ok());
  const auto& selector = static_cast<const PartitionSelectorNode&>(
      *FindNode(*plan, PhysNodeKind::kPartitionSelector));
  for (const auto& pred : selector.level_predicates()) {
    EXPECT_EQ(pred, nullptr);
  }
}

TEST_F(CascadesPaperExampleTest, ColocatedJoinAvoidsMotionWhenKeysMatch) {
  // Join on the distribution keys of both tables: the colocated alternative
  // needs no Motion below the join at all.
  auto plan = db_.PlanSql("SELECT count(*) FROM r, s WHERE r.a = s.a");
  ASSERT_TRUE(plan.ok());
  // Exactly one motion: the final Gather.
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kMotion), 1);
  EXPECT_EQ((*plan)->kind() == PhysNodeKind::kHashAgg
                ? FindNode(*plan, PhysNodeKind::kMotion)->kind()
                : PhysNodeKind::kMotion,
            PhysNodeKind::kMotion);
  auto motion = FindNode(*plan, PhysNodeKind::kMotion);
  EXPECT_EQ(static_cast<const MotionNode&>(*motion).motion_kind(),
            MotionKind::kGather);
}

TEST_F(CascadesPaperExampleTest, GroupByOnDistributionKeyAggregatesLocally) {
  auto plan = db_.PlanSql("SELECT a, count(*) FROM r GROUP BY a");
  ASSERT_TRUE(plan.ok());
  // The HashAgg can run on the hash-distributed data; the only motion is the
  // final gather ABOVE the aggregate.
  auto agg = FindNode(*plan, PhysNodeKind::kHashAgg);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(CountNodes(agg, PhysNodeKind::kMotion), 0);
}

TEST_F(CascadesPaperExampleTest, MemoizationKeepsSearchSmall) {
  Binder binder(&db_.catalog());
  auto stmt = binder.BindSql("SELECT * FROM r, s WHERE r.pk = s.a AND s.b < 10");
  ASSERT_TRUE(stmt.ok());
  CascadesOptimizer optimizer(&db_.catalog(), &db_.storage());
  ASSERT_TRUE(optimizer.Plan(*stmt).ok());
  size_t first = optimizer.last_request_count();
  EXPECT_GT(first, 0u);
  EXPECT_LT(first, 200u);
}

TEST_F(CascadesPaperExampleTest, TwoPhaseAggregationOverDistributedData) {
  // Group-by on a non-distribution column: the two-phase alternative
  // (local partial agg -> Motion of partials -> global agg) beats moving
  // every row.
  auto plan = db_.PlanSql("SELECT b, count(*), sum(a) FROM s GROUP BY b");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kHashAgg), 2);
  // Motion sits between the two aggregation phases.
  auto top_agg = FindNode(*plan, PhysNodeKind::kHashAgg);
  ASSERT_NE(top_agg, nullptr);
  EXPECT_EQ(top_agg->child(0)->kind(), PhysNodeKind::kMotion);
  EXPECT_EQ(top_agg->child(0)->child(0)->kind(), PhysNodeKind::kHashAgg);

  // Results match a known ground truth.
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 30u);  // b = 0..29, one group each
}

TEST_F(CascadesPaperExampleTest, AvgFallsBackToSinglePhase) {
  auto plan = db_.PlanSql("SELECT b, avg(a) FROM s GROUP BY b");
  ASSERT_TRUE(plan.ok());
  // avg needs a sum/count pair we do not split; single aggregation phase.
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kHashAgg), 1);
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 30u);
}

TEST_F(CascadesPaperExampleTest, TwoPhaseCountMatchesSinglePhaseResults) {
  // Cross-check the rewritten global aggregates against the legacy planner's
  // single-phase plan on the same data.
  auto two_phase = db_.Run("SELECT b, count(*), sum(a), min(a), max(a) FROM s GROUP BY b");
  ASSERT_TRUE(two_phase.ok());
  QueryOptions legacy;
  legacy.optimizer = OptimizerKind::kLegacyPlanner;
  auto single = db_.Run("SELECT b, count(*), sum(a), min(a), max(a) FROM s GROUP BY b",
                        legacy);
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(testutil::SameRows(two_phase->rows, single->rows));
}

TEST(MemoTest, InsertAssignsGroupsAndScanIds) {
  testutil::TestDb db(2);
  const TableDescriptor* orders = db.CreateOrdersTable(12);
  const TableDescriptor* orders2 = db.CreateOrdersTable(12, "orders2");

  ColRefAllocator alloc;
  auto make_get = [&](const TableDescriptor* table) {
    std::vector<ColRefId> ids;
    for (size_t i = 0; i < table->schema.size(); ++i) ids.push_back(alloc.Next());
    return std::make_shared<LogicalGet>(table, table->name, ids);
  };
  auto left = make_get(orders);
  auto right = make_get(orders2);
  auto join = std::make_shared<LogicalJoin>(
      JoinType::kInner,
      MakeComparison(CompareOp::kEq,
                     MakeColumnRef(left->column_ids()[0], "date", TypeId::kDate),
                     MakeColumnRef(right->column_ids()[0], "date", TypeId::kDate)),
      left, right);

  CardinalityEstimator estimator(&db.storage);
  Memo memo(&estimator);
  int root = memo.Insert(join);
  EXPECT_EQ(memo.size(), 3u);
  EXPECT_EQ(root, 2);
  // Both partitioned Gets received distinct scan ids, visible in the root
  // group's logical properties.
  EXPECT_EQ(memo.group(root).scan_ids.size(), 2u);
  EXPECT_EQ(memo.group(0).scan_ids.size(), 1u);
  EXPECT_EQ(memo.group(1).scan_ids.size(), 1u);
  EXPECT_EQ(memo.group(root).output_ids.size(), 6u);
  EXPECT_FALSE(memo.ToString().empty());
}

}  // namespace
}  // namespace mppdb
