// Vectorized execution: the batch kernel path (Executor::Options::vectorized)
// must be bit-identical to the row-at-a-time oracle — same rows in the same
// order, same ExecStats — across the workload suites, in serial and parallel
// mode, and the kernel evaluator itself must agree with EvalExpr on random
// expression trees including every error path.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "expr/vector_eval.h"
#include "test_util.h"
#include "types/date.h"
#include "workload/tpcds_lite.h"
#include "workload/tpch_lite.h"

namespace mppdb {
namespace {

// The row-at-a-time serial executor is the oracle; both vectorized modes
// (serial and parallel) must reproduce its output exactly on every TPC-DS
// workload query: static pruning, join-induced dynamic pruning, IN
// subqueries, star joins, and aggregations.
TEST(VectorizedOracleTest, TpcdsWorkloadBitIdenticalInSerialAndParallel) {
  workload::TpcdsConfig config;
  config.base_rows = 800;
  Database oracle_db(4);
  Database vec_db(4, Executor::Options{.vectorized = true});
  Database vec_parallel_db(4, Executor::Options{.parallel = true, .vectorized = true});
  for (Database* db : {&oracle_db, &vec_db, &vec_parallel_db}) {
    ASSERT_TRUE(workload::CreateAndLoadTpcds(db, config).ok());
  }

  for (const auto& query : workload::TpcdsQueries(config)) {
    auto oracle = oracle_db.Run(query.sql);
    auto vec = vec_db.Run(query.sql);
    auto vec_parallel = vec_parallel_db.Run(query.sql);
    ASSERT_TRUE(oracle.ok()) << query.name << ": " << oracle.status().ToString();
    ASSERT_TRUE(vec.ok()) << query.name << ": " << vec.status().ToString();
    ASSERT_TRUE(vec_parallel.ok())
        << query.name << ": " << vec_parallel.status().ToString();
    // Bit-identical: same rows in the same order, bitwise-equal datums, and
    // the same partitions scanned / tuples read / rows moved.
    EXPECT_TRUE(oracle->rows == vec->rows) << query.name;
    EXPECT_TRUE(oracle->stats == vec->stats) << query.name;
    EXPECT_TRUE(oracle->rows == vec_parallel->rows) << query.name;
    EXPECT_TRUE(oracle->stats == vec_parallel->stats) << query.name;
  }
}

// Same oracle check over the TPC-H-style lineitem at 8 segments, hitting the
// fused filter-over-scan path at several selectivities and the aggregation
// pipeline.
TEST(VectorizedOracleTest, TpchQueriesBitIdenticalAt8Segments) {
  workload::TpchConfig config;
  config.rows = 3000;
  Database oracle_db(8);
  Database vec_db(8, Executor::Options{.vectorized = true});
  Database vec_parallel_db(8, Executor::Options{.parallel = true, .vectorized = true});
  for (Database* db : {&oracle_db, &vec_db, &vec_parallel_db}) {
    ASSERT_TRUE(workload::CreateAndLoadLineitem(
                    db, config, workload::LineitemPartitioning::kMonthly84, "lineitem")
                    .ok());
  }
  const char* queries[] = {
      "SELECT count(*), sum(l_quantity), avg(l_extendedprice) FROM lineitem",
      "SELECT l_suppkey, count(*) FROM lineitem GROUP BY l_suppkey "
      "ORDER BY l_suppkey LIMIT 20",
      "SELECT count(*) FROM lineitem WHERE l_shipdate BETWEEN '1999-01-01' AND "
      "'1999-03-31'",
      "SELECT l_orderkey, l_quantity, l_extendedprice FROM lineitem "
      "WHERE l_discount < 0.01 "
      "ORDER BY l_orderkey, l_quantity, l_extendedprice LIMIT 50",
      "SELECT count(*) FROM lineitem WHERE l_quantity > 25 AND l_discount > 0.05",
  };
  for (const char* sql : queries) {
    auto oracle = oracle_db.Run(sql);
    auto vec = vec_db.Run(sql);
    auto vec_parallel = vec_parallel_db.Run(sql);
    ASSERT_TRUE(oracle.ok()) << sql << ": " << oracle.status().ToString();
    ASSERT_TRUE(vec.ok()) << sql << ": " << vec.status().ToString();
    ASSERT_TRUE(vec_parallel.ok()) << sql << ": " << vec_parallel.status().ToString();
    EXPECT_TRUE(oracle->rows == vec->rows) << sql;
    EXPECT_TRUE(oracle->stats == vec->stats) << sql;
    EXPECT_TRUE(oracle->rows == vec_parallel->rows) << sql;
    EXPECT_TRUE(oracle->stats == vec_parallel->stats) << sql;
  }
}

// DML flows through the vectorized executor unchanged (DML operators are
// shared with the row path); interleaved writes and reads must leave both
// databases in identical states.
TEST(VectorizedOracleTest, DmlProducesIdenticalStateUnderVectorizedExecutor) {
  Database oracle_db(4);
  Database vec_db(4, Executor::Options{.vectorized = true});
  const char* ddl =
      "CREATE TABLE t (k BIGINT, v DOUBLE) DISTRIBUTED BY (k) "
      "PARTITION BY RANGE (k) START 0 END 40 EVERY 10";
  const char* statements[] = {
      "INSERT INTO t VALUES (1, 1.5), (11, 2.5), (21, 3.5), (31, 4.5)",
      "INSERT INTO t VALUES (2, 10.0), (12, 20.0), (22, 30.0)",
      "UPDATE t SET v = v * 2 WHERE k > 15",
      "DELETE FROM t WHERE k = 11",
      "INSERT INTO t SELECT k + 5, v FROM t WHERE k < 3",
  };
  const char* probes[] = {
      "SELECT k, v FROM t ORDER BY k",
      "SELECT count(*), sum(v) FROM t WHERE k BETWEEN 10 AND 29",
  };
  for (Database* db : {&oracle_db, &vec_db}) {
    ASSERT_TRUE(db->Run(ddl).ok());
  }
  for (const char* sql : statements) {
    auto oracle = oracle_db.Run(sql);
    auto vec = vec_db.Run(sql);
    ASSERT_TRUE(oracle.ok()) << sql << ": " << oracle.status().ToString();
    ASSERT_TRUE(vec.ok()) << sql << ": " << vec.status().ToString();
    EXPECT_TRUE(oracle->rows == vec->rows) << sql;
    for (const char* probe : probes) {
      auto oracle_probe = oracle_db.Run(probe);
      auto vec_probe = vec_db.Run(probe);
      ASSERT_TRUE(oracle_probe.ok()) << probe;
      ASSERT_TRUE(vec_probe.ok()) << probe;
      EXPECT_TRUE(oracle_probe->rows == vec_probe->rows) << sql << " then " << probe;
      EXPECT_TRUE(oracle_probe->stats == vec_probe->stats) << sql << " then " << probe;
    }
  }
}

// Errors surface identically: a data-dependent division by zero aborts the
// vectorized run with the same message as the row path, and the executor
// stays reusable afterwards.
TEST(VectorizedOracleTest, RuntimeErrorsMatchRowPath) {
  testutil::TestDb db(4);
  const TableDescriptor* t =
      db.CreatePlainTable("t", Schema({{"k", TypeId::kInt64}}), {0});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 32; ++i) rows.push_back({Datum::Int64(i)});
  db.Insert(t, rows);

  ExprPtr pred = MakeComparison(
      CompareOp::kGt,
      MakeArith(ArithOp::kDiv, MakeConst(Datum::Int64(10)),
                MakeArith(ArithOp::kSub, MakeColumnRef(1, "k", TypeId::kInt64),
                          MakeConst(Datum::Int64(7)))),
      MakeConst(Datum::Int64(0)));
  auto make_plan = [&] {
    auto scan =
        std::make_shared<TableScanNode>(t->oid, t->oid, std::vector<ColRefId>{1});
    auto filter = std::make_shared<FilterNode>(pred, scan);
    return std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{},
                                        filter);
  };

  Executor row_exec(&db.catalog, &db.storage);
  Executor vec_exec(&db.catalog, &db.storage, Executor::Options{.vectorized = true});
  auto row_result = row_exec.Execute(make_plan());
  auto vec_result = vec_exec.Execute(make_plan());
  ASSERT_FALSE(row_result.ok());
  ASSERT_FALSE(vec_result.ok());
  EXPECT_EQ(row_result.status().message(), vec_result.status().message());
  EXPECT_TRUE(vec_exec.stats() == ExecStats());

  // Reusable after failure.
  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid, std::vector<ColRefId>{1});
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, scan);
  auto retry = vec_exec.Execute(gather);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->size(), 32u);
}

// ---------------------------------------------------------------------------
// Kernel fuzz: random expression trees evaluated by EvalExprBatch /
// EvalPredicateBatch must agree with EvalExpr / EvalPredicate on every row —
// values, NULLs, WHERE semantics, and error statuses alike.
// ---------------------------------------------------------------------------

class KernelFuzzTest : public ::testing::Test {
 protected:
  // Layout: c1 BIGINT, c2 BIGINT, c3 DOUBLE, c4 STRING.
  KernelFuzzTest() : layout_({1, 2, 3, 4}) {}

  Datum RandomDatum(Random* rng) {
    switch (rng->Uniform(6)) {
      case 0:
        return Datum::Null();
      case 1:
        return Datum::Int64(rng->UniformRange(-3, 3));
      case 2:
        return Datum::Double(static_cast<double>(rng->UniformRange(-20, 20)) / 4.0);
      case 3:
        return Datum::String(rng->Bernoulli(0.5) ? "aa" : "bb");
      case 4:
        return Datum::Bool(rng->Bernoulli(0.5));
      default:
        return Datum::Int64(rng->UniformRange(0, 40));
    }
  }

  ExprPtr RandomLeaf(Random* rng) {
    switch (rng->Uniform(8)) {
      case 0:
        return MakeColumnRef(1, "c1", TypeId::kInt64);
      case 1:
        return MakeColumnRef(2, "c2", TypeId::kInt64);
      case 2:
        return MakeColumnRef(3, "c3", TypeId::kDouble);
      case 3:
        return MakeColumnRef(4, "c4", TypeId::kString);
      case 4:
        // Unknown column and unbound parameter: compile to kError
        // instructions that must fire exactly when the row path errors.
        return rng->Bernoulli(0.5) ? MakeColumnRef(99, "ghost", TypeId::kInt64)
                                   : MakeParam(1, TypeId::kInt64);
      default:
        return MakeConst(RandomDatum(rng));
    }
  }

  ExprPtr RandomExpr(Random* rng, int depth) {
    if (depth == 0 || rng->Bernoulli(0.3)) return RandomLeaf(rng);
    switch (rng->Uniform(7)) {
      case 0:
        return MakeComparison(static_cast<CompareOp>(rng->Uniform(6)),
                              RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
      case 1:
        // Small integer operands make division/modulo by zero reachable.
        return MakeArith(static_cast<ArithOp>(rng->Uniform(5)),
                         RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
      case 2:
        return Conj({RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1)});
      case 3:
        return MakeOr({RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1)});
      case 4:
        return MakeNot(RandomExpr(rng, depth - 1));
      case 5:
        return std::make_shared<IsNullExpr>(RandomExpr(rng, depth - 1));
      default: {
        std::vector<ExprPtr> children;
        children.push_back(RandomExpr(rng, depth - 1));
        size_t items = 1 + rng->Uniform(3);
        for (size_t i = 0; i < items; ++i) {
          children.push_back(MakeConst(RandomDatum(rng)));
        }
        return MakeInList(std::move(children));
      }
    }
  }

  std::vector<Row> RandomRows(Random* rng, size_t n) {
    std::vector<Row> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Row row;
      row.push_back(rng->Bernoulli(0.15) ? Datum::Null()
                                         : Datum::Int64(rng->UniformRange(-3, 3)));
      row.push_back(rng->Bernoulli(0.15) ? Datum::Null()
                                         : Datum::Int64(rng->UniformRange(0, 40)));
      row.push_back(rng->Bernoulli(0.15)
                        ? Datum::Null()
                        : Datum::Double(
                              static_cast<double>(rng->UniformRange(-20, 20)) / 4.0));
      row.push_back(rng->Bernoulli(0.15) ? Datum::Null()
                                         : Datum::String(rng->Bernoulli(0.5) ? "aa"
                                                                             : "bb"));
      rows.push_back(std::move(row));
    }
    return rows;
  }

  ColumnLayout layout_;
};

// Strongest per-row check: a single-row batch must reproduce the row
// evaluator exactly — same value (bitwise), same NULL, or the same error
// Status message.
TEST_F(KernelFuzzTest, SingleRowBatchesMatchEvalExprExactly) {
  Random rng(20140622);
  for (int trial = 0; trial < 400; ++trial) {
    ExprPtr expr = RandomExpr(&rng, 3);
    std::vector<Row> rows = RandomRows(&rng, 16);
    KernelProgram program = KernelProgram::Compile(expr, layout_);
    KernelContext ctx;
    ctx.Prepare(program, KernelContext::kDefaultChunkRows);
    for (size_t i = 0; i < rows.size(); ++i) {
      auto row_result = EvalExpr(expr, layout_, rows[i]);
      SelVec sel = {static_cast<uint32_t>(i)};
      Status batch_status = EvalExprBatch(program, &ctx, rows, /*base=*/i, sel);
      if (row_result.ok()) {
        ASSERT_TRUE(batch_status.ok())
            << expr->ToString() << " row " << i << ": " << batch_status.ToString();
        const Datum& batch_value = ctx.slot(program.root())[0];
        EXPECT_TRUE(*row_result == batch_value)
            << expr->ToString() << " row " << i << ": row=" << row_result->ToString()
            << " batch=" << batch_value.ToString();
      } else {
        ASSERT_FALSE(batch_status.ok()) << expr->ToString() << " row " << i;
        EXPECT_EQ(row_result.status().message(), batch_status.message())
            << expr->ToString() << " row " << i;
      }

      // Predicate semantics: NULL and false both drop the row.
      auto row_pred = EvalPredicate(expr, layout_, rows[i]);
      SelVec out_sel;
      Status pred_status = EvalPredicateBatch(program, &ctx, rows, i, sel, &out_sel);
      if (row_pred.ok()) {
        ASSERT_TRUE(pred_status.ok()) << expr->ToString() << " row " << i;
        EXPECT_EQ(*row_pred, out_sel.size() == 1) << expr->ToString() << " row " << i;
      } else {
        ASSERT_FALSE(pred_status.ok()) << expr->ToString() << " row " << i;
        EXPECT_EQ(row_pred.status().message(), pred_status.message())
            << expr->ToString() << " row " << i;
      }
    }
  }
}

// Whole-chunk batches: when every row evaluates cleanly the batch values are
// bitwise-identical; when at least one row errors the batch errors with a
// message some erroring row produced (the batch evaluates column-major, so
// with multiple failing rows it may surface a different one than strict
// row-major order — the only documented deviation).
TEST_F(KernelFuzzTest, WholeChunkBatchesMatchEvalExpr) {
  Random rng(424242);
  for (int trial = 0; trial < 300; ++trial) {
    ExprPtr expr = RandomExpr(&rng, 3);
    std::vector<Row> rows = RandomRows(&rng, 64);
    KernelProgram program = KernelProgram::Compile(expr, layout_);
    KernelContext ctx;
    ctx.Prepare(program, rows.size());

    std::vector<Result<Datum>> row_results;
    std::vector<std::string> row_errors;
    for (const Row& row : rows) {
      row_results.push_back(EvalExpr(expr, layout_, row));
      if (!row_results.back().ok()) {
        row_errors.push_back(row_results.back().status().message());
      }
    }

    SelVec sel;
    for (uint32_t i = 0; i < rows.size(); ++i) sel.push_back(i);
    Status batch_status = EvalExprBatch(program, &ctx, rows, /*base=*/0, sel);
    if (row_errors.empty()) {
      ASSERT_TRUE(batch_status.ok())
          << expr->ToString() << ": " << batch_status.ToString();
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_TRUE(*row_results[i] == ctx.slot(program.root())[i])
            << expr->ToString() << " row " << i;
      }
    } else {
      ASSERT_FALSE(batch_status.ok()) << expr->ToString();
      bool known_error = false;
      for (const std::string& message : row_errors) {
        known_error = known_error || message == batch_status.message();
      }
      EXPECT_TRUE(known_error)
          << expr->ToString() << ": batch error '" << batch_status.message()
          << "' matches no row error";
    }

    // EvalPredicateBatch over an error-free chunk selects exactly the rows
    // EvalPredicate keeps, in ascending row order.
    if (row_errors.empty()) {
      SelVec expected;
      bool pred_ok = true;
      for (uint32_t i = 0; i < rows.size(); ++i) {
        auto row_pred = EvalPredicate(expr, layout_, rows[i]);
        if (!row_pred.ok()) {
          pred_ok = false;  // non-boolean predicate value
          break;
        }
        if (*row_pred) expected.push_back(i);
      }
      SelVec out_sel;
      Status pred_status = EvalPredicateBatch(program, &ctx, rows, 0, sel, &out_sel);
      if (pred_ok) {
        ASSERT_TRUE(pred_status.ok()) << expr->ToString();
        EXPECT_EQ(expected, out_sel) << expr->ToString();
      } else {
        EXPECT_FALSE(pred_status.ok()) << expr->ToString();
      }
    }
  }
}

}  // namespace
}  // namespace mppdb
