#include <gtest/gtest.h>

#include "db/database.h"
#include "optimizer/planner/legacy_planner.h"
#include "sql/binder.h"
#include "test_util.h"

namespace mppdb {
namespace {

int CountNodes(const PhysPtr& plan, PhysNodeKind kind) {
  int count = plan->kind() == kind ? 1 : 0;
  for (const auto& child : plan->children()) count += CountNodes(child, kind);
  return count;
}

class LegacyPlannerTest : public ::testing::Test {
 protected:
  LegacyPlannerTest() : db_(4) {
    MPPDB_CHECK(db_.CreatePartitionedTable(
                       "fact", Schema({{"sk", TypeId::kInt64},
                                       {"val", TypeId::kDouble}}),
                       TableDistribution::kHashed, {0},
                       {{0, PartitionMethod::kRange}},
                       {partition_bounds::IntRanges(0, 10, 12)})
                    .ok());
    MPPDB_CHECK(db_.CreateTable("dim", Schema({{"k", TypeId::kInt64},
                                               {"tag", TypeId::kString}}),
                                TableDistribution::kHashed, {0})
                    .ok());
    std::vector<Row> fact_rows, dim_rows;
    for (int i = 0; i < 120; ++i) {
      fact_rows.push_back({Datum::Int64(i), Datum::Double(i * 0.5)});
    }
    for (int i = 0; i < 12; ++i) {
      dim_rows.push_back({Datum::Int64(i * 10 + 5),
                          Datum::String(i % 2 == 0 ? "even" : "odd")});
    }
    MPPDB_CHECK(db_.Load("fact", fact_rows).ok());
    MPPDB_CHECK(db_.Load("dim", dim_rows).ok());
  }

  Result<PhysPtr> Plan(const std::string& sql, LegacyPlanner::Options options = {}) {
    Binder binder(&db_.catalog());
    auto stmt = binder.BindSql(sql);
    MPPDB_CHECK(stmt.ok());
    LegacyPlanner planner(&db_.catalog(), &db_.storage(), options);
    BoundStatement normalized = *stmt;
    normalized.root = NormalizeLogical(stmt->root);
    return planner.Plan(normalized);
  }

  Database db_;
};

TEST_F(LegacyPlannerTest, StaticExclusionProducesPrunedAppend) {
  auto plan = Plan("SELECT * FROM fact WHERE sk < 30");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // 3 of 12 leaves enumerated explicitly.
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kTableScan), 3);
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kDynamicScan), 0);
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 30u);
}

TEST_F(LegacyPlannerTest, StaticExclusionDisabledListsAllLeaves) {
  LegacyPlanner::Options options;
  options.enable_static_elimination = false;
  auto plan = Plan("SELECT * FROM fact WHERE sk < 30", options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kTableScan), 12);
}

TEST_F(LegacyPlannerTest, ContradictoryPredicateYieldsEmptyValues) {
  auto plan = Plan("SELECT * FROM fact WHERE sk < 0");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kTableScan), 0);
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(LegacyPlannerTest, InnerJoinGetsParamDpeWithFullPartitionList) {
  auto plan = Plan("SELECT count(*) FROM fact f JOIN dim d ON f.sk = d.k");
  ASSERT_TRUE(plan.ok());
  // Paper §4.4.2: the plan lists all partitions as CheckedPartScans and a
  // PartitionSelector computes the qualifying OIDs at run time.
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kCheckedPartScan), 12);
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kPartitionSelector), 1);
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int64_value(), 12);
  // Run time still pruned every partition (each dim key hits one leaf).
  Oid fact_oid = db_.catalog().FindTable("fact")->oid;
  EXPECT_EQ(result->stats.PartitionsScanned(fact_oid), 12u);
}

TEST_F(LegacyPlannerTest, ParamDpeActuallyPrunes) {
  auto plan = Plan("SELECT count(*) FROM fact f JOIN dim d ON f.sk = d.k "
                   "WHERE d.tag = 'even'");
  ASSERT_TRUE(plan.ok());
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  Oid fact_oid = db_.catalog().FindTable("fact")->oid;
  EXPECT_EQ(result->stats.PartitionsScanned(fact_oid), 6u);
}

TEST_F(LegacyPlannerTest, SemiJoinHasNoDynamicElimination) {
  // The legacy planner's rudimentary DPE does not cover IN (subquery).
  auto plan = Plan(
      "SELECT count(*) FROM fact WHERE sk IN (SELECT k FROM dim WHERE tag = 'even')");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kCheckedPartScan), 0);
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kTableScan), 12 + 1);  // fact + dim
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int64_value(), 6);
}

TEST_F(LegacyPlannerTest, DynamicEliminationCanBeDisabled) {
  LegacyPlanner::Options options;
  options.enable_dynamic_elimination = false;
  auto plan = Plan("SELECT count(*) FROM fact f JOIN dim d ON f.sk = d.k", options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kCheckedPartScan), 0);
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kPartitionSelector), 0);
}

TEST_F(LegacyPlannerTest, PairwiseDmlJoinIsQuadratic) {
  MPPDB_CHECK(db_.CreatePartitionedTable(
                     "fact2", Schema({{"sk", TypeId::kInt64},
                                      {"val", TypeId::kDouble}}),
                     TableDistribution::kHashed, {0}, {{0, PartitionMethod::kRange}},
                     {partition_bounds::IntRanges(0, 10, 12)})
                  .ok());
  std::vector<Row> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({Datum::Int64(i * 3), Datum::Double(i)});
  }
  MPPDB_CHECK(db_.Load("fact2", rows).ok());

  auto plan = Plan("UPDATE fact SET val = f2.val FROM fact2 f2 WHERE fact.sk = f2.sk");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // 12 x 12 per-partition-pair joins (paper §4.4.3).
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kHashJoin), 144);
  // And it still executes correctly.
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].int64_value(), 40);
  auto check = db_.Run("SELECT sum(val) FROM fact WHERE sk = 0");
  ASSERT_TRUE(check.ok());
  EXPECT_DOUBLE_EQ(check->rows[0][0].double_value(), 0.0);
}

TEST_F(LegacyPlannerTest, GatherRootForSelects) {
  auto plan = Plan("SELECT * FROM fact");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ((*plan)->kind(), PhysNodeKind::kMotion);
  EXPECT_EQ(static_cast<const MotionNode&>(**plan).motion_kind(), MotionKind::kGather);
}

}  // namespace
}  // namespace mppdb
