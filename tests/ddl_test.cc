// SQL DDL tests: CREATE TABLE with GPDB-style DISTRIBUTED BY and
// PARTITION BY RANGE/LIST clauses (paper §3.2), plus DROP TABLE.

#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"
#include "types/date.h"

namespace mppdb {
namespace {

TEST(DdlTest, CreatePlainTable) {
  Database db(2);
  auto result = db.Run(
      "CREATE TABLE t (a bigint, b varchar, c double) DISTRIBUTED BY (a)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TableDescriptor* table = db.catalog().FindTable("t");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->schema.size(), 3u);
  EXPECT_EQ(table->schema.column(1).type, TypeId::kString);
  EXPECT_EQ(table->distribution, TableDistribution::kHashed);
  EXPECT_EQ(table->distribution_columns, std::vector<int>{0});
  EXPECT_FALSE(table->IsPartitioned());
  // And it is immediately usable.
  ASSERT_TRUE(db.Run("INSERT INTO t VALUES (1, 'x', 2.5)").ok());
  auto rows = db.Run("SELECT count(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].int64_value(), 1);
}

TEST(DdlTest, CreateRangePartitionedByDate) {
  Database db(2);
  // 24 monthly-ish partitions via EVERY in days.
  auto result = db.Run(
      "CREATE TABLE orders (odate date, amount double) DISTRIBUTED BY (amount) "
      "PARTITION BY RANGE (odate) "
      "START '2012-01-01' END '2014-01-01' EVERY 31");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TableDescriptor* table = db.catalog().FindTable("orders");
  ASSERT_TRUE(table->IsPartitioned());
  int expected = (date::FromYMD(2014, 1, 1) - date::FromYMD(2012, 1, 1) + 30) / 31;
  EXPECT_EQ(table->partition_scheme->NumLeaves(), static_cast<size_t>(expected));
  // Pruning works on the DDL-created table.
  ASSERT_TRUE(db.Run("INSERT INTO orders VALUES ('2012-01-15', 5.0), "
                     "('2013-06-01', 7.0)")
                  .ok());
  auto pruned = db.Run("SELECT count(*) FROM orders WHERE odate < '2012-03-01'");
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->rows[0][0].int64_value(), 1);
  EXPECT_LT(pruned->stats.PartitionsScanned(table->oid),
            table->partition_scheme->NumLeaves());
}

TEST(DdlTest, CreateMultiLevelWithListSubpartition) {
  Database db(2);
  auto result = db.Run(
      "CREATE TABLE sales (sk bigint, region varchar, amount double) "
      "DISTRIBUTED BY (sk) "
      "PARTITION BY RANGE (sk) START 0 END 100 EVERY 25 "
      "SUBPARTITION BY LIST (region) VALUES ('east', 'west')");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TableDescriptor* table = db.catalog().FindTable("sales");
  ASSERT_TRUE(table->IsPartitioned());
  EXPECT_EQ(table->partition_scheme->num_levels(), 2u);
  EXPECT_EQ(table->partition_scheme->NumLeaves(), 8u);  // 4 ranges x 2 regions
  ASSERT_TRUE(db.Run("INSERT INTO sales VALUES (10, 'east', 1.0), "
                     "(60, 'west', 2.0)")
                  .ok());
  auto one = db.Run(
      "SELECT count(*) FROM sales WHERE sk BETWEEN 0 AND 24 AND region = 'east'");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->rows[0][0].int64_value(), 1);
  EXPECT_EQ(one->stats.PartitionsScanned(table->oid), 1u);
}

TEST(DdlTest, CreateReplicatedAndRandom) {
  Database db(2);
  ASSERT_TRUE(db.Run("CREATE TABLE r1 (x int) DISTRIBUTED REPLICATED").ok());
  ASSERT_TRUE(db.Run("CREATE TABLE r2 (x int) DISTRIBUTED RANDOMLY").ok());
  ASSERT_TRUE(db.Run("CREATE TABLE r3 (x int)").ok());  // default random
  EXPECT_EQ(db.catalog().FindTable("r1")->distribution,
            TableDistribution::kReplicated);
  EXPECT_EQ(db.catalog().FindTable("r2")->distribution, TableDistribution::kRandom);
  EXPECT_EQ(db.catalog().FindTable("r3")->distribution, TableDistribution::kRandom);
}

TEST(DdlTest, DropTable) {
  Database db(2);
  ASSERT_TRUE(db.Run("CREATE TABLE victim (x int)").ok());
  ASSERT_TRUE(db.Run("INSERT INTO victim VALUES (1)").ok());
  auto drop = db.Run("DROP TABLE victim");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(db.catalog().FindTable("victim"), nullptr);
  EXPECT_FALSE(db.Run("SELECT * FROM victim").ok());
  // Name can be reused.
  ASSERT_TRUE(db.Run("CREATE TABLE victim (y bigint)").ok());
  EXPECT_TRUE(db.Run("SELECT y FROM victim").ok());
}

TEST(DdlTest, DdlErrors) {
  Database db(2);
  EXPECT_FALSE(db.Run("DROP TABLE never_existed").ok());
  EXPECT_FALSE(db.Run("CREATE TABLE bad (x sometype)").ok());
  EXPECT_FALSE(db.Run("CREATE TABLE bad (x int) DISTRIBUTED BY (nope)").ok());
  EXPECT_FALSE(db.Run("CREATE TABLE bad (x int) "
                      "PARTITION BY RANGE (nope) START 0 END 10 EVERY 1")
                   .ok());
  EXPECT_FALSE(db.Run("CREATE TABLE bad (x int) "
                      "PARTITION BY RANGE (x) START 10 END 0 EVERY 1")
                   .ok());
  EXPECT_FALSE(db.Run("CREATE TABLE bad (x int) "
                      "PARTITION BY RANGE (x) START 0 END 10 EVERY 0")
                   .ok());
  ASSERT_TRUE(db.Run("CREATE TABLE dup (x int)").ok());
  EXPECT_FALSE(db.Run("CREATE TABLE dup (x int)").ok());
}

TEST(DdlTest, ColumnNamedDateStillWorksInDdl) {
  Database db(2);
  // "date" is a soft keyword: valid as both column name and type.
  auto result = db.Run("CREATE TABLE d (date date, v int) "
                       "PARTITION BY RANGE (date) "
                       "START '2020-01-01' END '2020-03-01' EVERY 10");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(db.catalog().FindTable("d")->IsPartitioned());
}

}  // namespace
}  // namespace mppdb
