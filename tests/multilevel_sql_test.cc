// End-to-end SQL tests for multi-level (hierarchical) partitioning — the
// paper's §2.4 and Figs. 9-11 — through the full stack: binder, both
// optimizers, placement, and runtime selection on both levels.

#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::SameRows;

class MultilevelSqlTest : public ::testing::Test {
 protected:
  MultilevelSqlTest() : db_(3) {
    // orders partitioned by month (24) x region (4) = 96 leaves (Fig. 9).
    std::vector<Datum> regions;
    for (int r = 1; r <= 4; ++r) {
      regions.push_back(Datum::String("Region " + std::to_string(r)));
    }
    MPPDB_CHECK(db_.CreatePartitionedTable(
                       "orders",
                       Schema({{"date", TypeId::kDate},
                               {"region", TypeId::kString},
                               {"amount", TypeId::kDouble}}),
                       TableDistribution::kHashed, {2},
                       {{0, PartitionMethod::kRange},
                        {1, PartitionMethod::kList}},
                       {partition_bounds::Monthly(2012, 1, 24),
                        partition_bounds::ListValues(regions)})
                    .ok());
    MPPDB_CHECK(db_.CreateTable("region_dim",
                                Schema({{"name", TypeId::kString},
                                        {"zone", TypeId::kInt64}}),
                                TableDistribution::kHashed, {0})
                    .ok());

    std::vector<Row> rows;
    for (int month = 0; month < 24; ++month) {
      for (int region = 1; region <= 4; ++region) {
        rows.push_back({Datum::Date(date::FromYMD(2012 + month / 12,
                                                  month % 12 + 1, 10)),
                        Datum::String("Region " + std::to_string(region)),
                        Datum::Double(month + region * 0.1)});
      }
    }
    MPPDB_CHECK(db_.Load("orders", rows).ok());
    MPPDB_CHECK(db_.Load("region_dim", {{Datum::String("Region 1"), Datum::Int64(1)},
                                        {Datum::String("Region 2"), Datum::Int64(1)},
                                        {Datum::String("Region 3"), Datum::Int64(2)},
                                        {Datum::String("Region 4"), Datum::Int64(2)}})
                    .ok());
    orders_oid_ = db_.catalog().FindTable("orders")->oid;
  }

  size_t PartsScanned(const std::string& sql, QueryOptions options = {}) {
    auto result = db_.Run(sql, options);
    MPPDB_CHECK(result.ok());
    return result->stats.PartitionsScanned(orders_oid_);
  }

  Database db_;
  Oid orders_oid_ = kInvalidOid;
};

// The four rows of the paper's Fig. 10.
TEST_F(MultilevelSqlTest, Fig10DateOnly) {
  EXPECT_EQ(PartsScanned("SELECT count(*) FROM orders "
                         "WHERE date BETWEEN '2012-01-01' AND '2012-01-31'"),
            4u);  // T1,1 .. T1,n
}

TEST_F(MultilevelSqlTest, Fig10RegionOnly) {
  EXPECT_EQ(PartsScanned("SELECT count(*) FROM orders WHERE region = 'Region 1'"),
            24u);  // T1,1, T2,1, ..., T24,1
}

TEST_F(MultilevelSqlTest, Fig10BothLevels) {
  EXPECT_EQ(PartsScanned("SELECT count(*) FROM orders "
                         "WHERE date BETWEEN '2012-01-01' AND '2012-01-31' "
                         "AND region = 'Region 1'"),
            1u);  // T1,1
}

TEST_F(MultilevelSqlTest, Fig10NoPredicate) {
  EXPECT_EQ(PartsScanned("SELECT count(*) FROM orders"), 96u);  // all leaves
}

TEST_F(MultilevelSqlTest, RegionInListPrunesSecondLevel) {
  EXPECT_EQ(PartsScanned("SELECT count(*) FROM orders "
                         "WHERE region IN ('Region 2', 'Region 3')"),
            48u);
}

TEST_F(MultilevelSqlTest, DynamicEliminationOnSecondLevel) {
  // Join constrains the region level at run time; date level statically.
  const char* sql =
      "SELECT count(*) FROM orders o JOIN region_dim r ON o.region = r.name "
      "WHERE r.zone = 2 AND o.date >= '2013-01-01'";
  size_t parts = PartsScanned(sql);
  // 12 months of 2013 x 2 regions in zone 2.
  EXPECT_EQ(parts, 24u);
  // Same result without selection, scanning everything.
  QueryOptions off;
  off.enable_partition_selection = false;
  auto pruned = db_.Run(sql);
  auto full = db_.Run(sql, off);
  ASSERT_TRUE(pruned.ok() && full.ok());
  EXPECT_TRUE(SameRows(pruned->rows, full->rows));
  EXPECT_EQ(full->stats.PartitionsScanned(orders_oid_), 96u);
}

TEST_F(MultilevelSqlTest, LegacyPlannerPrunesStaticallyOnBothLevels) {
  QueryOptions legacy;
  legacy.optimizer = OptimizerKind::kLegacyPlanner;
  EXPECT_EQ(PartsScanned("SELECT count(*) FROM orders "
                         "WHERE date BETWEEN '2012-01-01' AND '2012-01-31' "
                         "AND region = 'Region 1'",
                         legacy),
            1u);
}

TEST_F(MultilevelSqlTest, UpdateAcrossLevels) {
  // Move a row to another region: second-level repartitioning via f_T.
  auto update = db_.Run(
      "UPDATE orders SET region = 'Region 4' "
      "WHERE region = 'Region 1' AND date BETWEEN '2012-01-01' AND '2012-01-31'");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_EQ(update->rows[0][0].int64_value(), 1);
  EXPECT_EQ(PartsScanned("SELECT count(*) FROM orders "
                         "WHERE date BETWEEN '2012-01-01' AND '2012-01-31' "
                         "AND region = 'Region 4'"),
            1u);
  auto count = db_.Run("SELECT count(*) FROM orders "
                       "WHERE date BETWEEN '2012-01-01' AND '2012-01-31' "
                       "AND region = 'Region 4'");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].int64_value(), 2);  // original + moved
}

}  // namespace
}  // namespace mppdb
