// Fault-matrix property test: random SQL queries over a partitioned star
// schema, executed under every named fault point × fault kind ×
// {serial, parallel} × {row, vectorized} — plus a morsel-scheduler mode with
// the pool (4 workers) wider than the segment count (3), so faults fire
// across Motion suspension/resume and continuation rescheduling — with
// query-level transient retries enabled. The contract for every cell of the
// matrix:
//
//   - success means BIT-IDENTICAL rows and ExecStats to the fault-free
//     serial row-at-a-time oracle (a cured transient retry leaves no trace);
//   - failure means a clean typed Status from the resilience taxonomy —
//     never a hang, a crash, or an untyped error;
//   - the Database (executor, hub, exchanges, join filters) is immediately
//     reusable for the next cell, with no state leaking across runs.
//
// A second sweep drives random memory budgets through the same queries:
// every run either succeeds with oracle rows (advisory allocations may shed)
// or fails kResourceExhausted.
//
// Built under AddressSanitizer by the asan_fault_matrix ctest entry (see
// tests/CMakeLists.txt), where injected teardown paths run leak- and
// use-after-free-checked.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "db/database.h"
#include "test_util.h"

namespace mppdb {
namespace {

class FaultMatrixTest : public ::testing::Test {
 protected:
  FaultMatrixTest()
      : db_(3),
        db_parallel_(3, Executor::Options{.parallel = true}),
        db_vectorized_(3, Executor::Options{.vectorized = true}),
        db_parallel_vec_(3,
                         Executor::Options{.parallel = true, .vectorized = true}),
        db_parallel_morsel_(3, Executor::Options{.parallel = true,
                                                 .max_workers = 4,
                                                 .morsel_rows = 1024,
                                                 .vectorized = true}) {
    Random rng(20260807);
    std::vector<Row> fact_rows;
    for (int i = 0; i < 500; ++i) {
      fact_rows.push_back({Datum::Int64(rng.UniformRange(0, 399)),
                           Datum::Int64(rng.UniformRange(1, 10)),
                           Datum::Int64(rng.UniformRange(0, 99))});
    }
    std::vector<Row> dim_rows;
    for (int k = 0; k < 400; k += 5) {
      dim_rows.push_back({Datum::Int64(k), Datum::Int64(k % 7)});
    }
    for (Database* db : AllModes()) {
      MPPDB_CHECK(db->CreatePartitionedTable(
                         "fact", Schema({{"sk", TypeId::kInt64},
                                         {"qty", TypeId::kInt64},
                                         {"v", TypeId::kInt64}}),
                         TableDistribution::kHashed, {1},
                         {{0, PartitionMethod::kRange}},
                         {partition_bounds::IntRanges(0, 25, 16)})
                      .ok());
      MPPDB_CHECK(db->CreateTable("dim", Schema({{"k", TypeId::kInt64},
                                                 {"grp", TypeId::kInt64}}),
                                  TableDistribution::kHashed, {0})
                      .ok());
      MPPDB_CHECK(db->Load("fact", fact_rows).ok());
      MPPDB_CHECK(db->Load("dim", dim_rows).ok());
    }
  }

  std::vector<Database*> AllModes() {
    return {&db_, &db_parallel_, &db_vectorized_, &db_parallel_vec_,
            &db_parallel_morsel_};
  }

  std::string RandomPredicate(Random* rng) {
    switch (rng->Uniform(4)) {
      case 0:
        return "sk < " + std::to_string(rng->UniformRange(50, 400));
      case 1:
        return "sk BETWEEN " + std::to_string(rng->UniformRange(0, 150)) +
               " AND " + std::to_string(rng->UniformRange(100, 380));
      case 2:
        return "qty >= " + std::to_string(rng->UniformRange(2, 8));
      default:
        return "(sk < " + std::to_string(rng->UniformRange(100, 300)) +
               " AND qty < " + std::to_string(rng->UniformRange(3, 9)) + ")";
    }
  }

  // Query shapes chosen to reach every fault point: partitioned scans with
  // sargable predicates (storage.scan_chunk, exec.batch), joins with
  // selector-driven dynamic elimination and runtime filters (hub.push,
  // joinfilter.publish, alloc.budget), aggregation and ordering (exec.batch,
  // alloc.budget), and Motions everywhere (motion.send / motion.recv).
  std::vector<std::string> RandomQueries(Random* rng) {
    return {
        "SELECT sk, qty FROM fact WHERE " + RandomPredicate(rng),
        "SELECT qty, count(*), sum(v) FROM fact WHERE " + RandomPredicate(rng) +
            " GROUP BY qty ORDER BY qty",
        "SELECT count(*) FROM fact f JOIN dim d ON f.sk = d.k WHERE " +
            RandomPredicate(rng),
        "SELECT sk FROM fact WHERE " + RandomPredicate(rng) + " ORDER BY sk",
    };
  }

  static bool IsTypedResilienceError(const Status& status) {
    switch (status.code()) {
      case StatusCode::kTransientIO:
      case StatusCode::kInternal:
      case StatusCode::kCancelled:
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kResourceExhausted:
        return true;
      default:
        return false;
    }
  }

  Database db_;
  Database db_parallel_;
  Database db_vectorized_;
  Database db_parallel_vec_;
  Database db_parallel_morsel_;
};

TEST_F(FaultMatrixTest, EveryFaultPointInEveryModeIsIdenticalOrTyped) {
  Random rng(99);
  const std::vector<std::string> queries = RandomQueries(&rng);

  for (const std::string& sql : queries) {
    // Fault-free oracle: serial row-at-a-time.
    auto oracle = db_.Run(sql);
    ASSERT_TRUE(oracle.ok()) << sql << "\n" << oracle.status().ToString();

    for (Database* db : AllModes()) {
      const std::string mode =
          std::string(" [parallel=") +
          (db->exec_options().parallel ? "1" : "0") + " vectorized=" +
          (db->exec_options().vectorized ? "1" : "0") + "]";
      for (const char* point : FaultInjector::kPoints) {
        for (FaultKind kind : {FaultKind::kTransient, FaultKind::kFatal}) {
          FaultInjector injector(rng.Next());
          FaultSpec spec;
          spec.kind = kind;
          spec.probability = 0.7;
          spec.skip_first = static_cast<int>(rng.Uniform(4));
          injector.Arm(point, spec);

          QueryOptions options;
          options.fault_injector = &injector;
          options.max_transient_retries = 2;
          options.retry_backoff_ms = 0;
          auto result = db->Run(sql, options);
          const std::string cell =
              sql + mode + " point=" + point +
              (kind == FaultKind::kTransient ? " transient" : " fatal");
          if (result.ok()) {
            // Either the fault never fired or a retry cured a transient —
            // both must leave a bit-identical result.
            EXPECT_TRUE(result->rows == oracle->rows) << cell;
            EXPECT_TRUE(result->stats == oracle->stats) << cell;
            if (kind == FaultKind::kFatal) {
              EXPECT_EQ(injector.fires(point), 0u) << cell;
            }
          } else {
            EXPECT_TRUE(IsTypedResilienceError(result.status()))
                << cell << ": " << result.status().ToString();
            EXPECT_GT(injector.fires(point), 0u) << cell;
            if (kind == FaultKind::kFatal) {
              EXPECT_EQ(result.status().code(), StatusCode::kInternal) << cell;
            } else {
              EXPECT_EQ(result.status().code(), StatusCode::kTransientIO) << cell;
            }
          }
        }
      }
      // No state leaks across cells: a fault-free run on the same Database
      // still matches the oracle exactly.
      auto clean = db->Run(sql);
      ASSERT_TRUE(clean.ok()) << sql << mode << "\n" << clean.status().ToString();
      EXPECT_TRUE(clean->rows == oracle->rows) << sql << mode;
      EXPECT_TRUE(clean->stats == oracle->stats) << sql << mode;
    }
  }
}

TEST_F(FaultMatrixTest, RandomMemoryBudgetsAreOracleRowsOrResourceExhausted) {
  Random rng(7);
  const std::vector<std::string> queries = RandomQueries(&rng);
  const size_t budgets[] = {64, 512, 4096, 32768, 1u << 20};

  for (const std::string& sql : queries) {
    auto oracle = db_.Run(sql);
    ASSERT_TRUE(oracle.ok()) << sql << "\n" << oracle.status().ToString();

    for (Database* db : AllModes()) {
      for (size_t budget : budgets) {
        QueryOptions options;
        options.memory_limit_bytes = budget;
        auto result = db->Run(sql, options);
        const std::string cell = sql + " budget=" + std::to_string(budget);
        if (result.ok()) {
          // Advisory allocations (join-filter summaries, synopsis rebuilds)
          // may shed under pressure, so stats can legitimately differ — the
          // rows may not.
          EXPECT_TRUE(result->rows == oracle->rows) << cell;
        } else {
          EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
              << cell << ": " << result.status().ToString();
        }
      }
      // Unlimited again: bit-identical, no residue from refused charges.
      auto clean = db->Run(sql);
      ASSERT_TRUE(clean.ok()) << sql << "\n" << clean.status().ToString();
      EXPECT_TRUE(clean->rows == oracle->rows) << sql;
      EXPECT_TRUE(clean->stats == oracle->stats) << sql;
    }
  }
}

// --- Spill fault points ---------------------------------------------------
//
// The sweeps above never trip the memory budget, so the spill.* points are
// vacuous there. This matrix drives a query that must spill (both join
// sides ~320 KB estimated against a 450 KB limit, DESIGN.md §14) through
// every spill point × kind × executor mode, with the same contract — plus
// one more: the spill directory is empty after every outcome, success or
// failure, so injected I/O errors never leak temp files.
TEST(SpillFaultMatrixTest, SpillPointsAreCuredOrTypedAndLeakFree) {
  namespace fs = std::filesystem;
  const auto files_under = [](const std::string& dir) {
    size_t n = 0;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (it->is_regular_file(ec)) ++n;
    }
    return n;
  };
  const std::string spill_dir =
      (fs::temp_directory_path() /
       ("mppdb-fault-matrix-spill-" + std::to_string(::getpid())))
          .string();
  fs::create_directories(spill_dir);

  const Executor::Options modes[] = {
      {},
      {.vectorized = true},
      {.parallel = true},
      {.parallel = true, .vectorized = true},
      {.parallel = true, .max_workers = 4, .morsel_rows = 1024,
       .vectorized = true},
  };

  Random rng(20260809);
  for (const Executor::Options& mode : modes) {
    Database db(1, mode);
    ASSERT_TRUE(db.Run("CREATE TABLE d (id BIGINT, t BIGINT)").ok());
    ASSERT_TRUE(db.Run("CREATE TABLE f (a BIGINT, b BIGINT)").ok());
    for (const char* table : {"d", "f"}) {
      for (int64_t base = 0; base < 4000; base += 500) {
        std::string sql = std::string("INSERT INTO ") + table + " VALUES ";
        for (int64_t i = base; i < base + 500; ++i) {
          if (i != base) sql += ", ";
          sql += "(" + std::to_string(i) + ", " + std::to_string(i % 150) + ")";
        }
        ASSERT_TRUE(db.Run(sql).ok());
      }
    }
    const std::string sql = "SELECT count(*) FROM f JOIN d ON f.b = d.id";
    auto oracle = db.Run(sql);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    for (const char* point : {"spill.open", "spill.write", "spill.read"}) {
      for (FaultKind kind : {FaultKind::kTransient, FaultKind::kFatal}) {
        // max_fires 1: a transient must be cured by the retry loop;
        // unlimited: every attempt refaults and the typed error surfaces.
        for (int max_fires : {1, -1}) {
          FaultInjector injector(rng.Next());
          FaultSpec spec;
          spec.kind = kind;
          spec.skip_first = static_cast<int>(rng.Uniform(6));
          spec.max_fires = max_fires;
          injector.Arm(point, spec);

          QueryOptions options;
          options.fault_injector = &injector;
          options.max_transient_retries = 2;
          options.retry_backoff_ms = 0;
          options.memory_limit_bytes = 450 * 1000;
          options.spill_dir = spill_dir;
          auto result = db.Run(sql, options);
          const std::string cell =
              std::string("point=") + point +
              (kind == FaultKind::kTransient ? " transient" : " fatal") +
              " max_fires=" + std::to_string(max_fires) +
              " parallel=" + (mode.parallel ? "1" : "0") +
              " vectorized=" + (mode.vectorized ? "1" : "0");
          EXPECT_GT(injector.hits(point), 0u) << cell << ": query never spilled";
          if (kind == FaultKind::kTransient && max_fires == 1) {
            // One transient fire, then the query-level retry completes.
            ASSERT_TRUE(result.ok()) << cell << ": "
                                     << result.status().ToString();
          }
          if (result.ok()) {
            EXPECT_TRUE(result->rows == oracle->rows) << cell;
            EXPECT_GT(result->stats.spill_bytes_written, 0u) << cell;
          } else {
            EXPECT_GT(injector.fires(point), 0u) << cell;
            EXPECT_EQ(result.status().code(),
                      kind == FaultKind::kFatal ? StatusCode::kInternal
                                                : StatusCode::kTransientIO)
                << cell << ": " << result.status().ToString();
          }
          EXPECT_EQ(files_under(spill_dir), 0u)
              << cell << ": leaked spill files";
        }
      }
    }
    // The Database is immediately reusable after every injected outcome.
    QueryOptions spill_only;
    spill_only.memory_limit_bytes = 450 * 1000;
    spill_only.spill_dir = spill_dir;
    auto clean = db.Run(sql, spill_only);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_TRUE(clean->rows == oracle->rows);
    EXPECT_GT(clean->stats.spill_bytes_written, 0u);
    EXPECT_EQ(files_under(spill_dir), 0u);
  }
  std::error_code ec;
  fs::remove_all(spill_dir, ec);
}

}  // namespace
}  // namespace mppdb
