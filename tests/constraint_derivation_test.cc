#include <gtest/gtest.h>

#include "common/random.h"
#include "expr/constraint_derivation.h"
#include "expr/eval.h"

namespace mppdb {
namespace {

constexpr ColRefId kKey = 1;
constexpr ColRefId kOther = 2;
constexpr ColRefId kOuter = 3;

ExprPtr Key() { return MakeColumnRef(kKey, "pk", TypeId::kInt64); }
ExprPtr Other() { return MakeColumnRef(kOther, "x", TypeId::kInt64); }
ExprPtr Lit(int64_t v) { return MakeConst(Datum::Int64(v)); }

TEST(DeriveConstraintTest, SimpleComparisons) {
  ConstraintSet c = DeriveConstraint(MakeComparison(CompareOp::kLt, Key(), Lit(10)), kKey);
  EXPECT_TRUE(c.Contains(Datum::Int64(9)));
  EXPECT_FALSE(c.Contains(Datum::Int64(10)));
}

TEST(DeriveConstraintTest, ReversedSides) {
  // 10 > pk  ==  pk < 10
  ConstraintSet c = DeriveConstraint(MakeComparison(CompareOp::kGt, Lit(10), Key()), kKey);
  EXPECT_TRUE(c.Contains(Datum::Int64(9)));
  EXPECT_FALSE(c.Contains(Datum::Int64(10)));
}

TEST(DeriveConstraintTest, ConstantFoldedSide) {
  // pk = 2 + 3
  ConstraintSet c = DeriveConstraint(
      MakeComparison(CompareOp::kEq, Key(), MakeArith(ArithOp::kAdd, Lit(2), Lit(3))),
      kKey);
  EXPECT_TRUE(c.Contains(Datum::Int64(5)));
  EXPECT_FALSE(c.Contains(Datum::Int64(6)));
}

TEST(DeriveConstraintTest, AndIntersects) {
  ExprPtr between = Conj({MakeComparison(CompareOp::kGe, Key(), Lit(10)),
                          MakeComparison(CompareOp::kLe, Key(), Lit(12))});
  ConstraintSet c = DeriveConstraint(between, kKey);
  EXPECT_TRUE(c.Contains(Datum::Int64(10)));
  EXPECT_TRUE(c.Contains(Datum::Int64(12)));
  EXPECT_FALSE(c.Contains(Datum::Int64(13)));
  EXPECT_FALSE(c.Contains(Datum::Int64(9)));
}

TEST(DeriveConstraintTest, OrUnions) {
  ExprPtr either = MakeOr({MakeComparison(CompareOp::kEq, Key(), Lit(1)),
                           MakeComparison(CompareOp::kEq, Key(), Lit(5))});
  ConstraintSet c = DeriveConstraint(either, kKey);
  EXPECT_TRUE(c.Contains(Datum::Int64(1)));
  EXPECT_TRUE(c.Contains(Datum::Int64(5)));
  EXPECT_FALSE(c.Contains(Datum::Int64(3)));
}

TEST(DeriveConstraintTest, OrWithUnanalyzableBranchIsAll) {
  ExprPtr either = MakeOr({MakeComparison(CompareOp::kEq, Key(), Lit(1)),
                           MakeComparison(CompareOp::kEq, Other(), Lit(5))});
  EXPECT_TRUE(DeriveConstraint(either, kKey).IsAll());
}

TEST(DeriveConstraintTest, AndWithUnanalyzableConjunctStillPrunes) {
  ExprPtr pred = Conj({MakeComparison(CompareOp::kLt, Key(), Lit(10)),
                       MakeComparison(CompareOp::kEq, Other(), Lit(5))});
  ConstraintSet c = DeriveConstraint(pred, kKey);
  EXPECT_TRUE(c.Contains(Datum::Int64(9)));
  EXPECT_FALSE(c.Contains(Datum::Int64(11)));
}

TEST(DeriveConstraintTest, InList) {
  ConstraintSet c =
      DeriveConstraint(MakeInList({Key(), Lit(3), Lit(7), Lit(11)}), kKey);
  EXPECT_TRUE(c.Contains(Datum::Int64(7)));
  EXPECT_FALSE(c.Contains(Datum::Int64(8)));
}

TEST(DeriveConstraintTest, PredicateOnOtherColumnIsAll) {
  EXPECT_TRUE(
      DeriveConstraint(MakeComparison(CompareOp::kEq, Other(), Lit(5)), kKey).IsAll());
}

TEST(DeriveConstraintTest, NonConstantComparisonIsAll) {
  // pk = x (join predicate before binding) cannot prune statically.
  EXPECT_TRUE(
      DeriveConstraint(MakeComparison(CompareOp::kEq, Key(), Other()), kKey).IsAll());
}

TEST(DeriveConstraintTest, ConstantFalseIsNone) {
  EXPECT_TRUE(DeriveConstraint(MakeConst(Datum::Bool(false)), kKey).IsNone());
  EXPECT_TRUE(DeriveConstraint(MakeConst(Datum::Null()), kKey).IsNone());
}

TEST(DeriveConstraintTest, NotNegatesComparisons) {
  // NOT (pk = 5) excludes exactly 5.
  ConstraintSet ne =
      DeriveConstraint(MakeNot(MakeComparison(CompareOp::kEq, Key(), Lit(5))), kKey);
  EXPECT_FALSE(ne.Contains(Datum::Int64(5)));
  EXPECT_TRUE(ne.Contains(Datum::Int64(4)));
  // NOT (pk < 10) == pk >= 10.
  ConstraintSet ge =
      DeriveConstraint(MakeNot(MakeComparison(CompareOp::kLt, Key(), Lit(10))), kKey);
  EXPECT_TRUE(ge.Contains(Datum::Int64(10)));
  EXPECT_FALSE(ge.Contains(Datum::Int64(9)));
}

TEST(DeriveConstraintTest, NotBetweenViaDeMorgan) {
  // NOT (pk >= 10 AND pk <= 12) == pk < 10 OR pk > 12.
  ExprPtr between = Conj({MakeComparison(CompareOp::kGe, Key(), Lit(10)),
                          MakeComparison(CompareOp::kLe, Key(), Lit(12))});
  ConstraintSet outside = DeriveConstraint(MakeNot(between), kKey);
  EXPECT_TRUE(outside.Contains(Datum::Int64(9)));
  EXPECT_TRUE(outside.Contains(Datum::Int64(13)));
  EXPECT_FALSE(outside.Contains(Datum::Int64(11)));
}

TEST(DeriveConstraintTest, NotInList) {
  ConstraintSet c =
      DeriveConstraint(MakeNot(MakeInList({Key(), Lit(3), Lit(7)})), kKey);
  EXPECT_FALSE(c.Contains(Datum::Int64(3)));
  EXPECT_FALSE(c.Contains(Datum::Int64(7)));
  EXPECT_TRUE(c.Contains(Datum::Int64(5)));
}

TEST(DeriveConstraintTest, DoubleNegationRoundTrips) {
  ExprPtr pred = MakeComparison(CompareOp::kLt, Key(), Lit(10));
  ConstraintSet twice = DeriveConstraint(MakeNot(MakeNot(pred)), kKey);
  EXPECT_TRUE(twice.Contains(Datum::Int64(9)));
  EXPECT_FALSE(twice.Contains(Datum::Int64(10)));
}

TEST(DeriveConstraintTest, NotOverUnanalyzableIsConservative) {
  // NOT over a predicate on another column stays All.
  EXPECT_TRUE(
      DeriveConstraint(MakeNot(MakeComparison(CompareOp::kEq, Other(), Lit(5))), kKey)
          .IsAll());
}

TEST(FindPredOnKeyTest, ExtractsStaticConjuncts) {
  ExprPtr pred = Conj({MakeComparison(CompareOp::kGe, Key(), Lit(10)),
                       MakeComparison(CompareOp::kEq, Other(), Lit(5))});
  ExprPtr found = FindPredOnKey(kKey, pred, {});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->ToString(), "(pk#1 >= 10)");
}

TEST(FindPredOnKeyTest, RejectsConjunctsNeedingUnavailableColumns) {
  ExprPtr pred = MakeComparison(CompareOp::kEq, Key(), Other());
  EXPECT_EQ(FindPredOnKey(kKey, pred, {}), nullptr);
  // With kOther available (join DPE), the conjunct qualifies.
  EXPECT_NE(FindPredOnKey(kKey, pred, {kOther}), nullptr);
}

TEST(FindPredOnKeyTest, NoKeyReferenceReturnsNull) {
  ExprPtr pred = MakeComparison(CompareOp::kEq, Other(), Lit(5));
  EXPECT_EQ(FindPredOnKey(kKey, pred, {}), nullptr);
}

TEST(FindPredsOnKeysTest, MultiLevel) {
  const ColRefId date_key = 10, region_key = 11;
  ExprPtr pred =
      Conj({MakeComparison(CompareOp::kEq, MakeColumnRef(date_key, "date", TypeId::kDate),
                           MakeConst(Datum::DateFromString("2012-01-15"))),
            MakeComparison(CompareOp::kEq,
                           MakeColumnRef(region_key, "region", TypeId::kString),
                           MakeConst(Datum::String("Region 1")))});
  std::vector<ExprPtr> found = FindPredsOnKeys({date_key, region_key}, pred, {});
  ASSERT_EQ(found.size(), 2u);
  EXPECT_NE(found[0], nullptr);
  EXPECT_NE(found[1], nullptr);

  // Only one level constrained.
  ExprPtr date_only = MakeComparison(CompareOp::kEq,
                                     MakeColumnRef(date_key, "date", TypeId::kDate),
                                     MakeConst(Datum::DateFromString("2012-01-15")));
  found = FindPredsOnKeys({date_key, region_key}, date_only, {});
  ASSERT_EQ(found.size(), 2u);
  EXPECT_NE(found[0], nullptr);
  EXPECT_EQ(found[1], nullptr);

  // No level constrained -> empty result.
  ExprPtr unrelated = MakeComparison(CompareOp::kEq, Other(), Lit(1));
  EXPECT_TRUE(FindPredsOnKeys({date_key, region_key}, unrelated, {}).empty());
}

// Soundness property (the basis of partition pruning): if DeriveConstraint
// says value v is excluded, then no row with pk=v can satisfy the predicate.
TEST(DeriveConstraintPropertyTest, ExclusionIsSound) {
  Random rng(424242);
  ColumnLayout layout(std::vector<ColRefId>{kKey, kOther, kOuter});
  for (int trial = 0; trial < 300; ++trial) {
    // Random predicate tree over key/other/const comparisons.
    std::function<ExprPtr(int)> gen = [&](int depth) -> ExprPtr {
      if (depth == 0 || rng.Bernoulli(0.5)) {
        ExprPtr lhs = rng.Bernoulli(0.7) ? Key() : Other();
        ExprPtr rhs = Lit(rng.UniformRange(-20, 20));
        CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
        return MakeComparison(ops[rng.Uniform(6)], lhs, rhs);
      }
      if (rng.Bernoulli(0.2)) return MakeNot(gen(depth - 1));
      if (rng.Bernoulli(0.5)) return Conj({gen(depth - 1), gen(depth - 1)});
      return MakeOr({gen(depth - 1), gen(depth - 1)});
    };
    ExprPtr pred = gen(3);
    ConstraintSet c = DeriveConstraint(pred, kKey);
    for (int64_t v = -25; v <= 25; ++v) {
      if (c.Contains(Datum::Int64(v))) continue;  // not excluded
      // Try many values of the other columns: predicate must never hold.
      for (int64_t o = -25; o <= 25; o += 5) {
        Row row = {Datum::Int64(v), Datum::Int64(o), Datum::Int64(o + 1)};
        auto result = EvalPredicate(pred, layout, row);
        ASSERT_TRUE(result.ok());
        EXPECT_FALSE(*result) << "pred=" << pred->ToString() << " v=" << v
                              << " o=" << o;
      }
    }
  }
}

}  // namespace
}  // namespace mppdb
