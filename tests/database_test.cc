#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace mppdb {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : db_(2) {
    MPPDB_CHECK(db_.CreatePartitionedTable(
                       "t", Schema({{"k", TypeId::kInt64}, {"v", TypeId::kString}}),
                       TableDistribution::kHashed, {0},
                       {{0, PartitionMethod::kRange}},
                       {partition_bounds::IntRanges(0, 10, 5)})
                    .ok());
  }
  Database db_;
};

TEST_F(DatabaseTest, DdlErrorsSurface) {
  // Duplicate table name.
  EXPECT_FALSE(db_.CreateTable("t", Schema({{"x", TypeId::kInt64}}),
                               TableDistribution::kRandom, {})
                   .ok());
  // Bad partition level alignment.
  EXPECT_FALSE(db_.CreatePartitionedTable(
                     "bad", Schema({{"x", TypeId::kInt64}}),
                     TableDistribution::kRandom, {}, {{0, PartitionMethod::kRange}},
                     {})
                   .ok());
}

TEST_F(DatabaseTest, LoadValidatesTableAndRows) {
  EXPECT_EQ(db_.Load("absent", {}).code(), StatusCode::kNotFound);
  // Out-of-range partition key surfaces a routing error.
  Status st = db_.Load("t", {{Datum::Int64(999), Datum::String("x")}});
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST_F(DatabaseTest, SqlErrorPropagation) {
  EXPECT_EQ(db_.Run("SELEC nonsense").status().code(), StatusCode::kParseError);
  EXPECT_EQ(db_.Run("SELECT missing FROM t").status().code(), StatusCode::kBindError);
  EXPECT_EQ(db_.Run("SELECT * FROM absent").status().code(), StatusCode::kBindError);
}

TEST_F(DatabaseTest, InsertSelectUpdateDeleteRoundTrip) {
  auto insert = db_.Run("INSERT INTO t VALUES (1, 'a'), (11, 'b'), (21, 'c')");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_EQ(insert->rows[0][0].int64_value(), 3);
  EXPECT_EQ(insert->columns, std::vector<std::string>{"count"});

  auto select = db_.Run("SELECT v FROM t WHERE k > 5 ORDER BY v");
  ASSERT_TRUE(select.ok());
  ASSERT_EQ(select->rows.size(), 2u);
  EXPECT_EQ(select->rows[0][0].string_value(), "b");

  auto update = db_.Run("UPDATE t SET v = 'z' WHERE k = 11");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->rows[0][0].int64_value(), 1);

  auto del = db_.Run("DELETE FROM t WHERE k < 10");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->rows[0][0].int64_value(), 1);

  auto remaining = db_.Run("SELECT count(*) FROM t");
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(remaining->rows[0][0].int64_value(), 2);
}

TEST_F(DatabaseTest, ColumnNamesFollowAliases) {
  ASSERT_TRUE(db_.Run("INSERT INTO t VALUES (1, 'a')").ok());
  auto result = db_.Run("SELECT k AS key_alias, count(*) AS n FROM t GROUP BY k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns, (std::vector<std::string>{"key_alias", "n"}));
}

TEST_F(DatabaseTest, ExplainRendersChosenPlan) {
  auto orca = db_.Explain("SELECT * FROM t WHERE k < 20");
  ASSERT_TRUE(orca.ok());
  EXPECT_NE(orca->find("DynamicScan"), std::string::npos);
  EXPECT_NE(orca->find("PartitionSelector"), std::string::npos);

  QueryOptions legacy;
  legacy.optimizer = OptimizerKind::kLegacyPlanner;
  auto planner = db_.Explain("SELECT * FROM t WHERE k < 20", legacy);
  ASSERT_TRUE(planner.ok());
  EXPECT_NE(planner->find("TableScan"), std::string::npos);
  EXPECT_EQ(planner->find("DynamicScan"), std::string::npos);
}

TEST_F(DatabaseTest, HavingFiltersGroups) {
  ASSERT_TRUE(db_.Run("INSERT INTO t VALUES (1,'a'), (1,'b'), (2,'c'), (11,'d')").ok());
  auto result = db_.Run(
      "SELECT k, count(*) FROM t GROUP BY k HAVING count(*) > 1 ORDER BY k");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].int64_value(), 1);
  EXPECT_EQ(result->rows[0][1].int64_value(), 2);
}

TEST_F(DatabaseTest, ExplainStatementReturnsPlanText) {
  auto result = db_.Run("EXPLAIN SELECT * FROM t WHERE k < 20");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->columns, std::vector<std::string>{"QUERY PLAN"});
  const std::string& text = result->rows[0][0].string_value();
  EXPECT_NE(text.find("PartitionSelector"), std::string::npos);
  EXPECT_NE(text.find("DynamicScan"), std::string::npos);
  // EXPLAIN of DML does not modify the table.
  auto before = db_.Run("SELECT count(*) FROM t");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(db_.Run("EXPLAIN DELETE FROM t").ok());
  auto after = db_.Run("SELECT count(*) FROM t");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->rows[0][0].int64_value(), after->rows[0][0].int64_value());
}

TEST_F(DatabaseTest, MissingParamsFailExecution) {
  ASSERT_TRUE(db_.Run("INSERT INTO t VALUES (1, 'a')").ok());
  // A plan with an unbound $1 cannot execute.
  auto result = db_.Run("SELECT count(*) FROM t WHERE k < $1");
  EXPECT_FALSE(result.ok());
  // Bound parameter succeeds.
  QueryOptions options;
  options.params = {Datum::Int64(100)};
  auto bound = db_.Run("SELECT count(*) FROM t WHERE k < $1", options);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->rows[0][0].int64_value(), 1);
}

TEST_F(DatabaseTest, SegmentCountConfigurable) {
  for (int segments : {1, 2, 8}) {
    Database db(segments);
    ASSERT_TRUE(db.CreatePartitionedTable(
                      "p", Schema({{"k", TypeId::kInt64}}),
                      TableDistribution::kHashed, {0},
                      {{0, PartitionMethod::kRange}},
                      {partition_bounds::IntRanges(0, 10, 4)})
                    .ok());
    std::vector<Row> rows;
    for (int i = 0; i < 40; ++i) rows.push_back({Datum::Int64(i)});
    ASSERT_TRUE(db.Load("p", rows).ok());
    auto result = db.Run("SELECT count(*) FROM p WHERE k >= 20");
    ASSERT_TRUE(result.ok()) << segments;
    EXPECT_EQ(result->rows[0][0].int64_value(), 20) << segments;
    EXPECT_EQ(result->stats.PartitionsScanned(db.catalog().FindTable("p")->oid), 2u);
  }
}

}  // namespace
}  // namespace mppdb
