// Robustness fuzzing of the SQL front end: no input — however malformed —
// may crash the lexer, parser, or binder; everything must surface as a
// Status. Uses deterministic random token soup plus mutations of valid
// statements.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "db/database.h"
#include "test_util.h"

namespace mppdb {
namespace {

class SqlFuzzTest : public ::testing::Test {
 protected:
  SqlFuzzTest() : db_(2) {
    MPPDB_CHECK(db_.Run("CREATE TABLE t (a bigint, b varchar, d date) "
                        "DISTRIBUTED BY (a) "
                        "PARTITION BY RANGE (a) START 0 END 100 EVERY 10")
                    .ok());
    MPPDB_CHECK(db_.Run("INSERT INTO t VALUES (1, 'x', '2020-01-05')").ok());
  }

  Database db_;
};

TEST_F(SqlFuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* kTokens[] = {
      "SELECT", "FROM",  "WHERE", "GROUP", "BY",    "ORDER",  "LIMIT", "AND",
      "OR",     "NOT",   "IN",    "BETWEEN", "t",   "a",      "b",     "d",
      "(",      ")",     ",",     "*",     "=",     "<",      ">",     "<=",
      ">=",     "<>",    "+",     "-",     "/",     "%",      "1",     "42",
      "3.14",   "'s'",   "$1",    "count", "sum",   "avg",    "JOIN",  "ON",
      "INSERT", "INTO",  "VALUES", "UPDATE", "SET", "DELETE", "NULL",  "IS",
      "AS",     "HAVING", "DATE", "'2020-01-01'",   ".",      ";",     "EXPLAIN",
      "CREATE", "TABLE", "DROP",  "x",     "nope",
  };
  Random rng(20140622);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    int length = 1 + static_cast<int>(rng.Uniform(24));
    for (int i = 0; i < length; ++i) {
      sql += kTokens[rng.Uniform(sizeof(kTokens) / sizeof(kTokens[0]))];
      sql += " ";
    }
    // Must never crash; success or a clean Status are both acceptable.
    auto result = db_.Run(sql);
    if (!result.ok()) {
      StatusCode code = result.status().code();
      EXPECT_TRUE(code == StatusCode::kParseError || code == StatusCode::kBindError ||
                  code == StatusCode::kPlanError ||
                  code == StatusCode::kExecutionError ||
                  code == StatusCode::kNotFound ||
                  code == StatusCode::kInvalidArgument ||
                  code == StatusCode::kAlreadyExists ||
                  code == StatusCode::kOutOfRange)
          << sql << " -> " << result.status().ToString();
    }
  }
}

TEST_F(SqlFuzzTest, MutatedValidStatementsNeverCrash) {
  const std::string base =
      "SELECT a, count(*) FROM t WHERE a BETWEEN 1 AND 50 AND b = 'x' "
      "GROUP BY a ORDER BY a LIMIT 5";
  Random rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated.erase(pos, 1 + rng.Uniform(3));
          break;
        case 1:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
          break;
        default:
          if (!mutated.empty()) {
            mutated[pos % mutated.size()] =
                static_cast<char>(32 + rng.Uniform(95));
          }
          break;
      }
    }
    auto result = db_.Run(mutated);  // outcome irrelevant; must not crash
    (void)result;
  }
}

TEST_F(SqlFuzzTest, DeepNestingDoesNotOverflow) {
  // Heavily parenthesized expressions stress the recursive-descent parser.
  std::string sql = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 200; ++i) sql += "(";
  sql += "a = 1";
  for (int i = 0; i < 200; ++i) sql += ")";
  auto result = db_.Run(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);
}

}  // namespace
}  // namespace mppdb
