// Tests for the logical plan layer: NormalizeLogical's predicate pushdown
// (the pass both optimizers rely on to find partition-eliminating
// predicates near the scans) and equi-join key extraction.

#include <gtest/gtest.h>

#include "optimizer/logical.h"
#include "test_util.h"

namespace mppdb {
namespace {

class LogicalTest : public ::testing::Test {
 protected:
  LogicalTest() {
    left_table_ = db_.CreatePlainTable("l", Schema({{"a", TypeId::kInt64},
                                                    {"b", TypeId::kInt64}}));
    right_table_ = db_.CreatePlainTable("r", Schema({{"c", TypeId::kInt64},
                                                     {"d", TypeId::kInt64}}));
    left_ = std::make_shared<LogicalGet>(left_table_, "l",
                                         std::vector<ColRefId>{1, 2});
    right_ = std::make_shared<LogicalGet>(right_table_, "r",
                                          std::vector<ColRefId>{3, 4});
  }

  ExprPtr Col(ColRefId id) {
    return MakeColumnRef(id, "c" + std::to_string(id), TypeId::kInt64);
  }
  ExprPtr Lit(int64_t v) { return MakeConst(Datum::Int64(v)); }

  testutil::TestDb db_{2};
  const TableDescriptor* left_table_;
  const TableDescriptor* right_table_;
  LogicalPtr left_, right_;
};

TEST_F(LogicalTest, PushdownSplitsSingleSideConjuncts) {
  // Select(l.a=1 AND r.c=2 AND l.b=r.d, Join(true, l, r)) normalizes to
  // Join(l.b=r.d, Select(l.a=1, l), Select(r.c=2, r)).
  ExprPtr pred = Conj({MakeComparison(CompareOp::kEq, Col(1), Lit(1)),
                       MakeComparison(CompareOp::kEq, Col(3), Lit(2)),
                       MakeComparison(CompareOp::kEq, Col(2), Col(4))});
  LogicalPtr join = std::make_shared<LogicalJoin>(JoinType::kInner, nullptr, left_,
                                                  right_);
  LogicalPtr tree = std::make_shared<LogicalSelect>(pred, join);
  LogicalPtr normalized = NormalizeLogical(tree);

  ASSERT_EQ(normalized->kind(), LogicalKind::kJoin);
  const auto& new_join = static_cast<const LogicalJoin&>(*normalized);
  // The spanning conjunct became the join predicate.
  ASSERT_NE(new_join.predicate(), nullptr);
  EXPECT_TRUE(ReferencesColumn(new_join.predicate(), 2));
  EXPECT_TRUE(ReferencesColumn(new_join.predicate(), 4));
  // Single-side conjuncts sit above their Gets.
  EXPECT_EQ(new_join.child(0)->kind(), LogicalKind::kSelect);
  EXPECT_EQ(new_join.child(1)->kind(), LogicalKind::kSelect);
}

TEST_F(LogicalTest, AdjacentSelectsMerge) {
  LogicalPtr tree = std::make_shared<LogicalSelect>(
      MakeComparison(CompareOp::kGt, Col(1), Lit(0)),
      std::make_shared<LogicalSelect>(MakeComparison(CompareOp::kLt, Col(1), Lit(9)),
                                      left_));
  LogicalPtr normalized = NormalizeLogical(tree);
  ASSERT_EQ(normalized->kind(), LogicalKind::kSelect);
  // A single Select with both conjuncts over the Get.
  EXPECT_EQ(normalized->child(0)->kind(), LogicalKind::kGet);
  EXPECT_EQ(SplitConjuncts(static_cast<const LogicalSelect&>(*normalized).predicate())
                .size(),
            2u);
}

TEST_F(LogicalTest, PushdownThroughIdentityProject) {
  std::vector<ProjectItem> items = {{Col(1), 1, "a"}, {Col(2), 2, "b"}};
  LogicalPtr project = std::make_shared<LogicalProject>(items, left_);
  LogicalPtr tree = std::make_shared<LogicalSelect>(
      MakeComparison(CompareOp::kEq, Col(1), Lit(7)), project);
  LogicalPtr normalized = NormalizeLogical(tree);
  // Select descends below the (identity) Project.
  ASSERT_EQ(normalized->kind(), LogicalKind::kProject);
  EXPECT_EQ(normalized->child(0)->kind(), LogicalKind::kSelect);
}

TEST_F(LogicalTest, ComputedProjectBlocksPushdown) {
  std::vector<ProjectItem> items = {
      {MakeArith(ArithOp::kAdd, Col(1), Lit(1)), 9, "a1"}};
  LogicalPtr project = std::make_shared<LogicalProject>(items, left_);
  LogicalPtr tree = std::make_shared<LogicalSelect>(
      MakeComparison(CompareOp::kEq, Col(9), Lit(7)), project);
  LogicalPtr normalized = NormalizeLogical(tree);
  // The filter references the computed column: stays above the Project.
  ASSERT_EQ(normalized->kind(), LogicalKind::kSelect);
  EXPECT_EQ(normalized->child(0)->kind(), LogicalKind::kProject);
}

TEST_F(LogicalTest, SemiJoinKeepsRightConjunctsAbove) {
  // For semi joins the right side is existential; only left-side conjuncts
  // may descend into the preserved side.
  ExprPtr pred = MakeComparison(CompareOp::kEq, Col(1), Lit(5));
  LogicalPtr semi = std::make_shared<LogicalJoin>(
      JoinType::kSemi, MakeComparison(CompareOp::kEq, Col(2), Col(3)), left_, right_);
  LogicalPtr tree = std::make_shared<LogicalSelect>(pred, semi);
  LogicalPtr normalized = NormalizeLogical(tree);
  ASSERT_EQ(normalized->kind(), LogicalKind::kJoin);
  EXPECT_EQ(normalized->child(0)->kind(), LogicalKind::kSelect);
}

TEST_F(LogicalTest, ExtractEquiJoinKeysSplitsResidual) {
  ExprPtr pred = Conj({MakeComparison(CompareOp::kEq, Col(1), Col(3)),
                       MakeComparison(CompareOp::kEq, Col(4), Col(2)),  // reversed
                       MakeComparison(CompareOp::kLt, Col(1), Col(4))});
  EquiJoinKeys keys = ExtractEquiJoinKeys(pred, {1, 2}, {3, 4});
  ASSERT_EQ(keys.left.size(), 2u);
  EXPECT_EQ(keys.left, (std::vector<ColRefId>{1, 2}));
  EXPECT_EQ(keys.right, (std::vector<ColRefId>{3, 4}));
  ASSERT_NE(keys.residual, nullptr);
  EXPECT_EQ(keys.residual->kind(), ExprKind::kComparison);
}

TEST_F(LogicalTest, ExtractEquiJoinKeysIgnoresSameSideEqualities) {
  ExprPtr pred = MakeComparison(CompareOp::kEq, Col(1), Col(2));  // both left
  EquiJoinKeys keys = ExtractEquiJoinKeys(pred, {1, 2}, {3, 4});
  EXPECT_TRUE(keys.left.empty());
  EXPECT_NE(keys.residual, nullptr);
}

TEST_F(LogicalTest, OutputIdsAndDescriptions) {
  LogicalPtr join = std::make_shared<LogicalJoin>(
      JoinType::kInner, MakeComparison(CompareOp::kEq, Col(2), Col(3)), left_, right_);
  EXPECT_EQ(join->OutputIds(), (std::vector<ColRefId>{1, 2, 3, 4}));
  LogicalPtr semi = std::make_shared<LogicalJoin>(
      JoinType::kSemi, MakeComparison(CompareOp::kEq, Col(2), Col(3)), left_, right_);
  EXPECT_EQ(semi->OutputIds(), (std::vector<ColRefId>{1, 2}));
  EXPECT_FALSE(LogicalToString(join).empty());
}

}  // namespace
}  // namespace mppdb
