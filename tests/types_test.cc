#include <gtest/gtest.h>

#include "types/date.h"
#include "types/datum.h"
#include "types/row.h"
#include "types/schema.h"

namespace mppdb {
namespace {

TEST(DatumTest, NullBasics) {
  Datum null = Datum::Null();
  EXPECT_TRUE(null.is_null());
  EXPECT_FALSE(Datum::Int64(1).is_null());
  EXPECT_EQ(Datum::Compare(null, Datum::Null()), 0);
  EXPECT_LT(Datum::Compare(null, Datum::Int64(-100)), 0);
  EXPECT_GT(Datum::Compare(Datum::Int64(-100), null), 0);
}

TEST(DatumTest, IntegerComparison) {
  EXPECT_LT(Datum::Compare(Datum::Int64(1), Datum::Int64(2)), 0);
  EXPECT_EQ(Datum::Compare(Datum::Int64(5), Datum::Int64(5)), 0);
  EXPECT_GT(Datum::Compare(Datum::Int64(9), Datum::Int64(2)), 0);
}

TEST(DatumTest, CrossWidthNumericComparison) {
  EXPECT_EQ(Datum::Compare(Datum::Int32(7), Datum::Int64(7)), 0);
  EXPECT_EQ(Datum::Compare(Datum::Int64(7), Datum::Double(7.0)), 0);
  EXPECT_LT(Datum::Compare(Datum::Int32(7), Datum::Double(7.5)), 0);
}

TEST(DatumTest, CrossWidthEqualImpliesEqualHash) {
  EXPECT_EQ(Datum::Int32(42).Hash(), Datum::Int64(42).Hash());
  EXPECT_EQ(Datum::Int64(42).Hash(), Datum::Double(42.0).Hash());
}

TEST(DatumTest, StringComparison) {
  EXPECT_LT(Datum::Compare(Datum::String("abc"), Datum::String("abd")), 0);
  EXPECT_EQ(Datum::Compare(Datum::String("x"), Datum::String("x")), 0);
  EXPECT_NE(Datum::String("a").Hash(), Datum::String("b").Hash());
}

TEST(DatumTest, BoolComparison) {
  EXPECT_LT(Datum::Compare(Datum::Bool(false), Datum::Bool(true)), 0);
  EXPECT_EQ(Datum::Compare(Datum::Bool(true), Datum::Bool(true)), 0);
}

TEST(DatumTest, ToStringRendering) {
  EXPECT_EQ(Datum::Null().ToString(), "NULL");
  EXPECT_EQ(Datum::Int64(12).ToString(), "12");
  EXPECT_EQ(Datum::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Datum::Bool(true).ToString(), "true");
  EXPECT_EQ(Datum::DateFromString("2013-10-01").ToString(), "2013-10-01");
}

TEST(DateTest, RoundTrip) {
  for (int year : {1970, 2000, 2012, 2013, 2024}) {
    for (int month = 1; month <= 12; ++month) {
      int32_t days = date::FromYMD(year, month, 15);
      int y, m, d;
      date::ToYMD(days, &y, &m, &d);
      EXPECT_EQ(y, year);
      EXPECT_EQ(m, month);
      EXPECT_EQ(d, 15);
    }
  }
}

TEST(DateTest, EpochIsZero) { EXPECT_EQ(date::FromYMD(1970, 1, 1), 0); }

TEST(DateTest, LeapYears) {
  EXPECT_TRUE(date::IsLeapYear(2012));
  EXPECT_FALSE(date::IsLeapYear(2013));
  EXPECT_FALSE(date::IsLeapYear(1900));
  EXPECT_TRUE(date::IsLeapYear(2000));
  EXPECT_EQ(date::DaysInMonth(2012, 2), 29);
  EXPECT_EQ(date::DaysInMonth(2013, 2), 28);
}

TEST(DateTest, ParseValidAndInvalid) {
  int32_t days = 0;
  EXPECT_TRUE(date::Parse("2013-10-01", &days));
  EXPECT_EQ(date::ToString(days), "2013-10-01");
  EXPECT_FALSE(date::Parse("not-a-date", &days));
  EXPECT_FALSE(date::Parse("2013-13-01", &days));
  EXPECT_FALSE(date::Parse("2013-02-30", &days));
}

TEST(DateTest, MonthArithmeticOrdering) {
  EXPECT_LT(date::FromYMD(2013, 9, 30), date::FromYMD(2013, 10, 1));
  EXPECT_LT(date::FromYMD(2013, 10, 31), date::FromYMD(2013, 11, 1));
}

TEST(SchemaTest, FindColumn) {
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kString}});
  EXPECT_EQ(schema.FindColumn("a"), 0);
  EXPECT_EQ(schema.FindColumn("b"), 1);
  EXPECT_EQ(schema.FindColumn("c"), -1);
}

TEST(SchemaTest, Concat) {
  Schema left({{"a", TypeId::kInt64}});
  Schema right({{"b", TypeId::kString}, {"c", TypeId::kDouble}});
  Schema joined = Schema::Concat(left, right);
  ASSERT_EQ(joined.size(), 3u);
  EXPECT_EQ(joined.column(2).name, "c");
}

TEST(RowTest, HashRowColumnsIsOrderSensitiveOverColumns) {
  Row row = {Datum::Int64(1), Datum::Int64(2)};
  EXPECT_NE(HashRowColumns(row, {0, 1}), HashRowColumns(row, {1, 0}));
  EXPECT_EQ(HashRowColumns(row, {0}), HashRowColumns({Datum::Int64(1)}, {0}));
}

}  // namespace
}  // namespace mppdb
