// Columnar storage: adaptive per-chunk encoding selection, lossless
// round-trips (fuzzed over NULL runs, single-value, high-NDV, and mixed
// profiles), encode-time stats parity with the row-order AddValue fold,
// synopsis assembly from encoded chunks without decoding, encoded-data
// predicate evaluation against the row-at-a-time oracle (three-valued
// verdicts included), exact NDV from dictionaries, and Motion batch
// dictionary transfer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "expr/encoded_eval.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "storage/column_store.h"
#include "storage/storage.h"
#include "storage/synopsis.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::TestDb;

bool SameDatum(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (!DatumsComparable(a, b)) return false;
  return Datum::Compare(a, b) == 0;
}

// Wraps a single column into 1-column rows so EncodeColumnChunk fuzzing can
// speak in terms of plain value vectors.
std::vector<Row> OneColumnRows(const std::vector<Datum>& values) {
  std::vector<Row> rows;
  rows.reserve(values.size());
  for (const Datum& v : values) rows.push_back({v});
  return rows;
}

void ExpectLosslessRoundTrip(const std::vector<Datum>& values) {
  std::vector<Row> rows = OneColumnRows(values);
  EncodedColumnChunk chunk = EncodeColumnChunk(rows, 0, rows.size(), 0);
  ASSERT_EQ(chunk.row_count, values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(chunk.IsNullAt(i), values[i].is_null()) << "row " << i;
    EXPECT_TRUE(SameDatum(chunk.ValueAt(i), values[i]))
        << "row " << i << " encoding " << ColumnEncodingName(chunk.encoding);
  }
  std::vector<Datum> decoded;
  chunk.AppendValuesTo(&decoded);
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(SameDatum(decoded[i], values[i])) << "row " << i;
  }
  EXPECT_LE(chunk.encoded_bytes, chunk.plain_bytes);
}

// --- Encoding selection ------------------------------------------------------

TEST(ColumnEncodingTest, SingleValueColumnRunLengthEncodes) {
  std::vector<Datum> values(1024, Datum::String("constant"));
  std::vector<Row> rows = OneColumnRows(values);
  EncodedColumnChunk chunk = EncodeColumnChunk(rows, 0, rows.size(), 0);
  EXPECT_EQ(chunk.encoding, ColumnEncoding::kRunLength);
  ASSERT_EQ(chunk.run_values.size(), 1u);
  EXPECT_EQ(chunk.run_lengths[0], 1024u);
  ExpectLosslessRoundTrip(values);
}

TEST(ColumnEncodingTest, AllNullColumnRunLengthEncodes) {
  std::vector<Datum> values(512, Datum::Null());
  std::vector<Row> rows = OneColumnRows(values);
  EncodedColumnChunk chunk = EncodeColumnChunk(rows, 0, rows.size(), 0);
  EXPECT_EQ(chunk.encoding, ColumnEncoding::kRunLength);
  EXPECT_EQ(chunk.stats.null_count, 512u);
  EXPECT_EQ(chunk.stats.non_null_count, 0u);
  ExpectLosslessRoundTrip(values);
}

TEST(ColumnEncodingTest, LowCardinalityStringsDictionaryEncode) {
  const char* vocab[] = {"apple", "pear", "quince"};
  std::vector<Datum> values;
  for (int i = 0; i < 1024; ++i) values.push_back(Datum::String(vocab[i % 3]));
  std::vector<Row> rows = OneColumnRows(values);
  EncodedColumnChunk chunk = EncodeColumnChunk(rows, 0, rows.size(), 0);
  EXPECT_EQ(chunk.encoding, ColumnEncoding::kDictionary);
  ASSERT_EQ(chunk.dict.size(), 3u);
  // Dictionary entries are sorted, so min/max fall out of the ends.
  EXPECT_EQ(chunk.dict.front().string_value(), "apple");
  EXPECT_EQ(chunk.dict.back().string_value(), "quince");
  ExpectLosslessRoundTrip(values);
}

TEST(ColumnEncodingTest, WideIntegersBitPack) {
  std::vector<Datum> values;
  for (int64_t i = 0; i < 1024; ++i) values.push_back(Datum::Int64(7000 + i));
  std::vector<Row> rows = OneColumnRows(values);
  EncodedColumnChunk chunk = EncodeColumnChunk(rows, 0, rows.size(), 0);
  // 1024 distinct values overflow the dictionary; a 1024-wide frame packs
  // into 10-bit slots.
  EXPECT_EQ(chunk.encoding, ColumnEncoding::kBitPacked);
  EXPECT_EQ(chunk.packed_base, 7000);
  EXPECT_EQ(chunk.packed_bits, 10);
  ExpectLosslessRoundTrip(values);
}

TEST(ColumnEncodingTest, HighCardinalityStringsStayPlain) {
  std::vector<Datum> values;
  for (int i = 0; i < 1024; ++i) {
    values.push_back(Datum::String("unique_" + std::to_string(i)));
  }
  std::vector<Row> rows = OneColumnRows(values);
  EncodedColumnChunk chunk = EncodeColumnChunk(rows, 0, rows.size(), 0);
  EXPECT_EQ(chunk.encoding, ColumnEncoding::kPlain);
  ExpectLosslessRoundTrip(values);
}

TEST(ColumnEncodingTest, MixedFamilyChunkStaysPlain) {
  // Rows are not type-checked on insert; a chunk mixing comparison families
  // must refuse every value-ordering encoding.
  std::vector<Datum> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(i % 2 == 0 ? Datum::Int64(i) : Datum::String("s"));
  }
  std::vector<Row> rows = OneColumnRows(values);
  EncodedColumnChunk chunk = EncodeColumnChunk(rows, 0, rows.size(), 0);
  EXPECT_EQ(chunk.encoding, ColumnEncoding::kPlain);
  EXPECT_FALSE(chunk.stats.comparable);
  ExpectLosslessRoundTrip(values);
}

// --- Round-trip fuzz ---------------------------------------------------------

std::vector<Datum> RandomColumn(Random* rng, int profile, size_t n) {
  std::vector<Datum> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(0.15)) {
      // NULLs arrive in runs about half the time.
      size_t run = rng->Bernoulli(0.5) ? 1 + rng->Uniform(20) : 1;
      for (size_t j = 0; j < run && values.size() < n; ++j) {
        values.push_back(Datum::Null());
      }
      if (values.size() >= n) break;
      i = values.size();
    }
    switch (profile) {
      case 0:  // single value
        values.push_back(Datum::Int64(42));
        break;
      case 1:  // low-NDV ints (dictionary / RLE territory)
        values.push_back(Datum::Int64(rng->UniformRange(0, 5)));
        break;
      case 2:  // wide ints (bit-packing territory)
        values.push_back(Datum::Int64(rng->UniformRange(-100000, 100000)));
        break;
      case 3:  // low-NDV strings
        values.push_back(Datum::String("tag_" + std::to_string(rng->Uniform(4))));
        break;
      case 4:  // high-NDV doubles (plain territory)
        values.push_back(Datum::Double(rng->NextDouble() * 1e6));
        break;
      default:  // sorted-ish ints with repeats (RLE territory)
        values.push_back(Datum::Int64(static_cast<int64_t>(i) / 16));
        break;
    }
  }
  values.resize(n, Datum::Null());
  return values;
}

TEST(ColumnEncodingTest, RoundTripFuzz) {
  Random rng(77);
  for (int trial = 0; trial < 120; ++trial) {
    const int profile = static_cast<int>(rng.Uniform(6));
    // Chunk sizes include tiny, odd, and full-chunk lengths.
    const size_t n = 1 + rng.Uniform(kStorageChunkRows);
    ExpectLosslessRoundTrip(RandomColumn(&rng, profile, n));
  }
}

TEST(ColumnEncodingTest, StatsMatchRowOrderAddValueFold) {
  Random rng(78);
  for (int trial = 0; trial < 60; ++trial) {
    const int profile = static_cast<int>(rng.Uniform(6));
    const size_t n = 1 + rng.Uniform(kStorageChunkRows);
    std::vector<Datum> values = RandomColumn(&rng, profile, n);
    std::vector<Row> rows = OneColumnRows(values);
    EncodedColumnChunk chunk = EncodeColumnChunk(rows, 0, rows.size(), 0);
    ColumnSynopsis oracle;
    for (const Datum& v : values) oracle.AddValue(v);
    EXPECT_EQ(chunk.stats.null_count, oracle.null_count);
    EXPECT_EQ(chunk.stats.non_null_count, oracle.non_null_count);
    EXPECT_EQ(chunk.stats.comparable, oracle.comparable);
    if (oracle.comparable && oracle.non_null_count > 0) {
      EXPECT_TRUE(SameDatum(chunk.stats.min, oracle.min));
      EXPECT_TRUE(SameDatum(chunk.stats.max, oracle.max));
    }
  }
}

// --- Synopsis assembly from encoded chunks -----------------------------------

TEST(SliceColumnsTest, SynopsisFromColumnsMatchesRowSynopsis) {
  Random rng(79);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.Uniform(3 * kStorageChunkRows);
    std::vector<Datum> col_a = RandomColumn(&rng, 1, n);
    std::vector<Datum> col_b = RandomColumn(&rng, static_cast<int>(rng.Uniform(6)), n);
    std::vector<Row> rows;
    for (size_t i = 0; i < n; ++i) rows.push_back({col_a[i], col_b[i]});

    SliceColumns cols = EncodeSlice(rows, 2);
    ASSERT_EQ(cols.row_count, n);
    ASSERT_EQ(cols.num_chunks(), (n + kStorageChunkRows - 1) / kStorageChunkRows);

    SliceSynopsis oracle(2);
    for (const Row& row : rows) oracle.Append(row);
    SliceSynopsis assembled = SynopsisFromColumns(cols);

    ASSERT_EQ(assembled.chunks.size(), oracle.chunks.size());
    auto check_chunk = [&](const ChunkSynopsis& got, const ChunkSynopsis& want) {
      EXPECT_EQ(got.row_count, want.row_count);
      ASSERT_EQ(got.columns.size(), want.columns.size());
      for (size_t c = 0; c < want.columns.size(); ++c) {
        EXPECT_EQ(got.columns[c].null_count, want.columns[c].null_count);
        EXPECT_EQ(got.columns[c].non_null_count, want.columns[c].non_null_count);
        EXPECT_EQ(got.columns[c].comparable, want.columns[c].comparable);
        if (want.columns[c].comparable && want.columns[c].non_null_count > 0) {
          EXPECT_TRUE(SameDatum(got.columns[c].min, want.columns[c].min));
          EXPECT_TRUE(SameDatum(got.columns[c].max, want.columns[c].max));
        }
      }
    };
    for (size_t k = 0; k < oracle.chunks.size(); ++k) {
      check_chunk(assembled.chunks[k], oracle.chunks[k]);
    }
    check_chunk(assembled.rollup, oracle.rollup);
  }
}

// --- Encoded predicate evaluation vs the row oracle --------------------------

ExprPtr Lit(int64_t v) { return MakeConst(Datum::Int64(v)); }
ExprPtr ColA() { return MakeColumnRef(1, "a", TypeId::kInt64); }
ExprPtr ColB() { return MakeColumnRef(2, "b", TypeId::kInt64); }
ExprPtr ColC() { return MakeColumnRef(3, "c", TypeId::kString); }

class EncodedEvalTest : public ::testing::Test {
 protected:
  EncodedEvalTest() : layout_({1, 2, 3}) {}

  // a: low-NDV ints with NULLs (dictionary), b: wide ints (bit-packed),
  // c: low-NDV strings (dictionary / RLE).
  std::vector<Row> RandomRows(Random* rng, size_t n) {
    std::vector<Row> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Datum a = rng->Bernoulli(0.1) ? Datum::Null()
                                    : Datum::Int64(rng->UniformRange(0, 12));
      Datum b = Datum::Int64(rng->UniformRange(0, 50000));
      Datum c = Datum::String("t" + std::to_string(rng->Uniform(5)));
      rows.push_back({a, b, c});
    }
    return rows;
  }

  ExprPtr RandomTerm(Random* rng) {
    switch (rng->Uniform(8)) {
      case 0:
        return MakeComparison(CompareOp::kLt, ColA(), Lit(rng->UniformRange(0, 12)));
      case 1:
        return MakeComparison(CompareOp::kGe, ColB(),
                              Lit(rng->UniformRange(0, 50000)));
      case 2:
        return MakeComparison(CompareOp::kEq, ColC(),
                              MakeConst(Datum::String(
                                  "t" + std::to_string(rng->Uniform(5)))));
      case 3:
        return MakeInList({ColA(), Lit(rng->UniformRange(0, 12)),
                           Lit(rng->UniformRange(0, 12))});
      case 4:
        // IN with a NULL item: misses yield NULL, never FALSE.
        return MakeInList({ColA(), Lit(rng->UniformRange(0, 12)),
                           MakeConst(Datum::Null())});
      case 5:
        return std::make_shared<IsNullExpr>(ColA());
      case 6:
        return MakeNot(std::make_shared<IsNullExpr>(ColA()));
      default:
        return MakeOr({MakeComparison(CompareOp::kLt, ColB(),
                                      Lit(rng->UniformRange(0, 25000))),
                       MakeComparison(CompareOp::kGt, ColB(),
                                      Lit(rng->UniformRange(25000, 50000)))});
    }
  }

  // Replays the scan's encoded fast path over every chunk and checks the kept
  // row set against row-at-a-time evaluation of the full predicate.
  void CheckAgainstOracle(const ExprPtr& predicate, const std::vector<Row>& rows) {
    EncodedPredicate compiled = CompileEncodedPredicate(predicate, layout_);
    ASSERT_TRUE(compiled.HasTerms()) << predicate->ToString();
    SliceColumns cols = EncodeSlice(rows, 3);
    const bool has_residual = compiled.residual != nullptr;
    for (size_t chunk = 0; chunk < cols.num_chunks(); ++chunk) {
      const size_t base = chunk * kStorageChunkRows;
      const size_t end = std::min(rows.size(), base + kStorageChunkRows);
      if (!EncodedChunkEligible(compiled, cols, chunk)) continue;
      SelVec sel;
      std::vector<char> pure;
      EvalEncodedPredicate(compiled, cols, chunk, base, end - base, &sel,
                           has_residual ? &pure : nullptr);
      std::vector<size_t> kept;
      for (size_t s = 0; s < sel.size(); ++s) {
        bool keep = true;
        if (has_residual) {
          auto residual = EvalPredicate(compiled.residual, layout_, rows[sel[s]]);
          ASSERT_TRUE(residual.ok());
          keep = *residual && pure[s] != 0;
        }
        if (keep) kept.push_back(sel[s]);
      }
      std::vector<size_t> oracle;
      for (size_t i = base; i < end; ++i) {
        auto keep = EvalPredicate(predicate, layout_, rows[i]);
        ASSERT_TRUE(keep.ok());
        if (*keep) oracle.push_back(i);
      }
      EXPECT_EQ(kept, oracle) << predicate->ToString() << " chunk " << chunk;
    }
  }

  ColumnLayout layout_;
};

TEST_F(EncodedEvalTest, FullyCompiledPredicatesMatchOracle) {
  Random rng(101);
  std::vector<Row> rows = RandomRows(&rng, 2500);
  for (int trial = 0; trial < 80; ++trial) {
    std::vector<ExprPtr> conjuncts;
    const size_t arity = 1 + rng.Uniform(3);
    for (size_t i = 0; i < arity; ++i) conjuncts.push_back(RandomTerm(&rng));
    CheckAgainstOracle(Conj(conjuncts), rows);
  }
}

TEST_F(EncodedEvalTest, ResidualPredicatesMatchOracle) {
  Random rng(102);
  std::vector<Row> rows = RandomRows(&rng, 2500);
  for (int trial = 0; trial < 80; ++trial) {
    std::vector<ExprPtr> conjuncts;
    const size_t arity = 1 + rng.Uniform(2);
    for (size_t i = 0; i < arity; ++i) conjuncts.push_back(RandomTerm(&rng));
    // Arithmetic is never compiled into a term, so this conjunct (and
    // everything after it) stays residual.
    conjuncts.push_back(MakeComparison(
        CompareOp::kLt, MakeArith(ArithOp::kAdd, ColB(), Lit(1)),
        Lit(rng.UniformRange(0, 50001))));
    conjuncts.push_back(RandomTerm(&rng));
    CheckAgainstOracle(Conj(conjuncts), rows);
  }
}

TEST_F(EncodedEvalTest, NullVerdictRowsReachTheResidualImpure) {
  // a IS NULL makes `a < 5` NULL, not FALSE: the row must survive to the
  // residual (the oracle's AND short-circuit only fires on FALSE) but can
  // never be kept (pure = 0).
  std::vector<Row> rows = {{Datum::Null(), Datum::Int64(1), Datum::String("x")},
                           {Datum::Int64(3), Datum::Int64(1), Datum::String("x")},
                           {Datum::Int64(9), Datum::Int64(1), Datum::String("x")}};
  ExprPtr prefix = MakeComparison(CompareOp::kLt, ColA(), Lit(5));
  ExprPtr residual = MakeComparison(CompareOp::kEq,
                                    MakeArith(ArithOp::kAdd, ColB(), Lit(0)), Lit(1));
  EncodedPredicate compiled =
      CompileEncodedPredicate(Conj({prefix, residual}), layout_);
  ASSERT_TRUE(compiled.HasTerms());
  ASSERT_NE(compiled.residual, nullptr);
  SliceColumns cols = EncodeSlice(rows, 3);
  ASSERT_TRUE(EncodedChunkEligible(compiled, cols, 0));
  SelVec sel;
  std::vector<char> pure;
  EvalEncodedPredicate(compiled, cols, 0, 0, rows.size(), &sel, &pure);
  // Row 0 (NULL verdict) and row 1 (TRUE) survive; row 2 is FALSE and is the
  // only row on which the oracle would never evaluate the residual.
  ASSERT_EQ(sel, (SelVec{0, 1}));
  EXPECT_EQ(pure[0], 0);
  EXPECT_EQ(pure[1], 1);
  // Without a residual, WHERE semantics drop NULL verdicts too.
  EncodedPredicate prefix_only = CompileEncodedPredicate(prefix, layout_);
  ASSERT_EQ(prefix_only.residual, nullptr);
  SelVec where_sel;
  EvalEncodedPredicate(prefix_only, cols, 0, 0, rows.size(), &where_sel, nullptr);
  EXPECT_EQ(where_sel, (SelVec{1}));
}

TEST_F(EncodedEvalTest, MixedFamilyChunksAreIneligible) {
  // A string smuggled into the int column poisons the chunk's family check:
  // the comparison could raise a type-mismatch error, so the chunk must fall
  // back to ordinary row evaluation.
  std::vector<Row> rows = {{Datum::Int64(1), Datum::Int64(1), Datum::String("x")},
                           {Datum::String("!"), Datum::Int64(2), Datum::String("x")}};
  EncodedPredicate compiled = CompileEncodedPredicate(
      MakeComparison(CompareOp::kLt, ColA(), Lit(5)), layout_);
  ASSERT_TRUE(compiled.HasTerms());
  SliceColumns cols = EncodeSlice(rows, 3);
  EXPECT_FALSE(EncodedChunkEligible(compiled, cols, 0));
}

// --- Exact NDV from dictionaries ---------------------------------------------

TEST(ExactDistinctTest, DictionarySlicesExposeExactNdv) {
  TestDb db(2);
  const TableDescriptor* table = db.CreatePlainTable(
      "t", Schema({{"k", TypeId::kInt64}, {"tag", TypeId::kString}}));
  ASSERT_TRUE(db.catalog.SetTableOrientation("t", StorageOrientation::kColumn).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 3000; ++i) {
    rows.push_back({Datum::Int64(i % 7),
                    Datum::String("tag_" + std::to_string(i % 11))});
  }
  db.Insert(table, rows);
  TableStore* store = db.storage.GetStore(table->oid);
  // Images build lazily; the estimate is only exact once they exist.
  EXPECT_FALSE(store->ExactDistinctFromDictionaries(0).has_value());
  for (Oid unit : store->UnitOids()) {
    for (int segment = 0; segment < store->num_segments(); ++segment) {
      store->UnitColumns(unit, segment);
    }
  }
  EXPECT_EQ(store->ExactDistinctFromDictionaries(0), std::optional<size_t>(7));
  EXPECT_EQ(store->ExactDistinctFromDictionaries(1), std::optional<size_t>(11));
}

TEST(ExactDistinctTest, RowOrientedTablesFallBackToEstimate) {
  TestDb db(2);
  const TableDescriptor* table =
      db.CreatePlainTable("t", Schema({{"k", TypeId::kInt64}}));
  db.Insert(table, {{Datum::Int64(1)}, {Datum::Int64(2)}});
  EXPECT_FALSE(
      db.storage.GetStore(table->oid)->ExactDistinctFromDictionaries(0).has_value());
}

// --- Motion batch dictionary transfer ----------------------------------------

TEST(MotionEncodingTest, LowCardinalityStringBatchRoundTrips) {
  std::vector<Row> rows;
  for (int i = 0; i < 600; ++i) {
    rows.push_back({Datum::Int64(i), Datum::String(i % 2 == 0 ? "even" : "odd"),
                    i % 5 == 0 ? Datum::Null() : Datum::String("grp")});
  }
  std::vector<Row> original = rows;
  std::optional<EncodedRowBatch> batch = TryEncodeMotionBatch(std::move(rows));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->num_rows, 600u);
  EXPECT_LT(batch->encoded_bytes, batch->plain_bytes);
  std::vector<Row> decoded = batch->Decode();
  ASSERT_EQ(decoded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(decoded[i].size(), original[i].size());
    for (size_t c = 0; c < original[i].size(); ++c) {
      EXPECT_TRUE(SameDatum(decoded[i][c], original[i][c])) << i << "," << c;
    }
  }
}

TEST(MotionEncodingTest, SmallOrHighCardinalityBatchesDecline) {
  // Too few rows to pay for a dictionary.
  std::vector<Row> small;
  for (size_t i = 0; i < kMotionEncodeMinRows - 1; ++i) {
    small.push_back({Datum::String("x")});
  }
  std::vector<Row> small_copy = small;
  EXPECT_FALSE(TryEncodeMotionBatch(std::move(small)).has_value());
  EXPECT_EQ(small.size(), small_copy.size());  // declined: rows untouched

  // Every string distinct: no column qualifies.
  std::vector<Row> wide;
  for (int i = 0; i < 600; ++i) {
    wide.push_back({Datum::String("unique_" + std::to_string(i))});
  }
  EXPECT_FALSE(TryEncodeMotionBatch(std::move(wide)).has_value());
}

}  // namespace
}  // namespace mppdb
