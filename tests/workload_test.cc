#include <gtest/gtest.h>

#include "db/database.h"
#include "optimizer/placement.h"
#include "test_util.h"
#include "workload/tpcds_lite.h"
#include "workload/tpch_lite.h"

namespace mppdb {
namespace {

using testutil::SameRows;
using workload::CreateAndLoadLineitem;
using workload::CreateAndLoadTpcds;
using workload::LineitemPartitioning;
using workload::TpcdsConfig;
using workload::TpcdsQueries;
using workload::TpchConfig;

TEST(TpchLiteTest, LoadsAllVariantsWithSameContents) {
  Database db(2);
  TpchConfig config;
  config.rows = 2000;
  ASSERT_TRUE(CreateAndLoadLineitem(&db, config, LineitemPartitioning::kNone,
                                    "lineitem_flat")
                  .ok());
  ASSERT_TRUE(CreateAndLoadLineitem(&db, config, LineitemPartitioning::kMonthly84,
                                    "lineitem_84")
                  .ok());
  ASSERT_TRUE(CreateAndLoadLineitem(&db, config, LineitemPartitioning::kWeekly361,
                                    "lineitem_361")
                  .ok());
  const TableDescriptor* flat = db.catalog().FindTable("lineitem_flat");
  const TableDescriptor* monthly = db.catalog().FindTable("lineitem_84");
  const TableDescriptor* weekly = db.catalog().FindTable("lineitem_361");
  EXPECT_FALSE(flat->IsPartitioned());
  EXPECT_EQ(monthly->partition_scheme->NumLeaves(), 84u);
  EXPECT_EQ(weekly->partition_scheme->NumLeaves(), 361u);
  // Deterministic generator: identical contents across variants.
  auto a = db.Run("SELECT count(*), sum(l_quantity) FROM lineitem_flat");
  auto b = db.Run("SELECT count(*), sum(l_quantity) FROM lineitem_84");
  auto c = db.Run("SELECT count(*), sum(l_quantity) FROM lineitem_361");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(SameRows(a->rows, b->rows));
  EXPECT_TRUE(SameRows(b->rows, c->rows));
  EXPECT_EQ(a->rows[0][0].int64_value(), 2000);
}

class TpcdsLiteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(4);
    config_ = new TpcdsConfig();
    config_->base_rows = 1500;
    MPPDB_CHECK(CreateAndLoadTpcds(db_, *config_).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete config_;
    db_ = nullptr;
    config_ = nullptr;
  }

  static Database* db_;
  static TpcdsConfig* config_;
};

Database* TpcdsLiteTest::db_ = nullptr;
TpcdsConfig* TpcdsLiteTest::config_ = nullptr;

TEST_F(TpcdsLiteTest, SchemaShape) {
  for (const std::string& fact : workload::TpcdsFactTables()) {
    const TableDescriptor* table = db_->catalog().FindTable(fact);
    ASSERT_NE(table, nullptr) << fact;
    ASSERT_TRUE(table->IsPartitioned()) << fact;
    EXPECT_EQ(table->partition_scheme->NumLeaves(),
              static_cast<size_t>(config_->months))
        << fact;
  }
  EXPECT_NE(db_->catalog().FindTable("date_dim"), nullptr);
  // One date_dim row per day across the span (2002-2003 = 730 days).
  auto days = db_->Run("SELECT count(*) FROM date_dim");
  ASSERT_TRUE(days.ok());
  EXPECT_EQ(days->rows[0][0].int64_value(), 730);
}

// The workhorse integration test: every workload template returns identical
// results under the Cascades optimizer (with and without partition
// selection) and the legacy Planner — the paper's correctness baseline for
// all of §4.3.
TEST_F(TpcdsLiteTest, AllQueriesAgreeAcrossOptimizersAndModes) {
  for (const auto& query : TpcdsQueries(*config_)) {
    QueryOptions cascades;
    auto reference = db_->Run(query.sql, cascades);
    ASSERT_TRUE(reference.ok()) << query.name << ": "
                                << reference.status().ToString() << "\n"
                                << query.sql;

    QueryOptions no_selection;
    no_selection.enable_partition_selection = false;
    auto unpruned = db_->Run(query.sql, no_selection);
    ASSERT_TRUE(unpruned.ok()) << query.name << ": " << unpruned.status().ToString();
    EXPECT_TRUE(SameRows(reference->rows, unpruned->rows)) << query.name;

    QueryOptions planner;
    planner.optimizer = OptimizerKind::kLegacyPlanner;
    auto legacy = db_->Run(query.sql, planner);
    ASSERT_TRUE(legacy.ok()) << query.name << ": " << legacy.status().ToString();
    EXPECT_TRUE(SameRows(reference->rows, legacy->rows)) << query.name;

    // Partition selection never scans MORE than selection-disabled mode.
    EXPECT_LE(reference->stats.TotalPartitionsScanned(),
              unpruned->stats.TotalPartitionsScanned())
        << query.name;
  }
}

// Every workload plan must satisfy the producer/consumer contract: each
// DynamicScan preceded (in its slice) by a PartitionSelector.
TEST_F(TpcdsLiteTest, AllPlansSatisfySelectorPlacementContract) {
  for (const auto& query : TpcdsQueries(*config_)) {
    for (bool selection : {true, false}) {
      QueryOptions options;
      options.enable_partition_selection = selection;
      auto plan = db_->PlanSql(query.sql, options);
      ASSERT_TRUE(plan.ok()) << query.name;
      EXPECT_TRUE(ValidateSelectorPlacement(*plan).ok())
          << query.name << " selection=" << selection << "\n"
          << PlanToString(*plan);
    }
  }
}

// Plan compactness across the whole suite: no Cascades plan enumerates
// partitions, so every serialized plan stays far below the per-partition
// growth a 24-leaf enumeration would cause.
TEST_F(TpcdsLiteTest, AllCascadesPlansAreCompact) {
  for (const auto& query : TpcdsQueries(*config_)) {
    auto plan = db_->PlanSql(query.sql);
    ASSERT_TRUE(plan.ok()) << query.name;
    EXPECT_LT(SerializePlan(*plan).size(), 4000u) << query.name;
  }
}

TEST_F(TpcdsLiteTest, DynamicEliminationPrunesTheQuarterQuery) {
  auto queries = TpcdsQueries(*config_);
  const auto& q06 = queries[5];
  ASSERT_EQ(q06.name, "q06_ss_join_quarter");
  auto result = db_->Run(q06.sql);
  ASSERT_TRUE(result.ok());
  Oid ss = db_->catalog().FindTable("store_sales")->oid;
  // Q4 of year 2 = 3 of 24 monthly partitions.
  EXPECT_EQ(result->stats.PartitionsScanned(ss), 3u);
}

TEST_F(TpcdsLiteTest, StaticVsDynamicVsNoPruningBuckets) {
  Oid ss = db_->catalog().FindTable("store_sales")->oid;
  auto queries = TpcdsQueries(*config_);
  // q01: static quarter -> 3 parts.
  auto q01 = db_->Run(queries[0].sql);
  ASSERT_TRUE(q01.ok());
  EXPECT_EQ(q01->stats.PartitionsScanned(ss), 3u);
  // q17: group-by with no date restriction -> all 24 parts.
  auto q17 = db_->Run(queries[16].sql);
  ASSERT_TRUE(q17.ok());
  EXPECT_EQ(q17->stats.PartitionsScanned(ss), 24u);
}

}  // namespace
}  // namespace mppdb
