#include <gtest/gtest.h>

#include "db/database.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace mppdb {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b2 FROM t WHERE x <= 10.5 AND y = 'it''s'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "a");
  // The escaped string literal.
  bool found_string = false;
  for (const Token& token : *tokens) {
    if (token.type == TokenType::kStringLiteral) {
      EXPECT_EQ(token.text, "it's");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
}

TEST(LexerTest, CaseInsensitiveKeywordsLowercaseIdentifiers) {
  auto tokens = Tokenize("select FOO from BaR");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "foo");
  EXPECT_EQ((*tokens)[3].text, "bar");
}

TEST(LexerTest, Params) {
  auto tokens = Tokenize("WHERE x = $1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[3].type, TokenType::kParam);
  EXPECT_EQ((*tokens)[3].int_value, 1);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT #").ok());
  EXPECT_FALSE(Tokenize("SELECT $x").ok());
}

TEST(ParserTest, SelectShape) {
  auto stmt = ParseStatement(
      "SELECT avg(amount) AS a, region FROM orders "
      "WHERE date BETWEEN DATE '2013-10-01' AND DATE '2013-12-31' "
      "GROUP BY region ORDER BY region DESC LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, sql_ast::Statement::Kind::kSelect);
  const auto& select = *stmt->select;
  EXPECT_EQ(select.items.size(), 2u);
  EXPECT_EQ(select.items[0].alias, "a");
  EXPECT_EQ(select.from.size(), 1u);
  ASSERT_NE(select.where, nullptr);
  EXPECT_EQ(select.where->kind, sql_ast::ParseExpr::Kind::kBetween);
  EXPECT_EQ(select.group_by.size(), 1u);
  ASSERT_EQ(select.order_by.size(), 1u);
  EXPECT_FALSE(select.order_by[0].ascending);
  EXPECT_EQ(select.limit, 5u);
}

TEST(ParserTest, JoinsAndSubquery) {
  auto stmt = ParseStatement(
      "SELECT * FROM orders o JOIN customer c ON o.cust_id = c.id "
      "WHERE o.date_id IN (SELECT id FROM date_dim WHERE year = 2013)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& select = *stmt->select;
  EXPECT_TRUE(select.select_star);
  ASSERT_EQ(select.joins.size(), 1u);
  EXPECT_EQ(select.joins[0].table.alias, "c");
  ASSERT_NE(select.where, nullptr);
  EXPECT_EQ(select.where->kind, sql_ast::ParseExpr::Kind::kInSubquery);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseStatement("SELECT a + b * 2 FROM t WHERE x = 1 OR y = 2 AND z = 3");
  ASSERT_TRUE(stmt.ok());
  // a + (b * 2)
  const auto& item = *stmt->select->items[0].expr;
  EXPECT_EQ(item.text, "+");
  EXPECT_EQ(item.args[1]->text, "*");
  // x=1 OR (y=2 AND z=3)
  const auto& where = *stmt->select->where;
  EXPECT_EQ(where.text, "OR");
  EXPECT_EQ(where.args[1]->text, "AND");
}

TEST(ParserTest, DmlStatements) {
  auto insert = ParseStatement("INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert->insert->values.size(), 2u);

  auto insert_select = ParseStatement("INSERT INTO t SELECT a, b FROM s");
  ASSERT_TRUE(insert_select.ok());
  EXPECT_NE(insert_select->insert->select, nullptr);

  auto update = ParseStatement("UPDATE r SET b = s.b FROM s WHERE r.a = s.a");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->update->set_items.size(), 1u);
  EXPECT_EQ(update->update->from.size(), 1u);

  auto del = ParseStatement("DELETE FROM t WHERE x < 5");
  ASSERT_TRUE(del.ok());
  EXPECT_NE(del->del->where, nullptr);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a").ok());
  EXPECT_FALSE(ParseStatement("FOO BAR").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t extra garbage here").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t").ok());
}

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : db_(2) {
    MPPDB_CHECK(db_.CreatePartitionedTable(
                       "orders",
                       Schema({{"date", TypeId::kDate},
                               {"amount", TypeId::kDouble},
                               {"cust_id", TypeId::kInt64}}),
                       TableDistribution::kHashed, {2},
                       {{0, PartitionMethod::kRange}},
                       {partition_bounds::Monthly(2013, 1, 12)})
                    .ok());
    MPPDB_CHECK(db_.CreateTable("customer",
                                Schema({{"id", TypeId::kInt64},
                                        {"state", TypeId::kString}}),
                                TableDistribution::kHashed, {0})
                    .ok());
  }

  Result<BoundStatement> Bind(const std::string& sql) {
    Binder binder(&db_.catalog());
    return binder.BindSql(sql);
  }

  Database db_;
};

TEST_F(BinderTest, ResolvesColumnsAndStar) {
  auto stmt = Bind("SELECT * FROM orders");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->root->OutputIds().size(), 3u);
  EXPECT_EQ(stmt->output_names, (std::vector<std::string>{"date", "amount",
                                                          "cust_id"}));
}

TEST_F(BinderTest, UnknownTableAndColumn) {
  EXPECT_FALSE(Bind("SELECT * FROM nope").ok());
  EXPECT_FALSE(Bind("SELECT nope FROM orders").ok());
  EXPECT_FALSE(Bind("SELECT o.nope FROM orders o").ok());
}

TEST_F(BinderTest, AmbiguousColumn) {
  auto stmt = Bind("SELECT id FROM customer c1, customer c2");
  EXPECT_FALSE(stmt.ok());
  // Qualified reference resolves.
  EXPECT_TRUE(Bind("SELECT c1.id FROM customer c1, customer c2").ok());
}

TEST_F(BinderTest, DateCoercionInComparison) {
  auto stmt = Bind("SELECT amount FROM orders WHERE date >= '2013-05-01'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // The select predicate must contain a date constant, not a string.
  ASSERT_EQ(stmt->root->kind(), LogicalKind::kProject);
  const auto& select = static_cast<const LogicalSelect&>(*stmt->root->child(0));
  EXPECT_NE(select.predicate()->ToString().find("2013-05-01"), std::string::npos);
  // Malformed date string against a date column is a bind error.
  EXPECT_FALSE(Bind("SELECT amount FROM orders WHERE date >= 'tomorrow'").ok());
}

TEST_F(BinderTest, InSubqueryBecomesSemiJoin) {
  auto stmt = Bind(
      "SELECT amount FROM orders WHERE cust_id IN "
      "(SELECT id FROM customer WHERE state = 'CA')");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // Project(SemiJoin(orders, Project(Select(customer))))
  const LogicalNode* node = stmt->root.get();
  ASSERT_EQ(node->kind(), LogicalKind::kProject);
  node = node->child(0).get();
  ASSERT_EQ(node->kind(), LogicalKind::kJoin);
  EXPECT_EQ(static_cast<const LogicalJoin*>(node)->join_type(), JoinType::kSemi);
}

TEST_F(BinderTest, AggregatesRequireGrouping) {
  EXPECT_TRUE(Bind("SELECT cust_id, sum(amount) FROM orders GROUP BY cust_id").ok());
  // Non-grouped column outside an aggregate is rejected.
  EXPECT_FALSE(Bind("SELECT date, sum(amount) FROM orders GROUP BY cust_id").ok());
  // Scalar aggregate without GROUP BY is fine.
  EXPECT_TRUE(Bind("SELECT count(*), avg(amount) FROM orders").ok());
}

TEST_F(BinderTest, SharedAggregateReused) {
  auto stmt = Bind("SELECT sum(amount), sum(amount) + 1 FROM orders");
  ASSERT_TRUE(stmt.ok());
  const auto& project = static_cast<const LogicalProject&>(*stmt->root);
  const auto& agg = static_cast<const LogicalAgg&>(*project.child(0));
  EXPECT_EQ(agg.aggs().size(), 1u);  // sum(amount) bound once
}

TEST_F(BinderTest, UpdateBinding) {
  auto stmt = Bind("UPDATE orders SET amount = amount * 2 WHERE cust_id = 7");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, BoundStatement::Kind::kUpdate);
  EXPECT_EQ(stmt->target_table->name, "orders");
  ASSERT_EQ(stmt->set_items.size(), 1u);
  EXPECT_EQ(stmt->set_items[0].column_index, 1);
  EXPECT_EQ(stmt->target_rowid_ids.size(), 3u);
  EXPECT_FALSE(Bind("UPDATE orders SET nope = 1").ok());
}

TEST_F(BinderTest, InsertBinding) {
  auto stmt = Bind("INSERT INTO customer VALUES (1, 'CA'), (2, 'WA')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, BoundStatement::Kind::kInsert);
  ASSERT_EQ(stmt->root->kind(), LogicalKind::kValues);
  EXPECT_EQ(static_cast<const LogicalValues&>(*stmt->root).rows().size(), 2u);
  // Date strings coerce on insert into date columns.
  EXPECT_TRUE(Bind("INSERT INTO orders VALUES ('2013-04-01', 9.5, 1)").ok());
  EXPECT_FALSE(Bind("INSERT INTO customer VALUES (1)").ok());  // arity
}

TEST_F(BinderTest, HavingBindsOverAggregates) {
  auto stmt = Bind(
      "SELECT cust_id, sum(amount) FROM orders GROUP BY cust_id "
      "HAVING sum(amount) > 100 AND cust_id < 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // Project(Select(Agg(...))): the HAVING filter sits between Agg and the
  // final projection.
  ASSERT_EQ(stmt->root->kind(), LogicalKind::kProject);
  ASSERT_EQ(stmt->root->child(0)->kind(), LogicalKind::kSelect);
  EXPECT_EQ(stmt->root->child(0)->child(0)->kind(), LogicalKind::kAgg);
  // HAVING may not reference non-grouped columns.
  EXPECT_FALSE(
      Bind("SELECT cust_id, sum(amount) FROM orders GROUP BY cust_id "
           "HAVING date > '2013-01-01'")
          .ok());
}

TEST_F(BinderTest, ExplainFlagSurvivesBinding) {
  auto stmt = Bind("EXPLAIN SELECT * FROM orders");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->explain);
  auto plain = Bind("SELECT * FROM orders");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->explain);
}

TEST_F(BinderTest, OrderByResolvesAliasesAndValidates) {
  EXPECT_TRUE(Bind("SELECT amount AS a FROM orders ORDER BY a").ok());
  EXPECT_TRUE(Bind("SELECT amount, date FROM orders ORDER BY date DESC").ok());
  // ORDER BY a column not in the output is rejected.
  EXPECT_FALSE(Bind("SELECT amount FROM orders ORDER BY date").ok());
}

}  // namespace
}  // namespace mppdb
