// Out-of-core execution tests (DESIGN.md §14): hash join, hash aggregation,
// and sort that exceed the memory budget must spill to disk and complete
// with rows bit-identical to the unlimited-budget oracle — only the spill
// counters in ExecStats may move. Also covers the recursion fallbacks
// (all-duplicate keys), temp-file lifecycle across every outcome (success,
// fatal spill I/O faults, cancellation mid-spill, budget exhaustion), and
// the EXPLAIN ANALYZE spill footer.
//
// The fault × spill matrix lives in fault_matrix_test.cc; the randomized
// spill-on/off axis in random_query_property_test.cc.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "db/database.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "expr/expr.h"
#include "runtime/query_context.h"
#include "storage/storage.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::TestDb;

// All four executor modes; `spill` defaults on.
const Executor::Options kModes[] = {
    {.parallel = false, .vectorized = false},
    {.parallel = false, .vectorized = true},
    {.parallel = true, .vectorized = false},
    {.parallel = true, .vectorized = true},
};

std::string ModeName(const Executor::Options& mode) {
  return std::string(mode.parallel ? "parallel" : "serial") + "/" +
         (mode.vectorized ? "vec" : "row");
}

Executor::Options SpillOff(Executor::Options mode) {
  mode.spill = false;
  return mode;
}

// Regular files anywhere under `dir` (0 if the directory does not exist).
size_t FilesUnder(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return 0;
  size_t n = 0;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec)) ++n;
  }
  return n;
}

// A scratch directory handed to QueryContext::set_spill_dir, removed (with
// anything leaked into it) on destruction.
struct TempSpillDir {
  TempSpillDir() {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("mppdb-spill-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(path);
  }
  ~TempSpillDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

// Zeroes the spill counters so a spilled run's stats can be compared to the
// in-memory oracle's: every pre-existing field must be untouched.
ExecStats WithoutSpillCounters(ExecStats stats) {
  stats.spill_partitions = 0;
  stats.spill_bytes_written = 0;
  stats.spill_bytes_read = 0;
  stats.spill_passes = 0;
  stats.sort_runs = 0;
  return stats;
}

// --- Fixtures -------------------------------------------------------------

// Single-segment database: handcrafted operator-rooted plans are
// distribution-correct in all four modes, so budget refusals land exactly
// where each test intends. (Multi-segment planner-made plans are covered by
// the probe-side-Motion test below and the SQL-level suites.)
struct SpillJoinFixture {
  SpillJoinFixture(int64_t dim_rows, int64_t fact_rows, bool all_dup_keys)
      : db(1) {
    dim = db.CreatePlainTable(
        "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
    std::vector<Row> drows;
    for (int64_t i = 0; i < dim_rows; ++i) {
      drows.push_back({Datum::Int64(all_dup_keys ? 7 : i), Datum::Int64(i * 2)});
    }
    db.Insert(dim, drows);
    fact = db.CreatePlainTable(
        "fact", Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}), {0});
    std::vector<Row> frows;
    for (int64_t i = 0; i < fact_rows; ++i) {
      int64_t b;
      if (all_dup_keys) {
        b = (i % 2 == 0) ? 7 : 9;  // half match the duplicated build key
      } else {
        b = (i < fact_rows / 2) ? i % 150 : 100000 + i;  // half match
      }
      frows.push_back({Datum::Int64(i), Datum::Int64(b)});
    }
    db.Insert(fact, frows);
  }

  PhysPtr JoinPlan(JoinType type, ExprPtr residual, bool gather) const {
    auto build = std::make_shared<TableScanNode>(dim->oid, dim->oid,
                                                 std::vector<ColRefId>{11, 12});
    auto probe = std::make_shared<TableScanNode>(fact->oid, fact->oid,
                                                 std::vector<ColRefId>{1, 2});
    PhysPtr join = std::make_shared<HashJoinNode>(
        type, std::vector<ColRefId>{11}, std::vector<ColRefId>{2},
        std::move(residual), build, probe);
    if (!gather) return join;
    return std::make_shared<MotionNode>(MotionKind::kGather,
                                        std::vector<ColRefId>{}, join);
  }

  TestDb db;
  const TableDescriptor* dim;
  const TableDescriptor* fact;
};

// Runs `plan` three ways per mode: unlimited oracle, limited with spill off
// (must fail kResourceExhausted), limited with spill on (must match the
// oracle bit-for-bit with nonzero spill counters and no leftover files).
void ExpectSpillMatchesOracle(TestDb& db, const PhysPtr& plan, size_t limit,
                              size_t min_spill_passes = 1) {
  for (const Executor::Options& mode : kModes) {
    TempSpillDir dir;
    Executor exec(&db.catalog, &db.storage, mode);
    QueryContext ctx;
    ctx.set_spill_dir(dir.path);

    auto oracle = exec.Execute(plan, &ctx);
    ASSERT_TRUE(oracle.ok()) << ModeName(mode) << ": "
                             << oracle.status().ToString();
    const ExecStats oracle_stats = exec.stats();
    EXPECT_EQ(oracle_stats.spill_bytes_written, 0u) << ModeName(mode);

    Executor no_spill(&db.catalog, &db.storage, SpillOff(mode));
    ctx.budget().set_limit(limit);
    auto refused = no_spill.Execute(plan, &ctx);
    ASSERT_FALSE(refused.ok()) << ModeName(mode) << ": spill-off run passed "
                               << "— limit does not constrain this plan";
    EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted)
        << ModeName(mode) << ": " << refused.status().ToString();
    EXPECT_EQ(FilesUnder(dir.path), 0u) << ModeName(mode);

    auto spilled = exec.Execute(plan, &ctx);
    ASSERT_TRUE(spilled.ok()) << ModeName(mode) << ": "
                              << spilled.status().ToString();
    EXPECT_TRUE(*spilled == *oracle) << ModeName(mode);
    const ExecStats spilled_stats = exec.stats();
    EXPECT_GT(spilled_stats.spill_bytes_written, 0u) << ModeName(mode);
    EXPECT_GT(spilled_stats.spill_bytes_read, 0u) << ModeName(mode);
    EXPECT_GE(spilled_stats.spill_passes, min_spill_passes) << ModeName(mode);
    // Stats-only visibility: every pre-existing counter is identical to the
    // in-memory run's.
    EXPECT_TRUE(WithoutSpillCounters(spilled_stats) ==
                WithoutSpillCounters(oracle_stats))
        << ModeName(mode);
    EXPECT_EQ(FilesUnder(dir.path), 0u)
        << ModeName(mode) << ": leaked spill files";
    ctx.budget().set_limit(0);
  }
}

// --- Hash join ------------------------------------------------------------

// Build table (4000 rows ≈ 320 KB estimated) exceeds a 200 KB budget; the
// spilled join must be bit-identical through a Gather root (Motion buffers
// never spill and still fit).
TEST(SpillExecTest, JoinSpillsBitIdenticalAcrossModes) {
  SpillJoinFixture fx(4000, 600, /*all_dup_keys=*/false);
  PhysPtr plan = fx.JoinPlan(JoinType::kInner, nullptr, /*gather=*/true);
  ExpectSpillMatchesOracle(fx.db, plan, 200 * 1000);
}

// Residual predicates are evaluated on the spill path too, over the same
// joint layout.
TEST(SpillExecTest, JoinResidualSpillsBitIdenticalAcrossModes) {
  SpillJoinFixture fx(4000, 600, /*all_dup_keys=*/false);
  // tag < a: build-side column against probe-side column.
  ExprPtr residual =
      MakeComparison(CompareOp::kLt, MakeColumnRef(12, "tag", TypeId::kInt64),
                     MakeColumnRef(1, "a", TypeId::kInt64));
  PhysPtr plan = fx.JoinPlan(JoinType::kInner, residual, /*gather=*/false);
  ExpectSpillMatchesOracle(fx.db, plan, 200 * 1000);
}

// All-duplicate build keys: no salt can split the partition, so recursion
// must bottom out at the block-streaming fallback (one pass per depth, then
// blocks). Semi join exercises the per-probe satisfied bookkeeping across
// blocks.
TEST(SpillExecTest, SemiJoinAllDuplicateKeysHitsFallback) {
  SpillJoinFixture fx(2500, 40, /*all_dup_keys=*/true);
  PhysPtr plan = fx.JoinPlan(JoinType::kSemi, nullptr, /*gather=*/true);
  // 1 initial partitioning pass + 3 re-partitions before depth is exhausted.
  ExpectSpillMatchesOracle(fx.db, plan, 60 * 1000, /*min_spill_passes=*/4);
}

// Inner join through the fallback: matches are found block by block but
// must come out in the oracle's per-probe reverse-build order, restored by
// the rank tags.
TEST(SpillExecTest, InnerJoinAllDuplicateKeysFallbackOrdering) {
  SpillJoinFixture fx(2500, 6, /*all_dup_keys=*/true);
  PhysPtr plan = fx.JoinPlan(JoinType::kInner, nullptr, /*gather=*/false);
  ExpectSpillMatchesOracle(fx.db, plan, 60 * 1000, /*min_spill_passes=*/4);
}

// Empty probe side with a spill-triggering build: every partition is
// probe-empty and is skipped without joining; no files leak. The converse
// (empty build side) never trips the spill trigger — its estimate is zero —
// and must keep working with a spill dir configured.
TEST(SpillExecTest, EmptySidesWithSpillConfigured) {
  TestDb db(1);
  const TableDescriptor* dim = db.CreatePlainTable(
      "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
  std::vector<Row> drows;
  for (int64_t i = 0; i < 4000; ++i) {
    drows.push_back({Datum::Int64(i), Datum::Int64(i * 2)});
  }
  db.Insert(dim, drows);
  const TableDescriptor* empty = db.CreatePlainTable(
      "empty_t", Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}), {0});

  for (const Executor::Options& mode : kModes) {
    TempSpillDir dir;
    Executor exec(&db.catalog, &db.storage, mode);
    QueryContext ctx;
    ctx.set_spill_dir(dir.path);
    ctx.budget().set_limit(200 * 1000);

    // Build spills, probe is empty.
    auto build_scan = std::make_shared<TableScanNode>(
        dim->oid, dim->oid, std::vector<ColRefId>{11, 12});
    auto probe_scan = std::make_shared<TableScanNode>(
        empty->oid, empty->oid, std::vector<ColRefId>{1, 2});
    PhysPtr plan = std::make_shared<HashJoinNode>(
        JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{2},
        nullptr, build_scan, probe_scan);
    auto result = exec.Execute(plan, &ctx);
    ASSERT_TRUE(result.ok()) << ModeName(mode) << ": "
                             << result.status().ToString();
    EXPECT_TRUE(result->empty()) << ModeName(mode);
    EXPECT_EQ(FilesUnder(dir.path), 0u) << ModeName(mode);

    // Build empty: a zero estimate is never refused, so no spill at all.
    PhysPtr flipped = std::make_shared<HashJoinNode>(
        JoinType::kInner, std::vector<ColRefId>{1}, std::vector<ColRefId>{12},
        nullptr, probe_scan, build_scan);
    auto flipped_result = exec.Execute(flipped, &ctx);
    ASSERT_TRUE(flipped_result.ok())
        << ModeName(mode) << ": " << flipped_result.status().ToString();
    EXPECT_TRUE(flipped_result->empty()) << ModeName(mode);
    EXPECT_EQ(exec.stats().spill_bytes_written, 0u) << ModeName(mode);
    EXPECT_EQ(FilesUnder(dir.path), 0u) << ModeName(mode);
    ctx.budget().set_limit(0);
  }
}

// Probe side behind a Motion (broadcast): in parallel mode the probe child
// suspends at the exchange and the join frame unwinds mid-decision — the
// spill decision must survive the suspension (segment memo, not a local).
// dim is hash-distributed on its join key, fact is broadcast, so the
// multi-segment join is distribution-correct and the gathered result
// matches the serial oracle as a set.
TEST(SpillExecTest, JoinSpillSurvivesProbeSideMotionSuspension) {
  TestDb db(4);
  const TableDescriptor* dim = db.CreatePlainTable(
      "dim", Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}), {0});
  std::vector<Row> drows;
  for (int64_t i = 0; i < 12000; ++i) {
    drows.push_back({Datum::Int64(i), Datum::Int64(i * 2)});
  }
  db.Insert(dim, drows);
  const TableDescriptor* fact = db.CreatePlainTable(
      "fact", Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}), {0});
  std::vector<Row> frows;
  for (int64_t i = 0; i < 150; ++i) {
    frows.push_back(
        {Datum::Int64(i), Datum::Int64(i < 75 ? i : 100000 + i)});
  }
  db.Insert(fact, frows);

  auto make_plan = [&]() -> PhysPtr {
    auto build = std::make_shared<TableScanNode>(dim->oid, dim->oid,
                                                 std::vector<ColRefId>{11, 12});
    auto probe_scan = std::make_shared<TableScanNode>(
        fact->oid, fact->oid, std::vector<ColRefId>{1, 2});
    auto bcast = std::make_shared<MotionNode>(MotionKind::kBroadcast,
                                              std::vector<ColRefId>{}, probe_scan);
    auto join = std::make_shared<HashJoinNode>(
        JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{2},
        nullptr, build, bcast);
    return std::make_shared<MotionNode>(MotionKind::kGather,
                                        std::vector<ColRefId>{}, join);
  };
  PhysPtr plan = make_plan();

  std::vector<Row> oracle;
  {
    Executor exec(&db.catalog, &db.storage, kModes[0]);
    auto result = exec.Execute(plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    oracle = std::move(result).value();
    EXPECT_EQ(oracle.size(), 75u);
  }

  // Broadcast buffers (150 rows × 4 segments ≈ 48 KB) are mandatory and fit
  // in 200 KB; each segment's build table (~3000 rows ≈ 240 KB estimated)
  // does not, so every segment spills regardless of charge interleaving.
  for (const Executor::Options& mode : kModes) {
    TempSpillDir dir;
    Executor exec(&db.catalog, &db.storage, mode);
    QueryContext ctx;
    ctx.set_spill_dir(dir.path);
    ctx.budget().set_limit(200 * 1000);
    auto spilled = exec.Execute(plan, &ctx);
    ASSERT_TRUE(spilled.ok()) << ModeName(mode) << ": "
                              << spilled.status().ToString();
    EXPECT_TRUE(testutil::SameRows(*spilled, oracle)) << ModeName(mode);
    EXPECT_GT(exec.stats().spill_bytes_written, 0u) << ModeName(mode);
    EXPECT_EQ(FilesUnder(dir.path), 0u) << ModeName(mode);

    Executor no_spill(&db.catalog, &db.storage, SpillOff(mode));
    auto refused = no_spill.Execute(plan, &ctx);
    ASSERT_FALSE(refused.ok()) << ModeName(mode);
    EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted)
        << ModeName(mode) << ": " << refused.status().ToString();
  }
}

// --- Hash aggregation -----------------------------------------------------

struct SpillAggFixture {
  explicit SpillAggFixture(bool skewed) : db(1) {
    t = db.CreatePlainTable("t", Schema({{"a", TypeId::kInt64},
                                         {"b", TypeId::kInt64},
                                         {"c", TypeId::kDouble}}),
                            {0});
    std::vector<Row> rows;
    if (skewed) {
      // One group holds 5000 rows, 1000 singleton groups around it: the
      // heavy group's partition never fits and never splits, forcing the
      // max-depth streaming path, while light partitions aggregate in
      // memory.
      for (int64_t i = 0; i < 6000; ++i) {
        const int64_t key = (i % 6 == 5) ? 1000000 + i : 1;
        rows.push_back({Datum::Int64(key), Datum::Int64(i % 97),
                        Datum::Double(static_cast<double>(i) * 0.25)});
      }
    } else {
      for (int64_t i = 0; i < 12000; ++i) {
        rows.push_back({Datum::Int64(i), Datum::Int64(i % 97),
                        Datum::Double(static_cast<double>(i) * 0.25)});
      }
    }
    db.Insert(t, rows);
  }

  PhysPtr AggPlan() const {
    auto scan = std::make_shared<TableScanNode>(
        t->oid, t->oid, std::vector<ColRefId>{1, 2, 3});
    return std::make_shared<HashAggNode>(
        std::vector<ColRefId>{1},
        std::vector<AggItem>{
            {AggFunc::kCountStar, nullptr, 20, "cnt"},
            {AggFunc::kSum, MakeColumnRef(2, "b", TypeId::kInt64), 21, "sb"},
            // Double sum: accumulation order must match the oracle exactly
            // for the comparison below to hold bit-for-bit.
            {AggFunc::kSum, MakeColumnRef(3, "c", TypeId::kDouble), 22, "sc"}},
        scan);
  }

  TestDb db;
  const TableDescriptor* t;
};

// 12000 distinct groups ≈ 1.5 MB of grouping state against a 300 KB budget:
// partitions aggregate in memory after one partitioning pass. Group emission
// order and double sums must match the oracle exactly.
TEST(SpillExecTest, AggSpillsBitIdenticalAcrossModes) {
  SpillAggFixture fx(/*skewed=*/false);
  ExpectSpillMatchesOracle(fx.db, fx.AggPlan(), 300 * 1000);
}

// Skewed groups: the heavy partition survives every re-partitioning salt
// and streams at max depth with honest per-group charges.
TEST(SpillExecTest, AggSkewedGroupsStreamAtMaxDepth) {
  SpillAggFixture fx(/*skewed=*/true);
  ExpectSpillMatchesOracle(fx.db, fx.AggPlan(), 50 * 1000,
                           /*min_spill_passes=*/4);
}

// --- Sort -----------------------------------------------------------------

struct SpillSortFixture {
  explicit SpillSortFixture(int64_t n) : db(1) {
    t = db.CreatePlainTable(
        "t", Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}), {0});
    std::vector<Row> rows;
    for (int64_t i = 0; i < n; ++i) {
      // Heavily duplicated keys: stability is observable through column a.
      rows.push_back({Datum::Int64(i), Datum::Int64((i * 37) % 1000)});
    }
    db.Insert(t, rows);
  }

  PhysPtr SortPlan(bool ascending) const {
    auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                                std::vector<ColRefId>{1, 2});
    return std::make_shared<SortNode>(
        std::vector<SortKey>{{2, ascending}}, scan);
  }

  TestDb db;
  const TableDescriptor* t;
};

// 20000 rows ≈ 1.1 MB of sort state against 300 KB: a handful of runs, one
// merge. Duplicate keys make any stability bug visible.
TEST(SpillExecTest, SortSpillsBitIdenticalAcrossModes) {
  SpillSortFixture fx(20000);
  ExpectSpillMatchesOracle(fx.db, fx.SortPlan(/*ascending=*/true),
                           300 * 1000, /*min_spill_passes=*/2);
}

TEST(SpillExecTest, SortDescendingSpillsBitIdentical) {
  SpillSortFixture fx(20000);
  ExpectSpillMatchesOracle(fx.db, fx.SortPlan(/*ascending=*/false),
                           300 * 1000, /*min_spill_passes=*/2);
}

// A 40 KB budget yields ~32 runs — more than the merge fan-in — so the
// cascaded (multi-level) merge path runs.
TEST(SpillExecTest, SortCascadedMergeBitIdentical) {
  SpillSortFixture fx(20000);
  PhysPtr plan = fx.SortPlan(/*ascending=*/true);
  ExpectSpillMatchesOracle(fx.db, plan, 40 * 1000, /*min_spill_passes=*/3);
  // Confirm the run count actually exceeded the fan-in in one mode.
  TempSpillDir dir;
  Executor exec(&fx.db.catalog, &fx.db.storage, kModes[0]);
  QueryContext ctx;
  ctx.set_spill_dir(dir.path);
  ctx.budget().set_limit(40 * 1000);
  auto result = exec.Execute(plan, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(exec.stats().sort_runs, 16u);
}

// A budget below the irreducible spill working set (one run floor / one
// spill block) still fails typed — and still cleans up.
TEST(SpillExecTest, BudgetBelowSpillFloorFailsTypedAndClean) {
  SpillSortFixture sort_fx(20000);
  SpillJoinFixture join_fx(2500, 40, /*all_dup_keys=*/true);
  const struct {
    TestDb* db;
    PhysPtr plan;
  } cases[] = {
      {&sort_fx.db, sort_fx.SortPlan(true)},
      {&join_fx.db, join_fx.JoinPlan(JoinType::kInner, nullptr, false)},
  };
  for (const auto& c : cases) {
    for (const Executor::Options& mode : kModes) {
      TempSpillDir dir;
      Executor exec(&c.db->catalog, &c.db->storage, mode);
      QueryContext ctx;
      ctx.set_spill_dir(dir.path);
      ctx.budget().set_limit(500);
      auto result = exec.Execute(c.plan, &ctx);
      ASSERT_FALSE(result.ok()) << ModeName(mode);
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
          << ModeName(mode) << ": " << result.status().ToString();
      EXPECT_EQ(FilesUnder(dir.path), 0u) << ModeName(mode);
    }
  }
}

// --- Temp-file lifecycle --------------------------------------------------

// Spill files must be unlinked after every outcome: fatal faults at each
// spill point (files already on disk when the error fires) and cancellation
// arriving while a spill is in progress.
TEST(SpillExecTest, SpillFilesReclaimedOnFaultAndCancel) {
  SpillJoinFixture fx(4000, 600, /*all_dup_keys=*/false);
  PhysPtr plan = fx.JoinPlan(JoinType::kInner, nullptr, /*gather=*/true);

  for (const Executor::Options& mode : kModes) {
    for (const char* point : {"spill.open", "spill.write", "spill.read"}) {
      TempSpillDir dir;
      Executor exec(&fx.db.catalog, &fx.db.storage, mode);
      FaultInjector injector(7);
      FaultSpec fatal;
      fatal.kind = FaultKind::kFatal;
      // Let some spill I/O happen first so files exist when the fault fires.
      fatal.skip_first = 3;
      injector.Arm(point, fatal);
      QueryContext ctx;
      ctx.set_fault_injector(&injector);
      ctx.set_spill_dir(dir.path);
      ctx.budget().set_limit(200 * 1000);
      auto result = exec.Execute(plan, &ctx);
      ASSERT_FALSE(result.ok()) << ModeName(mode) << " " << point;
      EXPECT_EQ(result.status().code(), StatusCode::kInternal)
          << ModeName(mode) << " " << point << ": "
          << result.status().ToString();
      EXPECT_GT(injector.fires(point), 0u) << ModeName(mode) << " " << point;
      EXPECT_EQ(FilesUnder(dir.path), 0u)
          << ModeName(mode) << " " << point << ": leaked spill files";
    }
  }

  // Cancellation while a spill write stalls: the delay parks the query
  // mid-spill (files on disk), Cancel() unwinds it, teardown reclaims.
  for (const Executor::Options& mode : kModes) {
    TempSpillDir dir;
    Executor exec(&fx.db.catalog, &fx.db.storage, mode);
    FaultInjector injector(7);
    FaultSpec stall;
    stall.kind = FaultKind::kDelay;
    stall.delay_ms = 5000;
    stall.skip_first = 3;
    stall.max_fires = 1;
    injector.Arm("spill.write", stall);
    QueryContext ctx;
    ctx.set_fault_injector(&injector);
    ctx.set_spill_dir(dir.path);
    ctx.budget().set_limit(200 * 1000);
    std::thread canceller([&ctx] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      ctx.Cancel();
    });
    auto result = exec.Execute(plan, &ctx);
    canceller.join();
    ASSERT_FALSE(result.ok()) << ModeName(mode);
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << ModeName(mode) << ": " << result.status().ToString();
    EXPECT_EQ(FilesUnder(dir.path), 0u) << ModeName(mode);

    // The executor and context stay reusable: the retried query spills
    // again and completes (idempotent teardown).
    ctx.Reset();
    ctx.budget().set_limit(200 * 1000);
    auto retry = exec.Execute(plan, &ctx);
    ASSERT_TRUE(retry.ok()) << ModeName(mode) << ": "
                            << retry.status().ToString();
    EXPECT_GT(exec.stats().spill_bytes_written, 0u) << ModeName(mode);
    EXPECT_EQ(FilesUnder(dir.path), 0u) << ModeName(mode);
  }
}

// --- Database level: retry, spill_dir option, EXPLAIN ANALYZE -------------

void InsertBulk(Database& db, const std::string& table, int64_t begin,
                int64_t end) {
  for (int64_t base = begin; base < end; base += 500) {
    std::string sql = "INSERT INTO " + table + " VALUES ";
    for (int64_t i = base; i < std::min(end, base + 500); ++i) {
      if (i != base) sql += ", ";
      sql += "(" + std::to_string(i) + ", " + std::to_string(i % 150) + ")";
    }
    auto st = db.Run(sql);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }
}

// A transient spill-write fault is cured by the query-level retry loop: the
// statement succeeds, rows match the fault-free run, and the spill dir ends
// empty (retry teardown reclaimed the first attempt's files).
TEST(SpillDatabaseTest, TransientSpillFaultRetriedToSuccess) {
  Database db(1);
  ASSERT_TRUE(db.Run("CREATE TABLE d (id BIGINT, t BIGINT)").ok());
  ASSERT_TRUE(db.Run("CREATE TABLE f (a BIGINT, b BIGINT)").ok());
  InsertBulk(db, "d", 0, 4000);
  InsertBulk(db, "f", 0, 4000);

  const std::string sql =
      "SELECT count(*) FROM f JOIN d ON f.b = d.id";
  auto oracle = db.Run(sql);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  // Both sides are 4000 rows (~320 KB estimated), so whichever side the
  // optimizer broadcasts, its mandatory Motion receive buffers fit in
  // 450 KB while the build table pushes past it and spills.
  TempSpillDir dir;
  FaultInjector injector(11);
  FaultSpec transient;
  transient.kind = FaultKind::kTransient;
  transient.skip_first = 2;
  transient.max_fires = 1;
  injector.Arm("spill.write", transient);
  QueryOptions options;
  options.fault_injector = &injector;
  options.memory_limit_bytes = 450 * 1000;
  options.spill_dir = dir.path;
  auto result = db.Execute(sql, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(injector.fires("spill.write"), 1u);
  EXPECT_TRUE(result->rows == oracle->rows);
  EXPECT_GT(result->stats.spill_bytes_written, 0u);
  EXPECT_EQ(FilesUnder(dir.path), 0u);
}

// EXPLAIN ANALYZE executes the statement and reports the spill counters in
// the plan footer; under an unconstrained budget the same footer reports
// zeros.
TEST(SpillDatabaseTest, ExplainAnalyzeReportsSpillCounters) {
  Database db(1);
  ASSERT_TRUE(db.Run("CREATE TABLE d (id BIGINT, t BIGINT)").ok());
  ASSERT_TRUE(db.Run("CREATE TABLE f (a BIGINT, b BIGINT)").ok());
  InsertBulk(db, "d", 0, 4000);
  InsertBulk(db, "f", 0, 4000);

  const std::string sql =
      "EXPLAIN ANALYZE SELECT count(*) FROM f JOIN d ON f.b = d.id";
  TempSpillDir dir;
  QueryOptions options;
  options.memory_limit_bytes = 450 * 1000;
  options.spill_dir = dir.path;
  auto analyzed = db.Execute(sql, options);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  ASSERT_EQ(analyzed->rows.size(), 1u);
  const std::string text = analyzed->rows[0][0].string_value();
  EXPECT_NE(text.find("Spill: partitions="), std::string::npos) << text;
  EXPECT_EQ(text.find("bytes_written=0 "), std::string::npos) << text;
  EXPECT_GT(analyzed->stats.spill_bytes_written, 0u);
  EXPECT_GT(analyzed->stats.spill_passes, 0u);
  EXPECT_EQ(FilesUnder(dir.path), 0u);

  QueryOptions unlimited;
  unlimited.spill_dir = dir.path;
  auto no_spill = db.Execute(sql, unlimited);
  ASSERT_TRUE(no_spill.ok()) << no_spill.status().ToString();
  const std::string baseline = no_spill->rows[0][0].string_value();
  EXPECT_NE(baseline.find("Spill: partitions=0 bytes_written=0"),
            std::string::npos)
      << baseline;
}

}  // namespace
}  // namespace mppdb
