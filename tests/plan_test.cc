#include <gtest/gtest.h>

#include "exec/plan.h"
#include "expr/expr.h"

namespace mppdb {
namespace {

PhysPtr MakeScan(Oid table, Oid unit, std::vector<ColRefId> cols) {
  return std::make_shared<TableScanNode>(table, unit, std::move(cols));
}

TEST(PlanTest, OutputIdsThroughOperators) {
  PhysPtr scan = MakeScan(1, 1, {1, 2});
  PhysPtr filter = std::make_shared<FilterNode>(
      MakeComparison(CompareOp::kGt, MakeColumnRef(1, "a", TypeId::kInt64),
                     MakeConst(Datum::Int64(0))),
      scan);
  EXPECT_EQ(filter->OutputIds(), (std::vector<ColRefId>{1, 2}));

  PhysPtr project = std::make_shared<ProjectNode>(
      std::vector<ProjectItem>{{MakeColumnRef(2, "b", TypeId::kInt64), 9, "b"}},
      filter);
  EXPECT_EQ(project->OutputIds(), (std::vector<ColRefId>{9}));

  PhysPtr scan2 = MakeScan(2, 2, {3});
  PhysPtr join = std::make_shared<HashJoinNode>(JoinType::kInner,
                                                std::vector<ColRefId>{9},
                                                std::vector<ColRefId>{3}, nullptr,
                                                project, scan2);
  EXPECT_EQ(join->OutputIds(), (std::vector<ColRefId>{9, 3}));

  PhysPtr semi = std::make_shared<HashJoinNode>(JoinType::kSemi,
                                                std::vector<ColRefId>{9},
                                                std::vector<ColRefId>{3}, nullptr,
                                                project, scan2);
  // Semi join preserves probe-side columns only.
  EXPECT_EQ(semi->OutputIds(), (std::vector<ColRefId>{3}));
}

TEST(PlanTest, RowidColumnsAppendToScanOutput) {
  auto scan = std::make_shared<TableScanNode>(1, 1, std::vector<ColRefId>{1, 2},
                                              std::vector<ColRefId>{7, 8, 9});
  EXPECT_EQ(scan->OutputIds(), (std::vector<ColRefId>{1, 2, 7, 8, 9}));
}

TEST(PlanTest, CloneWithChildrenSharesWhenUnchanged) {
  PhysPtr scan = MakeScan(1, 1, {1});
  PhysPtr filter = std::make_shared<FilterNode>(
      MakeComparison(CompareOp::kGt, MakeColumnRef(1, "a", TypeId::kInt64),
                     MakeConst(Datum::Int64(0))),
      scan);
  PhysPtr same = CloneWithChildren(filter, {scan});
  EXPECT_EQ(same, filter);

  PhysPtr other_scan = MakeScan(1, 2, {1});
  PhysPtr changed = CloneWithChildren(filter, {other_scan});
  EXPECT_NE(changed, filter);
  EXPECT_EQ(changed->kind(), PhysNodeKind::kFilter);
  EXPECT_EQ(changed->child(0), other_scan);
  // Predicate carried over.
  EXPECT_TRUE(Expr::Equals(static_cast<const FilterNode&>(*changed).predicate(),
                           static_cast<const FilterNode&>(*filter).predicate()));
}

TEST(PlanTest, CloneCoversEveryInnerNodeKind) {
  PhysPtr scan = MakeScan(1, 1, {1, 2});
  PhysPtr scan2 = MakeScan(2, 2, {3});
  ExprPtr pred = MakeComparison(CompareOp::kEq, MakeColumnRef(1, "a", TypeId::kInt64),
                                MakeColumnRef(3, "c", TypeId::kInt64));
  std::vector<PhysPtr> nodes = {
      std::make_shared<SequenceNode>(std::vector<PhysPtr>{scan, scan2}),
      std::make_shared<AppendNode>(std::vector<PhysPtr>{scan}),
      std::make_shared<FilterNode>(pred, scan),
      std::make_shared<ProjectNode>(
          std::vector<ProjectItem>{{MakeColumnRef(1, "a", TypeId::kInt64), 1, "a"}},
          scan),
      std::make_shared<HashJoinNode>(JoinType::kInner, std::vector<ColRefId>{1},
                                     std::vector<ColRefId>{3}, nullptr, scan, scan2),
      std::make_shared<NestedLoopJoinNode>(JoinType::kInner, pred, scan, scan2),
      std::make_shared<HashAggNode>(std::vector<ColRefId>{1},
                                    std::vector<AggItem>{}, scan),
      std::make_shared<SortNode>(std::vector<SortKey>{{1, true}}, scan),
      std::make_shared<LimitNode>(3, scan),
      std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{}, scan),
      std::make_shared<PartitionSelectorNode>(1, 1, std::vector<ColRefId>{1},
                                              std::vector<ExprPtr>{nullptr}, scan),
      std::make_shared<InsertNode>(1, 50, scan),
      std::make_shared<UpdateNode>(1, std::vector<ColRefId>{1, 2},
                                   std::vector<ColRefId>{7, 8, 9},
                                   std::vector<UpdateSetItem>{}, 50, scan),
      std::make_shared<DeleteNode>(1, std::vector<ColRefId>{7, 8, 9}, 50, scan),
  };
  PhysPtr replacement1 = MakeScan(1, 9, {1, 2});
  PhysPtr replacement2 = MakeScan(2, 9, {3});
  for (const PhysPtr& node : nodes) {
    std::vector<PhysPtr> children;
    for (size_t i = 0; i < node->children().size(); ++i) {
      children.push_back(i == 0 ? replacement1 : replacement2);
    }
    PhysPtr cloned = CloneWithChildren(node, children);
    EXPECT_EQ(cloned->kind(), node->kind());
    EXPECT_EQ(cloned->children().size(), node->children().size());
    if (!children.empty()) {
      EXPECT_EQ(cloned->child(0), replacement1);
    }
  }
}

TEST(PlanTest, SerializeIsDeterministicAndReflectsStructure) {
  PhysPtr scan = MakeScan(1, 1, {1});
  PhysPtr a = std::make_shared<LimitNode>(5, scan);
  PhysPtr b = std::make_shared<LimitNode>(5, MakeScan(1, 1, {1}));
  EXPECT_EQ(SerializePlan(a), SerializePlan(b));
  PhysPtr c = std::make_shared<LimitNode>(6, scan);
  EXPECT_NE(SerializePlan(a), SerializePlan(c));
  // Appending more scans grows the serialization.
  PhysPtr small = std::make_shared<AppendNode>(std::vector<PhysPtr>{scan});
  PhysPtr large = std::make_shared<AppendNode>(
      std::vector<PhysPtr>{scan, MakeScan(1, 2, {1}), MakeScan(1, 3, {1})});
  EXPECT_GT(SerializePlan(large).size(), SerializePlan(small).size());
}

TEST(PlanTest, PlanToStringIndentsChildren) {
  PhysPtr plan = std::make_shared<LimitNode>(
      5, std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{},
                                      MakeScan(1, 1, {1})));
  std::string rendered = PlanToString(plan);
  EXPECT_NE(rendered.find("Limit 5\n  GatherMotion\n    TableScan"),
            std::string::npos);
}

TEST(PlanTest, DescribeMentionsPartitionDetails) {
  auto selector = std::make_shared<PartitionSelectorNode>(
      42, 7, std::vector<ColRefId>{1},
      std::vector<ExprPtr>{MakeComparison(CompareOp::kLt,
                                          MakeColumnRef(1, "pk", TypeId::kInt64),
                                          MakeConst(Datum::Int64(9)))},
      nullptr);
  std::string description = selector->Describe();
  EXPECT_NE(description.find("table=42"), std::string::npos);
  EXPECT_NE(description.find("scanId=7"), std::string::npos);
  EXPECT_NE(description.find("pk#1 < 9"), std::string::npos);
}

}  // namespace
}  // namespace mppdb
