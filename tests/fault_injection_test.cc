// Unit tests for the resilience building blocks: the deterministic
// FaultInjector, the MemoryBudget accountant, and the QueryContext
// cancellation/deadline token. Executor-level integration lives in
// resilience_exec_test.cc and fault_matrix_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/memory_budget.h"
#include "runtime/query_context.h"

namespace mppdb {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, UnarmedPointNeverFires) {
  FaultInjector injector(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.Hit("storage.scan_chunk", 0).ok());
  }
  EXPECT_EQ(injector.hits("storage.scan_chunk"), 0u);
  EXPECT_EQ(injector.fires("storage.scan_chunk"), 0u);
}

TEST(FaultInjectorTest, CertainFaultFiresWithTypedStatus) {
  FaultInjector injector(1);
  injector.Arm("motion.send", FaultSpec{FaultKind::kTransient, 1.0});
  Status st = injector.Hit("motion.send", 3);
  EXPECT_EQ(st.code(), StatusCode::kTransientIO);
  EXPECT_TRUE(st.IsRetriable());

  injector.Arm("motion.send", FaultSpec{FaultKind::kFatal, 1.0});
  st = injector.Hit("motion.send", 3);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_FALSE(st.IsRetriable());
}

TEST(FaultInjectorTest, SegmentFilterRestrictsEligibility) {
  FaultInjector injector(7);
  FaultSpec spec;
  spec.kind = FaultKind::kFatal;
  spec.segment = 2;
  injector.Arm("exec.batch", spec);
  EXPECT_TRUE(injector.Hit("exec.batch", 0).ok());
  EXPECT_TRUE(injector.Hit("exec.batch", 1).ok());
  EXPECT_FALSE(injector.Hit("exec.batch", 2).ok());
  // Hits from other segments are not even counted as eligible.
  EXPECT_EQ(injector.hits("exec.batch"), 1u);
  EXPECT_EQ(injector.fires("exec.batch"), 1u);
}

TEST(FaultInjectorTest, SkipFirstArmsLater) {
  FaultInjector injector(7);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.skip_first = 3;
  injector.Arm("hub.push", spec);
  EXPECT_TRUE(injector.Hit("hub.push", 0).ok());
  EXPECT_TRUE(injector.Hit("hub.push", 0).ok());
  EXPECT_TRUE(injector.Hit("hub.push", 0).ok());
  EXPECT_FALSE(injector.Hit("hub.push", 0).ok());
  EXPECT_EQ(injector.hits("hub.push"), 4u);
  EXPECT_EQ(injector.fires("hub.push"), 1u);
}

TEST(FaultInjectorTest, MaxFiresCapsTheFault) {
  FaultInjector injector(7);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 2;
  injector.Arm("motion.recv", spec);
  EXPECT_FALSE(injector.Hit("motion.recv", 0).ok());
  EXPECT_FALSE(injector.Hit("motion.recv", 0).ok());
  // Exhausted: behaves like a cured fault from here on.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.Hit("motion.recv", 0).ok());
  }
  EXPECT_EQ(injector.fires("motion.recv"), 2u);
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  auto fire_pattern = [](uint64_t seed) {
    FaultInjector injector(seed);
    FaultSpec spec;
    spec.kind = FaultKind::kTransient;
    spec.probability = 0.5;
    injector.Arm("exec.batch", spec);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(!injector.Hit("exec.batch", 0).ok());
    }
    return pattern;
  };
  std::vector<bool> a = fire_pattern(42);
  std::vector<bool> b = fire_pattern(42);
  EXPECT_EQ(a, b);
  // With p=0.5 over 200 draws both outcomes must appear.
  size_t fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 200u);
}

TEST(FaultInjectorTest, ResetDisarmsAndReplays) {
  FaultInjector injector(5);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.probability = 0.3;
  injector.Arm("exec.batch", spec);
  std::vector<bool> first;
  for (int i = 0; i < 50; ++i) first.push_back(!injector.Hit("exec.batch", 0).ok());

  injector.Reset();  // reseeds with the construction seed
  EXPECT_TRUE(injector.Hit("exec.batch", 0).ok());  // disarmed now
  EXPECT_EQ(injector.hits("exec.batch"), 0u);

  injector.Arm("exec.batch", spec);
  std::vector<bool> second;
  for (int i = 0; i < 50; ++i) second.push_back(!injector.Hit("exec.batch", 0).ok());
  EXPECT_EQ(first, second);
}

TEST(FaultInjectorTest, DelaySleepsAndHonorsStopSource) {
  FaultInjector injector(1);
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.delay_ms = 2000;
  injector.Arm("motion.send", spec);

  QueryContext ctx;
  ctx.Cancel();  // already stopped: the delay must cut short immediately
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(injector.Hit("motion.send", 0, &ctx).ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 500);
}

TEST(FaultInjectorTest, PointListIsStable) {
  // The executor's named fault points; matrix tests iterate this list.
  std::vector<std::string> points(FaultInjector::kPoints,
                                  FaultInjector::kPoints + 7);
  EXPECT_EQ(points, (std::vector<std::string>{
                        "storage.scan_chunk", "motion.send", "motion.recv",
                        "hub.push", "joinfilter.publish", "exec.batch",
                        "alloc.budget"}));
}

// ---------------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------------

TEST(MemoryBudgetTest, UnlimitedNeverCounts) {
  MemoryBudget budget;
  EXPECT_FALSE(budget.limited());
  EXPECT_TRUE(budget.TryCharge(~size_t{0}));  // even "infinite" charges pass
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 0u);
}

TEST(MemoryBudgetTest, ChargeReleaseAndPeak) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(600));
  EXPECT_TRUE(budget.TryCharge(300));
  EXPECT_EQ(budget.used(), 900u);
  EXPECT_EQ(budget.peak(), 900u);
  budget.Release(300);
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_EQ(budget.peak(), 900u);  // peak is monotone
}

TEST(MemoryBudgetTest, RefusedChargeLeavesUsageUnchanged) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(800));
  EXPECT_FALSE(budget.TryCharge(300));
  EXPECT_EQ(budget.used(), 800u);
  EXPECT_TRUE(budget.TryCharge(200));  // exact fit succeeds
  EXPECT_FALSE(budget.TryCharge(1));
}

TEST(MemoryBudgetTest, ResetUsageKeepsLimit) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryCharge(100));
  budget.ResetUsage();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 0u);
  EXPECT_EQ(budget.limit(), 100u);
  EXPECT_TRUE(budget.TryCharge(100));
}

TEST(MemoryBudgetTest, ConcurrentChargesNeverExceedLimit) {
  MemoryBudget budget(10000);
  std::atomic<size_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 1000; ++i) {
        if (budget.TryCharge(7)) granted.fetch_add(7);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(budget.used(), granted.load());
  EXPECT_LE(budget.used(), 10000u);
  EXPECT_LE(budget.peak(), 10000u);
  EXPECT_GE(budget.peak(), budget.used());
}

TEST(MemoryBudgetTest, ApproxRowsBytesModel) {
  EXPECT_EQ(ApproxRowsBytes(0, 5), 0u);
  EXPECT_EQ(ApproxRowsBytes(1, 0), 32u);
  EXPECT_EQ(ApproxRowsBytes(10, 2), 10u * (2 * 24 + 32));
}

// ---------------------------------------------------------------------------
// QueryContext
// ---------------------------------------------------------------------------

TEST(QueryContextTest, FreshContextIsAlive) {
  QueryContext ctx;
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_TRUE(ctx.CheckAlive().ok());
  EXPECT_FALSE(ctx.ShouldStop());
}

TEST(QueryContextTest, CancelIsStickyAndTyped) {
  QueryContext ctx;
  ctx.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_EQ(ctx.CheckAlive().code(), StatusCode::kCancelled);
  EXPECT_TRUE(ctx.ShouldStop());
  ctx.Cancel();  // idempotent
  EXPECT_EQ(ctx.CheckAlive().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, DeadlineExpiryIsTyped) {
  QueryContext ctx;
  ctx.SetDeadline(std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1));
  EXPECT_EQ(ctx.CheckAlive().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(ctx.ShouldStop());

  QueryContext future;
  future.SetTimeout(std::chrono::hours(1));
  EXPECT_TRUE(future.CheckAlive().ok());
}

TEST(QueryContextTest, CancelCallbacksRunOnce) {
  QueryContext ctx;
  std::atomic<int> calls{0};
  ctx.AddCancelCallback([&]() { calls.fetch_add(1); });
  ctx.Cancel();
  ctx.Cancel();
  EXPECT_EQ(calls.load(), 1);
}

TEST(QueryContextTest, CallbackAddedAfterCancelFiresImmediately) {
  QueryContext ctx;
  ctx.Cancel();
  std::atomic<int> calls{0};
  ctx.AddCancelCallback([&]() { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(QueryContextTest, RemovedCallbackDoesNotFire) {
  QueryContext ctx;
  std::atomic<int> calls{0};
  uint64_t handle = ctx.AddCancelCallback([&]() { calls.fetch_add(1); });
  ctx.RemoveCancelCallback(handle);
  ctx.Cancel();
  EXPECT_EQ(calls.load(), 0);
}

TEST(QueryContextTest, ResetClearsStateForReuse) {
  QueryContext ctx;
  ctx.SetTimeout(std::chrono::milliseconds(0));
  ctx.budget().set_limit(100);
  ASSERT_TRUE(ctx.budget().TryCharge(100));
  ctx.Cancel();
  ASSERT_FALSE(ctx.CheckAlive().ok());

  ctx.Reset();
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_TRUE(ctx.CheckAlive().ok());
  EXPECT_EQ(ctx.budget().used(), 0u);
  EXPECT_EQ(ctx.budget().limit(), 100u);  // the limit survives Reset
}

TEST(QueryContextTest, CancelFromAnotherThreadIsVisible) {
  QueryContext ctx;
  std::thread canceller([&]() { ctx.Cancel(); });
  canceller.join();
  EXPECT_EQ(ctx.CheckAlive().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace mppdb
