// Runtime join-filter correctness suite.
//
// The hard invariant under test: join filters never change results or any
// pre-existing ExecStats counter — across {serial, parallel} x {row,
// vectorized} x {data skipping on, off} — and every observable difference is
// confined to the joinfilter_* counter family. On top of that, the suite
// pins down the semantic corners: an empty build side rejects every probe
// row, NULL join keys never pass a filter, filtering below a Redistribute
// Motion reports exchange savings while rows_moved stays logical, probes
// reach multi-level partitioned scans, and the cost gate (and its off
// switch) keeps filters off joins that cannot pay for them.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "runtime/join_filter.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::SameRows;

void ZeroJoinFilterCounters(ExecStats* stats) {
  stats->joinfilter_built = 0;
  stats->joinfilter_probed = 0;
  stats->joinfilter_rows_rejected = 0;
  stats->joinfilter_chunks_skipped = 0;
  stats->joinfilter_motion_rows_saved = 0;
}

// --- BlockedBloomFilter / JoinFilterSummary unit coverage ----------------

uint64_t TestHash(uint64_t i) {
  // splitmix64-style scramble; the filter expects well-mixed hashes.
  uint64_t z = i + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(BlockedBloomFilterTest, NoFalseNegativesAndLowFalsePositives) {
  BlockedBloomFilter filter(1000);
  for (uint64_t i = 0; i < 1000; ++i) filter.Insert(TestHash(i));
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(filter.MayContain(TestHash(i))) << i;
  }
  size_t false_positives = 0;
  for (uint64_t i = 1000; i < 21000; ++i) {
    if (filter.MayContain(TestHash(i))) ++false_positives;
  }
  // ≥32 bits/key split-block filters sit far below 2% in practice.
  EXPECT_LT(false_positives, 400u) << "false positive rate above 2%";
}

TEST(BlockedBloomFilterTest, InsertionOrderDoesNotMatter) {
  BlockedBloomFilter forward(256);
  BlockedBloomFilter backward(256);
  for (uint64_t i = 0; i < 256; ++i) forward.Insert(TestHash(i));
  for (uint64_t i = 256; i-- > 0;) backward.Insert(TestHash(i));
  for (uint64_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(forward.MayContain(TestHash(i)), backward.MayContain(TestHash(i)))
        << i;
  }
}

TEST(JoinFilterSummaryTest, EmptyBuildRejectsEverything) {
  JoinFilterSummaryBuilder builder(1, 0);
  JoinFilterSummary summary = builder.Finish();
  EXPECT_FALSE(summary.RowMayMatch({Datum::Int64(7)}, {0}));
  ChunkSynopsis chunk(1);
  chunk.AddRow({Datum::Int64(7)});
  EXPECT_TRUE(summary.ChunkProvablyDisjoint(chunk, {0}));
}

TEST(JoinFilterSummaryTest, NullKeysNeverFoldOrMatch) {
  JoinFilterSummaryBuilder builder(1, 4);
  builder.Add({Datum::Int64(10)}, {0});
  builder.Add({Datum::Null()}, {0});  // not folded: NULL never joins
  builder.Add({Datum::Int64(20)}, {0});
  JoinFilterSummary summary = builder.Finish();
  EXPECT_EQ(summary.build_rows, 2u);
  EXPECT_TRUE(summary.RowMayMatch({Datum::Int64(10)}, {0}));
  EXPECT_FALSE(summary.RowMayMatch({Datum::Null()}, {0}));
  EXPECT_FALSE(summary.RowMayMatch({Datum::Int64(30)}, {0}));  // out of range
}

TEST(JoinFilterSummaryTest, ChunkDisjointnessUsesBuildRange) {
  JoinFilterSummaryBuilder builder(1, 4);
  builder.Add({Datum::Int64(100)}, {0});
  builder.Add({Datum::Int64(150)}, {0});
  JoinFilterSummary summary = builder.Finish();
  ChunkSynopsis below(1);
  below.AddRow({Datum::Int64(1)});
  below.AddRow({Datum::Int64(99)});
  EXPECT_TRUE(summary.ChunkProvablyDisjoint(below, {0}));
  ChunkSynopsis overlapping(1);
  overlapping.AddRow({Datum::Int64(99)});
  overlapping.AddRow({Datum::Int64(101)});
  EXPECT_FALSE(summary.ChunkProvablyDisjoint(overlapping, {0}));
}

// --- End-to-end suite -----------------------------------------------------

struct ModeResult {
  std::vector<Row> rows;
  ExecStats stats;
};

// Runs `sql` with filters on and off in one executor mode and asserts the
// transparency contract; returns the filters-on outcome.
ModeResult CheckTransparent(Database* db, const std::string& sql) {
  QueryOptions on;
  auto filtered = db->Run(sql, on);
  EXPECT_TRUE(filtered.ok()) << sql << "\n" << filtered.status().ToString();
  QueryOptions off;
  off.enable_join_filters = false;
  auto plain = db->Run(sql, off);
  EXPECT_TRUE(plain.ok()) << sql << "\n" << plain.status().ToString();
  if (!filtered.ok() || !plain.ok()) return {};
  EXPECT_TRUE(filtered->rows == plain->rows) << sql;
  ExecStats masked = filtered->stats;
  ZeroJoinFilterCounters(&masked);
  EXPECT_TRUE(masked == plain->stats)
      << sql << ": join filters changed a pre-existing counter";
  return {filtered->rows, filtered->stats};
}

std::vector<Executor::Options> ExecutorModeMatrix(bool with_noskip) {
  std::vector<Executor::Options> modes = {
      {},
      {.parallel = true},
      {.vectorized = true},
      {.parallel = true, .vectorized = true},
  };
  if (with_noskip) {
    modes.push_back({.data_skipping = false});
    modes.push_back({.vectorized = true, .data_skipping = false});
  }
  return modes;
}

TEST(JoinFilterEndToEndTest, EmptyBuildSideRejectsAllProbeRows) {
  for (const Executor::Options& mode : ExecutorModeMatrix(/*with_noskip=*/true)) {
    Database db(4, mode);
    ASSERT_TRUE(db.CreateTable("fact", Schema({{"sk", TypeId::kInt64},
                                               {"qty", TypeId::kInt64}}),
                               TableDistribution::kHashed, {0})
                    .ok());
    ASSERT_TRUE(db.CreateTable("dim", Schema({{"k", TypeId::kInt64},
                                              {"grp", TypeId::kInt64}}),
                               TableDistribution::kHashed, {0})
                    .ok());
    std::vector<Row> fact_rows;
    for (int64_t i = 0; i < 3000; ++i) {
      fact_rows.push_back({Datum::Int64(i % 500), Datum::Int64(i % 7)});
    }
    ASSERT_TRUE(db.Load("fact", fact_rows).ok());
    // dim stays empty: every probe row is provably joinless.
    ModeResult result =
        CheckTransparent(&db, "SELECT * FROM fact f JOIN dim d ON f.sk = d.k");
    EXPECT_TRUE(result.rows.empty());
    EXPECT_GE(result.stats.joinfilter_built, 1u);
    // The empty summary kills work before the join: either whole chunks are
    // skipped (skipping on) or every row is rejected at the probe.
    EXPECT_GT(result.stats.joinfilter_chunks_skipped +
                  result.stats.joinfilter_rows_rejected,
              0u);
  }
}

TEST(JoinFilterEndToEndTest, NullJoinKeysNeverPassTheFilter) {
  for (const Executor::Options& mode : ExecutorModeMatrix(/*with_noskip=*/true)) {
    Database db(3, mode);
    ASSERT_TRUE(db.CreateTable("fact", Schema({{"sk", TypeId::kInt64},
                                               {"qty", TypeId::kInt64}}),
                               TableDistribution::kHashed, {0})
                    .ok());
    ASSERT_TRUE(db.CreateTable("dim", Schema({{"k", TypeId::kInt64},
                                              {"grp", TypeId::kInt64}}),
                               TableDistribution::kHashed, {0})
                    .ok());
    std::vector<Row> fact_rows;
    size_t null_keys = 0;
    for (int64_t i = 0; i < 900; ++i) {
      if (i % 4 == 0) {
        fact_rows.push_back({Datum::Null(), Datum::Int64(i)});
        ++null_keys;
      } else {
        fact_rows.push_back({Datum::Int64(i % 50), Datum::Int64(i)});
      }
    }
    std::vector<Row> dim_rows;
    for (int64_t k = 0; k < 50; ++k) {
      dim_rows.push_back({Datum::Int64(k), Datum::Int64(k % 5)});
    }
    dim_rows.push_back({Datum::Null(), Datum::Int64(-1)});  // never folded
    ASSERT_TRUE(db.Load("fact", fact_rows).ok());
    ASSERT_TRUE(db.Load("dim", dim_rows).ok());
    ModeResult result = CheckTransparent(
        &db, "SELECT count(*) FROM fact f JOIN dim d ON f.sk = d.k");
    ASSERT_EQ(result.rows.size(), 1u);
    // Every non-null fact key 0..49 matches one dim key; NULLs match nothing.
    EXPECT_EQ(result.rows[0][0],
              Datum::Int64(static_cast<int64_t>(900 - null_keys)));
    // Every NULL-key probe row is rejected by the filter before the join.
    EXPECT_GE(result.stats.joinfilter_rows_rejected, null_keys);
  }
}

TEST(JoinFilterEndToEndTest, FilterBelowRedistributeMotionSavesExchange) {
  // Neither side is distributed on the join key and the sizes sit in the
  // window where redistributing both sides beats broadcasting the build
  // side, so the probe scan ends up below a Redistribute Motion and the
  // build side below another — the global-filter configuration.
  for (const Executor::Options& mode : ExecutorModeMatrix(/*with_noskip=*/true)) {
    Database db(4, mode);
    ASSERT_TRUE(db.CreateTable("fact", Schema({{"sk", TypeId::kInt64},
                                               {"val", TypeId::kInt64}}),
                               TableDistribution::kHashed, {1})
                    .ok());
    ASSERT_TRUE(db.CreateTable("dim", Schema({{"k", TypeId::kInt64},
                                              {"tag", TypeId::kInt64}}),
                               TableDistribution::kHashed, {1})
                    .ok());
    Random rng(99);
    std::vector<Row> fact_rows;
    for (int64_t i = 0; i < 650; ++i) {
      // ~94% of fact keys miss the dim key domain [0, 300).
      fact_rows.push_back(
          {Datum::Int64(rng.UniformRange(0, 4999)), Datum::Int64(i)});
    }
    std::vector<Row> dim_rows;
    for (int64_t k = 0; k < 300; ++k) {
      dim_rows.push_back({Datum::Int64(k), Datum::Int64(k * 3)});
    }
    ASSERT_TRUE(db.Load("fact", fact_rows).ok());
    ASSERT_TRUE(db.Load("dim", dim_rows).ok());
    ModeResult result = CheckTransparent(
        &db, "SELECT count(*) FROM fact f JOIN dim d ON f.sk = d.k");
    // The merged (global) summary is published exactly once per query.
    EXPECT_EQ(result.stats.joinfilter_built, 1u) << "expected one global filter";
    // Rejected probe rows were counted into rows_moved (kept logical) but
    // never exchanged; the savings are visible and substantial.
    EXPECT_GT(result.stats.joinfilter_motion_rows_saved, 300u);
  }
}

TEST(JoinFilterEndToEndTest, MultiLevelPartitionedProbeScans) {
  for (const Executor::Options& mode : ExecutorModeMatrix(/*with_noskip=*/true)) {
    Database db(3, mode);
    // fact partitioned on sk (4 ranges of 100) then qty (3 ranges of 4).
    ASSERT_TRUE(db.CreatePartitionedTable(
                      "fact",
                      Schema({{"sk", TypeId::kInt64},
                              {"qty", TypeId::kInt64},
                              {"val", TypeId::kInt64}}),
                      TableDistribution::kHashed, {2},
                      {{0, PartitionMethod::kRange}, {1, PartitionMethod::kRange}},
                      {partition_bounds::IntRanges(0, 100, 4),
                       partition_bounds::IntRanges(0, 4, 3)})
                    .ok());
    ASSERT_TRUE(db.CreateTable("dim", Schema({{"k", TypeId::kInt64},
                                              {"grp", TypeId::kInt64}}),
                               TableDistribution::kHashed, {0})
                    .ok());
    Random rng(7);
    std::vector<Row> fact_rows;
    for (int64_t i = 0; i < 1200; ++i) {
      fact_rows.push_back({Datum::Int64(rng.UniformRange(0, 399)),
                           Datum::Int64(rng.UniformRange(0, 11)),
                           Datum::Int64(i)});
    }
    std::vector<Row> dim_rows;
    for (int64_t k = 0; k < 400; k += 16) {
      dim_rows.push_back({Datum::Int64(k), Datum::Int64(k % 3)});
    }
    ASSERT_TRUE(db.Load("fact", fact_rows).ok());
    ASSERT_TRUE(db.Load("dim", dim_rows).ok());
    ModeResult result = CheckTransparent(
        &db,
        "SELECT count(*), sum(f.val) FROM fact f JOIN dim d ON f.sk = d.k "
        "WHERE f.qty < 9");
    // The probe consumer sits on the partitioned side's leaf scans.
    EXPECT_GT(result.stats.joinfilter_probed +
                  result.stats.joinfilter_chunks_skipped,
              0u)
        << "filter never reached the partitioned probe side";
    EXPECT_GT(result.stats.joinfilter_rows_rejected +
                  result.stats.joinfilter_chunks_skipped,
              0u);
  }
}

TEST(JoinFilterEndToEndTest, CostGateAndOffSwitch) {
  Database db(3);
  ASSERT_TRUE(db.CreateTable("big", Schema({{"a", TypeId::kInt64},
                                            {"pad", TypeId::kInt64}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  ASSERT_TRUE(db.CreateTable("near_big", Schema({{"b", TypeId::kInt64},
                                                 {"pad", TypeId::kInt64}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  std::vector<Row> big_rows;
  for (int64_t i = 0; i < 500; ++i) {
    big_rows.push_back({Datum::Int64(i), Datum::Int64(i)});
  }
  std::vector<Row> near_rows;
  for (int64_t i = 0; i < 400; ++i) {
    near_rows.push_back({Datum::Int64(i), Datum::Int64(i)});
  }
  ASSERT_TRUE(db.Load("big", big_rows).ok());
  ASSERT_TRUE(db.Load("near_big", near_rows).ok());

  // Probe (500) is under twice the build (400): the gate keeps filters off.
  auto gated =
      db.Run("SELECT count(*) FROM big JOIN near_big ON big.a = near_big.b");
  ASSERT_TRUE(gated.ok());
  EXPECT_EQ(gated->stats.joinfilter_built, 0u);
  EXPECT_EQ(gated->stats.joinfilter_probed, 0u);

  // A clearly profitable join places a filter — and the off switch removes
  // it again without touching anything else.
  ASSERT_TRUE(db.CreateTable("tiny", Schema({{"t", TypeId::kInt64}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  ASSERT_TRUE(db.Load("tiny", {{Datum::Int64(3)}, {Datum::Int64(4)}}).ok());
  auto filtered = db.Run("SELECT count(*) FROM big JOIN tiny ON big.a = tiny.t");
  ASSERT_TRUE(filtered.ok());
  EXPECT_GE(filtered->stats.joinfilter_built, 1u);
  QueryOptions off;
  off.enable_join_filters = false;
  auto plain =
      db.Run("SELECT count(*) FROM big JOIN tiny ON big.a = tiny.t", off);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->stats.joinfilter_built, 0u);
  EXPECT_EQ(plain->stats.joinfilter_probed, 0u);
  EXPECT_EQ(plain->stats.joinfilter_rows_rejected, 0u);
  EXPECT_TRUE(filtered->rows == plain->rows);
}

TEST(JoinFilterEndToEndTest, SemiJoinProbesAreFiltered) {
  for (const Executor::Options& mode : ExecutorModeMatrix(/*with_noskip=*/false)) {
    Database db(3, mode);
    ASSERT_TRUE(db.CreateTable("fact", Schema({{"sk", TypeId::kInt64},
                                               {"qty", TypeId::kInt64}}),
                               TableDistribution::kHashed, {0})
                    .ok());
    ASSERT_TRUE(db.CreateTable("dim", Schema({{"k", TypeId::kInt64},
                                              {"grp", TypeId::kInt64}}),
                               TableDistribution::kHashed, {0})
                    .ok());
    std::vector<Row> fact_rows;
    for (int64_t i = 0; i < 800; ++i) {
      fact_rows.push_back({Datum::Int64(i), Datum::Int64(i % 9)});
    }
    std::vector<Row> dim_rows;
    for (int64_t k = 0; k < 20; ++k) {
      dim_rows.push_back({Datum::Int64(k * 2), Datum::Int64(k)});
    }
    ASSERT_TRUE(db.Load("fact", fact_rows).ok());
    ASSERT_TRUE(db.Load("dim", dim_rows).ok());
    ModeResult result = CheckTransparent(
        &db,
        "SELECT count(*) FROM fact WHERE sk IN (SELECT k FROM dim)");
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.rows[0][0], Datum::Int64(20));
  }
}

}  // namespace
}  // namespace mppdb
