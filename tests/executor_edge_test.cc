// Edge-case and failure-injection tests for the executor: motion routing
// properties, replicated tables, residual join predicates, error paths, and
// the per-tuple equality fast path of the PartitionSelector.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/plan.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::SameRows;
using testutil::TestDb;

ExprPtr Lit(int64_t v) { return MakeConst(Datum::Int64(v)); }
ExprPtr Ref(ColRefId id) { return MakeColumnRef(id, "c" + std::to_string(id), TypeId::kInt64); }

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  ExecutorEdgeTest() {
    t_ = db_.CreatePlainTable("t", Schema({{"a", TypeId::kInt64},
                                           {"b", TypeId::kInt64}}));
    std::vector<Row> rows;
    for (int i = 0; i < 50; ++i) {
      rows.push_back({Datum::Int64(i), Datum::Int64(i % 7)});
    }
    db_.Insert(t_, rows);
  }

  PhysPtr Scan(std::vector<ColRefId> ids = {1, 2}) {
    return std::make_shared<TableScanNode>(t_->oid, t_->oid, std::move(ids));
  }

  TestDb db_{4};
  const TableDescriptor* t_ = nullptr;
};

TEST_F(ExecutorEdgeTest, BroadcastDeliversFullCopyToEverySegment) {
  // Broadcast then count per segment via a second motion: every segment must
  // hold all 50 rows, so gathering the broadcast yields 50 * num_segments.
  auto bcast = std::make_shared<MotionNode>(MotionKind::kBroadcast,
                                            std::vector<ColRefId>{}, Scan());
  auto result = db_.executor.Execute(bcast);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 50u * 4u);
}

TEST_F(ExecutorEdgeTest, GatherConcentratesOnOneSegment) {
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, Scan());
  auto result = db_.executor.Execute(gather);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 50u);
}

TEST_F(ExecutorEdgeTest, RedistributeColocatesEqualKeys) {
  // After redistribution on b, joining two redistributed copies of t on b
  // produces the full self-join: co-location must hold.
  auto left = std::make_shared<MotionNode>(MotionKind::kRedistribute,
                                           std::vector<ColRefId>{2}, Scan({1, 2}));
  auto right = std::make_shared<MotionNode>(MotionKind::kRedistribute,
                                            std::vector<ColRefId>{4}, Scan({3, 4}));
  auto join = std::make_shared<HashJoinNode>(JoinType::kInner,
                                             std::vector<ColRefId>{2},
                                             std::vector<ColRefId>{4}, nullptr, left,
                                             right);
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, join);
  auto result = db_.executor.Execute(gather);
  ASSERT_TRUE(result.ok());
  // 50 rows, 7 groups of size 8 or 7: sum over groups of n^2.
  size_t expected = 0;
  std::map<int64_t, size_t> counts;
  for (int i = 0; i < 50; ++i) counts[i % 7]++;
  for (auto& [k, n] : counts) expected += n * n;
  EXPECT_EQ(result->size(), expected);
}

TEST_F(ExecutorEdgeTest, HashJoinResidualFiltersMatches) {
  // Self join on b with residual a1 < a2.
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{2}, std::vector<ColRefId>{4},
      MakeComparison(CompareOp::kLt, Ref(1), Ref(3)),
      std::make_shared<MotionNode>(MotionKind::kBroadcast, std::vector<ColRefId>{},
                                   Scan({1, 2})),
      Scan({3, 4}));
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, join);
  auto result = db_.executor.Execute(gather);
  ASSERT_TRUE(result.ok());
  for (const Row& row : *result) {
    EXPECT_LT(row[0].int64_value(), row[2].int64_value());
    EXPECT_EQ(row[1].int64_value(), row[3].int64_value());
  }
}

TEST_F(ExecutorEdgeTest, SemiJoinWithResidual) {
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kSemi, std::vector<ColRefId>{2}, std::vector<ColRefId>{4},
      MakeComparison(CompareOp::kLt, Ref(1), Lit(3)),
      std::make_shared<MotionNode>(MotionKind::kBroadcast, std::vector<ColRefId>{},
                                   Scan({1, 2})),
      Scan({3, 4}));
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, join);
  auto result = db_.executor.Execute(gather);
  ASSERT_TRUE(result.ok());
  // Probe rows whose b matches a build row with a < 3: build rows with a<3
  // have b in {0,1,2}, so probe rows with b in {0,1,2} survive, once each.
  size_t expected = 0;
  for (int i = 0; i < 50; ++i) {
    if (i % 7 <= 2) ++expected;
  }
  EXPECT_EQ(result->size(), expected);
}

TEST_F(ExecutorEdgeTest, ReplicatedTableScansOnceAtRoot) {
  Schema schema({{"x", TypeId::kInt64}});
  auto oid = db_.catalog.CreateTable("repl", schema, TableDistribution::kReplicated, {});
  ASSERT_TRUE(oid.ok());
  const TableDescriptor* repl = db_.catalog.FindTable(*oid);
  ASSERT_TRUE(db_.storage.CreateStorage(repl).ok());
  ASSERT_TRUE(db_.storage.GetStore(repl->oid)
                  ->InsertBatch({{Datum::Int64(1)}, {Datum::Int64(2)}})
                  .ok());
  auto scan = std::make_shared<TableScanNode>(repl->oid, repl->oid,
                                              std::vector<ColRefId>{1});
  auto result = db_.executor.Execute(scan);
  ASSERT_TRUE(result.ok());
  // No duplication despite 3 copies in storage (one per segment).
  EXPECT_EQ(result->size(), 2u);
}

TEST_F(ExecutorEdgeTest, ScanOfUnknownTableFails) {
  auto scan = std::make_shared<TableScanNode>(99999, 99999, std::vector<ColRefId>{1});
  EXPECT_EQ(db_.executor.Execute(scan).status().code(), StatusCode::kExecutionError);
}

TEST_F(ExecutorEdgeTest, SelectorWithForeignOidFails) {
  const TableDescriptor* orders = db_.CreateOrdersTable(6);
  (void)orders;
  // A selector that pushes an OID that is not a leaf of the scanned table.
  const TableDescriptor* other = db_.CreateOrdersTable(6, "orders_b");
  auto selector = std::make_shared<PartitionSelectorNode>(
      other->oid, 3, std::vector<ColRefId>{1}, std::vector<ExprPtr>{nullptr},
      nullptr);
  // DynamicScan points at `orders`, selector pushes `orders_b` leaves.
  auto scan = std::make_shared<DynamicScanNode>(
      db_.catalog.FindTable("orders")->oid, 3, std::vector<ColRefId>{1, 2, 3});
  auto plan = std::make_shared<SequenceNode>(std::vector<PhysPtr>{selector, scan});
  auto result = db_.executor.Execute(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
}

TEST_F(ExecutorEdgeTest, CheckedPartScanWithoutChannelFails) {
  const TableDescriptor* orders = db_.CreateOrdersTable(6);
  Oid leaf = orders->partition_scheme->AllLeafOids()[0];
  auto scan = std::make_shared<CheckedPartScanNode>(orders->oid, leaf, 9,
                                                    std::vector<ColRefId>{1, 2, 3});
  EXPECT_FALSE(db_.executor.Execute(scan).ok());
}

TEST_F(ExecutorEdgeTest, EqualityFastPathMatchesGenericSelection) {
  // Same join-DPE computation through (a) the equality fast path
  // (pred: key = col) and (b) the generic path (key <= col AND key >= col,
  // semantically identical but not recognized as equality).
  const TableDescriptor* orders = db_.CreateOrdersTable(24);
  std::vector<Row> rows;
  for (int month = 1; month <= 12; ++month) {
    rows.push_back({Datum::Date(date::FromYMD(2013, month, 10)),
                    Datum::Double(month), Datum::String("x")});
  }
  db_.Insert(orders, rows);
  const TableDescriptor* dim = db_.CreatePlainTable(
      "dim_dates", Schema({{"d", TypeId::kDate}}), {0});
  db_.Insert(dim, {{testutil::D("2013-03-10")}, {testutil::D("2013-08-10")}});

  auto build_plan = [&](bool fast) {
    auto dim_scan = std::make_shared<TableScanNode>(dim->oid, dim->oid,
                                                    std::vector<ColRefId>{11});
    auto bcast = std::make_shared<MotionNode>(MotionKind::kBroadcast,
                                              std::vector<ColRefId>{}, dim_scan);
    ExprPtr key = MakeColumnRef(1, "date", TypeId::kDate);
    ExprPtr other = MakeColumnRef(11, "d", TypeId::kDate);
    ExprPtr pred =
        fast ? MakeComparison(CompareOp::kEq, key, other)
             : Conj({MakeComparison(CompareOp::kLe, key, other),
                     MakeComparison(CompareOp::kGe, key, other)});
    auto selector = std::make_shared<PartitionSelectorNode>(
        orders->oid, 5, std::vector<ColRefId>{1}, std::vector<ExprPtr>{pred}, bcast);
    auto scan = std::make_shared<DynamicScanNode>(orders->oid, 5,
                                                  std::vector<ColRefId>{1, 2, 3});
    auto join = std::make_shared<HashJoinNode>(
        JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{1},
        nullptr, selector, scan);
    return std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{},
                                        join);
  };

  auto fast = db_.executor.Execute(build_plan(true));
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  size_t fast_parts = db_.executor.stats().PartitionsScanned(orders->oid);
  auto generic = db_.executor.Execute(build_plan(false));
  ASSERT_TRUE(generic.ok());
  size_t generic_parts = db_.executor.stats().PartitionsScanned(orders->oid);
  EXPECT_TRUE(SameRows(*fast, *generic));
  EXPECT_EQ(fast_parts, 2u);
  EXPECT_EQ(generic_parts, 2u);
}

TEST_F(ExecutorEdgeTest, StatsCountTuplesAndMovedRows) {
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, Scan());
  ASSERT_TRUE(db_.executor.Execute(gather).ok());
  EXPECT_EQ(db_.executor.stats().tuples_scanned, 50u);
  EXPECT_EQ(db_.executor.stats().rows_moved, 50u);
  // Stats reset between executions.
  ASSERT_TRUE(db_.executor.Execute(Scan()).ok());
  EXPECT_EQ(db_.executor.stats().rows_moved, 0u);
}

}  // namespace
}  // namespace mppdb
