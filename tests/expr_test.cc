#include <gtest/gtest.h>

#include "expr/eval.h"
#include "expr/expr.h"

namespace mppdb {
namespace {

ExprPtr Col(ColRefId id, const char* name = "c", TypeId type = TypeId::kInt64) {
  return MakeColumnRef(id, name, type);
}

ExprPtr Lit(int64_t v) { return MakeConst(Datum::Int64(v)); }

TEST(ExprTest, ToStringRendering) {
  ExprPtr e = MakeComparison(CompareOp::kGe, Col(1, "month"), Lit(10));
  EXPECT_EQ(e->ToString(), "(month#1 >= 10)");
  ExprPtr conj = Conj({e, MakeComparison(CompareOp::kLe, Col(1, "month"), Lit(12))});
  EXPECT_EQ(conj->ToString(), "((month#1 >= 10) AND (month#1 <= 12))");
}

TEST(ExprTest, ConjDropsNullsAndFlattensSingleton) {
  ExprPtr e = MakeComparison(CompareOp::kEq, Col(1), Lit(5));
  EXPECT_EQ(Conj({nullptr, e, nullptr}), e);
  EXPECT_EQ(Conj({nullptr, nullptr}), nullptr);
  ExprPtr two = Conj({e, e});
  ASSERT_NE(two, nullptr);
  EXPECT_EQ(two->kind(), ExprKind::kAnd);
}

TEST(ExprTest, StructuralEquality) {
  ExprPtr a = MakeComparison(CompareOp::kLt, Col(3), Lit(7));
  ExprPtr b = MakeComparison(CompareOp::kLt, Col(3), Lit(7));
  ExprPtr c = MakeComparison(CompareOp::kLe, Col(3), Lit(7));
  ExprPtr d = MakeComparison(CompareOp::kLt, Col(4), Lit(7));
  EXPECT_TRUE(Expr::Equals(a, b));
  EXPECT_FALSE(Expr::Equals(a, c));
  EXPECT_FALSE(Expr::Equals(a, d));
}

TEST(ExprTest, CollectAndReferences) {
  ExprPtr e = Conj({MakeComparison(CompareOp::kEq, Col(1), Col(2)),
                    MakeComparison(CompareOp::kGt, Col(3), Lit(0))});
  std::unordered_set<ColRefId> refs;
  CollectColumnRefs(e, &refs);
  EXPECT_EQ(refs.size(), 3u);
  EXPECT_TRUE(ReferencesColumn(e, 2));
  EXPECT_FALSE(ReferencesColumn(e, 9));
  EXPECT_FALSE(IsConstantExpr(e));
  EXPECT_TRUE(IsConstantExpr(Lit(3)));
}

TEST(ExprTest, SplitConjunctsFlattensNestedAnds) {
  ExprPtr a = MakeComparison(CompareOp::kEq, Col(1), Lit(1));
  ExprPtr b = MakeComparison(CompareOp::kEq, Col(2), Lit(2));
  ExprPtr c = MakeComparison(CompareOp::kEq, Col(3), Lit(3));
  ExprPtr nested = Conj({Conj({a, b}), c});
  std::vector<ExprPtr> conjuncts = SplitConjuncts(nested);
  ASSERT_EQ(conjuncts.size(), 3u);
}

TEST(ExprTest, SubstituteColumns) {
  ExprPtr e = MakeComparison(CompareOp::kEq, Col(1, "pk"), Col(2, "a"));
  ExprPtr bound = SubstituteColumns(e, {{2, Datum::Int64(42)}});
  EXPECT_EQ(bound->ToString(), "(pk#1 = 42)");
  // Key column untouched.
  EXPECT_TRUE(ReferencesColumn(bound, 1));
  EXPECT_FALSE(ReferencesColumn(bound, 2));
  // No match: node shared.
  EXPECT_EQ(SubstituteColumns(e, {{9, Datum::Int64(0)}}), e);
}

TEST(ExprTest, SubstituteParams) {
  ExprPtr e = MakeComparison(CompareOp::kLt, Col(1), MakeParam(0, TypeId::kInt64));
  ExprPtr bound = SubstituteParams(e, {Datum::Int64(99)});
  EXPECT_EQ(bound->ToString(), "(c#1 < 99)");
}

class EvalTest : public ::testing::Test {
 protected:
  ColumnLayout layout_{std::vector<ColRefId>{1, 2, 3}};
  Row row_{Datum::Int64(10), Datum::String("CA"), Datum::Null()};
};

TEST_F(EvalTest, ColumnLookup) {
  auto r = EvalExpr(Col(2, "state", TypeId::kString), layout_, row_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->string_value(), "CA");
}

TEST_F(EvalTest, MissingColumnIsError) {
  auto r = EvalExpr(Col(9), layout_, row_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST_F(EvalTest, ComparisonWithNullIsNull) {
  auto r = EvalExpr(MakeComparison(CompareOp::kEq, Col(3), Lit(1)), layout_, row_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null());
  // WHERE semantics: null predicate filters the row out.
  auto p = EvalPredicate(MakeComparison(CompareOp::kEq, Col(3), Lit(1)), layout_, row_);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(*p);
}

TEST_F(EvalTest, ThreeValuedAnd) {
  ExprPtr null_cmp = MakeComparison(CompareOp::kEq, Col(3), Lit(1));
  ExprPtr true_cmp = MakeComparison(CompareOp::kEq, Col(1), Lit(10));
  ExprPtr false_cmp = MakeComparison(CompareOp::kEq, Col(1), Lit(11));
  // false AND null = false
  auto r1 = EvalExpr(Conj({false_cmp, null_cmp}), layout_, row_);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->is_null());
  EXPECT_FALSE(r1->bool_value());
  // true AND null = null
  auto r2 = EvalExpr(Conj({true_cmp, null_cmp}), layout_, row_);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->is_null());
}

TEST_F(EvalTest, ThreeValuedOr) {
  ExprPtr null_cmp = MakeComparison(CompareOp::kEq, Col(3), Lit(1));
  ExprPtr true_cmp = MakeComparison(CompareOp::kEq, Col(1), Lit(10));
  ExprPtr false_cmp = MakeComparison(CompareOp::kEq, Col(1), Lit(11));
  auto r1 = EvalExpr(MakeOr({true_cmp, null_cmp}), layout_, row_);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->bool_value());
  auto r2 = EvalExpr(MakeOr({false_cmp, null_cmp}), layout_, row_);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->is_null());
}

TEST_F(EvalTest, Arithmetic) {
  auto r = EvalExpr(MakeArith(ArithOp::kAdd, Col(1), Lit(5)), layout_, row_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->int64_value(), 15);
  auto m = EvalExpr(MakeArith(ArithOp::kMod, Col(1), Lit(3)), layout_, row_);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->int64_value(), 1);
  auto d = EvalExpr(MakeArith(ArithOp::kDiv, Col(1), Lit(0)), layout_, row_);
  EXPECT_FALSE(d.ok());
}

TEST_F(EvalTest, DoublePromotion) {
  auto r = EvalExpr(MakeArith(ArithOp::kMul, Col(1), MakeConst(Datum::Double(0.5))),
                    layout_, row_);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->double_value(), 5.0);
}

TEST_F(EvalTest, InList) {
  ExprPtr in = MakeInList({Col(1), Lit(9), Lit(10), Lit(11)});
  auto r = EvalExpr(in, layout_, row_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->bool_value());
  ExprPtr not_in = MakeInList({Col(1), Lit(1), Lit(2)});
  auto r2 = EvalExpr(not_in, layout_, row_);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->bool_value());
}

TEST_F(EvalTest, IsNull) {
  auto r = EvalExpr(std::make_shared<IsNullExpr>(Col(3)), layout_, row_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->bool_value());
}

TEST_F(EvalTest, UnboundParamIsError) {
  auto r = EvalExpr(MakeParam(0, TypeId::kInt64), layout_, row_);
  EXPECT_FALSE(r.ok());
}

TEST(TryFoldConstTest, FoldsConstantsOnly) {
  EXPECT_TRUE(TryFoldConst(Lit(5)).has_value());
  auto folded = TryFoldConst(MakeArith(ArithOp::kAdd, Lit(2), Lit(3)));
  ASSERT_TRUE(folded.has_value());
  EXPECT_EQ(folded->int64_value(), 5);
  EXPECT_FALSE(TryFoldConst(Col(1)).has_value());
  EXPECT_FALSE(TryFoldConst(MakeArith(ArithOp::kDiv, Lit(1), Lit(0))).has_value());
}

}  // namespace
}  // namespace mppdb
