// End-to-end columnar execution: per-partition storage orientation DDL
// (CREATE ... WITH, ALTER TABLE SET [PARTITION] WITH), the EXPLAIN storage
// footer, and the core contract of encoded-data predicate evaluation — a
// column-oriented table returns bit-identical rows and (modulo the encoded-
// path counters, which are exactly what the fast path is allowed to change)
// bit-identical ExecStats to the row-store oracle, across
// {serial, parallel} x {row, vectorized} x {skipping on, off} x
// {encoded eval on, off}, including error outcomes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "optimizer/stats.h"
#include "test_util.h"

namespace mppdb {
namespace {

class ColumnarExecTest : public ::testing::Test {
 protected:
  ColumnarExecTest()
      : row_(3),
        col_(3),
        col_vec_(3, Executor::Options{.vectorized = true}),
        col_par_(3, Executor::Options{.parallel = true}),
        col_par_vec_(3, Executor::Options{.parallel = true, .vectorized = true}),
        col_noskip_(3, Executor::Options{.data_skipping = false}),
        col_noskip_vec_(3, Executor::Options{.vectorized = true,
                                             .data_skipping = false}),
        col_noenc_(3, Executor::Options{.encoded_eval = false}),
        col_noenc_vec_(3, Executor::Options{.vectorized = true,
                                            .encoded_eval = false}),
        mixed_(3) {
    Random rng(9001);
    std::vector<Row> sales_rows;
    for (int i = 0; i < 5000; ++i) {
      // sk routes the partition; qty is NULL now and then; tag and region are
      // low-cardinality strings (dictionary territory).
      sales_rows.push_back(
          {Datum::Int64(rng.UniformRange(0, 399)),
           rng.Bernoulli(0.06) ? Datum::Null()
                               : Datum::Int64(rng.UniformRange(0, 9)),
           Datum::String("t" + std::to_string(rng.Uniform(4))),
           Datum::Double(rng.NextDouble() * 100)});
    }
    std::vector<Row> dim_rows;
    for (int k = 0; k < 400; k += 2) {
      dim_rows.push_back({Datum::Int64(k), Datum::String(k % 3 == 0 ? "a" : "b")});
    }
    for (Database* db : AllDbs()) {
      MPPDB_CHECK(db->CreatePartitionedTable(
                         "sales", Schema({{"sk", TypeId::kInt64},
                                          {"qty", TypeId::kInt64},
                                          {"tag", TypeId::kString},
                                          {"price", TypeId::kDouble}}),
                         TableDistribution::kHashed, {0},
                         {{0, PartitionMethod::kRange}},
                         {partition_bounds::IntRanges(0, 50, 8)})
                      .ok());
      MPPDB_CHECK(db->CreateTable("dim", Schema({{"k", TypeId::kInt64},
                                                 {"cls", TypeId::kString}}),
                                  TableDistribution::kHashed, {0})
                      .ok());
      MPPDB_CHECK(db->Load("sales", sales_rows).ok());
      MPPDB_CHECK(db->Load("dim", dim_rows).ok());
    }
    // Everything except the row oracle goes column-oriented through the DDL
    // path; the mixed database flips only half the sales partitions.
    for (Database* db : ColumnDbs()) {
      MPPDB_CHECK(db->Run("ALTER TABLE sales SET WITH (orientation = column)").ok());
      MPPDB_CHECK(db->Run("ALTER TABLE dim SET WITH (orientation = column)").ok());
    }
    for (int p = 0; p < 8; p += 2) {
      MPPDB_CHECK(mixed_
                      .Run("ALTER TABLE sales SET PARTITION r" + std::to_string(p) +
                           " WITH (orientation = column)")
                      .ok());
    }
  }

  std::vector<Database*> AllDbs() {
    return {&row_,        &col_,        &col_vec_,    &col_par_,
            &col_par_vec_, &col_noskip_, &col_noskip_vec_,
            &col_noenc_,  &col_noenc_vec_, &mixed_};
  }
  std::vector<Database*> ColumnDbs() {
    return {&col_,        &col_vec_,    &col_par_,       &col_par_vec_,
            &col_noskip_, &col_noskip_vec_, &col_noenc_, &col_noenc_vec_};
  }

  // The encoded fast path may only change its own counters; everything the
  // query feeds downstream must match the row oracle bit for bit.
  static void ZeroEncodedCounters(ExecStats* stats) {
    stats->chunks_encoded_eval = 0;
    stats->rows_late_materialized = 0;
    stats->encoded_bytes_scanned = 0;
    stats->colstore_rebuilds_shed = 0;
  }
  static void ZeroSkipCounters(ExecStats* stats) {
    stats->chunks_total = 0;
    stats->chunks_skipped = 0;
    stats->units_skipped = 0;
    stats->joinfilter_probed = 0;
    stats->joinfilter_rows_rejected = 0;
    stats->joinfilter_chunks_skipped = 0;
    stats->joinfilter_motion_rows_saved = 0;
  }

  void CheckAgainstRowOracle(const std::string& sql) {
    auto reference = row_.Run(sql);
    ASSERT_TRUE(reference.ok()) << sql << "\n" << reference.status().ToString();
    ExecStats reference_noskip = reference->stats;
    ZeroSkipCounters(&reference_noskip);
    for (Database* db : ColumnDbs()) {
      auto mode = db->Run(sql);
      ASSERT_TRUE(mode.ok()) << sql << "\n" << mode.status().ToString();
      const bool skipping = db->exec_options().data_skipping;
      EXPECT_TRUE(reference->rows == mode->rows)
          << sql << " (parallel=" << db->exec_options().parallel
          << " vectorized=" << db->exec_options().vectorized
          << " skipping=" << skipping
          << " encoded=" << db->exec_options().encoded_eval << ")";
      ExecStats mode_stats = mode->stats;
      ZeroEncodedCounters(&mode_stats);
      if (skipping) {
        EXPECT_TRUE(reference->stats == mode_stats)
            << sql << " (parallel=" << db->exec_options().parallel
            << " vectorized=" << db->exec_options().vectorized
            << " encoded=" << db->exec_options().encoded_eval << ")";
      } else {
        ZeroSkipCounters(&mode_stats);
        EXPECT_TRUE(reference_noskip == mode_stats)
            << sql << " (skipping off, vectorized="
            << db->exec_options().vectorized << ")";
      }
    }
    auto mixed = mixed_.Run(sql);
    ASSERT_TRUE(mixed.ok()) << sql << "\n" << mixed.status().ToString();
    EXPECT_TRUE(reference->rows == mixed->rows) << sql << " (mixed orientation)";
    ExecStats mixed_stats = mixed->stats;
    ZeroEncodedCounters(&mixed_stats);
    EXPECT_TRUE(reference->stats == mixed_stats) << sql << " (mixed orientation)";
  }

  Database row_;
  Database col_;
  Database col_vec_;
  Database col_par_;
  Database col_par_vec_;
  Database col_noskip_;
  Database col_noskip_vec_;
  Database col_noenc_;
  Database col_noenc_vec_;
  Database mixed_;
};

TEST_F(ColumnarExecTest, SelectiveScansMatchRowOracle) {
  for (const char* sql : {
           "SELECT count(*), sum(qty) FROM sales WHERE tag = 't1'",
           "SELECT count(*) FROM sales WHERE tag IN ('t0', 't3') AND qty < 4",
           "SELECT sk, qty FROM sales WHERE sk BETWEEN 90 AND 110 AND tag = 't2' "
           "ORDER BY sk, qty",
           "SELECT count(*) FROM sales WHERE qty IS NULL",
           "SELECT count(*) FROM sales WHERE qty IS NOT NULL AND qty >= 7",
           "SELECT count(*) FROM sales WHERE tag = 't0' OR tag = 't3'",
           "SELECT count(*), avg(price) FROM sales WHERE sk < 120 AND "
           "price * 2 < 50",  // arithmetic residual on encoded survivors
           "SELECT tag, count(*) FROM sales WHERE qty IN (1, 2, 5) "
           "GROUP BY tag ORDER BY tag",
       }) {
    CheckAgainstRowOracle(sql);
  }
}

TEST_F(ColumnarExecTest, JoinsAndSubqueriesMatchRowOracle) {
  for (const char* sql : {
           "SELECT count(*) FROM sales s JOIN dim d ON s.sk = d.k "
           "WHERE s.tag = 't1' AND d.cls = 'a'",
           "SELECT count(*) FROM sales WHERE sk IN "
           "(SELECT k FROM dim WHERE cls = 'b') AND tag = 't2'",
       }) {
    CheckAgainstRowOracle(sql);
  }
}

TEST_F(ColumnarExecTest, EncodedEvalActuallyEngages) {
  auto result = col_.Run("SELECT count(*) FROM sales WHERE tag = 't1'");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.chunks_encoded_eval, 0u);
  EXPECT_GT(result->stats.encoded_bytes_scanned, 0u);
  // Late materialization touches only survivors, a strict subset here.
  EXPECT_LT(result->stats.rows_late_materialized, result->stats.tuples_scanned);
  // With the switch off the counters must stay dark.
  auto off = col_noenc_.Run("SELECT count(*) FROM sales WHERE tag = 't1'");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->stats.chunks_encoded_eval, 0u);
  EXPECT_EQ(off->stats.rows_late_materialized, 0u);
}

TEST_F(ColumnarExecTest, ErrorOutcomesMatchRowOracle) {
  // The residual divides by zero on rows the compiled prefix keeps alive;
  // every mode must surface the same execution error.
  const std::string sql =
      "SELECT count(*) FROM sales WHERE tag = 't1' AND qty / (sk - sk) = 1";
  auto reference = row_.Run(sql);
  ASSERT_FALSE(reference.ok());
  for (Database* db : ColumnDbs()) {
    auto mode = db->Run(sql);
    ASSERT_FALSE(mode.ok()) << "vectorized=" << db->exec_options().vectorized;
    EXPECT_EQ(mode.status().code(), reference.status().code());
  }
}

TEST_F(ColumnarExecTest, DictionaryNdvFeedsTheEstimator) {
  // A scan builds the encoded images; after that the estimator's NDV for the
  // dictionary-coded tag column is exact (4 distinct values), not the
  // non-null-count fallback.
  ASSERT_TRUE(col_.Run("SELECT count(*) FROM sales WHERE tag = 't1'").ok());
  CardinalityEstimator estimator(&col_.storage());
  Oid sales_oid = col_.catalog().FindTable("sales")->oid;
  auto stats = estimator.TableColumnStats(sales_oid, 2);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->ndv, 4.0);
  // The row-store database keeps the rollup estimate for the same column.
  CardinalityEstimator row_estimator(&row_.storage());
  Oid row_oid = row_.catalog().FindTable("sales")->oid;
  auto row_stats = row_estimator.TableColumnStats(row_oid, 2);
  ASSERT_TRUE(row_stats.has_value());
  EXPECT_GT(row_stats->ndv, 4.0);
}

TEST_F(ColumnarExecTest, DmlAfterAlterStaysCorrect) {
  // Insert through SQL after the table went columnar: the encoded images are
  // staled and lazily rebuilt; results stay identical to the row oracle.
  for (Database* db : AllDbs()) {
    ASSERT_TRUE(db->Run("INSERT INTO sales VALUES (7, 3, 't9', 1.5)").ok());
    ASSERT_TRUE(db->Run("UPDATE sales SET qty = 8 WHERE sk = 7 AND tag = 't9'").ok());
  }
  CheckAgainstRowOracle("SELECT count(*), sum(qty) FROM sales WHERE tag = 't9'");
  for (Database* db : AllDbs()) {
    ASSERT_TRUE(db->Run("DELETE FROM sales WHERE tag = 't9'").ok());
  }
  CheckAgainstRowOracle("SELECT count(*) FROM sales WHERE tag = 't9'");
}

TEST_F(ColumnarExecTest, ExplainPrintsStorageFooter) {
  auto plan = col_.Explain("SELECT count(*) FROM sales WHERE tag = 't1'");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("Storage: sales (default column)"), std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("tag: dict"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("r0: column ("), std::string::npos) << *plan;

  // Mixed orientation: flipped partitions print column, the rest row.
  auto mixed_plan = mixed_.Explain("SELECT count(*) FROM sales");
  ASSERT_TRUE(mixed_plan.ok());
  EXPECT_NE(mixed_plan->find("Storage: sales (default row)"), std::string::npos)
      << *mixed_plan;
  EXPECT_NE(mixed_plan->find("r0: column ("), std::string::npos) << *mixed_plan;
  EXPECT_NE(mixed_plan->find("r1: row"), std::string::npos) << *mixed_plan;

  // Row-oriented tables keep EXPLAIN byte-compatible: no footer at all.
  auto row_plan = row_.Explain("SELECT count(*) FROM sales");
  ASSERT_TRUE(row_plan.ok());
  EXPECT_EQ(row_plan->find("Storage:"), std::string::npos) << *row_plan;
}

TEST(ColumnarDdlTest, CreateTableWithOrientationOption) {
  Database db(2);
  ASSERT_TRUE(db.Run("CREATE TABLE ct (a INT, b VARCHAR) "
                     "WITH (orientation = column)")
                  .ok());
  const TableDescriptor* table = db.catalog().FindTable("ct");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->default_orientation, StorageOrientation::kColumn);
  ASSERT_TRUE(db.Run("INSERT INTO ct VALUES (1, 'x'), (2, 'y'), (2, 'x')").ok());
  auto result = db.Run("SELECT count(*) FROM ct WHERE b = 'x'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int64_value(), 2);
}

TEST(ColumnarDdlTest, AlterTableAndPartitionRoundTrip) {
  Database db(2);
  ASSERT_TRUE(db.CreatePartitionedTable(
                    "t", Schema({{"k", TypeId::kInt64}, {"v", TypeId::kString}}),
                    TableDistribution::kHashed, {0},
                    {{0, PartitionMethod::kRange}},
                    {partition_bounds::IntRanges(0, 10, 4)})
                  .ok());
  const TableDescriptor* table = db.catalog().FindTable("t");
  Oid leaf1 = table->partition_scheme->Leaves()[1].oid;

  ASSERT_TRUE(db.Run("ALTER TABLE t SET PARTITION r1 WITH (orientation = column)").ok());
  EXPECT_EQ(table->UnitOrientation(leaf1), StorageOrientation::kColumn);
  EXPECT_EQ(table->default_orientation, StorageOrientation::kRow);

  // Whole-table ALTER resets per-partition overrides.
  ASSERT_TRUE(db.Run("ALTER TABLE t SET WITH (orientation = column)").ok());
  EXPECT_EQ(table->default_orientation, StorageOrientation::kColumn);
  ASSERT_TRUE(db.Run("ALTER TABLE t SET WITH (orientation = row)").ok());
  EXPECT_EQ(table->UnitOrientation(leaf1), StorageOrientation::kRow);

  // Error surface: unknown option, bad value, unknown partition, no table.
  EXPECT_EQ(db.Run("ALTER TABLE t SET WITH (compression = zstd)").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(db.Run("ALTER TABLE t SET WITH (orientation = diagonal)").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(
      db.Run("ALTER TABLE t SET PARTITION nope WITH (orientation = column)")
          .status()
          .code(),
      StatusCode::kNotFound);
  EXPECT_FALSE(db.Run("ALTER TABLE absent SET WITH (orientation = column)").ok());
}

}  // namespace
}  // namespace mppdb
