// MorselScheduler unit and stress tests: work-stealing deques, TaskGroup
// spawn/wait, move-only task functions, worker identity, and a recursive
// fork-join stress that forces steals through deep spawn trees.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace mppdb {
namespace {

// A latch for fire-and-forget Submit tests (no TaskGroup involved).
struct Latch {
  std::mutex mu;
  std::condition_variable cv;
  int remaining;
  explicit Latch(int n) : remaining(n) {}
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this]() { return remaining == 0; });
  }
};

TEST(MorselSchedulerTest, SubmitRunsAllTasks) {
  MorselScheduler scheduler(3);
  EXPECT_EQ(scheduler.num_workers(), 3);
  constexpr int kTasks = 100;
  std::atomic<int> ran{0};
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    scheduler.Submit([&]() {
      ran.fetch_add(1, std::memory_order_relaxed);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(ran.load(), kTasks);
}

// TaskFn is move-only: tasks may own move-only state (unique_ptr), which the
// old std::function-based pool could not hold without shared_ptr shims.
TEST(MorselSchedulerTest, TasksCarryMoveOnlyState) {
  MorselScheduler scheduler(2);
  auto payload = std::make_unique<int>(41);
  std::atomic<int> result{0};
  Latch latch(1);
  scheduler.Submit([payload = std::move(payload), &result, &latch]() mutable {
    result.store(*payload + 1);
    latch.CountDown();
  });
  latch.Wait();
  EXPECT_EQ(result.load(), 42);

  // Same through the plain ThreadPool (satellite: Submit takes TaskFn).
  ThreadPool pool(2);
  auto p2 = std::make_unique<int>(7);
  std::future<void> done =
      pool.Submit([p2 = std::move(p2), &result]() mutable { result.store(*p2); });
  done.wait();
  EXPECT_EQ(result.load(), 7);
}

TEST(MorselSchedulerTest, CurrentWorkerIdentity) {
  MorselScheduler scheduler(4);
  EXPECT_EQ(scheduler.CurrentWorker(), -1);  // external thread
  std::atomic<int> seen{-2};
  Latch latch(1);
  scheduler.Submit([&]() {
    seen.store(scheduler.CurrentWorker());
    latch.CountDown();
  });
  latch.Wait();
  EXPECT_GE(seen.load(), 0);
  EXPECT_LT(seen.load(), 4);
}

// TaskGroup from an external thread: Wait blocks until every spawned task
// completes, including tasks spawned while others already run.
TEST(MorselSchedulerTest, TaskGroupWaitsForAllSpawned) {
  MorselScheduler scheduler(4);
  std::atomic<int> ran{0};
  MorselScheduler::TaskGroup group(&scheduler);
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    group.Spawn([&]() { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), kTasks);
}

// The executor's actual shape: a scheduler task creates a TaskGroup, spawns
// morsels into its own deque, and helps drain them in Wait.
TEST(MorselSchedulerTest, GroupSpawnedFromWorkerTask) {
  MorselScheduler scheduler(2);
  std::atomic<int> ran{0};
  Latch latch(1);
  scheduler.Submit([&]() {
    MorselScheduler::TaskGroup group(&scheduler);
    for (int i = 0; i < 64; ++i) {
      group.Spawn([&]() { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    latch.CountDown();
  });
  latch.Wait();
  EXPECT_EQ(ran.load(), 64);
}

// Work actually spreads across workers: one task plants a burst of slow
// morsels in its own deque; peers must steal to finish them. Busy-time
// telemetry (BusyNanos) shows more than one worker participating. Thread
// scheduling is non-deterministic, so retry a few times before declaring
// failure.
TEST(MorselSchedulerTest, StealsSpreadWorkAcrossWorkers) {
  MorselScheduler scheduler(4);
  bool spread = false;
  for (int attempt = 0; attempt < 5 && !spread; ++attempt) {
    scheduler.ResetBusyTime();
    Latch latch(1);
    scheduler.Submit([&]() {
      MorselScheduler::TaskGroup group(&scheduler);
      for (int i = 0; i < 256; ++i) {
        group.Spawn([]() { std::this_thread::sleep_for(std::chrono::microseconds(200)); });
      }
      group.Wait();
      latch.CountDown();
    });
    latch.Wait();
    int busy_workers = 0;
    for (uint64_t ns : scheduler.BusyNanos()) {
      if (ns > 0) ++busy_workers;
    }
    spread = busy_workers >= 2;
  }
  EXPECT_TRUE(spread) << "no steal observed in 5 attempts";
}

TEST(MorselSchedulerTest, ResetBusyTimeZeroes) {
  MorselScheduler scheduler(2);
  Latch latch(1);
  scheduler.Submit([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    latch.CountDown();
  });
  latch.Wait();
  // The worker adds the task's time to busy_ns after the task body (and the
  // CountDown inside it) returns, so the latch doesn't order the accounting
  // with this thread: poll until the lone task's time lands. Once it has,
  // nothing races the reset below.
  auto total_busy = [&]() {
    uint64_t total = 0;
    for (uint64_t ns : scheduler.BusyNanos()) total += ns;
    return total;
  };
  while (total_busy() == 0) std::this_thread::yield();
  EXPECT_GT(total_busy(), 0u);
  scheduler.ResetBusyTime();
  EXPECT_EQ(total_busy(), 0u);
}

// Recursive fork-join: tasks split a range and spawn both halves back into
// the same group (morsels spawning morsels), leaves mark their elements.
// Exercises deque LIFO, steal-half replanting, and group completion under a
// deep dynamic task tree, across several worker counts and random seeds.
TEST(MorselSchedulerStressTest, RecursiveForkJoin) {
  std::mt19937 rng(20260809);
  for (int round = 0; round < 6; ++round) {
    const int workers = 1 + static_cast<int>(rng() % 4);
    const size_t n = 512 + rng() % 2048;
    MorselScheduler scheduler(workers);
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);

    struct Splitter {
      MorselScheduler::TaskGroup* group;
      std::vector<std::atomic<int>>* hits;
      void Run(size_t begin, size_t end) const {
        if (end - begin <= 16) {
          for (size_t i = begin; i < end; ++i) {
            (*hits)[i].fetch_add(1, std::memory_order_relaxed);
          }
          return;
        }
        const size_t mid = begin + (end - begin) / 2;
        Splitter self = *this;
        group->Spawn([self, mid, end]() { self.Run(mid, end); });
        Run(begin, mid);
      }
    };

    Latch latch(1);
    scheduler.Submit([&]() {
      MorselScheduler::TaskGroup group(&scheduler);
      Splitter splitter{&group, &hits};
      group.Spawn([&splitter, n]() { splitter.Run(0, n); });
      group.Wait();
      latch.CountDown();
    });
    latch.Wait();
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " element " << i;
    }
  }
}

// Many external threads hammering one scheduler with groups concurrently —
// the executor does exactly this when Database shares one pool across
// queries.
TEST(MorselSchedulerStressTest, ConcurrentGroupsFromManyThreads) {
  MorselScheduler scheduler(4);
  constexpr int kThreads = 6;
  constexpr int kTasksPerGroup = 100;
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int iter = 0; iter < 10; ++iter) {
        MorselScheduler::TaskGroup group(&scheduler);
        for (int i = 0; i < kTasksPerGroup; ++i) {
          group.Spawn([&]() { total.fetch_add(1, std::memory_order_relaxed); });
        }
        group.Wait();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(total.load(), kThreads * 10 * kTasksPerGroup);
}

}  // namespace
}  // namespace mppdb
