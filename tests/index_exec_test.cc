// End-to-end tests for the ordered index access paths: the Select2IndexSeek,
// Limit2DynamicIndexScan, and MinMax2IndexSeek alternatives, the fused
// bounded top-N operator, and the executor's DynamicIndexScan node. Every
// query is checked bit-identical (rows AND order for ordered shapes) against
// the enable_index_paths=false oracle, which plans exactly as the pre-index
// optimizer did.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "db/database.h"
#include "test_util.h"

namespace mppdb {
namespace {

int CountNodes(const PhysPtr& plan, PhysNodeKind kind) {
  int count = plan->kind() == kind ? 1 : 0;
  for (const auto& child : plan->children()) count += CountNodes(child, kind);
  return count;
}

// Exact equality: same size, same order, same null-ness, compare-equal
// datums. This is the bit-identity contract — no sorting, no tolerance.
bool ExactRows(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (a[i][j].is_null() != b[i][j].is_null()) return false;
      if (!a[i][j].is_null() && Datum::Compare(a[i][j], b[i][j]) != 0) return false;
    }
  }
  return true;
}

std::string Dump(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& row : rows) {
    for (const Datum& d : row) out += d.ToString() + " ";
    out += "\n";
  }
  return out;
}

class IndexExecTest : public ::testing::Test {
 protected:
  IndexExecTest() : db_(4) {
    // fact: range-partitioned on sk into 20 leaves of width 50 (sk in
    // [0,1000)), hash-distributed on v so duplicate keys spread across
    // segments. Leaves covering [300,600) and [700,1000) stay empty.
    MPPDB_CHECK(db_.CreatePartitionedTable(
                       "fact", Schema({{"sk", TypeId::kInt64},
                                       {"v", TypeId::kInt64},
                                       {"price", TypeId::kDouble}}),
                       TableDistribution::kHashed, {1},
                       {{0, PartitionMethod::kRange}},
                       {partition_bounds::IntRanges(0, 50, 20)})
                    .ok());
    std::vector<Row> fact_rows;
    for (int i = 0; i < 6000; ++i) {
      // Every sk in [0,300) appears exactly twenty times — tie territory,
      // and enough rows per unit that walking beats scanning.
      fact_rows.push_back({Datum::Int64(i % 300), Datum::Int64(i),
                           Datum::Double(i * 0.5)});
    }
    for (int i = 0; i < 60; ++i) {
      fact_rows.push_back({Datum::Int64(600 + i % 30), Datum::Int64(1000 + i),
                           Datum::Double(i * 0.25)});
    }
    MPPDB_CHECK(db_.Load("fact", fact_rows).ok());
    MPPDB_CHECK(db_.Run("CREATE INDEX ON fact (sk)").ok());

    // plain: unpartitioned, with NULL keys and duplicates; unique tags make
    // tie-order differences visible to ExactRows. The 500 filler rows keep
    // the ordered walk cheaper than a full scan, so the LIMIT shapes below
    // actually take the index path.
    MPPDB_CHECK(db_.CreateTable("plain",
                                Schema({{"k", TypeId::kInt64},
                                        {"tag", TypeId::kString}}),
                                TableDistribution::kHashed, {1})
                    .ok());
    std::vector<Row> plain_rows;
    const int64_t keys[] = {7, -1, 3, -1, 7, 12, 0, 5, 12, 7};
    for (int i = 0; i < 10; ++i) {
      Datum k = keys[i] < 0 ? Datum::Null() : Datum::Int64(keys[i]);
      plain_rows.push_back({k, Datum::String("r" + std::to_string(i))});
    }
    for (int i = 0; i < 500; ++i) {
      plain_rows.push_back(
          {Datum::Int64(100 + i), Datum::String("f" + std::to_string(i))});
    }
    MPPDB_CHECK(db_.Load("plain", plain_rows).ok());
    MPPDB_CHECK(db_.Run("CREATE INDEX ON plain (k)").ok());

    // mostly_null: NULL keys dominate, so a descending walk must emit its
    // NULL tail within a small per-unit limit.
    MPPDB_CHECK(db_.CreateTable("mostly_null",
                                Schema({{"k", TypeId::kInt64},
                                        {"tag", TypeId::kString}}),
                                TableDistribution::kHashed, {1})
                    .ok());
    std::vector<Row> mn_rows = {{Datum::Int64(5), Datum::String("five")},
                                {Datum::Int64(9), Datum::String("nine")}};
    for (int i = 0; i < 400; ++i) {
      mn_rows.push_back({Datum::Null(), Datum::String("n" + std::to_string(i))});
    }
    MPPDB_CHECK(db_.Load("mostly_null", mn_rows).ok());
    MPPDB_CHECK(db_.Run("CREATE INDEX ON mostly_null (k)").ok());
  }

  // Runs `sql` with index paths on and off and checks bit-identical rows.
  // Returns the on-path result for further plan/stats assertions.
  QueryResult CheckAgainstOracle(const std::string& sql) {
    QueryOptions off;
    off.enable_index_paths = false;
    auto oracle = db_.Run(sql, off);
    MPPDB_CHECK(oracle.ok());
    EXPECT_EQ(oracle->stats.index_seeks, 0u);
    EXPECT_EQ(oracle->stats.index_rows_read, 0u);
    EXPECT_EQ(oracle->stats.topn_rows_cut, 0u);
    auto on = db_.Run(sql);
    MPPDB_CHECK(on.ok());
    EXPECT_TRUE(ExactRows(on->rows, oracle->rows))
        << sql << "\nindex:\n" << Dump(on->rows) << "oracle:\n"
        << Dump(oracle->rows);
    return *std::move(on);
  }

  Database db_;
};

TEST_F(IndexExecTest, RangeSeekMatchesOracle) {
  // Leading sargable range conjunct + a residual the seek cannot serve (an
  // OR over a different column) that must be re-applied to every match.
  QueryResult r = CheckAgainstOracle(
      "SELECT sk, v FROM fact WHERE sk >= 120 AND sk < 180 "
      "AND (v < 150 OR v > 400)");
  EXPECT_EQ(CountNodes(r.plan, PhysNodeKind::kDynamicIndexScan), 1);
  EXPECT_EQ(CountNodes(r.plan, PhysNodeKind::kDynamicScan), 0);
  EXPECT_GT(r.stats.index_seeks, 0u);
  EXPECT_GT(r.stats.index_rows_read, 0u);
  // Partition selection still applies: only the leaves covering [120,180).
  Oid fact_oid = db_.catalog().FindTable("fact")->oid;
  EXPECT_EQ(r.stats.PartitionsScanned(fact_oid), 2u);
}

TEST_F(IndexExecTest, SeekOverEmptyPartitions) {
  // [400,500) lies entirely in empty leaves: seeks run, nothing matches.
  QueryResult r = CheckAgainstOracle(
      "SELECT sk, v FROM fact WHERE sk >= 400 AND sk < 500");
  EXPECT_TRUE(r.rows.empty());
  EXPECT_EQ(CountNodes(r.plan, PhysNodeKind::kDynamicIndexScan), 1);
  EXPECT_GT(r.stats.index_seeks, 0u);
  EXPECT_EQ(r.stats.index_rows_read, 0u);
}

TEST_F(IndexExecTest, OrderByLimitAscendingWithTies) {
  // LIMIT 7 lands mid-run of duplicated keys; tie order must match the
  // oracle's stable sort exactly.
  QueryResult r = CheckAgainstOracle("SELECT sk, v FROM fact ORDER BY sk LIMIT 7");
  EXPECT_EQ(r.rows.size(), 7u);
  EXPECT_EQ(CountNodes(r.plan, PhysNodeKind::kDynamicIndexScan), 1);
  EXPECT_EQ(CountNodes(r.plan, PhysNodeKind::kTopN), 1);
  EXPECT_EQ(CountNodes(r.plan, PhysNodeKind::kSort), 0);
  EXPECT_EQ(CountNodes(r.plan, PhysNodeKind::kLimit), 0);
  EXPECT_GT(r.stats.index_seeks, 0u);
  EXPECT_GT(r.stats.topn_rows_cut, 0u);
}

TEST_F(IndexExecTest, OrderByLimitDescendingWithTies) {
  // Highest keys (629..) live in the sparse [600,700) region and repeat.
  QueryResult r =
      CheckAgainstOracle("SELECT sk, v FROM fact ORDER BY sk DESC LIMIT 9");
  EXPECT_EQ(r.rows.size(), 9u);
  EXPECT_EQ(CountNodes(r.plan, PhysNodeKind::kDynamicIndexScan), 1);
  EXPECT_EQ(CountNodes(r.plan, PhysNodeKind::kTopN), 1);
  EXPECT_EQ(r.rows[0][0].int64_value(), 629);
}

TEST_F(IndexExecTest, LimitLargerThanTable) {
  QueryResult r =
      CheckAgainstOracle("SELECT sk, v FROM fact ORDER BY sk LIMIT 100000");
  EXPECT_EQ(r.rows.size(), 6060u);
  EXPECT_EQ(r.stats.topn_rows_cut, 0u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][0].int64_value(), r.rows[i][0].int64_value());
  }
}

TEST_F(IndexExecTest, NullsFirstAscendingNullsLastDescending) {
  // Two NULL keys: ascending order puts them first (matching the sort
  // oracle's NULL-first Datum::Compare), descending puts them last.
  QueryResult asc =
      CheckAgainstOracle("SELECT k, tag FROM plain ORDER BY k LIMIT 4");
  EXPECT_EQ(CountNodes(asc.plan, PhysNodeKind::kDynamicIndexScan), 1);
  ASSERT_EQ(asc.rows.size(), 4u);
  EXPECT_TRUE(asc.rows[0][0].is_null());
  EXPECT_TRUE(asc.rows[1][0].is_null());
  EXPECT_EQ(asc.rows[2][0].int64_value(), 0);

  QueryResult desc =
      CheckAgainstOracle("SELECT k, tag FROM plain ORDER BY k DESC LIMIT 4");
  EXPECT_EQ(CountNodes(desc.plan, PhysNodeKind::kDynamicIndexScan), 1);
  ASSERT_EQ(desc.rows.size(), 4u);
  EXPECT_EQ(desc.rows[0][0].int64_value(), 599);
  EXPECT_FALSE(desc.rows[3][0].is_null());

  // A descending walk over mostly-NULL units must surface the NULL tail
  // once the non-null rows run out — within the index path, not just the
  // sort oracle.
  QueryResult tail = CheckAgainstOracle(
      "SELECT k, tag FROM mostly_null ORDER BY k DESC LIMIT 6");
  EXPECT_EQ(CountNodes(tail.plan, PhysNodeKind::kDynamicIndexScan), 1);
  ASSERT_EQ(tail.rows.size(), 6u);
  EXPECT_EQ(tail.rows[0][0].int64_value(), 9);
  EXPECT_EQ(tail.rows[1][0].int64_value(), 5);
  for (int i = 2; i < 6; ++i) EXPECT_TRUE(tail.rows[i][0].is_null());
}

TEST_F(IndexExecTest, MinMaxProbes) {
  QueryResult min_r = CheckAgainstOracle("SELECT min(sk) FROM fact");
  EXPECT_EQ(CountNodes(min_r.plan, PhysNodeKind::kDynamicIndexScan), 1);
  EXPECT_EQ(min_r.rows[0][0].int64_value(), 0);

  QueryResult max_r = CheckAgainstOracle("SELECT max(sk) FROM fact");
  EXPECT_EQ(CountNodes(max_r.plan, PhysNodeKind::kDynamicIndexScan), 1);
  EXPECT_EQ(max_r.rows[0][0].int64_value(), 629);

  // NULL keys are ignored by the probe exactly as by the aggregate, even
  // when they dominate the index.
  QueryResult max_k = CheckAgainstOracle("SELECT max(k) FROM mostly_null");
  EXPECT_EQ(max_k.rows[0][0].int64_value(), 9);
  QueryResult min_k = CheckAgainstOracle("SELECT min(k) FROM mostly_null");
  EXPECT_EQ(min_k.rows[0][0].int64_value(), 5);
}

TEST_F(IndexExecTest, MinMaxOnEmptyTable) {
  MPPDB_CHECK(db_.CreateTable("empty", Schema({{"k", TypeId::kInt64}}),
                              TableDistribution::kHashed, {0})
                  .ok());
  MPPDB_CHECK(db_.Run("CREATE INDEX ON empty (k)").ok());
  QueryResult r = CheckAgainstOracle("SELECT min(k) FROM empty");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(IndexExecTest, DmlStalesLazyIndexThenRebuilds) {
  QueryResult before = CheckAgainstOracle("SELECT sk, v FROM fact ORDER BY sk LIMIT 1");
  EXPECT_EQ(before.rows[0][0].int64_value(), 0);

  // INSERT stales the lazily built per-unit indexes; the next ordered walk
  // must see the new minimum.
  ASSERT_TRUE(db_.Run("INSERT INTO fact VALUES (3, -7, 0.0)").ok());
  QueryResult after_insert =
      CheckAgainstOracle("SELECT sk, v FROM fact WHERE sk = 3");
  EXPECT_EQ(after_insert.rows.size(), 21u);

  ASSERT_TRUE(db_.Run("DELETE FROM fact WHERE sk = 0").ok());
  QueryResult after_delete =
      CheckAgainstOracle("SELECT sk, v FROM fact ORDER BY sk LIMIT 2");
  ASSERT_EQ(after_delete.rows.size(), 2u);
  EXPECT_EQ(after_delete.rows[0][0].int64_value(), 1);
  QueryResult min_r = CheckAgainstOracle("SELECT min(sk) FROM fact");
  EXPECT_EQ(min_r.rows[0][0].int64_value(), 1);
}

TEST_F(IndexExecTest, ToggleOffReproducesPreIndexPlans) {
  QueryOptions off;
  off.enable_index_paths = false;
  for (const char* sql :
       {"SELECT sk, v FROM fact WHERE sk >= 120 AND sk < 180",
        "SELECT sk, v FROM fact ORDER BY sk LIMIT 7",
        "SELECT min(sk) FROM fact"}) {
    auto plan = db_.PlanSql(sql, off);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kDynamicIndexScan), 0) << sql;
    EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kTopN), 0) << sql;
  }
}

TEST_F(IndexExecTest, NoIndexNoIndexPath) {
  // price has no index: the optimizer must not fabricate an access path.
  auto plan = db_.PlanSql("SELECT sk, price FROM fact ORDER BY price LIMIT 3");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kDynamicIndexScan), 0);
  CheckAgainstOracle("SELECT sk, price FROM fact ORDER BY price LIMIT 3");
}

TEST_F(IndexExecTest, ExplainShowsAccessPaths) {
  auto walk = db_.Explain("SELECT sk, v FROM fact ORDER BY sk LIMIT 7");
  ASSERT_TRUE(walk.ok()) << walk.status().ToString();
  EXPECT_NE(walk->find("Access paths: fact"), std::string::npos) << *walk;
  EXPECT_NE(walk->find("index ordered walk on sk asc limit 7"),
            std::string::npos)
      << *walk;

  auto seek = db_.Explain("SELECT sk, v FROM fact WHERE sk >= 120 AND sk < 180");
  ASSERT_TRUE(seek.ok()) << seek.status().ToString();
  EXPECT_NE(seek->find("index range seek on sk"), std::string::npos) << *seek;

  QueryOptions off;
  off.enable_index_paths = false;
  auto none = db_.Explain("SELECT sk, v FROM fact ORDER BY sk LIMIT 7", off);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->find("Access paths"), std::string::npos) << *none;
}

}  // namespace
}  // namespace mppdb
