#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/plan.h"
#include "expr/expr.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::D;
using testutil::SameRows;
using testutil::TestDb;

ExprPtr Lit(int64_t v) { return MakeConst(Datum::Int64(v)); }

// Loads one order row per month-midpoint of 2012-2013 (24 rows).
void LoadMonthlyOrders(TestDb* db, const TableDescriptor* orders) {
  std::vector<Row> rows;
  for (int year : {2012, 2013}) {
    for (int month = 1; month <= 12; ++month) {
      rows.push_back({Datum::Date(date::FromYMD(year, month, 15)),
                      Datum::Double(month * 10.0),
                      Datum::String(month % 2 == 0 ? "east" : "west")});
    }
  }
  db->Insert(orders, rows);
}

// Fixture with the `orders` table and colrefs 1..3 (date, amount, region).
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = db_.CreateOrdersTable(24);
    LoadMonthlyOrders(&db_, orders_);
  }

  PhysPtr OrdersDynamicScan(int scan_id = 1) {
    return std::make_shared<DynamicScanNode>(orders_->oid, scan_id,
                                             std::vector<ColRefId>{1, 2, 3});
  }

  ExprPtr DateCol() { return MakeColumnRef(1, "date", TypeId::kDate); }

  TestDb db_{4};
  const TableDescriptor* orders_ = nullptr;
};

TEST_F(ExecutorTest, FullTableScanViaAppendOfLeaves) {
  // Legacy-planner shape: Append of one TableScan per leaf.
  std::vector<PhysPtr> scans;
  for (Oid leaf : orders_->partition_scheme->AllLeafOids()) {
    scans.push_back(std::make_shared<TableScanNode>(orders_->oid, leaf,
                                                    std::vector<ColRefId>{1, 2, 3}));
  }
  auto plan = std::make_shared<AppendNode>(std::move(scans));
  auto result = db_.executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 24u);
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 24u);
}

TEST_F(ExecutorTest, DynamicScanWithoutSelectorFails) {
  auto result = db_.executor.Execute(OrdersDynamicScan());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
}

TEST_F(ExecutorTest, SelectorWithNoPredicateScansEverything) {
  // Paper Fig. 5(a): Sequence(PartitionSelector(no pred), DynamicScan).
  auto selector = std::make_shared<PartitionSelectorNode>(
      orders_->oid, 1, std::vector<ColRefId>{1}, std::vector<ExprPtr>{nullptr},
      nullptr);
  auto plan = std::make_shared<SequenceNode>(
      std::vector<PhysPtr>{selector, OrdersDynamicScan()});
  auto result = db_.executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 24u);
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 24u);
}

TEST_F(ExecutorTest, StaticEqualitySelectorScansOnePartition) {
  // Paper Fig. 5(b).
  ExprPtr pred = MakeComparison(CompareOp::kEq, DateCol(),
                                MakeConst(D("2013-05-20")));
  auto selector = std::make_shared<PartitionSelectorNode>(
      orders_->oid, 1, std::vector<ColRefId>{1}, std::vector<ExprPtr>{pred}, nullptr);
  auto plan = std::make_shared<SequenceNode>(
      std::vector<PhysPtr>{selector, OrdersDynamicScan()});
  auto result = db_.executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 1u);
  // The one May-2013 row is still returned (scan, not filter).
  EXPECT_EQ(result->size(), 1u);
}

TEST_F(ExecutorTest, StaticRangeSelectorScansLastQuarter) {
  // Paper Figs. 2 / 5(c): Q4-2013 -> 3 of 24 partitions.
  ExprPtr pred = Conj({MakeComparison(CompareOp::kGe, DateCol(),
                                      MakeConst(D("2013-10-01"))),
                       MakeComparison(CompareOp::kLe, DateCol(),
                                      MakeConst(D("2013-12-31")))});
  auto selector = std::make_shared<PartitionSelectorNode>(
      orders_->oid, 1, std::vector<ColRefId>{1}, std::vector<ExprPtr>{pred}, nullptr);
  auto plan = std::make_shared<SequenceNode>(
      std::vector<PhysPtr>{selector, OrdersDynamicScan()});
  auto result = db_.executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 3u);
  EXPECT_EQ(result->size(), 3u);
}

TEST_F(ExecutorTest, FilterAndProject) {
  std::vector<PhysPtr> scans;
  for (Oid leaf : orders_->partition_scheme->AllLeafOids()) {
    scans.push_back(std::make_shared<TableScanNode>(orders_->oid, leaf,
                                                    std::vector<ColRefId>{1, 2, 3}));
  }
  PhysPtr plan = std::make_shared<AppendNode>(std::move(scans));
  plan = std::make_shared<FilterNode>(
      MakeComparison(CompareOp::kEq, MakeColumnRef(3, "region", TypeId::kString),
                     MakeConst(Datum::String("east"))),
      plan);
  plan = std::make_shared<ProjectNode>(
      std::vector<ProjectItem>{
          {MakeArith(ArithOp::kMul, MakeColumnRef(2, "amount", TypeId::kDouble),
                     MakeConst(Datum::Double(2.0))),
           10, "double_amount"}},
      plan);
  auto result = db_.executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 12u);  // even months only
  for (const Row& row : *result) {
    ASSERT_EQ(row.size(), 1u);
  }
}

TEST_F(ExecutorTest, JoinDrivenDynamicElimination) {
  // Paper Fig. 5(d): dimension table R(A) joined on orders' partition key.
  // Selector is a pass-through on the build side; DynamicScan is the probe.
  const TableDescriptor* dates = db_.CreatePlainTable(
      "date_dim", Schema({{"id", TypeId::kDate}, {"month", TypeId::kInt32}}), {0});
  // Dimension rows: Oct-Dec 2013 only.
  db_.Insert(dates, {{D("2013-10-15"), Datum::Int32(10)},
                     {D("2013-11-15"), Datum::Int32(11)},
                     {D("2013-12-15"), Datum::Int32(12)}});

  auto dim_scan = std::make_shared<TableScanNode>(dates->oid, dates->oid,
                                                  std::vector<ColRefId>{11, 12});
  // Broadcast the dimension so every segment's selector/probe sees it.
  auto bcast = std::make_shared<MotionNode>(MotionKind::kBroadcast,
                                            std::vector<ColRefId>{}, dim_scan);
  // Selector predicate: orders.date = date_dim.id (key col 1, outer col 11).
  ExprPtr join_dpe_pred = MakeComparison(CompareOp::kEq, DateCol(),
                                         MakeColumnRef(11, "id", TypeId::kDate));
  auto selector = std::make_shared<PartitionSelectorNode>(
      orders_->oid, 1, std::vector<ColRefId>{1}, std::vector<ExprPtr>{join_dpe_pred},
      bcast);
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{1}, nullptr,
      selector, OrdersDynamicScan());
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, join);
  auto result = db_.executor.Execute(gather);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Dates at day 15 in Oct/Nov/Dec 2013 match the monthly orders rows.
  EXPECT_EQ(result->size(), 3u);
  // Dynamic elimination: only partitions for dates present in the dimension
  // (deduplicated across the broadcast copies) are scanned.
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 3u);
}

TEST_F(ExecutorTest, HashJoinBasic) {
  const TableDescriptor* t1 = db_.CreatePlainTable(
      "t1", Schema({{"k", TypeId::kInt64}, {"v", TypeId::kString}}), {0});
  const TableDescriptor* t2 =
      db_.CreatePlainTable("t2", Schema({{"k", TypeId::kInt64}}), {0});
  db_.Insert(t1, {{Lit(1)->kind() == ExprKind::kConst ? Datum::Int64(1)
                                                       : Datum::Null(),
                   Datum::String("a")},
                  {Datum::Int64(2), Datum::String("b")},
                  {Datum::Null(), Datum::String("n")}});
  db_.Insert(t2, {{Datum::Int64(2)}, {Datum::Int64(2)}, {Datum::Int64(3)},
                  {Datum::Null()}});

  auto s1 = std::make_shared<TableScanNode>(t1->oid, t1->oid,
                                            std::vector<ColRefId>{1, 2});
  auto s2 = std::make_shared<TableScanNode>(t2->oid, t2->oid,
                                            std::vector<ColRefId>{3});
  // Both hash-distributed on k: same key lands on same segment (colocated).
  auto join = std::make_shared<HashJoinNode>(JoinType::kInner,
                                             std::vector<ColRefId>{1},
                                             std::vector<ColRefId>{3}, nullptr, s1, s2);
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, join);
  auto result = db_.executor.Execute(gather);
  ASSERT_TRUE(result.ok());
  // t1 row (2,b) matches two t2 rows; NULL keys never join.
  ASSERT_EQ(result->size(), 2u);
  for (const Row& row : *result) {
    EXPECT_EQ(row[0].int64_value(), 2);
    EXPECT_EQ(row[1].string_value(), "b");
    EXPECT_EQ(row[2].int64_value(), 2);
  }
}

TEST_F(ExecutorTest, SemiJoinPreservesProbeRowsOnce) {
  const TableDescriptor* main =
      db_.CreatePlainTable("main_t", Schema({{"k", TypeId::kInt64}}), {0});
  const TableDescriptor* sub =
      db_.CreatePlainTable("sub_t", Schema({{"k", TypeId::kInt64}}), {0});
  db_.Insert(main, {{Datum::Int64(1)}, {Datum::Int64(2)}, {Datum::Int64(3)}});
  db_.Insert(sub, {{Datum::Int64(2)}, {Datum::Int64(2)}, {Datum::Int64(3)}});
  auto build = std::make_shared<TableScanNode>(sub->oid, sub->oid,
                                               std::vector<ColRefId>{10});
  auto probe = std::make_shared<TableScanNode>(main->oid, main->oid,
                                               std::vector<ColRefId>{20});
  auto join = std::make_shared<HashJoinNode>(JoinType::kSemi,
                                             std::vector<ColRefId>{10},
                                             std::vector<ColRefId>{20}, nullptr,
                                             build, probe);
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, join);
  auto result = db_.executor.Execute(gather);
  ASSERT_TRUE(result.ok());
  // Rows 2 and 3 qualify, each exactly once despite duplicate build keys.
  EXPECT_TRUE(SameRows(*result, {{Datum::Int64(2)}, {Datum::Int64(3)}}));
}

TEST_F(ExecutorTest, NestedLoopJoinWithRangePredicate) {
  const TableDescriptor* a =
      db_.CreatePlainTable("nl_a", Schema({{"x", TypeId::kInt64}}), {0});
  const TableDescriptor* b =
      db_.CreatePlainTable("nl_b", Schema({{"y", TypeId::kInt64}}), {0});
  db_.Insert(a, {{Datum::Int64(1)}, {Datum::Int64(5)}});
  db_.Insert(b, {{Datum::Int64(3)}, {Datum::Int64(7)}});
  auto sa = std::make_shared<TableScanNode>(a->oid, a->oid, std::vector<ColRefId>{1});
  auto bcast_a = std::make_shared<MotionNode>(MotionKind::kBroadcast,
                                              std::vector<ColRefId>{}, sa);
  auto sb = std::make_shared<TableScanNode>(b->oid, b->oid, std::vector<ColRefId>{2});
  auto join = std::make_shared<NestedLoopJoinNode>(
      JoinType::kInner,
      MakeComparison(CompareOp::kLt, MakeColumnRef(1, "x", TypeId::kInt64),
                     MakeColumnRef(2, "y", TypeId::kInt64)),
      bcast_a, sb);
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, join);
  auto result = db_.executor.Execute(gather);
  ASSERT_TRUE(result.ok());
  // (1,3), (1,7), (5,7)
  EXPECT_EQ(result->size(), 3u);
}

TEST_F(ExecutorTest, HashAggWithGroups) {
  std::vector<PhysPtr> scans;
  for (Oid leaf : orders_->partition_scheme->AllLeafOids()) {
    scans.push_back(std::make_shared<TableScanNode>(orders_->oid, leaf,
                                                    std::vector<ColRefId>{1, 2, 3}));
  }
  PhysPtr plan = std::make_shared<AppendNode>(std::move(scans));
  plan = std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{},
                                      plan);
  plan = std::make_shared<HashAggNode>(
      std::vector<ColRefId>{3},
      std::vector<AggItem>{
          {AggFunc::kCountStar, nullptr, 20, "cnt"},
          {AggFunc::kSum, MakeColumnRef(2, "amount", TypeId::kDouble), 21, "total"},
          {AggFunc::kMin, MakeColumnRef(1, "date", TypeId::kDate), 22, "first"}},
      plan);
  auto result = db_.executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);  // east, west
  for (const Row& row : *result) {
    EXPECT_EQ(row[1].int64_value(), 12);
  }
}

TEST_F(ExecutorTest, ScalarAggOverEmptyInput) {
  const TableDescriptor* empty =
      db_.CreatePlainTable("empty_t", Schema({{"x", TypeId::kInt64}}), {0});
  auto scan = std::make_shared<TableScanNode>(empty->oid, empty->oid,
                                              std::vector<ColRefId>{1});
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, scan);
  auto agg = std::make_shared<HashAggNode>(
      std::vector<ColRefId>{},
      std::vector<AggItem>{{AggFunc::kCountStar, nullptr, 10, "cnt"},
                           {AggFunc::kSum, MakeColumnRef(1, "x", TypeId::kInt64), 11,
                            "s"},
                           {AggFunc::kAvg, MakeColumnRef(1, "x", TypeId::kInt64), 12,
                            "a"}},
      gather);
  auto result = db_.executor.Execute(agg);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0][0].int64_value(), 0);
  EXPECT_TRUE((*result)[0][1].is_null());
  EXPECT_TRUE((*result)[0][2].is_null());
}

TEST_F(ExecutorTest, SortAndLimit) {
  std::vector<PhysPtr> scans;
  for (Oid leaf : orders_->partition_scheme->AllLeafOids()) {
    scans.push_back(std::make_shared<TableScanNode>(orders_->oid, leaf,
                                                    std::vector<ColRefId>{1, 2, 3}));
  }
  PhysPtr plan = std::make_shared<AppendNode>(std::move(scans));
  plan = std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{},
                                      plan);
  plan = std::make_shared<SortNode>(std::vector<SortKey>{{1, false}}, plan);
  plan = std::make_shared<LimitNode>(2, plan);
  auto result = db_.executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0][0].date_value(), date::FromYMD(2013, 12, 15));
  EXPECT_EQ((*result)[1][0].date_value(), date::FromYMD(2013, 11, 15));
}

TEST_F(ExecutorTest, RedistributeMotionPreservesMultiset) {
  std::vector<PhysPtr> scans;
  for (Oid leaf : orders_->partition_scheme->AllLeafOids()) {
    scans.push_back(std::make_shared<TableScanNode>(orders_->oid, leaf,
                                                    std::vector<ColRefId>{1, 2, 3}));
  }
  PhysPtr base = std::make_shared<AppendNode>(std::move(scans));
  auto baseline = db_.executor.Execute(base);
  ASSERT_TRUE(baseline.ok());

  PhysPtr redist = std::make_shared<MotionNode>(MotionKind::kRedistribute,
                                                std::vector<ColRefId>{1}, base);
  auto moved = db_.executor.Execute(redist);
  ASSERT_TRUE(moved.ok());
  EXPECT_TRUE(SameRows(*baseline, *moved));
  EXPECT_EQ(db_.executor.stats().rows_moved, baseline->size());
}

TEST_F(ExecutorTest, InsertThenDeleteWithRowids) {
  const TableDescriptor* t =
      db_.CreatePlainTable("dml_t", Schema({{"x", TypeId::kInt64}}), {0});
  // INSERT VALUES (1),(2),(3)
  auto values = std::make_shared<ValuesNode>(
      std::vector<Row>{{Datum::Int64(1)}, {Datum::Int64(2)}, {Datum::Int64(3)}},
      std::vector<ColRefId>{1});
  auto insert = std::make_shared<InsertNode>(t->oid, 50, values);
  auto ins_result = db_.executor.Execute(insert);
  ASSERT_TRUE(ins_result.ok());
  ASSERT_EQ(ins_result->size(), 1u);
  EXPECT_EQ((*ins_result)[0][0].int64_value(), 3);
  EXPECT_EQ(db_.storage.GetStore(t->oid)->TotalRows(), 3u);

  // DELETE WHERE x >= 2 using rowid-extended scan.
  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                              std::vector<ColRefId>{1},
                                              std::vector<ColRefId>{60, 61, 62});
  PhysPtr plan = std::make_shared<FilterNode>(
      MakeComparison(CompareOp::kGe, MakeColumnRef(1, "x", TypeId::kInt64), Lit(2)),
      scan);
  plan = std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{},
                                      plan);
  plan = std::make_shared<DeleteNode>(t->oid, std::vector<ColRefId>{60, 61, 62}, 51,
                                      plan);
  auto del_result = db_.executor.Execute(plan);
  ASSERT_TRUE(del_result.ok()) << del_result.status().ToString();
  EXPECT_EQ((*del_result)[0][0].int64_value(), 2);
  EXPECT_EQ(db_.storage.GetStore(t->oid)->TotalRows(), 1u);
}

TEST_F(ExecutorTest, UpdateMovesRowsAcrossPartitions) {
  const TableDescriptor* r = db_.CreateIntPartitionedTable("upd_r", 10);  // b in [0,100)
  db_.Insert(r, {{Datum::Int64(1), Datum::Int64(5)},
                 {Datum::Int64(2), Datum::Int64(15)}});
  Oid part0 = r->partition_scheme->RouteValues({Datum::Int64(5)});
  Oid part9 = r->partition_scheme->RouteValues({Datum::Int64(95)});
  EXPECT_EQ(db_.storage.GetStore(r->oid)->UnitTotalRows(part0), 1u);

  // UPDATE upd_r SET b = 95 WHERE a = 1  (moves the row to the last part).
  auto selector = std::make_shared<PartitionSelectorNode>(
      r->oid, 7, std::vector<ColRefId>{2}, std::vector<ExprPtr>{nullptr}, nullptr);
  auto scan = std::make_shared<DynamicScanNode>(r->oid, 7, std::vector<ColRefId>{1, 2},
                                                std::vector<ColRefId>{60, 61, 62});
  PhysPtr plan = std::make_shared<SequenceNode>(std::vector<PhysPtr>{selector, scan});
  plan = std::make_shared<FilterNode>(
      MakeComparison(CompareOp::kEq, MakeColumnRef(1, "a", TypeId::kInt64), Lit(1)),
      plan);
  plan = std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{},
                                      plan);
  plan = std::make_shared<UpdateNode>(
      r->oid, std::vector<ColRefId>{1, 2}, std::vector<ColRefId>{60, 61, 62},
      std::vector<UpdateSetItem>{{1, Lit(95)}}, 51, plan);
  auto result = db_.executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)[0][0].int64_value(), 1);
  EXPECT_EQ(db_.storage.GetStore(r->oid)->UnitTotalRows(part0), 0u);
  EXPECT_EQ(db_.storage.GetStore(r->oid)->UnitTotalRows(part9), 1u);
  // Untouched row intact.
  EXPECT_EQ(db_.storage.GetStore(r->oid)->TotalRows(), 2u);
}

TEST_F(ExecutorTest, SelectorPruningNeverChangesResults) {
  // Property: scanning with a static selector == scanning all partitions
  // then filtering, for a range predicate on the partition key.
  ExprPtr pred = Conj({MakeComparison(CompareOp::kGe, DateCol(),
                                      MakeConst(D("2012-03-01"))),
                       MakeComparison(CompareOp::kLt, DateCol(),
                                      MakeConst(D("2013-02-01")))});
  // Pruned plan.
  auto selector = std::make_shared<PartitionSelectorNode>(
      orders_->oid, 1, std::vector<ColRefId>{1}, std::vector<ExprPtr>{pred}, nullptr);
  PhysPtr pruned = std::make_shared<SequenceNode>(
      std::vector<PhysPtr>{selector, OrdersDynamicScan()});
  pruned = std::make_shared<FilterNode>(pred, pruned);
  auto pruned_result = db_.executor.Execute(pruned);
  ASSERT_TRUE(pruned_result.ok());
  size_t pruned_parts = db_.executor.stats().PartitionsScanned(orders_->oid);

  // Unpruned plan.
  std::vector<PhysPtr> scans;
  for (Oid leaf : orders_->partition_scheme->AllLeafOids()) {
    scans.push_back(std::make_shared<TableScanNode>(orders_->oid, leaf,
                                                    std::vector<ColRefId>{1, 2, 3}));
  }
  PhysPtr full = std::make_shared<AppendNode>(std::move(scans));
  full = std::make_shared<FilterNode>(pred, full);
  auto full_result = db_.executor.Execute(full);
  ASSERT_TRUE(full_result.ok());

  EXPECT_TRUE(SameRows(*pruned_result, *full_result));
  EXPECT_EQ(pruned_parts, 11u);
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 24u);
}

}  // namespace
}  // namespace mppdb
