// Serving-layer unit tests: the SQL normalizer, the parameterized plan
// cache (hits, misses, DDL invalidation, LRU eviction), parameter rebinding
// vs the fresh-plan oracle over partition-eliminating predicates, and the
// SessionManager's admission control (FIFO order, group concurrency and
// memory limits, queue bounds). DESIGN.md §11.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "server/session_manager.h"
#include "sql/normalizer.h"
#include "test_util.h"

namespace mppdb {
namespace {

// --- Normalizer ------------------------------------------------------------

TEST(NormalizerTest, LiftsLiteralsAndCanonicalizesText) {
  auto n = NormalizeSql("select  A, b FROM t WHERE a >= 10 AND s = 'x''y'");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_TRUE(n->cacheable);
  EXPECT_TRUE(n->auto_params);
  EXPECT_EQ(n->text, "SELECT a , b FROM t WHERE a >= $1 AND s = $2");
  ASSERT_EQ(n->params.size(), 2u);
  EXPECT_EQ(n->params[0].int64_value(), 10);
  EXPECT_EQ(n->params[1].string_value(), "x'y");
}

TEST(NormalizerTest, SameShapeDifferentLiteralsShareText) {
  auto a = NormalizeSql("SELECT * FROM t WHERE k > 5 AND v = 'a'");
  auto b = NormalizeSql("select *\nfrom T where K > 99 and v = 'zz'");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->text, b->text);
  EXPECT_NE(a->params, b->params);
}

TEST(NormalizerTest, DateLiteralBecomesOneDateParam) {
  auto n = NormalizeSql("SELECT * FROM t WHERE d < DATE '2013-10-01'");
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n->params.size(), 1u);
  EXPECT_EQ(n->params[0].type(), TypeId::kDate);
  EXPECT_EQ(n->text, "SELECT * FROM t WHERE d < $1");
}

TEST(NormalizerTest, LimitLiteralStaysInline) {
  auto n = NormalizeSql("SELECT k FROM t WHERE k > 7 LIMIT 10");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->text, "SELECT k FROM t WHERE k > $1 LIMIT 10");
  ASSERT_EQ(n->params.size(), 1u);
}

TEST(NormalizerTest, OnlySelectIsCacheableAndExplicitParamsDisableLifting) {
  EXPECT_FALSE(NormalizeSql("INSERT INTO t VALUES (1)")->cacheable);
  EXPECT_FALSE(NormalizeSql("UPDATE t SET v = 1 WHERE k = 2")->cacheable);
  EXPECT_FALSE(NormalizeSql("DROP TABLE t")->cacheable);
  EXPECT_FALSE(NormalizeSql("EXPLAIN SELECT * FROM t")->cacheable);
  auto prepared = NormalizeSql("SELECT * FROM t WHERE k = $1 AND v > 3");
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(prepared->cacheable);
  EXPECT_FALSE(prepared->auto_params);  // caller owns the parameters
  EXPECT_TRUE(prepared->params.empty());
  EXPECT_EQ(prepared->text, "SELECT * FROM t WHERE k = $1 AND v > 3");
}

// --- Plan cache ------------------------------------------------------------

class PlanCacheTest : public ::testing::Test {
 protected:
  PlanCacheTest() : db_(2) {
    MPPDB_CHECK(db_.CreatePartitionedTable(
                       "orders",
                       Schema({{"sk", TypeId::kInt64}, {"amount", TypeId::kInt64}}),
                       TableDistribution::kHashed, {0},
                       {{0, PartitionMethod::kRange}},
                       {partition_bounds::IntRanges(0, 10, 8)})
                    .ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 80; ++i) {
      rows.push_back({Datum::Int64(i), Datum::Int64(i * 3)});
    }
    MPPDB_CHECK(db_.Load("orders", rows).ok());
    cached_.use_plan_cache = true;
  }

  Database db_;
  QueryOptions cached_;
};

TEST_F(PlanCacheTest, RepeatedStatementHitsAndSkipsPlanning) {
  auto first = db_.Execute("SELECT count(*) FROM orders WHERE sk < 30", cached_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->plan_cache_hit);
  EXPECT_EQ(first->rows[0][0].int64_value(), 30);

  // Different literal, same shape: a hit, and the rebound parameter drives
  // partition selection to the right answer.
  auto second = db_.Execute("SELECT count(*) FROM orders WHERE sk < 50", cached_);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->plan_cache_hit);
  EXPECT_EQ(second->rows[0][0].int64_value(), 50);

  const PlanCache::Stats stats = db_.plan_cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(db_.plan_cache().size(), 1u);
}

TEST_F(PlanCacheTest, CacheOffNeverTouchesTheCache) {
  ASSERT_TRUE(db_.Execute("SELECT count(*) FROM orders WHERE sk < 30").ok());
  EXPECT_EQ(db_.plan_cache().size(), 0u);
  EXPECT_EQ(db_.plan_cache().stats().misses, 0u);
}

TEST_F(PlanCacheTest, CachedRowsMatchFreshOracleAcrossParams) {
  // The $n-invariance property over partition-eliminating predicates: for
  // every parameter value, the cached plan (compiled once, rebound per call)
  // must return exactly what a freshly planned statement returns — and prune
  // to the same partitions.
  for (int64_t hi = 0; hi <= 80; hi += 7) {
    const std::string sql =
        "SELECT sk, amount FROM orders WHERE sk >= " + std::to_string(hi / 3) +
        " AND sk < " + std::to_string(hi) + " ORDER BY sk";
    auto fresh = db_.Execute(sql);
    auto cached = db_.Execute(sql, cached_);
    ASSERT_TRUE(fresh.ok() && cached.ok()) << sql;
    EXPECT_EQ(fresh->rows, cached->rows) << sql;
    EXPECT_EQ(fresh->stats.partitions_scanned, cached->stats.partitions_scanned)
        << sql << " (cached plan must prune like the fresh plan)";
  }
  // One entry served every value; everything after the first was a hit.
  EXPECT_EQ(db_.plan_cache().size(), 1u);
  EXPECT_GE(db_.plan_cache().stats().hits, 10u);
}

TEST_F(PlanCacheTest, PreparedStatementParamsRebindOnHits) {
  QueryOptions opts = cached_;
  opts.params = {Datum::Int64(20)};
  auto first = db_.Execute("SELECT count(*) FROM orders WHERE sk < $1", opts);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->rows[0][0].int64_value(), 20);
  opts.params = {Datum::Int64(60)};
  auto second = db_.Execute("SELECT count(*) FROM orders WHERE sk < $1", opts);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->plan_cache_hit);
  EXPECT_EQ(second->rows[0][0].int64_value(), 60);
  // Missing parameters on a hit: typed error, no crash.
  opts.params.clear();
  auto missing = db_.Execute("SELECT count(*) FROM orders WHERE sk < $1", opts);
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlanCacheTest, DdlInvalidatesAffectedEntriesOnly) {
  ASSERT_TRUE(db_.CreateTable("other", Schema({{"x", TypeId::kInt64}}),
                              TableDistribution::kHashed, {0})
                  .ok());
  ASSERT_TRUE(db_.Load("other", {{Datum::Int64(1)}}).ok());
  ASSERT_TRUE(db_.Execute("SELECT count(*) FROM orders WHERE sk < 9", cached_).ok());
  ASSERT_TRUE(db_.Execute("SELECT count(*) FROM other WHERE x < 9", cached_).ok());
  EXPECT_EQ(db_.plan_cache().size(), 2u);

  // CREATE INDEX on orders drops only the orders entry.
  ASSERT_TRUE(db_.Execute("CREATE INDEX ON orders (amount)").ok());
  EXPECT_EQ(db_.plan_cache().size(), 1u);
  auto other = db_.Execute("SELECT count(*) FROM other WHERE x < 9", cached_);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other->plan_cache_hit);

  // DROP TABLE other drops its entry; re-serving the statement fails at bind
  // (fresh path), not with a stale plan against freed storage.
  ASSERT_TRUE(db_.Execute("DROP TABLE other").ok());
  EXPECT_EQ(db_.plan_cache().size(), 0u);
  EXPECT_EQ(db_.Execute("SELECT count(*) FROM other WHERE x < 9", cached_)
                .status()
                .code(),
            StatusCode::kBindError);
  EXPECT_GE(db_.plan_cache().stats().invalidations, 2u);
}

TEST_F(PlanCacheTest, IndexDdlRefreshesCachedAccessPaths) {
  auto count_index_scans = [](const PhysPtr& plan) {
    int n = 0;
    std::function<void(const PhysPtr&)> walk = [&](const PhysPtr& node) {
      if (node->kind() == PhysNodeKind::kDynamicIndexScan) ++n;
      for (const auto& child : node->children()) walk(child);
    };
    walk(plan);
    return n;
  };

  // Cached before any index exists: a full-scan aggregate plan.
  const char* sql = "SELECT min(amount) FROM orders";
  auto first = db_.Execute(sql, cached_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->plan_cache_hit);
  EXPECT_EQ(count_index_scans(first->plan), 0);
  EXPECT_EQ(first->rows[0][0].int64_value(), 0);
  auto hit = db_.Execute(sql, cached_);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->plan_cache_hit);
  EXPECT_EQ(count_index_scans(hit->plan), 0);

  // CREATE INDEX invalidates the entry; the re-plan must see the new index
  // and switch to the min/max probe — a stale cached plan would silently
  // keep full-scanning.
  ASSERT_TRUE(db_.Execute("CREATE INDEX ON orders (amount)").ok());
  auto replanned = db_.Execute(sql, cached_);
  ASSERT_TRUE(replanned.ok()) << replanned.status().ToString();
  EXPECT_FALSE(replanned->plan_cache_hit);
  EXPECT_EQ(count_index_scans(replanned->plan), 1);
  EXPECT_GT(replanned->stats.index_seeks, 0u);
  EXPECT_EQ(replanned->rows[0][0].int64_value(), 0);

  // And the refreshed entry serves hits with the index plan.
  auto rehit = db_.Execute(sql, cached_);
  ASSERT_TRUE(rehit.ok());
  EXPECT_TRUE(rehit->plan_cache_hit);
  EXPECT_EQ(count_index_scans(rehit->plan), 1);
  EXPECT_EQ(rehit->rows[0][0].int64_value(), 0);
}

TEST_F(PlanCacheTest, LruEvictsOldestBeyondCapacity) {
  PlanCache cache(2);
  auto entry = std::make_shared<CachedPlan>();
  cache.Insert("a", entry);
  cache.Insert("b", entry);
  EXPECT_NE(cache.Lookup("a"), nullptr);  // bumps "a" over "b"
  cache.Insert("c", entry);               // evicts "b"
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(PlanCacheTest, DateStringCoercionMatchesBinderVerdicts) {
  ASSERT_TRUE(db_.CreateTable("events",
                              Schema({{"d", TypeId::kDate}, {"v", TypeId::kInt64}}),
                              TableDistribution::kHashed, {1})
                  .ok());
  ASSERT_TRUE(db_.Load("events", {{Datum::Date(100), Datum::Int64(1)},
                                  {Datum::Date(16000), Datum::Int64(2)}})
                  .ok());
  // A bare string compared to a date column: the binder coerces the inline
  // literal; the rebind path must do the same for the lifted parameter.
  const std::string sql = "SELECT count(*) FROM events WHERE d < '2013-10-01'";
  auto fresh = db_.Execute(sql);
  auto miss = db_.Execute(sql, cached_);
  auto hit = db_.Execute(sql, cached_);
  ASSERT_TRUE(fresh.ok() && miss.ok() && hit.ok());
  EXPECT_TRUE(hit->plan_cache_hit);
  EXPECT_EQ(fresh->rows, miss->rows);
  EXPECT_EQ(fresh->rows, hit->rows);
  // Malformed date on the hit path: the binder's verdict, not a wrong answer.
  auto bad = db_.Execute("SELECT count(*) FROM events WHERE d < 'not-a-date'",
                         cached_);
  EXPECT_EQ(bad.status().code(), StatusCode::kBindError);
}

// --- Concurrent Execute ------------------------------------------------------

TEST(ConcurrentExecuteTest, ParallelSelectsShareSchedulerAndCache) {
  Database db(2, Executor::Options{.parallel = true});
  ASSERT_TRUE(db.CreatePartitionedTable(
                    "t", Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}),
                    TableDistribution::kHashed, {0}, {{0, PartitionMethod::kRange}},
                    {partition_bounds::IntRanges(0, 25, 8)})
                  .ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 200; ++i) {
    rows.push_back({Datum::Int64(i), Datum::Int64(i)});
  }
  ASSERT_TRUE(db.Load("t", rows).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 12;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &wrong, t]() {
      QueryOptions opts;
      opts.use_plan_cache = true;
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t hi = 10 + ((t * kPerThread + i) * 7) % 190;
        auto result = db.Execute(
            "SELECT count(*) FROM t WHERE k < " + std::to_string(hi), opts);
        if (!result.ok() || result->rows[0][0].int64_value() != hi) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(db.plan_cache().size(), 1u);
}

// --- SessionManager ----------------------------------------------------------

class SessionManagerTest : public ::testing::Test {
 protected:
  SessionManagerTest() : db_(2) {
    MPPDB_CHECK(db_.CreateTable("t",
                                Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}),
                                TableDistribution::kHashed, {0})
                    .ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 100; ++i) {
      rows.push_back({Datum::Int64(i), Datum::Int64(i * 2)});
    }
    MPPDB_CHECK(db_.Load("t", rows).ok());
  }
  Database db_;
};

TEST_F(SessionManagerTest, ServesConcurrentClientsWithCacheHits) {
  SessionManagerConfig config;
  config.worker_threads = 4;
  config.groups = {{"default", 4, 0}};
  SessionManager manager(&db_, config);
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(manager.Submit("SELECT count(*) FROM t WHERE k < " +
                                     std::to_string(10 + i)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->rows[0][0].int64_value(), 10 + static_cast<int64_t>(i));
  }
  manager.Shutdown();
  const SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.completed, 20u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(db_.plan_cache().stats().hits, 19u);
}

TEST_F(SessionManagerTest, SingleWorkerPreservesFifoOrder) {
  SessionManagerConfig config;
  config.worker_threads = 1;
  config.groups = {{"default", 1, 0}};
  config.use_plan_cache = false;
  SessionManager manager(&db_, config);
  // Each UPDATE appends its sequence number; a FIFO dispatcher must apply
  // them in submission order, leaving v = the last submitted value.
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(manager.Submit("UPDATE t SET v = " + std::to_string(i) +
                                     " WHERE k = 0"));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  auto final_v = manager.Run("SELECT v FROM t WHERE k = 0");
  ASSERT_TRUE(final_v.ok());
  EXPECT_EQ(final_v->rows[0][0].int64_value(), 9);
  manager.Shutdown();
}

TEST_F(SessionManagerTest, GroupConcurrencyIsBoundedAndSaturationQueues) {
  SessionManagerConfig config;
  config.worker_threads = 4;
  config.max_queue_depth = 64;
  config.groups = {{"small", 2, 0}};
  SessionManager manager(&db_, config);
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 16; ++i) {
    SubmitOptions submit;
    submit.group = "small";
    futures.push_back(
        manager.Submit("SELECT count(*) FROM t WHERE k < 50", submit));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  manager.Shutdown();
  EXPECT_LE(manager.group_states().at("small").peak_running, 2);
  EXPECT_EQ(manager.stats().completed, 16u);
  EXPECT_EQ(manager.stats().rejected_queue_full, 0u);  // queued, not failed
}

TEST_F(SessionManagerTest, GroupMemoryBudgetIsParceledPerQuery) {
  SessionManagerConfig config;
  config.worker_threads = 2;
  // 2 slots sharing a deliberately tiny budget: each query gets half, and a
  // hash build over the whole table cannot fit its mandatory charges.
  config.groups = {{"tight", 2, 1024}};
  SessionManager manager(&db_, config);
  SubmitOptions submit;
  submit.group = "tight";
  auto starved = manager.Run(
      "SELECT a.k, b.v FROM t a JOIN t b ON a.k = b.k ORDER BY a.k", submit);
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);
  // A scan without memory-hungry operators still fits the parcel.
  auto small = manager.Run("SELECT count(*) FROM t WHERE k < 5", submit);
  EXPECT_TRUE(small.ok()) << small.status().ToString();
  manager.Shutdown();
}

TEST_F(SessionManagerTest, RejectsUnknownGroupAndQueueOverflowWithTypedErrors) {
  SessionManagerConfig config;
  config.worker_threads = 1;
  config.max_queue_depth = 2;
  config.groups = {{"only", 1, 0}};
  SessionManager manager(&db_, config);
  SubmitOptions wrong;
  wrong.group = "absent";
  EXPECT_EQ(manager.Run("SELECT count(*) FROM t", wrong).status().code(),
            StatusCode::kNotFound);
  // Flood a 1-slot group behind a 2-deep queue: at least one rejection, and
  // every rejection is typed kResourceExhausted.
  SubmitOptions submit;
  submit.group = "only";
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(manager.Submit("SELECT sum(v) FROM t WHERE k < 90", submit));
  }
  int rejected = 0;
  for (auto& f : futures) {
    auto result = f.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1);
  manager.Shutdown();
  // Shut-down managers reject rather than hang.
  EXPECT_EQ(manager.Run("SELECT count(*) FROM t", submit).status().code(),
            StatusCode::kCancelled);
}

}  // namespace
}  // namespace mppdb
