// Parallel segment execution: determinism against the serial oracle across
// the TPC-DS-style workload, worker-count independence (pools smaller than
// the segment count), abort propagation on segment failure, and executor
// reusability after failed executions.

#include <gtest/gtest.h>

#include "db/database.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "expr/expr.h"
#include "test_util.h"
#include "workload/tpcds_lite.h"
#include "workload/tpch_lite.h"

namespace mppdb {
namespace {

using testutil::TestDb;

ExprPtr Lit(int64_t v) { return MakeConst(Datum::Int64(v)); }

// Parallel execution must produce row-for-row identical results and
// identical ExecStats (partitions scanned, tuples scanned, rows moved) to
// serial execution for every workload query. Two databases loaded from the
// same deterministic generator have identical storage contents, so any
// divergence is an executor-mode difference.
TEST(ParallelDeterminismTest, TpcdsWorkloadMatchesSerialExactly) {
  workload::TpcdsConfig config;
  config.base_rows = 1000;
  Database serial_db(4);
  Database parallel_db(4, Executor::Options{.parallel = true});
  ASSERT_TRUE(workload::CreateAndLoadTpcds(&serial_db, config).ok());
  ASSERT_TRUE(workload::CreateAndLoadTpcds(&parallel_db, config).ok());

  for (const auto& query : workload::TpcdsQueries(config)) {
    auto serial = serial_db.Run(query.sql);
    auto parallel = parallel_db.Run(query.sql);
    ASSERT_TRUE(serial.ok()) << query.name << ": " << serial.status().ToString();
    ASSERT_TRUE(parallel.ok()) << query.name << ": " << parallel.status().ToString();
    // Row-for-row: same rows in the same order, bitwise-equal datums.
    EXPECT_TRUE(serial->rows == parallel->rows) << query.name;
    EXPECT_TRUE(serial->stats == parallel->stats) << query.name;
  }
}

// Same oracle check over the TPC-H-style table at 8 segments, including an
// aggregation and a partitioned variant with static pruning.
TEST(ParallelDeterminismTest, TpchQueriesMatchSerialAt8Segments) {
  workload::TpchConfig config;
  config.rows = 4000;
  Database serial_db(8);
  Database parallel_db(8, Executor::Options{.parallel = true});
  for (Database* db : {&serial_db, &parallel_db}) {
    ASSERT_TRUE(workload::CreateAndLoadLineitem(
                    db, config, workload::LineitemPartitioning::kMonthly84, "lineitem")
                    .ok());
  }
  const char* queries[] = {
      "SELECT count(*), sum(l_quantity), avg(l_extendedprice) FROM lineitem",
      "SELECT l_suppkey, count(*) FROM lineitem GROUP BY l_suppkey "
      "ORDER BY l_suppkey LIMIT 20",
      "SELECT count(*) FROM lineitem WHERE l_shipdate BETWEEN '1999-01-01' AND "
      "'1999-03-31'",
  };
  for (const char* sql : queries) {
    auto serial = serial_db.Run(sql);
    auto parallel = parallel_db.Run(sql);
    ASSERT_TRUE(serial.ok()) << sql << ": " << serial.status().ToString();
    ASSERT_TRUE(parallel.ok()) << sql << ": " << parallel.status().ToString();
    EXPECT_TRUE(serial->rows == parallel->rows) << sql;
    EXPECT_TRUE(serial->stats == parallel->stats) << sql;
  }
}

// Morsel scheduling decouples segments from threads: a pool capped below
// num_segments (even a single worker) still runs the plan in parallel mode —
// Motion arrival is a counter bumped by suspending tasks, not a blocked
// thread — and matches the serial oracle row for row. The old executor
// silently fell back to serial here; that fallback is gone.
TEST(ParallelExecTest, PoolSmallerThanSegmentCountStillRunsParallel) {
  for (int max_workers : {1, 2, 3}) {
    TestDb db(4);
    const TableDescriptor* t =
        db.CreatePlainTable("t", Schema({{"k", TypeId::kInt64}}), {0});
    std::vector<Row> rows;
    for (int64_t i = 0; i < 40; ++i) rows.push_back({Datum::Int64(i)});
    db.Insert(t, rows);

    auto make_plan = [&]() {
      auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                                  std::vector<ColRefId>{1});
      return std::make_shared<MotionNode>(MotionKind::kGather,
                                          std::vector<ColRefId>{}, scan);
    };
    Executor serial(&db.catalog, &db.storage, Executor::Options{});
    auto oracle = serial.Execute(make_plan());
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    Executor capped(&db.catalog, &db.storage,
                    Executor::Options{.parallel = true, .max_workers = max_workers});
    auto result = capped.Execute(make_plan());
    ASSERT_TRUE(result.ok()) << "max_workers=" << max_workers << ": "
                             << result.status().ToString();
    EXPECT_TRUE(*result == *oracle) << "max_workers=" << max_workers;
    EXPECT_EQ(capped.stats().tuples_scanned, 40u);
    EXPECT_TRUE(capped.stats() == serial.stats()) << "max_workers=" << max_workers;
  }
}

// A failure on one segment only (data-dependent division by zero on the
// segment holding k = 7) must abort the peers parked at the Gather barrier
// instead of deadlocking, and must surface the originating error.
TEST(ParallelExecTest, SingleSegmentFailureAbortsPeersAtMotionBarrier) {
  TestDb db(8);
  const TableDescriptor* t =
      db.CreatePlainTable("t", Schema({{"k", TypeId::kInt64}}), {0});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 64; ++i) rows.push_back({Datum::Int64(i)});
  db.Insert(t, rows);

  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                              std::vector<ColRefId>{1});
  // 10 / (k - 7) > 0: errors exactly on the row k = 7, which lives on one
  // segment of the hash distribution.
  ExprPtr pred = MakeComparison(
      CompareOp::kGt,
      MakeArith(ArithOp::kDiv, Lit(10),
                MakeArith(ArithOp::kSub, MakeColumnRef(1, "k", TypeId::kInt64),
                          Lit(7))),
      Lit(0));
  auto filter = std::make_shared<FilterNode>(pred, scan);
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, filter);

  Executor parallel(&db.catalog, &db.storage, Executor::Options{.parallel = true});
  auto result = parallel.Execute(gather);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("division by zero"), std::string::npos)
      << result.status().ToString();

  // The failed run leaves a clean executor: zeroed stats, reusable.
  EXPECT_TRUE(parallel.stats() == ExecStats());
  auto ok_scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                                 std::vector<ColRefId>{1});
  auto ok_plan = std::make_shared<MotionNode>(MotionKind::kGather,
                                              std::vector<ColRefId>{}, ok_scan);
  auto retry = parallel.Execute(ok_plan);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->size(), 64u);
  EXPECT_EQ(parallel.stats().tuples_scanned, 64u);
}

// Failure paths must leave the executor clean and reusable in both modes:
// stats zeroed, no stale propagation channels or Motion buffers.
TEST(ParallelExecTest, ExecutorReusableAfterFailure) {
  for (bool parallel_mode : {false, true}) {
    TestDb db(4);
    const TableDescriptor* t =
        db.CreatePlainTable("t", Schema({{"k", TypeId::kInt64}}), {0});
    db.Insert(t, {{Datum::Int64(1)}, {Datum::Int64(2)}});

    Executor executor(&db.catalog, &db.storage,
                      Executor::Options{.parallel = parallel_mode});
    // Scan of a table with no storage: fails on every segment.
    auto bogus = std::make_shared<TableScanNode>(/*table_oid=*/987654,
                                                 /*unit_oid=*/987654,
                                                 std::vector<ColRefId>{1});
    auto failed = executor.Execute(bogus);
    ASSERT_FALSE(failed.ok());
    EXPECT_TRUE(executor.stats() == ExecStats()) << "mode parallel=" << parallel_mode;

    // A DynamicScan whose selector never ran exercises the stale-channel
    // check; a fresh executor state must report the ordering bug, not serve
    // a channel left over from a previous run.
    auto orphan_scan = std::make_shared<DynamicScanNode>(t->oid, /*scan_id=*/1,
                                                         std::vector<ColRefId>{1});
    auto orphan = executor.Execute(orphan_scan);
    ASSERT_FALSE(orphan.ok());
    EXPECT_NE(orphan.status().message().find("before its PartitionSelector"),
              std::string::npos);

    auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                                std::vector<ColRefId>{1});
    auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                               std::vector<ColRefId>{}, scan);
    auto retry = executor.Execute(gather);
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    EXPECT_EQ(retry->size(), 2u);
    EXPECT_EQ(executor.stats().tuples_scanned, 2u);
  }
}

}  // namespace
}  // namespace mppdb
