#include <gtest/gtest.h>

#include "exec/executor.h"
#include "expr/expr.h"
#include "optimizer/placement.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::D;
using testutil::SameRows;
using testutil::TestDb;

// Finds the first node of the given kind in pre-order; nullptr if absent.
PhysPtr FindNode(const PhysPtr& plan, PhysNodeKind kind) {
  if (plan->kind() == kind) return plan;
  for (const auto& child : plan->children()) {
    if (PhysPtr found = FindNode(child, kind)) return found;
  }
  return nullptr;
}

int CountNodes(const PhysPtr& plan, PhysNodeKind kind) {
  int count = plan->kind() == kind ? 1 : 0;
  for (const auto& child : plan->children()) count += CountNodes(child, kind);
  return count;
}

class PlacementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orders_ = db_.CreateOrdersTable(24);
    // One row per month at day 15.
    std::vector<Row> rows;
    for (int year : {2012, 2013}) {
      for (int month = 1; month <= 12; ++month) {
        rows.push_back({Datum::Date(date::FromYMD(year, month, 15)),
                        Datum::Double(month), Datum::String("r")});
      }
    }
    db_.Insert(orders_, rows);

    dates_ = db_.CreatePlainTable(
        "date_dim",
        Schema({{"id", TypeId::kDate}, {"month", TypeId::kInt32}}), {0});
    std::vector<Row> dim;
    for (int month = 1; month <= 12; ++month) {
      dim.push_back({Datum::Date(date::FromYMD(2013, month, 15)),
                     Datum::Int32(month)});
    }
    db_.Insert(dates_, dim);
  }

  PhysPtr OrdersScan(int scan_id = 1) {
    return std::make_shared<DynamicScanNode>(orders_->oid, scan_id,
                                             std::vector<ColRefId>{1, 2, 3});
  }

  ExprPtr DateCol() { return MakeColumnRef(1, "date", TypeId::kDate); }

  TestDb db_{4};
  const TableDescriptor* orders_ = nullptr;
  const TableDescriptor* dates_ = nullptr;
};

TEST_F(PlacementTest, BareDynamicScanGetsSelectAllSelector) {
  // Fig. 5(a): full scan.
  auto placed = PlaceAllPartSelectors(OrdersScan(), db_.catalog);
  ASSERT_TRUE(placed.ok()) << placed.status().ToString();
  EXPECT_EQ((*placed)->kind(), PhysNodeKind::kSequence);
  auto selector = FindNode(*placed, PhysNodeKind::kPartitionSelector);
  ASSERT_NE(selector, nullptr);
  const auto& sel = static_cast<const PartitionSelectorNode&>(*selector);
  EXPECT_FALSE(sel.HasChild());
  EXPECT_EQ(sel.level_predicates()[0], nullptr);

  auto result = db_.executor.Execute(*placed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 24u);
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 24u);
}

TEST_F(PlacementTest, FilterPredicatePushedIntoSelector) {
  // Fig. 5(c): range selection; Algorithm 3 collects the key conjuncts.
  ExprPtr pred = Conj({MakeComparison(CompareOp::kGe, DateCol(),
                                      MakeConst(D("2013-10-01"))),
                       MakeComparison(CompareOp::kLe, DateCol(),
                                      MakeConst(D("2013-12-31"))),
                       MakeComparison(CompareOp::kGt,
                                      MakeColumnRef(2, "amount", TypeId::kDouble),
                                      MakeConst(Datum::Double(0)))});
  PhysPtr plan = std::make_shared<FilterNode>(pred, OrdersScan());
  auto placed = PlaceAllPartSelectors(plan, db_.catalog);
  ASSERT_TRUE(placed.ok());

  auto selector = FindNode(*placed, PhysNodeKind::kPartitionSelector);
  ASSERT_NE(selector, nullptr);
  const auto& sel = static_cast<const PartitionSelectorNode&>(*selector);
  ASSERT_NE(sel.level_predicates()[0], nullptr);
  // Only the date conjuncts made it into the selector predicate.
  EXPECT_FALSE(ReferencesColumn(sel.level_predicates()[0], 2));
  EXPECT_TRUE(ReferencesColumn(sel.level_predicates()[0], 1));

  auto result = db_.executor.Execute(*placed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 3u);
}

TEST_F(PlacementTest, JoinPredicateInducesPassThroughSelector) {
  // Fig. 5(d): HashJoin(build=date_dim, probe=DynamicScan(orders)) on the
  // partition key. Algorithm 4 pushes the augmented spec to the build side.
  auto dim_scan = std::make_shared<TableScanNode>(dates_->oid, dates_->oid,
                                                  std::vector<ColRefId>{11, 12});
  auto bcast = std::make_shared<MotionNode>(MotionKind::kBroadcast,
                                            std::vector<ColRefId>{}, dim_scan);
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{1}, nullptr,
      bcast, OrdersScan());
  auto placed = PlaceAllPartSelectors(join, db_.catalog);
  ASSERT_TRUE(placed.ok()) << placed.status().ToString();

  // No Sequence: the selector is a pass-through above the build side.
  EXPECT_EQ(CountNodes(*placed, PhysNodeKind::kSequence), 0);
  auto selector = FindNode(*placed, PhysNodeKind::kPartitionSelector);
  ASSERT_NE(selector, nullptr);
  const auto& sel = static_cast<const PartitionSelectorNode&>(*selector);
  EXPECT_TRUE(sel.HasChild());
  ASSERT_NE(sel.level_predicates()[0], nullptr);
  EXPECT_TRUE(ReferencesColumn(sel.level_predicates()[0], 11));

  // The selector sits inside the build subtree of the join.
  const auto& join_node = static_cast<const HashJoinNode&>(**placed);
  EXPECT_EQ(join_node.kind(), PhysNodeKind::kHashJoin);
  EXPECT_NE(FindNode(join_node.child(0), PhysNodeKind::kPartitionSelector), nullptr);

  auto result = db_.executor.Execute(*placed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 12u);  // 2013 months match
  // Only the 12 partitions of 2013 get scanned.
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 12u);
}

TEST_F(PlacementTest, SpecForScanInOuterChildStaysOnThatSide) {
  // DynamicScan on the build side: the join predicate cannot prune it
  // (values of the probe side are not yet available); Algorithm 4 line 9.
  auto dim_scan = std::make_shared<TableScanNode>(dates_->oid, dates_->oid,
                                                  std::vector<ColRefId>{11, 12});
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{1}, std::vector<ColRefId>{11}, nullptr,
      OrdersScan(), dim_scan);
  auto placed = PlaceAllPartSelectors(join, db_.catalog);
  ASSERT_TRUE(placed.ok());
  // Selector resolved adjacent to the scan (Sequence on the build side).
  auto top_join = *placed;
  ASSERT_EQ(top_join->kind(), PhysNodeKind::kHashJoin);
  EXPECT_EQ(top_join->child(0)->kind(), PhysNodeKind::kSequence);
  const auto& sel = static_cast<const PartitionSelectorNode&>(
      *FindNode(top_join, PhysNodeKind::kPartitionSelector));
  EXPECT_FALSE(sel.HasChild());
  EXPECT_EQ(sel.level_predicates()[0], nullptr);  // no static pred available
}

TEST_F(PlacementTest, MotionOnProbeSideFallsBackToAdjacentSelector) {
  // A Redistribute between the join and the DynamicScan would strand the
  // selector across a slice boundary; placement must fall back.
  auto dim_scan = std::make_shared<TableScanNode>(dates_->oid, dates_->oid,
                                                  std::vector<ColRefId>{11, 12});
  auto probe = std::make_shared<MotionNode>(MotionKind::kRedistribute,
                                            std::vector<ColRefId>{1}, OrdersScan());
  auto bcast = std::make_shared<MotionNode>(MotionKind::kBroadcast,
                                            std::vector<ColRefId>{}, dim_scan);
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{1}, nullptr,
      bcast, probe);
  auto placed = PlaceAllPartSelectors(join, db_.catalog);
  ASSERT_TRUE(placed.ok()) << placed.status().ToString();
  // Selector ends up below the probe-side Motion, adjacent to the scan.
  auto top = *placed;
  auto probe_side = top->child(1);
  EXPECT_EQ(probe_side->kind(), PhysNodeKind::kMotion);
  EXPECT_EQ(probe_side->child(0)->kind(), PhysNodeKind::kSequence);
  // And the whole plan still validates + executes (scanning all parts).
  auto result = db_.executor.Execute(top);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 24u);
}

TEST_F(PlacementTest, ThreeTableQueryMatchesFig8Shape) {
  // Paper Fig. 8: sales_fact ⋈ date_dim ⋈ customer_dim with a range filter
  // on date_dim.month and both fact & dim partitioned.
  //
  // Here: date_dim is the partitioned `orders` table standing in (its
  // partition key is `date`), and sales is a second partitioned table keyed
  // by date.
  const TableDescriptor* sales = db_.CreateOrdersTable(24, "sales_fact");
  std::vector<Row> sales_rows;
  for (int month = 1; month <= 12; ++month) {
    sales_rows.push_back({Datum::Date(date::FromYMD(2013, month, 15)),
                          Datum::Double(month), Datum::String("c")});
  }
  db_.Insert(sales, sales_rows);

  // date_dim := orders (scan id 1, cols 1-3); sales_fact := scan id 2
  // (cols 4-6). Join on date.
  auto fact_scan = std::make_shared<DynamicScanNode>(sales->oid, 2,
                                                     std::vector<ColRefId>{4, 5, 6});
  ExprPtr dim_filter = Conj({MakeComparison(CompareOp::kGe, DateCol(),
                                            MakeConst(D("2013-10-01"))),
                             MakeComparison(CompareOp::kLe, DateCol(),
                                            MakeConst(D("2013-12-31")))});
  PhysPtr dim_side = std::make_shared<FilterNode>(dim_filter, OrdersScan(1));
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{1}, std::vector<ColRefId>{4}, nullptr,
      dim_side, fact_scan);

  auto placed = PlaceAllPartSelectors(join, db_.catalog);
  ASSERT_TRUE(placed.ok()) << placed.status().ToString();
  EXPECT_EQ(CountNodes(*placed, PhysNodeKind::kPartitionSelector), 2);

  auto result = db_.executor.Execute(*placed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 3u);  // Oct-Dec 2013
  // Both tables pruned to Q4-2013: 3 partitions each.
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders_->oid), 3u);
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(sales->oid), 3u);
}

TEST_F(PlacementTest, MultiLevelPredicatesSplitByLevel) {
  // Paper §2.4 / Fig. 9: orders partitioned by (date, region).
  Schema schema({{"date", TypeId::kDate},
                 {"amount", TypeId::kDouble},
                 {"region", TypeId::kString}});
  auto oid = db_.catalog.CreatePartitionedTable(
      "orders2", schema, TableDistribution::kHashed, {1},
      {{0, PartitionMethod::kRange}, {2, PartitionMethod::kList}},
      {partition_bounds::Monthly(2012, 1, 24),
       partition_bounds::ListValues({Datum::String("Region 1"),
                                     Datum::String("Region 2")})});
  ASSERT_TRUE(oid.ok());
  const TableDescriptor* orders2 = db_.catalog.FindTable(*oid);
  ASSERT_TRUE(db_.storage.CreateStorage(orders2).ok());
  std::vector<Row> rows;
  for (int month = 1; month <= 12; ++month) {
    for (int region = 1; region <= 2; ++region) {
      rows.push_back({Datum::Date(date::FromYMD(2012, month, 10)),
                      Datum::Double(month),
                      Datum::String("Region " + std::to_string(region))});
    }
  }
  db_.Insert(orders2, rows);

  auto scan = std::make_shared<DynamicScanNode>(orders2->oid, 5,
                                                std::vector<ColRefId>{1, 2, 3});
  ExprPtr pred = Conj({MakeComparison(CompareOp::kEq, DateCol(),
                                      MakeConst(D("2012-01-10"))),
                       MakeComparison(CompareOp::kEq,
                                      MakeColumnRef(3, "region", TypeId::kString),
                                      MakeConst(Datum::String("Region 1")))});
  PhysPtr plan = std::make_shared<FilterNode>(pred, scan);
  auto placed = PlaceAllPartSelectors(plan, db_.catalog);
  ASSERT_TRUE(placed.ok());
  const auto& sel = static_cast<const PartitionSelectorNode&>(
      *FindNode(*placed, PhysNodeKind::kPartitionSelector));
  ASSERT_EQ(sel.level_predicates().size(), 2u);
  EXPECT_NE(sel.level_predicates()[0], nullptr);
  EXPECT_NE(sel.level_predicates()[1], nullptr);

  auto result = db_.executor.Execute(*placed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
  // Exactly one leaf (Jan-2012, Region 1) out of 48 scanned — Fig. 10 row 3.
  EXPECT_EQ(db_.executor.stats().PartitionsScanned(orders2->oid), 1u);
}

TEST_F(PlacementTest, ValidatorRejectsScanWithoutSelector) {
  EXPECT_FALSE(ValidateSelectorPlacement(OrdersScan()).ok());
}

TEST_F(PlacementTest, ValidatorRejectsSelectorAcrossMotion) {
  // Selector below a Motion, scan above it: different slices.
  auto selector = std::make_shared<PartitionSelectorNode>(
      orders_->oid, 1, std::vector<ColRefId>{1}, std::vector<ExprPtr>{nullptr},
      nullptr);
  auto moved = std::make_shared<MotionNode>(MotionKind::kGather,
                                            std::vector<ColRefId>{}, selector);
  auto plan = std::make_shared<SequenceNode>(
      std::vector<PhysPtr>{moved, OrdersScan()});
  EXPECT_FALSE(ValidateSelectorPlacement(plan).ok());
}

TEST_F(PlacementTest, ValidatorAcceptsAdjacentPair) {
  auto selector = std::make_shared<PartitionSelectorNode>(
      orders_->oid, 1, std::vector<ColRefId>{1}, std::vector<ExprPtr>{nullptr},
      nullptr);
  auto plan = std::make_shared<SequenceNode>(
      std::vector<PhysPtr>{selector, OrdersScan()});
  EXPECT_TRUE(ValidateSelectorPlacement(plan).ok());
}

TEST_F(PlacementTest, CollectSkipsResolvedScans) {
  auto selector = std::make_shared<PartitionSelectorNode>(
      orders_->oid, 1, std::vector<ColRefId>{1}, std::vector<ExprPtr>{nullptr},
      nullptr);
  auto plan = std::make_shared<SequenceNode>(
      std::vector<PhysPtr>{selector, OrdersScan()});
  EXPECT_TRUE(CollectUnresolvedScans(plan, db_.catalog).empty());
  EXPECT_EQ(CollectUnresolvedScans(OrdersScan(), db_.catalog).size(), 1u);
}

TEST_F(PlacementTest, PlanSizeIndependentOfSelectedPartitionCount) {
  // The compactness claim (§4.4.1): the same plan shape serializes to the
  // same size regardless of how many partitions the predicate selects.
  auto plan_for = [&](const char* hi) {
    ExprPtr pred = MakeComparison(CompareOp::kLt, DateCol(), MakeConst(D(hi)));
    PhysPtr plan = std::make_shared<FilterNode>(pred, OrdersScan());
    auto placed = PlaceAllPartSelectors(plan, db_.catalog);
    MPPDB_CHECK(placed.ok());
    return SerializePlan(*placed).size();
  };
  size_t size_1 = plan_for("2012-02-01");   // 1 partition
  size_t size_12 = plan_for("2013-01-01");  // 12 partitions
  size_t size_24 = plan_for("2014-01-01");  // all 24
  EXPECT_EQ(size_1, size_12);
  EXPECT_EQ(size_12, size_24);
}

}  // namespace
}  // namespace mppdb
