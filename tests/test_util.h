#ifndef MPPDB_TESTS_TEST_UTIL_H_
#define MPPDB_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/macros.h"
#include "exec/executor.h"
#include "storage/storage.h"
#include "types/date.h"

namespace mppdb {
namespace testutil {

/// Catalog + storage + executor wired together for tests.
struct TestDb {
  explicit TestDb(int num_segments = 4)
      : storage(num_segments), executor(&catalog, &storage) {}

  Catalog catalog;
  StorageEngine storage;
  Executor executor;

  const TableDescriptor* CreateOrdersTable(int months = 24,
                                           const std::string& name = "orders") {
    Schema schema({{"date", TypeId::kDate},
                   {"amount", TypeId::kDouble},
                   {"region", TypeId::kString}});
    auto oid = catalog.CreatePartitionedTable(
        name, schema, TableDistribution::kHashed, {1},
        {{0, PartitionMethod::kRange}}, {partition_bounds::Monthly(2012, 1, months)});
    MPPDB_CHECK(oid.ok());
    const TableDescriptor* table = catalog.FindTable(*oid);
    MPPDB_CHECK(storage.CreateStorage(table).ok());
    return table;
  }

  /// R(a BIGINT, b BIGINT) partitioned on b into `parts` ranges of width
  /// `step` starting at 0, hash-distributed on a.
  const TableDescriptor* CreateIntPartitionedTable(const std::string& name, int parts,
                                                   int64_t step = 10) {
    Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}});
    auto oid = catalog.CreatePartitionedTable(
        name, schema, TableDistribution::kHashed, {0},
        {{1, PartitionMethod::kRange}}, {partition_bounds::IntRanges(0, step, parts)});
    MPPDB_CHECK(oid.ok());
    const TableDescriptor* table = catalog.FindTable(*oid);
    MPPDB_CHECK(storage.CreateStorage(table).ok());
    return table;
  }

  const TableDescriptor* CreatePlainTable(const std::string& name, Schema schema,
                                          std::vector<int> dist_cols = {0}) {
    auto oid = catalog.CreateTable(name, std::move(schema), TableDistribution::kHashed,
                                   std::move(dist_cols));
    MPPDB_CHECK(oid.ok());
    const TableDescriptor* table = catalog.FindTable(*oid);
    MPPDB_CHECK(storage.CreateStorage(table).ok());
    return table;
  }

  void Insert(const TableDescriptor* table, const std::vector<Row>& rows) {
    Status st = storage.GetStore(table->oid)->InsertBatch(rows);
    MPPDB_CHECK(st.ok());
  }
};

/// Sorted copies for order-insensitive result comparison.
inline std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = Datum::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

/// Datum equality with a relative tolerance for doubles: plans that
/// aggregate in a different order (e.g. two-phase aggregation) legitimately
/// produce last-bit differences in floating-point sums.
inline bool DatumApproxEqual(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) return a.is_null() == b.is_null();
  if (a.type() == TypeId::kDouble || b.type() == TypeId::kDouble) {
    double x = a.AsDouble(), y = b.AsDouble();
    double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= 1e-9 * scale;
  }
  return Datum::Compare(a, b) == 0;
}

inline bool SameRows(std::vector<Row> a, std::vector<Row> b) {
  if (a.size() != b.size()) return false;
  a = Sorted(std::move(a));
  b = Sorted(std::move(b));
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (!DatumApproxEqual(a[i][j], b[i][j])) return false;
    }
  }
  return true;
}

inline Datum D(const char* ymd) { return Datum::DateFromString(ymd); }

}  // namespace testutil
}  // namespace mppdb

#endif  // MPPDB_TESTS_TEST_UTIL_H_
