#include <gtest/gtest.h>

#include "runtime/partition_functions.h"
#include "runtime/propagation.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::D;
using testutil::TestDb;

class PartitionFunctionsTest : public ::testing::Test {
 protected:
  PartitionFunctionsTest() { orders_ = db_.CreateOrdersTable(24); }
  TestDb db_{2};
  const TableDescriptor* orders_ = nullptr;
};

TEST_F(PartitionFunctionsTest, PartitionExpansion) {
  // Table 1: partition_expansion(rootOid) returns all child partition OIDs.
  auto oids = partition_functions::PartitionExpansion(db_.catalog, orders_->oid);
  ASSERT_TRUE(oids.ok());
  EXPECT_EQ(oids->size(), 24u);
}

TEST_F(PartitionFunctionsTest, PartitionExpansionErrors) {
  EXPECT_EQ(partition_functions::PartitionExpansion(db_.catalog, 424242).status().code(),
            StatusCode::kNotFound);
  const TableDescriptor* plain =
      db_.CreatePlainTable("plain", Schema({{"x", TypeId::kInt64}}));
  EXPECT_EQ(partition_functions::PartitionExpansion(db_.catalog, plain->oid)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PartitionFunctionsTest, PartitionSelection) {
  // Table 1: partition_selection(rootOid, value) = OID of the child holding
  // the value; ⊥ (kInvalidOid) outside the domain.
  auto oid = partition_functions::PartitionSelection(db_.catalog, orders_->oid,
                                                     D("2013-07-04"));
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(*oid, orders_->partition_scheme->RouteValues({D("2013-07-01")}));
  auto missing = partition_functions::PartitionSelection(db_.catalog, orders_->oid,
                                                         D("2031-01-01"));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(*missing, kInvalidOid);
  // Wrong number of key values is an error.
  EXPECT_FALSE(partition_functions::PartitionSelection(
                   db_.catalog, orders_->oid,
                   std::vector<Datum>{D("2013-07-04"), Datum::Int64(1)})
                   .ok());
}

TEST_F(PartitionFunctionsTest, PartitionConstraints) {
  // Table 1: partition_constraints(rootOid) returns (OID, interval) rows;
  // Fig. 15(b)'s range-based selection filters over these.
  auto leaves = partition_functions::PartitionConstraints(db_.catalog, orders_->oid);
  ASSERT_TRUE(leaves.ok());
  ASSERT_EQ(leaves->size(), 24u);
  // Count partitions whose range starts before 2012-04-01 — the Fig. 15(b)
  // pattern "range_start < constant": 3 partitions (Jan, Feb, Mar 2012).
  int selected = 0;
  for (const LeafPartitionInfo& leaf : *leaves) {
    const Interval& range = leaf.level_constraints[0].intervals()[0];
    if (Datum::Compare(range.lo().value, D("2012-04-01")) < 0) ++selected;
  }
  EXPECT_EQ(selected, 3);
}

TEST_F(PartitionFunctionsTest, PartitionPropagation) {
  // Table 1: partition_propagation(scanId, oid) pushes into the channel the
  // DynamicScan with that id consumes.
  PartitionPropagationHub hub(2);
  partition_functions::PartitionPropagation(&hub, 0, 7, 101);
  partition_functions::PartitionPropagation(&hub, 0, 7, 102);
  partition_functions::PartitionPropagation(&hub, 0, 7, 101);  // duplicate
  ASSERT_TRUE(hub.HasChannel(0, 7));
  EXPECT_EQ(hub.Selected(0, 7), (std::vector<Oid>{101, 102}));
  // Other segments/scans unaffected.
  EXPECT_FALSE(hub.HasChannel(1, 7));
  EXPECT_FALSE(hub.HasChannel(0, 8));
}

TEST(PropagationHubTest, OpenChannelDistinguishesEmptyFromUnopened) {
  PartitionPropagationHub hub(1);
  EXPECT_FALSE(hub.HasChannel(0, 1));
  hub.OpenChannel(0, 1);
  EXPECT_TRUE(hub.HasChannel(0, 1));
  EXPECT_TRUE(hub.Selected(0, 1).empty());
}

TEST(PropagationHubTest, ResetClearsAllChannels) {
  PartitionPropagationHub hub(2);
  hub.Push(0, 1, 10);
  hub.Push(1, 2, 20);
  hub.Reset();
  EXPECT_FALSE(hub.HasChannel(0, 1));
  EXPECT_FALSE(hub.HasChannel(1, 2));
}

TEST(PropagationHubTest, PreservesFirstPushOrder) {
  PartitionPropagationHub hub(1);
  for (Oid oid : {5, 3, 9, 3, 5, 1}) hub.Push(0, 1, oid);
  EXPECT_EQ(hub.Selected(0, 1), (std::vector<Oid>{5, 3, 9, 1}));
}

}  // namespace
}  // namespace mppdb
