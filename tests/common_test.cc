#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mppdb {
namespace {

TEST(StatusTest, OkAndErrorBasics) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::NotFound("thing missing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NotFound: thing missing");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kNotImplemented, StatusCode::kInternal, StatusCode::kParseError,
        StatusCode::kBindError, StatusCode::kPlanError,
        StatusCode::kExecutionError, StatusCode::kCancelled,
        StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
        StatusCode::kTransientIO}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, ResilienceTaxonomy) {
  EXPECT_EQ(Status::Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("d").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("r").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::TransientIO("t").code(), StatusCode::kTransientIO);
  // Only transient I/O faults are retriable; cancellation, deadline expiry,
  // and budget exhaustion are deliberate verdicts.
  EXPECT_TRUE(Status::TransientIO("t").IsRetriable());
  EXPECT_FALSE(Status::Cancelled("c").IsRetriable());
  EXPECT_FALSE(Status::DeadlineExceeded("d").IsRetriable());
  EXPECT_FALSE(Status::ResourceExhausted("r").IsRetriable());
  EXPECT_FALSE(Status::Internal("i").IsRetriable());
  EXPECT_FALSE(Status::OK().IsRetriable());
}

TEST(ResultTest, ValueAndStatusAccess) {
  Result<int> value(42);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  EXPECT_TRUE(value.status().ok());

  Result<int> error(Status::Internal("boom"));
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, OkStatusNormalizedToInternal) {
  // Constructing a Result from an OK status is a bug; it must still be an
  // error, not a trap.
  Result<int> weird{Status::OK()};
  EXPECT_FALSE(weird.ok());
  EXPECT_EQ(weird.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> holder(std::make_unique<int>(5));
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> taken = std::move(holder).value();
  EXPECT_EQ(*taken, 5);
}

namespace {
Result<int> FailingStep() { return Status::OutOfRange("nope"); }
Status UsesAssignOrReturn(int* out) {
  MPPDB_ASSIGN_OR_RETURN(*out, FailingStep());
  return Status::OK();
}
}  // namespace

TEST(MacroTest, AssignOrReturnPropagates) {
  int out = 0;
  Status st = UsesAssignOrReturn(&out);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("MiXeD_42"), "mixed_42");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_EQ(Repeat("ab", 3), "ababab");
}

}  // namespace
}  // namespace mppdb
