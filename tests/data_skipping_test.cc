// Zone-map data skipping: sargable-predicate analysis decision table, chunk
// synopsis maintenance under DML (randomized, against a recomputed-from-rows
// oracle), and end-to-end skip behavior — rows/errors identical with skipping
// on and off, with chunks_skipped / units_skipped proving skips happened.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "expr/expr.h"
#include "expr/sargable.h"
#include "storage/synopsis.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::TestDb;

ExprPtr Lit(int64_t v) { return MakeConst(Datum::Int64(v)); }
ExprPtr ColA() { return MakeColumnRef(1, "a", TypeId::kInt64); }
ExprPtr ColB() { return MakeColumnRef(2, "b", TypeId::kInt64); }

// --- Sargable analysis decision table ---------------------------------------

TEST(SargableAnalysisTest, ConjunctsWithRangeTestsPrune) {
  ExprPtr pred = Conj({MakeComparison(CompareOp::kLt, ColA(), Lit(5)),
                       MakeComparison(CompareOp::kEq, ColB(), Lit(3))});
  SargablePredicate analyzed = AnalyzeSargable(pred);
  EXPECT_FALSE(analyzed.truncated);
  ASSERT_EQ(analyzed.prefix.size(), 2u);
  EXPECT_EQ(analyzed.prefix[0].tests.size(), 1u);
  EXPECT_EQ(analyzed.prefix[1].tests.size(), 1u);
  EXPECT_EQ(analyzed.prefix[0].tests[0].column, 1);
  EXPECT_EQ(analyzed.prefix[1].tests[0].column, 2);
}

TEST(SargableAnalysisTest, SwappedComparisonNormalizes) {
  // 5 > a is the same sargable test as a < 5.
  ExprPtr pred = MakeComparison(CompareOp::kGt, Lit(5), ColA());
  SargablePredicate analyzed = AnalyzeSargable(pred);
  ASSERT_EQ(analyzed.prefix.size(), 1u);
  ASSERT_EQ(analyzed.prefix[0].tests.size(), 1u);
  const ConstraintSet& values = analyzed.prefix[0].tests[0].values;
  EXPECT_TRUE(values.Contains(Datum::Int64(4)));
  EXPECT_FALSE(values.Contains(Datum::Int64(5)));
}

TEST(SargableAnalysisTest, ErroringConjunctTruncatesPrefix) {
  // 1/0 = 1 can error, so it and everything after it must stay residual.
  ExprPtr div = MakeArith(ArithOp::kDiv, Lit(1), Lit(0));
  ExprPtr pred = Conj({MakeComparison(CompareOp::kLt, ColA(), Lit(5)),
                       MakeComparison(CompareOp::kEq, div, Lit(1)),
                       MakeComparison(CompareOp::kEq, ColB(), Lit(3))});
  SargablePredicate analyzed = AnalyzeSargable(pred);
  EXPECT_TRUE(analyzed.truncated);
  ASSERT_EQ(analyzed.prefix.size(), 1u);
  EXPECT_EQ(analyzed.prefix[0].tests.size(), 1u);
}

TEST(SargableAnalysisTest, ConstantTrueInOrDisablesPruning) {
  // TRUE OR a < 5 is never false; it must contribute no tests (but is still
  // error-free, so it extends the prefix for later conjuncts).
  ExprPtr pred = MakeOr({MakeConst(Datum::Bool(true)),
                         MakeComparison(CompareOp::kLt, ColA(), Lit(5))});
  SargablePredicate analyzed = AnalyzeSargable(pred);
  EXPECT_FALSE(analyzed.truncated);
  ASSERT_EQ(analyzed.prefix.size(), 1u);
  EXPECT_TRUE(analyzed.prefix[0].tests.empty());
}

TEST(SargableAnalysisTest, OrOfSargableDisjunctsCombines) {
  ExprPtr pred = MakeOr({MakeComparison(CompareOp::kLt, ColA(), Lit(5)),
                         MakeComparison(CompareOp::kGt, ColA(), Lit(100))});
  SargablePredicate analyzed = AnalyzeSargable(pred);
  ASSERT_EQ(analyzed.prefix.size(), 1u);
  // Both disjuncts' tests must miss for the conjunct to be provably false.
  EXPECT_EQ(analyzed.prefix[0].tests.size(), 2u);
}

TEST(SargableAnalysisTest, InListWithNullItemCannotPrune) {
  // a IN (1, NULL): a non-matching probe yields NULL, never FALSE.
  ExprPtr with_null = MakeInList({ColA(), Lit(1), MakeConst(Datum::Null())});
  SargablePredicate analyzed = AnalyzeSargable(with_null);
  EXPECT_FALSE(analyzed.truncated);
  ASSERT_EQ(analyzed.prefix.size(), 1u);
  EXPECT_TRUE(analyzed.prefix[0].tests.empty());

  ExprPtr clean = MakeInList({ColA(), Lit(1), Lit(7)});
  analyzed = AnalyzeSargable(clean);
  ASSERT_EQ(analyzed.prefix.size(), 1u);
  ASSERT_EQ(analyzed.prefix[0].tests.size(), 1u);
  EXPECT_TRUE(analyzed.prefix[0].tests[0].values.Contains(Datum::Int64(7)));
  EXPECT_FALSE(analyzed.prefix[0].tests[0].values.Contains(Datum::Int64(2)));
}

TEST(SargableAnalysisTest, NullTests) {
  SargablePredicate is_null =
      AnalyzeSargable(std::make_shared<IsNullExpr>(ColA()));
  ASSERT_EQ(is_null.prefix.size(), 1u);
  ASSERT_EQ(is_null.prefix[0].tests.size(), 1u);
  EXPECT_EQ(is_null.prefix[0].tests[0].kind, SargableTest::Kind::kIsNull);

  SargablePredicate not_null =
      AnalyzeSargable(MakeNot(std::make_shared<IsNullExpr>(ColA())));
  ASSERT_EQ(not_null.prefix.size(), 1u);
  ASSERT_EQ(not_null.prefix[0].tests.size(), 1u);
  EXPECT_EQ(not_null.prefix[0].tests[0].kind, SargableTest::Kind::kNotNull);
}

TEST(SargableAnalysisTest, ComparisonWithNullConstantIsErrorFreeButNotSargable) {
  // a < NULL is NULL on every row: never false, but can never error either.
  ExprPtr pred = Conj({MakeComparison(CompareOp::kLt, ColA(), MakeConst(Datum::Null())),
                       MakeComparison(CompareOp::kEq, ColB(), Lit(3))});
  SargablePredicate analyzed = AnalyzeSargable(pred);
  EXPECT_FALSE(analyzed.truncated);
  ASSERT_EQ(analyzed.prefix.size(), 2u);
  EXPECT_TRUE(analyzed.prefix[0].tests.empty());
  EXPECT_EQ(analyzed.prefix[1].tests.size(), 1u);
}

// --- Synopsis skip decisions -------------------------------------------------

class SkipDecisionTest : public ::testing::Test {
 protected:
  // Chunk over (a, b) with a in [100, 200] (no nulls) and b in {1..3 or NULL}.
  ChunkSynopsis MakeChunk(bool b_has_nulls) {
    ChunkSynopsis chunk(2);
    for (int i = 0; i <= 100; ++i) {
      Datum b = (b_has_nulls && i % 10 == 0) ? Datum::Null()
                                             : Datum::Int64(i % 3 + 1);
      chunk.AddRow({Datum::Int64(100 + i), b});
    }
    return chunk;
  }

  CompiledSargable Compile(const ExprPtr& pred) {
    return CompileSargable(AnalyzeSargable(pred), ColumnLayout({1, 2}));
  }
};

TEST_F(SkipDecisionTest, RangeMissSkips) {
  EXPECT_TRUE(SynopsisCanSkip(Compile(MakeComparison(CompareOp::kLt, ColA(), Lit(50))),
                              MakeChunk(false)));
  EXPECT_TRUE(SynopsisCanSkip(Compile(MakeComparison(CompareOp::kGt, ColA(), Lit(500))),
                              MakeChunk(false)));
  EXPECT_TRUE(SynopsisCanSkip(Compile(MakeComparison(CompareOp::kEq, ColA(), Lit(99))),
                              MakeChunk(false)));
}

TEST_F(SkipDecisionTest, RangeOverlapKeeps) {
  EXPECT_FALSE(SynopsisCanSkip(
      Compile(MakeComparison(CompareOp::kLt, ColA(), Lit(150))), MakeChunk(false)));
  EXPECT_FALSE(SynopsisCanSkip(
      Compile(MakeComparison(CompareOp::kEq, ColA(), Lit(200))), MakeChunk(false)));
}

TEST_F(SkipDecisionTest, NullsBlockValueSetSkips) {
  // b IN (9): disjoint from {1..3}, but the NULL rows make the conjunct NULL
  // rather than FALSE, so the AND would keep evaluating later conjuncts.
  ExprPtr pred = MakeInList({ColB(), Lit(9)});
  EXPECT_TRUE(SynopsisCanSkip(Compile(pred), MakeChunk(false)));
  EXPECT_FALSE(SynopsisCanSkip(Compile(pred), MakeChunk(true)));
}

TEST_F(SkipDecisionTest, IsNullTests) {
  ExprPtr is_null = std::make_shared<IsNullExpr>(ColB());
  EXPECT_TRUE(SynopsisCanSkip(Compile(is_null), MakeChunk(false)));
  EXPECT_FALSE(SynopsisCanSkip(Compile(is_null), MakeChunk(true)));
  // NOT (a IS NULL) never misses here — a has non-null values.
  ExprPtr not_null = MakeNot(std::make_shared<IsNullExpr>(ColA()));
  EXPECT_FALSE(SynopsisCanSkip(Compile(not_null), MakeChunk(false)));
}

TEST_F(SkipDecisionTest, LaterConjunctSkipsOnlyIfEarlierErrorFree) {
  // a < 1000 matches every row; b = 9 misses. The miss licenses the skip
  // because a's family check passes.
  ExprPtr pred = Conj({MakeComparison(CompareOp::kLt, ColA(), Lit(1000)),
                       MakeComparison(CompareOp::kEq, ColB(), Lit(9))});
  EXPECT_TRUE(SynopsisCanSkip(Compile(pred), MakeChunk(false)));

  // Same shape, but the first conjunct compares a against a string: that
  // would error on every row of this chunk, so nothing may skip.
  ExprPtr mismatch =
      Conj({MakeComparison(CompareOp::kLt, ColA(), MakeConst(Datum::String("x"))),
            MakeComparison(CompareOp::kEq, ColB(), Lit(9))});
  EXPECT_FALSE(SynopsisCanSkip(Compile(mismatch), MakeChunk(false)));
}

TEST_F(SkipDecisionTest, MixedFamilyColumnNeverSkips) {
  ChunkSynopsis chunk(2);
  chunk.AddRow({Datum::Int64(1), Datum::Int64(1)});
  chunk.AddRow({Datum::String("zebra"), Datum::Int64(2)});
  EXPECT_FALSE(chunk.columns[0].comparable);
  // a = 99 misses the int extremes, but the column is untrustworthy.
  EXPECT_FALSE(SynopsisCanSkip(
      Compile(MakeComparison(CompareOp::kEq, ColA(), Lit(99))), chunk));
  // And a mixed-family column in a *family check* blocks later skips too.
  ExprPtr pred = Conj({MakeComparison(CompareOp::kLt, ColA(), Lit(1000)),
                       MakeComparison(CompareOp::kEq, ColB(), Lit(9))});
  EXPECT_FALSE(SynopsisCanSkip(Compile(pred), chunk));
}

TEST_F(SkipDecisionTest, EmptyChunkNeverSkips) {
  EXPECT_FALSE(SynopsisCanSkip(
      Compile(MakeComparison(CompareOp::kLt, ColA(), Lit(0))), ChunkSynopsis(2)));
}

// --- Synopsis maintenance under DML (property test) --------------------------

void ExpectColumnsEqual(const ColumnSynopsis& expected, const ColumnSynopsis& actual,
                        const std::string& context) {
  EXPECT_EQ(expected.null_count, actual.null_count) << context;
  EXPECT_EQ(expected.non_null_count, actual.non_null_count) << context;
  EXPECT_EQ(expected.comparable, actual.comparable) << context;
  EXPECT_EQ(expected.min.is_null(), actual.min.is_null()) << context;
  if (expected.comparable && actual.comparable && !expected.min.is_null() &&
      !actual.min.is_null()) {
    EXPECT_EQ(Datum::Compare(expected.min, actual.min), 0)
        << context << " min " << expected.min.ToString() << " vs "
        << actual.min.ToString();
    EXPECT_EQ(Datum::Compare(expected.max, actual.max), 0)
        << context << " max " << expected.max.ToString() << " vs "
        << actual.max.ToString();
  }
}

void ExpectChunksEqual(const ChunkSynopsis& expected, const ChunkSynopsis& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.row_count, actual.row_count) << context;
  ASSERT_EQ(expected.columns.size(), actual.columns.size()) << context;
  for (size_t i = 0; i < expected.columns.size(); ++i) {
    ExpectColumnsEqual(expected.columns[i], actual.columns[i],
                       context + " column " + std::to_string(i));
  }
}

// Every slice synopsis must match one recomputed from the slice's rows.
void CheckStoreSynopses(TableStore* store, int num_segments,
                        const std::string& context) {
  for (Oid unit : store->UnitOids()) {
    for (int segment = 0; segment < num_segments; ++segment) {
      const std::vector<Row>& rows = store->UnitRows(unit, segment);
      SliceSynopsis oracle(store->descriptor().schema.size());
      for (const Row& row : rows) oracle.Append(row);

      const SliceSynopsis& actual = store->UnitSynopsis(unit, segment);
      std::string slice_context = context + " unit " + std::to_string(unit) +
                                  " segment " + std::to_string(segment);
      ExpectChunksEqual(oracle.rollup, actual.rollup, slice_context + " rollup");
      ASSERT_EQ(oracle.chunks.size(), actual.chunks.size()) << slice_context;
      for (size_t c = 0; c < oracle.chunks.size(); ++c) {
        ExpectChunksEqual(oracle.chunks[c], actual.chunks[c],
                          slice_context + " chunk " + std::to_string(c));
      }
    }
  }
}

TEST(SynopsisMaintenanceTest, RandomizedDmlMatchesOracle) {
  constexpr int kSegments = 3;
  TestDb db(kSegments);
  // Partitioned on b into 8 ranges of width 500 plus an unpartitioned table,
  // so both unit layouts are exercised.
  const TableDescriptor* fact = db.CreateIntPartitionedTable("fact", 8, 500);
  const TableDescriptor* plain = db.CreatePlainTable(
      "plain", Schema({{"x", TypeId::kInt64}, {"y", TypeId::kInt64}}), {0});
  TableStore* fact_store = db.storage.GetStore(fact->oid);
  TableStore* plain_store = db.storage.GetStore(plain->oid);

  Random rng(20260807);
  int64_t next = 0;
  auto random_fact_row = [&]() -> Row {
    // b must stay routable; a is sometimes NULL to exercise null counts.
    Datum a = rng.Bernoulli(0.1) ? Datum::Null() : Datum::Int64(next * 7 % 5000);
    ++next;
    return {a, Datum::Int64(rng.UniformRange(0, 3999))};
  };

  for (int step = 0; step < 40; ++step) {
    TableStore* store = rng.Bernoulli(0.7) ? fact_store : plain_store;
    switch (rng.Uniform(3)) {
      case 0: {  // single-row inserts
        int n = static_cast<int>(rng.UniformRange(1, 20));
        for (int i = 0; i < n; ++i) {
          Row row = random_fact_row();
          ASSERT_TRUE(store->Insert(row).ok());
        }
        break;
      }
      case 1: {  // batch insert, large enough to cross chunk boundaries
        std::vector<Row> rows;
        int n = static_cast<int>(rng.UniformRange(200, 1500));
        for (int i = 0; i < n; ++i) rows.push_back(random_fact_row());
        ASSERT_TRUE(store->InsertBatch(rows).ok());
        break;
      }
      case 2: {  // in-place DML on a random slice: edits and deletions
        std::vector<Oid> units = store->UnitOids();
        Oid unit = units[rng.Uniform(units.size())];
        int segment = static_cast<int>(rng.Uniform(kSegments));
        std::vector<Row>* rows = store->MutableUnitRows(unit, segment);
        for (Row& row : *rows) {
          if (rng.Bernoulli(0.2)) {
            row[0] = rng.Bernoulli(0.15) ? Datum::Null()
                                         : Datum::Int64(rng.UniformRange(-100, 9000));
          }
        }
        if (!rows->empty() && rng.Bernoulli(0.5)) {
          rows->erase(rows->begin() +
                      static_cast<long>(rng.Uniform(rows->size())));
        }
        break;
      }
    }
    // Verify a random subset of steps (full verification is O(rows)).
    if (step % 5 == 4 || step == 39) {
      CheckStoreSynopses(fact_store, kSegments, "step " + std::to_string(step));
      CheckStoreSynopses(plain_store, kSegments, "step " + std::to_string(step));
    }
  }
}

TEST(SynopsisMaintenanceTest, InsertAfterStaleDoesNotPatchIncrementally) {
  // An insert into a slice whose synopsis is already stale (in-place DML
  // happened since the last read) must leave the synopsis stale — patching it
  // incrementally would bake in pre-DML extremes.
  TestDb db(1);
  const TableDescriptor* t = db.CreatePlainTable(
      "t", Schema({{"x", TypeId::kInt64}, {"y", TypeId::kInt64}}), {0});
  TableStore* store = db.storage.GetStore(t->oid);
  ASSERT_TRUE(store->Insert({Datum::Int64(100), Datum::Int64(1)}).ok());

  // Stale the synopsis by shrinking x in place, then append without reading.
  (*store->MutableUnitRows(t->oid, 0))[0][0] = Datum::Int64(5);
  ASSERT_TRUE(store->Insert({Datum::Int64(50), Datum::Int64(2)}).ok());

  const SliceSynopsis& synopsis = store->UnitSynopsis(t->oid, 0);
  ASSERT_EQ(synopsis.rollup.row_count, 2u);
  EXPECT_EQ(Datum::Compare(synopsis.rollup.columns[0].min, Datum::Int64(5)), 0);
  EXPECT_EQ(Datum::Compare(synopsis.rollup.columns[0].max, Datum::Int64(50)), 0);
}

// --- End-to-end skipping -----------------------------------------------------

// Plan: Filter(pred) over Append of every leaf TableScan (colrefs 1=a, 2=b).
PhysPtr FilterOverAllLeaves(const TableDescriptor* table, ExprPtr pred) {
  std::vector<PhysPtr> scans;
  for (Oid leaf : table->partition_scheme->AllLeafOids()) {
    scans.push_back(std::make_shared<TableScanNode>(table->oid, leaf,
                                                    std::vector<ColRefId>{1, 2}));
  }
  PhysPtr child = scans.size() == 1
                      ? scans[0]
                      : std::make_shared<AppendNode>(std::move(scans));
  return std::make_shared<FilterNode>(std::move(pred), std::move(child));
}

class DataSkippingExecTest : public ::testing::Test {
 protected:
  static constexpr int kSegments = 2;
  static constexpr int64_t kRows = 40000;

  void SetUp() override {
    // fact(a, b) partitioned on b into 4 ranges of 2500, hashed on a. Rows
    // are loaded in ascending a, so each slice is clustered on a and chunk
    // zone maps on a are tight.
    fact_ = db_.CreateIntPartitionedTable("fact", 4, 2500);
    std::vector<Row> rows;
    rows.reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      rows.push_back({Datum::Int64(i), Datum::Int64(i % 10000)});
    }
    db_.Insert(fact_, rows);
  }

  // Runs the plan with skipping on and off; asserts identical rows and
  // identical stats modulo the skip counters, and returns the skip-on stats.
  ExecStats CheckSkipOnOffAgree(const PhysPtr& plan) {
    auto with_skip = db_.executor.Execute(plan);
    EXPECT_TRUE(with_skip.ok()) << with_skip.status().ToString();
    ExecStats on_stats = db_.executor.stats();

    Executor no_skip(&db_.catalog, &db_.storage,
                     Executor::Options{.data_skipping = false});
    auto without = no_skip.Execute(plan);
    EXPECT_TRUE(without.ok()) << without.status().ToString();
    EXPECT_TRUE(*with_skip == *without);

    ExecStats on_zeroed = on_stats;
    on_zeroed.chunks_total = 0;
    on_zeroed.chunks_skipped = 0;
    on_zeroed.units_skipped = 0;
    EXPECT_TRUE(on_zeroed == no_skip.stats());
    return on_stats;
  }

  TestDb db_{kSegments};
  const TableDescriptor* fact_ = nullptr;
};

TEST_F(DataSkippingExecTest, ClusteredRangePredicateSkipsChunks) {
  // a < 2000 survives only the leading chunks of each slice.
  PhysPtr plan =
      FilterOverAllLeaves(fact_, MakeComparison(CompareOp::kLt, ColA(), Lit(2000)));
  ExecStats stats = CheckSkipOnOffAgree(plan);
  EXPECT_GT(stats.chunks_total, 0u);
  EXPECT_GT(stats.chunks_skipped, 0u);
  EXPECT_LT(stats.chunks_skipped, stats.chunks_total);
  // All rows with a < 2000 really came back (none were skipped away).
  EXPECT_EQ(stats.tuples_scanned, static_cast<size_t>(kRows));
}

TEST_F(DataSkippingExecTest, PartitionKeyPredicateSkipsWholeUnits) {
  // b < 2500 is false for every row of 3 of the 4 leaves: their slices go
  // away via the rollup synopsis without touching per-chunk synopses.
  PhysPtr plan =
      FilterOverAllLeaves(fact_, MakeComparison(CompareOp::kLt, ColB(), Lit(2500)));
  ExecStats stats = CheckSkipOnOffAgree(plan);
  EXPECT_GE(stats.units_skipped, 3u);  // 3 leaves x up to kSegments slices
  EXPECT_GT(stats.chunks_skipped, 0u);
}

TEST_F(DataSkippingExecTest, SelectiveEqualitySkipsNearlyEverything) {
  PhysPtr plan =
      FilterOverAllLeaves(fact_, MakeComparison(CompareOp::kEq, ColA(), Lit(31337)));
  auto result = db_.executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  const ExecStats& stats = db_.executor.stats();
  // Each slice's chunks cover disjoint sorted [min, max] ranges of a, so at
  // most one chunk per (leaf, segment) slice can bracket 31337 — either the
  // chunk actually holding it or one straddling the leaf's round-robin value
  // jump across it. Everything else (the vast majority) is skipped.
  EXPECT_GE(stats.chunks_skipped + 4 * kSegments, stats.chunks_total);
  EXPECT_GT(stats.chunks_skipped, stats.chunks_total / 2);
}

TEST_F(DataSkippingExecTest, VectorizedPathSkipsIdentically) {
  PhysPtr plan =
      FilterOverAllLeaves(fact_, MakeComparison(CompareOp::kLt, ColA(), Lit(2000)));
  auto row_result = db_.executor.Execute(plan);
  ASSERT_TRUE(row_result.ok());

  Executor vec(&db_.catalog, &db_.storage, Executor::Options{.vectorized = true});
  auto vec_result = vec.Execute(plan);
  ASSERT_TRUE(vec_result.ok());
  EXPECT_TRUE(*row_result == *vec_result);
  // Including the skip counters: both paths make identical skip decisions.
  EXPECT_TRUE(db_.executor.stats() == vec.stats());
  EXPECT_GT(vec.stats().chunks_skipped, 0u);

  Executor vec_noskip(&db_.catalog, &db_.storage,
                      Executor::Options{.vectorized = true, .data_skipping = false});
  auto vec_noskip_result = vec_noskip.Execute(plan);
  ASSERT_TRUE(vec_noskip_result.ok());
  EXPECT_TRUE(*row_result == *vec_noskip_result);
  EXPECT_EQ(vec_noskip.stats().chunks_skipped, 0u);
}

TEST_F(DataSkippingExecTest, SkippingTracksInPlaceDml) {
  PhysPtr plan =
      FilterOverAllLeaves(fact_, MakeComparison(CompareOp::kGt, ColA(), Lit(50000)));
  auto before = db_.executor.Execute(plan);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->empty());
  ExecStats stats = db_.executor.stats();
  EXPECT_EQ(stats.chunks_skipped, stats.chunks_total);

  // Rewrite one stored row beyond the predicate bound; the staled synopsis
  // must rebuild and stop skipping that chunk.
  TableStore* store = db_.storage.GetStore(fact_->oid);
  Oid first_unit = store->UnitOids().front();
  std::vector<Row>* rows = store->MutableUnitRows(first_unit, 0);
  ASSERT_FALSE(rows->empty());
  (*rows)[0][0] = Datum::Int64(99999);

  auto after = db_.executor.Execute(plan);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_EQ(Datum::Compare((*after)[0][0], Datum::Int64(99999)), 0);
}

TEST_F(DataSkippingExecTest, ErrorBeforeSargableConjunctStillRaises) {
  // 1/0 = 1 AND a < 0: the erroring conjunct precedes the sargable one, so
  // no chunk may be skipped and both modes must fail.
  ExprPtr div = MakeArith(ArithOp::kDiv, Lit(1), Lit(0));
  PhysPtr plan = FilterOverAllLeaves(
      fact_, Conj({MakeComparison(CompareOp::kEq, div, Lit(1)),
                   MakeComparison(CompareOp::kLt, ColA(), Lit(0))}));
  auto with_skip = db_.executor.Execute(plan);
  EXPECT_FALSE(with_skip.ok());

  Executor no_skip(&db_.catalog, &db_.storage,
                   Executor::Options{.data_skipping = false});
  auto without = no_skip.Execute(plan);
  EXPECT_FALSE(without.ok());
  EXPECT_EQ(with_skip.status().code(), without.status().code());
}

TEST_F(DataSkippingExecTest, FalseSargableConjunctShortCircuitsErrorInBothModes) {
  // a < -100 AND 1/0 = 1: the first conjunct is FALSE for every row, so AND
  // short-circuits before the division in both modes — empty result, no
  // error. With skipping on, the proof happens per chunk instead of per row.
  ExprPtr div = MakeArith(ArithOp::kDiv, Lit(1), Lit(0));
  PhysPtr plan = FilterOverAllLeaves(
      fact_, Conj({MakeComparison(CompareOp::kLt, ColA(), Lit(-100)),
                   MakeComparison(CompareOp::kEq, div, Lit(1))}));
  ExecStats stats = CheckSkipOnOffAgree(plan);
  EXPECT_EQ(stats.chunks_skipped, stats.chunks_total);
}

TEST_F(DataSkippingExecTest, FamilyMismatchErrorSurvivesSkipping) {
  // a < 'zebra' errors on every row (int vs string); the synopsis family
  // check must refuse to skip so the error surfaces in both modes.
  PhysPtr plan = FilterOverAllLeaves(
      fact_, MakeComparison(CompareOp::kLt, ColA(), MakeConst(Datum::String("zebra"))));
  auto with_skip = db_.executor.Execute(plan);
  EXPECT_FALSE(with_skip.ok());

  Executor no_skip(&db_.catalog, &db_.storage,
                   Executor::Options{.data_skipping = false});
  auto without = no_skip.Execute(plan);
  EXPECT_FALSE(without.ok());
  EXPECT_EQ(with_skip.status().code(), without.status().code());
}

}  // namespace
}  // namespace mppdb
