// Cross-query concurrency stress: many threads hammering one Database with
// cached and fresh SELECTs while other threads fire Cancel() and a DDL
// thread churns CREATE/DROP TABLE and CREATE INDEX. Shakes out races in the
// Database-level reader/writer state lock, the plan cache (lookup / insert /
// DDL invalidation), the cancel registry, per-call executors sharing one
// morsel scheduler, and TableStore's lazily rebuilt synopses reached by
// concurrent queries. Built and run under ThreadSanitizer by the
// tsan_cross_query_stress ctest entry (see tests/CMakeLists.txt), where any
// race fails the build instead of flaking.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "server/session_manager.h"
#include "test_util.h"

namespace mppdb {
namespace {

std::unique_ptr<Database> BuildStressDb() {
  auto db = std::make_unique<Database>(4, Executor::Options{.parallel = true});
  MPPDB_CHECK(db->CreatePartitionedTable(
                     "fact",
                     Schema({{"sk", TypeId::kInt64}, {"v", TypeId::kInt64}}),
                     TableDistribution::kHashed, {0},
                     {{0, PartitionMethod::kRange}},
                     {partition_bounds::IntRanges(0, 50, 8)})
                  .ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 400; ++i) {
    rows.push_back({Datum::Int64(i), Datum::Int64(i * 3)});
  }
  MPPDB_CHECK(db->Load("fact", rows).ok());
  return db;
}

TEST(ConcurrencyStressTest, ExecuteCancelDdlCrossfire) {
  std::unique_ptr<Database> db = BuildStressDb();
  constexpr int kReaders = 4;
  constexpr int kIterations = 60;
  std::atomic<bool> stop{false};
  std::atomic<int> wrong_answers{0};
  std::atomic<uint64_t> next_query_id{1};

  // Readers: cached SELECTs over shifting ranges; answers must stay exact no
  // matter what the cancel and DDL threads do to *other* tables.
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&db, &wrong_answers, &next_query_id, t]() {
      QueryOptions opts;
      opts.use_plan_cache = true;
      for (int i = 0; i < kIterations; ++i) {
        const int64_t hi = 20 + ((t * kIterations + i) * 13) % 380;
        opts.query_id = next_query_id.fetch_add(1);
        auto result = db->Execute(
            "SELECT count(*) FROM fact WHERE sk < " + std::to_string(hi), opts);
        // Cancelled is legal (the cancel thread guesses ids); wrong rows are
        // not.
        if (result.ok() && result->rows[0][0].int64_value() != hi) {
          wrong_answers.fetch_add(1);
        }
      }
    });
  }

  // DML thread: in-place updates staling synopses, so concurrent readers
  // exercise the lazy rebuild path under the shared lock.
  threads.emplace_back([&db, &stop]() {
    int round = 0;
    while (!stop.load()) {
      auto update = db->Execute("UPDATE fact SET v = " + std::to_string(round) +
                                " WHERE sk < 25");
      MPPDB_CHECK(update.ok());
      ++round;
    }
  });

  // DDL thread: churns a side table (create, index, query through the cache,
  // drop) — invalidation must keep every cached plan consistent with the
  // catalog.
  threads.emplace_back([&db, &stop]() {
    QueryOptions opts;
    opts.use_plan_cache = true;
    int round = 0;
    while (!stop.load()) {
      MPPDB_CHECK(db->Execute("CREATE TABLE side (x bigint, y bigint) "
                              "DISTRIBUTED BY (x)")
                      .ok());
      MPPDB_CHECK(db->Execute("INSERT INTO side VALUES (1, 2), (3, 4)").ok());
      MPPDB_CHECK(db->Execute("CREATE INDEX ON side (y)").ok());
      auto read = db->Execute("SELECT count(*) FROM side WHERE x < 10", opts);
      MPPDB_CHECK(read.ok() && read->rows[0][0].int64_value() == 2);
      MPPDB_CHECK(db->Execute("DROP TABLE side").ok());
      ++round;
    }
  });

  // Cancel thread: fires at recently issued query ids; hitting a finished or
  // unstarted query is a no-op by contract.
  threads.emplace_back([&db, &stop, &next_query_id]() {
    uint64_t guess = 1;
    while (!stop.load()) {
      const uint64_t latest = next_query_id.load();
      if (guess < latest) {
        db->Cancel(guess++);
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int t = 0; t < kReaders; ++t) threads[static_cast<size_t>(t)].join();
  stop.store(true);
  for (size_t t = kReaders; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(wrong_answers.load(), 0);
  // The cache saw real traffic and the DDL churn really invalidated.
  EXPECT_GE(db->plan_cache().stats().hits, 1u);
  EXPECT_GE(db->plan_cache().stats().invalidations, 1u);
}

// The serving layer under the same crossfire: concurrent clients through a
// SessionManager with two groups while a DDL churner runs directly against
// the Database.
TEST(ConcurrencyStressTest, SessionManagerServesDuringDdlChurn) {
  std::unique_ptr<Database> db = BuildStressDb();
  SessionManagerConfig config;
  config.worker_threads = 4;
  config.max_queue_depth = 128;
  config.groups = {{"fast", 3, 0}, {"slow", 1, 16u << 20}};
  SessionManager manager(db.get(), config);

  std::atomic<bool> stop{false};
  std::thread ddl([&db, &stop]() {
    while (!stop.load()) {
      MPPDB_CHECK(
          db->Execute("CREATE TABLE churn (x bigint) DISTRIBUTED BY (x)").ok());
      MPPDB_CHECK(db->Execute("DROP TABLE churn").ok());
    }
  });

  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 80; ++i) {
    SubmitOptions submit;
    submit.group = (i % 4 == 0) ? "slow" : "fast";
    const int64_t hi = 10 + (i * 9) % 390;
    futures.push_back(manager.Submit(
        "SELECT count(*) FROM fact WHERE sk < " + std::to_string(hi), submit));
  }
  int64_t expected_i = 0;
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const int64_t hi = 10 + (expected_i * 9) % 390;
    EXPECT_EQ(result->rows[0][0].int64_value(), hi);
    ++expected_i;
  }
  stop.store(true);
  ddl.join();
  manager.Shutdown();
  EXPECT_EQ(manager.stats().failed, 0u);
  EXPECT_LE(manager.group_states().at("slow").peak_running, 1);
}

}  // namespace
}  // namespace mppdb
