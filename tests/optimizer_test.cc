#include <gtest/gtest.h>

#include "db/database.h"
#include "optimizer/placement.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::SameRows;

int CountNodes(const PhysPtr& plan, PhysNodeKind kind) {
  int count = plan->kind() == kind ? 1 : 0;
  for (const auto& child : plan->children()) count += CountNodes(child, kind);
  return count;
}

/// Star-schema fixture: `orders` partitioned monthly over 2013 (12 leaves),
/// `date_dim` with one row per 2013 day, `customer` dimension.
class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : db_(4) {
    MPPDB_CHECK(db_.CreatePartitionedTable(
                       "orders",
                       Schema({{"date", TypeId::kDate},
                               {"amount", TypeId::kDouble},
                               {"cust_id", TypeId::kInt64}}),
                       TableDistribution::kHashed, {2},
                       {{0, PartitionMethod::kRange}},
                       {partition_bounds::Monthly(2013, 1, 12)})
                    .ok());
    MPPDB_CHECK(db_.CreateTable("date_dim",
                                Schema({{"id", TypeId::kDate},
                                        {"year", TypeId::kInt64},
                                        {"month", TypeId::kInt64}}),
                                TableDistribution::kHashed, {0})
                    .ok());
    MPPDB_CHECK(db_.CreateTable("customer",
                                Schema({{"id", TypeId::kInt64},
                                        {"state", TypeId::kString}}),
                                TableDistribution::kHashed, {0})
                    .ok());

    std::vector<Row> orders, dates;
    int cust = 0;
    for (int month = 1; month <= 12; ++month) {
      for (int day = 1; day <= date::DaysInMonth(2013, month); ++day) {
        int32_t d = date::FromYMD(2013, month, day);
        dates.push_back({Datum::Date(d), Datum::Int64(2013), Datum::Int64(month)});
        orders.push_back({Datum::Date(d), Datum::Double(month * 1.0 + day * 0.01),
                          Datum::Int64(cust++ % 50)});
      }
    }
    MPPDB_CHECK(db_.Load("orders", orders).ok());
    MPPDB_CHECK(db_.Load("date_dim", dates).ok());
    std::vector<Row> customers;
    for (int i = 0; i < 50; ++i) {
      customers.push_back({Datum::Int64(i), Datum::String(i % 5 == 0 ? "CA" : "WA")});
    }
    MPPDB_CHECK(db_.Load("customer", customers).ok());
    orders_oid_ = db_.catalog().FindTable("orders")->oid;
  }

  QueryOptions Cascades() {
    QueryOptions options;
    options.optimizer = OptimizerKind::kCascades;
    return options;
  }
  QueryOptions Planner() {
    QueryOptions options;
    options.optimizer = OptimizerKind::kLegacyPlanner;
    return options;
  }

  /// Runs under both optimizers, checks result equivalence, and returns the
  /// pair (cascades result, planner result).
  std::pair<QueryResult, QueryResult> RunBoth(const std::string& sql) {
    auto cascades = db_.Run(sql, Cascades());
    EXPECT_TRUE(cascades.ok()) << sql << " -> " << cascades.status().ToString();
    auto planner = db_.Run(sql, Planner());
    EXPECT_TRUE(planner.ok()) << sql << " -> " << planner.status().ToString();
    MPPDB_CHECK(cascades.ok() && planner.ok());
    EXPECT_TRUE(SameRows(cascades->rows, planner->rows))
        << sql << "\ncascades rows=" << cascades->rows.size()
        << " planner rows=" << planner->rows.size();
    return {std::move(*cascades), std::move(*planner)};
  }

  Database db_;
  Oid orders_oid_ = kInvalidOid;
};

TEST_F(OptimizerTest, FullScan) {
  auto [cascades, planner] = RunBoth("SELECT * FROM orders");
  EXPECT_EQ(cascades.rows.size(), 365u);
  EXPECT_EQ(cascades.stats.PartitionsScanned(orders_oid_), 12u);
  EXPECT_EQ(planner.stats.PartitionsScanned(orders_oid_), 12u);
  // Cascades plans use one DynamicScan; the legacy plan enumerates leaves.
  EXPECT_EQ(CountNodes(cascades.plan, PhysNodeKind::kDynamicScan), 1);
  EXPECT_EQ(CountNodes(planner.plan, PhysNodeKind::kTableScan), 12);
}

TEST_F(OptimizerTest, StaticPruningLastQuarter) {
  // The paper's Fig. 2 query.
  auto [cascades, planner] = RunBoth(
      "SELECT avg(amount) FROM orders "
      "WHERE date BETWEEN '2013-10-01' AND '2013-12-31'");
  ASSERT_EQ(cascades.rows.size(), 1u);
  EXPECT_EQ(cascades.stats.PartitionsScanned(orders_oid_), 3u);
  EXPECT_EQ(planner.stats.PartitionsScanned(orders_oid_), 3u);
}

TEST_F(OptimizerTest, StaticPruningEquality) {
  auto [cascades, planner] = RunBoth(
      "SELECT count(*) FROM orders WHERE date = '2013-05-20'");
  EXPECT_EQ(cascades.rows[0][0].int64_value(), 1);
  EXPECT_EQ(cascades.stats.PartitionsScanned(orders_oid_), 1u);
  EXPECT_EQ(planner.stats.PartitionsScanned(orders_oid_), 1u);
}

TEST_F(OptimizerTest, StaticPruningInList) {
  auto [cascades, planner] = RunBoth(
      "SELECT count(*) FROM orders WHERE date IN ('2013-01-15', '2013-07-04')");
  EXPECT_EQ(cascades.rows[0][0].int64_value(), 2);
  EXPECT_EQ(cascades.stats.PartitionsScanned(orders_oid_), 2u);
}

TEST_F(OptimizerTest, JoinDynamicElimination) {
  // The paper's Fig. 4 pattern, as an explicit join.
  const char* sql =
      "SELECT avg(o.amount) FROM orders o JOIN date_dim d ON o.date = d.id "
      "WHERE d.year = 2013 AND d.month BETWEEN 10 AND 12";
  auto [cascades, planner] = RunBoth(sql);
  ASSERT_EQ(cascades.rows.size(), 1u);
  // Join-induced DPE prunes to Q4 partitions at run time.
  EXPECT_EQ(cascades.stats.PartitionsScanned(orders_oid_), 3u);
  // The legacy planner's parameter-style DPE also scans 3 ...
  EXPECT_EQ(planner.stats.PartitionsScanned(orders_oid_), 3u);
  // ... but its plan lists all 12 partitions as CheckedPartScans, while the
  // cascades plan has exactly one DynamicScan + a pass-through selector.
  EXPECT_EQ(CountNodes(planner.plan, PhysNodeKind::kCheckedPartScan), 12);
  EXPECT_EQ(CountNodes(cascades.plan, PhysNodeKind::kDynamicScan), 1);
  EXPECT_EQ(CountNodes(cascades.plan, PhysNodeKind::kPartitionSelector), 1);
  EXPECT_TRUE(ValidateSelectorPlacement(cascades.plan).ok());
}

TEST_F(OptimizerTest, InSubqueryDynamicElimination) {
  // The paper's Fig. 4 query shape (IN subquery -> semi join).
  const char* sql =
      "SELECT avg(amount) FROM orders WHERE date IN "
      "(SELECT id FROM date_dim WHERE month = 5)";
  auto [cascades, planner] = RunBoth(sql);
  EXPECT_EQ(cascades.stats.PartitionsScanned(orders_oid_), 1u);
  EXPECT_LE(planner.stats.PartitionsScanned(orders_oid_), 12u);
}

TEST_F(OptimizerTest, ThreeTableStarJoin) {
  // The paper's Fig. 6 query shape.
  const char* sql =
      "SELECT count(*) FROM orders o "
      "JOIN date_dim d ON o.date = d.id "
      "JOIN customer c ON o.cust_id = c.id "
      "WHERE d.month BETWEEN 10 AND 12 AND c.state = 'CA'";
  auto [cascades, planner] = RunBoth(sql);
  EXPECT_EQ(cascades.stats.PartitionsScanned(orders_oid_), 3u);
  EXPECT_GT(cascades.rows[0][0].int64_value(), 0);
}

TEST_F(OptimizerTest, PartitionSelectionDisabledScansEverything) {
  // The Fig. 17 A/B switch.
  const char* sql =
      "SELECT avg(o.amount) FROM orders o JOIN date_dim d ON o.date = d.id "
      "WHERE d.month = 7";
  QueryOptions disabled = Cascades();
  disabled.enable_partition_selection = false;
  auto off = db_.Run(sql, disabled);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  auto on = db_.Run(sql, Cascades());
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(SameRows(off->rows, on->rows));
  EXPECT_EQ(off->stats.PartitionsScanned(orders_oid_), 12u);
  EXPECT_EQ(on->stats.PartitionsScanned(orders_oid_), 1u);
  EXPECT_GT(off->stats.tuples_scanned, on->stats.tuples_scanned);
}

TEST_F(OptimizerTest, DynamicEliminationAloneCanBeDisabled) {
  const char* sql =
      "SELECT count(*) FROM orders o JOIN date_dim d ON o.date = d.id "
      "WHERE d.month = 7 AND o.date >= '2013-06-01'";
  QueryOptions no_dpe = Cascades();
  no_dpe.enable_dynamic_elimination = false;
  auto result = db_.Run(sql, no_dpe);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Static elimination still applies (date >= June): 7 partitions.
  EXPECT_EQ(result->stats.PartitionsScanned(orders_oid_), 7u);
  auto full = db_.Run(sql, Cascades());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->stats.PartitionsScanned(orders_oid_), 1u);
  EXPECT_TRUE(SameRows(result->rows, full->rows));
}

TEST_F(OptimizerTest, PreparedStatementParamPrunesAtRuntime) {
  // Prepared-statement dynamic elimination (paper §1): the plan is built
  // with $1 unknown; the selector prunes once the parameter is bound.
  const char* sql = "SELECT count(*) FROM orders WHERE date < $1";
  QueryOptions options = Cascades();
  options.params = {Datum::DateFromString("2013-03-01")};
  auto result = db_.Run(sql, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].int64_value(), 31 + 28);
  EXPECT_EQ(result->stats.PartitionsScanned(orders_oid_), 2u);

  // The legacy planner cannot prune statically for a parameter.
  QueryOptions legacy = Planner();
  legacy.params = options.params;
  auto planner_result = db_.Run(sql, legacy);
  ASSERT_TRUE(planner_result.ok()) << planner_result.status().ToString();
  EXPECT_TRUE(SameRows(result->rows, planner_result->rows));
  EXPECT_EQ(planner_result->stats.PartitionsScanned(orders_oid_), 12u);
}

TEST_F(OptimizerTest, GroupByBothOptimizers) {
  auto [cascades, planner] = RunBoth(
      "SELECT cust_id, count(*) AS c, sum(amount) AS s FROM orders "
      "GROUP BY cust_id ORDER BY cust_id");
  EXPECT_EQ(cascades.rows.size(), 50u);
}

TEST_F(OptimizerTest, ProjectionsAndArithmetic) {
  RunBoth("SELECT amount * 2 + 1 AS x, cust_id FROM orders WHERE amount > 6");
}

TEST_F(OptimizerTest, SortLimit) {
  auto [cascades, planner] =
      RunBoth("SELECT date, amount FROM orders ORDER BY amount DESC LIMIT 10");
  ASSERT_EQ(cascades.rows.size(), 10u);
  // Both optimizers must return the same top row (largest amount).
  EXPECT_EQ(cascades.rows[0][1].double_value(), planner.rows[0][1].double_value());
}

TEST_F(OptimizerTest, PlanSizeStaticEliminationShape) {
  // Fig. 18(a): Planner plan size grows with selected partitions; cascades
  // plan size stays constant.
  auto size_for = [&](const char* hi, OptimizerKind kind) {
    QueryOptions options;
    options.optimizer = kind;
    auto plan = db_.PlanSql(std::string("SELECT * FROM orders WHERE date < '") + hi +
                                "'",
                            options);
    MPPDB_CHECK(plan.ok());
    return SerializePlan(*plan).size();
  };
  size_t planner_small = size_for("2013-02-01", OptimizerKind::kLegacyPlanner);
  size_t planner_large = size_for("2014-01-01", OptimizerKind::kLegacyPlanner);
  EXPECT_GT(planner_large, planner_small * 3);

  size_t cascades_small = size_for("2013-02-01", OptimizerKind::kCascades);
  size_t cascades_large = size_for("2014-01-01", OptimizerKind::kCascades);
  EXPECT_EQ(cascades_small, cascades_large);
}

TEST_F(OptimizerTest, DmlUpdateBothOptimizers) {
  // Execute the same UPDATE under each optimizer on identical states and
  // compare final table contents.
  auto baseline = db_.Run("SELECT count(*) FROM orders WHERE amount > 1000");
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->rows[0][0].int64_value(), 0);

  auto update = db_.Run("UPDATE orders SET amount = amount + 1000 WHERE cust_id = 3",
                        Cascades());
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  int64_t updated = update->rows[0][0].int64_value();
  EXPECT_GT(updated, 0);

  auto check = db_.Run("SELECT count(*) FROM orders WHERE amount > 1000");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0][0].int64_value(), updated);

  // Revert with the legacy planner; the state must return to baseline.
  auto revert = db_.Run(
      "UPDATE orders SET amount = amount - 1000 WHERE amount > 1000", Planner());
  ASSERT_TRUE(revert.ok()) << revert.status().ToString();
  EXPECT_EQ(revert->rows[0][0].int64_value(), updated);
  auto after = db_.Run("SELECT count(*) FROM orders WHERE amount > 1000");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0][0].int64_value(), 0);
}

TEST_F(OptimizerTest, DmlUpdateMovesRowsAcrossPartitions) {
  // Partition-key update: rows must migrate to the right leaf (f_T routing).
  auto update = db_.Run(
      "UPDATE orders SET date = '2013-12-25' WHERE date = '2013-01-15'", Cascades());
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_EQ(update->rows[0][0].int64_value(), 1);
  auto jan = db_.Run("SELECT count(*) FROM orders WHERE date = '2013-01-15'");
  ASSERT_TRUE(jan.ok());
  EXPECT_EQ(jan->rows[0][0].int64_value(), 0);
  auto dec = db_.Run("SELECT count(*) FROM orders WHERE date = '2013-12-25'");
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->rows[0][0].int64_value(), 2);  // original + moved
}

TEST_F(OptimizerTest, InsertSelectAndDelete) {
  ASSERT_TRUE(db_.CreateTable("order_archive",
                              Schema({{"date", TypeId::kDate},
                                      {"amount", TypeId::kDouble},
                                      {"cust_id", TypeId::kInt64}}),
                              TableDistribution::kHashed, {2})
                  .ok());
  auto insert = db_.Run(
      "INSERT INTO order_archive SELECT date, amount, cust_id FROM orders "
      "WHERE date >= '2013-12-01'",
      Cascades());
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_EQ(insert->rows[0][0].int64_value(), 31);

  auto del = db_.Run("DELETE FROM orders WHERE date >= '2013-12-01'", Cascades());
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del->rows[0][0].int64_value(), 31);
  auto count = db_.Run("SELECT count(*) FROM orders");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].int64_value(), 365 - 31);
}

TEST_F(OptimizerTest, SearchSpaceIsMemoized) {
  CascadesOptimizer optimizer(&db_.catalog(), &db_.storage());
  Binder binder(&db_.catalog());
  auto stmt = binder.BindSql(
      "SELECT count(*) FROM orders o JOIN date_dim d ON o.date = d.id "
      "WHERE d.month = 3");
  ASSERT_TRUE(stmt.ok());
  auto plan = optimizer.Plan(*stmt);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Sanity bound on the number of distinct (group, request) optimizations:
  // far fewer than an exhaustive expansion.
  EXPECT_GT(optimizer.last_request_count(), 5u);
  EXPECT_LT(optimizer.last_request_count(), 500u);
}

}  // namespace
}  // namespace mppdb
