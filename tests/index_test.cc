// Tests for the index substrate and the Index-Join implementation of the
// partition-selection model (paper §2.2: the outer child computes partition
// keys; the inner child scans by looking up an index on the partition key).

#include <gtest/gtest.h>

#include "db/database.h"
#include "test_util.h"

namespace mppdb {
namespace {

using testutil::SameRows;

int CountNodes(const PhysPtr& plan, PhysNodeKind kind) {
  int count = plan->kind() == kind ? 1 : 0;
  for (const auto& child : plan->children()) count += CountNodes(child, kind);
  return count;
}

TEST(UnitIndexTest, LookupFindsAllDuplicates) {
  testutil::TestDb db(1);
  const TableDescriptor* t =
      db.CreatePlainTable("t", Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}));
  TableStore* store = db.storage.GetStore(t->oid);
  ASSERT_TRUE(store->CreateIndex(0).ok());
  db.Insert(t, {{Datum::Int64(3), Datum::Int64(1)},
                {Datum::Int64(1), Datum::Int64(2)},
                {Datum::Int64(3), Datum::Int64(3)},
                {Datum::Int64(2), Datum::Int64(4)}});
  const auto& hits = store->IndexLookup(t->oid, 0, 0, Datum::Int64(3));
  EXPECT_EQ(hits.size(), 2u);
  for (size_t pos : hits) {
    EXPECT_EQ(store->UnitRows(t->oid, 0)[pos][0].int64_value(), 3);
  }
  EXPECT_TRUE(store->IndexLookup(t->oid, 0, 0, Datum::Int64(99)).empty());
  EXPECT_TRUE(store->IndexLookup(t->oid, 0, 0, Datum::Null()).empty());
}

TEST(UnitIndexTest, RebuildsAfterMutation) {
  testutil::TestDb db(1);
  const TableDescriptor* t =
      db.CreatePlainTable("t", Schema({{"k", TypeId::kInt64}}));
  TableStore* store = db.storage.GetStore(t->oid);
  ASSERT_TRUE(store->CreateIndex(0).ok());
  db.Insert(t, {{Datum::Int64(1)}, {Datum::Int64(2)}});
  EXPECT_EQ(store->IndexLookup(t->oid, 0, 0, Datum::Int64(2)).size(), 1u);
  // New insert invalidates; lookup sees the new row.
  db.Insert(t, {{Datum::Int64(2)}});
  EXPECT_EQ(store->IndexLookup(t->oid, 0, 0, Datum::Int64(2)).size(), 2u);
  // In-place mutation through MutableUnitRows also invalidates.
  std::vector<Row>* rows = store->MutableUnitRows(t->oid, 0);
  rows->erase(rows->begin());  // drop k=1
  EXPECT_TRUE(store->IndexLookup(t->oid, 0, 0, Datum::Int64(1)).empty());
  EXPECT_EQ(store->IndexLookup(t->oid, 0, 0, Datum::Int64(2)).size(), 2u);
}

TEST(UnitIndexTest, InvalidColumnRejected) {
  testutil::TestDb db(1);
  const TableDescriptor* t =
      db.CreatePlainTable("t", Schema({{"k", TypeId::kInt64}}));
  EXPECT_FALSE(db.storage.GetStore(t->oid)->CreateIndex(7).ok());
}

class IndexJoinTest : public ::testing::Test {
 protected:
  IndexJoinTest() : db_(4) {
    // fact: partitioned on sk (single level), hash-distributed on item.
    MPPDB_CHECK(db_.CreatePartitionedTable(
                       "fact", Schema({{"sk", TypeId::kInt64},
                                       {"item", TypeId::kInt64},
                                       {"price", TypeId::kDouble}}),
                       TableDistribution::kHashed, {1},
                       {{0, PartitionMethod::kRange}},
                       {partition_bounds::IntRanges(0, 50, 20)})  // sk in [0,1000)
                    .ok());
    MPPDB_CHECK(db_.CreateTable("probe_keys",
                                Schema({{"k", TypeId::kInt64},
                                        {"tag", TypeId::kString}}),
                                TableDistribution::kHashed, {0})
                    .ok());
    std::vector<Row> fact_rows;
    for (int i = 0; i < 3000; ++i) {
      fact_rows.push_back({Datum::Int64(i % 1000), Datum::Int64(i % 37),
                           Datum::Double(i * 0.25)});
    }
    MPPDB_CHECK(db_.Load("fact", fact_rows).ok());
    MPPDB_CHECK(db_.Load("probe_keys", {{Datum::Int64(17), Datum::String("a")},
                                        {Datum::Int64(955), Datum::String("b")},
                                        {Datum::Int64(5000), Datum::String("c")}})
                    .ok());
    MPPDB_CHECK(db_.Run("CREATE INDEX ON fact (sk)").ok());
    fact_oid_ = db_.catalog().FindTable("fact")->oid;
  }

  Database db_;
  Oid fact_oid_ = kInvalidOid;
};

TEST_F(IndexJoinTest, OptimizerPicksIndexJoinForSmallOuter) {
  const char* sql =
      "SELECT count(*) FROM probe_keys p JOIN fact f ON p.k = f.sk";
  auto plan = db_.PlanSql(sql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kIndexNLJoin), 1);
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kDynamicScan), 0);

  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // sk 17 and 955 each appear 3 times in fact; 5000 routes to ⊥ (no match).
  EXPECT_EQ(result->rows[0][0].int64_value(), 6);
  // Only the partitions holding 17 and 955 were touched, and only matching
  // tuples were read through the index (plus the 3 probe rows).
  EXPECT_EQ(result->stats.PartitionsScanned(fact_oid_), 2u);
  EXPECT_LT(result->stats.tuples_scanned, 50u);
}

TEST_F(IndexJoinTest, MatchesHashJoinResults) {
  const char* sql =
      "SELECT p.tag, f.price FROM probe_keys p JOIN fact f ON p.k = f.sk "
      "WHERE f.price < 200";
  auto with_index = db_.Run(sql);
  ASSERT_TRUE(with_index.ok()) << with_index.status().ToString();
  QueryOptions no_index;
  no_index.enable_index_join = false;
  auto without_index = db_.Run(sql, no_index);
  ASSERT_TRUE(without_index.ok());
  EXPECT_TRUE(SameRows(with_index->rows, without_index->rows));
  EXPECT_EQ(CountNodes(without_index->plan, PhysNodeKind::kIndexNLJoin), 0);
  // The index plan reads far fewer tuples.
  EXPECT_LT(with_index->stats.tuples_scanned, without_index->stats.tuples_scanned);
}

TEST_F(IndexJoinTest, NotChosenWithoutAnIndex) {
  ASSERT_TRUE(db_.Run("CREATE TABLE fact2 (sk bigint, v double) "
                      "DISTRIBUTED BY (v) "
                      "PARTITION BY RANGE (sk) START 0 END 1000 EVERY 50")
                  .ok());
  ASSERT_TRUE(db_.Run("INSERT INTO fact2 VALUES (17, 1.0), (400, 2.0)").ok());
  auto plan = db_.PlanSql("SELECT count(*) FROM probe_keys p "
                          "JOIN fact2 f ON p.k = f.sk");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kIndexNLJoin), 0);
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kDynamicScan), 1);
}

TEST_F(IndexJoinTest, IndexOnNonPartitionKeyUnusedForPartitionedTable) {
  // An index on a non-partitioning column cannot drive per-tuple routing.
  ASSERT_TRUE(db_.Run("CREATE INDEX ON fact (item)").ok());
  auto plan = db_.PlanSql(
      "SELECT count(*) FROM probe_keys p JOIN fact f ON p.k = f.item");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kIndexNLJoin), 0);
}

TEST_F(IndexJoinTest, WorksOnUnpartitionedTables) {
  ASSERT_TRUE(db_.Run("CREATE TABLE plain (k bigint, v bigint) "
                      "DISTRIBUTED BY (v)")
                  .ok());
  ASSERT_TRUE(db_.Run("INSERT INTO plain VALUES (17, 100), (17, 200), (3, 5)").ok());
  // Filler so that a full scan is visibly worse than three index seeks.
  std::vector<Row> filler;
  for (int i = 0; i < 2000; ++i) {
    filler.push_back({Datum::Int64(10000 + i), Datum::Int64(i)});
  }
  ASSERT_TRUE(db_.Load("plain", filler).ok());
  ASSERT_TRUE(db_.Run("CREATE INDEX ON plain (k)").ok());
  const char* sql = "SELECT count(*) FROM probe_keys p JOIN plain t ON p.k = t.k";
  auto plan = db_.PlanSql(sql);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountNodes(*plan, PhysNodeKind::kIndexNLJoin), 1);
  auto result = db_.ExecutePlan(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int64_value(), 2);
}

TEST_F(IndexJoinTest, IndexJoinSurvivesDml) {
  // Mutations invalidate per-unit indexes; the next lookup rebuilds.
  ASSERT_TRUE(db_.Run("DELETE FROM fact WHERE sk = 17").ok());
  auto result = db_.Run("SELECT count(*) FROM probe_keys p JOIN fact f ON p.k = f.sk");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int64_value(), 3);  // only sk=955 remains
  ASSERT_TRUE(db_.Run("INSERT INTO fact VALUES (17, 1, 9.9)").ok());
  result = db_.Run("SELECT count(*) FROM probe_keys p JOIN fact f ON p.k = f.sk");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int64_value(), 4);
}

TEST_F(IndexJoinTest, DdlIndexErrors) {
  EXPECT_FALSE(db_.Run("CREATE INDEX ON nope (x)").ok());
  EXPECT_FALSE(db_.Run("CREATE INDEX ON fact (nope)").ok());
  // Duplicate index rejected.
  EXPECT_FALSE(db_.Run("CREATE INDEX ON fact (sk)").ok());
}

}  // namespace
}  // namespace mppdb
