// Reproduces the paper's Figure 17: relative improvement in execution time
// per query when partition selection is enabled, versus the same optimizer
// with partition selection disabled. Queries are bucketed into
// short/medium/long-running by their selection-disabled runtime.
//
// Paper result: improvements across the board, >50% for more than half the
// queries, >70% for a quarter; a few small negative outliers where the
// cost model picks a slightly worse plan with selection enabled.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "db/database.h"
#include "workload/tpcds_lite.h"

namespace mppdb {
namespace {

struct Measurement {
  std::string name;
  double off_ms;
  double on_ms;
  double improvement;  // % of the selection-disabled time
};

void RunBenchmark() {
  benchutil::Header(
      "Figure 17: runtime improvement from enabling partition selection");

  workload::TpcdsConfig config;
  config.base_rows = 6000;
  Database db(4);
  MPPDB_CHECK(workload::CreateAndLoadTpcds(&db, config).ok());

  const int kIterations = 3;
  std::vector<Measurement> measurements;
  for (const auto& query : workload::TpcdsQueries(config)) {
    QueryOptions off;
    off.enable_partition_selection = false;
    QueryOptions on;
    double off_ms = benchutil::MedianMillis(kIterations, [&]() {
      MPPDB_CHECK(db.Run(query.sql, off).ok());
    });
    double on_ms = benchutil::MedianMillis(kIterations, [&]() {
      MPPDB_CHECK(db.Run(query.sql, on).ok());
    });
    double improvement = (off_ms - on_ms) / off_ms * 100.0;
    measurements.push_back({query.name, off_ms, on_ms, improvement});
  }

  // Bucket by selection-disabled runtime into terciles (the paper's
  // short/medium/long-running blocks), then report per query.
  std::vector<double> sorted_off;
  for (const auto& m : measurements) sorted_off.push_back(m.off_ms);
  std::sort(sorted_off.begin(), sorted_off.end());
  double t1 = sorted_off[sorted_off.size() / 3];
  double t2 = sorted_off[2 * sorted_off.size() / 3];
  auto bucket_of = [&](double ms) {
    if (ms < t1) return "short";
    if (ms < t2) return "medium";
    return "long";
  };

  std::sort(measurements.begin(), measurements.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.off_ms < b.off_ms;
            });
  std::printf("%-28s %8s %12s %12s %14s\n", "query", "class", "off (ms)", "on (ms)",
              "improvement");
  benchutil::Rule(80);
  int above50 = 0, above70 = 0, negative = 0;
  for (const auto& m : measurements) {
    std::printf("%-28s %8s %12.2f %12.2f %13.1f%%\n", m.name.c_str(),
                bucket_of(m.off_ms), m.off_ms, m.on_ms, m.improvement);
    if (m.improvement > 50) ++above50;
    if (m.improvement > 70) ++above70;
    if (m.improvement < 0) ++negative;
  }
  double n = static_cast<double>(measurements.size());
  benchutil::Header("Summary (measured vs paper)");
  std::printf("queries improving > 50%%: %4.0f%%   (paper: more than half)\n",
              above50 / n * 100);
  std::printf("queries improving > 70%%: %4.0f%%   (paper: over a quarter)\n",
              above70 / n * 100);
  std::printf("negative outliers:       %4.0f%%   (paper: a few small outliers)\n",
              negative / n * 100);
}

}  // namespace
}  // namespace mppdb

int main() {
  mppdb::RunBenchmark();
  return 0;
}
