// Reproduces the paper's Figure 18(c): plan size for a DML statement joining
// two partitioned tables, varying the number of partitions:
//
//   UPDATE r SET b = s.b FROM s WHERE r.a = s.a;
//
// Paper result: the legacy Planner enumerates all join combinations between
// the individual partitions, so its plan grows quadratically; the Orca-style
// plan stays (essentially) constant.

#include <cstdio>

#include "bench_util.h"
#include "db/database.h"

namespace mppdb {
namespace {

void Setup(Database* db, int parts) {
  for (const char* name : {"r", "s"}) {
    Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}});
    MPPDB_CHECK(db->CreatePartitionedTable(name, schema, TableDistribution::kHashed,
                                           {0}, {{1, PartitionMethod::kRange}},
                                           {partition_bounds::IntRanges(0, 10, parts)})
                    .ok());
    std::vector<Row> rows;
    for (int i = 0; i < 20; ++i) {
      rows.push_back({Datum::Int64(i), Datum::Int64((i * 3) % (parts * 10))});
    }
    MPPDB_CHECK(db->Load(name, rows).ok());
  }
}

void RunBenchmark() {
  benchutil::Header("Figure 18(c): plan size, DML over partitioned tables");
  std::printf("query: UPDATE r SET b = s.b FROM s WHERE r.a = s.a\n\n");
  std::printf("%10s %18s %16s\n", "#parts", "Planner plan (B)", "Orca plan (B)");
  benchutil::Rule(48);
  for (int parts : {50, 100, 150, 200, 250, 300}) {
    Database db(4);
    Setup(&db, parts);
    const char* sql = "UPDATE r SET b = s.b FROM s WHERE r.a = s.a";

    QueryOptions planner;
    planner.optimizer = OptimizerKind::kLegacyPlanner;
    auto planner_plan = db.PlanSql(sql, planner);
    MPPDB_CHECK(planner_plan.ok());
    auto orca_plan = db.PlanSql(sql);
    MPPDB_CHECK(orca_plan.ok());

    std::printf("%10d %18zu %16zu\n", parts, SerializePlan(*planner_plan).size(),
                SerializePlan(*orca_plan).size());
  }
  std::printf(
      "\nExpectation (paper): Planner grows quadratically (all partition join\n"
      "combinations are enumerated); Orca's plan size stays nearly constant.\n");
}

}  // namespace
}  // namespace mppdb

int main() {
  mppdb::RunBenchmark();
  return 0;
}
