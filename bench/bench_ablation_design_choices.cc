// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//  A. Join-induced dynamic partition elimination: the broadcast-build +
//     PartitionSelector plan versus the same query with the DPE alternative
//     disabled, as the dimension filter selects a growing fraction of the
//     partitions. Shows the benefit at high selectivity and the break-even
//     when the selector selects everything anyway.
//
//  B. Two-phase (local/global) aggregation versus single-phase: group-by
//     queries where the group count is far smaller than the row count, so
//     moving partial aggregates beats moving rows.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "db/database.h"
#include "types/date.h"
#include "workload/tpcds_lite.h"

namespace mppdb {
namespace {

void AblationDpe() {
  benchutil::Header("Ablation A: dynamic partition elimination on/off");
  workload::TpcdsConfig config;
  config.base_rows = 8000;
  Database db(4);
  MPPDB_CHECK(workload::CreateAndLoadTpcds(&db, config).ok());
  Oid fact = db.catalog().FindTable("store_sales")->oid;

  std::printf("%-22s %10s | %12s %12s | %12s %12s\n", "dimension filter", "months",
              "DPE on (ms)", "parts", "DPE off (ms)", "parts");
  benchutil::Rule(92);
  struct Case {
    const char* label;
    std::string where;
    int months;
  };
  std::vector<Case> cases = {
      {"one month", "d.d_year = 2003 AND d.d_moy = 6", 1},
      {"one quarter", "d.d_year = 2003 AND d.d_moy BETWEEN 7 AND 9", 3},
      {"one year", "d.d_year = 2003", 12},
      {"everything", "d.d_dom >= 1", 24},
  };
  for (const Case& c : cases) {
    std::string sql =
        "SELECT count(*), sum(ss.ss_sales_price) FROM store_sales ss "
        "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk WHERE " +
        c.where;
    QueryOptions on, off;
    off.enable_dynamic_elimination = false;
    size_t on_parts = 0, off_parts = 0;
    double on_ms = benchutil::MedianMillis(3, [&]() {
      auto result = db.Run(sql, on);
      MPPDB_CHECK(result.ok());
      on_parts = result->stats.PartitionsScanned(fact);
    });
    double off_ms = benchutil::MedianMillis(3, [&]() {
      auto result = db.Run(sql, off);
      MPPDB_CHECK(result.ok());
      off_parts = result->stats.PartitionsScanned(fact);
    });
    std::printf("%-22s %10d | %12.2f %12zu | %12.2f %12zu\n", c.label, c.months,
                on_ms, on_parts, off_ms, off_parts);
  }
  std::printf(
      "\nExpectation: large wins while the join selects few partitions;\n"
      "convergence (selector overhead only) when everything qualifies.\n");
}

void AblationTwoPhaseAgg() {
  benchutil::Header("Ablation B: two-phase vs single-phase aggregation");
  Database db(4);
  MPPDB_CHECK(db.CreateTable("events",
                             Schema({{"user_id", TypeId::kInt64},
                                     {"kind", TypeId::kInt64},
                                     {"value", TypeId::kInt64}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  Random rng(31337);
  std::vector<Row> rows;
  for (int i = 0; i < 200000; ++i) {
    rows.push_back({Datum::Int64(rng.UniformRange(0, 100000)),
                    Datum::Int64(rng.UniformRange(0, 15)),
                    Datum::Int64(rng.UniformRange(0, 1000))});
  }
  MPPDB_CHECK(db.Load("events", rows).ok());

  // `kind` is not the distribution key: single-phase must move every row,
  // two-phase moves 16 partial groups per segment.
  const char* sql = "SELECT kind, count(*), sum(value) FROM events GROUP BY kind";
  QueryOptions two_phase, single_phase;
  single_phase.enable_two_phase_agg = false;

  size_t moved_two = 0, moved_single = 0;
  double two_ms = benchutil::MedianMillis(3, [&]() {
    auto result = db.Run(sql, two_phase);
    MPPDB_CHECK(result.ok());
    MPPDB_CHECK(result->rows.size() == 16);
    moved_two = result->stats.rows_moved;
  });
  double single_ms = benchutil::MedianMillis(3, [&]() {
    auto result = db.Run(sql, single_phase);
    MPPDB_CHECK(result.ok());
    MPPDB_CHECK(result->rows.size() == 16);
    moved_single = result->stats.rows_moved;
  });
  std::printf("%-16s %12s %18s\n", "mode", "median (ms)", "rows moved");
  benchutil::Rule(50);
  std::printf("%-16s %12.2f %18zu\n", "two-phase", two_ms, moved_two);
  std::printf("%-16s %12.2f %18zu\n", "single-phase", single_ms, moved_single);
  std::printf("\nExpectation: two-phase moves orders of magnitude fewer rows\n"
              "through the interconnect and wins on wall clock.\n");
}

void AblationIndexJoin() {
  benchutil::Header(
      "Ablation C: Index-Join vs hash join + dynamic elimination (paper 2.2)");
  Database db(4);
  MPPDB_CHECK(db.Run("CREATE TABLE fact (sk bigint, item bigint, price double) "
                     "DISTRIBUTED BY (item) "
                     "PARTITION BY RANGE (sk) START 0 END 2000 EVERY 100")
                  .ok());
  MPPDB_CHECK(db.Run("CREATE TABLE keys (k bigint, tag bigint) DISTRIBUTED BY (k)")
                  .ok());
  Random rng(5);
  std::vector<Row> rows;
  for (int i = 0; i < 120000; ++i) {
    rows.push_back({Datum::Int64(rng.UniformRange(0, 1999)),
                    Datum::Int64(rng.UniformRange(0, 500)),
                    Datum::Double(rng.NextDouble() * 10)});
  }
  MPPDB_CHECK(db.Load("fact", rows).ok());
  MPPDB_CHECK(db.Run("CREATE INDEX ON fact (sk)").ok());
  Oid fact = db.catalog().FindTable("fact")->oid;

  std::printf("%12s | %14s %10s %12s | %14s %10s %12s\n", "outer rows",
              "index (ms)", "parts", "tuples", "hash+DPE (ms)", "parts", "tuples");
  benchutil::Rule(96);
  const char* sql = "SELECT count(*) FROM keys p JOIN fact f ON p.k = f.sk";
  for (int outer : {2, 16, 128, 1024}) {
    MPPDB_CHECK(db.Run("DELETE FROM keys").ok());
    std::vector<Row> key_rows;
    for (int i = 0; i < outer; ++i) {
      key_rows.push_back({Datum::Int64(rng.UniformRange(0, 1999)),
                          Datum::Int64(i)});
    }
    MPPDB_CHECK(db.Load("keys", key_rows).ok());

    QueryOptions with_index, without_index;
    without_index.enable_index_join = false;
    size_t idx_parts = 0, idx_tuples = 0, dpe_parts = 0, dpe_tuples = 0;
    double idx_ms = benchutil::MedianMillis(3, [&]() {
      auto result = db.Run(sql, with_index);
      MPPDB_CHECK(result.ok());
      idx_parts = result->stats.PartitionsScanned(fact);
      idx_tuples = result->stats.tuples_scanned;
    });
    double dpe_ms = benchutil::MedianMillis(3, [&]() {
      auto result = db.Run(sql, without_index);
      MPPDB_CHECK(result.ok());
      dpe_parts = result->stats.PartitionsScanned(fact);
      dpe_tuples = result->stats.tuples_scanned;
    });
    std::printf("%12d | %14.2f %10zu %12zu | %14.2f %10zu %12zu\n", outer, idx_ms,
                idx_parts, idx_tuples, dpe_ms, dpe_parts, dpe_tuples);
  }
  std::printf(
      "\nExpectation: index lookups read only matching tuples and win for\n"
      "small outer sides; hash join + DPE catches up as the outer grows\n"
      "(the optimizer may itself switch strategies at large outer sizes).\n");
}

}  // namespace
}  // namespace mppdb

int main() {
  mppdb::AblationDpe();
  mppdb::AblationTwoPhaseAgg();
  mppdb::AblationIndexJoin();
  return 0;
}
