// Reproduces the paper's Figure 18(b): plan size for a join with a dynamic
// partition-eliminating predicate, varying the number of partitions of the
// two tables:
//
//   SELECT * FROM r, s WHERE r.b = s.b AND s.a < 100;
//
// Paper result: the legacy Planner supports parameter-based dynamic
// elimination, but its plan must still list every partition, so plan size
// grows linearly with the partition count; the Orca-style plan is
// (essentially) independent of it.

#include <cstdio>

#include "bench_util.h"
#include "db/database.h"

namespace mppdb {
namespace {

// Builds R(a,b), S(a,b) partitioned on b into `parts` ranges and loads a few
// rows (plan size does not depend on volume).
void Setup(Database* db, int parts) {
  for (const char* name : {"r", "s"}) {
    Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}});
    MPPDB_CHECK(db->CreatePartitionedTable(name, schema, TableDistribution::kHashed,
                                           {0}, {{1, PartitionMethod::kRange}},
                                           {partition_bounds::IntRanges(0, 10, parts)})
                    .ok());
    std::vector<Row> rows;
    for (int i = 0; i < 50; ++i) {
      rows.push_back({Datum::Int64(i * 7 % 500), Datum::Int64((i * 13) % (parts * 10))});
    }
    MPPDB_CHECK(db->Load(name, rows).ok());
  }
}

void RunBenchmark() {
  benchutil::Header("Figure 18(b): plan size, dynamic (join) partition elimination");
  std::printf("query: SELECT * FROM r, s WHERE r.b = s.b AND s.a < 100\n\n");
  std::printf("%10s %18s %16s\n", "#parts", "Planner plan (B)", "Orca plan (B)");
  benchutil::Rule(48);
  for (int parts : {50, 100, 150, 200, 250, 300}) {
    Database db(4);
    Setup(&db, parts);
    const char* sql = "SELECT * FROM r, s WHERE r.b = s.b AND s.a < 100";

    QueryOptions planner;
    planner.optimizer = OptimizerKind::kLegacyPlanner;
    auto planner_plan = db.PlanSql(sql, planner);
    MPPDB_CHECK(planner_plan.ok());
    auto orca_plan = db.PlanSql(sql);
    MPPDB_CHECK(orca_plan.ok());

    std::printf("%10d %18zu %16zu\n", parts, SerializePlan(*planner_plan).size(),
                SerializePlan(*orca_plan).size());
  }
  std::printf(
      "\nExpectation (paper): Planner grows linearly in the partition count;\n"
      "Orca's plan size is independent of it.\n");
}

}  // namespace
}  // namespace mppdb

int main() {
  mppdb::RunBenchmark();
  return 0;
}
