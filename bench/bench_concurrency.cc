// Concurrent query serving: the dispatcher, admission control, and the
// parameterized plan cache under multi-client load.
//
// Three measurements back DESIGN.md §11 ("Serving layer"):
//   1. Plan-cache win: the same parameterized SELECT family served
//      repeatedly through Database::Execute with the cache off (full
//      parse+bind+Cascades per call) vs on (normalize, LRU hit, rebind $n,
//      execute). Reports per-statement p50/p95/p99 latency and the hit
//      rate; asserts cached results stay identical to fresh results across
//      parameter values.
//   2. Throughput curve: 1..64 closed-loop clients submitting a mixed
//      SELECT workload through a SessionManager (bounded admission queue,
//      one resource group wide enough to admit them all). Reports QPS and
//      client-observed latency percentiles per client count. On a
//      multi-core box the curve rises until the morsel scheduler's workers
//      saturate; on a single hardware thread it stays flat by design —
//      the numbers recorded are whatever the box gives.
//   3. Admission control: a deliberately tiny group (2 slots) and queue
//      bound under a burst of clients; asserts saturated groups queue
//      (group_waits > 0, nothing fails) and overflowed queues reject with
//      kResourceExhausted.
//
// Emits BENCH_concurrency.json. `--smoke` shrinks data, clients, and
// iterations for the release_concurrency_smoke ctest gate, which asserts
// the correctness invariants (identical rows, hits observed, typed
// rejections), not speed.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "catalog/partition_scheme.h"
#include "common/random.h"
#include "db/database.h"
#include "server/session_manager.h"

namespace mppdb {
namespace {

struct BenchSizes {
  size_t order_rows = 200000;
  int parts = 16;
  int segments = 4;
  int cache_iterations = 60;
  std::vector<int> client_counts = {1, 2, 4, 8, 16, 32, 64};
  int queries_per_client = 12;
};

BenchSizes SmokeSizes() {
  BenchSizes sizes;
  sizes.order_rows = 20000;
  sizes.parts = 8;
  sizes.segments = 2;
  sizes.cache_iterations = 10;
  sizes.client_counts = {1, 4};
  sizes.queries_per_client = 6;
  return sizes;
}

/// orders(sk bigint, region bigint, amount double), range-partitioned on sk
/// so the cached plans carry PartitionSelectors that re-evaluate $n at run
/// time (the paper's dynamic elimination under prepared statements).
void BuildOrders(Database* db, const BenchSizes& sizes) {
  Schema schema({{"sk", TypeId::kInt64},
                 {"region", TypeId::kInt64},
                 {"amount", TypeId::kDouble}});
  const int64_t step = static_cast<int64_t>(sizes.order_rows) / sizes.parts;
  auto oid = db->CreatePartitionedTable(
      "orders", schema, TableDistribution::kHashed, {0},
      {{0, PartitionMethod::kRange}},
      {partition_bounds::IntRanges(0, step, sizes.parts)});
  MPPDB_CHECK(oid.ok());
  Random rng(20260809);
  std::vector<Row> rows;
  rows.reserve(sizes.order_rows);
  for (size_t i = 0; i < sizes.order_rows; ++i) {
    rows.push_back({Datum::Int64(static_cast<int64_t>(i)),
                    Datum::Int64(rng.UniformRange(0, 7)),
                    Datum::Double(static_cast<double>(rng.UniformRange(1, 1000)))});
  }
  MPPDB_CHECK(db->Load("orders", rows).ok());
}

/// The repeated statement family: same shape, different literals — exactly
/// what the lexer-level normalizer folds onto one cache entry.
std::string RangeCountSql(int64_t lo, int64_t hi) {
  return "SELECT count(*), sum(amount) FROM orders WHERE sk >= " +
         std::to_string(lo) + " AND sk < " + std::to_string(hi);
}

std::string RegionSumSql(int64_t below) {
  return "SELECT region, sum(amount) FROM orders WHERE sk < " +
         std::to_string(below) + " GROUP BY region ORDER BY region";
}

std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = Datum::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

int RunBenchmark(bool smoke) {
  const BenchSizes sizes = smoke ? SmokeSizes() : BenchSizes{};
  std::vector<benchutil::BenchJsonEntry> entries;
  entries.push_back(
      {"env",
       {{"smoke", smoke ? 1.0 : 0.0},
        {"order_rows", static_cast<double>(sizes.order_rows)},
        {"segments", static_cast<double>(sizes.segments)},
        {"hardware_threads",
         static_cast<double>(std::thread::hardware_concurrency())}}});

  Database db(sizes.segments, Executor::Options{.parallel = true});
  BuildOrders(&db, sizes);

  const int64_t span = static_cast<int64_t>(sizes.order_rows);

  // --- 1. Plan-cache win ---------------------------------------------------
  benchutil::Header("Plan cache: repeated parameterized SELECT (ms/stmt)");
  std::printf("%-12s %8s %8s %8s %8s %8s\n", "mode", "p50", "p95", "p99", "mean",
              "min");
  benchutil::Rule(58);
  // Correctness first: cached plans must return bit-identical rows to fresh
  // plans for every parameter value (the $n-invariance property).
  for (int i = 0; i < 5; ++i) {
    const int64_t lo = (span / 7) * i / 5;
    const std::string sql = RangeCountSql(lo, lo + span / 3);
    auto fresh = db.Execute(sql, {});
    QueryOptions cached_opts;
    cached_opts.use_plan_cache = true;
    auto cached = db.Execute(sql, cached_opts);
    MPPDB_CHECK(fresh.ok() && cached.ok());
    MPPDB_CHECK(SortedRows(fresh->rows) == SortedRows(cached->rows));
  }
  db.plan_cache().Clear();

  // The timed statement is short and selective (one partition's worth of
  // rows): the serving-workload shape the cache exists for, where
  // parse+bind+Cascades is a meaningful share of the statement and the win
  // is measurable above execution noise. Wide analytic scans amortize
  // planning away on their own; the correctness loop above covers those.
  double cached_p50 = 0, fresh_p50 = 0;
  const int64_t width = std::max<int64_t>(1, span / (sizes.parts * 4));
  for (const bool use_cache : {false, true}) {
    QueryOptions opts;
    opts.use_plan_cache = use_cache;
    Random rng(7);
    // Warm allocator, lazy synopses, and (cache-on) the cache entry itself,
    // so the timed samples measure the steady state of each mode.
    for (int i = 0; i < 3; ++i) {
      MPPDB_CHECK(db.Execute(RangeCountSql(i, i + width), opts).ok());
    }
    std::vector<double> times;
    for (int i = 0; i < sizes.cache_iterations; ++i) {
      const int64_t lo = rng.UniformRange(0, static_cast<int>(span / 2));
      const std::string sql = RangeCountSql(lo, lo + width);
      times.push_back(benchutil::MeasureMillis(0, 3, [&]() {
                        auto result = db.Execute(sql, opts);
                        MPPDB_CHECK(result.ok());
                        MPPDB_CHECK(result->plan_cache_hit == use_cache);
                      }).min_ms);
    }
    benchutil::TimingStats stats = benchutil::SummarizeMillis(times);
    std::printf("%-12s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                use_cache ? "cache-on" : "cache-off", stats.median_ms, stats.p95_ms,
                stats.p99_ms, stats.mean_ms, stats.min_ms);
    entries.push_back({use_cache ? "cache_on" : "cache_off",
                       {{"p50_ms", stats.median_ms},
                        {"p95_ms", stats.p95_ms},
                        {"p99_ms", stats.p99_ms},
                        {"mean_ms", stats.mean_ms},
                        {"min_ms", stats.min_ms}}});
    (use_cache ? cached_p50 : fresh_p50) = stats.median_ms;
  }
  const PlanCache::Stats cache_stats = db.plan_cache().stats();
  const double hit_rate =
      cache_stats.hits + cache_stats.misses == 0
          ? 0.0
          : static_cast<double>(cache_stats.hits) /
                static_cast<double>(cache_stats.hits + cache_stats.misses);
  std::printf("cache: %llu hits / %llu misses (%.0f%% hit rate); "
              "p50 speedup %.2fx\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses), 100 * hit_rate,
              cached_p50 > 0 ? fresh_p50 / cached_p50 : 0.0);
  entries.push_back({"cache_totals",
                     {{"hits", static_cast<double>(cache_stats.hits)},
                      {"misses", static_cast<double>(cache_stats.misses)},
                      {"hit_rate", hit_rate},
                      {"p50_speedup", cached_p50 > 0 ? fresh_p50 / cached_p50 : 0}}});
  // The whole point of the cache: repeated statements must not pay
  // parse+bind+Cascades again. One miss (the first), hits after.
  MPPDB_CHECK(cache_stats.hits > 0);
  MPPDB_CHECK(cached_p50 <= fresh_p50);

  // --- 2. Multi-client throughput curve ------------------------------------
  benchutil::Header("Throughput: closed-loop clients through SessionManager");
  std::printf("%-8s %10s %10s %10s %10s %8s\n", "clients", "qps", "p50ms",
              "p95ms", "p99ms", "hit%");
  benchutil::Rule(62);
  for (const int clients : sizes.client_counts) {
    const uint64_t hits_before = db.plan_cache().stats().hits;
    const uint64_t lookups_before =
        db.plan_cache().stats().hits + db.plan_cache().stats().misses;
    SessionManagerConfig config;
    config.worker_threads = clients;
    config.max_queue_depth = static_cast<size_t>(clients) * 4 + 16;
    config.use_plan_cache = true;
    config.groups = {{"serve", clients, 0}};
    SessionManager manager(&db, config);

    std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
    std::atomic<int> failures{0};
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> client_threads;
    client_threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c]() {
        Random rng(100 + c);
        for (int q = 0; q < sizes.queries_per_client; ++q) {
          const int64_t lo = rng.UniformRange(0, static_cast<int>(span / 2));
          const std::string sql = (q % 3 == 2)
                                      ? RegionSumSql(lo + span / 8)
                                      : RangeCountSql(lo, lo + span / 4);
          auto t0 = std::chrono::steady_clock::now();
          SubmitOptions submit;
          submit.group = "serve";
          auto result = manager.Run(sql, submit);
          auto t1 = std::chrono::steady_clock::now();
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          latencies[static_cast<size_t>(c)].push_back(
              std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
                  t1 - t0)
                  .count());
        }
      });
    }
    for (std::thread& t : client_threads) t.join();
    const double wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start)
            .count();
    manager.Shutdown();
    MPPDB_CHECK(failures.load() == 0);
    const SessionManager::Stats serve_stats = manager.stats();
    MPPDB_CHECK(serve_stats.rejected_queue_full == 0);

    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    MPPDB_CHECK(!all.empty());
    benchutil::TimingStats stats = benchutil::SummarizeMillis(all);
    const double qps = 1000.0 * static_cast<double>(all.size()) / wall_ms;
    const PlanCache::Stats after = db.plan_cache().stats();
    const uint64_t lookups =
        after.hits + after.misses - lookups_before;
    const double run_hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(after.hits - hits_before) /
                           static_cast<double>(lookups);
    std::printf("%-8d %10.1f %10.3f %10.3f %10.3f %7.0f%%\n", clients, qps,
                stats.median_ms, stats.p95_ms, stats.p99_ms, 100 * run_hit_rate);
    entries.push_back({"clients_" + std::to_string(clients),
                       {{"clients", static_cast<double>(clients)},
                        {"qps", qps},
                        {"p50_ms", stats.median_ms},
                        {"p95_ms", stats.p95_ms},
                        {"p99_ms", stats.p99_ms},
                        {"hit_rate", run_hit_rate}}});
  }

  // --- 3. Admission control: saturation queues, overflow rejects ----------
  benchutil::Header("Admission control: 2-slot group, bounded queue");
  {
    SessionManagerConfig config;
    config.worker_threads = 4;
    config.max_queue_depth = 4;
    config.use_plan_cache = true;
    config.groups = {{"tiny", 2, 64u << 20}};
    SessionManager manager(&db, config);

    // Burst: up to queue depth admitted; the rest bounce with a typed error.
    std::vector<std::future<Result<QueryResult>>> futures;
    const int burst = 12;
    for (int i = 0; i < burst; ++i) {
      SubmitOptions submit;
      submit.group = "tiny";
      futures.push_back(
          manager.Submit(RangeCountSql(0, span / 2 + i), submit));
    }
    int ok_count = 0, rejected = 0;
    for (auto& f : futures) {
      Result<QueryResult> result = f.get();
      if (result.ok()) {
        ++ok_count;
      } else {
        MPPDB_CHECK(result.status().code() == StatusCode::kResourceExhausted);
        ++rejected;
      }
    }
    manager.Shutdown();
    const SessionManager::Stats serve_stats = manager.stats();
    std::printf("burst %d: %d served, %d rejected (queue bound %zu); "
                "group waits %llu, peak queue %zu\n",
                burst, ok_count, rejected, config.max_queue_depth,
                static_cast<unsigned long long>(serve_stats.group_waits),
                serve_stats.peak_queue_depth);
    // Saturated group => queries queued rather than failed; overflow is the
    // only rejection, and everything admitted completed.
    MPPDB_CHECK(ok_count >= 1);
    MPPDB_CHECK(ok_count + rejected == burst);
    MPPDB_CHECK(serve_stats.completed == static_cast<uint64_t>(ok_count));
    MPPDB_CHECK(serve_stats.failed == 0);
    auto groups = manager.group_states();
    MPPDB_CHECK(groups.at("tiny").peak_running <= 2);
    entries.push_back({"admission_burst",
                       {{"burst", static_cast<double>(burst)},
                        {"served", static_cast<double>(ok_count)},
                        {"rejected", static_cast<double>(rejected)},
                        {"group_waits",
                         static_cast<double>(serve_stats.group_waits)},
                        {"peak_running",
                         static_cast<double>(groups.at("tiny").peak_running)}}});
  }

  benchutil::WriteBenchJson("BENCH_concurrency.json", "concurrency", entries);
  std::printf("\nOK\n");
  return 0;
}

}  // namespace
}  // namespace mppdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return mppdb::RunBenchmark(smoke);
}
