// Columnar storage formats: scan wall-clock and bytes-scanned for selective
// filters over a partitioned fact table stored row-oriented vs
// column-oriented with encoded-data predicate evaluation, in both the
// row-at-a-time and vectorized paths; per-column compression ratios of the
// encoded images; and Motion throughput with dictionary-encoded transfer on
// vs off. The headline workloads filter unclustered dictionary/RLE columns,
// where zone maps provably cannot skip — any win is the encoded fast path's.
// Identical-result checks ride along with every measurement: the encoded path
// may only change its own ExecStats counters, never rows or logical stats.
//
// Emits BENCH_storage.json. `--smoke` shrinks the data for the ctest gate
// (release_storage_smoke), which asserts correctness plus the >= 2x headline
// speedup of encoded evaluation over the row baseline on the dictionary
// workload.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "db/database.h"
#include "exec/plan.h"
#include "expr/expr.h"

namespace mppdb {
namespace {

struct BenchSizes {
  size_t fact_rows = 800000;
  int segments = 4;
  int partitions = 8;
  int iterations = 7;
};

BenchSizes SmokeSizes() {
  BenchSizes sizes;
  sizes.fact_rows = 80000;
  sizes.segments = 2;
  sizes.partitions = 4;
  sizes.iterations = 3;
  return sizes;
}

void ZeroEncodedCounters(ExecStats* stats) {
  stats->chunks_encoded_eval = 0;
  stats->rows_late_materialized = 0;
  stats->encoded_bytes_scanned = 0;
  stats->colstore_rebuilds_shed = 0;
}

/// Measures `plan` on the row-store and column-store databases (identical
/// contents) in the row and vectorized paths, checks bit-identical rows and
/// (modulo the encoded counters) bit-identical stats, and appends a JSON
/// entry. Returns the row-path speedup of encoded evaluation.
double CompareStorageModes(const std::string& name, Database* db_row,
                           Database* db_col, const PhysPtr& plan, int iterations,
                           std::vector<benchutil::BenchJsonEntry>* entries) {
  Executor row_base(&db_row->catalog(), &db_row->storage());
  Executor row_enc(&db_col->catalog(), &db_col->storage());
  Executor vec_base(&db_row->catalog(), &db_row->storage(),
                    Executor::Options{.vectorized = true});
  Executor vec_enc(&db_col->catalog(), &db_col->storage(),
                   Executor::Options{.vectorized = true});

  Result<std::vector<Row>> baseline = row_base.Execute(plan);
  MPPDB_CHECK(baseline.ok());
  const ExecStats baseline_stats = row_base.stats();
  for (Executor* exec : {&row_enc, &vec_base, &vec_enc}) {
    Result<std::vector<Row>> result = exec->Execute(plan);
    MPPDB_CHECK(result.ok());
    MPPDB_CHECK(*result == *baseline);
    ExecStats stats = exec->stats();
    ZeroEncodedCounters(&stats);
    MPPDB_CHECK(stats == baseline_stats);
  }
  // The encoded fast path must actually engage on both columnar legs.
  const ExecStats enc_stats = row_enc.stats();
  MPPDB_CHECK(enc_stats.chunks_encoded_eval > 0);
  MPPDB_CHECK(vec_enc.stats().chunks_encoded_eval > 0);

  benchutil::TimingStats row_base_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(row_base.Execute(plan).ok()); });
  benchutil::TimingStats row_enc_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(row_enc.Execute(plan).ok()); });
  benchutil::TimingStats vec_base_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(vec_base.Execute(plan).ok()); });
  benchutil::TimingStats vec_enc_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(vec_enc.Execute(plan).ok()); });

  const double row_speedup = row_base_t.median_ms / row_enc_t.median_ms;
  const double vec_speedup = vec_base_t.median_ms / vec_enc_t.median_ms;
  std::printf("%-16s %8zu %8zu %10zu %8.2f %8.2f %6.2fx %8.2f %8.2f %6.2fx\n",
              name.c_str(), baseline->size(),
              static_cast<size_t>(enc_stats.chunks_encoded_eval),
              static_cast<size_t>(enc_stats.encoded_bytes_scanned),
              row_base_t.median_ms, row_enc_t.median_ms, row_speedup,
              vec_base_t.median_ms, vec_enc_t.median_ms, vec_speedup);
  entries->push_back(
      {name,
       {{"rows_out", static_cast<double>(baseline->size())},
        {"tuples_scanned", static_cast<double>(enc_stats.tuples_scanned)},
        {"chunks_encoded_eval", static_cast<double>(enc_stats.chunks_encoded_eval)},
        {"rows_late_materialized",
         static_cast<double>(enc_stats.rows_late_materialized)},
        {"encoded_bytes_scanned",
         static_cast<double>(enc_stats.encoded_bytes_scanned)},
        {"row_store_ms", row_base_t.median_ms},
        {"column_encoded_ms", row_enc_t.median_ms},
        {"row_speedup", row_speedup},
        {"vec_store_ms", vec_base_t.median_ms},
        {"vec_encoded_ms", vec_enc_t.median_ms},
        {"vec_speedup", vec_speedup}}});
  return row_speedup;
}

int RunBenchmark(bool smoke) {
  const BenchSizes sizes = smoke ? SmokeSizes() : BenchSizes{};
  std::vector<benchutil::BenchJsonEntry> entries;
  entries.push_back({"env", {{"smoke", smoke ? 1.0 : 0.0},
                             {"fact_rows", static_cast<double>(sizes.fact_rows)}}});

  benchutil::Header("Columnar storage formats: row vs column vs encoded eval");
  // fact(k, b, tag, qty, price): partitioned on b, hashed on k. tag cycles
  // through 64 strings (dictionary territory, unclustered so zone maps are
  // useless), qty arrives in runs of 64 (RLE territory), k is ascending
  // (bit-packing + clustering), price is high-NDV (plain).
  Schema schema({{"k", TypeId::kInt64},
                 {"b", TypeId::kInt64},
                 {"tag", TypeId::kString},
                 {"qty", TypeId::kInt64},
                 {"price", TypeId::kDouble}});
  const int64_t b_domain = static_cast<int64_t>(sizes.partitions) * 10;
  Random rng(7070);
  std::vector<Row> rows;
  rows.reserve(sizes.fact_rows);
  for (size_t i = 0; i < sizes.fact_rows; ++i) {
    char tag[16];
    std::snprintf(tag, sizeof(tag), "tag_%02zu", i % 64);
    rows.push_back({Datum::Int64(static_cast<int64_t>(i)),
                    Datum::Int64(static_cast<int64_t>(i) % b_domain),
                    Datum::String(tag),
                    Datum::Int64(static_cast<int64_t>(i / 64) % 10),
                    Datum::Double(rng.NextDouble() * 1000)});
  }
  Database db_row(sizes.segments);
  Database db_col(sizes.segments);
  for (Database* db : {&db_row, &db_col}) {
    MPPDB_CHECK(db->CreatePartitionedTable(
                       "fact", schema, TableDistribution::kHashed, {0},
                       {{1, PartitionMethod::kRange}},
                       {partition_bounds::IntRanges(0, 10, sizes.partitions)})
                    .ok());
    MPPDB_CHECK(db->Load("fact", rows).ok());
  }
  MPPDB_CHECK(
      db_col.Run("ALTER TABLE fact SET WITH (orientation = column)").ok());
  const TableDescriptor* fact = db_col.catalog().FindTable("fact");

  // Per-column compression ratios of the encoded images (built eagerly here
  // so lazy encode cost never lands inside a measured scan).
  {
    TableStore* store = db_col.storage().GetStore(fact->oid);
    std::vector<size_t> col_plain(schema.size(), 0), col_encoded(schema.size(), 0);
    size_t total_plain = 0, total_encoded = 0;
    for (Oid unit : store->UnitOids()) {
      for (int segment = 0; segment < store->num_segments(); ++segment) {
        const SliceColumns* cols = store->UnitColumns(unit, segment);
        if (cols == nullptr) continue;
        total_plain += cols->plain_bytes;
        total_encoded += cols->encoded_bytes;
        for (size_t c = 0; c < cols->columns.size(); ++c) {
          for (const EncodedColumnChunk& chunk : cols->columns[c]) {
            col_plain[c] += chunk.plain_bytes;
            col_encoded[c] += chunk.encoded_bytes;
          }
        }
      }
    }
    std::printf("compression: table %.2fx", static_cast<double>(total_plain) /
                                                static_cast<double>(total_encoded));
    std::vector<std::pair<std::string, double>> metrics;
    metrics.push_back({"table_ratio", static_cast<double>(total_plain) /
                                          static_cast<double>(total_encoded)});
    for (size_t c = 0; c < schema.size(); ++c) {
      const double ratio = static_cast<double>(col_plain[c]) /
                           static_cast<double>(col_encoded[c]);
      std::printf("  %s %.2fx", schema.column(c).name.c_str(), ratio);
      metrics.push_back({schema.column(c).name + "_ratio", ratio});
    }
    std::printf("\n\n");
    MPPDB_CHECK(total_encoded < total_plain);
    entries.push_back({"compression", metrics});
  }

  auto filter_plan = [&](ExprPtr pred) {
    std::vector<PhysPtr> scans;
    for (Oid leaf : fact->partition_scheme->AllLeafOids()) {
      scans.push_back(std::make_shared<TableScanNode>(
          fact->oid, leaf, std::vector<ColRefId>{1, 2, 3, 4, 5}));
    }
    auto append = std::make_shared<AppendNode>(scans);
    auto filter = std::make_shared<FilterNode>(pred, append);
    return std::make_shared<MotionNode>(MotionKind::kGather,
                                        std::vector<ColRefId>{}, filter);
  };
  auto tag_col = [] { return MakeColumnRef(3, "tag", TypeId::kString); };
  auto qty_col = [] { return MakeColumnRef(4, "qty", TypeId::kInt64); };
  auto k_col = [] { return MakeColumnRef(1, "k", TypeId::kInt64); };

  std::printf("%-16s %8s %8s %10s %8s %8s %7s %8s %8s %7s\n", "workload", "out",
              "enc-chk", "enc-bytes", "row-ms", "enc-ms", "spd", "vec-ms",
              "venc-ms", "spd");
  benchutil::Rule(100);

  // Headline: selective equality on the unclustered dictionary column.
  const double dict_speedup = CompareStorageModes(
      "dict_selective", &db_row, &db_col,
      filter_plan(MakeComparison(CompareOp::kEq, tag_col(),
                                 MakeConst(Datum::String("tag_07")))),
      sizes.iterations, &entries);
  // IN list over the dictionary column.
  CompareStorageModes(
      "dict_in_list", &db_row, &db_col,
      filter_plan(MakeInList({tag_col(), MakeConst(Datum::String("tag_03")),
                              MakeConst(Datum::String("tag_33")),
                              MakeConst(Datum::String("tag_55"))})),
      sizes.iterations, &entries);
  // Selective equality on the run-length column (run skipping).
  CompareStorageModes(
      "rle_selective", &db_row, &db_col,
      filter_plan(MakeComparison(CompareOp::kEq, qty_col(),
                                 MakeConst(Datum::Int64(3)))),
      sizes.iterations, &entries);
  // Range on the bit-packed clustered column (zone maps help both sides;
  // frame-of-reference compares on top).
  CompareStorageModes(
      "bitpack_range", &db_row, &db_col,
      filter_plan(MakeComparison(
          CompareOp::kLt, k_col(),
          MakeConst(Datum::Int64(static_cast<int64_t>(sizes.fact_rows / 10))))),
      sizes.iterations, &entries);
  // Conjunction with an arithmetic residual: encoded prefix + late-
  // materialized residual evaluation.
  CompareStorageModes(
      "dict_residual", &db_row, &db_col,
      filter_plan(Conj(
          {MakeComparison(CompareOp::kEq, tag_col(),
                          MakeConst(Datum::String("tag_12"))),
           MakeComparison(CompareOp::kLt,
                          MakeArith(ArithOp::kMul,
                                    MakeColumnRef(5, "price", TypeId::kDouble),
                                    MakeConst(Datum::Double(2.0))),
                          MakeConst(Datum::Double(900.0)))})),
      sizes.iterations, &entries);

  // Motion throughput: a forced single-phase GROUP BY on tag redistributes
  // every row by a 64-value string key — dictionary territory on the wire.
  {
    QueryOptions plan_options;
    plan_options.enable_two_phase_agg = false;
    Result<PhysPtr> motion_plan =
        db_col.PlanSql("SELECT tag, count(*) FROM fact GROUP BY tag", plan_options);
    MPPDB_CHECK(motion_plan.ok());
    Executor enc_on(&db_col.catalog(), &db_col.storage());
    Executor enc_off(&db_col.catalog(), &db_col.storage(),
                     Executor::Options{.encoded_motion = false});
    Result<std::vector<Row>> on_rows = enc_on.Execute(*motion_plan);
    Result<std::vector<Row>> off_rows = enc_off.Execute(*motion_plan);
    MPPDB_CHECK(on_rows.ok() && off_rows.ok());
    MPPDB_CHECK(*on_rows == *off_rows);
    MPPDB_CHECK(enc_on.stats().motion_rows_encoded > 0);
    MPPDB_CHECK(enc_on.stats().motion_bytes_saved > 0);
    MPPDB_CHECK(enc_off.stats().motion_rows_encoded == 0);
    MPPDB_CHECK(enc_on.stats().rows_moved == enc_off.stats().rows_moved);
    const double rows_moved = static_cast<double>(enc_on.stats().rows_moved);

    benchutil::TimingStats on_t = benchutil::MeasureMillis(
        /*warmup=*/1, sizes.iterations,
        [&]() { MPPDB_CHECK(enc_on.Execute(*motion_plan).ok()); });
    benchutil::TimingStats off_t = benchutil::MeasureMillis(
        /*warmup=*/1, sizes.iterations,
        [&]() { MPPDB_CHECK(enc_off.Execute(*motion_plan).ok()); });
    const double on_rows_per_s = rows_moved / (on_t.median_ms / 1000.0);
    const double off_rows_per_s = rows_moved / (off_t.median_ms / 1000.0);
    std::printf("\nmotion (redistribute by tag): plain %.0f rows/s, "
                "encoded %.0f rows/s, %zu rows encoded, %zu bytes saved\n",
                off_rows_per_s, on_rows_per_s,
                static_cast<size_t>(enc_on.stats().motion_rows_encoded),
                static_cast<size_t>(enc_on.stats().motion_bytes_saved));
    entries.push_back(
        {"motion_redistribute",
         {{"rows_moved", rows_moved},
          {"motion_rows_encoded",
           static_cast<double>(enc_on.stats().motion_rows_encoded)},
          {"motion_bytes_saved",
           static_cast<double>(enc_on.stats().motion_bytes_saved)},
          {"plain_ms", off_t.median_ms},
          {"encoded_ms", on_t.median_ms},
          {"plain_rows_per_s", off_rows_per_s},
          {"encoded_rows_per_s", on_rows_per_s}}});
  }

  if (smoke) {
    // The gate's acceptance bar: the selective dictionary scan must be at
    // least 2x faster than the row-store baseline.
    std::printf("\nsmoke: dict_selective row-path speedup %.2fx (need >= 2)\n",
                dict_speedup);
    MPPDB_CHECK(dict_speedup >= 2.0);
  } else {
    benchutil::WriteBenchJson("BENCH_storage.json", "storage_formats", entries);
  }
  return 0;
}

}  // namespace
}  // namespace mppdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return mppdb::RunBenchmark(smoke);
}
