// Fault-tolerant execution: the price of resilience and the speed of escape.
//
// Four measurements back DESIGN.md's "Failure model" section:
//   1. Fault-free overhead: the same plans through Executor::Execute with no
//      QueryContext vs. a fully armed one (deadline set, budget limited,
//      fault injector attached with nothing armed) — the cost of the
//      batch-granularity liveness checks and budget charges on the hot
//      paths, in {serial, parallel} x {row, vectorized}. The acceptance bar
//      is <= 2%.
//   2. Cancellation latency: Cancel() fired from a second thread into a
//      running parallel join; p50/p99 milliseconds from the cancel call to
//      Execute returning with every worker joined.
//   3. Transient-retry cost: a query whose first attempt dies of an injected
//      transient I/O fault, cured by the Database retry loop — total wall
//      clock vs. the fault-free run.
//   4. Budget sweep: limits from starvation to comfort; every run must be
//      oracle rows (advisory allocations may shed) or typed
//      kResourceExhausted.
//
// Emits BENCH_resilience.json. `--smoke` shrinks data and iterations for
// the release_resilience_smoke ctest gate, which asserts the correctness
// invariants (typed codes, identical rows, successful retries), not speed.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "db/database.h"
#include "exec/plan.h"
#include "runtime/query_context.h"

namespace mppdb {
namespace {

struct BenchSizes {
  size_t fact_rows = 300000;
  int segments = 4;
  int iterations = 11;
  int cancel_samples = 40;
};

BenchSizes SmokeSizes() {
  BenchSizes sizes;
  sizes.fact_rows = 20000;
  sizes.segments = 2;
  sizes.iterations = 2;
  sizes.cancel_samples = 5;
  return sizes;
}

/// Gather(Filter(sk in [lo, hi))(TableScan fact)): the scan/filter hot loop.
PhysPtr FilterPlan(Database* db, int64_t lo, int64_t hi) {
  const TableDescriptor* fact = db->catalog().FindTable("fact");
  auto scan = std::make_shared<TableScanNode>(fact->oid, fact->oid,
                                              std::vector<ColRefId>{1, 2});
  ExprPtr ge = MakeComparison(CompareOp::kGe,
                              MakeColumnRef(1, "sk", TypeId::kInt64),
                              MakeConst(Datum::Int64(lo)));
  ExprPtr lt = MakeComparison(CompareOp::kLt,
                              MakeColumnRef(1, "sk", TypeId::kInt64),
                              MakeConst(Datum::Int64(hi)));
  PhysPtr filter = std::make_shared<FilterNode>(Conj({ge, lt}), scan);
  return std::make_shared<MotionNode>(MotionKind::kGather,
                                      std::vector<ColRefId>{}, filter);
}

/// Redistribute-both-sides hash join under a Gather: exchanges, build
/// tables, and the rendezvous barrier all on the measured path.
PhysPtr JoinPlan(Database* db) {
  const TableDescriptor* fact = db->catalog().FindTable("fact");
  const TableDescriptor* dim = db->catalog().FindTable("dim");
  auto dim_scan = std::make_shared<TableScanNode>(dim->oid, dim->oid,
                                                  std::vector<ColRefId>{11, 12});
  PhysPtr build = std::make_shared<MotionNode>(MotionKind::kRedistribute,
                                               std::vector<ColRefId>{11}, dim_scan);
  auto fact_scan = std::make_shared<TableScanNode>(fact->oid, fact->oid,
                                                   std::vector<ColRefId>{1, 2});
  PhysPtr probe = std::make_shared<MotionNode>(MotionKind::kRedistribute,
                                               std::vector<ColRefId>{1}, fact_scan);
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{1},
      nullptr, build, probe);
  return std::make_shared<MotionNode>(MotionKind::kGather,
                                      std::vector<ColRefId>{}, join);
}

/// A QueryContext in its most expensive fault-free configuration: deadline
/// armed (every CheckAlive reads the clock), budget limited (every charge
/// runs the atomics), injector attached with nothing armed (every named
/// point takes the map-lookup miss).
void ArmContext(QueryContext* ctx, FaultInjector* injector) {
  ctx->Reset();
  ctx->SetTimeout(std::chrono::hours(1));
  ctx->budget().set_limit(size_t{1} << 40);
  ctx->set_fault_injector(injector);
}

int RunBenchmark(bool smoke) {
  const BenchSizes sizes = smoke ? SmokeSizes() : BenchSizes{};
  std::vector<benchutil::BenchJsonEntry> entries;
  entries.push_back({"env", {{"smoke", smoke ? 1.0 : 0.0},
                             {"fact_rows", static_cast<double>(sizes.fact_rows)},
                             {"segments", static_cast<double>(sizes.segments)}}});

  Database db(sizes.segments);
  MPPDB_CHECK(db.CreateTable("fact",
                             Schema({{"sk", TypeId::kInt64}, {"v", TypeId::kInt64}}),
                             TableDistribution::kHashed, {1})
                  .ok());
  MPPDB_CHECK(db.CreateTable("dim",
                             Schema({{"k", TypeId::kInt64}, {"t", TypeId::kInt64}}),
                             TableDistribution::kHashed, {1})
                  .ok());
  Random rng(2026);
  std::vector<Row> rows;
  rows.reserve(sizes.fact_rows);
  for (size_t i = 0; i < sizes.fact_rows; ++i) {
    rows.push_back({Datum::Int64(static_cast<int64_t>(i)),
                    Datum::Int64(rng.UniformRange(0, 999))});
  }
  MPPDB_CHECK(db.Load("fact", rows).ok());
  std::vector<Row> dim_rows;
  const int64_t dim_keys = static_cast<int64_t>(sizes.fact_rows / 20);
  for (int64_t k = 0; k < dim_keys; ++k) {
    dim_rows.push_back({Datum::Int64(k * 7), Datum::Int64(k)});
  }
  MPPDB_CHECK(db.Load("dim", dim_rows).ok());

  const PhysPtr filter_plan =
      FilterPlan(&db, 0, static_cast<int64_t>(sizes.fact_rows / 2));
  const PhysPtr join_plan = JoinPlan(&db);

  // --- 1. Fault-free overhead ---------------------------------------------
  benchutil::Header("Fault-free overhead: armed QueryContext vs none (min ms)");
  std::printf("%-22s %-12s %10s %10s %8s\n", "plan", "mode", "no-ctx", "ctx",
              "ovh%");
  benchutil::Rule(68);
  struct ModeDef {
    const char* name;
    Executor::Options options;
  };
  const ModeDef modes[] = {
      {"serial/row", {}},
      {"serial/vec", {.vectorized = true}},
      {"parallel/row", {.parallel = true}},
      {"parallel/vec", {.parallel = true, .vectorized = true}},
  };
  double worst_overhead_pct = 0;
  double sum_overhead_pct = 0;
  int num_overhead_configs = 0;
  for (const auto& [plan_name, plan] :
       std::vector<std::pair<std::string, PhysPtr>>{{"scan_filter", filter_plan},
                                                    {"hash_join", join_plan}}) {
    for (const ModeDef& mode : modes) {
      Executor exec(&db.catalog(), &db.storage(), mode.options);
      FaultInjector injector(1);  // attached, nothing armed
      QueryContext ctx;

      auto bare = exec.Execute(plan);
      MPPDB_CHECK(bare.ok());
      ArmContext(&ctx, &injector);
      auto armed = exec.Execute(plan, &ctx);
      MPPDB_CHECK(armed.ok());
      MPPDB_CHECK(*armed == *bare);  // the context is invisible in results

      // Interleave the two variants A/B/A/B so slow machine-wide drift
      // (allocator state, CPU frequency, co-tenants) hits both sides alike;
      // back-to-back blocks of each variant showed ±10% run-to-run swings
      // that swamped the signal under test.
      std::vector<double> no_ctx_ms, ctx_ms;
      for (int i = 0; i < sizes.iterations; ++i) {
        no_ctx_ms.push_back(benchutil::MeasureMillis(0, 1, [&]() {
                              MPPDB_CHECK(exec.Execute(plan).ok());
                            }).median_ms);
        ctx_ms.push_back(benchutil::MeasureMillis(0, 1, [&]() {
                           ArmContext(&ctx, &injector);
                           MPPDB_CHECK(exec.Execute(plan, &ctx).ok());
                         }).median_ms);
      }
      // Overhead = min vs min: scheduler/throttling noise is one-sided (it
      // only ever adds time), so the fastest observed run of each variant is
      // the cleanest estimate of its true cost. Medians of interleaved
      // samples still swung ±7% run-to-run on shared hardware.
      std::sort(no_ctx_ms.begin(), no_ctx_ms.end());
      std::sort(ctx_ms.begin(), ctx_ms.end());
      const double no_ctx = no_ctx_ms.front();
      const double with_ctx = ctx_ms.front();
      const double overhead_pct = (with_ctx / no_ctx - 1.0) * 100.0;
      worst_overhead_pct = std::max(worst_overhead_pct, overhead_pct);
      sum_overhead_pct += overhead_pct;
      ++num_overhead_configs;
      std::printf("%-22s %-12s %9.2f %9.2f %7.2f%%\n", plan_name.c_str(),
                  mode.name, no_ctx, with_ctx, overhead_pct);
      entries.push_back(
          {"overhead_" + plan_name + "_" + mode.name,
           {{"no_ctx_ms", no_ctx},
            {"ctx_ms", with_ctx},
            {"overhead_pct", overhead_pct}}});
    }
  }
  const double mean_overhead_pct =
      sum_overhead_pct / static_cast<double>(num_overhead_configs);
  std::printf("mean across %d configs: %.2f%% (per-config noise floor on "
              "shared hardware is several %%)\n",
              num_overhead_configs, mean_overhead_pct);
  entries.push_back({"overhead_summary",
                     {{"worst_pct", worst_overhead_pct},
                      {"mean_pct", mean_overhead_pct}}});

  // --- 2. Cancellation latency --------------------------------------------
  benchutil::Header("Cancellation latency (parallel join, external cancel)");
  {
    Executor exec(&db.catalog(), &db.storage(),
                  Executor::Options{.parallel = true});
    // Baseline runtime so the cancel can be timed to land mid-query.
    QueryContext ctx;
    auto baseline = exec.Execute(join_plan, &ctx);
    MPPDB_CHECK(baseline.ok());
    const double full_ms =
        benchutil::MedianMillis(std::max(2, sizes.iterations), [&]() {
          ctx.Reset();
          MPPDB_CHECK(exec.Execute(join_plan, &ctx).ok());
        });

    std::vector<double> latencies;
    size_t cancelled_runs = 0;
    for (int sample = 0; sample < sizes.cancel_samples; ++sample) {
      ctx.Reset();
      // Spread cancel points across the query's lifetime.
      const double at_ms =
          full_ms * (static_cast<double>(sample % 10) + 0.5) / 10.0;
      std::chrono::steady_clock::time_point cancel_at;
      Result<std::vector<Row>> result = Status::Internal("not run");
      std::thread runner(
          [&]() { result = exec.Execute(join_plan, &ctx); });
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(at_ms));
      cancel_at = std::chrono::steady_clock::now();
      ctx.Cancel();
      runner.join();
      const double latency_ms =
          std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
              std::chrono::steady_clock::now() - cancel_at)
              .count();
      if (result.ok()) {
        // The cancel landed after completion; not a latency sample.
        MPPDB_CHECK(*result == *baseline);
        continue;
      }
      MPPDB_CHECK(result.status().code() == StatusCode::kCancelled);
      latencies.push_back(latency_ms);
      ++cancelled_runs;
    }
    std::sort(latencies.begin(), latencies.end());
    const double p50 =
        latencies.empty() ? 0 : benchutil::PercentileSorted(latencies, 0.5);
    const double p99 =
        latencies.empty() ? 0 : benchutil::PercentileSorted(latencies, 0.99);
    std::printf("query %.2f ms; %zu/%d cancelled mid-run; latency p50 %.3f ms, "
                "p99 %.3f ms\n",
                full_ms, cancelled_runs, sizes.cancel_samples, p50, p99);
    entries.push_back({"cancellation",
                       {{"query_ms", full_ms},
                        {"samples", static_cast<double>(sizes.cancel_samples)},
                        {"cancelled_mid_run", static_cast<double>(cancelled_runs)},
                        {"latency_p50_ms", p50},
                        {"latency_p99_ms", p99}}});
    // After every cancellation the executor must still produce the answer.
    ctx.Reset();
    auto after = exec.Execute(join_plan, &ctx);
    MPPDB_CHECK(after.ok());
    MPPDB_CHECK(*after == *baseline);
  }

  // --- 3. Transient retry -------------------------------------------------
  benchutil::Header("Transient-retry cost (Database retry loop)");
  {
    QueryOptions plain;
    auto oracle = db.ExecutePlan(join_plan, plain);
    MPPDB_CHECK(oracle.ok());
    const double clean_ms = benchutil::MedianMillis(sizes.iterations, [&]() {
      MPPDB_CHECK(db.ExecutePlan(join_plan, plain).ok());
    });
    const double retried_ms = benchutil::MedianMillis(sizes.iterations, [&]() {
      FaultInjector injector(7);
      FaultSpec transient;
      transient.kind = FaultKind::kTransient;
      transient.max_fires = 1;
      injector.Arm("motion.recv", transient);
      QueryOptions options;
      options.fault_injector = &injector;
      options.retry_backoff_ms = 0;
      auto result = db.ExecutePlan(join_plan, options);
      MPPDB_CHECK(result.ok());  // first attempt died, the retry cured it
      MPPDB_CHECK(result->rows == oracle->rows);
      MPPDB_CHECK(injector.fires("motion.recv") == 1);
    });
    std::printf("clean %.2f ms, with one cured transient fault %.2f ms "
                "(%.2fx)\n",
                clean_ms, retried_ms, retried_ms / clean_ms);
    entries.push_back({"transient_retry",
                       {{"clean_ms", clean_ms},
                        {"retried_ms", retried_ms},
                        {"retry_cost_ratio", retried_ms / clean_ms}}});
  }

  // --- 4. Budget sweep ----------------------------------------------------
  benchutil::Header("Memory-budget sweep (join plan)");
  {
    Executor exec(&db.catalog(), &db.storage());
    QueryContext ctx;
    ctx.budget().set_limit(size_t{1} << 40);
    auto oracle = exec.Execute(join_plan, &ctx);
    MPPDB_CHECK(oracle.ok());
    const size_t peak = ctx.budget().peak();
    std::printf("%14s %12s %10s\n", "limit", "outcome", "peak");
    benchutil::Rule(40);
    size_t succeeded = 0, exhausted = 0;
    for (double fraction : {0.01, 0.25, 0.5, 0.9, 1.0, 2.0}) {
      const size_t limit = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(peak) * fraction));
      ctx.budget().set_limit(limit);
      auto result = exec.Execute(join_plan, &ctx);
      if (result.ok()) {
        MPPDB_CHECK(*result == *oracle);
        ++succeeded;
      } else {
        MPPDB_CHECK(result.status().code() == StatusCode::kResourceExhausted);
        ++exhausted;
      }
      std::printf("%14zu %12s %10zu\n", limit,
                  result.ok() ? "ok" : "exhausted", ctx.budget().peak());
    }
    MPPDB_CHECK(succeeded > 0);
    MPPDB_CHECK(exhausted > 0);
    entries.push_back({"budget_sweep",
                       {{"peak_bytes", static_cast<double>(peak)},
                        {"succeeded", static_cast<double>(succeeded)},
                        {"exhausted", static_cast<double>(exhausted)}}});
  }

  if (!smoke) {
    benchutil::WriteBenchJson("BENCH_resilience.json", "resilience", entries);
  }
  return 0;
}

}  // namespace
}  // namespace mppdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return mppdb::RunBenchmark(smoke);
}
