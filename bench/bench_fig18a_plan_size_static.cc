// Reproduces the paper's Figure 18(a): plan size for a query with a constant
// partition-eliminating predicate (l_shipdate < X), varying X so that 1%,
// 25%, 50%, 75%, and 100% of the partitions are selected.
//
// Paper result: the legacy Planner's plan grows linearly with the number of
// selected partitions (each is enumerated as a scan node); the Orca-style
// plan (DynamicScan + PartitionSelector) stays constant.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "db/database.h"
#include "types/date.h"
#include "workload/tpch_lite.h"

namespace mppdb {
namespace {

void RunBenchmark() {
  benchutil::Header("Figure 18(a): plan size, static partition elimination");

  workload::TpchConfig config;
  config.rows = 2000;  // plan size does not depend on data volume
  Database db(4);
  MPPDB_CHECK(workload::CreateAndLoadLineitem(
                  &db, config, workload::LineitemPartitioning::kMonthly84, "lineitem")
                  .ok());

  const int total_parts = 84;
  const int32_t first_day = date::FromYMD(config.start_year, 1, 1);
  const int32_t last_day = date::FromYMD(config.start_year + config.years, 1, 1);

  std::printf("%12s %10s %18s %16s\n", "% selected", "#parts", "Planner plan (B)",
              "Orca plan (B)");
  benchutil::Rule(62);
  for (int percent : {1, 25, 50, 75, 100}) {
    int32_t cutoff =
        first_day + static_cast<int32_t>((static_cast<int64_t>(last_day - first_day) *
                                          percent) /
                                         100);
    if (percent == 1) cutoff = first_day + 30;  // one month's partition
    std::string sql = "SELECT * FROM lineitem WHERE l_shipdate < DATE '" +
                      date::ToString(cutoff) + "'";

    QueryOptions planner;
    planner.optimizer = OptimizerKind::kLegacyPlanner;
    auto planner_plan = db.PlanSql(sql, planner);
    MPPDB_CHECK(planner_plan.ok());
    auto orca_plan = db.PlanSql(sql);
    MPPDB_CHECK(orca_plan.ok());

    std::printf("%11d%% %10d %18zu %16zu\n", percent,
                std::max(1, total_parts * percent / 100),
                SerializePlan(*planner_plan).size(), SerializePlan(*orca_plan).size());
  }
  std::printf(
      "\nExpectation (paper): Planner grows linearly with the selected\n"
      "partition count; Orca stays flat.\n");
}

}  // namespace
}  // namespace mppdb

int main() {
  mppdb::RunBenchmark();
  return 0;
}
