// Row-at-a-time vs vectorized execution: wall-clock for a filter-heavy scan
// at several selectivities (the fused selection-vector scan never copies
// filtered-out tuples), a colocated hash join (batched key hashing), and a
// grouped aggregation. Identical-result checks ride along with every
// measurement — the vectorized path must be bit-identical to the row oracle.
//
// Emits BENCH_vectorized.json with row_ms / vec_ms / speedup per workload.
// `--smoke` shrinks the data and iteration counts for the ctest gate
// (release_vectorized_smoke), which asserts correctness, not speed.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "db/database.h"
#include "exec/plan.h"
#include "expr/expr.h"

namespace mppdb {
namespace {

struct BenchSizes {
  size_t filter_rows = 200000;
  size_t join_build_rows = 2000;
  size_t join_probe_rows = 120000;
  size_t agg_rows = 150000;
  int iterations = 5;
};

BenchSizes SmokeSizes() {
  BenchSizes sizes;
  sizes.filter_rows = 5000;
  sizes.join_build_rows = 100;
  sizes.join_probe_rows = 4000;
  sizes.agg_rows = 5000;
  sizes.iterations = 2;
  return sizes;
}

/// Measures `plan` under both executors, checks bit-identical rows and stats,
/// and appends a JSON entry named `name`.
void CompareModes(const std::string& name, Database* db, const PhysPtr& plan,
                  int iterations, std::vector<benchutil::BenchJsonEntry>* entries) {
  Executor row_exec(&db->catalog(), &db->storage());
  Executor vec_exec(&db->catalog(), &db->storage(),
                    Executor::Options{.vectorized = true});

  Result<std::vector<Row>> row_rows = row_exec.Execute(plan);
  Result<std::vector<Row>> vec_rows = vec_exec.Execute(plan);
  MPPDB_CHECK(row_rows.ok() && vec_rows.ok());
  MPPDB_CHECK(*row_rows == *vec_rows);
  MPPDB_CHECK(row_exec.stats() == vec_exec.stats());

  benchutil::TimingStats row_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(row_exec.Execute(plan).ok()); });
  benchutil::TimingStats vec_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(vec_exec.Execute(plan).ok()); });
  double speedup = row_t.median_ms / vec_t.median_ms;
  std::printf("%-18s %10zu rows out %10.2f %10.2f %9.2fx\n", name.c_str(),
              row_rows->size(), row_t.median_ms, vec_t.median_ms, speedup);
  entries->push_back({name,
                      {{"rows_out", static_cast<double>(row_rows->size())},
                       {"row_ms", row_t.median_ms},
                       {"row_min_ms", row_t.min_ms},
                       {"vec_ms", vec_t.median_ms},
                       {"vec_min_ms", vec_t.min_ms},
                       {"speedup", speedup}}});
}

/// Filter-heavy scan: t(k BIGINT, u BIGINT, v DOUBLE) with u uniform in
/// [0, 100), plan Gather(Filter(u < threshold, TableScan)) — the fused
/// selection-vector path versus per-row EvalPredicate plus full scan copies.
void BenchFilterScan(const BenchSizes& sizes,
                     std::vector<benchutil::BenchJsonEntry>* entries) {
  benchutil::Header("Filter-heavy scan, row vs vectorized");
  Database db(4);
  MPPDB_CHECK(db.CreateTable("t",
                             Schema({{"k", TypeId::kInt64},
                                     {"u", TypeId::kInt64},
                                     {"v", TypeId::kDouble}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  Random rng(1234);
  std::vector<Row> rows;
  rows.reserve(sizes.filter_rows);
  for (size_t i = 0; i < sizes.filter_rows; ++i) {
    rows.push_back({Datum::Int64(static_cast<int64_t>(i)),
                    Datum::Int64(rng.UniformRange(0, 99)),
                    Datum::Double(rng.NextDouble() * 100)});
  }
  MPPDB_CHECK(db.Load("t", rows).ok());
  const TableDescriptor* t = db.catalog().FindTable("t");

  std::printf("%-18s %19s %10s %10s %10s\n", "selectivity", "", "row (ms)",
              "vec (ms)", "speedup");
  benchutil::Rule(70);
  for (int threshold : {1, 10, 50, 90}) {
    auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                                std::vector<ColRefId>{1, 2, 3});
    ExprPtr pred =
        MakeComparison(CompareOp::kLt, MakeColumnRef(2, "u", TypeId::kInt64),
                       MakeConst(Datum::Int64(threshold)));
    auto filter = std::make_shared<FilterNode>(pred, scan);
    auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                               std::vector<ColRefId>{}, filter);
    char name[32];
    std::snprintf(name, sizeof(name), "filter_sel=0.%02d", threshold);
    CompareModes(name, &db, gather, sizes.iterations, entries);
  }
}

/// Colocated hash join: both sides hash-distributed on the join key, so the
/// plan is Gather(HashJoin(build scan, probe scan)) with no interconnect
/// motion — the measurement isolates the batched key-hash pipeline.
void BenchHashJoin(const BenchSizes& sizes,
                   std::vector<benchutil::BenchJsonEntry>* entries) {
  benchutil::Header("Colocated hash join, row vs vectorized");
  Database db(4);
  MPPDB_CHECK(db.CreateTable("build",
                             Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kInt64}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  MPPDB_CHECK(db.CreateTable("probe",
                             Schema({{"fk", TypeId::kInt64}, {"w", TypeId::kDouble}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  Random rng(77);
  std::vector<Row> build_rows;
  build_rows.reserve(sizes.join_build_rows);
  for (size_t i = 0; i < sizes.join_build_rows; ++i) {
    build_rows.push_back({Datum::Int64(static_cast<int64_t>(i)),
                          Datum::Int64(static_cast<int64_t>(i % 13))});
  }
  std::vector<Row> probe_rows;
  probe_rows.reserve(sizes.join_probe_rows);
  for (size_t i = 0; i < sizes.join_probe_rows; ++i) {
    // ~half the probe keys hit the build side.
    probe_rows.push_back(
        {Datum::Int64(rng.UniformRange(
             0, static_cast<int64_t>(sizes.join_build_rows) * 2 - 1)),
         Datum::Double(rng.NextDouble())});
  }
  MPPDB_CHECK(db.Load("build", build_rows).ok());
  MPPDB_CHECK(db.Load("probe", probe_rows).ok());
  const TableDescriptor* build = db.catalog().FindTable("build");
  const TableDescriptor* probe = db.catalog().FindTable("probe");

  auto build_scan = std::make_shared<TableScanNode>(build->oid, build->oid,
                                                    std::vector<ColRefId>{1, 2});
  auto probe_scan = std::make_shared<TableScanNode>(probe->oid, probe->oid,
                                                    std::vector<ColRefId>{11, 12});
  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{1}, std::vector<ColRefId>{11},
      nullptr, build_scan, probe_scan);
  auto gather = std::make_shared<MotionNode>(MotionKind::kGather,
                                             std::vector<ColRefId>{}, join);
  std::printf("%-18s %19s %10s %10s %10s\n", "workload", "", "row (ms)", "vec (ms)",
              "speedup");
  benchutil::Rule(70);
  CompareModes("hash_join", &db, gather, sizes.iterations, entries);
}

/// Grouped aggregation over a 64-group column, compiled from SQL so the plan
/// matches what the optimizer emits (including two-phase aggregation).
void BenchHashAgg(const BenchSizes& sizes,
                  std::vector<benchutil::BenchJsonEntry>* entries) {
  benchutil::Header("Grouped aggregation, row vs vectorized");
  Database db(4);
  MPPDB_CHECK(db.CreateTable("m",
                             Schema({{"g", TypeId::kInt64},
                                     {"x", TypeId::kInt64},
                                     {"y", TypeId::kDouble}}),
                             TableDistribution::kHashed, {1})
                  .ok());
  Random rng(99);
  std::vector<Row> rows;
  rows.reserve(sizes.agg_rows);
  for (size_t i = 0; i < sizes.agg_rows; ++i) {
    rows.push_back({Datum::Int64(rng.UniformRange(0, 63)),
                    Datum::Int64(rng.UniformRange(0, 1000)),
                    Datum::Double(rng.NextDouble())});
  }
  MPPDB_CHECK(db.Load("m", rows).ok());
  Result<PhysPtr> plan =
      db.PlanSql("SELECT g, count(*), sum(x), avg(y) FROM m GROUP BY g");
  MPPDB_CHECK(plan.ok());
  std::printf("%-18s %19s %10s %10s %10s\n", "workload", "", "row (ms)", "vec (ms)",
              "speedup");
  benchutil::Rule(70);
  CompareModes("hash_agg", &db, *plan, sizes.iterations, entries);
}

int RunBenchmark(bool smoke) {
  BenchSizes sizes = smoke ? SmokeSizes() : BenchSizes{};
  std::vector<benchutil::BenchJsonEntry> entries;
  entries.push_back({"env", {{"smoke", smoke ? 1.0 : 0.0}}});
  BenchFilterScan(sizes, &entries);
  BenchHashJoin(sizes, &entries);
  BenchHashAgg(sizes, &entries);
  if (!smoke) {
    benchutil::WriteBenchJson("BENCH_vectorized.json", "vectorized_execution",
                              entries);
  }
  return 0;
}

}  // namespace
}  // namespace mppdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return mppdb::RunBenchmark(smoke);
}
