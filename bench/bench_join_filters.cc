// Runtime join filters: selective fact-dimension hash join where neither
// side is stored on the join key, so both sides redistribute — the build
// Motion publishes the cross-segment bloom + min/max summary and the fact
// scan consumes it *below* the probe-side Redistribute, rejecting
// non-joining rows before they are exchanged. Swept across probe-survival
// fractions with filters on vs off, in the row-at-a-time and vectorized
// paths. The fact table is loaded in ascending key order, so the build-side
// min/max composes with the chunk zone maps and skips whole chunks; the
// bloom kernel handles the survivors.
//
// Identical-result checks ride along with every measurement: filters may
// only change the joinfilter_* counters of ExecStats, never rows or any
// pre-existing counter (rows_moved stays logical; the physical exchange
// savings are reported in joinfilter_motion_rows_saved).
//
// Emits BENCH_joinfilter.json with per-selectivity timings, speedups, and
// the rows-exchanged-over-Motion reduction. `--smoke` shrinks the data and
// iteration counts for the ctest gate (release_joinfilter_smoke), which
// asserts correctness and that the filters actually fired, not speed.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "db/database.h"
#include "exec/plan.h"

namespace mppdb {
namespace {

struct BenchSizes {
  size_t fact_rows = 400000;
  int segments = 4;
  int iterations = 5;
};

// Smoke keeps several chunks per segment slice so the min/max skip path is
// still exercised (a single-chunk slice always brackets the dim range).
BenchSizes SmokeSizes() {
  BenchSizes sizes;
  sizes.fact_rows = 24000;
  sizes.segments = 2;
  sizes.iterations = 2;
  return sizes;
}

void ZeroJoinFilterCounters(ExecStats* stats) {
  stats->joinfilter_built = 0;
  stats->joinfilter_probed = 0;
  stats->joinfilter_rows_rejected = 0;
  stats->joinfilter_chunks_skipped = 0;
  stats->joinfilter_motion_rows_saved = 0;
}

/// fact scan (probe annotation, below_motion) -> Redistribute(sk) joined
/// with dim scan -> Redistribute(k) carrying the publish annotation, under a
/// Gather. The same plan runs with Executor::Options::join_filters on and
/// off, so the shapes (and every annotation) are byte-identical across the
/// comparison.
PhysPtr FilteredJoinPlan(Database* db, const std::string& dim_table,
                         double build_rows_est) {
  const TableDescriptor* fact = db->catalog().FindTable("fact");
  const TableDescriptor* dim = db->catalog().FindTable(dim_table);

  auto dim_scan = std::make_shared<TableScanNode>(dim->oid, dim->oid,
                                                  std::vector<ColRefId>{11, 12});
  PhysPtr build_motion = std::make_shared<MotionNode>(
      MotionKind::kRedistribute, std::vector<ColRefId>{11}, dim_scan);
  JoinFilterAnnotations publish_ann;
  JoinFilterSpec spec;
  spec.filter_id = 0;
  spec.key_columns = {11};
  spec.build_rows_est = build_rows_est;
  spec.global = true;
  publish_ann.publishes.push_back(spec);
  build_motion =
      WithJoinFilters(build_motion, build_motion->children(), publish_ann);

  PhysPtr fact_scan = std::make_shared<TableScanNode>(
      fact->oid, fact->oid, std::vector<ColRefId>{1, 2});
  JoinFilterAnnotations probe_ann;
  JoinFilterProbe probe;
  probe.filter_id = 0;
  probe.key_columns = {1};
  probe.global = true;
  probe.below_motion = true;
  probe_ann.probes.push_back(probe);
  fact_scan = WithJoinFilters(fact_scan, fact_scan->children(), probe_ann);
  auto probe_motion = std::make_shared<MotionNode>(
      MotionKind::kRedistribute, std::vector<ColRefId>{1}, fact_scan);

  auto join = std::make_shared<HashJoinNode>(
      JoinType::kInner, std::vector<ColRefId>{11}, std::vector<ColRefId>{1},
      nullptr, build_motion, probe_motion);
  return std::make_shared<MotionNode>(MotionKind::kGather,
                                      std::vector<ColRefId>{}, join);
}

/// Measures `plan` with join filters off and on, in the row and vectorized
/// paths, checks the transparency invariant (identical rows; identical
/// ExecStats once the joinfilter_* counters are masked), and appends a JSON
/// entry named `name`. `expect_filtering` asserts the filters actually
/// rejected rows below the Motion.
void CompareFilterModes(const std::string& name, Database* db,
                        const PhysPtr& plan, int iterations,
                        bool expect_filtering,
                        std::vector<benchutil::BenchJsonEntry>* entries) {
  Executor row_off(&db->catalog(), &db->storage(),
                   Executor::Options{.join_filters = false});
  Executor row_on(&db->catalog(), &db->storage());
  Executor vec_off(&db->catalog(), &db->storage(),
                   Executor::Options{.vectorized = true, .join_filters = false});
  Executor vec_on(&db->catalog(), &db->storage(),
                  Executor::Options{.vectorized = true});

  Result<std::vector<Row>> baseline = row_off.Execute(plan);
  MPPDB_CHECK(baseline.ok());
  const ExecStats baseline_stats = row_off.stats();
  MPPDB_CHECK(baseline_stats.joinfilter_built == 0);
  for (Executor* exec : {&row_on, &vec_off, &vec_on}) {
    Result<std::vector<Row>> result = exec->Execute(plan);
    MPPDB_CHECK(result.ok());
    MPPDB_CHECK(*result == *baseline);
    ExecStats stats = exec->stats();
    ZeroJoinFilterCounters(&stats);
    MPPDB_CHECK(stats == baseline_stats);
  }
  // The two filtering paths must agree on every filter verdict, too.
  MPPDB_CHECK(row_on.stats() == vec_on.stats());
  const ExecStats filter_stats = row_on.stats();
  MPPDB_CHECK(filter_stats.joinfilter_built == 1);
  if (expect_filtering) {
    MPPDB_CHECK(filter_stats.joinfilter_rows_rejected +
                    filter_stats.joinfilter_chunks_skipped >
                0);
    MPPDB_CHECK(filter_stats.joinfilter_motion_rows_saved > 0);
  }

  benchutil::TimingStats row_off_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(row_off.Execute(plan).ok()); });
  benchutil::TimingStats row_on_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(row_on.Execute(plan).ok()); });
  benchutil::TimingStats vec_off_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(vec_off.Execute(plan).ok()); });
  benchutil::TimingStats vec_on_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(vec_on.Execute(plan).ok()); });

  const double row_speedup = row_off_t.median_ms / row_on_t.median_ms;
  const double vec_speedup = vec_off_t.median_ms / vec_on_t.median_ms;
  const double moved = static_cast<double>(filter_stats.rows_moved);
  const double saved =
      static_cast<double>(filter_stats.joinfilter_motion_rows_saved);
  std::printf(
      "%-12s %8zu %9zu %9zu %9zu %8.0f %8.2f %8.2f %6.2fx %8.2f %8.2f %6.2fx\n",
      name.c_str(), baseline->size(), filter_stats.joinfilter_rows_rejected,
      filter_stats.joinfilter_chunks_skipped,
      filter_stats.joinfilter_motion_rows_saved, moved - saved,
      row_off_t.median_ms, row_on_t.median_ms, row_speedup,
      vec_off_t.median_ms, vec_on_t.median_ms, vec_speedup);
  entries->push_back(
      {name,
       {{"rows_out", static_cast<double>(baseline->size())},
        {"jf_probed", static_cast<double>(filter_stats.joinfilter_probed)},
        {"jf_rows_rejected",
         static_cast<double>(filter_stats.joinfilter_rows_rejected)},
        {"jf_chunks_skipped",
         static_cast<double>(filter_stats.joinfilter_chunks_skipped)},
        {"motion_rows_saved", saved},
        {"rows_moved_logical", moved},
        {"rows_exchanged_with_filters", moved - saved},
        {"row_off_ms", row_off_t.median_ms},
        {"row_on_ms", row_on_t.median_ms},
        {"row_speedup", row_speedup},
        {"vec_off_ms", vec_off_t.median_ms},
        {"vec_on_ms", vec_on_t.median_ms},
        {"vec_speedup", vec_speedup}}});
}

void PrintColumns() {
  std::printf("%-12s %8s %9s %9s %9s %8s %8s %8s %7s %8s %8s %7s\n", "survival",
              "out", "rejected", "chk-skip", "mot-save", "exchngd", "row-off",
              "row-on", "spd", "vec-off", "vec-on", "spd");
  benchutil::Rule(112);
}

int RunBenchmark(bool smoke) {
  const BenchSizes sizes = smoke ? SmokeSizes() : BenchSizes{};
  std::vector<benchutil::BenchJsonEntry> entries;
  entries.push_back({"env", {{"smoke", smoke ? 1.0 : 0.0},
                             {"fact_rows", static_cast<double>(sizes.fact_rows)},
                             {"segments", static_cast<double>(sizes.segments)}}});

  benchutil::Header("Runtime join filters, probe-survival sweep");
  // fact(sk, v): sk ascending at load time (clustered, so build min/max can
  // skip chunks), hashed on v so the join must redistribute the probe side
  // on sk. dim_P(k, t) holds keys [0, P% of fact rows), hashed on t so the
  // build side redistributes too and the summary must be the cross-segment
  // merge published at the build Motion.
  Database db(sizes.segments);
  MPPDB_CHECK(db.CreateTable("fact",
                             Schema({{"sk", TypeId::kInt64},
                                     {"v", TypeId::kInt64}}),
                             TableDistribution::kHashed, {1})
                  .ok());
  Random rng(2026);
  std::vector<Row> rows;
  rows.reserve(sizes.fact_rows);
  for (size_t i = 0; i < sizes.fact_rows; ++i) {
    rows.push_back({Datum::Int64(static_cast<int64_t>(i)),
                    Datum::Int64(rng.UniformRange(0, 999))});
  }
  MPPDB_CHECK(db.Load("fact", rows).ok());

  PrintColumns();
  for (int survival_pct : {1, 5, 10, 25, 50, 100}) {
    const int64_t dim_rows = static_cast<int64_t>(
        static_cast<double>(sizes.fact_rows) * survival_pct / 100.0);
    char dim_name[32];
    std::snprintf(dim_name, sizeof(dim_name), "dim_%d", survival_pct);
    MPPDB_CHECK(db.CreateTable(dim_name,
                               Schema({{"k", TypeId::kInt64},
                                       {"t", TypeId::kInt64}}),
                               TableDistribution::kHashed, {1})
                    .ok());
    std::vector<Row> dim_data;
    dim_data.reserve(static_cast<size_t>(dim_rows));
    for (int64_t k = 0; k < dim_rows; ++k) {
      dim_data.push_back({Datum::Int64(k), Datum::Int64(k * 3)});
    }
    MPPDB_CHECK(db.Load(dim_name, dim_data).ok());

    char name[32];
    std::snprintf(name, sizeof(name), "survival_%d%%", survival_pct);
    PhysPtr plan =
        FilteredJoinPlan(&db, dim_name, static_cast<double>(dim_rows));
    CompareFilterModes(name, &db, plan, sizes.iterations,
                       /*expect_filtering=*/survival_pct < 100, &entries);
  }

  if (!smoke) {
    benchutil::WriteBenchJson("BENCH_joinfilter.json", "join_filters", entries);
  }
  return 0;
}

}  // namespace
}  // namespace mppdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return mppdb::RunBenchmark(smoke);
}
