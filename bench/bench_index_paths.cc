// Ordered index access paths: wall-clock for the three shapes the
// Select2IndexSeek / Limit2DynamicIndexScan / MinMax2IndexSeek alternatives
// serve — a selective range predicate, ORDER BY key + LIMIT k, and an
// ungrouped MIN/MAX — each measured three ways over identical data:
//   * full:    index paths off, zone-map skipping off (the pre-index scan),
//   * zoneskip: index paths off, zone-map skipping on (the best the chunk
//               synopses can do; the key column is load-clustered so their
//               ranges are as tight as they get),
//   * index:   index paths on (DynamicIndexScan seeks / walks / probes).
// Bit-identical-result checks ride along with every measurement: all three
// configurations must return the same rows in the same order, and only the
// index leg may touch the index_seeks / index_rows_read / topn_rows_cut
// counters.
//
// Emits BENCH_index.json with per-shape timings and speedups. `--smoke`
// shrinks data and iterations for the ctest gate (release_index_smoke),
// which asserts correctness and plan shape, not speed.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "db/database.h"

namespace mppdb {
namespace {

struct BenchSizes {
  size_t fact_rows = 400000;
  int segments = 4;
  int partitions = 8;
  int iterations = 5;
};

BenchSizes SmokeSizes() {
  BenchSizes sizes;
  sizes.fact_rows = 40000;
  sizes.segments = 2;
  sizes.partitions = 4;
  sizes.iterations = 2;
  return sizes;
}

/// Runs `sql` under the three configurations, checks bit-identical rows and
/// the stats contract, measures each, and appends a JSON entry. `db_noskip`
/// and `db_skip` hold identical data and differ only in the executor's
/// data_skipping option.
void CompareAccessPaths(const std::string& name, const std::string& sql,
                        Database* db_noskip, Database* db_skip, int iterations,
                        std::vector<benchutil::BenchJsonEntry>* entries) {
  QueryOptions no_index;
  no_index.enable_index_paths = false;
  QueryOptions with_index;

  auto full = db_noskip->Run(sql, no_index);
  MPPDB_CHECK(full.ok());
  auto zoneskip = db_skip->Run(sql, no_index);
  MPPDB_CHECK(zoneskip.ok());
  auto index = db_skip->Run(sql, with_index);
  MPPDB_CHECK(index.ok());

  MPPDB_CHECK(full->rows == zoneskip->rows);
  MPPDB_CHECK(full->rows == index->rows);
  // The off legs must not touch the index counters; the index leg must
  // actually have taken an index path (this bench only measures shapes the
  // cost model should favor).
  for (const QueryResult* off : {&*full, &*zoneskip}) {
    MPPDB_CHECK(off->stats.index_seeks == 0);
    MPPDB_CHECK(off->stats.index_rows_read == 0);
    MPPDB_CHECK(off->stats.topn_rows_cut == 0);
  }
  MPPDB_CHECK(index->stats.index_seeks > 0);

  benchutil::TimingStats full_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations,
      [&]() { MPPDB_CHECK(db_noskip->Run(sql, no_index).ok()); });
  benchutil::TimingStats zoneskip_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations,
      [&]() { MPPDB_CHECK(db_skip->Run(sql, no_index).ok()); });
  benchutil::TimingStats index_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations,
      [&]() { MPPDB_CHECK(db_skip->Run(sql, with_index).ok()); });

  double speedup_full = full_t.median_ms / index_t.median_ms;
  double speedup_skip = zoneskip_t.median_ms / index_t.median_ms;
  std::printf("%-14s %8zu %9zu %11zu %9.2f %9.2f %9.2f %7.1fx %7.1fx\n",
              name.c_str(), full->rows.size(), index->stats.index_seeks,
              index->stats.index_rows_read, full_t.median_ms,
              zoneskip_t.median_ms, index_t.median_ms, speedup_full,
              speedup_skip);
  entries->push_back(
      {name,
       {{"rows_out", static_cast<double>(full->rows.size())},
        {"index_seeks", static_cast<double>(index->stats.index_seeks)},
        {"index_rows_read", static_cast<double>(index->stats.index_rows_read)},
        {"topn_rows_cut", static_cast<double>(index->stats.topn_rows_cut)},
        {"full_ms", full_t.median_ms},
        {"zoneskip_ms", zoneskip_t.median_ms},
        {"index_ms", index_t.median_ms},
        {"speedup_vs_fullscan", speedup_full},
        {"speedup_vs_zoneskip", speedup_skip}}});
}

void LoadData(Database* db, const BenchSizes& sizes) {
  // fact(k, b, u): partitioned on b, hashed on u, k ascending at load time
  // so chunk synopses on k are as tight as possible (the zone-map leg gets
  // its best case). Index on k.
  MPPDB_CHECK(db->CreatePartitionedTable(
                     "fact", Schema({{"k", TypeId::kInt64},
                                     {"b", TypeId::kInt64},
                                     {"u", TypeId::kInt64}}),
                     TableDistribution::kHashed, {2},
                     {{1, PartitionMethod::kRange}},
                     {partition_bounds::IntRanges(0, 10, sizes.partitions)})
                  .ok());
  Random rng(7);
  const int64_t b_domain = static_cast<int64_t>(sizes.partitions) * 10;
  std::vector<Row> rows;
  rows.reserve(sizes.fact_rows);
  for (size_t i = 0; i < sizes.fact_rows; ++i) {
    rows.push_back({Datum::Int64(static_cast<int64_t>(i)),
                    Datum::Int64(static_cast<int64_t>(i) % b_domain),
                    Datum::Int64(rng.UniformRange(0, 999999))});
  }
  MPPDB_CHECK(db->Load("fact", rows).ok());
  MPPDB_CHECK(db->Run("CREATE INDEX ON fact (k)").ok());
}

int RunBenchmark(bool smoke) {
  const BenchSizes sizes = smoke ? SmokeSizes() : BenchSizes{};
  std::vector<benchutil::BenchJsonEntry> entries;
  entries.push_back({"env", {{"smoke", smoke ? 1.0 : 0.0},
                             {"fact_rows", static_cast<double>(sizes.fact_rows)}}});

  benchutil::Header("Index access paths: seek vs full scan vs zone-map skip");
  Database db_noskip(sizes.segments, Executor::Options{.data_skipping = false});
  Database db_skip(sizes.segments);
  LoadData(&db_noskip, sizes);
  LoadData(&db_skip, sizes);

  std::printf("%-14s %8s %9s %11s %9s %9s %9s %8s %8s\n", "shape", "out",
              "seeks", "idx-rows", "full", "zoneskip", "index", "vs-full",
              "vs-skip");
  benchutil::Rule(94);

  // Selective range over the indexed (non-partition) column: ~0.1% of rows.
  const int64_t lo = static_cast<int64_t>(sizes.fact_rows / 2);
  const int64_t hi = lo + static_cast<int64_t>(sizes.fact_rows / 1000);
  CompareAccessPaths("range_seek",
                     "SELECT k, u FROM fact WHERE k >= " + std::to_string(lo) +
                         " AND k < " + std::to_string(hi),
                     &db_noskip, &db_skip, sizes.iterations, &entries);

  // ORDER BY key + LIMIT: per-partition ordered walks through a top-N heap
  // against sorting the whole table.
  CompareAccessPaths("orderby_limit", "SELECT k, u FROM fact ORDER BY k LIMIT 100",
                     &db_noskip, &db_skip, sizes.iterations, &entries);

  // Ungrouped MIN/MAX: one first/last-entry probe per unit against a full
  // scan feeding the aggregate.
  CompareAccessPaths("minmax", "SELECT max(k) FROM fact", &db_noskip, &db_skip,
                     sizes.iterations, &entries);

  if (!smoke) {
    benchutil::WriteBenchJson("BENCH_index.json", "index_paths", entries);
  }
  return 0;
}

}  // namespace
}  // namespace mppdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return mppdb::RunBenchmark(smoke);
}
