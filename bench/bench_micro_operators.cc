// Google-benchmark micro benchmarks for the hot primitives behind partition
// selection: tuple routing (f_T), partition selection (f*_T), constraint
// derivation, interval algebra, and end-to-end optimization time for a
// star-join statement.

#include <benchmark/benchmark.h>

#include "catalog/partition_scheme.h"
#include "common/macros.h"
#include "common/random.h"
#include "db/database.h"
#include "expr/constraint_derivation.h"
#include "optimizer/cascades/cascades_optimizer.h"
#include "sql/binder.h"
#include "types/date.h"
#include "workload/tpcds_lite.h"

namespace mppdb {
namespace {

std::unique_ptr<PartitionScheme> MonthlyScheme(int months) {
  Oid next_oid = 1;
  auto root =
      BuildUniformHierarchy({partition_bounds::Monthly(2000, 1, months)}, &next_oid);
  return std::make_unique<PartitionScheme>(
      std::vector<PartitionLevelDesc>{{0, PartitionMethod::kRange}}, std::move(root));
}

void BM_RouteTuple(benchmark::State& state) {
  auto scheme = MonthlyScheme(static_cast<int>(state.range(0)));
  Random rng(42);
  int32_t base = date::FromYMD(2000, 1, 1);
  int32_t span = date::FromYMD(2000 + static_cast<int>(state.range(0)) / 12, 1, 1) - base;
  for (auto _ : state) {
    Datum d = Datum::Date(base + static_cast<int32_t>(rng.Uniform(
                                     static_cast<uint64_t>(span))));
    benchmark::DoNotOptimize(scheme->RouteValues({d}));
  }
}
BENCHMARK(BM_RouteTuple)->Arg(24)->Arg(120)->Arg(360);

void BM_SelectPartitionsRange(benchmark::State& state) {
  auto scheme = MonthlyScheme(static_cast<int>(state.range(0)));
  ConstraintSet quarter = ConstraintSet::FromInterval(
      Interval::Closed(Datum::Date(date::FromYMD(2000, 10, 1)),
                       Datum::Date(date::FromYMD(2000, 12, 31))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->SelectPartitions({quarter}));
  }
}
BENCHMARK(BM_SelectPartitionsRange)->Arg(24)->Arg(120)->Arg(360);

void BM_DeriveConstraint(benchmark::State& state) {
  ExprPtr key = MakeColumnRef(1, "pk", TypeId::kInt64);
  ExprPtr pred = Conj({MakeComparison(CompareOp::kGe, key, MakeConst(Datum::Int64(10))),
                       MakeComparison(CompareOp::kLe, key, MakeConst(Datum::Int64(50))),
                       MakeOr({MakeComparison(CompareOp::kEq, key,
                                              MakeConst(Datum::Int64(20))),
                               MakeComparison(CompareOp::kGt, key,
                                              MakeConst(Datum::Int64(40)))})});
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveConstraint(pred, 1));
  }
}
BENCHMARK(BM_DeriveConstraint);

void BM_ConstraintSetUnion(benchmark::State& state) {
  Random rng(7);
  std::vector<ConstraintSet> sets;
  for (int i = 0; i < 64; ++i) {
    int64_t lo = rng.UniformRange(0, 1000);
    sets.push_back(ConstraintSet::FromInterval(
        Interval::RightOpen(Datum::Int64(lo), Datum::Int64(lo + 50))));
  }
  for (auto _ : state) {
    ConstraintSet acc = ConstraintSet::None();
    for (const auto& s : sets) acc = acc.Union(s);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ConstraintSetUnion);

void BM_OptimizeStarJoin(benchmark::State& state) {
  static Database* db = [] {
    auto* database = new Database(4);
    workload::TpcdsConfig config;
    config.base_rows = 200;
    MPPDB_CHECK(workload::CreateAndLoadTpcds(database, config).ok());
    return database;
  }();
  Binder binder(&db->catalog());
  auto stmt = binder.BindSql(
      "SELECT count(*) FROM store_sales ss "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
      "WHERE d.d_moy = 6 AND i.i_current_price > 10");
  MPPDB_CHECK(stmt.ok());
  for (auto _ : state) {
    CascadesOptimizer optimizer(&db->catalog(), &db->storage());
    auto plan = optimizer.Plan(*stmt);
    MPPDB_CHECK(plan.ok());
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeStarJoin);

// Row-at-a-time vs vectorized filter-over-scan at the selectivity given by
// state.range(0) (percent). One shared database; the two benchmarks differ
// only in Executor::Options::vectorized.
Database* FilterBenchDb() {
  static Database* db = [] {
    auto* database = new Database(4);
    MPPDB_CHECK(database
                    ->CreateTable("bm_filter",
                                  Schema({{"k", TypeId::kInt64},
                                          {"u", TypeId::kInt64}}),
                                  TableDistribution::kHashed, {0})
                    .ok());
    Random rng(5);
    std::vector<Row> rows;
    rows.reserve(50000);
    for (int64_t i = 0; i < 50000; ++i) {
      rows.push_back({Datum::Int64(i), Datum::Int64(rng.UniformRange(0, 99))});
    }
    MPPDB_CHECK(database->Load("bm_filter", rows).ok());
    return database;
  }();
  return db;
}

PhysPtr FilterBenchPlan(Database* db, int64_t threshold) {
  const TableDescriptor* t = db->catalog().FindTable("bm_filter");
  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                              std::vector<ColRefId>{1, 2});
  ExprPtr pred = MakeComparison(CompareOp::kLt,
                                MakeColumnRef(2, "u", TypeId::kInt64),
                                MakeConst(Datum::Int64(threshold)));
  auto filter = std::make_shared<FilterNode>(pred, scan);
  return std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{},
                                      filter);
}

void BM_FilterScanRow(benchmark::State& state) {
  Database* db = FilterBenchDb();
  PhysPtr plan = FilterBenchPlan(db, state.range(0));
  Executor exec(&db->catalog(), &db->storage());
  for (auto _ : state) {
    auto result = exec.Execute(plan);
    MPPDB_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FilterScanRow)->Arg(1)->Arg(10)->Arg(50);

void BM_FilterScanVectorized(benchmark::State& state) {
  Database* db = FilterBenchDb();
  PhysPtr plan = FilterBenchPlan(db, state.range(0));
  Executor exec(&db->catalog(), &db->storage(),
                Executor::Options{.vectorized = true});
  for (auto _ : state) {
    auto result = exec.Execute(plan);
    MPPDB_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FilterScanVectorized)->Arg(1)->Arg(10)->Arg(50);

void BM_ExecutePrunedScan(benchmark::State& state) {
  static Database* db = [] {
    auto* database = new Database(4);
    workload::TpcdsConfig config;
    config.base_rows = 5000;
    MPPDB_CHECK(workload::CreateAndLoadTpcds(database, config).ok());
    return database;
  }();
  std::string sql =
      "SELECT count(*) FROM store_sales WHERE ss_sold_date_sk BETWEEN " +
      std::to_string(date::FromYMD(2003, 10, 1)) + " AND " +
      std::to_string(date::FromYMD(2003, 12, 31));
  for (auto _ : state) {
    auto result = db->Run(sql);
    MPPDB_CHECK(result.ok());
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_ExecutePrunedScan);

}  // namespace
}  // namespace mppdb

BENCHMARK_MAIN();
