// Google-benchmark micro benchmarks for the hot primitives behind partition
// selection: tuple routing (f_T), partition selection (f*_T), constraint
// derivation, interval algebra, and end-to-end optimization time for a
// star-join statement.

#include <benchmark/benchmark.h>

#include <future>

#include "catalog/partition_scheme.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "db/database.h"
#include "expr/constraint_derivation.h"
#include "optimizer/cascades/cascades_optimizer.h"
#include "runtime/propagation.h"
#include "sql/binder.h"
#include "storage/storage.h"
#include "types/date.h"
#include "workload/tpcds_lite.h"

namespace mppdb {
namespace {

std::unique_ptr<PartitionScheme> MonthlyScheme(int months) {
  Oid next_oid = 1;
  auto root =
      BuildUniformHierarchy({partition_bounds::Monthly(2000, 1, months)}, &next_oid);
  return std::make_unique<PartitionScheme>(
      std::vector<PartitionLevelDesc>{{0, PartitionMethod::kRange}}, std::move(root));
}

void BM_RouteTuple(benchmark::State& state) {
  auto scheme = MonthlyScheme(static_cast<int>(state.range(0)));
  Random rng(42);
  int32_t base = date::FromYMD(2000, 1, 1);
  int32_t span = date::FromYMD(2000 + static_cast<int>(state.range(0)) / 12, 1, 1) - base;
  for (auto _ : state) {
    Datum d = Datum::Date(base + static_cast<int32_t>(rng.Uniform(
                                     static_cast<uint64_t>(span))));
    benchmark::DoNotOptimize(scheme->RouteValues({d}));
  }
}
BENCHMARK(BM_RouteTuple)->Arg(24)->Arg(120)->Arg(360);

void BM_SelectPartitionsRange(benchmark::State& state) {
  auto scheme = MonthlyScheme(static_cast<int>(state.range(0)));
  ConstraintSet quarter = ConstraintSet::FromInterval(
      Interval::Closed(Datum::Date(date::FromYMD(2000, 10, 1)),
                       Datum::Date(date::FromYMD(2000, 12, 31))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->SelectPartitions({quarter}));
  }
}
BENCHMARK(BM_SelectPartitionsRange)->Arg(24)->Arg(120)->Arg(360);

void BM_DeriveConstraint(benchmark::State& state) {
  ExprPtr key = MakeColumnRef(1, "pk", TypeId::kInt64);
  ExprPtr pred = Conj({MakeComparison(CompareOp::kGe, key, MakeConst(Datum::Int64(10))),
                       MakeComparison(CompareOp::kLe, key, MakeConst(Datum::Int64(50))),
                       MakeOr({MakeComparison(CompareOp::kEq, key,
                                              MakeConst(Datum::Int64(20))),
                               MakeComparison(CompareOp::kGt, key,
                                              MakeConst(Datum::Int64(40)))})});
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeriveConstraint(pred, 1));
  }
}
BENCHMARK(BM_DeriveConstraint);

void BM_ConstraintSetUnion(benchmark::State& state) {
  Random rng(7);
  std::vector<ConstraintSet> sets;
  for (int i = 0; i < 64; ++i) {
    int64_t lo = rng.UniformRange(0, 1000);
    sets.push_back(ConstraintSet::FromInterval(
        Interval::RightOpen(Datum::Int64(lo), Datum::Int64(lo + 50))));
  }
  for (auto _ : state) {
    ConstraintSet acc = ConstraintSet::None();
    for (const auto& s : sets) acc = acc.Union(s);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ConstraintSetUnion);

void BM_OptimizeStarJoin(benchmark::State& state) {
  static Database* db = [] {
    auto* database = new Database(4);
    workload::TpcdsConfig config;
    config.base_rows = 200;
    MPPDB_CHECK(workload::CreateAndLoadTpcds(database, config).ok());
    return database;
  }();
  Binder binder(&db->catalog());
  auto stmt = binder.BindSql(
      "SELECT count(*) FROM store_sales ss "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
      "WHERE d.d_moy = 6 AND i.i_current_price > 10");
  MPPDB_CHECK(stmt.ok());
  for (auto _ : state) {
    CascadesOptimizer optimizer(&db->catalog(), &db->storage());
    auto plan = optimizer.Plan(*stmt);
    MPPDB_CHECK(plan.ok());
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeStarJoin);

// Row-at-a-time vs vectorized filter-over-scan at the selectivity given by
// state.range(0) (percent). One shared database; the two benchmarks differ
// only in Executor::Options::vectorized.
Database* FilterBenchDb() {
  static Database* db = [] {
    auto* database = new Database(4);
    MPPDB_CHECK(database
                    ->CreateTable("bm_filter",
                                  Schema({{"k", TypeId::kInt64},
                                          {"u", TypeId::kInt64}}),
                                  TableDistribution::kHashed, {0})
                    .ok());
    Random rng(5);
    std::vector<Row> rows;
    rows.reserve(50000);
    for (int64_t i = 0; i < 50000; ++i) {
      rows.push_back({Datum::Int64(i), Datum::Int64(rng.UniformRange(0, 99))});
    }
    MPPDB_CHECK(database->Load("bm_filter", rows).ok());
    return database;
  }();
  return db;
}

PhysPtr FilterBenchPlan(Database* db, int64_t threshold) {
  const TableDescriptor* t = db->catalog().FindTable("bm_filter");
  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                              std::vector<ColRefId>{1, 2});
  ExprPtr pred = MakeComparison(CompareOp::kLt,
                                MakeColumnRef(2, "u", TypeId::kInt64),
                                MakeConst(Datum::Int64(threshold)));
  auto filter = std::make_shared<FilterNode>(pred, scan);
  return std::make_shared<MotionNode>(MotionKind::kGather, std::vector<ColRefId>{},
                                      filter);
}

void BM_FilterScanRow(benchmark::State& state) {
  Database* db = FilterBenchDb();
  PhysPtr plan = FilterBenchPlan(db, state.range(0));
  Executor exec(&db->catalog(), &db->storage());
  for (auto _ : state) {
    auto result = exec.Execute(plan);
    MPPDB_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FilterScanRow)->Arg(1)->Arg(10)->Arg(50);

void BM_FilterScanVectorized(benchmark::State& state) {
  Database* db = FilterBenchDb();
  PhysPtr plan = FilterBenchPlan(db, state.range(0));
  Executor exec(&db->catalog(), &db->storage(),
                Executor::Options{.vectorized = true});
  for (auto _ : state) {
    auto result = exec.Execute(plan);
    MPPDB_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FilterScanVectorized)->Arg(1)->Arg(10)->Arg(50);

void BM_ExecutePrunedScan(benchmark::State& state) {
  static Database* db = [] {
    auto* database = new Database(4);
    workload::TpcdsConfig config;
    config.base_rows = 5000;
    MPPDB_CHECK(workload::CreateAndLoadTpcds(database, config).ok());
    return database;
  }();
  std::string sql =
      "SELECT count(*) FROM store_sales WHERE ss_sold_date_sk BETWEEN " +
      std::to_string(date::FromYMD(2003, 10, 1)) + " AND " +
      std::to_string(date::FromYMD(2003, 12, 31));
  for (auto _ : state) {
    auto result = db->Run(sql);
    MPPDB_CHECK(result.ok());
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_ExecutePrunedScan);

// PartitionPropagationHub::Push sits on the selector's per-joining-tuple hot
// path: one push per (tuple, selected partition), nearly all duplicates. The
// argument is the distinct-OID range; 100k pushes drawn uniformly from it
// per iteration exercise the dedup bitmap at different densities (the
// structure the bitmap replaced was a per-push unordered_set probe).
void BM_HubPushDedup(benchmark::State& state) {
  const uint64_t distinct_oids = static_cast<uint64_t>(state.range(0));
  Random rng(11);
  std::vector<Oid> pushes;
  pushes.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    pushes.push_back(static_cast<Oid>(rng.Uniform(distinct_oids)));
  }
  for (auto _ : state) {
    PartitionPropagationHub hub(1);
    hub.OpenChannel(0, 1);
    for (Oid oid : pushes) hub.Push(0, 1, oid);
    benchmark::DoNotOptimize(hub.Selected(0, 1).size());
  }
}
BENCHMARK(BM_HubPushDedup)->Arg(16)->Arg(256)->Arg(4096);

// Motion exchange throughput: rows per second through one Motion of each
// kind over a 120k-row scan. Exercises the exchange hot path — rows are
// moved (not copied) into the per-destination send buffers, receive vectors
// reserve() from the sender's batch hints, and Broadcast materializes the
// batch once and shares it across the S-1 remote receiver queues.
Database* MotionBenchDb() {
  static Database* db = [] {
    auto* database = new Database(4);
    MPPDB_CHECK(database
                    ->CreateTable("bm_motion",
                                  Schema({{"k", TypeId::kInt64},
                                          {"v", TypeId::kInt64}}),
                                  TableDistribution::kHashed, {0})
                    .ok());
    Random rng(17);
    std::vector<Row> rows;
    rows.reserve(120000);
    for (int64_t i = 0; i < 120000; ++i) {
      rows.push_back({Datum::Int64(i), Datum::Int64(rng.UniformRange(0, 999))});
    }
    MPPDB_CHECK(database->Load("bm_motion", rows).ok());
    return database;
  }();
  return db;
}

void BM_MotionThroughput(benchmark::State& state) {
  Database* db = MotionBenchDb();
  const TableDescriptor* t = db->catalog().FindTable("bm_motion");
  MotionKind kind = MotionKind::kGather;
  std::vector<ColRefId> motion_cols;
  switch (state.range(0)) {
    case 0:
      kind = MotionKind::kGather;
      state.SetLabel("gather");
      break;
    case 1:
      kind = MotionKind::kRedistribute;
      // Redistribute on v, not the stored hash column, so rows reshuffle.
      motion_cols = {2};
      state.SetLabel("redistribute");
      break;
    default:
      kind = MotionKind::kBroadcast;
      state.SetLabel("broadcast");
      break;
  }
  auto scan = std::make_shared<TableScanNode>(t->oid, t->oid,
                                              std::vector<ColRefId>{1, 2});
  PhysPtr plan = std::make_shared<MotionNode>(kind, motion_cols, scan);
  Executor exec(&db->catalog(), &db->storage());
  size_t rows_moved = 0;
  for (auto _ : state) {
    auto result = exec.Execute(plan);
    MPPDB_CHECK(result.ok());
    rows_moved = exec.stats().rows_moved;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows_moved));
}
BENCHMARK(BM_MotionThroughput)->Arg(0)->Arg(1)->Arg(2);

// Index equality seek: TableStore::IndexLookup with equal_range + exact
// reserve over a lazily built sorted index. The argument is the duplicate
// run width per key — wide runs are where sizing the result up front (vs
// growing through push_back) pays.
void BM_IndexEqualitySeek(benchmark::State& state) {
  const int64_t run_width = state.range(0);
  const int64_t total_rows = 60000;
  Database db(1);
  MPPDB_CHECK(db.CreateTable("bm_idx",
                             Schema({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(total_rows));
  for (int64_t i = 0; i < total_rows; ++i) {
    rows.push_back({Datum::Int64(i / run_width), Datum::Int64(i)});
  }
  MPPDB_CHECK(db.Load("bm_idx", rows).ok());
  const TableDescriptor* t = db.catalog().FindTable("bm_idx");
  TableStore* store = db.storage().GetStore(t->oid);
  MPPDB_CHECK(store->CreateIndex(0).ok());
  // Warm lookup so the lazy build lands outside the timed loop.
  MPPDB_CHECK(store->IndexLookup(t->oid, 0, 0, Datum::Int64(0)).size() ==
              static_cast<size_t>(run_width));
  Random rng(13);
  const uint64_t distinct_keys = static_cast<uint64_t>(total_rows / run_width);
  for (auto _ : state) {
    Datum key = Datum::Int64(static_cast<int64_t>(rng.Uniform(distinct_keys)));
    benchmark::DoNotOptimize(store->IndexLookup(t->oid, 0, 0, key));
  }
}
BENCHMARK(BM_IndexEqualitySeek)->Arg(1)->Arg(16)->Arg(256);

// Task-submission overhead of the move-only TaskFn pool: Submit used to copy
// the callable through std::function + std::packaged_task; it now moves a
// TaskFn end to end, so a task carrying a non-trivial payload (a row buffer)
// pays one move, not two copies. Measures round-trip submit+complete latency
// through a single-worker ThreadPool (arg 0) and the MorselScheduler's
// group spawn/wait path (arg 1), batch of 64 tasks per iteration.
void BM_ThreadPoolSubmit(benchmark::State& state) {
  const bool use_scheduler = state.range(0) == 1;
  constexpr int kBatch = 64;
  // The payload makes copy-vs-move visible: 1 KiB of rows per task.
  std::vector<Row> payload;
  for (int64_t i = 0; i < 16; ++i) {
    payload.push_back({Datum::Int64(i), Datum::Int64(i * 3)});
  }
  if (use_scheduler) {
    MorselScheduler scheduler(1);
    for (auto _ : state) {
      MorselScheduler::TaskGroup group(&scheduler);
      for (int i = 0; i < kBatch; ++i) {
        std::vector<Row> task_payload = payload;
        group.Spawn([p = std::move(task_payload)]() {
          benchmark::DoNotOptimize(p.size());
        });
      }
      group.Wait();
    }
  } else {
    ThreadPool pool(1);
    for (auto _ : state) {
      std::future<void> last;
      for (int i = 0; i < kBatch; ++i) {
        std::vector<Row> task_payload = payload;
        last = pool.Submit([p = std::move(task_payload)]() {
          benchmark::DoNotOptimize(p.size());
        });
      }
      last.wait();
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ThreadPoolSubmit)->Arg(0)->Arg(1);

// --- Plan cache: what a hit skips vs what a hit costs -----------------------
//
// BM_ParseBindOptimize is the compile pipeline a cache miss pays per
// statement (normalize + parse + bind + Cascades); BM_CachedPlanLookup is
// the hit path for the same statement (normalize + LRU lookup + parameter
// coercion + $n rebind). Their ratio is the per-statement saving the serving
// layer's cache buys on repeated statements.

std::string CacheBenchSql(int64_t lo) {
  return "SELECT count(*) FROM bm_filter WHERE u >= " + std::to_string(lo) +
         " AND u < " + std::to_string(lo + 40);
}

void BM_ParseBindOptimize(benchmark::State& state) {
  Database* db = FilterBenchDb();
  int64_t lo = 0;
  for (auto _ : state) {
    auto normalized = NormalizeSql(CacheBenchSql(lo++ % 50));
    MPPDB_CHECK(normalized.ok() && normalized->cacheable);
    auto plan = db->PlanSql(normalized->text);
    MPPDB_CHECK(plan.ok());
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ParseBindOptimize);

void BM_CachedPlanLookup(benchmark::State& state) {
  Database* db = FilterBenchDb();
  PlanCache cache(16);
  {
    auto normalized = NormalizeSql(CacheBenchSql(0));
    MPPDB_CHECK(normalized.ok());
    auto entry = std::make_shared<CachedPlan>();
    auto plan = db->PlanSql(normalized->text);
    MPPDB_CHECK(plan.ok());
    entry->plan = *plan;
    entry->params = AnalyzePlanParams(entry->plan);
    cache.Insert(normalized->text, std::move(entry));
  }
  int64_t lo = 0;
  for (auto _ : state) {
    auto normalized = NormalizeSql(CacheBenchSql(lo++ % 50));
    MPPDB_CHECK(normalized.ok());
    auto entry = cache.Lookup(normalized->text);
    MPPDB_CHECK(entry != nullptr);
    auto coerced = CoerceParamValues(entry->params, normalized->params);
    MPPDB_CHECK(coerced.ok());
    auto bound = BindPlanParams(entry->plan, *coerced);
    MPPDB_CHECK(bound.ok());
    benchmark::DoNotOptimize(bound);
  }
}
BENCHMARK(BM_CachedPlanLookup);

// LRU churn: `range(0)` distinct statements cycling through a 16-entry
// cache. 16 or fewer = steady-state hits with splice-to-front bumps; more =
// every insert evicts the tail (the worst case of an undersized cache).
void BM_PlanCacheLru(benchmark::State& state) {
  Database* db = FilterBenchDb();
  const int distinct = static_cast<int>(state.range(0));
  PlanCache cache(16);
  auto entry = std::make_shared<CachedPlan>();
  auto plan = db->PlanSql(CacheBenchSql(0));
  MPPDB_CHECK(plan.ok());
  entry->plan = *plan;
  entry->params = AnalyzePlanParams(entry->plan);
  int64_t next = 0;
  for (auto _ : state) {
    const std::string key = "stmt-" + std::to_string(next++ % distinct);
    if (cache.Lookup(key) == nullptr) cache.Insert(key, entry);
  }
  state.counters["evictions"] =
      static_cast<double>(cache.stats().evictions) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_PlanCacheLru)->Arg(8)->Arg(16)->Arg(64);

}  // namespace
}  // namespace mppdb

BENCHMARK_MAIN();
