// Out-of-core execution: the price of spilling, by data-to-budget ratio.
//
// Three operator legs back DESIGN.md §14 — hybrid hash join, hash
// aggregation, and external sort — each measured with the operator's state
// fitting in memory (unlimited budget) and at 1x / 4x / 16x
// data-to-budget ratios (the budget is the operator's estimated state
// divided by the ratio, so 16x means the operator holds sixteen times more
// state than it may keep resident). Reported per leg: median wall-clock
// milliseconds plus the spill counters (bytes written, passes, sort runs)
// that explain the slope.
//
// Emits BENCH_spill.json. `--smoke` shrinks data and iterations for the
// release_spill_smoke ctest gate, which asserts the correctness invariants —
// spilled rows bit-identical to the in-memory oracle, spilling actually
// engaged at the steep ratios, and zero spill files left behind — not
// speed.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "bench_util.h"
#include "common/memory_budget.h"
#include "common/random.h"
#include "db/database.h"
#include "exec/plan.h"

namespace mppdb {
namespace {

using benchutil::BenchJsonEntry;

struct BenchSizes {
  size_t dim_rows = 100000;
  size_t fact_rows = 200000;
  size_t sort_rows = 200000;
  int iterations = 5;
};

BenchSizes SmokeSizes() {
  BenchSizes sizes;
  sizes.dim_rows = 10000;
  sizes.fact_rows = 20000;
  sizes.sort_rows = 20000;
  sizes.iterations = 2;
  return sizes;
}

size_t FilesUnder(const std::string& dir) {
  namespace fs = std::filesystem;
  size_t n = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file(ec)) ++n;
  }
  return n;
}

struct Leg {
  std::string name;
  PhysPtr plan;
  size_t state_bytes;  // estimated operator state: the "data" in the ratio
};

int RunBenchmark(bool smoke) {
  const BenchSizes sizes = smoke ? SmokeSizes() : BenchSizes{};
  namespace fs = std::filesystem;
  const std::string spill_dir =
      (fs::temp_directory_path() / "mppdb-bench-spill").string();
  fs::create_directories(spill_dir);

  Database db(1);
  MPPDB_CHECK(db.CreateTable("dim", Schema({{"id", TypeId::kInt64},
                                            {"tag", TypeId::kInt64}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  MPPDB_CHECK(db.CreateTable("fact", Schema({{"a", TypeId::kInt64},
                                             {"b", TypeId::kInt64}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  MPPDB_CHECK(db.CreateTable("t", Schema({{"a", TypeId::kInt64},
                                          {"b", TypeId::kInt64},
                                          {"c", TypeId::kDouble}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  Random rng(20260809);
  {
    std::vector<Row> rows;
    for (size_t i = 0; i < sizes.dim_rows; ++i) {
      rows.push_back({Datum::Int64(static_cast<int64_t>(i)),
                      Datum::Int64(static_cast<int64_t>(i) * 2)});
    }
    MPPDB_CHECK(db.Load("dim", rows).ok());
  }
  {
    std::vector<Row> rows;
    for (size_t i = 0; i < sizes.fact_rows; ++i) {
      rows.push_back({Datum::Int64(static_cast<int64_t>(i)),
                      Datum::Int64(rng.UniformRange(
                          0, static_cast<int64_t>(sizes.dim_rows) - 1))});
    }
    MPPDB_CHECK(db.Load("fact", rows).ok());
  }
  {
    std::vector<Row> rows;
    for (size_t i = 0; i < sizes.sort_rows; ++i) {
      rows.push_back(
          {Datum::Int64(static_cast<int64_t>(i)),
           Datum::Int64(static_cast<int64_t>((i * 37) % (sizes.sort_rows / 4))),
           Datum::Double(static_cast<double>(i) * 0.25)});
    }
    MPPDB_CHECK(db.Load("t", rows).ok());
  }

  const Oid dim_oid = db.catalog().FindTable("dim")->oid;
  const Oid fact_oid = db.catalog().FindTable("fact")->oid;
  const Oid t_oid = db.catalog().FindTable("t")->oid;

  std::vector<Leg> legs;
  {
    // Hybrid hash join: build side = dim, every fact row matches.
    auto build = std::make_shared<TableScanNode>(dim_oid, dim_oid,
                                                 std::vector<ColRefId>{11, 12});
    auto probe = std::make_shared<TableScanNode>(fact_oid, fact_oid,
                                                 std::vector<ColRefId>{1, 2});
    legs.push_back({"join",
                    std::make_shared<HashJoinNode>(
                        JoinType::kInner, std::vector<ColRefId>{11},
                        std::vector<ColRefId>{2}, nullptr, build, probe),
                    ApproxRowsBytes(sizes.dim_rows, 2)});
  }
  {
    // Hash aggregation: sort_rows/4 distinct groups of the 3-column table.
    auto scan = std::make_shared<TableScanNode>(t_oid, t_oid,
                                                std::vector<ColRefId>{1, 2, 3});
    legs.push_back(
        {"agg",
         std::make_shared<HashAggNode>(
             std::vector<ColRefId>{2},
             std::vector<AggItem>{
                 {AggFunc::kCountStar, nullptr, 20, "cnt"},
                 {AggFunc::kSum, MakeColumnRef(3, "c", TypeId::kDouble), 21,
                  "sc"}},
             scan),
         ApproxRowsBytes(sizes.sort_rows / 4, 3)});
  }
  {
    // External sort: duplicate-heavy keys over the full table.
    auto scan = std::make_shared<TableScanNode>(t_oid, t_oid,
                                                std::vector<ColRefId>{1, 2, 3});
    legs.push_back({"sort",
                    std::make_shared<SortNode>(
                        std::vector<SortKey>{{2, /*ascending=*/true}}, scan),
                    ApproxRowsBytes(sizes.sort_rows, 3)});
  }

  std::vector<BenchJsonEntry> entries;
  entries.push_back({"env",
                     {{"smoke", smoke ? 1.0 : 0.0},
                      {"dim_rows", static_cast<double>(sizes.dim_rows)},
                      {"fact_rows", static_cast<double>(sizes.fact_rows)},
                      {"sort_rows", static_cast<double>(sizes.sort_rows)}}});

  benchutil::Header("out-of-core execution: wall clock by data-to-budget ratio");
  std::printf("%-6s %10s %12s %14s %12s %8s %6s\n", "leg", "ratio",
              "budget", "median_ms", "spill_MB", "passes", "runs");
  benchutil::Rule(76);

  for (const Leg& leg : legs) {
    QueryOptions unlimited;
    unlimited.spill_dir = spill_dir;
    auto oracle = db.ExecutePlan(leg.plan, unlimited);
    MPPDB_CHECK(oracle.ok());
    MPPDB_CHECK(oracle->stats.spill_bytes_written == 0);

    const size_t ratios[] = {0, 1, 4, 16};  // 0 = unlimited baseline
    for (size_t ratio : ratios) {
      QueryOptions options;
      options.spill_dir = spill_dir;
      if (ratio > 0) options.memory_limit_bytes = leg.state_bytes / ratio;
      ExecStats last_stats;
      double median_ms = benchutil::MedianMillis(sizes.iterations, [&] {
        auto result = db.ExecutePlan(leg.plan, options);
        MPPDB_CHECK(result.ok());
        // Spilling must be invisible in results: bit-identical rows in the
        // same order at every ratio.
        MPPDB_CHECK(result->rows == oracle->rows);
        last_stats = result->stats;
      });
      MPPDB_CHECK(FilesUnder(spill_dir) == 0);
      if (ratio >= 4) {
        // The steep ratios must actually engage the spill machinery.
        MPPDB_CHECK(last_stats.spill_bytes_written > 0);
        MPPDB_CHECK(last_stats.spill_passes > 0);
      }
      const std::string name =
          leg.name + (ratio == 0 ? "_mem" : "_" + std::to_string(ratio) + "x");
      std::printf("%-6s %10s %12zu %14.2f %12.2f %8zu %6zu\n", leg.name.c_str(),
                  ratio == 0 ? "mem" : (std::to_string(ratio) + "x").c_str(),
                  ratio == 0 ? size_t{0} : leg.state_bytes / ratio, median_ms,
                  static_cast<double>(last_stats.spill_bytes_written) / 1e6,
                  last_stats.spill_passes, last_stats.sort_runs);
      entries.push_back(
          {name,
           {{"median_ms", median_ms},
            {"budget_bytes",
             ratio == 0 ? 0.0
                        : static_cast<double>(leg.state_bytes / ratio)},
            {"spill_bytes_written",
             static_cast<double>(last_stats.spill_bytes_written)},
            {"spill_bytes_read",
             static_cast<double>(last_stats.spill_bytes_read)},
            {"spill_partitions",
             static_cast<double>(last_stats.spill_partitions)},
            {"spill_passes", static_cast<double>(last_stats.spill_passes)},
            {"sort_runs", static_cast<double>(last_stats.sort_runs)}}});
    }
  }

  benchutil::WriteBenchJson("BENCH_spill.json", "spill", entries);
  std::error_code ec;
  fs::remove_all(spill_dir, ec);
  if (smoke) std::printf("smoke OK\n");
  return 0;
}

}  // namespace
}  // namespace mppdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return mppdb::RunBenchmark(smoke);
}
