// Reproduces the paper's Table 3: classification of a TPC-DS-style workload
// by partition-elimination outcome, comparing the Cascades/Orca-style
// optimizer against the legacy Planner. For each query we count the leaf
// partitions each optimizer's plan actually scans and bucket the workload:
//
//   Orca eliminates parts, Planner does not   (paper: 11%)
//   Orca eliminates more parts than Planner   (paper:  3%)
//   Orca and Planner eliminate parts equally  (paper: 80%)
//   Orca eliminates fewer parts than Planner  (paper:  3%)
//   Orca does not eliminate parts, Planner does (paper: 3%)

#include <cstdio>

#include "bench_util.h"
#include "db/database.h"
#include "workload/tpcds_lite.h"

namespace mppdb {
namespace {

void RunBenchmark() {
  benchutil::Header("Table 3: workload classification (partition elimination)");

  workload::TpcdsConfig config;
  config.base_rows = 2000;
  Database db(4);
  MPPDB_CHECK(workload::CreateAndLoadTpcds(&db, config).ok());

  size_t total_parts = 0;
  for (const std::string& fact : workload::TpcdsFactTables()) {
    total_parts += db.catalog().FindTable(fact)->partition_scheme->NumLeaves();
  }

  int orca_only = 0, orca_more = 0, equal = 0, orca_fewer = 0, planner_only = 0;
  std::vector<workload::WorkloadQuery> queries = workload::TpcdsQueries(config);

  std::printf("%-28s %14s %14s   %s\n", "query", "Orca parts", "Planner parts",
              "bucket");
  benchutil::Rule(78);
  for (const auto& query : queries) {
    QueryOptions cascades;
    auto orca = db.Run(query.sql, cascades);
    MPPDB_CHECK(orca.ok());
    QueryOptions legacy;
    legacy.optimizer = OptimizerKind::kLegacyPlanner;
    auto planner = db.Run(query.sql, legacy);
    MPPDB_CHECK(planner.ok());

    // Partitions scanned over the query's partitioned tables; "eliminates"
    // means scanning fewer than all partitions of the referenced tables.
    size_t orca_scanned = 0, planner_scanned = 0, referenced = 0;
    for (const std::string& fact : workload::TpcdsFactTables()) {
      Oid oid = db.catalog().FindTable(fact)->oid;
      size_t o = orca->stats.PartitionsScanned(oid);
      size_t p = planner->stats.PartitionsScanned(oid);
      if (o == 0 && p == 0) continue;
      referenced += db.catalog().FindTable(fact)->partition_scheme->NumLeaves();
      orca_scanned += o;
      planner_scanned += p;
    }
    bool orca_eliminates = orca_scanned < referenced;
    bool planner_eliminates = planner_scanned < referenced;
    const char* bucket;
    if (orca_eliminates && !planner_eliminates) {
      ++orca_only;
      bucket = "Orca eliminates, Planner does not";
    } else if (orca_scanned < planner_scanned) {
      ++orca_more;
      bucket = "Orca eliminates more";
    } else if (orca_scanned == planner_scanned) {
      ++equal;
      bucket = "equal";
    } else if (planner_eliminates && !orca_eliminates) {
      ++planner_only;
      bucket = "Planner eliminates, Orca does not";
    } else {
      ++orca_fewer;
      bucket = "Orca eliminates fewer";
    }
    std::printf("%-28s %14zu %14zu   %s\n", query.name.c_str(), orca_scanned,
                planner_scanned, bucket);
  }

  double n = static_cast<double>(queries.size());
  benchutil::Header("Classification summary (measured vs paper)");
  std::printf("%-46s %9s %8s\n", "category", "measured", "paper");
  benchutil::Rule(66);
  std::printf("%-46s %8.0f%% %8s\n", "Orca eliminates parts, Planner does not",
              orca_only / n * 100, "11%");
  std::printf("%-46s %8.0f%% %8s\n", "Orca eliminates more parts than Planner",
              orca_more / n * 100, "3%");
  std::printf("%-46s %8.0f%% %8s\n", "Orca and Planner eliminate parts equally",
              equal / n * 100, "80%");
  std::printf("%-46s %8.0f%% %8s\n", "Orca eliminates fewer parts than Planner",
              orca_fewer / n * 100, "3%");
  std::printf("%-46s %8.0f%% %8s\n", "Orca does not eliminate parts, Planner does",
              planner_only / n * 100, "3%");
  std::printf("\nExpectation (paper): the bulk of the workload is 'equal'; Orca wins\n"
              "on a meaningful minority; a small tail may go either way.\n");
  std::printf("(total partitions across the 7 fact tables: %zu)\n", total_parts);
}

}  // namespace
}  // namespace mppdb

int main() {
  mppdb::RunBenchmark();
  return 0;
}
