// Zone-map data skipping: wall-clock for filters over a range-partitioned
// fact table whose rows are loaded in ascending filter-column order (so the
// per-chunk min/max synopses are tight), swept across selectivities, with
// skipping on vs off in both the row-at-a-time and vectorized paths.
// Identical-result checks ride along with every measurement — skipping may
// only change the skip counters of ExecStats, never rows or the logical
// scan/motion counters — and chunks_skipped proves the skips actually
// happened. An unclustered control column (chunk ranges span the whole
// domain, so nothing can be skipped) bounds the overhead of consulting
// synopses when they cannot help.
//
// Emits BENCH_skipping.json with per-selectivity timings, speedups, and
// chunk-survival fractions. `--smoke` shrinks the data and iteration counts
// for the ctest gate (release_skipping_smoke), which asserts correctness,
// not speed.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "db/database.h"
#include "exec/plan.h"
#include "expr/expr.h"

namespace mppdb {
namespace {

struct BenchSizes {
  size_t fact_rows = 400000;
  int segments = 4;
  int partitions = 8;
  int iterations = 5;
};

// Smoke keeps several chunks per (leaf, segment) slice — with too few rows
// per slice every slice is a single chunk whose [min, max] brackets any
// threshold, and nothing is skippable.
BenchSizes SmokeSizes() {
  BenchSizes sizes;
  sizes.fact_rows = 40000;
  sizes.segments = 2;
  sizes.partitions = 4;
  sizes.iterations = 2;
  return sizes;
}

/// Measures `plan` with data skipping off and on, in the row and vectorized
/// paths, checks that skipping changes nothing but the skip counters, and
/// appends a JSON entry named `name`. `expect_skips` asserts that the zone
/// maps actually pruned chunks (or, for the control, that they provably
/// could not).
void CompareSkipModes(const std::string& name, Database* db, const PhysPtr& plan,
                      int iterations, bool expect_skips,
                      std::vector<benchutil::BenchJsonEntry>* entries) {
  Executor row_off(&db->catalog(), &db->storage(),
                   Executor::Options{.data_skipping = false});
  Executor row_on(&db->catalog(), &db->storage());
  Executor vec_off(&db->catalog(), &db->storage(),
                   Executor::Options{.vectorized = true, .data_skipping = false});
  Executor vec_on(&db->catalog(), &db->storage(),
                  Executor::Options{.vectorized = true});

  Result<std::vector<Row>> baseline = row_off.Execute(plan);
  MPPDB_CHECK(baseline.ok());
  const ExecStats baseline_stats = row_off.stats();
  for (Executor* exec : {&row_on, &vec_off, &vec_on}) {
    Result<std::vector<Row>> result = exec->Execute(plan);
    MPPDB_CHECK(result.ok());
    MPPDB_CHECK(*result == *baseline);
    ExecStats stats = exec->stats();
    stats.chunks_total = 0;
    stats.chunks_skipped = 0;
    stats.units_skipped = 0;
    MPPDB_CHECK(stats == baseline_stats);
  }
  // The two skipping paths must agree on the skips themselves, too.
  MPPDB_CHECK(row_on.stats() == vec_on.stats());
  const ExecStats skip_stats = row_on.stats();
  MPPDB_CHECK(skip_stats.chunks_total > 0);
  if (expect_skips) {
    MPPDB_CHECK(skip_stats.chunks_skipped > 0);
  } else {
    MPPDB_CHECK(skip_stats.chunks_skipped == 0);
  }

  benchutil::TimingStats row_off_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(row_off.Execute(plan).ok()); });
  benchutil::TimingStats row_on_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(row_on.Execute(plan).ok()); });
  benchutil::TimingStats vec_off_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(vec_off.Execute(plan).ok()); });
  benchutil::TimingStats vec_on_t = benchutil::MeasureMillis(
      /*warmup=*/1, iterations, [&]() { MPPDB_CHECK(vec_on.Execute(plan).ok()); });

  double survival =
      static_cast<double>(skip_stats.chunks_total - skip_stats.chunks_skipped) /
      static_cast<double>(skip_stats.chunks_total);
  double row_speedup = row_off_t.median_ms / row_on_t.median_ms;
  double vec_speedup = vec_off_t.median_ms / vec_on_t.median_ms;
  std::printf("%-16s %8zu %6zu/%-6zu %6.1f%% %8.2f %8.2f %6.2fx %8.2f %8.2f %6.2fx\n",
              name.c_str(), baseline->size(),
              skip_stats.chunks_total - skip_stats.chunks_skipped,
              skip_stats.chunks_total, survival * 100, row_off_t.median_ms,
              row_on_t.median_ms, row_speedup, vec_off_t.median_ms,
              vec_on_t.median_ms, vec_speedup);
  entries->push_back(
      {name,
       {{"rows_out", static_cast<double>(baseline->size())},
        {"chunks_total", static_cast<double>(skip_stats.chunks_total)},
        {"chunks_skipped", static_cast<double>(skip_stats.chunks_skipped)},
        {"units_skipped", static_cast<double>(skip_stats.units_skipped)},
        {"chunk_survival", survival},
        {"row_off_ms", row_off_t.median_ms},
        {"row_on_ms", row_on_t.median_ms},
        {"row_speedup", row_speedup},
        {"vec_off_ms", vec_off_t.median_ms},
        {"vec_on_ms", vec_on_t.median_ms},
        {"vec_speedup", vec_speedup}}});
}

void PrintColumns() {
  std::printf("%-16s %8s %13s %7s %8s %8s %7s %8s %8s %7s\n", "workload", "out",
              "chunks", "surv", "row-off", "row-on", "spd", "vec-off", "vec-on",
              "spd");
  benchutil::Rule(102);
}

int RunBenchmark(bool smoke) {
  const BenchSizes sizes = smoke ? SmokeSizes() : BenchSizes{};
  std::vector<benchutil::BenchJsonEntry> entries;
  entries.push_back({"env", {{"smoke", smoke ? 1.0 : 0.0},
                             {"fact_rows", static_cast<double>(sizes.fact_rows)}}});

  benchutil::Header("Zone-map data skipping, selectivity sweep");
  // fact(k, b, u): partitioned on b into 8 ranges, hashed on k; k ascending
  // at load time so every slice is clustered on k, u uniform so chunk [min,
  // max] on u always spans the domain (the unskippable control).
  Database db(sizes.segments);
  MPPDB_CHECK(db.CreatePartitionedTable(
                     "fact", Schema({{"k", TypeId::kInt64},
                                     {"b", TypeId::kInt64},
                                     {"u", TypeId::kInt64}}),
                     TableDistribution::kHashed, {0},
                     {{1, PartitionMethod::kRange}},
                     {partition_bounds::IntRanges(0, 10, sizes.partitions)})
                  .ok());
  Random rng(2024);
  const int64_t b_domain = static_cast<int64_t>(sizes.partitions) * 10;
  std::vector<Row> rows;
  rows.reserve(sizes.fact_rows);
  for (size_t i = 0; i < sizes.fact_rows; ++i) {
    rows.push_back({Datum::Int64(static_cast<int64_t>(i)),
                    Datum::Int64(static_cast<int64_t>(i) % b_domain),
                    Datum::Int64(rng.UniformRange(0, 999))});
  }
  MPPDB_CHECK(db.Load("fact", rows).ok());
  const TableDescriptor* fact = db.catalog().FindTable("fact");

  auto filter_plan = [&](ColRefId column, const char* col_name,
                         int64_t threshold) {
    std::vector<PhysPtr> scans;
    for (Oid leaf : fact->partition_scheme->AllLeafOids()) {
      scans.push_back(std::make_shared<TableScanNode>(
          fact->oid, leaf, std::vector<ColRefId>{1, 2, 3}));
    }
    auto append = std::make_shared<AppendNode>(scans);
    ExprPtr pred =
        MakeComparison(CompareOp::kLt, MakeColumnRef(column, col_name, TypeId::kInt64),
                       MakeConst(Datum::Int64(threshold)));
    auto filter = std::make_shared<FilterNode>(pred, append);
    return std::make_shared<MotionNode>(MotionKind::kGather,
                                        std::vector<ColRefId>{}, filter);
  };

  PrintColumns();
  // Clustered column: tight chunk ranges, skipping scales with selectivity.
  for (double selectivity : {0.001, 0.01, 0.1, 0.5}) {
    int64_t threshold =
        static_cast<int64_t>(static_cast<double>(sizes.fact_rows) * selectivity);
    char name[32];
    std::snprintf(name, sizeof(name), "clustered_%.3f", selectivity);
    CompareSkipModes(name, &db, filter_plan(1, "k", threshold), sizes.iterations,
                     /*expect_skips=*/true, &entries);
  }
  // Unclustered control: every chunk's [min, max] on u spans the predicate,
  // so zero chunks are skippable and on/off should cost about the same.
  CompareSkipModes("unclustered_ctl", &db, filter_plan(3, "u", 100),
                   sizes.iterations, /*expect_skips=*/false, &entries);

  if (!smoke) {
    benchutil::WriteBenchJson("BENCH_skipping.json", "data_skipping", entries);
  }
  return 0;
}

}  // namespace
}  // namespace mppdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return mppdb::RunBenchmark(smoke);
}
