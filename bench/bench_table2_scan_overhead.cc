// Reproduces the paper's Table 2: overhead of partitioning on a full table
// scan (SELECT * FROM lineitem), for the four partitioning granularities of
// a 7-year lineitem table versus the unpartitioned baseline.
//
// Paper result: overhead of 1-3% regardless of partition count — the
// DynamicScan/PartitionSelector model does not penalize full scans.

#include <cstdio>

#include "bench_util.h"
#include "db/database.h"
#include "workload/tpch_lite.h"

namespace mppdb {
namespace {

using workload::CreateAndLoadLineitem;
using workload::LineitemPartitionCount;
using workload::LineitemPartitioning;
using workload::LineitemPartitioningName;
using workload::TpchConfig;

void RunBenchmark() {
  benchutil::Header("Table 2: Overhead of partitioning (full scan of lineitem)");

  TpchConfig config;
  config.rows = 120000;
  Database db(4);

  struct Variant {
    LineitemPartitioning partitioning;
    std::string table;
  };
  std::vector<Variant> variants = {
      {LineitemPartitioning::kNone, "lineitem_flat"},
      {LineitemPartitioning::kBiMonthly42, "lineitem_42"},
      {LineitemPartitioning::kMonthly84, "lineitem_84"},
      {LineitemPartitioning::kBiWeekly169, "lineitem_169"},
      {LineitemPartitioning::kWeekly361, "lineitem_361"},
  };
  for (const Variant& variant : variants) {
    Status st = CreateAndLoadLineitem(&db, config, variant.partitioning, variant.table);
    MPPDB_CHECK(st.ok());
  }

  const int kIterations = 5;
  double baseline_ms = 0;
  std::printf("%8s  %-34s %12s %10s  %s\n", "#parts", "description",
              "median (ms)", "overhead", "paper");
  benchutil::Rule(86);
  const char* paper_overheads[] = {"-", "3%", "3%", "1%", "2%"};
  int row = 0;
  for (const Variant& variant : variants) {
    std::string sql = "SELECT * FROM " + variant.table;
    // Warm-up + median timing of the full-scan query under Cascades.
    double ms = benchutil::MedianMillis(kIterations, [&]() {
      auto result = db.Run(sql);
      MPPDB_CHECK(result.ok());
      MPPDB_CHECK(result->rows.size() == config.rows);
    });
    if (variant.partitioning == LineitemPartitioning::kNone) baseline_ms = ms;
    double overhead = baseline_ms > 0 ? (ms - baseline_ms) / baseline_ms * 100.0 : 0;
    int parts = LineitemPartitionCount(variant.partitioning);
    std::printf("%8d  %-34s %12.2f %9.1f%%  %s\n", parts,
                LineitemPartitioningName(variant.partitioning), ms, overhead,
                paper_overheads[row]);
    ++row;
  }
  std::printf(
      "\nExpectation (paper): full-scan cost is stable (within a few %%) as the\n"
      "number of partitions grows from 42 to 361.\n");
}

}  // namespace
}  // namespace mppdb

int main() {
  mppdb::RunBenchmark();
  return 0;
}
