// Reproduces the paper's Figure 16: number of partitions scanned per fact
// table, aggregated across the whole TPC-DS-style workload, for the legacy
// Planner versus the Cascades/Orca-style optimizer.
//
// Paper result: Orca scans at most as many partitions as Planner from every
// table, eliminating up to ~80% on the best table (web_returns).

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "db/database.h"
#include "workload/tpcds_lite.h"

namespace mppdb {
namespace {

void RunBenchmark() {
  benchutil::Header("Figure 16: partitions scanned per table across the workload");

  workload::TpcdsConfig config;
  config.base_rows = 2000;
  Database db(4);
  MPPDB_CHECK(workload::CreateAndLoadTpcds(&db, config).ok());

  std::map<std::string, size_t> orca_counts, planner_counts;
  for (const auto& query : workload::TpcdsQueries(config)) {
    QueryOptions cascades;
    auto orca = db.Run(query.sql, cascades);
    MPPDB_CHECK(orca.ok());
    QueryOptions legacy;
    legacy.optimizer = OptimizerKind::kLegacyPlanner;
    auto planner = db.Run(query.sql, legacy);
    MPPDB_CHECK(planner.ok());
    for (const std::string& fact : workload::TpcdsFactTables()) {
      Oid oid = db.catalog().FindTable(fact)->oid;
      orca_counts[fact] += orca->stats.PartitionsScanned(oid);
      planner_counts[fact] += planner->stats.PartitionsScanned(oid);
    }
  }

  std::printf("%-18s %14s %10s %14s  %s\n", "table", "Planner parts", "Orca parts",
              "Orca savings", "bar (P=planner, O=orca)");
  benchutil::Rule(96);
  for (const std::string& fact : workload::TpcdsFactTables()) {
    size_t planner_parts = planner_counts[fact];
    size_t orca_parts = orca_counts[fact];
    double savings = planner_parts == 0
                         ? 0.0
                         : (1.0 - static_cast<double>(orca_parts) /
                                      static_cast<double>(planner_parts)) *
                               100.0;
    std::printf("%-18s %14zu %10zu %13.0f%%  ", fact.c_str(), planner_parts,
                orca_parts, savings);
    size_t scale = 2;
    std::printf("P:");
    for (size_t i = 0; i < planner_parts / scale; ++i) std::putchar('#');
    std::printf(" O:");
    for (size_t i = 0; i < orca_parts / scale; ++i) std::putchar('*');
    std::putchar('\n');
  }
  std::printf(
      "\nExpectation (paper): Orca <= Planner for every table; the largest\n"
      "savings reach roughly 80%% of the partitions on the best table.\n");
}

}  // namespace
}  // namespace mppdb

int main() {
  mppdb::RunBenchmark();
  return 0;
}
