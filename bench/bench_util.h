#ifndef MPPDB_BENCH_BENCH_UTIL_H_
#define MPPDB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace mppdb {
namespace benchutil {

/// Wall-clock timing summary over repeated runs of a workload. The tail
/// percentiles are what a serving layer's latency SLOs are written against;
/// with few samples they degrade gracefully (p99 of 10 samples = the max).
struct TimingStats {
  double min_ms = 0;
  double mean_ms = 0;
  double median_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Nearest-rank percentile (q in [0,1]) of an already-sorted sample.
inline double PercentileSorted(const std::vector<double>& sorted, double q) {
  MPPDB_CHECK(!sorted.empty());
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Summarizes a sample of latencies (any order) into TimingStats.
inline TimingStats SummarizeMillis(std::vector<double> times) {
  MPPDB_CHECK(!times.empty());
  std::sort(times.begin(), times.end());
  TimingStats stats;
  stats.min_ms = times.front();
  stats.mean_ms = std::accumulate(times.begin(), times.end(), 0.0) /
                  static_cast<double>(times.size());
  stats.median_ms = PercentileSorted(times, 0.5);
  stats.p95_ms = PercentileSorted(times, 0.95);
  stats.p99_ms = PercentileSorted(times, 0.99);
  stats.max_ms = times.back();
  return stats;
}

/// Runs `fn` `warmup` times untimed (populating caches, lazy indexes, and
/// the allocator), then `iterations` times timed, and reports min / mean /
/// median wall-clock milliseconds. Without a warmup, cold-start skew lands
/// in the median at low iteration counts.
inline TimingStats MeasureMillis(int warmup, int iterations,
                                 const std::function<void()>& fn) {
  MPPDB_CHECK(iterations > 0);
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> times;
  times.reserve(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(end -
                                                                              start)
            .count());
  }
  return SummarizeMillis(std::move(times));
}

/// Median wall-clock milliseconds over `iterations` runs of `fn`, preceded
/// by one untimed warmup run.
inline double MedianMillis(int iterations, const std::function<void()>& fn) {
  return MeasureMillis(/*warmup=*/1, iterations, fn).median_ms;
}

/// One record of a benchmark JSON report: a name plus numeric fields.
struct BenchJsonEntry {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

/// Writes `{"bench": <bench>, "entries": [{"name": ..., <k>: <v>, ...}]}` to
/// `path` so successive PRs can track the trajectory. Returns false (after
/// printing a warning) if the file cannot be written.
inline bool WriteBenchJson(const std::string& path, const std::string& bench,
                           const std::vector<BenchJsonEntry>& entries) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"entries\": [\n", bench.c_str());
  for (size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(out, "    {\"name\": \"%s\"", entries[i].name.c_str());
    for (const auto& [key, value] : entries[i].fields) {
      std::fprintf(out, ", \"%s\": %.6g", key.c_str(), value);
    }
    std::fprintf(out, "}%s\n", i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Prints a horizontal rule sized to `width`.
inline void Rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace benchutil
}  // namespace mppdb

#endif  // MPPDB_BENCH_BENCH_UTIL_H_
