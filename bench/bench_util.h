#ifndef MPPDB_BENCH_BENCH_UTIL_H_
#define MPPDB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/macros.h"

namespace mppdb {
namespace benchutil {

/// Median wall-clock milliseconds over `iterations` runs of `fn`.
inline double MedianMillis(int iterations, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(end -
                                                                              start)
            .count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Prints a horizontal rule sized to `width`.
inline void Rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace benchutil
}  // namespace mppdb

#endif  // MPPDB_BENCH_BENCH_UTIL_H_
