// Serial vs parallel segment execution: wall-clock for a scan-heavy
// aggregation at S ∈ {1, 2, 4, 8} segments, one worker thread per segment in
// parallel mode. The simulated cluster splits the same table across more
// segments as S grows, so parallel speedup approaches min(S, cores) once
// per-segment work dominates thread coordination.
//
// Emits BENCH_parallel.json (entries keyed "S=<n>", plus an "env" entry with
// the machine's hardware_concurrency — on a 1-core box the expected speedup
// is ~1x regardless of S, so record the context alongside the numbers).

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "db/database.h"
#include "workload/tpch_lite.h"

namespace mppdb {
namespace {

constexpr const char* kQuery =
    "SELECT count(*), sum(l_quantity), avg(l_extendedprice), min(l_shipdate), "
    "max(l_discount) FROM lineitem";

void RunBenchmark() {
  benchutil::Header("Parallel segment execution: serial vs one worker per segment");

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", cores);

  workload::TpchConfig config;
  config.rows = 120000;

  const int kIterations = 5;
  std::vector<benchutil::BenchJsonEntry> entries;
  entries.push_back(
      {"env", {{"hardware_concurrency", static_cast<double>(cores)}}});

  std::printf("%-6s %12s %12s %10s\n", "S", "serial (ms)", "parallel(ms)", "speedup");
  benchutil::Rule(46);
  for (int segments : {1, 2, 4, 8}) {
    Database db(segments);
    MPPDB_CHECK(workload::CreateAndLoadLineitem(&db, config,
                                                workload::LineitemPartitioning::kNone,
                                                "lineitem")
                    .ok());
    Result<PhysPtr> plan = db.PlanSql(kQuery);
    MPPDB_CHECK(plan.ok());

    Executor serial(&db.catalog(), &db.storage());
    Executor parallel(&db.catalog(), &db.storage(), Executor::Options{
                                                        .parallel = true});
    // Identical-result check rides along with the measurement.
    Result<std::vector<Row>> serial_rows = serial.Execute(*plan);
    Result<std::vector<Row>> parallel_rows = parallel.Execute(*plan);
    MPPDB_CHECK(serial_rows.ok() && parallel_rows.ok());
    MPPDB_CHECK(*serial_rows == *parallel_rows);
    MPPDB_CHECK(serial.stats() == parallel.stats());

    benchutil::TimingStats serial_t = benchutil::MeasureMillis(
        /*warmup=*/1, kIterations, [&]() { MPPDB_CHECK(serial.Execute(*plan).ok()); });
    benchutil::TimingStats parallel_t =
        benchutil::MeasureMillis(/*warmup=*/1, kIterations, [&]() {
          MPPDB_CHECK(parallel.Execute(*plan).ok());
        });
    double speedup = serial_t.median_ms / parallel_t.median_ms;
    std::printf("%-6d %12.2f %12.2f %9.2fx\n", segments, serial_t.median_ms,
                parallel_t.median_ms, speedup);
    entries.push_back({"S=" + std::to_string(segments),
                       {{"segments", static_cast<double>(segments)},
                        {"serial_ms", serial_t.median_ms},
                        {"serial_min_ms", serial_t.min_ms},
                        {"serial_mean_ms", serial_t.mean_ms},
                        {"parallel_ms", parallel_t.median_ms},
                        {"parallel_min_ms", parallel_t.min_ms},
                        {"parallel_mean_ms", parallel_t.mean_ms},
                        {"speedup", speedup}}});
  }
  benchutil::WriteBenchJson("BENCH_parallel.json", "parallel_speedup", entries);
}

}  // namespace
}  // namespace mppdb

int main() {
  mppdb::RunBenchmark();
  return 0;
}
