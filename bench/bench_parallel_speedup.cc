// Serial vs parallel execution under the morsel scheduler: wall-clock for a
// scan-heavy aggregation at S ∈ {1, 2, 4, 8} segments in three modes —
// serial, parallel with morsels off (each segment slice is one schedulable
// task), and parallel with morsels on (slices decompose into chunk-aligned
// morsels that idle workers steal). The simulated cluster splits the same
// table across more segments as S grows, so parallel speedup approaches
// min(S, cores) once per-segment work dominates coordination.
//
// A second section loads a Zipfian-skewed table (per-segment row counts
// decay as 1/rank^theta, so one segment's slice dwarfs the rest) and reports
// per-worker busy time from the scheduler's telemetry on a fixed 4-worker
// pool:
// morsels-off leaves the worker that drew the fat slice busy long after its
// peers idle; stealing levels the load (slowest-worker busy time close to
// the mean).
//
// Emits BENCH_parallel.json (entries keyed "S=<n>" plus "zipf-*" rows and an
// "env" entry with hardware_concurrency — on a 1-core box the expected
// wall-clock speedup is ~1x regardless of S, so record the context with the
// numbers; the busy-time balance columns are meaningful even there).
//
// `--smoke` shrinks the data and iteration counts for the ctest gate
// (release_morsel_smoke), which asserts correctness — serial, morsel-off,
// morsel-on, and fine-grained-morsel results bit-identical — not speed.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <thread>

#include "bench_util.h"
#include "db/database.h"
#include "types/row.h"
#include "workload/tpch_lite.h"

namespace mppdb {
namespace {

constexpr const char* kQuery =
    "SELECT count(*), sum(l_quantity), avg(l_extendedprice), min(l_shipdate), "
    "max(l_discount) FROM lineitem";

struct BenchSizes {
  int64_t rows = 120000;
  int64_t zipf_rows = 120000;
  int iterations = 5;
};

BenchSizes SmokeSizes() { return BenchSizes{20000, 20000, 2}; }

// Uniform-vs-skewed sweep over segment counts: serial, morsel-off, morsel-on.
void RunSpeedupSection(const BenchSizes& sizes,
                       std::vector<benchutil::BenchJsonEntry>* entries) {
  std::printf("%-6s %12s %14s %13s %9s %9s\n", "S", "serial (ms)",
              "morsel-off(ms)", "morsel-on(ms)", "off spd", "on spd");
  benchutil::Rule(70);
  workload::TpchConfig config;
  config.rows = sizes.rows;
  for (int segments : {1, 2, 4, 8}) {
    Database db(segments);
    MPPDB_CHECK(workload::CreateAndLoadLineitem(&db, config,
                                                workload::LineitemPartitioning::kNone,
                                                "lineitem")
                    .ok());
    Result<PhysPtr> plan = db.PlanSql(kQuery);
    MPPDB_CHECK(plan.ok());

    Executor serial(&db.catalog(), &db.storage());
    Executor morsel_off(&db.catalog(), &db.storage(),
                        Executor::Options{.parallel = true, .morsels = false});
    Executor morsel_on(&db.catalog(), &db.storage(),
                       Executor::Options{.parallel = true});
    // Identical-result check rides along with the measurement: all three
    // modes must agree bit for bit, rows and stats.
    Result<std::vector<Row>> serial_rows = serial.Execute(*plan);
    Result<std::vector<Row>> off_rows = morsel_off.Execute(*plan);
    Result<std::vector<Row>> on_rows = morsel_on.Execute(*plan);
    MPPDB_CHECK(serial_rows.ok() && off_rows.ok() && on_rows.ok());
    MPPDB_CHECK(*serial_rows == *off_rows);
    MPPDB_CHECK(*serial_rows == *on_rows);
    MPPDB_CHECK(serial.stats() == morsel_off.stats());
    MPPDB_CHECK(serial.stats() == morsel_on.stats());

    benchutil::TimingStats serial_t =
        benchutil::MeasureMillis(/*warmup=*/1, sizes.iterations,
                                 [&]() { MPPDB_CHECK(serial.Execute(*plan).ok()); });
    benchutil::TimingStats off_t =
        benchutil::MeasureMillis(/*warmup=*/1, sizes.iterations, [&]() {
          MPPDB_CHECK(morsel_off.Execute(*plan).ok());
        });
    benchutil::TimingStats on_t =
        benchutil::MeasureMillis(/*warmup=*/1, sizes.iterations, [&]() {
          MPPDB_CHECK(morsel_on.Execute(*plan).ok());
        });
    double off_speedup = serial_t.median_ms / off_t.median_ms;
    double on_speedup = serial_t.median_ms / on_t.median_ms;
    std::printf("%-6d %12.2f %14.2f %13.2f %8.2fx %8.2fx\n", segments,
                serial_t.median_ms, off_t.median_ms, on_t.median_ms, off_speedup,
                on_speedup);
    entries->push_back({"S=" + std::to_string(segments),
                        {{"segments", static_cast<double>(segments)},
                         {"serial_ms", serial_t.median_ms},
                         {"serial_min_ms", serial_t.min_ms},
                         {"serial_mean_ms", serial_t.mean_ms},
                         {"morsel_off_ms", off_t.median_ms},
                         {"morsel_off_min_ms", off_t.min_ms},
                         {"morsel_on_ms", on_t.median_ms},
                         {"morsel_on_min_ms", on_t.min_ms},
                         {"morsel_off_speedup", off_speedup},
                         {"morsel_on_speedup", on_speedup}}});
  }
}

// Zipfian segment skew: per-segment row counts decay as 1/rank^1.2, so
// segment 0's slice dwarfs its peers (the classic straggler). Rows are
// steered to their Zipf-drawn segment by searching distribution-key values
// that hash there — same routing the storage engine uses. Per-worker busy
// time on a fixed 4-worker pool shows whether stealing levels the load:
// with morsels off, the worker that drew the fat slice stays busy long
// after its peers idle; with morsels on, idle workers steal chunk ranges
// out of the fat slice.
void RunSkewSection(const BenchSizes& sizes, bool smoke,
                    std::vector<benchutil::BenchJsonEntry>* entries) {
  constexpr int kSegments = 4;
  constexpr int kWorkers = 4;
  constexpr double kTheta = 1.2;

  Database db(kSegments);
  MPPDB_CHECK(db.CreateTable("skewed",
                             Schema({{"id", TypeId::kInt64}, {"v", TypeId::kInt64}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  // Zipf weights over segments; a row lands on segment s with probability
  // (1/(s+1)^theta) / H.
  std::vector<double> cumulative(kSegments);
  double total = 0;
  for (int s = 0; s < kSegments; ++s) {
    total += 1.0 / std::pow(static_cast<double>(s + 1), kTheta);
    cumulative[static_cast<size_t>(s)] = total;
  }
  std::mt19937_64 rng(20260809);
  std::uniform_real_distribution<double> uniform(0.0, total);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(sizes.zipf_rows));
  std::vector<int64_t> per_segment(kSegments, 0);
  int64_t next_id = 0;
  for (int64_t i = 0; i < sizes.zipf_rows; ++i) {
    const double draw = uniform(rng);
    int target = 0;
    while (cumulative[static_cast<size_t>(target)] < draw) ++target;
    // Find the next id that the storage engine routes to the target segment
    // (expected kSegments candidates per row).
    Row row = {Datum::Int64(next_id), Datum::Int64(i % 997)};
    while (static_cast<int>(HashRowColumns(row, {0}) %
                            static_cast<uint64_t>(kSegments)) != target) {
      row[0] = Datum::Int64(++next_id);
    }
    ++next_id;
    ++per_segment[static_cast<size_t>(target)];
    rows.push_back(std::move(row));
  }
  MPPDB_CHECK(db.Load("skewed", rows).ok());
  std::printf("\nZipfian segment skew (theta=%.1f, %d segments): ", kTheta,
              kSegments);
  for (int s = 0; s < kSegments; ++s) {
    std::printf("%s%lld", s == 0 ? "rows " : " / ",
                static_cast<long long>(per_segment[static_cast<size_t>(s)]));
  }
  std::printf("\n");

  Result<PhysPtr> plan =
      db.PlanSql("SELECT count(*), sum(v), min(v), max(v) FROM skewed");
  MPPDB_CHECK(plan.ok());

  Executor serial(&db.catalog(), &db.storage());
  Result<std::vector<Row>> oracle = serial.Execute(*plan);
  MPPDB_CHECK(oracle.ok());

  std::printf("%-12s %10s %12s %12s %12s %10s\n", "mode", "time (ms)",
              "busy mean", "busy max", "busy min", "max/mean");
  benchutil::Rule(74);
  for (const bool morsels : {false, true}) {
    MorselScheduler scheduler(kWorkers);
    Executor parallel(&db.catalog(), &db.storage(),
                      Executor::Options{.parallel = true, .morsels = morsels});
    parallel.SetScheduler(&scheduler);
    Result<std::vector<Row>> check = parallel.Execute(*plan);
    MPPDB_CHECK(check.ok());
    MPPDB_CHECK(*check == *oracle);
    MPPDB_CHECK(parallel.stats() == serial.stats());

    benchutil::TimingStats t =
        benchutil::MeasureMillis(/*warmup=*/1, sizes.iterations, [&]() {
          MPPDB_CHECK(parallel.Execute(*plan).ok());
        });
    // Busy-time balance over one representative run (reset, run once, read).
    scheduler.ResetBusyTime();
    MPPDB_CHECK(parallel.Execute(*plan).ok());
    std::vector<uint64_t> busy = scheduler.BusyNanos();
    double mean = 0, busy_max = 0, busy_min = 1e300;
    for (uint64_t ns : busy) {
      const double ms = static_cast<double>(ns) / 1e6;
      mean += ms;
      busy_max = busy_max > ms ? busy_max : ms;
      busy_min = busy_min < ms ? busy_min : ms;
    }
    mean /= static_cast<double>(busy.size());
    const double balance = mean > 0 ? busy_max / mean : 0;
    const char* label = morsels ? "morsel-on" : "morsel-off";
    std::printf("%-12s %10.2f %12.3f %12.3f %12.3f %9.2fx\n", label, t.median_ms,
                mean, busy_max, busy_min, balance);
    entries->push_back({std::string("zipf-") + label,
                        {{"workers", static_cast<double>(kWorkers)},
                         {"segments", static_cast<double>(kSegments)},
                         {"time_ms", t.median_ms},
                         {"busy_mean_ms", mean},
                         {"busy_max_ms", busy_max},
                         {"busy_min_ms", busy_min},
                         {"busy_max_over_mean", balance}}});
  }

  // Smoke-gate correctness leg: fine-grained morsels (minimum granularity,
  // maximum steal traffic) must also be bit-identical on the skewed table.
  if (smoke) {
    Executor fine(&db.catalog(), &db.storage(),
                  Executor::Options{.parallel = true,
                                    .max_workers = kWorkers,
                                    .morsel_rows = 1024});
    Result<std::vector<Row>> check = fine.Execute(*plan);
    MPPDB_CHECK(check.ok());
    MPPDB_CHECK(*check == *oracle);
    MPPDB_CHECK(fine.stats() == serial.stats());
    std::printf("smoke: fine-grained morsel run identical to serial oracle\n");
  }
}

int RunBenchmark(bool smoke) {
  benchutil::Header(
      "Parallel execution: serial vs morsel-off vs morsel-on (work stealing)");
  BenchSizes sizes = smoke ? SmokeSizes() : BenchSizes{};

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", cores);

  std::vector<benchutil::BenchJsonEntry> entries;
  entries.push_back({"env",
                     {{"hardware_concurrency", static_cast<double>(cores)},
                      {"smoke", smoke ? 1.0 : 0.0}}});
  RunSpeedupSection(sizes, &entries);
  RunSkewSection(sizes, smoke, &entries);
  benchutil::WriteBenchJson("BENCH_parallel.json", "parallel_speedup", entries);
  return 0;
}

}  // namespace
}  // namespace mppdb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return mppdb::RunBenchmark(smoke);
}
