file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18c_plan_size_dml.dir/bench_fig18c_plan_size_dml.cc.o"
  "CMakeFiles/bench_fig18c_plan_size_dml.dir/bench_fig18c_plan_size_dml.cc.o.d"
  "bench_fig18c_plan_size_dml"
  "bench_fig18c_plan_size_dml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18c_plan_size_dml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
