# Empty dependencies file for bench_fig18c_plan_size_dml.
# This may be replaced when dependencies are built.
