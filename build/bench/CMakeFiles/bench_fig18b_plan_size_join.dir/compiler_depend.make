# Empty compiler generated dependencies file for bench_fig18b_plan_size_join.
# This may be replaced when dependencies are built.
