file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_parts_scanned.dir/bench_fig16_parts_scanned.cc.o"
  "CMakeFiles/bench_fig16_parts_scanned.dir/bench_fig16_parts_scanned.cc.o.d"
  "bench_fig16_parts_scanned"
  "bench_fig16_parts_scanned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_parts_scanned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
