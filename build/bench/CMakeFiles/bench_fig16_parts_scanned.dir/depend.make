# Empty dependencies file for bench_fig16_parts_scanned.
# This may be replaced when dependencies are built.
