file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18a_plan_size_static.dir/bench_fig18a_plan_size_static.cc.o"
  "CMakeFiles/bench_fig18a_plan_size_static.dir/bench_fig18a_plan_size_static.cc.o.d"
  "bench_fig18a_plan_size_static"
  "bench_fig18a_plan_size_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18a_plan_size_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
