# Empty compiler generated dependencies file for bench_fig18a_plan_size_static.
# This may be replaced when dependencies are built.
