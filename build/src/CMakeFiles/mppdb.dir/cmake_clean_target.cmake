file(REMOVE_RECURSE
  "libmppdb.a"
)
