# Empty dependencies file for mppdb.
# This may be replaced when dependencies are built.
