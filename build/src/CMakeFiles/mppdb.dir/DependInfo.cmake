
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/mppdb.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/partition_scheme.cc" "src/CMakeFiles/mppdb.dir/catalog/partition_scheme.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/catalog/partition_scheme.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mppdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/mppdb.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/common/string_util.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/mppdb.dir/db/database.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/db/database.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/mppdb.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/CMakeFiles/mppdb.dir/exec/plan.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/exec/plan.cc.o.d"
  "/root/repo/src/expr/constraint_derivation.cc" "src/CMakeFiles/mppdb.dir/expr/constraint_derivation.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/expr/constraint_derivation.cc.o.d"
  "/root/repo/src/expr/eval.cc" "src/CMakeFiles/mppdb.dir/expr/eval.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/expr/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/mppdb.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/interval.cc" "src/CMakeFiles/mppdb.dir/expr/interval.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/expr/interval.cc.o.d"
  "/root/repo/src/optimizer/cascades/cascades_optimizer.cc" "src/CMakeFiles/mppdb.dir/optimizer/cascades/cascades_optimizer.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/optimizer/cascades/cascades_optimizer.cc.o.d"
  "/root/repo/src/optimizer/cascades/memo.cc" "src/CMakeFiles/mppdb.dir/optimizer/cascades/memo.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/optimizer/cascades/memo.cc.o.d"
  "/root/repo/src/optimizer/logical.cc" "src/CMakeFiles/mppdb.dir/optimizer/logical.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/optimizer/logical.cc.o.d"
  "/root/repo/src/optimizer/placement.cc" "src/CMakeFiles/mppdb.dir/optimizer/placement.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/optimizer/placement.cc.o.d"
  "/root/repo/src/optimizer/planner/legacy_planner.cc" "src/CMakeFiles/mppdb.dir/optimizer/planner/legacy_planner.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/optimizer/planner/legacy_planner.cc.o.d"
  "/root/repo/src/optimizer/stats.cc" "src/CMakeFiles/mppdb.dir/optimizer/stats.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/optimizer/stats.cc.o.d"
  "/root/repo/src/runtime/partition_functions.cc" "src/CMakeFiles/mppdb.dir/runtime/partition_functions.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/runtime/partition_functions.cc.o.d"
  "/root/repo/src/runtime/propagation.cc" "src/CMakeFiles/mppdb.dir/runtime/propagation.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/runtime/propagation.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/mppdb.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/mppdb.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/mppdb.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/storage.cc" "src/CMakeFiles/mppdb.dir/storage/storage.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/storage/storage.cc.o.d"
  "/root/repo/src/types/date.cc" "src/CMakeFiles/mppdb.dir/types/date.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/types/date.cc.o.d"
  "/root/repo/src/types/datum.cc" "src/CMakeFiles/mppdb.dir/types/datum.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/types/datum.cc.o.d"
  "/root/repo/src/types/row.cc" "src/CMakeFiles/mppdb.dir/types/row.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/types/row.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/mppdb.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/types/schema.cc.o.d"
  "/root/repo/src/workload/tpcds_lite.cc" "src/CMakeFiles/mppdb.dir/workload/tpcds_lite.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/workload/tpcds_lite.cc.o.d"
  "/root/repo/src/workload/tpch_lite.cc" "src/CMakeFiles/mppdb.dir/workload/tpch_lite.cc.o" "gcc" "src/CMakeFiles/mppdb.dir/workload/tpch_lite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
