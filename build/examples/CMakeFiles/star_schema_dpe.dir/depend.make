# Empty dependencies file for star_schema_dpe.
# This may be replaced when dependencies are built.
