file(REMOVE_RECURSE
  "CMakeFiles/star_schema_dpe.dir/star_schema_dpe.cpp.o"
  "CMakeFiles/star_schema_dpe.dir/star_schema_dpe.cpp.o.d"
  "star_schema_dpe"
  "star_schema_dpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_schema_dpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
