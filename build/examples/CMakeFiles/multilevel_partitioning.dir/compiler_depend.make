# Empty compiler generated dependencies file for multilevel_partitioning.
# This may be replaced when dependencies are built.
