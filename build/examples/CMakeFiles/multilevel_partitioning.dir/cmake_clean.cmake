file(REMOVE_RECURSE
  "CMakeFiles/multilevel_partitioning.dir/multilevel_partitioning.cpp.o"
  "CMakeFiles/multilevel_partitioning.dir/multilevel_partitioning.cpp.o.d"
  "multilevel_partitioning"
  "multilevel_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
