file(REMOVE_RECURSE
  "CMakeFiles/plan_size_explorer.dir/plan_size_explorer.cpp.o"
  "CMakeFiles/plan_size_explorer.dir/plan_size_explorer.cpp.o.d"
  "plan_size_explorer"
  "plan_size_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_size_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
