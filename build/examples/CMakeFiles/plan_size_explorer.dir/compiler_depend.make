# Empty compiler generated dependencies file for plan_size_explorer.
# This may be replaced when dependencies are built.
