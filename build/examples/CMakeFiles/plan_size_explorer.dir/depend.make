# Empty dependencies file for plan_size_explorer.
# This may be replaced when dependencies are built.
