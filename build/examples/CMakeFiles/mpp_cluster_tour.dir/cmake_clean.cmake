file(REMOVE_RECURSE
  "CMakeFiles/mpp_cluster_tour.dir/mpp_cluster_tour.cpp.o"
  "CMakeFiles/mpp_cluster_tour.dir/mpp_cluster_tour.cpp.o.d"
  "mpp_cluster_tour"
  "mpp_cluster_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpp_cluster_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
