# Empty compiler generated dependencies file for mpp_cluster_tour.
# This may be replaced when dependencies are built.
