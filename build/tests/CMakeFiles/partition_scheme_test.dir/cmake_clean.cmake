file(REMOVE_RECURSE
  "CMakeFiles/partition_scheme_test.dir/partition_scheme_test.cc.o"
  "CMakeFiles/partition_scheme_test.dir/partition_scheme_test.cc.o.d"
  "partition_scheme_test"
  "partition_scheme_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
