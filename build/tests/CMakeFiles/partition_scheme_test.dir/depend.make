# Empty dependencies file for partition_scheme_test.
# This may be replaced when dependencies are built.
