file(REMOVE_RECURSE
  "CMakeFiles/legacy_planner_test.dir/legacy_planner_test.cc.o"
  "CMakeFiles/legacy_planner_test.dir/legacy_planner_test.cc.o.d"
  "legacy_planner_test"
  "legacy_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
