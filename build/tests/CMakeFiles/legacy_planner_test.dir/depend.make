# Empty dependencies file for legacy_planner_test.
# This may be replaced when dependencies are built.
