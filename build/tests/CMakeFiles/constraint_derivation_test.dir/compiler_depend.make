# Empty compiler generated dependencies file for constraint_derivation_test.
# This may be replaced when dependencies are built.
