file(REMOVE_RECURSE
  "CMakeFiles/constraint_derivation_test.dir/constraint_derivation_test.cc.o"
  "CMakeFiles/constraint_derivation_test.dir/constraint_derivation_test.cc.o.d"
  "constraint_derivation_test"
  "constraint_derivation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_derivation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
