file(REMOVE_RECURSE
  "CMakeFiles/cascades_test.dir/cascades_test.cc.o"
  "CMakeFiles/cascades_test.dir/cascades_test.cc.o.d"
  "cascades_test"
  "cascades_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascades_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
