file(REMOVE_RECURSE
  "CMakeFiles/multilevel_sql_test.dir/multilevel_sql_test.cc.o"
  "CMakeFiles/multilevel_sql_test.dir/multilevel_sql_test.cc.o.d"
  "multilevel_sql_test"
  "multilevel_sql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
