# Empty dependencies file for multilevel_sql_test.
# This may be replaced when dependencies are built.
