// Star-schema dynamic partition elimination on the TPC-DS-style workload
// schema, comparing the Cascades/Orca-style optimizer against the legacy
// Planner baseline on the paper's §2.3 running example pattern:
//
//   SELECT ... FROM sales_fact s, date_dim d, customer_dim c
//   WHERE d.month BETWEEN 10 AND 12 AND c.state='CA'
//     AND d.id = s.date_id AND c.id = s.cust_id;
//
// Build & run:  cmake --build build && ./build/examples/star_schema_dpe

#include <cstdio>

#include "common/macros.h"
#include "db/database.h"
#include "types/date.h"
#include "workload/tpcds_lite.h"

using namespace mppdb;  // NOLINT — example brevity

int main() {
  Database db(4);
  workload::TpcdsConfig config;
  config.base_rows = 4000;
  MPPDB_CHECK(workload::CreateAndLoadTpcds(&db, config).ok());

  // The paper's Fig. 6 query over the TPC-DS-style schema.
  std::string sql =
      "SELECT count(*), sum(ss.ss_sales_price) FROM store_sales ss "
      "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
      "JOIN customer c ON ss.ss_customer_sk = c.c_customer_sk "
      "WHERE d.d_year = 2003 AND d.d_moy BETWEEN 10 AND 12 AND c.c_state = 'CA'";

  Oid fact = db.catalog().FindTable("store_sales")->oid;

  std::printf("Query:\n  %s\n\n", sql.c_str());

  for (OptimizerKind kind : {OptimizerKind::kCascades, OptimizerKind::kLegacyPlanner}) {
    QueryOptions options;
    options.optimizer = kind;
    const char* name = kind == OptimizerKind::kCascades ? "Orca-style (Cascades)"
                                                        : "legacy Planner";
    auto explain = db.Explain(sql, options);
    MPPDB_CHECK(explain.ok());
    auto result = db.Run(sql, options);
    MPPDB_CHECK(result.ok());
    std::printf("--- %s ---\n", name);
    std::printf("%s\n", explain->c_str());
    std::printf("rows matched:        %s\n", result->rows[0][0].ToString().c_str());
    std::printf("partitions scanned:  %zu of %zu\n",
                result->stats.PartitionsScanned(fact),
                db.catalog().FindTable(fact)->partition_scheme->NumLeaves());
    std::printf("plan size (bytes):   %zu\n", SerializePlan(result->plan).size());
    std::printf("tuples read:         %zu\n\n", result->stats.tuples_scanned);
  }

  std::printf(
      "Observation: both optimizers prune to the last quarter at run time,\n"
      "but the Planner's plan enumerates every partition explicitly while\n"
      "the Cascades plan keeps one DynamicScan regardless of the partition\n"
      "count (the paper's compactness property, §4.4).\n");
  return 0;
}
