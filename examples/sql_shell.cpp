// An interactive SQL shell over the embedded MPP database: type SQL
// statements (CREATE TABLE / INSERT / SELECT / UPDATE / DELETE / EXPLAIN),
// see results plus the partition-elimination statistics after each query.
//
// Build & run:  cmake --build build && ./build/examples/sql_shell
//
// Meta commands:
//   \planner     use the legacy Planner for subsequent statements
//   \orca        use the Cascades optimizer (default)
//   \selection on|off   toggle partition selection (paper Fig. 17 switch)
//   \tables      list tables
//   \demo        load a demo partitioned schema with data
//   \q           quit

#include <cstdio>
#include <iostream>
#include <string>

#include "common/macros.h"
#include "db/database.h"
#include "types/date.h"

using namespace mppdb;  // NOLINT — example brevity

namespace {

void PrintResult(const QueryResult& result) {
  for (size_t i = 0; i < result.columns.size(); ++i) {
    std::printf("%s%s", i ? " | " : "", result.columns[i].c_str());
  }
  if (!result.columns.empty()) std::printf("\n");
  size_t shown = 0;
  for (const Row& row : result.rows) {
    if (++shown > 25) {
      std::printf("... (%zu rows total)\n", result.rows.size());
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%s", i ? " | " : "", row[i].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)", result.rows.size());
  if (!result.stats.partitions_scanned.empty()) {
    std::printf("  [partitions scanned: %zu, tuples read: %zu, rows moved: %zu]",
                result.stats.TotalPartitionsScanned(), result.stats.tuples_scanned,
                result.stats.rows_moved);
  }
  std::printf("\n");
}

void LoadDemo(Database* db) {
  MPPDB_CHECK(db->Run("CREATE TABLE orders (odate date, amount double, "
                      "cust bigint) DISTRIBUTED BY (cust) "
                      "PARTITION BY RANGE (odate) "
                      "START '2013-01-01' END '2014-01-01' EVERY 31")
                  .ok());
  MPPDB_CHECK(db->Run("CREATE TABLE date_dim (id date, month bigint) "
                      "DISTRIBUTED BY (id)")
                  .ok());
  std::vector<Row> orders, dates;
  for (int month = 1; month <= 12; ++month) {
    for (int day = 1; day <= 28; ++day) {
      int32_t d = date::FromYMD(2013, month, day);
      orders.push_back({Datum::Date(d), Datum::Double(month * day * 0.5),
                        Datum::Int64(day % 10)});
      dates.push_back({Datum::Date(d), Datum::Int64(month)});
    }
  }
  MPPDB_CHECK(db->Load("orders", orders).ok());
  MPPDB_CHECK(db->Load("date_dim", dates).ok());
  std::printf("demo loaded: orders (partitioned, %zu rows), date_dim\n",
              orders.size());
  std::printf("try:  SELECT avg(amount) FROM orders WHERE odate IN\n"
              "        (SELECT id FROM date_dim WHERE month = 6);\n");
}

}  // namespace

int main() {
  Database db(4);
  QueryOptions options;
  std::printf("mppdb shell — 4 simulated segments. \\demo loads sample data, "
              "\\q quits.\n");
  std::string line;
  while (true) {
    std::printf("mppdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\demo") {
      LoadDemo(&db);
      continue;
    }
    if (line == "\\tables") {
      for (const TableDescriptor* table : db.catalog().AllTables()) {
        std::printf("%s %s%s\n", table->name.c_str(),
                    table->schema.ToString().c_str(),
                    table->IsPartitioned()
                        ? (" [" + std::to_string(table->partition_scheme->NumLeaves()) +
                           " partitions]")
                              .c_str()
                        : "");
      }
      continue;
    }
    if (line == "\\planner") {
      options.optimizer = OptimizerKind::kLegacyPlanner;
      std::printf("using legacy Planner\n");
      continue;
    }
    if (line == "\\orca") {
      options.optimizer = OptimizerKind::kCascades;
      std::printf("using Cascades optimizer\n");
      continue;
    }
    if (line == "\\selection on" || line == "\\selection off") {
      options.enable_partition_selection = line.back() == 'n';
      std::printf("partition selection %s\n",
                  options.enable_partition_selection ? "enabled" : "disabled");
      continue;
    }
    auto result = db.Run(line, options);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result);
  }
  return 0;
}
