// A tour of the simulated MPP runtime (paper §3): data distribution, Motion
// operators as slice boundaries, the interaction between Motions and
// PartitionSelectors (Fig. 12), and prepared-statement dynamic elimination.
//
// Build & run:  cmake --build build && ./build/examples/mpp_cluster_tour

#include <cstdio>

#include "common/macros.h"
#include "db/database.h"
#include "types/date.h"

using namespace mppdb;  // NOLINT — example brevity

int main() {
  Database db(4);
  std::printf("Simulated cluster: %d segments\n\n", db.num_segments());

  // R: hash-distributed on a, partitioned on pk (the paper's §3.1 example).
  MPPDB_CHECK(db.CreatePartitionedTable(
                    "r", Schema({{"a", TypeId::kInt64}, {"pk", TypeId::kInt64}}),
                    TableDistribution::kHashed, {0}, {{1, PartitionMethod::kRange}},
                    {partition_bounds::IntRanges(0, 100, 10)})
                  .ok());
  MPPDB_CHECK(db.CreateTable("s", Schema({{"a", TypeId::kInt64},
                                          {"b", TypeId::kInt64}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  std::vector<Row> r_rows, s_rows;
  for (int i = 0; i < 400; ++i) {
    r_rows.push_back({Datum::Int64(i), Datum::Int64(i % 1000)});
  }
  for (int i = 0; i < 40; ++i) {
    s_rows.push_back({Datum::Int64(i * 3), Datum::Int64(i % 300)});
  }
  MPPDB_CHECK(db.Load("r", r_rows).ok());
  MPPDB_CHECK(db.Load("s", s_rows).ok());

  // The paper's SELECT * FROM R, S WHERE R.pk = S.a — the Memo example of
  // §3.1 / Fig. 13/14. The winning plan replicates S, runs the
  // PartitionSelector above the Broadcast (same slice as the join), and
  // DynamicScans only the partitions holding matching pk values.
  const char* sql = "SELECT * FROM r, s WHERE r.pk = s.a";
  std::printf("Query: %s\n\n", sql);
  auto explain = db.Explain(sql);
  MPPDB_CHECK(explain.ok());
  std::printf("%s\n", explain->c_str());

  auto result = db.Run(sql);
  MPPDB_CHECK(result.ok());
  Oid r_oid = db.catalog().FindTable("r")->oid;
  std::printf("rows: %zu; partitions of r scanned: %zu of 10; rows moved through "
              "Motions: %zu\n\n",
              result->rows.size(), result->stats.PartitionsScanned(r_oid),
              result->stats.rows_moved);

  // Prepared statements: the second dynamic-elimination use case of §1. The
  // plan is compiled once with $1 unknown; each execution binds a value and
  // the PartitionSelector prunes accordingly.
  const char* prepared = "SELECT count(*) FROM r WHERE pk < $1";
  std::printf("Prepared statement: %s\n", prepared);
  for (int64_t bound : {100, 450, 1000}) {
    QueryOptions options;
    options.params = {Datum::Int64(bound)};
    auto run = db.Run(prepared, options);
    MPPDB_CHECK(run.ok());
    std::printf("  $1 = %4lld -> count=%s, partitions scanned: %zu of 10\n",
                static_cast<long long>(bound), run->rows[0][0].ToString().c_str(),
                run->stats.PartitionsScanned(r_oid));
  }

  // Distribution is orthogonal to partitioning: aggregate over the
  // distributed, partitioned table with a group-by.
  const char* agg_sql =
      "SELECT pk, count(*) AS c FROM r GROUP BY pk ORDER BY c DESC, pk LIMIT 3";
  auto agg = db.Run(agg_sql);
  MPPDB_CHECK(agg.ok());
  std::printf("\n%s\n-> top group pk=%s count=%s\n", agg_sql,
              agg->rows[0][0].ToString().c_str(),
              agg->rows[0][1].ToString().c_str());
  return 0;
}
