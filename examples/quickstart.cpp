// Quickstart: create a partitioned table, load data, and watch static and
// dynamic partition elimination at work — the paper's introductory example
// (Figs. 1, 2 and 4): an `orders` table partitioned by month, queried with a
// date range and through a date-dimension subquery.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "common/macros.h"
#include "db/database.h"
#include "types/date.h"

using namespace mppdb;  // NOLINT — example brevity

int main() {
  // A 4-segment simulated MPP cluster.
  Database db(4);

  // Fig. 1: orders for the past 2 years, partitioned into monthly partitions.
  auto orders = db.CreatePartitionedTable(
      "orders",
      Schema({{"order_id", TypeId::kInt64},
              {"amount", TypeId::kDouble},
              {"date", TypeId::kDate}}),
      TableDistribution::kHashed, /*distribution_columns=*/{0},
      {{2, PartitionMethod::kRange}}, {partition_bounds::Monthly(2012, 1, 24)});
  if (!orders.ok()) {
    std::fprintf(stderr, "%s\n", orders.status().ToString().c_str());
    return 1;
  }

  // The normalized star-schema variant (Fig. 3): a date dimension.
  auto dates = db.CreateTable("date_dim",
                              Schema({{"date_id", TypeId::kDate},
                                      {"year", TypeId::kInt64},
                                      {"month", TypeId::kInt64}}),
                              TableDistribution::kHashed, {0});
  MPPDB_CHECK(dates.ok());

  // Load one order per day plus the matching dimension rows.
  std::vector<Row> order_rows, date_rows;
  int64_t id = 0;
  for (int year : {2012, 2013}) {
    for (int month = 1; month <= 12; ++month) {
      for (int day = 1; day <= date::DaysInMonth(year, month); ++day) {
        int32_t d = date::FromYMD(year, month, day);
        order_rows.push_back({Datum::Int64(id++), Datum::Double(100.0 + day),
                              Datum::Date(d)});
        date_rows.push_back({Datum::Date(d), Datum::Int64(year), Datum::Int64(month)});
      }
    }
  }
  MPPDB_CHECK(db.Load("orders", order_rows).ok());
  MPPDB_CHECK(db.Load("date_dim", date_rows).ok());

  Oid orders_oid = db.catalog().FindTable("orders")->oid;

  // --- Static partition elimination (paper Fig. 2) --------------------------
  const char* static_sql =
      "SELECT avg(amount) FROM orders "
      "WHERE date BETWEEN '2013-10-01' AND '2013-12-31'";
  std::printf("Query (static elimination):\n  %s\n\n", static_sql);
  auto plan = db.Explain(static_sql);
  MPPDB_CHECK(plan.ok());
  std::printf("Plan:\n%s\n", plan->c_str());
  auto result = db.Run(static_sql);
  MPPDB_CHECK(result.ok());
  std::printf("avg(amount) = %s\n", result->rows[0][0].ToString().c_str());
  std::printf("partitions scanned: %zu of 24\n\n",
              result->stats.PartitionsScanned(orders_oid));

  // --- Dynamic partition elimination (paper Fig. 4) --------------------------
  const char* dynamic_sql =
      "SELECT avg(amount) FROM orders WHERE date IN "
      "(SELECT date_id FROM date_dim WHERE year = 2013 "
      " AND month BETWEEN 10 AND 12)";
  std::printf("Query (dynamic elimination via IN subquery):\n  %s\n\n", dynamic_sql);
  plan = db.Explain(dynamic_sql);
  MPPDB_CHECK(plan.ok());
  std::printf("Plan (note the pass-through PartitionSelector feeding the\n"
              "DynamicScan at run time):\n%s\n",
              plan->c_str());
  result = db.Run(dynamic_sql);
  MPPDB_CHECK(result.ok());
  std::printf("avg(amount) = %s\n", result->rows[0][0].ToString().c_str());
  std::printf("partitions scanned: %zu of 24\n\n",
              result->stats.PartitionsScanned(orders_oid));

  // --- The same query with partition selection disabled ----------------------
  QueryOptions off;
  off.enable_partition_selection = false;
  auto unpruned = db.Run(dynamic_sql, off);
  MPPDB_CHECK(unpruned.ok());
  std::printf("with partition selection disabled: %zu of 24 partitions, "
              "%zu vs %zu tuples read\n",
              unpruned->stats.PartitionsScanned(orders_oid),
              unpruned->stats.tuples_scanned, result->stats.tuples_scanned);
  return 0;
}
