// Multi-level (hierarchical) partitioning, the paper's §2.4 and Figs. 9/10:
// an orders table partitioned by month at level 1 and by region at level 2.
// Shows how predicates on either or both keys select leaf partitions.
//
// Build & run:  cmake --build build && ./build/examples/multilevel_partitioning

#include <cstdio>

#include "common/macros.h"
#include "db/database.h"
#include "types/date.h"

using namespace mppdb;  // NOLINT — example brevity

int main() {
  Database db(4);

  const int kMonths = 24;
  const int kRegions = 4;
  std::vector<Datum> regions;
  for (int r = 1; r <= kRegions; ++r) {
    regions.push_back(Datum::String("Region " + std::to_string(r)));
  }
  auto orders = db.CreatePartitionedTable(
      "orders",
      Schema({{"date", TypeId::kDate},
              {"region", TypeId::kString},
              {"amount", TypeId::kDouble}}),
      TableDistribution::kHashed, {2},
      {{0, PartitionMethod::kRange}, {1, PartitionMethod::kList}},
      {partition_bounds::Monthly(2012, 1, kMonths),
       partition_bounds::ListValues(regions)});
  MPPDB_CHECK(orders.ok());
  const TableDescriptor* table = db.catalog().FindTable("orders");
  std::printf("orders: %d months x %d regions = %zu leaf partitions\n\n", kMonths,
              kRegions, table->partition_scheme->NumLeaves());

  std::vector<Row> rows;
  for (int month = 0; month < kMonths; ++month) {
    int year = 2012 + month / 12;
    for (int region = 1; region <= kRegions; ++region) {
      for (int day = 1; day <= 28; day += 9) {
        rows.push_back({Datum::Date(date::FromYMD(year, month % 12 + 1, day)),
                        Datum::String("Region " + std::to_string(region)),
                        Datum::Double(month * 10.0 + region)});
      }
    }
  }
  MPPDB_CHECK(db.Load("orders", rows).ok());

  // The paper's Fig. 10 predicate table.
  struct Case {
    const char* label;
    const char* sql;
  };
  Case cases[] = {
      {"date = 'Jan-2012'                (one month, all regions)",
       "SELECT count(*) FROM orders WHERE date >= '2012-01-01' "
       "AND date <= '2012-01-31'"},
      {"region = 'Region 1'              (one region, all months)",
       "SELECT count(*) FROM orders WHERE region = 'Region 1'"},
      {"date = 'Jan-2012' AND region='1' (exactly one leaf)",
       "SELECT count(*) FROM orders WHERE date >= '2012-01-01' "
       "AND date <= '2012-01-31' AND region = 'Region 1'"},
      {"no predicate                     (all leaves)",
       "SELECT count(*) FROM orders"},
  };
  std::printf("%-68s %10s %8s\n", "predicate", "parts", "rows");
  for (const Case& c : cases) {
    auto result = db.Run(c.sql);
    MPPDB_CHECK(result.ok());
    std::printf("%-68s %7zu/%zu %8s\n", c.label,
                result->stats.PartitionsScanned(table->oid),
                table->partition_scheme->NumLeaves(),
                result->rows[0][0].ToString().c_str());
  }

  // Level predicates can also arrive dynamically, through a join per level.
  MPPDB_CHECK(db.CreateTable("region_dim",
                             Schema({{"name", TypeId::kString},
                                     {"manager", TypeId::kString}}),
                             TableDistribution::kHashed, {0})
                  .ok());
  MPPDB_CHECK(db.Load("region_dim", {{Datum::String("Region 2"),
                                      Datum::String("alice")}})
                  .ok());
  const char* join_sql =
      "SELECT count(*) FROM orders o JOIN region_dim r ON o.region = r.name "
      "WHERE r.manager = 'alice' AND o.date >= '2013-07-01'";
  auto result = db.Run(join_sql);
  MPPDB_CHECK(result.ok());
  std::printf("\njoin-driven selection on the region level, static on the date "
              "level:\n  %s\n  -> %zu/%zu leaf partitions scanned\n",
              join_sql, result->stats.PartitionsScanned(table->oid),
              table->partition_scheme->NumLeaves());
  return 0;
}
