// Plan-compactness explorer (paper §4.4): prints EXPLAIN output and plan
// sizes for the same statements under both optimizers while the partition
// count grows, demonstrating why plan size independence matters.
//
// Build & run:  cmake --build build && ./build/examples/plan_size_explorer

#include <cstdio>

#include "common/macros.h"
#include "db/database.h"

using namespace mppdb;  // NOLINT — example brevity

namespace {

void SetupPair(Database* db, int parts) {
  for (const char* name : {"r", "s"}) {
    MPPDB_CHECK(db->CreatePartitionedTable(
                      name, Schema({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}}),
                      TableDistribution::kHashed, {0}, {{1, PartitionMethod::kRange}},
                      {partition_bounds::IntRanges(0, 10, parts)})
                    .ok());
    std::vector<Row> rows;
    for (int i = 0; i < 30; ++i) {
      rows.push_back({Datum::Int64(i), Datum::Int64((i * 37) % (parts * 10))});
    }
    MPPDB_CHECK(db->Load(name, rows).ok());
  }
}

}  // namespace

int main() {
  {
    // Show the actual plans once, at a small partition count.
    Database db(4);
    SetupPair(&db, 8);
    const char* sql = "SELECT * FROM r, s WHERE r.b = s.b AND s.a < 100";
    std::printf("Query: %s\n\n", sql);

    auto orca = db.Explain(sql);
    MPPDB_CHECK(orca.ok());
    std::printf("--- Orca-style plan (8 partitions per table) ---\n%s\n",
                orca->c_str());

    QueryOptions legacy;
    legacy.optimizer = OptimizerKind::kLegacyPlanner;
    auto planner = db.Explain(sql, legacy);
    MPPDB_CHECK(planner.ok());
    std::printf("--- legacy Planner plan (8 partitions per table) ---\n%s\n",
                planner->c_str());
  }

  std::printf("%10s %22s %22s %24s\n", "#parts", "SELECT join: planner/orca",
              "UPDATE: planner/orca", "(bytes)");
  for (int parts : {8, 32, 128}) {
    Database db(4);
    SetupPair(&db, parts);
    const char* join_sql = "SELECT * FROM r, s WHERE r.b = s.b AND s.a < 100";
    const char* dml_sql = "UPDATE r SET b = s.b FROM s WHERE r.a = s.a";
    QueryOptions legacy;
    legacy.optimizer = OptimizerKind::kLegacyPlanner;

    auto j_planner = db.PlanSql(join_sql, legacy);
    auto j_orca = db.PlanSql(join_sql);
    auto d_planner = db.PlanSql(dml_sql, legacy);
    auto d_orca = db.PlanSql(dml_sql);
    MPPDB_CHECK(j_planner.ok() && j_orca.ok() && d_planner.ok() && d_orca.ok());
    std::printf("%10d %12zu / %-10zu %12zu / %-10zu\n", parts,
                SerializePlan(*j_planner).size(), SerializePlan(*j_orca).size(),
                SerializePlan(*d_planner).size(), SerializePlan(*d_orca).size());
  }
  std::printf(
      "\nThe legacy plans grow linearly (join) and quadratically (DML) with\n"
      "the partition count; the Orca-style plans do not (paper Fig. 18).\n");
  return 0;
}
