#ifndef MPPDB_CATALOG_CATALOG_H_
#define MPPDB_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/partition_scheme.h"
#include "common/status.h"
#include "types/schema.h"

namespace mppdb {

/// How a table's rows are spread across MPP segments (paper §3.1). Data
/// distribution is orthogonal to partitioning: a distributed table can also
/// be partitioned on each host.
enum class TableDistribution {
  kHashed,      ///< rows hashed on distribution columns
  kReplicated,  ///< full copy on every segment
  kRandom,      ///< round-robin
};

/// Physical layout of a storage unit's slices (DESIGN.md §12). kRow keeps
/// only the canonical row vectors; kColumn additionally maintains encoded
/// column chunks (dictionary/RLE/bit-packed/plain) as the scan fast path.
/// Orientation is chosen per table with a per-leaf-partition override, so
/// row- and column-oriented partitions coexist under one table.
enum class StorageOrientation : uint8_t { kRow, kColumn };

const char* StorageOrientationName(StorageOrientation orientation);

/// Catalog entry for a table: schema, MPP distribution, and (optionally) the
/// logical partition scheme.
struct TableDescriptor {
  Oid oid = kInvalidOid;
  std::string name;
  Schema schema;
  TableDistribution distribution = TableDistribution::kRandom;
  std::vector<int> distribution_columns;  ///< for kHashed
  std::unique_ptr<PartitionScheme> partition_scheme;  ///< null if unpartitioned
  /// Schema positions of columns with a secondary index.
  std::vector<int> indexed_columns;
  /// Default physical layout of every storage unit, overridable per leaf.
  StorageOrientation default_orientation = StorageOrientation::kRow;
  /// Leaf-partition orientation overrides (keyed by leaf OID). Units absent
  /// here use default_orientation.
  std::unordered_map<Oid, StorageOrientation> unit_orientations;

  bool IsPartitioned() const { return partition_scheme != nullptr; }

  /// Effective orientation of one storage unit (a leaf OID, or the table OID
  /// itself when unpartitioned).
  StorageOrientation UnitOrientation(Oid unit_oid) const {
    auto it = unit_orientations.find(unit_oid);
    return it == unit_orientations.end() ? default_orientation : it->second;
  }
  bool HasIndexOn(int column) const {
    for (int c : indexed_columns) {
      if (c == column) return true;
    }
    return false;
  }

  /// Key column indexes per partitioning level (empty if unpartitioned).
  std::vector<int> PartitionKeyColumns() const;
};

/// In-memory metadata catalog. Owns all TableDescriptors; OIDs for tables and
/// their partitions are issued from one shared counter so that partition OIDs
/// are globally unique (as in GPDB, where partitions are physical tables).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an unpartitioned table.
  Result<Oid> CreateTable(const std::string& name, Schema schema,
                          TableDistribution distribution,
                          std::vector<int> distribution_columns);

  /// Creates a partitioned table. `bounds_per_level[i]` are the bounds of
  /// level i (uniform hierarchy); `level_descs[i].key_column` indexes into
  /// `schema`.
  Result<Oid> CreatePartitionedTable(
      const std::string& name, Schema schema, TableDistribution distribution,
      std::vector<int> distribution_columns,
      std::vector<PartitionLevelDesc> level_descs,
      const std::vector<std::vector<PartitionBound>>& bounds_per_level);

  const TableDescriptor* FindTable(const std::string& name) const;
  const TableDescriptor* FindTable(Oid oid) const;

  /// Removes a table (and its partition metadata). Fails if absent.
  Status DropTable(const std::string& name);

  /// Registers a secondary index on `column_name` of `table_name`.
  Status CreateIndex(const std::string& table_name, const std::string& column_name);

  /// Sets the table-wide storage orientation and clears per-leaf overrides
  /// (ALTER TABLE ... SET WITH (orientation=...)).
  Status SetTableOrientation(const std::string& table_name,
                             StorageOrientation orientation);

  /// Overrides the orientation of leaf partitions addressed by name: an exact
  /// qualified name ("p3/us") pins one leaf; a bare bound name ("p3", "us")
  /// covers every leaf whose path contains that component. Fails if the table
  /// is unpartitioned or no leaf matches.
  Status SetPartitionOrientation(const std::string& table_name,
                                 const std::string& partition_name,
                                 StorageOrientation orientation);

  /// Reserves a fresh OID (used by components that create ad-hoc objects).
  Oid NextOid() { return next_oid_++; }

  std::vector<const TableDescriptor*> AllTables() const;

 private:
  Result<TableDescriptor*> CreateTableEntry(const std::string& name, Schema schema,
                                            TableDistribution distribution,
                                            std::vector<int> distribution_columns);

  Oid next_oid_ = 1000;
  std::vector<std::unique_ptr<TableDescriptor>> tables_;
  std::unordered_map<std::string, TableDescriptor*> by_name_;
  std::unordered_map<Oid, TableDescriptor*> by_oid_;
};

}  // namespace mppdb

#endif  // MPPDB_CATALOG_CATALOG_H_
