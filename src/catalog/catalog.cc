#include "catalog/catalog.h"

#include "common/macros.h"

namespace mppdb {

const char* StorageOrientationName(StorageOrientation orientation) {
  return orientation == StorageOrientation::kColumn ? "column" : "row";
}

std::vector<int> TableDescriptor::PartitionKeyColumns() const {
  std::vector<int> keys;
  if (partition_scheme == nullptr) return keys;
  keys.reserve(partition_scheme->num_levels());
  for (const auto& level : partition_scheme->levels()) {
    keys.push_back(level.key_column);
  }
  return keys;
}

Result<TableDescriptor*> Catalog::CreateTableEntry(
    const std::string& name, Schema schema, TableDistribution distribution,
    std::vector<int> distribution_columns) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  if (distribution == TableDistribution::kHashed && distribution_columns.empty()) {
    return Status::InvalidArgument("hash-distributed table '" + name +
                                   "' needs distribution columns");
  }
  for (int col : distribution_columns) {
    if (col < 0 || static_cast<size_t>(col) >= schema.size()) {
      return Status::InvalidArgument("distribution column index out of range");
    }
  }
  auto table = std::make_unique<TableDescriptor>();
  table->oid = next_oid_++;
  table->name = name;
  table->schema = std::move(schema);
  table->distribution = distribution;
  table->distribution_columns = std::move(distribution_columns);
  TableDescriptor* raw = table.get();
  tables_.push_back(std::move(table));
  by_name_.emplace(name, raw);
  by_oid_.emplace(raw->oid, raw);
  return raw;
}

Result<Oid> Catalog::CreateTable(const std::string& name, Schema schema,
                                 TableDistribution distribution,
                                 std::vector<int> distribution_columns) {
  MPPDB_ASSIGN_OR_RETURN(
      TableDescriptor * table,
      CreateTableEntry(name, std::move(schema), distribution,
                       std::move(distribution_columns)));
  return table->oid;
}

Result<Oid> Catalog::CreatePartitionedTable(
    const std::string& name, Schema schema, TableDistribution distribution,
    std::vector<int> distribution_columns,
    std::vector<PartitionLevelDesc> level_descs,
    const std::vector<std::vector<PartitionBound>>& bounds_per_level) {
  if (level_descs.empty() || level_descs.size() != bounds_per_level.size()) {
    return Status::InvalidArgument(
        "partition level descriptors and bounds must be non-empty and aligned");
  }
  for (const auto& level : level_descs) {
    if (level.key_column < 0 || static_cast<size_t>(level.key_column) >= schema.size()) {
      return Status::InvalidArgument("partition key column index out of range");
    }
  }
  MPPDB_ASSIGN_OR_RETURN(
      TableDescriptor * table,
      CreateTableEntry(name, std::move(schema), distribution,
                       std::move(distribution_columns)));
  std::unique_ptr<PartitionNode> root = BuildUniformHierarchy(bounds_per_level, &next_oid_);
  table->partition_scheme =
      std::make_unique<PartitionScheme>(std::move(level_descs), std::move(root));
  return table->oid;
}

const TableDescriptor* Catalog::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const TableDescriptor* Catalog::FindTable(Oid oid) const {
  auto it = by_oid_.find(oid);
  return it == by_oid_.end() ? nullptr : it->second;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  TableDescriptor* table = it->second;
  by_oid_.erase(table->oid);
  by_name_.erase(it);
  for (auto iter = tables_.begin(); iter != tables_.end(); ++iter) {
    if (iter->get() == table) {
      tables_.erase(iter);
      break;
    }
  }
  return Status::OK();
}

Status Catalog::CreateIndex(const std::string& table_name,
                            const std::string& column_name) {
  auto it = by_name_.find(table_name);
  if (it == by_name_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  int column = it->second->schema.FindColumn(column_name);
  if (column < 0) {
    return Status::NotFound("column '" + column_name + "' not in table " + table_name);
  }
  if (it->second->HasIndexOn(column)) {
    return Status::AlreadyExists("index on " + table_name + "." + column_name +
                                 " already exists");
  }
  it->second->indexed_columns.push_back(column);
  return Status::OK();
}

Status Catalog::SetTableOrientation(const std::string& table_name,
                                    StorageOrientation orientation) {
  auto it = by_name_.find(table_name);
  if (it == by_name_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  it->second->default_orientation = orientation;
  it->second->unit_orientations.clear();
  return Status::OK();
}

Status Catalog::SetPartitionOrientation(const std::string& table_name,
                                        const std::string& partition_name,
                                        StorageOrientation orientation) {
  auto it = by_name_.find(table_name);
  if (it == by_name_.end()) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  TableDescriptor* table = it->second;
  if (!table->IsPartitioned()) {
    return Status::InvalidArgument("table '" + table_name +
                                   "' is not partitioned");
  }
  size_t matched = 0;
  for (const LeafPartitionInfo& leaf : table->partition_scheme->Leaves()) {
    bool match = leaf.qualified_name == partition_name;
    if (!match) {
      // Bare bound name: match it as a path component at any level.
      const std::string& path = leaf.qualified_name;
      size_t pos = 0;
      while (!match && pos <= path.size()) {
        size_t next = path.find('/', pos);
        if (next == std::string::npos) next = path.size();
        match = path.compare(pos, next - pos, partition_name) == 0;
        pos = next + 1;
      }
    }
    if (match) {
      table->unit_orientations[leaf.oid] = orientation;
      ++matched;
    }
  }
  if (matched == 0) {
    return Status::NotFound("no partition of '" + table_name + "' matches '" +
                            partition_name + "'");
  }
  return Status::OK();
}

std::vector<const TableDescriptor*> Catalog::AllTables() const {
  std::vector<const TableDescriptor*> out;
  out.reserve(tables_.size());
  for (const auto& t : tables_) out.push_back(t.get());
  return out;
}

}  // namespace mppdb
