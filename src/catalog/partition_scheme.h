#ifndef MPPDB_CATALOG_PARTITION_SCHEME_H_
#define MPPDB_CATALOG_PARTITION_SCHEME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/interval.h"
#include "types/datum.h"
#include "types/row.h"
#include "types/schema.h"

namespace mppdb {

/// Object identifier for tables and partitions (GPDB-style OIDs).
using Oid = int32_t;
inline constexpr Oid kInvalidOid = -1;

/// How one level of the hierarchy splits its key domain.
enum class PartitionMethod { kRange, kList };

/// The check constraint of one partition at one level: a union of intervals
/// over the level's key (paper §3.2: every partition constraint can be
/// written as pk ∈ ∪(a_i, b_i); categorical partitioning uses point
/// intervals). A default partition accepts any value not claimed by a
/// sibling.
struct PartitionBound {
  ConstraintSet constraint = ConstraintSet::All();
  bool is_default = false;
  std::string name;

  static PartitionBound Range(Datum lo_inclusive, Datum hi_exclusive, std::string name);
  static PartitionBound List(std::vector<Datum> values, std::string name);
  static PartitionBound Default(std::string name);
};

/// Describes one level of a (possibly multi-level) partitioning scheme.
struct PartitionLevelDesc {
  int key_column;  ///< index into the table schema
  PartitionMethod method;
};

/// A node of the partition hierarchy. Interior nodes correspond to
/// partitions that are further subpartitioned; leaves carry the OIDs the
/// storage layer resolves to physical data.
struct PartitionNode {
  Oid oid = kInvalidOid;
  PartitionBound bound;
  std::vector<std::unique_ptr<PartitionNode>> children;

  bool IsLeaf() const { return children.empty(); }
};

/// Metadata snapshot of one leaf partition: its OID plus the effective
/// constraint at every level along its root-to-leaf path. This backs the
/// partition_constraints() built-in (paper Table 1).
struct LeafPartitionInfo {
  Oid oid = kInvalidOid;
  std::string qualified_name;
  std::vector<ConstraintSet> level_constraints;  ///< one per level
};

/// Logical partitioning of a table (paper §2.1): the partitioning function
/// f_T routing tuples to leaf partitions, and the partition-selection
/// function f*_T mapping per-level constraints to the set of leaf OIDs that
/// may contain qualifying tuples.
class PartitionScheme {
 public:
  PartitionScheme(std::vector<PartitionLevelDesc> levels,
                  std::unique_ptr<PartitionNode> root);

  PartitionScheme(PartitionScheme&&) = default;
  PartitionScheme& operator=(PartitionScheme&&) = default;

  const std::vector<PartitionLevelDesc>& levels() const { return levels_; }
  size_t num_levels() const { return levels_.size(); }

  /// f_T: leaf partition OID for the tuple, or kInvalidOid if no partition
  /// accepts it (the paper's ⊥).
  Oid RouteTuple(const Row& row) const;

  /// f_T over explicit per-level key values.
  Oid RouteValues(const std::vector<Datum>& key_values) const;

  /// f*_T: leaf OIDs whose constraints overlap the given per-level
  /// constraints. `constraints` may be shorter than num_levels(); missing
  /// levels are treated as All(). Sound: a leaf not returned cannot contain a
  /// tuple satisfying the constraints. Default partitions always qualify
  /// (conservatively) unless the constraint set is None.
  std::vector<Oid> SelectPartitions(const std::vector<ConstraintSet>& constraints) const;

  /// All leaf partition OIDs in hierarchy order (partition_expansion()).
  std::vector<Oid> AllLeafOids() const;

  size_t NumLeaves() const { return leaves_.size(); }

  /// Leaf metadata in hierarchy order (partition_constraints()).
  const std::vector<LeafPartitionInfo>& Leaves() const { return leaves_; }

  /// True if `oid` is one of this scheme's leaf partitions.
  bool IsLeafOid(Oid oid) const;

 private:
  void CollectLeaves(const PartitionNode& node, size_t level,
                     std::vector<ConstraintSet>* path, std::string* name_path);
  void SelectRecursive(const PartitionNode& node, size_t level,
                       const std::vector<ConstraintSet>& constraints,
                       std::vector<Oid>* out) const;
  Oid RouteRecursive(const PartitionNode& node, size_t level,
                     const std::vector<Datum>& key_values) const;

  std::vector<PartitionLevelDesc> levels_;
  std::unique_ptr<PartitionNode> root_;
  std::vector<LeafPartitionInfo> leaves_;
};

/// Convenience builders used by tests, examples, and workload generators.
namespace partition_bounds {

/// `count` consecutive monthly range bounds starting at year/month.
std::vector<PartitionBound> Monthly(int start_year, int start_month, int count);

/// `count` range bounds of `width_days` days starting at the given date.
std::vector<PartitionBound> DateRanges(int start_year, int start_month, int start_day,
                                       int count, int width_days);

/// Integer ranges [lo, lo+step), [lo+step, lo+2*step), ... (`count` bounds).
std::vector<PartitionBound> IntRanges(int64_t lo, int64_t step, int count);

/// One list bound per value.
std::vector<PartitionBound> ListValues(const std::vector<Datum>& values);

}  // namespace partition_bounds

/// Builds a uniform hierarchy: level 0 splits into bounds_per_level[0]
/// partitions, each of which splits into bounds_per_level[1], etc. OIDs are
/// assigned via `next_oid` (incremented per created node). This covers the
/// paper's multi-level example (Fig. 9: 24 monthly partitions × regions).
std::unique_ptr<PartitionNode> BuildUniformHierarchy(
    const std::vector<std::vector<PartitionBound>>& bounds_per_level, Oid* next_oid);

}  // namespace mppdb

#endif  // MPPDB_CATALOG_PARTITION_SCHEME_H_
