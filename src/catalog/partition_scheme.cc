#include "catalog/partition_scheme.h"

#include "common/macros.h"
#include "types/date.h"

namespace mppdb {

PartitionBound PartitionBound::Range(Datum lo_inclusive, Datum hi_exclusive,
                                     std::string name) {
  PartitionBound bound;
  bound.constraint = ConstraintSet::FromInterval(
      Interval::RightOpen(std::move(lo_inclusive), std::move(hi_exclusive)));
  bound.name = std::move(name);
  return bound;
}

PartitionBound PartitionBound::List(std::vector<Datum> values, std::string name) {
  PartitionBound bound;
  bound.constraint = ConstraintSet::FromPoints(std::move(values));
  bound.name = std::move(name);
  return bound;
}

PartitionBound PartitionBound::Default(std::string name) {
  PartitionBound bound;
  bound.is_default = true;
  bound.name = std::move(name);
  return bound;
}

PartitionScheme::PartitionScheme(std::vector<PartitionLevelDesc> levels,
                                 std::unique_ptr<PartitionNode> root)
    : levels_(std::move(levels)), root_(std::move(root)) {
  MPPDB_CHECK(!levels_.empty());
  MPPDB_CHECK(root_ != nullptr);
  std::vector<ConstraintSet> path;
  std::string name_path;
  CollectLeaves(*root_, 0, &path, &name_path);
}

void PartitionScheme::CollectLeaves(const PartitionNode& node, size_t level,
                                    std::vector<ConstraintSet>* path,
                                    std::string* name_path) {
  for (const auto& child : node.children) {
    path->push_back(child->bound.is_default ? ConstraintSet::All()
                                            : child->bound.constraint);
    size_t name_len = name_path->size();
    if (!name_path->empty()) *name_path += "/";
    *name_path += child->bound.name;
    if (child->IsLeaf()) {
      MPPDB_CHECK(level + 1 == levels_.size());
      LeafPartitionInfo info;
      info.oid = child->oid;
      info.qualified_name = *name_path;
      info.level_constraints = *path;
      leaves_.push_back(std::move(info));
    } else {
      CollectLeaves(*child, level + 1, path, name_path);
    }
    path->pop_back();
    name_path->resize(name_len);
  }
}

Oid PartitionScheme::RouteTuple(const Row& row) const {
  std::vector<Datum> keys;
  keys.reserve(levels_.size());
  for (const auto& level : levels_) {
    keys.push_back(row[static_cast<size_t>(level.key_column)]);
  }
  return RouteValues(keys);
}

Oid PartitionScheme::RouteValues(const std::vector<Datum>& key_values) const {
  MPPDB_CHECK(key_values.size() == levels_.size());
  return RouteRecursive(*root_, 0, key_values);
}

Oid PartitionScheme::RouteRecursive(const PartitionNode& node, size_t level,
                                    const std::vector<Datum>& key_values) const {
  const Datum& key = key_values[level];
  const PartitionNode* match = nullptr;
  const PartitionNode* default_part = nullptr;
  for (const auto& child : node.children) {
    if (child->bound.is_default) {
      default_part = child.get();
    } else if (!key.is_null() && child->bound.constraint.Contains(key)) {
      match = child.get();
      break;
    }
  }
  if (match == nullptr) match = default_part;
  if (match == nullptr) return kInvalidOid;  // the paper's ⊥
  if (match->IsLeaf()) return match->oid;
  return RouteRecursive(*match, level + 1, key_values);
}

std::vector<Oid> PartitionScheme::SelectPartitions(
    const std::vector<ConstraintSet>& constraints) const {
  std::vector<Oid> out;
  SelectRecursive(*root_, 0, constraints, &out);
  return out;
}

void PartitionScheme::SelectRecursive(const PartitionNode& node, size_t level,
                                      const std::vector<ConstraintSet>& constraints,
                                      std::vector<Oid>* out) const {
  const ConstraintSet* level_constraint =
      level < constraints.size() ? &constraints[level] : nullptr;
  for (const auto& child : node.children) {
    bool qualifies;
    if (level_constraint == nullptr || level_constraint->IsAll()) {
      qualifies = true;
    } else if (level_constraint->IsNone()) {
      qualifies = false;
    } else if (child->bound.is_default) {
      // A default partition may hold any value not claimed by siblings;
      // proving exclusion would need complement reasoning, so keep it.
      qualifies = true;
    } else {
      qualifies = false;
      for (const Interval& in : child->bound.constraint.intervals()) {
        if (level_constraint->Overlaps(in)) {
          qualifies = true;
          break;
        }
      }
    }
    if (!qualifies) continue;
    if (child->IsLeaf()) {
      out->push_back(child->oid);
    } else {
      SelectRecursive(*child, level + 1, constraints, out);
    }
  }
}

std::vector<Oid> PartitionScheme::AllLeafOids() const {
  std::vector<Oid> out;
  out.reserve(leaves_.size());
  for (const auto& leaf : leaves_) out.push_back(leaf.oid);
  return out;
}

bool PartitionScheme::IsLeafOid(Oid oid) const {
  for (const auto& leaf : leaves_) {
    if (leaf.oid == oid) return true;
  }
  return false;
}

namespace partition_bounds {

std::vector<PartitionBound> Monthly(int start_year, int start_month, int count) {
  std::vector<PartitionBound> bounds;
  bounds.reserve(static_cast<size_t>(count));
  int year = start_year, month = start_month;
  for (int i = 0; i < count; ++i) {
    int next_year = year, next_month = month + 1;
    if (next_month > 12) {
      next_month = 1;
      ++next_year;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "m%04d_%02d", year, month);
    bounds.push_back(PartitionBound::Range(Datum::Date(date::FromYMD(year, month, 1)),
                                           Datum::Date(date::FromYMD(next_year, next_month, 1)),
                                           name));
    year = next_year;
    month = next_month;
  }
  return bounds;
}

std::vector<PartitionBound> DateRanges(int start_year, int start_month, int start_day,
                                       int count, int width_days) {
  std::vector<PartitionBound> bounds;
  bounds.reserve(static_cast<size_t>(count));
  int32_t lo = date::FromYMD(start_year, start_month, start_day);
  for (int i = 0; i < count; ++i) {
    int32_t hi = lo + width_days;
    bounds.push_back(PartitionBound::Range(Datum::Date(lo), Datum::Date(hi),
                                           "d" + std::to_string(i)));
    lo = hi;
  }
  return bounds;
}

std::vector<PartitionBound> IntRanges(int64_t lo, int64_t step, int count) {
  std::vector<PartitionBound> bounds;
  bounds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    int64_t start = lo + step * i;
    bounds.push_back(PartitionBound::Range(Datum::Int64(start), Datum::Int64(start + step),
                                           "r" + std::to_string(i)));
  }
  return bounds;
}

std::vector<PartitionBound> ListValues(const std::vector<Datum>& values) {
  std::vector<PartitionBound> bounds;
  bounds.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    bounds.push_back(PartitionBound::List({values[i]}, "v" + std::to_string(i)));
  }
  return bounds;
}

}  // namespace partition_bounds

namespace {

void AddLevel(PartitionNode* node, size_t level,
              const std::vector<std::vector<PartitionBound>>& bounds_per_level,
              Oid* next_oid) {
  if (level >= bounds_per_level.size()) return;
  for (const PartitionBound& bound : bounds_per_level[level]) {
    auto child = std::make_unique<PartitionNode>();
    child->oid = (*next_oid)++;
    child->bound = bound;
    AddLevel(child.get(), level + 1, bounds_per_level, next_oid);
    node->children.push_back(std::move(child));
  }
}

}  // namespace

std::unique_ptr<PartitionNode> BuildUniformHierarchy(
    const std::vector<std::vector<PartitionBound>>& bounds_per_level, Oid* next_oid) {
  auto root = std::make_unique<PartitionNode>();
  root->oid = (*next_oid)++;
  root->bound = PartitionBound::Default("root");
  root->bound.is_default = false;
  AddLevel(root.get(), 0, bounds_per_level, next_oid);
  return root;
}

}  // namespace mppdb
