#include "sql/binder.h"

#include <cctype>
#include <functional>
#include <unordered_set>

#include "common/macros.h"
#include "expr/eval.h"
#include "sql/parser.h"
#include "types/date.h"

namespace mppdb {

namespace {

using sql_ast::ParseExpr;

// Splits a parse-tree predicate into top-level AND conjuncts.
void SplitParseConjuncts(const ParseExpr* expr, std::vector<const ParseExpr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ParseExpr::Kind::kBinary && expr->text == "AND") {
    SplitParseConjuncts(expr->args[0].get(), out);
    SplitParseConjuncts(expr->args[1].get(), out);
    return;
  }
  out->push_back(expr);
}

// Coerces a string literal to a date constant when compared against a DATE
// expression; returns the (possibly unchanged) expression.
Result<ExprPtr> CoerceToDate(ExprPtr expr) {
  if (expr->kind() != ExprKind::kConst) return expr;
  const Datum& v = static_cast<const ConstExpr&>(*expr).value();
  if (v.is_null() || v.type() != TypeId::kString) return expr;
  int32_t days = 0;
  if (!date::Parse(v.string_value(), &days)) {
    return Status::BindError("expected a date literal, got '" + v.string_value() + "'");
  }
  return MakeConst(Datum::Date(days));
}

// Applies date coercion between two comparison sides.
Status CoercePair(ExprPtr* a, ExprPtr* b) {
  TypeId ta = InferExprType(*a);
  TypeId tb = InferExprType(*b);
  if (ta == TypeId::kDate && tb == TypeId::kString) {
    MPPDB_ASSIGN_OR_RETURN(*b, CoerceToDate(*b));
  } else if (tb == TypeId::kDate && ta == TypeId::kString) {
    MPPDB_ASSIGN_OR_RETURN(*a, CoerceToDate(*a));
  }
  return Status::OK();
}

Result<CompareOp> ParseCompareOp(const std::string& op) {
  if (op == "=") return CompareOp::kEq;
  if (op == "<>") return CompareOp::kNe;
  if (op == "<") return CompareOp::kLt;
  if (op == "<=") return CompareOp::kLe;
  if (op == ">") return CompareOp::kGt;
  if (op == ">=") return CompareOp::kGe;
  return Status::BindError("unknown comparison operator " + op);
}

Result<AggFunc> ParseAggFunc(const std::string& name, bool star) {
  if (name == "COUNT") return star ? AggFunc::kCountStar : AggFunc::kCount;
  if (name == "SUM") return AggFunc::kSum;
  if (name == "AVG") return AggFunc::kAvg;
  if (name == "MIN") return AggFunc::kMin;
  if (name == "MAX") return AggFunc::kMax;
  return Status::BindError("unknown aggregate function " + name);
}

// Derives a display name for an expression-valued select item.
std::string DeriveName(const ParseExpr& expr) {
  switch (expr.kind) {
    case ParseExpr::Kind::kColumn:
      return expr.text;
    case ParseExpr::Kind::kFuncCall: {
      std::string name = expr.text;
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      return name;
    }
    default:
      return "?column?";
  }
}

// Comparison family of a static type (string / bool / numeric-and-date).
int TypeFamily(TypeId t) {
  if (t == TypeId::kString) return 0;
  if (t == TypeId::kBool) return 1;
  return 2;
}

// Comparisons require both sides in one family; params are exempt (their
// type is known only at execution).
Status RequireComparable(const ExprPtr& a, const ExprPtr& b) {
  if (a->kind() == ExprKind::kParam || b->kind() == ExprKind::kParam) {
    return Status::OK();
  }
  if (TypeFamily(InferExprType(a)) != TypeFamily(InferExprType(b))) {
    return Status::BindError("cannot compare " + a->ToString() + " with " +
                             b->ToString());
  }
  return Status::OK();
}

Status RequireNumeric(const ExprPtr& expr) {
  if (expr->kind() == ExprKind::kParam) return Status::OK();
  TypeId type = InferExprType(expr);
  if (!IsNumeric(type)) {
    return Status::BindError("arithmetic requires numeric operands, got " +
                             expr->ToString());
  }
  return Status::OK();
}

// Predicates must be boolean-typed; a bare non-boolean expression in
// WHERE/ON/HAVING is a bind error (caught here rather than at run time).
Status RequireBoolean(const ExprPtr& expr, const char* context) {
  if (expr != nullptr && InferExprType(expr) != TypeId::kBool) {
    return Status::BindError(std::string(context) +
                             " condition must be a boolean expression, got: " +
                             expr->ToString());
  }
  return Status::OK();
}

}  // namespace

TypeId InferExprType(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kConst: {
      const Datum& v = static_cast<const ConstExpr&>(*expr).value();
      return v.is_null() ? TypeId::kInt64 : v.type();
    }
    case ExprKind::kColumnRef:
      return static_cast<const ColumnRefExpr&>(*expr).type();
    case ExprKind::kParam:
      return static_cast<const ParamExpr&>(*expr).type();
    case ExprKind::kArith: {
      TypeId left = InferExprType(expr->child(0));
      TypeId right = InferExprType(expr->child(1));
      if (left == TypeId::kDouble || right == TypeId::kDouble) return TypeId::kDouble;
      return TypeId::kInt64;
    }
    case ExprKind::kAggCall: {
      const auto& agg = static_cast<const AggCallExpr&>(*expr);
      switch (agg.func()) {
        case AggFunc::kCount:
        case AggFunc::kCountStar:
          return TypeId::kInt64;
        case AggFunc::kAvg:
          return TypeId::kDouble;
        default:
          return agg.children().empty() ? TypeId::kInt64
                                        : InferExprType(agg.child(0));
      }
    }
    default:
      return TypeId::kBool;
  }
}

Result<Binder::ScopeColumn> Binder::Scope::Resolve(const std::string& qualifier,
                                                   const std::string& name) const {
  const ScopeColumn* found = nullptr;
  for (const ScopeColumn& col : columns) {
    if (col.name != name) continue;
    if (!qualifier.empty() && col.qualifier != qualifier) continue;
    if (found != nullptr) {
      return Status::BindError("ambiguous column reference '" + name + "'");
    }
    found = &col;
  }
  if (found == nullptr) {
    return Status::BindError("column '" + (qualifier.empty() ? name
                                                             : qualifier + "." + name) +
                             "' not found");
  }
  return *found;
}

Result<LogicalPtr> Binder::BindTable(const sql_ast::TableRef& ref, bool with_rowids,
                                     Scope* scope, const LogicalGet** get_out) {
  const TableDescriptor* table = catalog_->FindTable(ref.table);
  if (table == nullptr) {
    return Status::BindError("table '" + ref.table + "' does not exist");
  }
  std::vector<ColRefId> column_ids;
  for (const Column& col : table->schema.columns()) {
    ColRefId id = alloc_.Next();
    column_ids.push_back(id);
    scope->columns.push_back({id, col.type, col.name, ref.alias});
  }
  std::vector<ColRefId> rowid_ids;
  if (with_rowids) {
    for (int i = 0; i < 3; ++i) rowid_ids.push_back(alloc_.Next());
  }
  auto get = std::make_shared<LogicalGet>(table, ref.alias, std::move(column_ids),
                                          std::move(rowid_ids));
  if (get_out != nullptr) *get_out = get.get();
  return LogicalPtr(get);
}

Result<ExprPtr> Binder::BindScalar(const ParseExpr& expr, const Scope& scope,
                                   std::vector<AggItem>* agg_items) {
  switch (expr.kind) {
    case ParseExpr::Kind::kIntLit:
      return MakeConst(Datum::Int64(expr.int_value));
    case ParseExpr::Kind::kDoubleLit:
      return MakeConst(Datum::Double(expr.double_value));
    case ParseExpr::Kind::kStringLit:
      return MakeConst(Datum::String(expr.text));
    case ParseExpr::Kind::kDateLit: {
      int32_t days = 0;
      if (!date::Parse(expr.text, &days)) {
        return Status::BindError("malformed date literal '" + expr.text + "'");
      }
      return MakeConst(Datum::Date(days));
    }
    case ParseExpr::Kind::kBoolLit:
      return MakeConst(Datum::Bool(expr.int_value != 0));
    case ParseExpr::Kind::kNullLit:
      return MakeConst(Datum::Null());
    case ParseExpr::Kind::kParam:
      return MakeParam(expr.param_index, TypeId::kInt64);
    case ParseExpr::Kind::kColumn: {
      MPPDB_ASSIGN_OR_RETURN(ScopeColumn col, scope.Resolve(expr.qualifier, expr.text));
      return MakeColumnRef(col.id, col.name, col.type);
    }
    case ParseExpr::Kind::kBinary: {
      if (expr.text == "AND" || expr.text == "OR") {
        MPPDB_ASSIGN_OR_RETURN(ExprPtr left, BindScalar(*expr.args[0], scope, agg_items));
        MPPDB_ASSIGN_OR_RETURN(ExprPtr right,
                               BindScalar(*expr.args[1], scope, agg_items));
        if (expr.text == "AND") return Conj({std::move(left), std::move(right)});
        return MakeOr({std::move(left), std::move(right)});
      }
      MPPDB_ASSIGN_OR_RETURN(ExprPtr left, BindScalar(*expr.args[0], scope, agg_items));
      MPPDB_ASSIGN_OR_RETURN(ExprPtr right, BindScalar(*expr.args[1], scope, agg_items));
      if (expr.text == "+" || expr.text == "-" || expr.text == "*" ||
          expr.text == "/" || expr.text == "%") {
        ArithOp op = expr.text == "+"   ? ArithOp::kAdd
                     : expr.text == "-" ? ArithOp::kSub
                     : expr.text == "*" ? ArithOp::kMul
                     : expr.text == "/" ? ArithOp::kDiv
                                        : ArithOp::kMod;
        MPPDB_RETURN_IF_ERROR(RequireNumeric(left));
        MPPDB_RETURN_IF_ERROR(RequireNumeric(right));
        return MakeArith(op, std::move(left), std::move(right));
      }
      MPPDB_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp(expr.text));
      MPPDB_RETURN_IF_ERROR(CoercePair(&left, &right));
      MPPDB_RETURN_IF_ERROR(RequireComparable(left, right));
      return MakeComparison(op, std::move(left), std::move(right));
    }
    case ParseExpr::Kind::kNot: {
      MPPDB_ASSIGN_OR_RETURN(ExprPtr inner, BindScalar(*expr.args[0], scope, agg_items));
      return MakeNot(std::move(inner));
    }
    case ParseExpr::Kind::kIsNull: {
      MPPDB_ASSIGN_OR_RETURN(ExprPtr inner, BindScalar(*expr.args[0], scope, agg_items));
      return ExprPtr(std::make_shared<IsNullExpr>(std::move(inner)));
    }
    case ParseExpr::Kind::kBetween: {
      MPPDB_ASSIGN_OR_RETURN(ExprPtr probe, BindScalar(*expr.args[0], scope, agg_items));
      MPPDB_ASSIGN_OR_RETURN(ExprPtr lo, BindScalar(*expr.args[1], scope, agg_items));
      MPPDB_ASSIGN_OR_RETURN(ExprPtr hi, BindScalar(*expr.args[2], scope, agg_items));
      MPPDB_RETURN_IF_ERROR(CoercePair(&probe, &lo));
      MPPDB_RETURN_IF_ERROR(CoercePair(&probe, &hi));
      return Conj({MakeComparison(CompareOp::kGe, probe, std::move(lo)),
                   MakeComparison(CompareOp::kLe, probe, std::move(hi))});
    }
    case ParseExpr::Kind::kInList: {
      MPPDB_ASSIGN_OR_RETURN(ExprPtr probe, BindScalar(*expr.args[0], scope, agg_items));
      std::vector<ExprPtr> children;
      children.push_back(probe);
      for (size_t i = 1; i < expr.args.size(); ++i) {
        MPPDB_ASSIGN_OR_RETURN(ExprPtr item, BindScalar(*expr.args[i], scope, agg_items));
        MPPDB_RETURN_IF_ERROR(CoercePair(&children[0], &item));
        MPPDB_RETURN_IF_ERROR(RequireComparable(children[0], item));
        children.push_back(std::move(item));
      }
      return MakeInList(std::move(children));
    }
    case ParseExpr::Kind::kInSubquery:
      return Status::BindError(
          "IN (SELECT ...) is only supported as a top-level WHERE conjunct");
    case ParseExpr::Kind::kStar:
      return Status::BindError("'*' is only valid inside count(*)");
    case ParseExpr::Kind::kFuncCall: {
      if (agg_items == nullptr) {
        return Status::BindError("aggregate function not allowed here");
      }
      bool star = expr.args.size() == 1 && expr.args[0]->kind == ParseExpr::Kind::kStar;
      MPPDB_ASSIGN_OR_RETURN(AggFunc func, ParseAggFunc(expr.text, star));
      ExprPtr arg;
      if (!star) {
        MPPDB_ASSIGN_OR_RETURN(arg, BindScalar(*expr.args[0], scope, nullptr));
        if ((func == AggFunc::kSum || func == AggFunc::kAvg) &&
            arg->kind() != ExprKind::kParam && !IsNumeric(InferExprType(arg))) {
          return Status::BindError("sum/avg require a numeric argument");
        }
      }
      // Reuse an existing identical aggregate.
      for (const AggItem& item : *agg_items) {
        if (item.func == func && Expr::Equals(item.arg, arg)) {
          TypeId type = func == AggFunc::kAvg ? TypeId::kDouble
                        : (func == AggFunc::kCount || func == AggFunc::kCountStar)
                            ? TypeId::kInt64
                            : (arg ? InferExprType(arg) : TypeId::kInt64);
          return MakeColumnRef(item.output_id, item.name, type);
        }
      }
      AggItem item;
      item.func = func;
      item.arg = arg;
      item.output_id = alloc_.Next();
      item.name = DeriveName(expr);
      agg_items->push_back(item);
      TypeId type = func == AggFunc::kAvg ? TypeId::kDouble
                    : (func == AggFunc::kCount || func == AggFunc::kCountStar)
                        ? TypeId::kInt64
                        : (arg ? InferExprType(arg) : TypeId::kInt64);
      return MakeColumnRef(item.output_id, item.name, type);
    }
  }
  return Status::BindError("unsupported expression");
}

Result<LogicalPtr> Binder::BindFromWhere(const std::vector<sql_ast::TableRef>& from,
                                         const std::vector<sql_ast::ExplicitJoin>& joins,
                                         const ParseExpr* where, Scope* scope,
                                         LogicalPtr initial_plan) {
  LogicalPtr plan = std::move(initial_plan);
  for (const sql_ast::TableRef& ref : from) {
    MPPDB_ASSIGN_OR_RETURN(LogicalPtr get, BindTable(ref, false, scope, nullptr));
    plan = plan == nullptr
               ? std::move(get)
               : LogicalPtr(std::make_shared<LogicalJoin>(JoinType::kInner, nullptr,
                                                          plan, std::move(get)));
  }
  if (plan == nullptr) return Status::BindError("FROM clause is empty");
  for (const sql_ast::ExplicitJoin& join : joins) {
    MPPDB_ASSIGN_OR_RETURN(LogicalPtr get, BindTable(join.table, false, scope, nullptr));
    MPPDB_ASSIGN_OR_RETURN(ExprPtr on, BindScalar(*join.on, *scope, nullptr));
    MPPDB_RETURN_IF_ERROR(RequireBoolean(on, "JOIN ... ON"));
    plan = std::make_shared<LogicalJoin>(JoinType::kInner, std::move(on), plan,
                                         std::move(get));
  }
  if (where != nullptr) {
    std::vector<const ParseExpr*> conjuncts;
    SplitParseConjuncts(where, &conjuncts);
    std::vector<ExprPtr> bound;
    for (const ParseExpr* conjunct : conjuncts) {
      if (conjunct->kind == ParseExpr::Kind::kInSubquery) {
        // Rewrite into a (left-preserving) semi join.
        MPPDB_ASSIGN_OR_RETURN(ExprPtr probe,
                               BindScalar(*conjunct->args[0], *scope, nullptr));
        MPPDB_ASSIGN_OR_RETURN(BoundSelect sub, BindSelect(*conjunct->subquery));
        std::vector<ColRefId> sub_ids = sub.plan->OutputIds();
        if (sub_ids.size() != 1) {
          return Status::BindError("IN subquery must produce exactly one column");
        }
        if (probe->kind() != ExprKind::kColumnRef) {
          return Status::BindError("IN subquery probe must be a column");
        }
        ExprPtr pred = MakeComparison(CompareOp::kEq, probe,
                                      MakeColumnRef(sub_ids[0], "subq", TypeId::kInt64));
        plan = std::make_shared<LogicalJoin>(JoinType::kSemi, std::move(pred), plan,
                                             sub.plan);
        continue;
      }
      MPPDB_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(*conjunct, *scope, nullptr));
      MPPDB_RETURN_IF_ERROR(RequireBoolean(e, "WHERE"));
      bound.push_back(std::move(e));
    }
    ExprPtr pred = Conj(std::move(bound));
    if (pred != nullptr) {
      plan = std::make_shared<LogicalSelect>(std::move(pred), plan);
    }
  }
  return plan;
}

Result<Binder::BoundSelect> Binder::BindSelect(const sql_ast::SelectStmt& select) {
  Scope scope;
  MPPDB_ASSIGN_OR_RETURN(
      LogicalPtr plan,
      BindFromWhere(select.from, select.joins, select.where.get(), &scope, nullptr));

  BoundSelect out;

  bool has_aggregates = !select.group_by.empty() || select.having != nullptr;
  std::function<bool(const ParseExpr&)> contains_agg = [&](const ParseExpr& e) {
    if (e.kind == ParseExpr::Kind::kFuncCall) return true;
    for (const auto& arg : e.args) {
      if (contains_agg(*arg)) return true;
    }
    return false;
  };
  for (const auto& item : select.items) {
    if (contains_agg(*item.expr)) has_aggregates = true;
  }

  if (has_aggregates) {
    if (select.select_star) {
      return Status::BindError("SELECT * cannot be combined with aggregates");
    }
    // Bind GROUP BY columns.
    std::vector<ColRefId> group_ids;
    for (const auto& group_expr : select.group_by) {
      MPPDB_ASSIGN_OR_RETURN(ExprPtr bound, BindScalar(*group_expr, scope, nullptr));
      if (bound->kind() != ExprKind::kColumnRef) {
        return Status::BindError("GROUP BY must reference plain columns");
      }
      group_ids.push_back(static_cast<const ColumnRefExpr&>(*bound).id());
    }
    // Bind select items, collecting aggregates.
    std::vector<AggItem> agg_items;
    std::vector<ProjectItem> project_items;
    for (const auto& item : select.items) {
      MPPDB_ASSIGN_OR_RETURN(ExprPtr bound, BindScalar(*item.expr, scope, &agg_items));
      std::string name = item.alias.empty() ? DeriveName(*item.expr) : item.alias;
      ColRefId output_id = bound->kind() == ExprKind::kColumnRef
                               ? static_cast<const ColumnRefExpr&>(*bound).id()
                               : alloc_.Next();
      project_items.push_back({std::move(bound), output_id, name});
      out.names.push_back(name);
    }
    // Validate: non-aggregate refs must be grouping columns or agg outputs.
    std::unordered_set<ColRefId> allowed(group_ids.begin(), group_ids.end());
    for (const AggItem& agg : agg_items) allowed.insert(agg.output_id);
    for (const auto& item : project_items) {
      std::unordered_set<ColRefId> refs;
      CollectColumnRefs(item.expr, &refs);
      for (ColRefId id : refs) {
        if (allowed.count(id) == 0) {
          return Status::BindError(
              "column #" + std::to_string(id) +
              " must appear in GROUP BY or inside an aggregate");
        }
      }
    }
    // HAVING: a selection over the aggregate's output, below the final
    // projection. Its aggregate calls share the same AggItem list.
    ExprPtr having;
    if (select.having != nullptr) {
      MPPDB_ASSIGN_OR_RETURN(having, BindScalar(*select.having, scope, &agg_items));
      MPPDB_RETURN_IF_ERROR(RequireBoolean(having, "HAVING"));
    }
    std::unordered_set<ColRefId> allowed_in_having(group_ids.begin(),
                                                   group_ids.end());
    for (const AggItem& agg : agg_items) allowed_in_having.insert(agg.output_id);
    if (having != nullptr) {
      std::unordered_set<ColRefId> refs;
      CollectColumnRefs(having, &refs);
      for (ColRefId id : refs) {
        if (allowed_in_having.count(id) == 0) {
          return Status::BindError(
              "HAVING may only reference grouping columns and aggregates");
        }
      }
    }
    plan = std::make_shared<LogicalAgg>(std::move(group_ids), std::move(agg_items),
                                        plan);
    if (having != nullptr) {
      plan = std::make_shared<LogicalSelect>(std::move(having), plan);
    }
    plan = std::make_shared<LogicalProject>(std::move(project_items), plan);
  } else if (select.select_star) {
    for (const ScopeColumn& col : scope.columns) {
      out.names.push_back(col.name);
    }
  } else {
    std::vector<ProjectItem> project_items;
    for (const auto& item : select.items) {
      MPPDB_ASSIGN_OR_RETURN(ExprPtr bound, BindScalar(*item.expr, scope, nullptr));
      std::string name = item.alias.empty() ? DeriveName(*item.expr) : item.alias;
      ColRefId output_id = bound->kind() == ExprKind::kColumnRef
                               ? static_cast<const ColumnRefExpr&>(*bound).id()
                               : alloc_.Next();
      project_items.push_back({std::move(bound), output_id, name});
      out.names.push_back(name);
    }
    plan = std::make_shared<LogicalProject>(std::move(project_items), plan);
  }

  if (!select.order_by.empty()) {
    // Order-by columns resolve against output aliases first, then the scope;
    // they must be present in the output row.
    std::vector<ColRefId> output_ids = plan->OutputIds();
    std::unordered_set<ColRefId> output_set(output_ids.begin(), output_ids.end());
    std::vector<SortKey> keys;
    for (const auto& order : select.order_by) {
      ColRefId id = -1;
      if (order.expr->kind == ParseExpr::Kind::kColumn && order.expr->qualifier.empty()) {
        for (size_t i = 0; i < out.names.size() && i < output_ids.size(); ++i) {
          if (out.names[i] == order.expr->text) {
            id = output_ids[i];
            break;
          }
        }
      }
      if (id < 0) {
        MPPDB_ASSIGN_OR_RETURN(ExprPtr bound, BindScalar(*order.expr, scope, nullptr));
        if (bound->kind() != ExprKind::kColumnRef) {
          return Status::BindError("ORDER BY must reference a column");
        }
        id = static_cast<const ColumnRefExpr&>(*bound).id();
      }
      if (output_set.count(id) == 0) {
        return Status::BindError("ORDER BY column must appear in the select list");
      }
      keys.push_back({id, order.ascending});
    }
    plan = std::make_shared<LogicalSort>(std::move(keys), plan);
  }
  if (select.limit.has_value()) {
    plan = std::make_shared<LogicalLimit>(*select.limit, plan);
  }
  out.plan = std::move(plan);
  return out;
}

Result<BoundStatement> Binder::BindInsert(const sql_ast::InsertStmt& insert) {
  const TableDescriptor* table = catalog_->FindTable(insert.table);
  if (table == nullptr) {
    return Status::BindError("table '" + insert.table + "' does not exist");
  }
  BoundStatement stmt;
  stmt.kind = BoundStatement::Kind::kInsert;
  stmt.target_table = table;
  stmt.count_output_id = alloc_.Next();
  stmt.output_names = {"count"};

  if (insert.select != nullptr) {
    MPPDB_ASSIGN_OR_RETURN(BoundSelect select, BindSelect(*insert.select));
    if (select.plan->OutputIds().size() != table->schema.size()) {
      return Status::BindError("INSERT SELECT column count mismatch");
    }
    stmt.root = select.plan;
    return stmt;
  }

  std::vector<Row> rows;
  Scope empty_scope;
  for (const auto& value_row : insert.values) {
    if (value_row.size() != table->schema.size()) {
      return Status::BindError("INSERT VALUES arity mismatch for table " + table->name);
    }
    Row row;
    for (size_t i = 0; i < value_row.size(); ++i) {
      MPPDB_ASSIGN_OR_RETURN(ExprPtr bound, BindScalar(*value_row[i], empty_scope,
                                                       nullptr));
      if (table->schema.column(i).type == TypeId::kDate) {
        MPPDB_ASSIGN_OR_RETURN(bound, CoerceToDate(bound));
      }
      std::optional<Datum> value = TryFoldConst(bound);
      if (!value.has_value()) {
        return Status::BindError("INSERT VALUES entries must be constants");
      }
      row.push_back(std::move(*value));
    }
    rows.push_back(std::move(row));
  }
  std::vector<ColRefId> ids;
  for (size_t i = 0; i < table->schema.size(); ++i) ids.push_back(alloc_.Next());
  stmt.root = std::make_shared<LogicalValues>(std::move(rows), std::move(ids));
  return stmt;
}

Result<BoundStatement> Binder::BindUpdate(const sql_ast::UpdateStmt& update) {
  Scope scope;
  const LogicalGet* target_get = nullptr;
  sql_ast::TableRef target_ref{update.table, update.table};
  MPPDB_ASSIGN_OR_RETURN(LogicalPtr target, BindTable(target_ref, true, &scope,
                                                      &target_get));
  MPPDB_ASSIGN_OR_RETURN(
      LogicalPtr plan,
      BindFromWhere(update.from, {}, update.where.get(), &scope, target));

  BoundStatement stmt;
  stmt.kind = BoundStatement::Kind::kUpdate;
  stmt.root = plan;
  stmt.target_table = target_get->table();
  stmt.target_column_ids = target_get->column_ids();
  stmt.target_rowid_ids = target_get->rowid_ids();
  stmt.count_output_id = alloc_.Next();
  stmt.output_names = {"count"};

  for (const auto& [column, value_expr] : update.set_items) {
    int index = stmt.target_table->schema.FindColumn(column);
    if (index < 0) {
      return Status::BindError("column '" + column + "' not in table " +
                               stmt.target_table->name);
    }
    MPPDB_ASSIGN_OR_RETURN(ExprPtr value, BindScalar(*value_expr, scope, nullptr));
    if (stmt.target_table->schema.column(static_cast<size_t>(index)).type ==
        TypeId::kDate) {
      MPPDB_ASSIGN_OR_RETURN(value, CoerceToDate(value));
    }
    stmt.set_items.push_back({index, std::move(value)});
  }
  return stmt;
}

Result<BoundStatement> Binder::BindDelete(const sql_ast::DeleteStmt& del) {
  Scope scope;
  const LogicalGet* target_get = nullptr;
  sql_ast::TableRef target_ref{del.table, del.table};
  MPPDB_ASSIGN_OR_RETURN(LogicalPtr target, BindTable(target_ref, true, &scope,
                                                      &target_get));
  MPPDB_ASSIGN_OR_RETURN(LogicalPtr plan,
                         BindFromWhere({}, {}, del.where.get(), &scope, target));
  BoundStatement stmt;
  stmt.kind = BoundStatement::Kind::kDelete;
  stmt.root = plan;
  stmt.target_table = target_get->table();
  stmt.target_column_ids = target_get->column_ids();
  stmt.target_rowid_ids = target_get->rowid_ids();
  stmt.count_output_id = alloc_.Next();
  stmt.output_names = {"count"};
  return stmt;
}

Result<BoundStatement> Binder::Bind(const sql_ast::Statement& stmt) {
  switch (stmt.kind) {
    case sql_ast::Statement::Kind::kSelect: {
      MPPDB_ASSIGN_OR_RETURN(BoundSelect select, BindSelect(*stmt.select));
      BoundStatement bound;
      bound.kind = BoundStatement::Kind::kSelect;
      bound.explain = stmt.explain;
      bound.explain_analyze = stmt.explain_analyze;
      bound.root = select.plan;
      bound.output_names = select.names;
      return bound;
    }
    case sql_ast::Statement::Kind::kInsert: {
      MPPDB_ASSIGN_OR_RETURN(BoundStatement bound, BindInsert(*stmt.insert));
      bound.explain = stmt.explain;
      bound.explain_analyze = stmt.explain_analyze;
      return bound;
    }
    case sql_ast::Statement::Kind::kUpdate: {
      MPPDB_ASSIGN_OR_RETURN(BoundStatement bound, BindUpdate(*stmt.update));
      bound.explain = stmt.explain;
      bound.explain_analyze = stmt.explain_analyze;
      return bound;
    }
    case sql_ast::Statement::Kind::kDelete: {
      MPPDB_ASSIGN_OR_RETURN(BoundStatement bound, BindDelete(*stmt.del));
      bound.explain = stmt.explain;
      bound.explain_analyze = stmt.explain_analyze;
      return bound;
    }
    case sql_ast::Statement::Kind::kCreateTable:
    case sql_ast::Statement::Kind::kDropTable:
    case sql_ast::Statement::Kind::kCreateIndex:
      // DDL does not bind against the catalog the way DML does; the Database
      // facade executes it directly (Database::RunDdl).
      return Status::BindError("DDL statements are executed, not bound");
  }
  return Status::BindError("unknown statement kind");
}

Result<BoundStatement> Binder::BindSql(const std::string& sql) {
  MPPDB_ASSIGN_OR_RETURN(sql_ast::Statement parsed, ParseStatement(sql));
  return Bind(parsed);
}

}  // namespace mppdb
