#ifndef MPPDB_SQL_NORMALIZER_H_
#define MPPDB_SQL_NORMALIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "types/datum.h"

namespace mppdb {

/// A statement reduced to its plan-cache key: canonical token text with
/// literal constants auto-parameterized into $n slots (paper §4: a plan
/// compiled against $n placeholders stays valid across parameter values
/// because partition elimination is deferred to the PartitionSelector
/// runtime). Two statements that differ only in literal values — or in
/// whitespace, keyword case, or identifier case — normalize to the same
/// `text` and share one cached plan.
struct NormalizedSql {
  /// Canonical rendering of the token stream: keywords upper-cased,
  /// identifiers lower-cased, single-space separated, literals replaced by
  /// $1..$n (in token order) when `auto_params` is true. Re-parses to the
  /// same statement shape as the input.
  std::string text;
  /// Values extracted for $1..$n, aligned with the slots in `text`. Empty
  /// when `auto_params` is false (the caller supplies params explicitly).
  std::vector<Datum> params;
  /// True when literals were extracted into `params`. False for statements
  /// that already carry $n placeholders: their text is still canonicalized,
  /// but parameter values come from QueryOptions::params as before.
  bool auto_params = false;
  /// True when the statement is eligible for the plan cache: a SELECT
  /// (non-EXPLAIN) that tokenized cleanly. DDL, DML, and EXPLAIN always
  /// take the fresh parse+bind+optimize path.
  bool cacheable = false;
};

/// Lexer-level normalization — no parse, no catalog access, O(tokens).
///
/// Parameterization rules (anything not parameterized is rendered inline,
/// so the normalized text still distinguishes it):
///  * int / double / string literals become $n slots, except the literal
///    after LIMIT (the grammar requires a plain integer there).
///  * DATE 'x' folds into one $n slot holding a Date datum when 'x' parses
///    as a date; a malformed date literal stays inline so the fresh bind
///    reports the same error it always did.
///  * TRUE/FALSE/NULL are keywords, not literal tokens; they stay inline.
///  * Statements that already contain $n parameters are never
///    re-parameterized (indices would clash); only the text is canonicalized.
///
/// Returns ParseError only for input the lexer itself rejects — callers
/// should then fall through to the ordinary path, which reports the error.
Result<NormalizedSql> NormalizeSql(const std::string& sql);

}  // namespace mppdb

#endif  // MPPDB_SQL_NORMALIZER_H_
