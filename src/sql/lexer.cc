#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace mppdb {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "GROUP",  "BY",     "ORDER",  "LIMIT",
      "AS",     "AND",    "OR",     "NOT",    "IN",     "BETWEEN", "IS",
      "NULL",   "JOIN",   "INNER",  "ON",     "INSERT", "INTO",   "VALUES",
      "UPDATE", "SET",    "DELETE", "ASC",    "DESC",   "DATE",   "TRUE",
      "FALSE",  "COUNT",  "SUM",    "AVG",    "MIN",    "MAX",    "DISTINCT",
      "HAVING", "EXISTS", "LIKE",   "CASE",   "WHEN",   "THEN",   "ELSE",
      "END",    "EXPLAIN", "ANALYZE", "CREATE", "TABLE",  "DROP",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word = sql.substr(start, i - start);
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      if (Keywords().count(upper) > 0) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = ToLower(word);
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string number = sql.substr(start, i - start);
      if (is_double) {
        token.type = TokenType::kDoubleLiteral;
        token.double_value = std::stod(number);
      } else {
        token.type = TokenType::kIntLiteral;
        token.int_value = std::stoll(number);
      }
      token.text = number;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      size_t start = ++i;
      std::string contents;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            contents += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        contents += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start - 1));
      }
      token.type = TokenType::kStringLiteral;
      token.text = std::move(contents);
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '$') {
      size_t start = ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i == start) {
        return Status::ParseError("malformed parameter at offset " +
                                  std::to_string(start - 1));
      }
      token.type = TokenType::kParam;
      token.int_value = std::stoll(sql.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }
    // Multi-char operators.
    auto two = sql.substr(i, 2);
    if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
      token.type = TokenType::kSymbol;
      token.text = two == "!=" ? "<>" : two;
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    static const std::string kSingles = "(),*=<>+-/%.;";
    if (kSingles.find(c) != std::string::npos) {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(token));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));

  // DATE is a soft keyword: it introduces a literal only when directly
  // followed by a string ('DATE ''2013-10-01'''); otherwise it is an
  // ordinary identifier (a column named "date").
  for (size_t t = 0; t + 1 < tokens.size(); ++t) {
    if (tokens[t].type == TokenType::kKeyword && tokens[t].text == "DATE" &&
        tokens[t + 1].type != TokenType::kStringLiteral) {
      tokens[t].type = TokenType::kIdentifier;
      tokens[t].text = "date";
    }
  }
  return tokens;
}

}  // namespace mppdb
