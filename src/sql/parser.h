#ifndef MPPDB_SQL_PARSER_H_
#define MPPDB_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace mppdb {

/// Parses one SQL statement (SELECT / INSERT / UPDATE / DELETE) of the
/// supported subset into a parse tree. See sql/ast.h for the grammar shape;
/// notable features: explicit JOIN ... ON and comma joins, WHERE with
/// AND/OR/NOT, BETWEEN, IN (list) and IN (subquery), aggregates, GROUP BY,
/// ORDER BY, LIMIT, prepared-statement parameters ($1, $2, ...), DATE
/// literals, UPDATE ... FROM.
Result<sql_ast::Statement> ParseStatement(const std::string& sql);

}  // namespace mppdb

#endif  // MPPDB_SQL_PARSER_H_
