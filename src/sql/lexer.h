#ifndef MPPDB_SQL_LEXER_H_
#define MPPDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace mppdb {

enum class TokenType {
  kKeyword,     // normalized upper-case SQL keyword
  kIdentifier,  // table/column name (lower-cased)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // contents without quotes
  kParam,          // $N, value = N
  kSymbol,         // punctuation / operators: ( ) , * = <> < <= > >= + - / % .
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // keyword/identifier/symbol text or literal contents
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;  // byte offset in the input, for error messages
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively;
/// identifiers are lower-cased. Returns ParseError on malformed input
/// (unterminated string, bad number, stray character).
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace mppdb

#endif  // MPPDB_SQL_LEXER_H_
