#ifndef MPPDB_SQL_AST_H_
#define MPPDB_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mppdb {
namespace sql_ast {

struct SelectStmt;

/// Untyped parse-tree expression. One struct with a kind tag keeps the
/// parser compact; the binder turns these into typed ExprPtr trees.
struct ParseExpr {
  enum class Kind {
    kIntLit,
    kDoubleLit,
    kStringLit,
    kDateLit,
    kBoolLit,
    kNullLit,
    kColumn,     // [qualifier.]name
    kStar,       // only inside count(*)
    kBinary,     // op in {=, <>, <, <=, >, >=, +, -, *, /, %, AND, OR}
    kNot,
    kIsNull,     // expr IS [NOT] NULL (negated => wrapped kNot by parser)
    kInList,     // probe IN (item, ...)
    kInSubquery, // probe IN (SELECT ...)
    kBetween,    // probe BETWEEN lo AND hi
    kFuncCall,   // count/sum/avg/min/max
    kParam,      // $N
  };

  Kind kind;
  int64_t int_value = 0;
  double double_value = 0;
  std::string text;           // string literal / column name / operator / func
  std::string qualifier;      // table alias for kColumn
  std::vector<std::unique_ptr<ParseExpr>> args;  // children (kind-specific)
  std::unique_ptr<SelectStmt> subquery;          // kInSubquery
  int param_index = -1;
};

using ParseExprPtr = std::unique_ptr<ParseExpr>;

struct SelectItem {
  ParseExprPtr expr;
  std::string alias;  // empty: derive from expression
};

struct TableRef {
  std::string table;
  std::string alias;  // empty: table name
};

struct ExplicitJoin {
  TableRef table;
  ParseExprPtr on;
};

struct OrderItem {
  ParseExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<ExplicitJoin> joins;
  ParseExprPtr where;
  std::vector<ParseExprPtr> group_by;
  ParseExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<ParseExprPtr>> values;  // VALUES form
  std::unique_ptr<SelectStmt> select;             // INSERT ... SELECT form
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ParseExprPtr>> set_items;
  std::vector<TableRef> from;
  ParseExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ParseExprPtr where;
};

struct ColumnDef {
  std::string name;
  std::string type;  // int/bigint/double/varchar/text/date/bool(ean)
};

/// One level of a PARTITION BY clause (GPDB-style):
///   PARTITION BY RANGE (col) START <lit> END <lit> EVERY <int>
///   PARTITION BY LIST  (col) VALUES (<lit>, ...)
struct PartitionLevelSpec {
  bool is_range = true;
  std::string column;
  ParseExprPtr start;   // range
  ParseExprPtr end;     // range (exclusive)
  int64_t every = 0;    // range step, in value units (days for dates)
  std::vector<ParseExprPtr> values;  // list
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  enum class Distribution { kRandom, kHash, kReplicated };
  Distribution distribution = Distribution::kRandom;
  std::vector<std::string> distribution_columns;
  std::vector<PartitionLevelSpec> partition_levels;
  /// WITH (key = value, ...) storage options (GPDB-style); currently
  /// orientation = row | column.
  std::vector<std::pair<std::string, std::string>> with_options;
};

/// ALTER TABLE <t> SET [PARTITION <name>] WITH (key = value, ...).
/// An empty partition name targets the whole table (and resets per-partition
/// overrides); a partition name matches a leaf's qualified name or any path
/// component ("p3" covers every subpartition under p3).
struct AlterTableStmt {
  std::string table;
  std::string partition;
  std::vector<std::pair<std::string, std::string>> options;
};

struct DropTableStmt {
  std::string table;
};

struct CreateIndexStmt {
  std::string table;
  std::string column;
};

struct Statement {
  enum class Kind {
    kSelect,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kDropTable,
    kCreateIndex,
    kAlterTable,
  };
  Kind kind = Kind::kSelect;
  /// EXPLAIN prefix: plan the statement but return the plan text.
  bool explain = false;
  /// EXPLAIN ANALYZE: execute the statement too, and append execution
  /// statistics (rows, spill counters) to the rendered plan.
  bool explain_analyze = false;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<AlterTableStmt> alter_table;
};

}  // namespace sql_ast
}  // namespace mppdb

#endif  // MPPDB_SQL_AST_H_
