#ifndef MPPDB_SQL_BINDER_H_
#define MPPDB_SQL_BINDER_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/logical.h"
#include "sql/ast.h"

namespace mppdb {

/// Resolves a parse tree against the catalog into a BoundStatement: logical
/// plan plus DML metadata. Performs name resolution (with table aliases),
/// star expansion, aggregate extraction (GROUP BY), rewriting of
/// `IN (SELECT ...)` predicates into semi joins, BETWEEN desugaring, and
/// date-literal coercion (string literals compared to DATE columns).
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  Result<BoundStatement> Bind(const sql_ast::Statement& stmt);

  /// Parses and binds in one step.
  Result<BoundStatement> BindSql(const std::string& sql);

 private:
  struct ScopeColumn {
    ColRefId id;
    TypeId type;
    std::string name;
    std::string qualifier;
  };

  struct Scope {
    std::vector<ScopeColumn> columns;
    Result<ScopeColumn> Resolve(const std::string& qualifier,
                                const std::string& name) const;
  };

  struct BoundSelect {
    LogicalPtr plan;
    std::vector<std::string> names;
  };

  Result<BoundSelect> BindSelect(const sql_ast::SelectStmt& select);
  Result<BoundStatement> BindInsert(const sql_ast::InsertStmt& insert);
  Result<BoundStatement> BindUpdate(const sql_ast::UpdateStmt& update);
  Result<BoundStatement> BindDelete(const sql_ast::DeleteStmt& del);

  /// Creates the LogicalGet for a table reference and appends its columns to
  /// the scope. `with_rowids` adds the hidden locator columns (DML targets).
  Result<LogicalPtr> BindTable(const sql_ast::TableRef& ref, bool with_rowids,
                               Scope* scope, const LogicalGet** get_out);

  /// Binds a scalar parse expression. When `agg_items` is non-null,
  /// aggregate calls are collected there and replaced by their output
  /// column references.
  Result<ExprPtr> BindScalar(const sql_ast::ParseExpr& expr, const Scope& scope,
                             std::vector<AggItem>* agg_items);

  /// Builds the FROM/JOIN/WHERE part of a select; shared with UPDATE/DELETE.
  Result<LogicalPtr> BindFromWhere(const std::vector<sql_ast::TableRef>& from,
                                   const std::vector<sql_ast::ExplicitJoin>& joins,
                                   const sql_ast::ParseExpr* where, Scope* scope,
                                   LogicalPtr initial_plan);

  const Catalog* catalog_;
  ColRefAllocator alloc_;
};

/// Static type of a bound expression (numeric promotion for arithmetic).
TypeId InferExprType(const ExprPtr& expr);

}  // namespace mppdb

#endif  // MPPDB_SQL_BINDER_H_
