#include "sql/normalizer.h"

#include "common/macros.h"
#include "sql/lexer.h"
#include "types/date.h"

namespace mppdb {

namespace {

// Renders a string literal back into quoted SQL form ('' escaping).
void AppendQuoted(const std::string& contents, std::string* out) {
  out->push_back('\'');
  for (char c : contents) {
    if (c == '\'') out->push_back('\'');
    out->push_back(c);
  }
  out->push_back('\'');
}

void AppendToken(const Token& token, std::string* out) {
  if (!out->empty()) out->push_back(' ');
  switch (token.type) {
    case TokenType::kStringLiteral:
      AppendQuoted(token.text, out);
      break;
    case TokenType::kParam:
      out->push_back('$');
      out->append(std::to_string(token.int_value));
      break;
    default:
      out->append(token.text);
      break;
  }
}

void AppendParamSlot(size_t index, std::string* out) {
  if (!out->empty()) out->push_back(' ');
  out->push_back('$');
  out->append(std::to_string(index));
}

bool IsLiteral(const Token& token) {
  return token.type == TokenType::kIntLiteral ||
         token.type == TokenType::kDoubleLiteral ||
         token.type == TokenType::kStringLiteral;
}

}  // namespace

Result<NormalizedSql> NormalizeSql(const std::string& sql) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  NormalizedSql out;

  // Statement classification from the leading keyword: only SELECT is
  // cacheable (EXPLAIN results are plan strings, DML must re-apply writes
  // through the fresh path, DDL mutates the catalog the cache is keyed on).
  size_t first = 0;
  bool is_select = first < tokens.size() &&
                   tokens[first].type == TokenType::kKeyword &&
                   tokens[first].text == "SELECT";
  bool has_params = false;
  for (const Token& token : tokens) {
    if (token.type == TokenType::kParam) has_params = true;
  }
  out.cacheable = is_select;
  out.auto_params = is_select && !has_params;

  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.type == TokenType::kEnd) break;
    if (!out.auto_params) {
      AppendToken(token, &out.text);
      continue;
    }
    // DATE 'x' folds into a single Date-typed slot (the lexer guarantees a
    // string literal follows a DATE keyword). Malformed dates stay inline so
    // the fresh bind path reports its usual error.
    if (token.type == TokenType::kKeyword && token.text == "DATE" &&
        i + 1 < tokens.size() &&
        tokens[i + 1].type == TokenType::kStringLiteral) {
      int32_t days = 0;
      if (date::Parse(tokens[i + 1].text, &days)) {
        out.params.push_back(Datum::Date(days));
        AppendParamSlot(out.params.size(), &out.text);
        ++i;  // consume the string literal too
        continue;
      }
      AppendToken(token, &out.text);
      AppendToken(tokens[++i], &out.text);
      continue;
    }
    // LIMIT requires a plain integer literal in the grammar; keep it inline
    // (it shapes the plan anyway, so caching per-limit is correct).
    if (token.type == TokenType::kKeyword && token.text == "LIMIT" &&
        i + 1 < tokens.size() && tokens[i + 1].type == TokenType::kIntLiteral) {
      AppendToken(token, &out.text);
      AppendToken(tokens[++i], &out.text);
      continue;
    }
    if (IsLiteral(token)) {
      switch (token.type) {
        case TokenType::kIntLiteral:
          out.params.push_back(Datum::Int64(token.int_value));
          break;
        case TokenType::kDoubleLiteral:
          out.params.push_back(Datum::Double(token.double_value));
          break;
        default:
          out.params.push_back(Datum::String(token.text));
          break;
      }
      AppendParamSlot(out.params.size(), &out.text);
      continue;
    }
    AppendToken(token, &out.text);
  }
  return out;
}

}  // namespace mppdb
