#include "sql/parser.h"

#include "common/macros.h"
#include "sql/lexer.h"

namespace mppdb {

namespace {

using sql_ast::ParseExpr;
using sql_ast::ParseExprPtr;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<sql_ast::Statement> ParseStatement() {
    sql_ast::Statement stmt;
    if (AcceptKeyword("EXPLAIN")) {
      stmt.explain = true;
      if (AcceptKeyword("ANALYZE")) stmt.explain_analyze = true;
    }
    if (AcceptKeyword("SELECT")) {
      --pos_;  // ParseSelect expects to consume SELECT
      MPPDB_ASSIGN_OR_RETURN(auto select, ParseSelect());
      stmt.kind = sql_ast::Statement::Kind::kSelect;
      stmt.select = std::move(select);
    } else if (AcceptKeyword("INSERT")) {
      MPPDB_ASSIGN_OR_RETURN(auto insert, ParseInsert());
      stmt.kind = sql_ast::Statement::Kind::kInsert;
      stmt.insert = std::move(insert);
    } else if (AcceptKeyword("UPDATE")) {
      MPPDB_ASSIGN_OR_RETURN(auto update, ParseUpdate());
      stmt.kind = sql_ast::Statement::Kind::kUpdate;
      stmt.update = std::move(update);
    } else if (AcceptKeyword("DELETE")) {
      MPPDB_ASSIGN_OR_RETURN(auto del, ParseDelete());
      stmt.kind = sql_ast::Statement::Kind::kDelete;
      stmt.del = std::move(del);
    } else if (AcceptKeyword("CREATE")) {
      if (AcceptWord("index", "INDEX")) {
        // CREATE INDEX ON <table> (<column>)
        auto index = std::make_unique<sql_ast::CreateIndexStmt>();
        MPPDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
        MPPDB_ASSIGN_OR_RETURN(index->table, ExpectIdentifier());
        MPPDB_RETURN_IF_ERROR(ExpectSymbol("("));
        MPPDB_ASSIGN_OR_RETURN(index->column, ExpectIdentifier());
        MPPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        stmt.kind = sql_ast::Statement::Kind::kCreateIndex;
        stmt.create_index = std::move(index);
      } else {
        MPPDB_ASSIGN_OR_RETURN(auto create, ParseCreateTable());
        stmt.kind = sql_ast::Statement::Kind::kCreateTable;
        stmt.create_table = std::move(create);
      }
    } else if (AcceptKeyword("DROP")) {
      MPPDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
      auto drop = std::make_unique<sql_ast::DropTableStmt>();
      MPPDB_ASSIGN_OR_RETURN(drop->table, ExpectIdentifier());
      stmt.kind = sql_ast::Statement::Kind::kDropTable;
      stmt.drop_table = std::move(drop);
    } else if (AcceptWord("alter", "ALTER")) {
      // ALTER TABLE <t> SET [PARTITION <name>] WITH (key = value, ...)
      MPPDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
      auto alter = std::make_unique<sql_ast::AlterTableStmt>();
      MPPDB_ASSIGN_OR_RETURN(alter->table, ExpectIdentifier());
      MPPDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
      if (AcceptWord("partition", "PARTITION")) {
        // Qualified leaf names contain '/', so string literals are accepted
        // alongside bare identifiers.
        if (Peek().type == TokenType::kStringLiteral) {
          alter->partition = Advance().text;
        } else {
          MPPDB_ASSIGN_OR_RETURN(alter->partition, ExpectIdentifier());
        }
      }
      MPPDB_RETURN_IF_ERROR(ExpectWord("with", "WITH"));
      MPPDB_RETURN_IF_ERROR(ParseWithOptions(&alter->options));
      stmt.kind = sql_ast::Statement::Kind::kAlterTable;
      stmt.alter_table = std::move(alter);
    } else {
      return Error("expected SELECT, INSERT, UPDATE or DELETE");
    }
    AcceptSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;
    return tokens_[index];
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool AcceptKeyword(const std::string& keyword) {
    if (Peek().type == TokenType::kKeyword && Peek().text == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekKeyword(const std::string& keyword) const {
    return Peek().type == TokenType::kKeyword && Peek().text == keyword;
  }

  bool AcceptSymbol(const std::string& symbol) {
    if (Peek().type == TokenType::kSymbol && Peek().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekSymbol(const std::string& symbol) const {
    return Peek().type == TokenType::kSymbol && Peek().text == symbol;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " near offset " +
                              std::to_string(Peek().position));
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!AcceptKeyword(keyword)) return Error("expected " + keyword);
    return Status::OK();
  }

  Status ExpectSymbol(const std::string& symbol) {
    if (!AcceptSymbol(symbol)) return Error("expected '" + symbol + "'");
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) return Error("expected identifier");
    return Advance().text;
  }

  static ParseExprPtr MakeNode(ParseExpr::Kind kind) {
    auto node = std::make_unique<ParseExpr>();
    node->kind = kind;
    return node;
  }

  static ParseExprPtr MakeBinary(std::string op, ParseExprPtr left, ParseExprPtr right) {
    auto node = MakeNode(ParseExpr::Kind::kBinary);
    node->text = std::move(op);
    node->args.push_back(std::move(left));
    node->args.push_back(std::move(right));
    return node;
  }

  // --- Statements ----------------------------------------------------------

  Result<std::unique_ptr<sql_ast::SelectStmt>> ParseSelect() {
    MPPDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto select = std::make_unique<sql_ast::SelectStmt>();
    if (AcceptSymbol("*")) {
      select->select_star = true;
    } else {
      while (true) {
        sql_ast::SelectItem item;
        MPPDB_ASSIGN_OR_RETURN(item.expr, ParseExprTop());
        if (AcceptKeyword("AS")) {
          MPPDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Peek().type == TokenType::kIdentifier) {
          item.alias = Advance().text;
        }
        select->items.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }
    MPPDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      MPPDB_ASSIGN_OR_RETURN(sql_ast::TableRef ref, ParseTableRef());
      select->from.push_back(std::move(ref));
      if (!AcceptSymbol(",")) break;
    }
    while (true) {
      if (PeekKeyword("INNER") && Peek(1).type == TokenType::kKeyword &&
          Peek(1).text == "JOIN") {
        Advance();
      }
      if (!AcceptKeyword("JOIN")) break;
      sql_ast::ExplicitJoin join;
      MPPDB_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      MPPDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
      MPPDB_ASSIGN_OR_RETURN(join.on, ParseExprTop());
      select->joins.push_back(std::move(join));
    }
    if (AcceptKeyword("WHERE")) {
      MPPDB_ASSIGN_OR_RETURN(select->where, ParseExprTop());
    }
    if (AcceptKeyword("GROUP")) {
      MPPDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        MPPDB_ASSIGN_OR_RETURN(ParseExprPtr expr, ParseExprTop());
        select->group_by.push_back(std::move(expr));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("HAVING")) {
      MPPDB_ASSIGN_OR_RETURN(select->having, ParseExprTop());
    }
    if (AcceptKeyword("ORDER")) {
      MPPDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        sql_ast::OrderItem item;
        MPPDB_ASSIGN_OR_RETURN(item.expr, ParseExprTop());
        if (AcceptKeyword("DESC")) {
          item.ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        select->order_by.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral) return Error("expected LIMIT count");
      select->limit = static_cast<size_t>(Advance().int_value);
    }
    return select;
  }

  Result<sql_ast::TableRef> ParseTableRef() {
    sql_ast::TableRef ref;
    MPPDB_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
    if (AcceptKeyword("AS")) {
      MPPDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    } else {
      ref.alias = ref.table;
    }
    return ref;
  }

  Result<std::unique_ptr<sql_ast::InsertStmt>> ParseInsert() {
    MPPDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto insert = std::make_unique<sql_ast::InsertStmt>();
    MPPDB_ASSIGN_OR_RETURN(insert->table, ExpectIdentifier());
    if (AcceptKeyword("VALUES")) {
      while (true) {
        MPPDB_RETURN_IF_ERROR(ExpectSymbol("("));
        std::vector<ParseExprPtr> row;
        while (true) {
          MPPDB_ASSIGN_OR_RETURN(ParseExprPtr expr, ParseExprTop());
          row.push_back(std::move(expr));
          if (!AcceptSymbol(",")) break;
        }
        MPPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        insert->values.push_back(std::move(row));
        if (!AcceptSymbol(",")) break;
      }
      return insert;
    }
    if (PeekKeyword("SELECT")) {
      MPPDB_ASSIGN_OR_RETURN(insert->select, ParseSelect());
      return insert;
    }
    return Error("expected VALUES or SELECT in INSERT");
  }

  Result<std::unique_ptr<sql_ast::UpdateStmt>> ParseUpdate() {
    auto update = std::make_unique<sql_ast::UpdateStmt>();
    MPPDB_ASSIGN_OR_RETURN(update->table, ExpectIdentifier());
    MPPDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      MPPDB_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
      MPPDB_RETURN_IF_ERROR(ExpectSymbol("="));
      MPPDB_ASSIGN_OR_RETURN(ParseExprPtr value, ParseExprTop());
      update->set_items.emplace_back(std::move(column), std::move(value));
      if (!AcceptSymbol(",")) break;
    }
    if (AcceptKeyword("FROM")) {
      while (true) {
        MPPDB_ASSIGN_OR_RETURN(sql_ast::TableRef ref, ParseTableRef());
        update->from.push_back(std::move(ref));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("WHERE")) {
      MPPDB_ASSIGN_OR_RETURN(update->where, ParseExprTop());
    }
    return update;
  }

  Result<std::unique_ptr<sql_ast::DeleteStmt>> ParseDelete() {
    MPPDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto del = std::make_unique<sql_ast::DeleteStmt>();
    MPPDB_ASSIGN_OR_RETURN(del->table, ExpectIdentifier());
    if (AcceptKeyword("WHERE")) {
      MPPDB_ASSIGN_OR_RETURN(del->where, ParseExprTop());
    }
    return del;
  }

  // Matches a contextual (non-reserved) word: an identifier with the given
  // lowercase text, or the equivalent reserved keyword.
  bool AcceptWord(const std::string& lower, const std::string& upper) {
    if (Peek().type == TokenType::kIdentifier && Peek().text == lower) {
      ++pos_;
      return true;
    }
    if (Peek().type == TokenType::kKeyword && Peek().text == upper) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectWord(const std::string& lower, const std::string& upper) {
    if (!AcceptWord(lower, upper)) return Error("expected " + upper);
    return Status::OK();
  }

  /// Parses the parenthesized option list of a WITH clause (the WITH word
  /// itself was already consumed): ( key = value [, ...] ). Values are bare
  /// words, string literals, or integers.
  Status ParseWithOptions(
      std::vector<std::pair<std::string, std::string>>* options) {
    MPPDB_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      MPPDB_ASSIGN_OR_RETURN(std::string key, ExpectIdentifier());
      MPPDB_RETURN_IF_ERROR(ExpectSymbol("="));
      std::string value;
      if (Peek().type == TokenType::kIdentifier ||
          Peek().type == TokenType::kStringLiteral) {
        value = Advance().text;
      } else if (Peek().type == TokenType::kIntLiteral) {
        value = std::to_string(Advance().int_value);
      } else {
        return Error("expected storage option value");
      }
      options->emplace_back(std::move(key), std::move(value));
      if (!AcceptSymbol(",")) break;
    }
    return ExpectSymbol(")");
  }

  Result<std::unique_ptr<sql_ast::CreateTableStmt>> ParseCreateTable() {
    MPPDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto create = std::make_unique<sql_ast::CreateTableStmt>();
    MPPDB_ASSIGN_OR_RETURN(create->table, ExpectIdentifier());
    MPPDB_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      sql_ast::ColumnDef column;
      MPPDB_ASSIGN_OR_RETURN(column.name, ExpectIdentifier());
      // Type names are contextual identifiers (a column may be named "date").
      if (Peek().type == TokenType::kIdentifier) {
        column.type = Advance().text;
      } else {
        return Error("expected column type");
      }
      create->columns.push_back(std::move(column));
      if (!AcceptSymbol(",")) break;
    }
    MPPDB_RETURN_IF_ERROR(ExpectSymbol(")"));

    // GPDB puts storage options right after the column list; a trailing WITH
    // after the partition clauses is accepted too (below).
    if (AcceptWord("with", "WITH")) {
      MPPDB_RETURN_IF_ERROR(ParseWithOptions(&create->with_options));
    }

    if (AcceptWord("distributed", "DISTRIBUTED")) {
      if (AcceptWord("randomly", "RANDOMLY")) {
        create->distribution = sql_ast::CreateTableStmt::Distribution::kRandom;
      } else if (AcceptWord("replicated", "REPLICATED")) {
        create->distribution = sql_ast::CreateTableStmt::Distribution::kReplicated;
      } else {
        MPPDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
        MPPDB_RETURN_IF_ERROR(ExpectSymbol("("));
        create->distribution = sql_ast::CreateTableStmt::Distribution::kHash;
        while (true) {
          MPPDB_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
          create->distribution_columns.push_back(std::move(column));
          if (!AcceptSymbol(",")) break;
        }
        MPPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
    }

    // PARTITION BY ... [SUBPARTITION BY ...]*
    bool first_level = true;
    while (true) {
      if (first_level) {
        if (!AcceptWord("partition", "PARTITION")) break;
      } else {
        if (!AcceptWord("subpartition", "SUBPARTITION")) break;
      }
      first_level = false;
      MPPDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      sql_ast::PartitionLevelSpec level;
      if (AcceptWord("range", "RANGE")) {
        level.is_range = true;
      } else if (AcceptWord("list", "LIST")) {
        level.is_range = false;
      } else {
        return Error("expected RANGE or LIST");
      }
      MPPDB_RETURN_IF_ERROR(ExpectSymbol("("));
      MPPDB_ASSIGN_OR_RETURN(level.column, ExpectIdentifier());
      MPPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (level.is_range) {
        MPPDB_RETURN_IF_ERROR(ExpectWord("start", "START"));
        MPPDB_ASSIGN_OR_RETURN(level.start, ParsePrimary());
        MPPDB_RETURN_IF_ERROR(ExpectWord("end", "END"));
        MPPDB_ASSIGN_OR_RETURN(level.end, ParsePrimary());
        MPPDB_RETURN_IF_ERROR(ExpectWord("every", "EVERY"));
        if (Peek().type != TokenType::kIntLiteral) {
          return Error("expected integer EVERY step");
        }
        level.every = Advance().int_value;
      } else {
        MPPDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
        MPPDB_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          MPPDB_ASSIGN_OR_RETURN(sql_ast::ParseExprPtr value, ParsePrimary());
          level.values.push_back(std::move(value));
          if (!AcceptSymbol(",")) break;
        }
        MPPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      create->partition_levels.push_back(std::move(level));
    }
    if (AcceptWord("with", "WITH")) {
      MPPDB_RETURN_IF_ERROR(ParseWithOptions(&create->with_options));
    }
    return create;
  }

  // --- Expressions ---------------------------------------------------------

  Result<ParseExprPtr> ParseExprTop() { return ParseOr(); }

  Result<ParseExprPtr> ParseOr() {
    MPPDB_ASSIGN_OR_RETURN(ParseExprPtr left, ParseAnd());
    while (AcceptKeyword("OR")) {
      MPPDB_ASSIGN_OR_RETURN(ParseExprPtr right, ParseAnd());
      left = MakeBinary("OR", std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParseExprPtr> ParseAnd() {
    MPPDB_ASSIGN_OR_RETURN(ParseExprPtr left, ParseNot());
    while (AcceptKeyword("AND")) {
      MPPDB_ASSIGN_OR_RETURN(ParseExprPtr right, ParseNot());
      left = MakeBinary("AND", std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParseExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      MPPDB_ASSIGN_OR_RETURN(ParseExprPtr inner, ParseNot());
      auto node = MakeNode(ParseExpr::Kind::kNot);
      node->args.push_back(std::move(inner));
      return node;
    }
    return ParsePredicate();
  }

  Result<ParseExprPtr> ParsePredicate() {
    MPPDB_ASSIGN_OR_RETURN(ParseExprPtr left, ParseAdditive());
    // Comparison.
    for (const char* op : {"=", "<>", "<=", ">=", "<", ">"}) {
      if (AcceptSymbol(op)) {
        MPPDB_ASSIGN_OR_RETURN(ParseExprPtr right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    bool negated = false;
    if (PeekKeyword("NOT") &&
        (Peek(1).text == "BETWEEN" || Peek(1).text == "IN")) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("BETWEEN")) {
      auto node = MakeNode(ParseExpr::Kind::kBetween);
      node->args.push_back(std::move(left));
      MPPDB_ASSIGN_OR_RETURN(ParseExprPtr lo, ParseAdditive());
      MPPDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
      MPPDB_ASSIGN_OR_RETURN(ParseExprPtr hi, ParseAdditive());
      node->args.push_back(std::move(lo));
      node->args.push_back(std::move(hi));
      return Negate(std::move(node), negated);
    }
    if (AcceptKeyword("IN")) {
      MPPDB_RETURN_IF_ERROR(ExpectSymbol("("));
      if (PeekKeyword("SELECT")) {
        auto node = MakeNode(ParseExpr::Kind::kInSubquery);
        node->args.push_back(std::move(left));
        MPPDB_ASSIGN_OR_RETURN(node->subquery, ParseSelect());
        MPPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Negate(std::move(node), negated);
      }
      auto node = MakeNode(ParseExpr::Kind::kInList);
      node->args.push_back(std::move(left));
      while (true) {
        MPPDB_ASSIGN_OR_RETURN(ParseExprPtr item, ParseExprTop());
        node->args.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
      MPPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return Negate(std::move(node), negated);
    }
    if (AcceptKeyword("IS")) {
      bool is_not = AcceptKeyword("NOT");
      MPPDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto node = MakeNode(ParseExpr::Kind::kIsNull);
      node->args.push_back(std::move(left));
      return Negate(std::move(node), is_not);
    }
    return left;
  }

  static Result<ParseExprPtr> Negate(ParseExprPtr node, bool negated) {
    if (!negated) return node;
    auto wrapper = MakeNode(ParseExpr::Kind::kNot);
    wrapper->args.push_back(std::move(node));
    return Result<ParseExprPtr>(std::move(wrapper));
  }

  Result<ParseExprPtr> ParseAdditive() {
    MPPDB_ASSIGN_OR_RETURN(ParseExprPtr left, ParseMultiplicative());
    while (true) {
      if (AcceptSymbol("+")) {
        MPPDB_ASSIGN_OR_RETURN(ParseExprPtr right, ParseMultiplicative());
        left = MakeBinary("+", std::move(left), std::move(right));
      } else if (AcceptSymbol("-")) {
        MPPDB_ASSIGN_OR_RETURN(ParseExprPtr right, ParseMultiplicative());
        left = MakeBinary("-", std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ParseExprPtr> ParseMultiplicative() {
    MPPDB_ASSIGN_OR_RETURN(ParseExprPtr left, ParsePrimary());
    while (true) {
      if (AcceptSymbol("*")) {
        MPPDB_ASSIGN_OR_RETURN(ParseExprPtr right, ParsePrimary());
        left = MakeBinary("*", std::move(left), std::move(right));
      } else if (AcceptSymbol("/")) {
        MPPDB_ASSIGN_OR_RETURN(ParseExprPtr right, ParsePrimary());
        left = MakeBinary("/", std::move(left), std::move(right));
      } else if (AcceptSymbol("%")) {
        MPPDB_ASSIGN_OR_RETURN(ParseExprPtr right, ParsePrimary());
        left = MakeBinary("%", std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ParseExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kIntLiteral: {
        auto node = MakeNode(ParseExpr::Kind::kIntLit);
        node->int_value = Advance().int_value;
        return node;
      }
      case TokenType::kDoubleLiteral: {
        auto node = MakeNode(ParseExpr::Kind::kDoubleLit);
        node->double_value = Advance().double_value;
        return node;
      }
      case TokenType::kStringLiteral: {
        auto node = MakeNode(ParseExpr::Kind::kStringLit);
        node->text = Advance().text;
        return node;
      }
      case TokenType::kParam: {
        auto node = MakeNode(ParseExpr::Kind::kParam);
        node->param_index = static_cast<int>(Advance().int_value) - 1;
        if (node->param_index < 0) return Error("parameters are numbered from $1");
        return Result<ParseExprPtr>(std::move(node));
      }
      default:
        break;
    }
    if (AcceptKeyword("DATE")) {
      if (Peek().type != TokenType::kStringLiteral) {
        return Error("expected string after DATE");
      }
      auto node = MakeNode(ParseExpr::Kind::kDateLit);
      node->text = Advance().text;
      return Result<ParseExprPtr>(std::move(node));
    }
    if (AcceptKeyword("TRUE") || AcceptKeyword("FALSE")) {
      auto node = MakeNode(ParseExpr::Kind::kBoolLit);
      node->int_value = tokens_[pos_ - 1].text == "TRUE" ? 1 : 0;
      return Result<ParseExprPtr>(std::move(node));
    }
    if (AcceptKeyword("NULL")) {
      return Result<ParseExprPtr>(MakeNode(ParseExpr::Kind::kNullLit));
    }
    for (const char* func : {"COUNT", "SUM", "AVG", "MIN", "MAX"}) {
      if (PeekKeyword(func)) {
        Advance();
        MPPDB_RETURN_IF_ERROR(ExpectSymbol("("));
        auto node = MakeNode(ParseExpr::Kind::kFuncCall);
        node->text = func;
        if (node->text == "COUNT" && AcceptSymbol("*")) {
          node->args.push_back(MakeNode(ParseExpr::Kind::kStar));
        } else {
          MPPDB_ASSIGN_OR_RETURN(ParseExprPtr arg, ParseExprTop());
          node->args.push_back(std::move(arg));
        }
        MPPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Result<ParseExprPtr>(std::move(node));
      }
    }
    if (AcceptSymbol("(")) {
      MPPDB_ASSIGN_OR_RETURN(ParseExprPtr inner, ParseExprTop());
      MPPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (AcceptSymbol("-")) {
      MPPDB_ASSIGN_OR_RETURN(ParseExprPtr inner, ParsePrimary());
      auto zero = MakeNode(ParseExpr::Kind::kIntLit);
      zero->int_value = 0;
      return Result<ParseExprPtr>(MakeBinary("-", std::move(zero), std::move(inner)));
    }
    if (token.type == TokenType::kIdentifier) {
      auto node = MakeNode(ParseExpr::Kind::kColumn);
      node->text = Advance().text;
      if (AcceptSymbol(".")) {
        node->qualifier = node->text;
        MPPDB_ASSIGN_OR_RETURN(node->text, ExpectIdentifier());
      }
      return Result<ParseExprPtr>(std::move(node));
    }
    return Error("unexpected token in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<sql_ast::Statement> ParseStatement(const std::string& sql) {
  MPPDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace mppdb
