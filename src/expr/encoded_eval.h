#ifndef MPPDB_EXPR_ENCODED_EVAL_H_
#define MPPDB_EXPR_ENCODED_EVAL_H_

#include <utility>
#include <vector>

#include "expr/eval.h"
#include "expr/expr.h"
#include "expr/interval.h"
#include "expr/vector_eval.h"
#include "storage/column_store.h"

namespace mppdb {

/// Encoded-data predicate evaluation (DESIGN.md §12).
///
/// Unlike sargable skip tests — *necessary* conditions used to prove whole
/// chunks dead — the terms here are *exact*: a conjunct compiled into an
/// EncodedTerm reproduces the conjunct's full three-valued verdict
/// (TRUE / FALSE / NULL) for every row value. That lets the scan evaluate a
/// prefix of the predicate directly on encoded column chunks — per-
/// dictionary-code verdicts, per-RLE-run verdicts, frame-of-reference integer
/// compares — and materialize only surviving rows, while remaining
/// bit-identical (rows *and* error outcomes) to the row oracle.
///
/// Soundness mirrors the sargable prefix rule, with one refinement. Terms
/// cover a maximal prefix of the top-level conjuncts; the first conjunct that
/// cannot be compiled exactly ends the prefix and everything from it on
/// becomes the residual. The row evaluator's AND short-circuits on FALSE but
/// *not* on NULL (a NULL conjunct keeps evaluating, so a later conjunct can
/// still raise an error), so the verdicts must be three-valued: a row is
/// dropped before the residual only when some prefix term is FALSE on it —
/// exactly when the oracle's short-circuit would never reach the residual. A
/// row whose prefix verdicts are all TRUE/NULL reaches the residual, and its
/// final keep additionally requires every prefix verdict to be TRUE. Per
/// chunk, the same family-check gate as SynopsisCanSkip proves no prefix term
/// can raise a type-mismatch error on any row of the chunk; a chunk failing
/// the gate falls back to ordinary row/kernel evaluation in full.

/// Three-valued conjunct verdict, ordered so OR-merging is std::max.
enum class TermVerdict : uint8_t { kFalse = 0, kNull = 1, kTrue = 2 };

/// One exactly-compiled conjunct. Verdict of a row value v:
///   v NULL          -> null_verdict
///   v in values     -> kTrue
///   otherwise       -> miss_verdict (kNull for e.g. IN lists with NULL items)
/// Constant conjuncts carry `const_value` for every row instead.
struct EncodedTerm {
  /// Row position of the referenced column; -1 for constant conjuncts.
  int position = -1;
  /// The set of non-null values with verdict kTrue.
  ConstraintSet values = ConstraintSet::None();
  TermVerdict null_verdict = TermVerdict::kNull;
  /// Verdict of a non-null value outside `values`; never kTrue.
  TermVerdict miss_verdict = TermVerdict::kFalse;
  /// Constant conjunct: `const_value` decides for every row.
  bool const_verdict = false;
  TermVerdict const_value = TermVerdict::kFalse;
  /// (row position, representative constant): same error-freedom gate
  /// contract as SargableConjunct::family_checks.
  std::vector<std::pair<int, Datum>> family_checks;
};

struct EncodedPredicate {
  /// Exactly-compiled prefix of the top-level conjuncts, evaluation order.
  std::vector<EncodedTerm> terms;
  /// Conjunction of the remaining conjuncts (original order); nullptr when
  /// the whole predicate compiled.
  ExprPtr residual;

  bool HasTerms() const { return !terms.empty(); }
};

/// Compiles the maximal exactly-representable conjunct prefix against a
/// scan's output layout. Shapes compiled: col-op-const, col IN (consts),
/// col IS NULL, NOT (col IS NULL), bare boolean columns, constant-foldable
/// conjuncts, and ORs of those over one column. Deterministic and
/// side-effect free; call once per scan.
EncodedPredicate CompileEncodedPredicate(const ExprPtr& predicate,
                                         const ColumnLayout& layout);

/// True if every term's family checks pass against chunk `chunk` of the
/// encoded slice — i.e. no term can raise an evaluation error on any row of
/// the chunk, so the encoded verdicts below are exact there. Chunks failing
/// this must be evaluated by the ordinary row/kernel path in full.
bool EncodedChunkEligible(const EncodedPredicate& pred, const SliceColumns& cols,
                          size_t chunk);

/// Evaluates every term over chunk `chunk` (rows [base, base + row_count) in
/// absolute positions), leaving the surviving absolute row indexes in *sel,
/// in row order. With `pure` null, survivors are exactly the rows where every
/// term is kTrue (correct when the whole predicate compiled: FALSE and NULL
/// conjunctions both drop under WHERE). With `pure` non-null — required when
/// a residual exists — survivors are the rows where no term is kFalse (the
/// rows on which the oracle's AND short-circuit would reach the residual),
/// and pure[i] is 1 iff every term is kTrue on sel[i]: the row's final keep
/// is pure[i] AND the residual's verdict. Precondition: EncodedChunkEligible.
void EvalEncodedPredicate(const EncodedPredicate& pred, const SliceColumns& cols,
                          size_t chunk, size_t base, size_t row_count,
                          SelVec* sel, std::vector<char>* pure);

}  // namespace mppdb

#endif  // MPPDB_EXPR_ENCODED_EVAL_H_
