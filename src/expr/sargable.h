#ifndef MPPDB_EXPR_SARGABLE_H_
#define MPPDB_EXPR_SARGABLE_H_

#include <utility>
#include <vector>

#include "expr/eval.h"
#include "expr/expr.h"
#include "expr/interval.h"
#include "storage/synopsis.h"

namespace mppdb {

/// Sargable-predicate analysis for zone-map data skipping (see DESIGN.md §7).
///
/// A Filter's predicate is split into its top-level conjuncts, and a *maximal
/// safe prefix* of them — conjuncts provably unable to raise an evaluation
/// error on any row — is analyzed into per-column skip tests over the
/// Interval/ConstraintSet algebra. A chunk may be skipped when some conjunct
/// in the prefix is provably FALSE (not NULL) for every row of the chunk,
/// because AND short-circuits to FALSE there and all earlier conjuncts are
/// error-free on the chunk, so skipping cannot hide an error, change a
/// result, or mask a type mismatch. Conjuncts past the prefix (the residual)
/// never license skips; they only run over surviving chunks.

/// One provable-miss test extracted from a sargable conjunct. A test "misses"
/// a chunk when the chunk's synopsis proves no row can satisfy it.
struct SargableTest {
  enum class Kind {
    /// Row satisfies the conjunct only if column ∈ values. Misses when the
    /// column has no NULLs (NULL rows make the conjunct NULL, not FALSE) and
    /// [min, max] is disjoint from the value set.
    kValueSet,
    /// column IS NULL; misses when null_count == 0.
    kIsNull,
    /// column IS NOT NULL; misses when non_null_count == 0.
    kNotNull,
    /// Conjunct folded to constant FALSE; misses every chunk.
    kAlwaysFalse,
  };
  Kind kind = Kind::kValueSet;
  /// Referenced column; unused for kAlwaysFalse.
  ColRefId column = -1;
  /// kValueSet only.
  ConstraintSet values = ConstraintSet::None();
};

/// One top-level conjunct of the analyzed predicate, in evaluation order.
struct SargableConjunct {
  ExprPtr expr;
  /// The conjunct is provably FALSE on every row of a chunk iff ALL tests
  /// miss the chunk. Empty when the conjunct contributes no skip power (it is
  /// in the prefix only because it is provably error-free).
  std::vector<SargableTest> tests;
  /// (column, representative constant) pairs: evaluating the conjunct cannot
  /// raise a type-mismatch error on a chunk iff, for each pair, the column's
  /// non-null values share the representative's comparison family (all-NULL
  /// columns pass trivially — comparisons against NULL yield NULL).
  std::vector<std::pair<ColRefId, Datum>> family_checks;
};

/// Analysis result: the maximal safe prefix plus whether a residual exists.
struct SargablePredicate {
  std::vector<SargableConjunct> prefix;
  /// True if some conjunct could not be proven error-free; it and everything
  /// after it were dropped from the prefix (their errors must surface).
  bool truncated = false;
};

/// Analyzes a pushed-down predicate once at plan-build time (FilterNode
/// caches the result). Deterministic and side-effect free.
SargablePredicate AnalyzeSargable(const ExprPtr& predicate);

// --- Compiled form (per scan) ------------------------------------------------
// ColRefIds resolved to row positions against the scan's output layout, so
// the per-chunk test is position lookups and interval overlap checks only.

struct CompiledSkipTest {
  SargableTest::Kind kind = SargableTest::Kind::kValueSet;
  /// Row position of the column; -1 for kAlwaysFalse.
  int position = -1;
  ConstraintSet values = ConstraintSet::None();
};

struct CompiledSkipConjunct {
  std::vector<CompiledSkipTest> tests;
  /// (row position, representative constant); see SargableConjunct.
  std::vector<std::pair<int, Datum>> family_checks;

  /// True if this conjunct can ever license a skip (has tests).
  bool prunes() const { return !tests.empty(); }
};

struct CompiledSargable {
  std::vector<CompiledSkipConjunct> conjuncts;

  /// True if any conjunct can license a skip — when false, callers should
  /// bypass synopsis fetches entirely (the answer is always "keep").
  bool CanPrune() const;
};

/// Resolves the analyzed prefix against a scan's column layout. A conjunct
/// referencing a column absent from the layout truncates compilation there
/// (it and later conjuncts are dropped — prefix safety is positional).
CompiledSargable CompileSargable(const SargablePredicate& pred,
                                 const ColumnLayout& layout);

/// True if the chunk (or a slice rollup) can be skipped: walking conjuncts in
/// evaluation order, every conjunct reached passes its family checks (no
/// possible error), and some conjunct's tests all miss. Never true for an
/// empty chunk. `chunk.columns` must be the scan's schema columns, matching
/// the layout given to CompileSargable.
bool SynopsisCanSkip(const CompiledSargable& compiled, const ChunkSynopsis& chunk);

/// True if evaluating the *entire* predicate on any row of the chunk provably
/// cannot raise an error: the analysis kept every top-level conjunct
/// (!pred.truncated), compilation resolved them all, and each conjunct's
/// family checks pass on the chunk. Runtime join filters use this to license
/// chunk skips at Filter consumers — unlike SynopsisCanSkip, the rows being
/// dropped may *satisfy* the predicate (they provably cannot join), so every
/// conjunct must be error-free, not just those up to a provable miss.
bool SynopsisErrorFree(const SargablePredicate& pred,
                       const CompiledSargable& compiled,
                       const ChunkSynopsis& chunk);

}  // namespace mppdb

#endif  // MPPDB_EXPR_SARGABLE_H_
