#include "expr/sargable.h"

#include "common/macros.h"

namespace mppdb {

namespace {

bool IsBoolOrNull(const Datum& d) {
  return d.is_null() || d.type() == TypeId::kBool;
}

/// If `e` is a comparison between a bare column reference and a foldable
/// constant (either side), returns the column, the folded constant, and the
/// operator normalized to column-op-constant form.
bool MatchColOpConst(const Expr& e, const ColumnRefExpr** col, Datum* constant,
                     CompareOp* op) {
  if (e.kind() != ExprKind::kComparison) return false;
  const auto& cmp = static_cast<const ComparisonExpr&>(e);
  const ExprPtr& l = cmp.child(0);
  const ExprPtr& r = cmp.child(1);
  const ExprPtr* col_side = nullptr;
  const ExprPtr* const_side = nullptr;
  *op = cmp.op();
  if (l->kind() == ExprKind::kColumnRef) {
    col_side = &l;
    const_side = &r;
  } else if (r->kind() == ExprKind::kColumnRef) {
    col_side = &r;
    const_side = &l;
    *op = SwapCompareOp(*op);
  } else {
    return false;
  }
  std::optional<Datum> folded = TryFoldConst(*const_side);
  if (!folded) return false;  // references columns, or folding errors
  *col = static_cast<const ColumnRefExpr*>(col_side->get());
  *constant = std::move(*folded);
  return true;
}

/// Extracts miss tests proving `e` FALSE-for-every-row, plus the family
/// checks proving `e` error-free. Fails (returning false, outputs unusable)
/// when no such proof exists — the caller falls back to IsErrorFreeBool.
/// Precision note: a subexpression folding to TRUE or NULL must FAIL here,
/// not contribute zero tests — inside an OR, `TRUE OR x < 5` is never false,
/// so treating TRUE as "no tests" would let the x < 5 tests wrongly prune.
bool CollectTests(const ExprPtr& e, std::vector<SargableTest>* tests,
                  std::vector<std::pair<ColRefId, Datum>>* checks) {
  switch (e->kind()) {
    case ExprKind::kConst:
    case ExprKind::kArith: {
      std::optional<Datum> folded = TryFoldConst(e);
      if (!folded) return false;
      if (folded->is_null() || folded->type() != TypeId::kBool) return false;
      if (folded->bool_value()) return false;  // constant TRUE: never a miss
      tests->push_back({SargableTest::Kind::kAlwaysFalse, -1, ConstraintSet::None()});
      return true;
    }
    case ExprKind::kColumnRef: {
      // Bare boolean column as predicate: FALSE-for-all iff no row is TRUE
      // (and none NULL). Family check against Bool guards the "AND operand is
      // not a boolean" error on non-bool columns.
      const auto& col = static_cast<const ColumnRefExpr&>(*e);
      tests->push_back({SargableTest::Kind::kValueSet, col.id(),
                        ConstraintSet::FromPoints({Datum::Bool(true)})});
      checks->emplace_back(col.id(), Datum::Bool(true));
      return true;
    }
    case ExprKind::kComparison: {
      const ColumnRefExpr* col = nullptr;
      Datum constant;
      CompareOp op;
      if (!MatchColOpConst(*e, &col, &constant, &op)) return false;
      // col-op-NULL is NULL on every row — never FALSE, so no miss test; and
      // the conjunct would not short-circuit the AND, so it cannot prune.
      if (constant.is_null()) return false;
      tests->push_back({SargableTest::Kind::kValueSet, col->id(),
                        ConstraintSet::FromComparison(op, constant)});
      checks->emplace_back(col->id(), std::move(constant));
      return true;
    }
    case ExprKind::kInList: {
      if (e->children().empty() ||
          e->child(0)->kind() != ExprKind::kColumnRef) {
        return false;
      }
      const auto& col = static_cast<const ColumnRefExpr&>(*e->child(0));
      std::vector<Datum> points;
      for (size_t i = 1; i < e->children().size(); ++i) {
        std::optional<Datum> item = TryFoldConst(e->child(i));
        if (!item) return false;
        // A NULL item makes a non-matching IN yield NULL, never FALSE.
        if (item->is_null()) return false;
        checks->emplace_back(col.id(), *item);
        points.push_back(std::move(*item));
      }
      tests->push_back({SargableTest::Kind::kValueSet, col.id(),
                        ConstraintSet::FromPoints(std::move(points))});
      return true;
    }
    case ExprKind::kIsNull: {
      if (e->child(0)->kind() != ExprKind::kColumnRef) return false;
      const auto& col = static_cast<const ColumnRefExpr&>(*e->child(0));
      tests->push_back(
          {SargableTest::Kind::kIsNull, col.id(), ConstraintSet::None()});
      return true;
    }
    case ExprKind::kNot: {
      // Only NOT (col IS NULL): NOT of a general miss proof is not a miss
      // proof (NOT NULL is NULL, and refuting "always false" proves nothing).
      const ExprPtr& inner = e->child(0);
      if (inner->kind() != ExprKind::kIsNull ||
          inner->child(0)->kind() != ExprKind::kColumnRef) {
        return false;
      }
      const auto& col = static_cast<const ColumnRefExpr&>(*inner->child(0));
      tests->push_back(
          {SargableTest::Kind::kNotNull, col.id(), ConstraintSet::None()});
      return true;
    }
    case ExprKind::kOr: {
      // An OR is FALSE-for-all iff every disjunct is: all children must
      // produce proofs, and all their tests must miss together.
      for (const ExprPtr& child : e->children()) {
        if (!CollectTests(child, tests, checks)) return false;
      }
      return !e->children().empty();
    }
    default:
      return false;  // kAnd (not flattened here), kParam, kAggCall
  }
}

/// Proves `e` evaluates without error to a boolean or NULL on every possible
/// row, accumulating the family checks the proof is conditional on. This is
/// the prefix-extension fallback for conjuncts with no skip power.
bool IsErrorFreeBool(const ExprPtr& e,
                     std::vector<std::pair<ColRefId, Datum>>* checks) {
  switch (e->kind()) {
    case ExprKind::kConst: {
      const auto& c = static_cast<const ConstExpr&>(*e);
      return IsBoolOrNull(c.value());
    }
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const ColumnRefExpr&>(*e);
      checks->emplace_back(col.id(), Datum::Bool(true));
      return true;
    }
    case ExprKind::kComparison: {
      const ColumnRefExpr* col = nullptr;
      Datum constant;
      CompareOp op;
      if (MatchColOpConst(*e, &col, &constant, &op)) {
        // Comparison against NULL yields NULL before any family check runs,
        // so it needs no check at all.
        if (!constant.is_null()) checks->emplace_back(col->id(), std::move(constant));
        return true;
      }
      if (e->child(0)->kind() == ExprKind::kColumnRef &&
          e->child(1)->kind() == ExprKind::kColumnRef) {
        return false;  // two columns: no constant representative to check
      }
      // Constant-only comparison (including erroring ones like 1/0 = 1).
      std::optional<Datum> folded = TryFoldConst(e);
      return folded && IsBoolOrNull(*folded);
    }
    case ExprKind::kIsNull:
      return e->child(0)->kind() == ExprKind::kColumnRef;
    case ExprKind::kNot:
      return IsErrorFreeBool(e->child(0), checks);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      for (const ExprPtr& child : e->children()) {
        if (!IsErrorFreeBool(child, checks)) return false;
      }
      return true;
    }
    case ExprKind::kInList: {
      if (e->children().empty() ||
          e->child(0)->kind() != ExprKind::kColumnRef) {
        return false;
      }
      const auto& col = static_cast<const ColumnRefExpr&>(*e->child(0));
      for (size_t i = 1; i < e->children().size(); ++i) {
        std::optional<Datum> item = TryFoldConst(e->child(i));
        if (!item) return false;
        // NULL items compare to NULL without a family check.
        if (!item->is_null()) checks->emplace_back(col.id(), std::move(*item));
      }
      return true;
    }
    default:
      return false;  // kParam, kArith (non-bool), kAggCall
  }
}

/// Family guard for a kValueSet test: the synopsis extremes must share a
/// comparison family with the test's constants before ConstraintSet::Overlaps
/// may run (Datum::Compare aborts across families). The conjunct's family
/// checks normally guarantee this; this is the local precondition restated so
/// the test is safe in isolation.
bool ValueSetFamilyMatches(const ConstraintSet& values, const Datum& probe) {
  for (const Interval& in : values.intervals()) {
    if (!in.lo().unbounded) return DatumsComparable(in.lo().value, probe);
    if (!in.hi().unbounded) return DatumsComparable(in.hi().value, probe);
  }
  return true;  // All() / None(): the overlap answer needs no comparison
}

bool TestMisses(const CompiledSkipTest& test, const ChunkSynopsis& chunk) {
  if (test.kind == SargableTest::Kind::kAlwaysFalse) return true;
  MPPDB_CHECK(test.position >= 0 &&
              static_cast<size_t>(test.position) < chunk.columns.size());
  const ColumnSynopsis& col = chunk.columns[static_cast<size_t>(test.position)];
  switch (test.kind) {
    case SargableTest::Kind::kIsNull:
      return col.null_count == 0;
    case SargableTest::Kind::kNotNull:
      return col.non_null_count == 0;
    case SargableTest::Kind::kValueSet:
      // NULL rows make the conjunct NULL, not FALSE — no miss proof then.
      if (col.null_count != 0) return false;
      if (col.non_null_count == 0) return false;  // empty column run
      if (!col.comparable) return false;
      if (!ValueSetFamilyMatches(test.values, col.min)) return false;
      return !test.values.Overlaps(Interval::Closed(col.min, col.max));
    case SargableTest::Kind::kAlwaysFalse:
      break;  // handled above
  }
  return false;
}

}  // namespace

SargablePredicate AnalyzeSargable(const ExprPtr& predicate) {
  SargablePredicate out;
  if (!predicate) return out;
  for (const ExprPtr& conjunct : SplitConjuncts(predicate)) {
    SargableConjunct sc;
    sc.expr = conjunct;
    if (!CollectTests(conjunct, &sc.tests, &sc.family_checks)) {
      sc.tests.clear();
      sc.family_checks.clear();
      if (!IsErrorFreeBool(conjunct, &sc.family_checks)) {
        out.truncated = true;
        break;
      }
    }
    out.prefix.push_back(std::move(sc));
  }
  return out;
}

bool CompiledSargable::CanPrune() const {
  for (const CompiledSkipConjunct& c : conjuncts) {
    if (c.prunes()) return true;
  }
  return false;
}

CompiledSargable CompileSargable(const SargablePredicate& pred,
                                 const ColumnLayout& layout) {
  CompiledSargable out;
  for (const SargableConjunct& sc : pred.prefix) {
    CompiledSkipConjunct compiled;
    bool resolved = true;
    for (const SargableTest& test : sc.tests) {
      CompiledSkipTest ct;
      ct.kind = test.kind;
      ct.values = test.values;
      if (test.kind != SargableTest::Kind::kAlwaysFalse) {
        ct.position = layout.PositionOf(test.column);
        if (ct.position < 0) {
          resolved = false;
          break;
        }
      }
      compiled.tests.push_back(std::move(ct));
    }
    for (const auto& [column, rep] : sc.family_checks) {
      if (!resolved) break;
      int position = layout.PositionOf(column);
      if (position < 0) {
        resolved = false;
        break;
      }
      compiled.family_checks.emplace_back(position, rep);
    }
    // Prefix safety is ordered: an unresolvable conjunct ends compilation,
    // it does not just drop out (later misses could not short-circuit it).
    if (!resolved) break;
    out.conjuncts.push_back(std::move(compiled));
  }
  return out;
}

bool SynopsisCanSkip(const CompiledSargable& compiled, const ChunkSynopsis& chunk) {
  if (chunk.row_count == 0) return false;
  for (const CompiledSkipConjunct& conjunct : compiled.conjuncts) {
    // Error-freedom gate: all-NULL columns pass trivially (every comparison
    // yields NULL), otherwise the synopsis family must match the constant's.
    for (const auto& [position, rep] : conjunct.family_checks) {
      MPPDB_CHECK(position >= 0 &&
                  static_cast<size_t>(position) < chunk.columns.size());
      const ColumnSynopsis& col = chunk.columns[static_cast<size_t>(position)];
      if (col.non_null_count == 0) continue;
      if (!col.comparable || !DatumsComparable(col.min, rep)) {
        // The conjunct might error on some row: no skip may be licensed by
        // it OR by anything after it (evaluation would have stopped here).
        return false;
      }
    }
    if (conjunct.tests.empty()) continue;
    bool all_miss = true;
    for (const CompiledSkipTest& test : conjunct.tests) {
      if (!TestMisses(test, chunk)) {
        all_miss = false;
        break;
      }
    }
    if (all_miss) return true;
  }
  return false;
}

bool SynopsisErrorFree(const SargablePredicate& pred,
                       const CompiledSargable& compiled,
                       const ChunkSynopsis& chunk) {
  // Every top-level conjunct must have survived analysis AND compilation —
  // a dropped conjunct is one whose errors must surface, so no row of the
  // chunk may be dropped behind its back.
  if (pred.truncated) return false;
  if (compiled.conjuncts.size() != pred.prefix.size()) return false;
  for (const CompiledSkipConjunct& conjunct : compiled.conjuncts) {
    // Same family gate as SynopsisCanSkip: all-NULL columns pass trivially
    // (comparisons yield NULL), otherwise synopsis and constant families
    // must match or some row could raise a type mismatch.
    for (const auto& [position, rep] : conjunct.family_checks) {
      MPPDB_CHECK(position >= 0 &&
                  static_cast<size_t>(position) < chunk.columns.size());
      const ColumnSynopsis& col = chunk.columns[static_cast<size_t>(position)];
      if (col.non_null_count == 0) continue;
      if (!col.comparable || !DatumsComparable(col.min, rep)) return false;
    }
  }
  return true;
}

}  // namespace mppdb
