#include "expr/expr.h"

#include "common/macros.h"

namespace mppdb {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

CompareOp SwapCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

std::string ComparisonExpr::ToString() const {
  return "(" + child(0)->ToString() + " " + CompareOpToString(op_) + " " +
         child(1)->ToString() + ")";
}

std::string AndExpr::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < children().size(); ++i) {
    if (i > 0) out += " AND ";
    out += child(i)->ToString();
  }
  return out + ")";
}

std::string OrExpr::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < children().size(); ++i) {
    if (i > 0) out += " OR ";
    out += child(i)->ToString();
  }
  return out + ")";
}

std::string ArithExpr::ToString() const {
  return "(" + child(0)->ToString() + " " + ArithOpToString(op_) + " " +
         child(1)->ToString() + ")";
}

std::string InListExpr::ToString() const {
  std::string out = child(0)->ToString() + " IN (";
  for (size_t i = 1; i < children().size(); ++i) {
    if (i > 1) out += ", ";
    out += child(i)->ToString();
  }
  return out + ")";
}

std::string AggCallExpr::ToString() const {
  if (func_ == AggFunc::kCountStar) return "count(*)";
  std::string out = AggFuncToString(func_);
  out += "(";
  for (size_t i = 0; i < children().size(); ++i) {
    if (i > 0) out += ", ";
    out += child(i)->ToString();
  }
  return out + ")";
}

bool Expr::Equals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind()) return false;
  if (a->children().size() != b->children().size()) return false;
  switch (a->kind()) {
    case ExprKind::kConst: {
      const auto& ca = static_cast<const ConstExpr&>(*a);
      const auto& cb = static_cast<const ConstExpr&>(*b);
      if (ca.value().is_null() != cb.value().is_null()) return false;
      if (!ca.value().is_null() && !ca.value().Equals(cb.value())) return false;
      break;
    }
    case ExprKind::kColumnRef: {
      const auto& ca = static_cast<const ColumnRefExpr&>(*a);
      const auto& cb = static_cast<const ColumnRefExpr&>(*b);
      if (ca.id() != cb.id()) return false;
      break;
    }
    case ExprKind::kParam: {
      const auto& pa = static_cast<const ParamExpr&>(*a);
      const auto& pb = static_cast<const ParamExpr&>(*b);
      if (pa.index() != pb.index()) return false;
      break;
    }
    case ExprKind::kComparison: {
      const auto& ca = static_cast<const ComparisonExpr&>(*a);
      const auto& cb = static_cast<const ComparisonExpr&>(*b);
      if (ca.op() != cb.op()) return false;
      break;
    }
    case ExprKind::kArith: {
      const auto& aa = static_cast<const ArithExpr&>(*a);
      const auto& ab = static_cast<const ArithExpr&>(*b);
      if (aa.op() != ab.op()) return false;
      break;
    }
    case ExprKind::kAggCall: {
      const auto& aa = static_cast<const AggCallExpr&>(*a);
      const auto& ab = static_cast<const AggCallExpr&>(*b);
      if (aa.func() != ab.func()) return false;
      break;
    }
    default:
      break;
  }
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!Equals(a->child(i), b->child(i))) return false;
  }
  return true;
}

ExprPtr MakeConst(Datum value) { return std::make_shared<ConstExpr>(std::move(value)); }

ExprPtr MakeColumnRef(ColRefId id, std::string name, TypeId type) {
  return std::make_shared<ColumnRefExpr>(id, std::move(name), type);
}

ExprPtr MakeParam(int index, TypeId type) {
  return std::make_shared<ParamExpr>(index, type);
}

ExprPtr MakeComparison(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ComparisonExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeNot(ExprPtr input) { return std::make_shared<NotExpr>(std::move(input)); }

ExprPtr MakeArith(ArithOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ArithExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeInList(std::vector<ExprPtr> children) {
  return std::make_shared<InListExpr>(std::move(children));
}

ExprPtr Conj(std::vector<ExprPtr> preds) {
  std::vector<ExprPtr> nonnull;
  for (auto& p : preds) {
    if (p != nullptr) nonnull.push_back(std::move(p));
  }
  if (nonnull.empty()) return nullptr;
  if (nonnull.size() == 1) return nonnull[0];
  return std::make_shared<AndExpr>(std::move(nonnull));
}

ExprPtr MakeOr(std::vector<ExprPtr> preds) {
  std::vector<ExprPtr> nonnull;
  for (auto& p : preds) {
    if (p != nullptr) nonnull.push_back(std::move(p));
  }
  if (nonnull.empty()) return nullptr;
  if (nonnull.size() == 1) return nonnull[0];
  return std::make_shared<OrExpr>(std::move(nonnull));
}

void CollectColumnRefs(const ExprPtr& expr, std::unordered_set<ColRefId>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kColumnRef) {
    out->insert(static_cast<const ColumnRefExpr&>(*expr).id());
    return;
  }
  for (const auto& child : expr->children()) CollectColumnRefs(child, out);
}

bool ReferencesColumn(const ExprPtr& expr, ColRefId id) {
  if (expr == nullptr) return false;
  if (expr->kind() == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(*expr).id() == id;
  }
  for (const auto& child : expr->children()) {
    if (ReferencesColumn(child, id)) return true;
  }
  return false;
}

bool IsConstantExpr(const ExprPtr& expr) {
  std::unordered_set<ColRefId> refs;
  CollectColumnRefs(expr, &refs);
  return refs.empty();
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind() == ExprKind::kAnd) {
    for (const auto& child : expr->children()) {
      auto sub = SplitConjuncts(child);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  out.push_back(expr);
  return out;
}

namespace {

// Rebuilds `expr` with `children`; shares the node if nothing changed.
ExprPtr WithChildren(const ExprPtr& expr, std::vector<ExprPtr> children) {
  bool same = children.size() == expr->children().size();
  if (same) {
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i] != expr->child(i)) {
        same = false;
        break;
      }
    }
  }
  if (same) return expr;
  switch (expr->kind()) {
    case ExprKind::kComparison:
      return std::make_shared<ComparisonExpr>(
          static_cast<const ComparisonExpr&>(*expr).op(), children[0], children[1]);
    case ExprKind::kAnd:
      return std::make_shared<AndExpr>(std::move(children));
    case ExprKind::kOr:
      return std::make_shared<OrExpr>(std::move(children));
    case ExprKind::kNot:
      return std::make_shared<NotExpr>(children[0]);
    case ExprKind::kIsNull:
      return std::make_shared<IsNullExpr>(children[0]);
    case ExprKind::kArith:
      return std::make_shared<ArithExpr>(static_cast<const ArithExpr&>(*expr).op(),
                                         children[0], children[1]);
    case ExprKind::kInList:
      return std::make_shared<InListExpr>(std::move(children));
    case ExprKind::kAggCall:
      return std::make_shared<AggCallExpr>(static_cast<const AggCallExpr&>(*expr).func(),
                                           std::move(children));
    default:
      MPPDB_CHECK(false);
      return expr;
  }
}

}  // namespace

ExprPtr SubstituteColumns(const ExprPtr& expr,
                          const std::unordered_map<ColRefId, Datum>& bindings) {
  if (expr == nullptr) return nullptr;
  if (expr->kind() == ExprKind::kColumnRef) {
    auto it = bindings.find(static_cast<const ColumnRefExpr&>(*expr).id());
    if (it != bindings.end()) return MakeConst(it->second);
    return expr;
  }
  if (expr->children().empty()) return expr;
  std::vector<ExprPtr> children;
  children.reserve(expr->children().size());
  for (const auto& child : expr->children()) {
    children.push_back(SubstituteColumns(child, bindings));
  }
  return WithChildren(expr, std::move(children));
}

ExprPtr SubstituteParams(const ExprPtr& expr, const std::vector<Datum>& params) {
  if (expr == nullptr) return nullptr;
  if (expr->kind() == ExprKind::kParam) {
    int idx = static_cast<const ParamExpr&>(*expr).index();
    MPPDB_CHECK(idx >= 0 && static_cast<size_t>(idx) < params.size());
    return MakeConst(params[static_cast<size_t>(idx)]);
  }
  if (expr->children().empty()) return expr;
  std::vector<ExprPtr> children;
  children.reserve(expr->children().size());
  for (const auto& child : expr->children()) {
    children.push_back(SubstituteParams(child, params));
  }
  return WithChildren(expr, std::move(children));
}

}  // namespace mppdb
