#ifndef MPPDB_EXPR_EXPR_H_
#define MPPDB_EXPR_EXPR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "types/datum.h"

namespace mppdb {

/// Unique identifier of a column instance within one query. Issued by the
/// binder / optimizer; base-table columns and computed columns each get one.
/// Expressions reference columns by ColRefId; the executor lowers ids to row
/// positions per operator (see expr/eval.h).
using ColRefId = int32_t;

enum class ExprKind {
  kConst,       // literal Datum
  kColumnRef,   // reference to a column by ColRefId
  kParam,       // prepared-statement parameter ($n), bound at execution
  kComparison,  // =, <>, <, <=, >, >=
  kAnd,
  kOr,
  kNot,
  kIsNull,      // IS [NOT] NULL via kNot wrapping
  kArith,       // +, -, *, /, %
  kInList,      // key IN (c1, c2, ...)
  kAggCall,     // aggregate function over an argument (binder output)
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
enum class AggFunc { kCount, kCountStar, kSum, kAvg, kMin, kMax };

const char* CompareOpToString(CompareOp op);
const char* ArithOpToString(ArithOp op);
const char* AggFuncToString(AggFunc func);

/// Flips an operator across '=' (a < b  <=>  b > a).
CompareOp SwapCompareOp(CompareOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression tree node. Shared subtrees are allowed; nodes are
/// never mutated after construction.
class Expr {
 public:
  Expr(ExprKind kind, std::vector<ExprPtr> children)
      : kind_(kind), children_(std::move(children)) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }

  /// Structural rendering for debugging and plan serialization.
  virtual std::string ToString() const = 0;

  /// Deep structural equality.
  static bool Equals(const ExprPtr& a, const ExprPtr& b);

 protected:
  ExprKind kind_;
  std::vector<ExprPtr> children_;
};

class ConstExpr : public Expr {
 public:
  explicit ConstExpr(Datum value) : Expr(ExprKind::kConst, {}), value_(std::move(value)) {}
  const Datum& value() const { return value_; }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Datum value_;
};

class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(ColRefId id, std::string name, TypeId type)
      : Expr(ExprKind::kColumnRef, {}), id_(id), name_(std::move(name)), type_(type) {}

  ColRefId id() const { return id_; }
  const std::string& name() const { return name_; }
  TypeId type() const { return type_; }
  std::string ToString() const override { return name_ + "#" + std::to_string(id_); }

 private:
  ColRefId id_;
  std::string name_;
  TypeId type_;
};

class ParamExpr : public Expr {
 public:
  ParamExpr(int index, TypeId type)
      : Expr(ExprKind::kParam, {}), index_(index), type_(type) {}
  int index() const { return index_; }
  TypeId type() const { return type_; }
  std::string ToString() const override { return "$" + std::to_string(index_); }

 private:
  int index_;
  TypeId type_;
};

class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kComparison, {std::move(left), std::move(right)}), op_(op) {}
  CompareOp op() const { return op_; }
  std::string ToString() const override;

 private:
  CompareOp op_;
};

class AndExpr : public Expr {
 public:
  explicit AndExpr(std::vector<ExprPtr> conjuncts)
      : Expr(ExprKind::kAnd, std::move(conjuncts)) {}
  std::string ToString() const override;
};

class OrExpr : public Expr {
 public:
  explicit OrExpr(std::vector<ExprPtr> disjuncts)
      : Expr(ExprKind::kOr, std::move(disjuncts)) {}
  std::string ToString() const override;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr input) : Expr(ExprKind::kNot, {std::move(input)}) {}
  std::string ToString() const override { return "NOT (" + child(0)->ToString() + ")"; }
};

class IsNullExpr : public Expr {
 public:
  explicit IsNullExpr(ExprPtr input) : Expr(ExprKind::kIsNull, {std::move(input)}) {}
  std::string ToString() const override { return "(" + child(0)->ToString() + ") IS NULL"; }
};

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kArith, {std::move(left), std::move(right)}), op_(op) {}
  ArithOp op() const { return op_; }
  std::string ToString() const override;

 private:
  ArithOp op_;
};

class InListExpr : public Expr {
 public:
  /// children[0] is the probe expression; children[1..] are list items.
  explicit InListExpr(std::vector<ExprPtr> children)
      : Expr(ExprKind::kInList, std::move(children)) {}
  std::string ToString() const override;
};

class AggCallExpr : public Expr {
 public:
  /// For kCountStar the argument list is empty.
  AggCallExpr(AggFunc func, std::vector<ExprPtr> args)
      : Expr(ExprKind::kAggCall, std::move(args)), func_(func) {}
  AggFunc func() const { return func_; }
  std::string ToString() const override;

 private:
  AggFunc func_;
};

// --- Construction helpers ---------------------------------------------------

ExprPtr MakeConst(Datum value);
ExprPtr MakeColumnRef(ColRefId id, std::string name, TypeId type);
ExprPtr MakeParam(int index, TypeId type);
ExprPtr MakeComparison(CompareOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeNot(ExprPtr input);
ExprPtr MakeArith(ArithOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeInList(std::vector<ExprPtr> children);

/// Conjunction of the given predicates, dropping nulls; returns nullptr for an
/// empty list, the sole element for a singleton (paper's Conj helper).
ExprPtr Conj(std::vector<ExprPtr> preds);
ExprPtr MakeOr(std::vector<ExprPtr> preds);

// --- Analysis helpers --------------------------------------------------------

/// Collects the ColRefIds referenced anywhere in `expr` into `out`.
void CollectColumnRefs(const ExprPtr& expr, std::unordered_set<ColRefId>* out);

/// True if `expr` references the given column anywhere.
bool ReferencesColumn(const ExprPtr& expr, ColRefId id);

/// True if `expr` references no columns at all (constants/params only).
bool IsConstantExpr(const ExprPtr& expr);

/// Splits a predicate into its top-level conjuncts (flattens nested ANDs).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// Replaces column references per `bindings` (id -> constant). References not
/// in the map are preserved.
ExprPtr SubstituteColumns(const ExprPtr& expr,
                          const std::unordered_map<ColRefId, Datum>& bindings);

/// Replaces kParam nodes with the given constants (index -> value).
ExprPtr SubstituteParams(const ExprPtr& expr, const std::vector<Datum>& params);

}  // namespace mppdb

#endif  // MPPDB_EXPR_EXPR_H_
