#ifndef MPPDB_EXPR_VECTOR_EVAL_H_
#define MPPDB_EXPR_VECTOR_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "types/row.h"

namespace mppdb {

/// Selection vector: indices of surviving rows within the row span a batch
/// kernel evaluates over. Indices are absolute positions into the row vector;
/// kernels translate them to chunk-relative buffer slots via the chunk base.
using SelVec = std::vector<uint32_t>;

/// Vectorized kernel opcodes. One instruction per expression-tree node that
/// cannot be folded into its parent as a ValueSource.
enum class KernelOp : uint8_t {
  kLoadConst,   // broadcast consts[arg] into the output slot
  kLoadColumn,  // copy input column `arg` into the output slot
  kCompare,     // lhs <op> rhs, arg = CompareOp
  kArith,       // lhs <op> rhs, arg = ArithOp
  kNot,         // three-valued NOT of operands[0]
  kIsNull,      // IS NULL of operands[0]
  kAnd,         // three-valued AND over operands, short-circuit per row
  kOr,          // three-valued OR over operands, short-circuit per row
  kInList,      // operands[0] IN (operands[1..]), short-circuit per row
  kError,       // raises `error` when evaluated over a non-empty selection
};

/// Where an instruction reads an operand from. Leaf operands (column refs and
/// constants) are read in place — no buffer materialization — which keeps the
/// common `col <op> const` predicate free of per-row Datum copies.
struct ValueSource {
  enum class Kind : uint8_t { kColumn, kConst, kSlot };
  Kind kind = Kind::kSlot;
  /// Column position (kColumn), constant-pool index (kConst), or the operand
  /// sub-program's root instruction index (kSlot).
  int index = -1;
};

struct KernelInstr {
  KernelOp op = KernelOp::kError;
  /// CompareOp/ArithOp code, column position (kLoadColumn), or constant-pool
  /// index (kLoadConst).
  int arg = 0;
  /// Binary operands (kCompare / kArith).
  ValueSource lhs, rhs;
  /// Variadic operands (kAnd / kOr / kNot / kIsNull / kInList). For kInList,
  /// operands[0] is the probe and operands[1..] the list items.
  std::vector<ValueSource> operands;
  /// Error raised when a kError instruction is reached (kept identical to the
  /// row-at-a-time evaluator's message for the same expression).
  std::string error;
};

/// An expression flattened once per operator into a postfix instruction
/// array (root last). Positions are resolved against the operator's
/// ColumnLayout at compile time, so evaluation never touches the layout's
/// hash map. Compilation cannot fail: expressions the row-at-a-time path
/// rejects at evaluation time (unbound params, aggregate calls, unknown
/// columns) compile to kError instructions that raise the identical Status
/// when — and only when — they would actually be evaluated over at least one
/// row, preserving AND/OR short-circuit behaviour.
class KernelProgram {
 public:
  /// Flattens `expr` against `layout`. `expr` must be non-null.
  static KernelProgram Compile(const ExprPtr& expr, const ColumnLayout& layout);

  const std::vector<KernelInstr>& instrs() const { return instrs_; }
  const std::vector<Datum>& consts() const { return consts_; }
  int root() const { return static_cast<int>(instrs_.size()) - 1; }

 private:
  friend class KernelCompiler;
  std::vector<KernelInstr> instrs_;
  std::vector<Datum> consts_;
};

/// Reusable per-operator evaluation scratch: one Datum column buffer per
/// instruction plus selection/flag scratch for the short-circuiting ops.
/// Buffers are sized to the chunk capacity once and reused across chunks, so
/// steady-state evaluation performs no allocation. Not thread-safe; each
/// executor worker owns its own context.
class KernelContext {
 public:
  static constexpr size_t kDefaultChunkRows = 1024;

  /// Sizes the scratch for `program` at `chunk_capacity` rows per batch.
  void Prepare(const KernelProgram& program, size_t chunk_capacity);

  size_t chunk_capacity() const { return chunk_capacity_; }

  /// Output buffer of instruction `idx`, indexed chunk-relative.
  std::vector<Datum>& slot(int idx) { return slots_[static_cast<size_t>(idx)]; }

 private:
  friend Status EvalKernelInstr(const KernelProgram&, int, const std::vector<Row>&,
                                size_t, const SelVec&, KernelContext*);
  size_t chunk_capacity_ = 0;
  std::vector<std::vector<Datum>> slots_;
  std::vector<SelVec> active_;
  std::vector<SelVec> next_;
  std::vector<std::vector<uint8_t>> flags_;
};

/// Evaluates `program` over rows[i] for each i in `sel` (absolute indices in
/// [base, base + ctx->chunk_capacity())), leaving per-row results in
/// ctx->slot(program.root()) at chunk-relative positions. Positions outside
/// `sel` are unspecified. NULL semantics are identical to EvalExpr.
Status EvalExprBatch(const KernelProgram& program, KernelContext* ctx,
                     const std::vector<Row>& rows, size_t base, const SelVec& sel);

/// WHERE semantics (identical to EvalPredicate): appends to `out_sel` the
/// indices from `sel` whose predicate value is non-NULL true; NULL and false
/// rows are dropped. `out_sel` is cleared first and must not alias `sel`.
Status EvalPredicateBatch(const KernelProgram& program, KernelContext* ctx,
                          const std::vector<Row>& rows, size_t base,
                          const SelVec& sel, SelVec* out_sel);

}  // namespace mppdb

#endif  // MPPDB_EXPR_VECTOR_EVAL_H_
