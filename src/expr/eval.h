#ifndef MPPDB_EXPR_EVAL_H_
#define MPPDB_EXPR_EVAL_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "types/row.h"

namespace mppdb {

/// Maps ColRefIds to positions in a row. Every executor operator knows the
/// layout of the rows it produces; expressions are evaluated against a layout
/// plus a row.
class ColumnLayout {
 public:
  ColumnLayout() = default;
  explicit ColumnLayout(std::vector<ColRefId> ids);

  /// Position of `id` in the row, or -1 if not present.
  int PositionOf(ColRefId id) const;

  const std::vector<ColRefId>& ids() const { return ids_; }
  size_t size() const { return ids_.size(); }

  /// Layout of a join output: left columns followed by right columns.
  static ColumnLayout Concat(const ColumnLayout& left, const ColumnLayout& right);

 private:
  std::vector<ColRefId> ids_;
  std::unordered_map<ColRefId, int> positions_;
};

/// Evaluates `expr` against `row` (positions resolved via `layout`).
/// SQL NULL semantics: comparisons/arithmetic propagate NULL; AND/OR use
/// three-valued logic. Returns an error Status for unbound params, aggregate
/// calls outside an Agg operator, or division by zero.
Result<Datum> EvalExpr(const ExprPtr& expr, const ColumnLayout& layout, const Row& row);

/// Evaluates a predicate: NULL and false both yield `false` (WHERE semantics).
Result<bool> EvalPredicate(const ExprPtr& expr, const ColumnLayout& layout,
                           const Row& row);

/// If `expr` references no columns, evaluates it to a constant. Returns
/// nullopt if it references columns or evaluation fails.
std::optional<Datum> TryFoldConst(const ExprPtr& expr);

/// True if the two non-null datums belong to the same comparison family
/// (numeric/date, string, or bool). Shared by the row-at-a-time and batch
/// evaluators so comparison-mismatch errors stay identical across paths.
bool DatumsComparable(const Datum& a, const Datum& b);

}  // namespace mppdb

#endif  // MPPDB_EXPR_EVAL_H_
