#ifndef MPPDB_EXPR_INTERVAL_H_
#define MPPDB_EXPR_INTERVAL_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/datum.h"

namespace mppdb {

/// One endpoint of an interval. `unbounded` means -inf (lower) or +inf
/// (upper); then `value` / `inclusive` are ignored.
struct IntervalBound {
  Datum value;
  bool inclusive = false;
  bool unbounded = true;

  static IntervalBound Unbounded() { return IntervalBound{}; }
  static IntervalBound Inclusive(Datum v) { return {std::move(v), true, false}; }
  static IntervalBound Exclusive(Datum v) { return {std::move(v), false, false}; }
};

/// A contiguous range of values of the partition-key domain. Both constraints
/// (catalog check constraints on partitions) and derived predicate ranges are
/// expressed as intervals; pruning reduces to interval overlap tests.
class Interval {
 public:
  /// (-inf, +inf)
  Interval() = default;
  Interval(IntervalBound lo, IntervalBound hi) : lo_(std::move(lo)), hi_(std::move(hi)) {}

  static Interval All() { return Interval(); }
  static Interval Point(Datum v) {
    return Interval(IntervalBound::Inclusive(v), IntervalBound::Inclusive(v));
  }
  static Interval LessThan(Datum v) {
    return Interval(IntervalBound::Unbounded(), IntervalBound::Exclusive(std::move(v)));
  }
  static Interval AtMost(Datum v) {
    return Interval(IntervalBound::Unbounded(), IntervalBound::Inclusive(std::move(v)));
  }
  static Interval GreaterThan(Datum v) {
    return Interval(IntervalBound::Exclusive(std::move(v)), IntervalBound::Unbounded());
  }
  static Interval AtLeast(Datum v) {
    return Interval(IntervalBound::Inclusive(std::move(v)), IntervalBound::Unbounded());
  }
  /// [lo, hi) — the catalog's canonical range-partition bound form.
  static Interval RightOpen(Datum lo, Datum hi) {
    return Interval(IntervalBound::Inclusive(std::move(lo)),
                    IntervalBound::Exclusive(std::move(hi)));
  }
  /// [lo, hi] — SQL BETWEEN.
  static Interval Closed(Datum lo, Datum hi) {
    return Interval(IntervalBound::Inclusive(std::move(lo)),
                    IntervalBound::Inclusive(std::move(hi)));
  }

  const IntervalBound& lo() const { return lo_; }
  const IntervalBound& hi() const { return hi_; }

  bool IsEmpty() const;
  bool Contains(const Datum& v) const;
  bool Overlaps(const Interval& other) const;

  /// Intersection; may be empty (check IsEmpty()).
  static Interval Intersect(const Interval& a, const Interval& b);

  /// True if this interval contains every value of `other`.
  bool ContainsInterval(const Interval& other) const;

  /// "[3, 7)" style rendering.
  std::string ToString() const;

 private:
  IntervalBound lo_;
  IntervalBound hi_;
};

/// A union of intervals over one column — the result of deriving a predicate
/// constraint (e.g. `x < 5 OR x IN (8, 9)`), kept sorted and pairwise
/// disjoint. ConstraintSet::All() means "no restriction" (f*_T must return all
/// partitions); None() means "provably empty".
class ConstraintSet {
 public:
  static ConstraintSet All() { return ConstraintSet({Interval::All()}); }
  static ConstraintSet None() { return ConstraintSet({}); }
  static ConstraintSet FromInterval(Interval in);
  static ConstraintSet FromComparison(CompareOp op, Datum v);
  static ConstraintSet FromPoints(std::vector<Datum> points);

  const std::vector<Interval>& intervals() const { return intervals_; }

  bool IsNone() const { return intervals_.empty(); }
  bool IsAll() const {
    return intervals_.size() == 1 && intervals_[0].lo().unbounded &&
           intervals_[0].hi().unbounded;
  }

  bool Contains(const Datum& v) const;
  bool Overlaps(const Interval& in) const;

  ConstraintSet Union(const ConstraintSet& other) const;
  ConstraintSet Intersect(const ConstraintSet& other) const;

  std::string ToString() const;

 private:
  explicit ConstraintSet(std::vector<Interval> intervals)
      : intervals_(std::move(intervals)) {}

  /// Sorts by lower bound and merges overlapping/adjacent intervals.
  static std::vector<Interval> Normalize(std::vector<Interval> intervals);

  std::vector<Interval> intervals_;
};

}  // namespace mppdb

#endif  // MPPDB_EXPR_INTERVAL_H_
