#include "expr/interval.h"

#include <algorithm>

#include "common/macros.h"

namespace mppdb {

namespace {

// Compares two lower bounds: negative if `a` starts before `b`.
int LoBoundCompare(const IntervalBound& a, const IntervalBound& b) {
  if (a.unbounded || b.unbounded) {
    if (a.unbounded && b.unbounded) return 0;
    return a.unbounded ? -1 : 1;
  }
  int cmp = Datum::Compare(a.value, b.value);
  if (cmp != 0) return cmp;
  if (a.inclusive == b.inclusive) return 0;
  return a.inclusive ? -1 : 1;  // inclusive lower bound starts earlier
}

// Compares two upper bounds: negative if `a` ends before `b`.
int HiBoundCompare(const IntervalBound& a, const IntervalBound& b) {
  if (a.unbounded || b.unbounded) {
    if (a.unbounded && b.unbounded) return 0;
    return a.unbounded ? 1 : -1;
  }
  int cmp = Datum::Compare(a.value, b.value);
  if (cmp != 0) return cmp;
  if (a.inclusive == b.inclusive) return 0;
  return a.inclusive ? 1 : -1;  // inclusive upper bound ends later
}

// True if interval `a` (with earlier-or-equal start) overlaps or exactly
// touches `b`, i.e. their union is one contiguous interval.
bool OverlapsOrTouches(const Interval& a, const Interval& b) {
  if (!Interval::Intersect(a, b).IsEmpty()) return true;
  if (a.hi().unbounded || b.lo().unbounded) return false;
  if (Datum::Compare(a.hi().value, b.lo().value) != 0) return false;
  return a.hi().inclusive || b.lo().inclusive;
}

std::string BoundValueToString(const IntervalBound& b) {
  return b.unbounded ? "inf" : b.value.ToString();
}

}  // namespace

bool Interval::IsEmpty() const {
  if (lo_.unbounded || hi_.unbounded) return false;
  int cmp = Datum::Compare(lo_.value, hi_.value);
  if (cmp > 0) return true;
  if (cmp == 0) return !(lo_.inclusive && hi_.inclusive);
  return false;
}

bool Interval::Contains(const Datum& v) const {
  if (v.is_null()) return false;
  if (!lo_.unbounded) {
    int cmp = Datum::Compare(v, lo_.value);
    if (cmp < 0 || (cmp == 0 && !lo_.inclusive)) return false;
  }
  if (!hi_.unbounded) {
    int cmp = Datum::Compare(v, hi_.value);
    if (cmp > 0 || (cmp == 0 && !hi_.inclusive)) return false;
  }
  return true;
}

Interval Interval::Intersect(const Interval& a, const Interval& b) {
  IntervalBound lo = LoBoundCompare(a.lo_, b.lo_) >= 0 ? a.lo_ : b.lo_;
  IntervalBound hi = HiBoundCompare(a.hi_, b.hi_) <= 0 ? a.hi_ : b.hi_;
  return Interval(std::move(lo), std::move(hi));
}

bool Interval::Overlaps(const Interval& other) const {
  return !Intersect(*this, other).IsEmpty();
}

bool Interval::ContainsInterval(const Interval& other) const {
  if (other.IsEmpty()) return true;
  return LoBoundCompare(lo_, other.lo_) <= 0 && HiBoundCompare(hi_, other.hi_) >= 0;
}

std::string Interval::ToString() const {
  std::string out;
  out += (lo_.unbounded || !lo_.inclusive) ? "(" : "[";
  out += lo_.unbounded ? "-inf" : BoundValueToString(lo_);
  out += ", ";
  out += hi_.unbounded ? "+inf" : BoundValueToString(hi_);
  out += (hi_.unbounded || !hi_.inclusive) ? ")" : "]";
  return out;
}

ConstraintSet ConstraintSet::FromInterval(Interval in) {
  if (in.IsEmpty()) return None();
  return ConstraintSet({std::move(in)});
}

ConstraintSet ConstraintSet::FromComparison(CompareOp op, Datum v) {
  if (v.is_null()) return None();  // comparison with NULL is never true
  switch (op) {
    case CompareOp::kEq:
      return FromInterval(Interval::Point(std::move(v)));
    case CompareOp::kLt:
      return FromInterval(Interval::LessThan(std::move(v)));
    case CompareOp::kLe:
      return FromInterval(Interval::AtMost(std::move(v)));
    case CompareOp::kGt:
      return FromInterval(Interval::GreaterThan(std::move(v)));
    case CompareOp::kGe:
      return FromInterval(Interval::AtLeast(std::move(v)));
    case CompareOp::kNe:
      return ConstraintSet(
          Normalize({Interval::LessThan(v), Interval::GreaterThan(v)}));
  }
  return All();
}

ConstraintSet ConstraintSet::FromPoints(std::vector<Datum> points) {
  std::vector<Interval> intervals;
  intervals.reserve(points.size());
  for (auto& p : points) {
    if (p.is_null()) continue;
    intervals.push_back(Interval::Point(std::move(p)));
  }
  return ConstraintSet(Normalize(std::move(intervals)));
}

bool ConstraintSet::Contains(const Datum& v) const {
  for (const auto& in : intervals_) {
    if (in.Contains(v)) return true;
  }
  return false;
}

bool ConstraintSet::Overlaps(const Interval& in) const {
  for (const auto& mine : intervals_) {
    if (mine.Overlaps(in)) return true;
  }
  return false;
}

ConstraintSet ConstraintSet::Union(const ConstraintSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return ConstraintSet(Normalize(std::move(all)));
}

ConstraintSet ConstraintSet::Intersect(const ConstraintSet& other) const {
  std::vector<Interval> out;
  for (const auto& a : intervals_) {
    for (const auto& b : other.intervals_) {
      Interval x = Interval::Intersect(a, b);
      if (!x.IsEmpty()) out.push_back(std::move(x));
    }
  }
  return ConstraintSet(Normalize(std::move(out)));
}

std::vector<Interval> ConstraintSet::Normalize(std::vector<Interval> intervals) {
  std::vector<Interval> nonempty;
  for (auto& in : intervals) {
    if (!in.IsEmpty()) nonempty.push_back(std::move(in));
  }
  std::sort(nonempty.begin(), nonempty.end(), [](const Interval& a, const Interval& b) {
    return LoBoundCompare(a.lo(), b.lo()) < 0;
  });
  std::vector<Interval> out;
  for (auto& in : nonempty) {
    if (!out.empty() && OverlapsOrTouches(out.back(), in)) {
      IntervalBound hi =
          HiBoundCompare(out.back().hi(), in.hi()) >= 0 ? out.back().hi() : in.hi();
      out.back() = Interval(out.back().lo(), std::move(hi));
    } else {
      out.push_back(std::move(in));
    }
  }
  return out;
}

std::string ConstraintSet::ToString() const {
  if (IsNone()) return "{}";
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += " U ";
    out += intervals_[i].ToString();
  }
  return out + "}";
}

}  // namespace mppdb
