#ifndef MPPDB_EXPR_CONSTRAINT_DERIVATION_H_
#define MPPDB_EXPR_CONSTRAINT_DERIVATION_H_

#include <unordered_set>
#include <vector>

#include "expr/expr.h"
#include "expr/interval.h"

namespace mppdb {

/// Derives the set of values of column `key` that can possibly satisfy
/// `pred`. Conservative: returns ConstraintSet::All() for anything it cannot
/// analyze, so pruning based on the result is always sound (never drops a
/// partition that could contain a qualifying tuple).
///
/// Understood forms: comparisons between `key` and constant-foldable
/// expressions (either side), `key IN (consts...)`, AND (intersection),
/// OR (union), and constant TRUE/FALSE predicates.
ConstraintSet DeriveConstraint(const ExprPtr& pred, ColRefId key);

/// The paper's FindPredOnKey helper (§2.3): extracts from `pred`'s top-level
/// conjuncts those usable for partition selection on `key`. A conjunct
/// qualifies if it references `key` and all of its other column references
/// are in `available` (columns whose values the PartitionSelector will have
/// at runtime — empty for static selection, the outer child's columns for
/// join-induced dynamic selection). Returns the conjunction of qualifying
/// conjuncts, or nullptr if none qualify.
ExprPtr FindPredOnKey(ColRefId key, const ExprPtr& pred,
                      const std::unordered_set<ColRefId>& available);

/// Multi-level variant (paper §2.4): one result slot per partitioning level
/// key; slots without a qualifying predicate are nullptr. Returns an empty
/// vector if no level has a qualifying predicate.
std::vector<ExprPtr> FindPredsOnKeys(const std::vector<ColRefId>& keys,
                                     const ExprPtr& pred,
                                     const std::unordered_set<ColRefId>& available);

}  // namespace mppdb

#endif  // MPPDB_EXPR_CONSTRAINT_DERIVATION_H_
