#include "expr/encoded_eval.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace mppdb {

namespace {

/// Same normalization as sargable analysis: a comparison between a bare
/// column reference and a foldable constant, as column-op-constant.
bool MatchColOpConst(const Expr& e, const ColumnRefExpr** col, Datum* constant,
                     CompareOp* op) {
  if (e.kind() != ExprKind::kComparison) return false;
  const auto& cmp = static_cast<const ComparisonExpr&>(e);
  const ExprPtr& l = cmp.child(0);
  const ExprPtr& r = cmp.child(1);
  const ExprPtr* col_side = nullptr;
  const ExprPtr* const_side = nullptr;
  *op = cmp.op();
  if (l->kind() == ExprKind::kColumnRef) {
    col_side = &l;
    const_side = &r;
  } else if (r->kind() == ExprKind::kColumnRef) {
    col_side = &r;
    const_side = &l;
    *op = SwapCompareOp(*op);
  } else {
    return false;
  }
  std::optional<Datum> folded = TryFoldConst(*const_side);
  if (!folded) return false;
  *col = static_cast<const ColumnRefExpr*>(col_side->get());
  *constant = std::move(*folded);
  return true;
}

/// Compiles one conjunct into an exact three-valued term, or fails (ending
/// the prefix). The shapes and their verdicts are documented in the header;
/// the recurring subtlety is NULL-vs-FALSE: only FALSE short-circuits the
/// oracle's AND, so the distinction must be preserved exactly.
bool CompileTerm(const ExprPtr& e, const ColumnLayout& layout,
                 EncodedTerm* term) {
  *term = EncodedTerm();
  // Constant-foldable conjuncts (errors fail folding and must surface).
  if (std::optional<Datum> folded = TryFoldConst(e)) {
    if (!folded->is_null() && folded->type() != TypeId::kBool) {
      return false;  // non-boolean predicate: the runtime error must surface
    }
    term->const_verdict = true;
    term->const_value = folded->is_null()      ? TermVerdict::kNull
                        : folded->bool_value() ? TermVerdict::kTrue
                                               : TermVerdict::kFalse;
    return true;
  }
  switch (e->kind()) {
    case ExprKind::kColumnRef: {
      // Bare boolean column: only statically-boolean columns compile (a
      // non-boolean value would raise "AND operand is not a boolean", which
      // the family gate does not model).
      const auto& col = static_cast<const ColumnRefExpr&>(*e);
      if (col.type() != TypeId::kBool) return false;
      const int position = layout.PositionOf(col.id());
      if (position < 0) return false;
      term->position = position;
      term->values = ConstraintSet::FromPoints({Datum::Bool(true)});
      term->family_checks.emplace_back(position, Datum::Bool(true));
      return true;
    }
    case ExprKind::kComparison: {
      const ColumnRefExpr* col = nullptr;
      Datum constant;
      CompareOp op;
      if (!MatchColOpConst(*e, &col, &constant, &op)) return false;
      if (constant.is_null()) {
        // col-op-NULL is NULL on every row (the comparison never runs, so no
        // family check): a constant NULL verdict — rows still reach any
        // residual, they just can never be kept.
        term->const_verdict = true;
        term->const_value = TermVerdict::kNull;
        return true;
      }
      const int position = layout.PositionOf(col->id());
      if (position < 0) return false;
      term->position = position;
      term->values = ConstraintSet::FromComparison(op, constant);
      term->family_checks.emplace_back(position, std::move(constant));
      return true;
    }
    case ExprKind::kInList: {
      if (e->children().empty() || e->child(0)->kind() != ExprKind::kColumnRef) {
        return false;
      }
      const auto& col = static_cast<const ColumnRefExpr&>(*e->child(0));
      const int position = layout.PositionOf(col.id());
      if (position < 0) return false;
      // A NULL item turns a FALSE miss into NULL (unknown whether equal).
      std::vector<Datum> points;
      bool has_null_item = false;
      for (size_t i = 1; i < e->children().size(); ++i) {
        std::optional<Datum> item = TryFoldConst(e->child(i));
        if (!item) return false;
        if (item->is_null()) {
          has_null_item = true;
          continue;
        }
        term->family_checks.emplace_back(position, *item);
        points.push_back(std::move(*item));
      }
      term->position = position;
      term->values = ConstraintSet::FromPoints(std::move(points));
      term->miss_verdict =
          has_null_item ? TermVerdict::kNull : TermVerdict::kFalse;
      return true;
    }
    case ExprKind::kIsNull: {
      if (e->child(0)->kind() != ExprKind::kColumnRef) return false;
      const auto& col = static_cast<const ColumnRefExpr&>(*e->child(0));
      const int position = layout.PositionOf(col.id());
      if (position < 0) return false;
      term->position = position;
      term->values = ConstraintSet::None();
      term->null_verdict = TermVerdict::kTrue;
      return true;  // IS NULL is never NULL itself: non-null misses are FALSE
    }
    case ExprKind::kNot: {
      // Only NOT (col IS NULL): general NOT would swap kTrue/kFalse but has
      // to keep kNull fixed, which `values`-complementing cannot express for
      // arbitrary children.
      const ExprPtr& inner = e->child(0);
      if (inner->kind() != ExprKind::kIsNull ||
          inner->child(0)->kind() != ExprKind::kColumnRef) {
        return false;
      }
      const auto& col = static_cast<const ColumnRefExpr&>(*inner->child(0));
      const int position = layout.PositionOf(col.id());
      if (position < 0) return false;
      term->position = position;
      term->values = ConstraintSet::All();
      term->null_verdict = TermVerdict::kFalse;  // NOT TRUE, not NULL
      return true;
    }
    case ExprKind::kOr: {
      // OR of same-column terms: TRUE sets union; the NULL/miss verdicts OR
      // as std::max in the kFalse < kNull < kTrue order. Family checks
      // accumulate across all disjuncts — conservative where evaluation
      // would short-circuit at an earlier TRUE, never unsound (the gate only
      // decides fallback).
      if (e->children().empty()) return false;
      bool has_column = false;
      TermVerdict const_floor = TermVerdict::kFalse;
      for (const ExprPtr& child : e->children()) {
        EncodedTerm sub;
        if (!CompileTerm(child, layout, &sub)) return false;
        for (auto& check : sub.family_checks) {
          term->family_checks.push_back(std::move(check));
        }
        if (sub.const_verdict) {
          const_floor = std::max(const_floor, sub.const_value);
          continue;
        }
        if (!has_column) {
          has_column = true;
          term->position = sub.position;
          term->values = sub.values;
          term->null_verdict = sub.null_verdict;
          term->miss_verdict = sub.miss_verdict;
        } else if (term->position != sub.position) {
          return false;  // multi-column OR is not a one-column verdict
        } else {
          term->values = term->values.Union(sub.values);
          term->null_verdict = std::max(term->null_verdict, sub.null_verdict);
          term->miss_verdict = std::max(term->miss_verdict, sub.miss_verdict);
        }
      }
      if (const_floor == TermVerdict::kTrue || !has_column) {
        // A constant TRUE disjunct decides every row; all-constant disjuncts
        // reduce to their strongest verdict.
        term->const_verdict = true;
        term->const_value = const_floor;
        return true;
      }
      // A constant NULL disjunct floors both non-TRUE verdicts at NULL.
      term->null_verdict = std::max(term->null_verdict, const_floor);
      term->miss_verdict = std::max(term->miss_verdict, const_floor);
      return true;
    }
    default:
      return false;  // kAnd (split upstream), kAggCall, kArith over columns
  }
}

/// Closed int64 ranges equivalent to a ConstraintSet whose bounds are all
/// integral — the bit-packed fast path. Fails (generic Datum path) on
/// double/string bounds.
struct IntRange {
  int64_t lo;
  int64_t hi;
};

bool BuildIntRanges(const ConstraintSet& values, std::vector<IntRange>* out) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  for (const Interval& in : values.intervals()) {
    IntRange range{kMin, kMax};
    if (!in.lo().unbounded) {
      const Datum& v = in.lo().value;
      if (v.type() == TypeId::kDouble || v.type() == TypeId::kString) return false;
      range.lo = v.AsInt64();
      if (!in.lo().inclusive) {
        if (range.lo == kMax) continue;  // empty
        ++range.lo;
      }
    }
    if (!in.hi().unbounded) {
      const Datum& v = in.hi().value;
      if (v.type() == TypeId::kDouble || v.type() == TypeId::kString) return false;
      range.hi = v.AsInt64();
      if (!in.hi().inclusive) {
        if (range.hi == kMin) continue;  // empty
        --range.hi;
      }
    }
    if (range.lo <= range.hi) out->push_back(range);
  }
  return true;
}

/// Whether a row with verdict `v` survives this term. Tracking mode (a
/// residual exists) keeps non-FALSE rows, clearing the purity flag on NULL;
/// exact mode (whole predicate compiled) keeps only TRUE.
inline bool FoldVerdict(TermVerdict v, bool tracking, char* pure_slot) {
  if (tracking) {
    if (v == TermVerdict::kFalse) return false;
    if (v != TermVerdict::kTrue) *pure_slot = 0;
    return true;
  }
  return v == TermVerdict::kTrue;
}

void ApplyTerm(const EncodedTerm& term, const EncodedColumnChunk& col,
               size_t base, SelVec* sel, std::vector<char>* pure) {
  const bool tracking = pure != nullptr;
  const TermVerdict null_v = term.null_verdict;
  const TermVerdict miss_v = term.miss_verdict;
  char scratch = 0;
  size_t out = 0;
  auto emit = [&](size_t i, uint32_t idx, TermVerdict v) {
    if (FoldVerdict(v, tracking, tracking ? &(*pure)[i] : &scratch)) {
      (*sel)[out] = idx;
      if (tracking) (*pure)[out] = (*pure)[i];
      ++out;
    }
  };
  switch (col.encoding) {
    case ColumnEncoding::kDictionary: {
      // One verdict per dictionary code: O(|dict|) Datum work, then integer
      // filtering only.
      std::vector<TermVerdict> code_verdict(col.dict.size());
      for (size_t d = 0; d < col.dict.size(); ++d) {
        code_verdict[d] =
            term.values.Contains(col.dict[d]) ? TermVerdict::kTrue : miss_v;
      }
      for (size_t i = 0; i < sel->size(); ++i) {
        const uint32_t idx = (*sel)[i];
        const uint32_t code = col.codes[idx - base];
        emit(i, idx,
             code == EncodedColumnChunk::kNullCode ? null_v : code_verdict[code]);
      }
      break;
    }
    case ColumnEncoding::kRunLength: {
      // One verdict per run actually touched by the selection.
      size_t run = 0;
      size_t run_hi = base + col.run_lengths[0];
      int memo = -1;
      for (size_t i = 0; i < sel->size(); ++i) {
        const uint32_t idx = (*sel)[i];
        while (idx >= run_hi) {
          ++run;
          run_hi += col.run_lengths[run];
          memo = -1;
        }
        if (memo < 0) {
          const Datum& rv = col.run_values[run];
          memo = static_cast<int>(rv.is_null()              ? null_v
                                  : term.values.Contains(rv) ? TermVerdict::kTrue
                                                             : miss_v);
        }
        emit(i, idx, static_cast<TermVerdict>(memo));
      }
      break;
    }
    case ColumnEncoding::kBitPacked: {
      std::vector<IntRange> ranges;
      const bool fast = BuildIntRanges(term.values, &ranges);
      for (size_t i = 0; i < sel->size(); ++i) {
        const uint32_t idx = (*sel)[i];
        const size_t rel = idx - base;
        TermVerdict v;
        if (col.IsNullAt(rel)) {
          v = null_v;
        } else if (fast) {
          const int64_t x = col.PackedValueAt(rel);
          v = miss_v;
          for (const IntRange& range : ranges) {
            if (x >= range.lo && x <= range.hi) {
              v = TermVerdict::kTrue;
              break;
            }
          }
        } else {
          // Double-valued bounds: reconstruct the Datum and let the interval
          // algebra compare in the numeric family.
          v = term.values.Contains(col.ValueAt(rel)) ? TermVerdict::kTrue
                                                     : miss_v;
        }
        emit(i, idx, v);
      }
      break;
    }
    case ColumnEncoding::kPlain: {
      for (size_t i = 0; i < sel->size(); ++i) {
        const uint32_t idx = (*sel)[i];
        const Datum& dv = col.plain[idx - base];
        emit(i, idx,
             dv.is_null()              ? null_v
             : term.values.Contains(dv) ? TermVerdict::kTrue
                                        : miss_v);
      }
      break;
    }
  }
  sel->resize(out);
  if (tracking) pure->resize(out);
}

}  // namespace

EncodedPredicate CompileEncodedPredicate(const ExprPtr& predicate,
                                         const ColumnLayout& layout) {
  EncodedPredicate out;
  if (!predicate) return out;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(predicate);
  size_t compiled = 0;
  for (const ExprPtr& conjunct : conjuncts) {
    EncodedTerm term;
    if (!CompileTerm(conjunct, layout, &term)) break;
    out.terms.push_back(std::move(term));
    ++compiled;
  }
  if (compiled < conjuncts.size()) {
    out.residual = Conj(std::vector<ExprPtr>(conjuncts.begin() + compiled,
                                             conjuncts.end()));
  }
  return out;
}

bool EncodedChunkEligible(const EncodedPredicate& pred, const SliceColumns& cols,
                          size_t chunk) {
  for (const EncodedTerm& term : pred.terms) {
    for (const auto& [position, rep] : term.family_checks) {
      MPPDB_CHECK(position >= 0 &&
                  static_cast<size_t>(position) < cols.num_columns);
      const ColumnSynopsis& stats =
          cols.columns[static_cast<size_t>(position)][chunk].stats;
      if (stats.non_null_count == 0) continue;  // comparisons all yield NULL
      if (!stats.comparable || !DatumsComparable(stats.min, rep)) return false;
    }
  }
  return true;
}

void EvalEncodedPredicate(const EncodedPredicate& pred, const SliceColumns& cols,
                          size_t chunk, size_t base, size_t row_count,
                          SelVec* sel, std::vector<char>* pure) {
  sel->resize(row_count);
  for (size_t i = 0; i < row_count; ++i) {
    (*sel)[i] = static_cast<uint32_t>(base + i);
  }
  if (pure != nullptr) pure->assign(row_count, 1);
  for (const EncodedTerm& term : pred.terms) {
    if (sel->empty()) return;
    if (term.const_verdict) {
      if (term.const_value == TermVerdict::kFalse ||
          (pure == nullptr && term.const_value != TermVerdict::kTrue)) {
        sel->clear();
        if (pure != nullptr) pure->clear();
        return;
      }
      if (term.const_value == TermVerdict::kNull && pure != nullptr) {
        std::fill(pure->begin(), pure->end(), 0);
      }
      continue;
    }
    ApplyTerm(term, cols.columns[static_cast<size_t>(term.position)][chunk],
              base, sel, pure);
  }
}

}  // namespace mppdb
