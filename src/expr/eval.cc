#include "expr/eval.h"

#include "common/macros.h"

namespace mppdb {

ColumnLayout::ColumnLayout(std::vector<ColRefId> ids) : ids_(std::move(ids)) {
  for (size_t i = 0; i < ids_.size(); ++i) {
    positions_.emplace(ids_[i], static_cast<int>(i));
  }
}

int ColumnLayout::PositionOf(ColRefId id) const {
  auto it = positions_.find(id);
  return it == positions_.end() ? -1 : it->second;
}

ColumnLayout ColumnLayout::Concat(const ColumnLayout& left, const ColumnLayout& right) {
  std::vector<ColRefId> ids = left.ids_;
  ids.insert(ids.end(), right.ids_.begin(), right.ids_.end());
  return ColumnLayout(std::move(ids));
}

bool DatumsComparable(const Datum& a, const Datum& b) {
  auto family = [](TypeId t) {
    if (t == TypeId::kString) return 0;
    if (t == TypeId::kBool) return 1;
    return 2;  // numeric, incl. date
  };
  return family(a.type()) == family(b.type());
}

namespace {

bool Comparable(const Datum& a, const Datum& b) { return DatumsComparable(a, b); }

Result<Datum> EvalComparison(const ComparisonExpr& cmp, const ColumnLayout& layout,
                             const Row& row) {
  MPPDB_ASSIGN_OR_RETURN(Datum left, EvalExpr(cmp.child(0), layout, row));
  MPPDB_ASSIGN_OR_RETURN(Datum right, EvalExpr(cmp.child(1), layout, row));
  if (left.is_null() || right.is_null()) return Datum::Null();
  if (!Comparable(left, right)) {
    return Status::ExecutionError("cannot compare " +
                                  std::string(TypeIdToString(left.type())) + " with " +
                                  TypeIdToString(right.type()));
  }
  int c = Datum::Compare(left, right);
  bool result = false;
  switch (cmp.op()) {
    case CompareOp::kEq:
      result = c == 0;
      break;
    case CompareOp::kNe:
      result = c != 0;
      break;
    case CompareOp::kLt:
      result = c < 0;
      break;
    case CompareOp::kLe:
      result = c <= 0;
      break;
    case CompareOp::kGt:
      result = c > 0;
      break;
    case CompareOp::kGe:
      result = c >= 0;
      break;
  }
  return Datum::Bool(result);
}

Result<Datum> EvalArith(const ArithExpr& arith, const ColumnLayout& layout,
                        const Row& row) {
  MPPDB_ASSIGN_OR_RETURN(Datum left, EvalExpr(arith.child(0), layout, row));
  MPPDB_ASSIGN_OR_RETURN(Datum right, EvalExpr(arith.child(1), layout, row));
  if (left.is_null() || right.is_null()) return Datum::Null();
  if (!IsNumeric(left.type()) || !IsNumeric(right.type())) {
    return Status::ExecutionError("arithmetic requires numeric operands");
  }
  bool use_double = left.type() == TypeId::kDouble || right.type() == TypeId::kDouble;
  if (use_double) {
    double a = left.AsDouble(), b = right.AsDouble();
    switch (arith.op()) {
      case ArithOp::kAdd:
        return Datum::Double(a + b);
      case ArithOp::kSub:
        return Datum::Double(a - b);
      case ArithOp::kMul:
        return Datum::Double(a * b);
      case ArithOp::kDiv:
        if (b == 0) return Status::ExecutionError("division by zero");
        return Datum::Double(a / b);
      case ArithOp::kMod:
        return Status::ExecutionError("modulo on double");
    }
  }
  int64_t a = left.AsInt64(), b = right.AsInt64();
  switch (arith.op()) {
    case ArithOp::kAdd:
      return Datum::Int64(a + b);
    case ArithOp::kSub:
      return Datum::Int64(a - b);
    case ArithOp::kMul:
      return Datum::Int64(a * b);
    case ArithOp::kDiv:
      if (b == 0) return Status::ExecutionError("division by zero");
      return Datum::Int64(a / b);
    case ArithOp::kMod:
      if (b == 0) return Status::ExecutionError("modulo by zero");
      return Datum::Int64(a % b);
  }
  return Status::Internal("unreachable arithmetic op");
}

}  // namespace

Result<Datum> EvalExpr(const ExprPtr& expr, const ColumnLayout& layout, const Row& row) {
  MPPDB_CHECK(expr != nullptr);
  switch (expr->kind()) {
    case ExprKind::kConst:
      return static_cast<const ConstExpr&>(*expr).value();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(*expr);
      int pos = layout.PositionOf(ref.id());
      if (pos < 0) {
        return Status::ExecutionError("column " + ref.ToString() +
                                      " not found in row layout");
      }
      return row[static_cast<size_t>(pos)];
    }
    case ExprKind::kParam:
      return Status::ExecutionError("unbound parameter " + expr->ToString());
    case ExprKind::kComparison:
      return EvalComparison(static_cast<const ComparisonExpr&>(*expr), layout, row);
    case ExprKind::kAnd: {
      bool saw_null = false;
      for (const auto& child : expr->children()) {
        MPPDB_ASSIGN_OR_RETURN(Datum v, EvalExpr(child, layout, row));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (v.type() != TypeId::kBool) {
          return Status::ExecutionError("AND operand is not a boolean");
        }
        if (!v.bool_value()) return Datum::Bool(false);
      }
      if (saw_null) return Datum::Null();
      return Datum::Bool(true);
    }
    case ExprKind::kOr: {
      bool saw_null = false;
      for (const auto& child : expr->children()) {
        MPPDB_ASSIGN_OR_RETURN(Datum v, EvalExpr(child, layout, row));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (v.type() != TypeId::kBool) {
          return Status::ExecutionError("OR operand is not a boolean");
        }
        if (v.bool_value()) return Datum::Bool(true);
      }
      if (saw_null) return Datum::Null();
      return Datum::Bool(false);
    }
    case ExprKind::kNot: {
      MPPDB_ASSIGN_OR_RETURN(Datum v, EvalExpr(expr->child(0), layout, row));
      if (v.is_null()) return Datum::Null();
      if (v.type() != TypeId::kBool) {
        return Status::ExecutionError("NOT operand is not a boolean");
      }
      return Datum::Bool(!v.bool_value());
    }
    case ExprKind::kIsNull: {
      MPPDB_ASSIGN_OR_RETURN(Datum v, EvalExpr(expr->child(0), layout, row));
      return Datum::Bool(v.is_null());
    }
    case ExprKind::kArith:
      return EvalArith(static_cast<const ArithExpr&>(*expr), layout, row);
    case ExprKind::kInList: {
      MPPDB_ASSIGN_OR_RETURN(Datum probe, EvalExpr(expr->child(0), layout, row));
      if (probe.is_null()) return Datum::Null();
      bool saw_null = false;
      for (size_t i = 1; i < expr->children().size(); ++i) {
        MPPDB_ASSIGN_OR_RETURN(Datum item, EvalExpr(expr->child(i), layout, row));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (!Comparable(probe, item)) {
          return Status::ExecutionError("IN list item type mismatch");
        }
        if (probe.Equals(item)) return Datum::Bool(true);
      }
      if (saw_null) return Datum::Null();
      return Datum::Bool(false);
    }
    case ExprKind::kAggCall:
      return Status::ExecutionError(
          "aggregate call evaluated outside an aggregation operator");
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> EvalPredicate(const ExprPtr& expr, const ColumnLayout& layout,
                           const Row& row) {
  MPPDB_ASSIGN_OR_RETURN(Datum v, EvalExpr(expr, layout, row));
  if (v.is_null()) return false;
  if (v.type() != TypeId::kBool) {
    return Status::ExecutionError("predicate did not evaluate to a boolean");
  }
  return v.bool_value();
}

std::optional<Datum> TryFoldConst(const ExprPtr& expr) {
  if (expr == nullptr || !IsConstantExpr(expr)) return std::nullopt;
  static const ColumnLayout kEmptyLayout;
  static const Row kEmptyRow;
  Result<Datum> result = EvalExpr(expr, kEmptyLayout, kEmptyRow);
  if (!result.ok()) return std::nullopt;
  return std::move(result).value();
}

}  // namespace mppdb
