#include "expr/constraint_derivation.h"

#include "expr/eval.h"

namespace mppdb {

namespace {

// Returns true if `expr` is a bare reference to `key`.
bool IsKeyRef(const ExprPtr& expr, ColRefId key) {
  return expr->kind() == ExprKind::kColumnRef &&
         static_cast<const ColumnRefExpr&>(*expr).id() == key;
}

// Logical negation of a comparison operator (NOT (a < b)  ==  a >= b, under
// two-valued evaluation; NULL inputs yield unknown either way, which both
// sides treat as "filtered").
CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

// Dual of DeriveConstraint: a sound superset of the `key` values for which
// `pred` can evaluate to FALSE (so that NOT pred can be TRUE). Conservative:
// All() when unanalyzable. De Morgan flips intersection/union.
ConstraintSet DeriveNegatedConstraint(const ExprPtr& pred, ColRefId key) {
  if (pred == nullptr) return ConstraintSet::All();
  switch (pred->kind()) {
    case ExprKind::kConst: {
      const Datum& v = static_cast<const ConstExpr&>(*pred).value();
      // NOT NULL-literal is unknown (never true); NOT TRUE is never true.
      if (v.is_null()) return ConstraintSet::None();
      if (v.type() == TypeId::kBool && v.bool_value()) return ConstraintSet::None();
      return ConstraintSet::All();
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*pred);
      CompareOp op = cmp.op();
      ExprPtr const_side;
      if (IsKeyRef(cmp.child(0), key)) {
        const_side = cmp.child(1);
      } else if (IsKeyRef(cmp.child(1), key)) {
        const_side = cmp.child(0);
        op = SwapCompareOp(op);
      } else {
        return ConstraintSet::All();
      }
      std::optional<Datum> folded = TryFoldConst(const_side);
      if (!folded.has_value()) return ConstraintSet::All();
      return ConstraintSet::FromComparison(NegateCompareOp(op), std::move(*folded));
    }
    case ExprKind::kAnd: {
      // NOT (a AND b) == NOT a OR NOT b.
      ConstraintSet result = ConstraintSet::None();
      for (const auto& child : pred->children()) {
        ConstraintSet c = DeriveNegatedConstraint(child, key);
        if (c.IsAll()) return ConstraintSet::All();
        result = result.Union(c);
      }
      return result;
    }
    case ExprKind::kOr: {
      // NOT (a OR b) == NOT a AND NOT b.
      ConstraintSet result = ConstraintSet::All();
      for (const auto& child : pred->children()) {
        result = result.Intersect(DeriveNegatedConstraint(child, key));
        if (result.IsNone()) return result;
      }
      return result;
    }
    case ExprKind::kNot:
      return DeriveConstraint(pred->child(0), key);
    case ExprKind::kInList: {
      // NOT (key IN (c1, ..., cn)): key differs from every element.
      if (!IsKeyRef(pred->child(0), key)) return ConstraintSet::All();
      ConstraintSet result = ConstraintSet::All();
      for (size_t i = 1; i < pred->children().size(); ++i) {
        std::optional<Datum> folded = TryFoldConst(pred->child(i));
        if (!folded.has_value()) return ConstraintSet::All();
        result = result.Intersect(
            ConstraintSet::FromComparison(CompareOp::kNe, std::move(*folded)));
      }
      return result;
    }
    default:
      return ConstraintSet::All();
  }
}

}  // namespace

ConstraintSet DeriveConstraint(const ExprPtr& pred, ColRefId key) {
  if (pred == nullptr) return ConstraintSet::All();
  switch (pred->kind()) {
    case ExprKind::kConst: {
      const Datum& v = static_cast<const ConstExpr&>(*pred).value();
      if (v.is_null()) return ConstraintSet::None();
      if (v.type() == TypeId::kBool && !v.bool_value()) return ConstraintSet::None();
      return ConstraintSet::All();
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*pred);
      CompareOp op = cmp.op();
      ExprPtr key_side, const_side;
      if (IsKeyRef(cmp.child(0), key)) {
        key_side = cmp.child(0);
        const_side = cmp.child(1);
      } else if (IsKeyRef(cmp.child(1), key)) {
        key_side = cmp.child(1);
        const_side = cmp.child(0);
        op = SwapCompareOp(op);
      } else {
        return ConstraintSet::All();
      }
      std::optional<Datum> folded = TryFoldConst(const_side);
      if (!folded.has_value()) return ConstraintSet::All();
      return ConstraintSet::FromComparison(op, std::move(*folded));
    }
    case ExprKind::kAnd: {
      ConstraintSet result = ConstraintSet::All();
      for (const auto& child : pred->children()) {
        result = result.Intersect(DeriveConstraint(child, key));
        if (result.IsNone()) return result;
      }
      return result;
    }
    case ExprKind::kOr: {
      ConstraintSet result = ConstraintSet::None();
      for (const auto& child : pred->children()) {
        ConstraintSet c = DeriveConstraint(child, key);
        if (c.IsAll()) return ConstraintSet::All();
        result = result.Union(c);
      }
      return result;
    }
    case ExprKind::kInList: {
      if (!IsKeyRef(pred->child(0), key)) return ConstraintSet::All();
      std::vector<Datum> points;
      for (size_t i = 1; i < pred->children().size(); ++i) {
        std::optional<Datum> folded = TryFoldConst(pred->child(i));
        if (!folded.has_value()) return ConstraintSet::All();
        points.push_back(std::move(*folded));
      }
      return ConstraintSet::FromPoints(std::move(points));
    }
    case ExprKind::kNot:
      // NOT pred is true exactly where pred is false: use the dual.
      return DeriveNegatedConstraint(pred->child(0), key);
    default:
      // IS NULL, arithmetic on the key, etc. — no sound derivation beyond
      // "anything".
      return ConstraintSet::All();
  }
}

ExprPtr FindPredOnKey(ColRefId key, const ExprPtr& pred,
                      const std::unordered_set<ColRefId>& available) {
  if (pred == nullptr) return nullptr;
  std::vector<ExprPtr> qualifying;
  for (const ExprPtr& conjunct : SplitConjuncts(pred)) {
    std::unordered_set<ColRefId> refs;
    CollectColumnRefs(conjunct, &refs);
    if (refs.find(key) == refs.end()) continue;
    bool usable = true;
    for (ColRefId id : refs) {
      if (id != key && available.find(id) == available.end()) {
        usable = false;
        break;
      }
    }
    if (usable) qualifying.push_back(conjunct);
  }
  return Conj(std::move(qualifying));
}

std::vector<ExprPtr> FindPredsOnKeys(const std::vector<ColRefId>& keys,
                                     const ExprPtr& pred,
                                     const std::unordered_set<ColRefId>& available) {
  std::vector<ExprPtr> result(keys.size());
  bool any = false;
  for (size_t i = 0; i < keys.size(); ++i) {
    result[i] = FindPredOnKey(keys[i], pred, available);
    any = any || result[i] != nullptr;
  }
  if (!any) return {};
  return result;
}

}  // namespace mppdb
