#include "expr/vector_eval.h"

#include <utility>

#include "common/macros.h"

namespace mppdb {

// --- Compilation -------------------------------------------------------------

/// Recursive tree flattener. Children are emitted before their parent, so the
/// instruction array is in postfix order and the root is the last instruction.
class KernelCompiler {
 public:
  KernelCompiler(const ColumnLayout& layout, KernelProgram* out)
      : layout_(layout), out_(out) {}

  int CompileNode(const ExprPtr& expr) {
    MPPDB_CHECK(expr != nullptr);
    switch (expr->kind()) {
      case ExprKind::kConst: {
        KernelInstr instr;
        instr.op = KernelOp::kLoadConst;
        instr.arg = AddConst(static_cast<const ConstExpr&>(*expr).value());
        return Emit(std::move(instr));
      }
      case ExprKind::kColumnRef: {
        const auto& ref = static_cast<const ColumnRefExpr&>(*expr);
        int pos = layout_.PositionOf(ref.id());
        if (pos < 0) {
          return EmitError("column " + ref.ToString() + " not found in row layout");
        }
        KernelInstr instr;
        instr.op = KernelOp::kLoadColumn;
        instr.arg = pos;
        return Emit(std::move(instr));
      }
      case ExprKind::kParam:
        return EmitError("unbound parameter " + expr->ToString());
      case ExprKind::kAggCall:
        return EmitError("aggregate call evaluated outside an aggregation operator");
      case ExprKind::kComparison: {
        ValueSource lhs = CompileOperand(expr->child(0));
        ValueSource rhs = CompileOperand(expr->child(1));
        KernelInstr instr;
        instr.op = KernelOp::kCompare;
        instr.arg = static_cast<int>(static_cast<const ComparisonExpr&>(*expr).op());
        instr.lhs = lhs;
        instr.rhs = rhs;
        return Emit(std::move(instr));
      }
      case ExprKind::kArith: {
        ValueSource lhs = CompileOperand(expr->child(0));
        ValueSource rhs = CompileOperand(expr->child(1));
        KernelInstr instr;
        instr.op = KernelOp::kArith;
        instr.arg = static_cast<int>(static_cast<const ArithExpr&>(*expr).op());
        instr.lhs = lhs;
        instr.rhs = rhs;
        return Emit(std::move(instr));
      }
      case ExprKind::kAnd:
        return EmitVariadic(KernelOp::kAnd, expr->children());
      case ExprKind::kOr:
        return EmitVariadic(KernelOp::kOr, expr->children());
      case ExprKind::kNot:
        return EmitVariadic(KernelOp::kNot, expr->children());
      case ExprKind::kIsNull:
        return EmitVariadic(KernelOp::kIsNull, expr->children());
      case ExprKind::kInList:
        return EmitVariadic(KernelOp::kInList, expr->children());
    }
    return EmitError("unreachable expression kind");
  }

 private:
  ValueSource CompileOperand(const ExprPtr& expr) {
    MPPDB_CHECK(expr != nullptr);
    // Leaf fusion: constants and resolvable column refs are read in place by
    // the parent instruction instead of being materialized into a slot.
    if (expr->kind() == ExprKind::kConst) {
      return ValueSource{ValueSource::Kind::kConst,
                         AddConst(static_cast<const ConstExpr&>(*expr).value())};
    }
    if (expr->kind() == ExprKind::kColumnRef) {
      int pos = layout_.PositionOf(static_cast<const ColumnRefExpr&>(*expr).id());
      if (pos >= 0) return ValueSource{ValueSource::Kind::kColumn, pos};
    }
    return ValueSource{ValueSource::Kind::kSlot, CompileNode(expr)};
  }

  int EmitVariadic(KernelOp op, const std::vector<ExprPtr>& children) {
    std::vector<ValueSource> operands;
    operands.reserve(children.size());
    for (const auto& child : children) operands.push_back(CompileOperand(child));
    KernelInstr instr;
    instr.op = op;
    instr.operands = std::move(operands);
    return Emit(std::move(instr));
  }

  int EmitError(std::string message) {
    KernelInstr instr;
    instr.op = KernelOp::kError;
    instr.error = std::move(message);
    return Emit(std::move(instr));
  }

  int Emit(KernelInstr instr) {
    out_->instrs_.push_back(std::move(instr));
    return static_cast<int>(out_->instrs_.size()) - 1;
  }

  int AddConst(Datum value) {
    out_->consts_.push_back(std::move(value));
    return static_cast<int>(out_->consts_.size()) - 1;
  }

  const ColumnLayout& layout_;
  KernelProgram* out_;
};

KernelProgram KernelProgram::Compile(const ExprPtr& expr, const ColumnLayout& layout) {
  KernelProgram program;
  KernelCompiler compiler(layout, &program);
  compiler.CompileNode(expr);
  return program;
}

void KernelContext::Prepare(const KernelProgram& program, size_t chunk_capacity) {
  chunk_capacity_ = chunk_capacity;
  size_t n = program.instrs().size();
  slots_.resize(n);
  active_.resize(n);
  next_.resize(n);
  flags_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    slots_[i].resize(chunk_capacity);
    flags_[i].resize(chunk_capacity);
    active_[i].reserve(chunk_capacity);
    next_[i].reserve(chunk_capacity);
  }
}

// --- Evaluation --------------------------------------------------------------

namespace {

/// Reads an operand value for one row. Column and constant operands are read
/// in place; slot operands must have been evaluated over a selection
/// containing `row` first.
inline const Datum& OperandValue(const ValueSource& src, const KernelProgram& prog,
                                 const std::vector<Row>& rows, size_t base,
                                 uint32_t row, KernelContext* ctx) {
  switch (src.kind) {
    case ValueSource::Kind::kColumn:
      return rows[row][static_cast<size_t>(src.index)];
    case ValueSource::Kind::kConst:
      return prog.consts()[static_cast<size_t>(src.index)];
    case ValueSource::Kind::kSlot:
      break;
  }
  return ctx->slot(src.index)[row - base];
}

}  // namespace

Status EvalKernelInstr(const KernelProgram& prog, int idx, const std::vector<Row>& rows,
                       size_t base, const SelVec& sel, KernelContext* ctx) {
  const KernelInstr& instr = prog.instrs()[static_cast<size_t>(idx)];
  std::vector<Datum>& out = ctx->slot(idx);

  // Evaluates a slot operand's sub-program over `operand_sel`; column/const
  // operands need no evaluation pass.
  auto ensure = [&](const ValueSource& src, const SelVec& operand_sel) -> Status {
    if (src.kind != ValueSource::Kind::kSlot) return Status::OK();
    return EvalKernelInstr(prog, src.index, rows, base, operand_sel, ctx);
  };
  auto value = [&](const ValueSource& src, uint32_t row) -> const Datum& {
    return OperandValue(src, prog, rows, base, row, ctx);
  };

  switch (instr.op) {
    case KernelOp::kLoadConst: {
      const Datum& v = prog.consts()[static_cast<size_t>(instr.arg)];
      for (uint32_t r : sel) out[r - base] = v;
      return Status::OK();
    }
    case KernelOp::kLoadColumn: {
      size_t pos = static_cast<size_t>(instr.arg);
      for (uint32_t r : sel) out[r - base] = rows[r][pos];
      return Status::OK();
    }
    case KernelOp::kError:
      // A row-at-a-time evaluation would raise this error the moment the node
      // is reached for any row; with an empty selection it is never reached.
      if (sel.empty()) return Status::OK();
      return Status::ExecutionError(instr.error);
    case KernelOp::kCompare: {
      MPPDB_RETURN_IF_ERROR(ensure(instr.lhs, sel));
      MPPDB_RETURN_IF_ERROR(ensure(instr.rhs, sel));
      auto op = static_cast<CompareOp>(instr.arg);
      for (uint32_t r : sel) {
        const Datum& left = value(instr.lhs, r);
        const Datum& right = value(instr.rhs, r);
        if (left.is_null() || right.is_null()) {
          out[r - base] = Datum::Null();
          continue;
        }
        if (!DatumsComparable(left, right)) {
          return Status::ExecutionError("cannot compare " +
                                        std::string(TypeIdToString(left.type())) +
                                        " with " + TypeIdToString(right.type()));
        }
        int c = Datum::Compare(left, right);
        bool result = false;
        switch (op) {
          case CompareOp::kEq:
            result = c == 0;
            break;
          case CompareOp::kNe:
            result = c != 0;
            break;
          case CompareOp::kLt:
            result = c < 0;
            break;
          case CompareOp::kLe:
            result = c <= 0;
            break;
          case CompareOp::kGt:
            result = c > 0;
            break;
          case CompareOp::kGe:
            result = c >= 0;
            break;
        }
        out[r - base] = Datum::Bool(result);
      }
      return Status::OK();
    }
    case KernelOp::kArith: {
      MPPDB_RETURN_IF_ERROR(ensure(instr.lhs, sel));
      MPPDB_RETURN_IF_ERROR(ensure(instr.rhs, sel));
      auto op = static_cast<ArithOp>(instr.arg);
      for (uint32_t r : sel) {
        const Datum& left = value(instr.lhs, r);
        const Datum& right = value(instr.rhs, r);
        if (left.is_null() || right.is_null()) {
          out[r - base] = Datum::Null();
          continue;
        }
        if (!IsNumeric(left.type()) || !IsNumeric(right.type())) {
          return Status::ExecutionError("arithmetic requires numeric operands");
        }
        bool use_double =
            left.type() == TypeId::kDouble || right.type() == TypeId::kDouble;
        if (use_double) {
          double a = left.AsDouble(), b = right.AsDouble();
          switch (op) {
            case ArithOp::kAdd:
              out[r - base] = Datum::Double(a + b);
              continue;
            case ArithOp::kSub:
              out[r - base] = Datum::Double(a - b);
              continue;
            case ArithOp::kMul:
              out[r - base] = Datum::Double(a * b);
              continue;
            case ArithOp::kDiv:
              if (b == 0) return Status::ExecutionError("division by zero");
              out[r - base] = Datum::Double(a / b);
              continue;
            case ArithOp::kMod:
              return Status::ExecutionError("modulo on double");
          }
        }
        int64_t a = left.AsInt64(), b = right.AsInt64();
        switch (op) {
          case ArithOp::kAdd:
            out[r - base] = Datum::Int64(a + b);
            continue;
          case ArithOp::kSub:
            out[r - base] = Datum::Int64(a - b);
            continue;
          case ArithOp::kMul:
            out[r - base] = Datum::Int64(a * b);
            continue;
          case ArithOp::kDiv:
            if (b == 0) return Status::ExecutionError("division by zero");
            out[r - base] = Datum::Int64(a / b);
            continue;
          case ArithOp::kMod:
            if (b == 0) return Status::ExecutionError("modulo by zero");
            out[r - base] = Datum::Int64(a % b);
            continue;
        }
        return Status::Internal("unreachable arithmetic op");
      }
      return Status::OK();
    }
    case KernelOp::kNot: {
      const ValueSource& src = instr.operands[0];
      MPPDB_RETURN_IF_ERROR(ensure(src, sel));
      for (uint32_t r : sel) {
        const Datum& v = value(src, r);
        if (v.is_null()) {
          out[r - base] = Datum::Null();
          continue;
        }
        if (v.type() != TypeId::kBool) {
          return Status::ExecutionError("NOT operand is not a boolean");
        }
        out[r - base] = Datum::Bool(!v.bool_value());
      }
      return Status::OK();
    }
    case KernelOp::kIsNull: {
      const ValueSource& src = instr.operands[0];
      MPPDB_RETURN_IF_ERROR(ensure(src, sel));
      for (uint32_t r : sel) out[r - base] = Datum::Bool(value(src, r).is_null());
      return Status::OK();
    }
    case KernelOp::kAnd:
    case KernelOp::kOr: {
      // Three-valued logic with per-row short-circuit. A row decided by an
      // earlier operand (false for AND, true for OR) leaves the active set, so
      // later operands are never evaluated for it — matching the row-at-a-time
      // evaluator, including which errors can fire.
      const bool is_and = instr.op == KernelOp::kAnd;
      SelVec& active = ctx->active_[static_cast<size_t>(idx)];
      SelVec& next = ctx->next_[static_cast<size_t>(idx)];
      std::vector<uint8_t>& saw_null = ctx->flags_[static_cast<size_t>(idx)];
      active = sel;
      for (uint32_t r : sel) saw_null[r - base] = 0;
      for (const ValueSource& src : instr.operands) {
        if (active.empty()) break;
        MPPDB_RETURN_IF_ERROR(ensure(src, active));
        next.clear();
        for (uint32_t r : active) {
          const Datum& v = value(src, r);
          if (v.is_null()) {
            saw_null[r - base] = 1;
            next.push_back(r);
            continue;
          }
          if (v.type() != TypeId::kBool) {
            return Status::ExecutionError(is_and ? "AND operand is not a boolean"
                                                 : "OR operand is not a boolean");
          }
          if (v.bool_value() != is_and) {
            out[r - base] = Datum::Bool(!is_and);
            continue;
          }
          next.push_back(r);
        }
        active.swap(next);
      }
      for (uint32_t r : active) {
        out[r - base] = saw_null[r - base] ? Datum::Null() : Datum::Bool(is_and);
      }
      return Status::OK();
    }
    case KernelOp::kInList: {
      const ValueSource& probe = instr.operands[0];
      MPPDB_RETURN_IF_ERROR(ensure(probe, sel));
      SelVec& active = ctx->active_[static_cast<size_t>(idx)];
      SelVec& next = ctx->next_[static_cast<size_t>(idx)];
      std::vector<uint8_t>& saw_null = ctx->flags_[static_cast<size_t>(idx)];
      active.clear();
      for (uint32_t r : sel) {
        // A null probe yields NULL without evaluating any list items.
        if (value(probe, r).is_null()) {
          out[r - base] = Datum::Null();
          continue;
        }
        saw_null[r - base] = 0;
        active.push_back(r);
      }
      for (size_t i = 1; i < instr.operands.size(); ++i) {
        if (active.empty()) break;
        const ValueSource& item = instr.operands[i];
        MPPDB_RETURN_IF_ERROR(ensure(item, active));
        next.clear();
        for (uint32_t r : active) {
          const Datum& probe_v = value(probe, r);
          const Datum& item_v = value(item, r);
          if (item_v.is_null()) {
            saw_null[r - base] = 1;
            next.push_back(r);
            continue;
          }
          if (!DatumsComparable(probe_v, item_v)) {
            return Status::ExecutionError("IN list item type mismatch");
          }
          if (probe_v.Equals(item_v)) {
            out[r - base] = Datum::Bool(true);
            continue;
          }
          next.push_back(r);
        }
        active.swap(next);
      }
      for (uint32_t r : active) {
        out[r - base] = saw_null[r - base] ? Datum::Null() : Datum::Bool(false);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable kernel op");
}

Status EvalExprBatch(const KernelProgram& program, KernelContext* ctx,
                     const std::vector<Row>& rows, size_t base, const SelVec& sel) {
  return EvalKernelInstr(program, program.root(), rows, base, sel, ctx);
}

Status EvalPredicateBatch(const KernelProgram& program, KernelContext* ctx,
                          const std::vector<Row>& rows, size_t base,
                          const SelVec& sel, SelVec* out_sel) {
  out_sel->clear();
  MPPDB_RETURN_IF_ERROR(EvalExprBatch(program, ctx, rows, base, sel));
  const std::vector<Datum>& result = ctx->slot(program.root());
  for (uint32_t r : sel) {
    const Datum& v = result[r - base];
    if (v.is_null()) continue;  // WHERE semantics: NULL filters the row out.
    if (v.type() != TypeId::kBool) {
      return Status::ExecutionError("predicate did not evaluate to a boolean");
    }
    if (v.bool_value()) out_sel->push_back(r);
  }
  return Status::OK();
}

}  // namespace mppdb
