#ifndef MPPDB_SERVER_SESSION_MANAGER_H_
#define MPPDB_SERVER_SESSION_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"

namespace mppdb {

/// One admission class for concurrent queries (GPDB resource groups): a slot
/// count bounding how many of the group's queries run at once, and a memory
/// budget parceled out to them.
struct ResourceGroupConfig {
  std::string name = "default";
  /// Queries of this group executing concurrently; further admitted queries
  /// wait in the queue (they do not fail).
  int max_concurrency = 4;
  /// Group-wide memory budget. Each running query gets an equal parcel
  /// (limit / max_concurrency) as its QueryOptions::memory_limit_bytes, so
  /// the group can never exceed its budget no matter what its queries do.
  /// 0 = unlimited (queries keep their caller-supplied limit, if any).
  size_t memory_limit_bytes = 0;
};

/// Serving-layer configuration.
struct SessionManagerConfig {
  /// Dispatcher threads executing admitted queries (each runs one query at a
  /// time on the Database, whose per-statement executors share the morsel
  /// scheduler pool). Effective global concurrency is therefore
  /// min(worker_threads, sum of group slots).
  int worker_threads = 4;
  /// Bound on queries waiting for dispatch; a Submit beyond it is rejected
  /// immediately with kResourceExhausted (admission control back-pressure).
  size_t max_queue_depth = 256;
  /// Serve statements through the Database's parameterized plan cache.
  bool use_plan_cache = true;
  /// Admission classes; a "default" group (4 slots, unlimited memory) is
  /// added if none is given.
  std::vector<ResourceGroupConfig> groups;
};

/// Per-submission options.
struct SubmitOptions {
  /// Resource group the query is admitted under; unknown names are rejected
  /// with kNotFound.
  std::string group = "default";
  /// Per-statement options. The serving layer overrides use_plan_cache from
  /// its config and memory_limit_bytes from the group parcel (keeping the
  /// caller's limit when it is tighter); everything else — params, query_id,
  /// timeout, optimizer toggles, fault injector — passes through.
  QueryOptions query;
};

/// The concurrent-serving front end over an embedded Database: a bounded
/// FIFO admission queue, a pool of dispatcher threads, per-resource-group
/// concurrency and memory limits, and (via QueryOptions::use_plan_cache) the
/// shared parameterized plan cache. DESIGN.md §11.
///
/// Admission flow: Submit enqueues (or rejects when the queue is at
/// max_queue_depth) and returns a future. Dispatcher workers take the
/// *oldest* queued request whose group has a free slot — FIFO order within
/// every group, no group starved by another group's backlog — parcel the
/// group budget into the query's memory limit, and run it on the Database.
/// Saturated groups therefore queue instead of failing; kResourceExhausted
/// surfaces only from queue overflow or a query's own budget.
///
/// Thread safety: all public methods are safe from any thread. Shutdown (and
/// the destructor) stops admission, drains already-queued queries, and joins
/// the workers.
class SessionManager {
 public:
  SessionManager(Database* db, SessionManagerConfig config);
  ~SessionManager();
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Enqueues `sql` for execution; the future resolves when the query
  /// completes (or immediately, on rejection). Never blocks on query
  /// execution — only on the queue mutex.
  std::future<Result<QueryResult>> Submit(std::string sql, SubmitOptions options = {});

  /// Convenience: Submit and wait.
  Result<QueryResult> Run(const std::string& sql, SubmitOptions options = {});

  /// Stops admission (further Submits are rejected with kCancelled), drains
  /// the queued queries, and joins the dispatcher threads. Idempotent.
  void Shutdown();

  /// Monotonic serving counters.
  struct Stats {
    uint64_t submitted = 0;           ///< accepted into the queue
    uint64_t rejected_queue_full = 0;  ///< bounced by admission control
    uint64_t rejected_unknown_group = 0;
    uint64_t completed = 0;  ///< finished OK
    uint64_t failed = 0;     ///< finished with a non-OK status
    /// Dispatches that found the group saturated at the head of the queue at
    /// least once (i.e. the query actually waited on a group slot).
    uint64_t group_waits = 0;
    size_t peak_queue_depth = 0;
  };
  Stats stats() const;

  /// Snapshot of one group's admission state.
  struct GroupState {
    int running = 0;
    int peak_running = 0;
    uint64_t completed = 0;
  };
  /// Group name -> state snapshot.
  std::map<std::string, GroupState> group_states() const;

  const SessionManagerConfig& config() const { return config_; }

 private:
  struct Group {
    ResourceGroupConfig config;
    int running = 0;
    int peak_running = 0;
    uint64_t completed = 0;
  };

  struct Request {
    std::string sql;
    QueryOptions query;
    Group* group = nullptr;
    std::promise<Result<QueryResult>> promise;
    bool counted_wait = false;
  };

  void WorkerLoop();
  /// Pops the oldest admissible request, claiming its group slot. Blocks
  /// until one exists or shutdown drains the queue. Null on exit.
  std::unique_ptr<Request> NextRequest();
  void FinishRequest(Group* group, bool ok);

  Database* db_;
  SessionManagerConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::unique_ptr<Request>> queue_;
  std::map<std::string, Group> groups_;
  bool shutdown_ = false;
  Stats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace mppdb

#endif  // MPPDB_SERVER_SESSION_MANAGER_H_
