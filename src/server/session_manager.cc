#include "server/session_manager.h"

#include <algorithm>
#include <utility>

namespace mppdb {

SessionManager::SessionManager(Database* db, SessionManagerConfig config)
    : db_(db), config_(std::move(config)) {
  if (config_.worker_threads < 1) config_.worker_threads = 1;
  if (config_.max_queue_depth < 1) config_.max_queue_depth = 1;
  if (config_.groups.empty()) config_.groups.push_back(ResourceGroupConfig{});
  for (const ResourceGroupConfig& group_config : config_.groups) {
    Group group;
    group.config = group_config;
    if (group.config.max_concurrency < 1) group.config.max_concurrency = 1;
    groups_.emplace(group.config.name, std::move(group));
  }
  workers_.reserve(static_cast<size_t>(config_.worker_threads));
  for (int i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SessionManager::~SessionManager() { Shutdown(); }

std::future<Result<QueryResult>> SessionManager::Submit(std::string sql,
                                                        SubmitOptions options) {
  std::promise<Result<QueryResult>> rejected;
  std::future<Result<QueryResult>> rejected_future = rejected.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    lock.unlock();
    rejected.set_value(Status::Cancelled("session manager is shut down"));
    return rejected_future;
  }
  auto group_it = groups_.find(options.group);
  if (group_it == groups_.end()) {
    ++stats_.rejected_unknown_group;
    lock.unlock();
    rejected.set_value(
        Status::NotFound("resource group '" + options.group + "' does not exist"));
    return rejected_future;
  }
  if (queue_.size() >= config_.max_queue_depth) {
    ++stats_.rejected_queue_full;
    lock.unlock();
    rejected.set_value(Status::ResourceExhausted(
        "admission queue full (" + std::to_string(config_.max_queue_depth) +
        " queries waiting)"));
    return rejected_future;
  }

  auto request = std::make_unique<Request>();
  request->sql = std::move(sql);
  request->query = options.query;
  request->group = &group_it->second;
  // The serving layer's cache policy applies on top of the caller's.
  request->query.use_plan_cache =
      request->query.use_plan_cache || config_.use_plan_cache;
  // Parcel the group budget so max_concurrency running queries can never
  // exceed it; a caller-supplied tighter limit is kept.
  const ResourceGroupConfig& group_config = group_it->second.config;
  if (group_config.memory_limit_bytes > 0) {
    size_t parcel = group_config.memory_limit_bytes /
                    static_cast<size_t>(group_config.max_concurrency);
    parcel = std::max<size_t>(parcel, 1);
    if (request->query.memory_limit_bytes == 0 ||
        request->query.memory_limit_bytes > parcel) {
      request->query.memory_limit_bytes = parcel;
    }
  }
  std::future<Result<QueryResult>> future = request->promise.get_future();
  queue_.push_back(std::move(request));
  ++stats_.submitted;
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
  lock.unlock();
  work_cv_.notify_one();
  return future;
}

Result<QueryResult> SessionManager::Run(const std::string& sql,
                                        SubmitOptions options) {
  return Submit(sql, std::move(options)).get();
}

std::unique_ptr<SessionManager::Request> SessionManager::NextRequest() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Oldest request whose group has a free slot: FIFO within each group,
    // and a saturated group's backlog never blocks other groups.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      Group* group = (*it)->group;
      if (group->running < group->config.max_concurrency) {
        std::unique_ptr<Request> request = std::move(*it);
        queue_.erase(it);
        ++group->running;
        group->peak_running = std::max(group->peak_running, group->running);
        return request;
      }
      if (!(*it)->counted_wait) {
        (*it)->counted_wait = true;
        ++stats_.group_waits;
      }
    }
    if (shutdown_ && queue_.empty()) return nullptr;
    work_cv_.wait(lock);
  }
}

void SessionManager::FinishRequest(Group* group, bool ok) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --group->running;
    ++group->completed;
    if (ok) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
  }
  // A freed slot may unblock a saturated group's queued requests; a finished
  // drain may unblock exiting workers.
  work_cv_.notify_all();
}

void SessionManager::WorkerLoop() {
  while (std::unique_ptr<Request> request = NextRequest()) {
    Result<QueryResult> result = db_->Execute(request->sql, request->query);
    const bool ok = result.ok();
    request->promise.set_value(std::move(result));
    FinishRequest(request->group, ok);
  }
}

void SessionManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

SessionManager::Stats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<std::string, SessionManager::GroupState> SessionManager::group_states()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, GroupState> out;
  for (const auto& [name, group] : groups_) {
    out[name] = GroupState{group.running, group.peak_running, group.completed};
  }
  return out;
}

}  // namespace mppdb
