#include "optimizer/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "expr/eval.h"

namespace mppdb {

double CardinalityEstimator::Selectivity(const ExprPtr& pred) {
  if (pred == nullptr) return 1.0;
  switch (pred->kind()) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*pred);
      switch (cmp.op()) {
        case CompareOp::kEq:
          return 0.05;
        case CompareOp::kNe:
          return 0.95;
        default:
          return 0.33;
      }
    }
    case ExprKind::kAnd: {
      double s = 1.0;
      for (const auto& child : pred->children()) s *= Selectivity(child);
      return std::max(s, 1e-6);
    }
    case ExprKind::kOr: {
      double keep = 1.0;
      for (const auto& child : pred->children()) keep *= 1.0 - Selectivity(child);
      return 1.0 - keep;
    }
    case ExprKind::kNot:
      return 1.0 - Selectivity(pred->child(0));
    case ExprKind::kInList:
      return std::min(1.0, 0.05 * static_cast<double>(pred->children().size() - 1));
    case ExprKind::kIsNull:
      return 0.05;
    case ExprKind::kConst: {
      const Datum& v = static_cast<const ConstExpr&>(*pred).value();
      if (v.is_null()) return 0.0;
      if (v.type() == TypeId::kBool) return v.bool_value() ? 1.0 : 0.0;
      return 1.0;
    }
    default:
      return 0.5;
  }
}

std::optional<ColumnStats> CardinalityEstimator::TableColumnStats(
    Oid table_oid, int column) const {
  const TableStore* store = storage_->GetStore(table_oid);
  if (store == nullptr || column < 0) return std::nullopt;
  const size_t pos = static_cast<size_t>(column);
  ColumnStats stats;
  // Once any slice's rollup is untrustworthy (mixed comparison families) the
  // global range stays invalid — a later clean slice must not revalidate it.
  bool range_poisoned = false;
  for (Oid unit : store->UnitOids()) {
    for (int segment = 0; segment < store->num_segments(); ++segment) {
      const SliceSynopsis& synopsis = store->UnitSynopsis(unit, segment);
      if (pos >= synopsis.rollup.columns.size()) return std::nullopt;
      const ColumnSynopsis& col = synopsis.rollup.columns[pos];
      stats.row_count += static_cast<double>(synopsis.rollup.row_count);
      stats.non_null_count += static_cast<double>(col.non_null_count);
      if (col.non_null_count == 0) continue;
      if (!col.comparable) {
        stats.range_valid = false;
        range_poisoned = true;
        continue;
      }
      if (range_poisoned) continue;
      if (!stats.range_valid) {
        stats.min = col.min;
        stats.max = col.max;
        stats.range_valid = true;
      } else if (!DatumsComparable(stats.min, col.min)) {
        stats.range_valid = false;
        range_poisoned = true;
      } else {
        if (Datum::Compare(col.min, stats.min) < 0) stats.min = col.min;
        if (Datum::Compare(col.max, stats.max) > 0) stats.max = col.max;
      }
    }
  }
  stats.ndv = std::max(1.0, stats.non_null_count);
  if (stats.range_valid && IsIntegral(stats.min.type()) &&
      IsIntegral(stats.max.type())) {
    const double span =
        static_cast<double>(stats.max.AsInt64() - stats.min.AsInt64()) + 1.0;
    stats.ndv = std::max(1.0, std::min(stats.ndv, span));
  }
  // Column-oriented tables whose slices are all dictionary/run-length encoded
  // expose the exact distinct set; prefer it over the rollup estimate.
  if (std::optional<size_t> exact = store->ExactDistinctFromDictionaries(column)) {
    stats.ndv = std::max(1.0, static_cast<double>(*exact));
  }
  return stats;
}

std::optional<ColumnStats> CardinalityEstimator::ResolveColumnStats(
    const LogicalPtr& node, ColRefId id) const {
  switch (node->kind()) {
    case LogicalKind::kGet: {
      const auto& get = static_cast<const LogicalGet&>(*node);
      for (size_t i = 0; i < get.column_ids().size(); ++i) {
        if (get.column_ids()[i] == id) {
          return TableColumnStats(get.table()->oid, static_cast<int>(i));
        }
      }
      return std::nullopt;
    }
    case LogicalKind::kSelect:
    case LogicalKind::kSort:
    case LogicalKind::kLimit:
      return ResolveColumnStats(node->child(0), id);
    case LogicalKind::kProject: {
      const auto& project = static_cast<const LogicalProject&>(*node);
      for (const ProjectItem& item : project.items()) {
        if (item.output_id != id) continue;
        if (item.expr->kind() != ExprKind::kColumnRef) return std::nullopt;
        return ResolveColumnStats(
            node->child(0), static_cast<const ColumnRefExpr&>(*item.expr).id());
      }
      return std::nullopt;
    }
    case LogicalKind::kJoin: {
      if (auto stats = ResolveColumnStats(node->child(0), id)) return stats;
      return ResolveColumnStats(node->child(1), id);
    }
    case LogicalKind::kAgg: {
      const auto& agg = static_cast<const LogicalAgg&>(*node);
      const auto& keys = agg.group_by();
      if (std::find(keys.begin(), keys.end(), id) == keys.end()) {
        return std::nullopt;
      }
      return ResolveColumnStats(node->child(0), id);
    }
    case LogicalKind::kValues:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<ColumnStats> CardinalityEstimator::ResolvePhysicalColumnStats(
    const PhysicalNode& node, ColRefId id) const {
  switch (node.kind()) {
    case PhysNodeKind::kTableScan: {
      const auto& scan = static_cast<const TableScanNode&>(node);
      for (size_t i = 0; i < scan.column_ids().size(); ++i) {
        if (scan.column_ids()[i] == id) {
          return TableColumnStats(scan.table_oid(), static_cast<int>(i));
        }
      }
      return std::nullopt;
    }
    case PhysNodeKind::kCheckedPartScan: {
      const auto& scan = static_cast<const CheckedPartScanNode&>(node);
      for (size_t i = 0; i < scan.column_ids().size(); ++i) {
        if (scan.column_ids()[i] == id) {
          return TableColumnStats(scan.table_oid(), static_cast<int>(i));
        }
      }
      return std::nullopt;
    }
    case PhysNodeKind::kDynamicScan: {
      const auto& scan = static_cast<const DynamicScanNode&>(node);
      for (size_t i = 0; i < scan.column_ids().size(); ++i) {
        if (scan.column_ids()[i] == id) {
          return TableColumnStats(scan.table_oid(), static_cast<int>(i));
        }
      }
      return std::nullopt;
    }
    case PhysNodeKind::kDynamicIndexScan: {
      const auto& scan = static_cast<const DynamicIndexScanNode&>(node);
      for (size_t i = 0; i < scan.column_ids().size(); ++i) {
        if (scan.column_ids()[i] == id) {
          return TableColumnStats(scan.table_oid(), static_cast<int>(i));
        }
      }
      return std::nullopt;
    }
    case PhysNodeKind::kIndexNLJoin: {
      const auto& join = static_cast<const IndexNLJoinNode&>(node);
      for (size_t i = 0; i < join.inner_column_ids().size(); ++i) {
        if (join.inner_column_ids()[i] == id) {
          return TableColumnStats(join.inner_table(), static_cast<int>(i));
        }
      }
      return ResolvePhysicalColumnStats(*node.child(0), id);
    }
    case PhysNodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(node);
      for (const ProjectItem& item : project.items()) {
        if (item.output_id != id) continue;
        if (item.expr->kind() != ExprKind::kColumnRef) return std::nullopt;
        return ResolvePhysicalColumnStats(
            *node.child(0), static_cast<const ColumnRefExpr&>(*item.expr).id());
      }
      return std::nullopt;
    }
    case PhysNodeKind::kSequence:
      return ResolvePhysicalColumnStats(*node.child(node.children().size() - 1),
                                        id);
    case PhysNodeKind::kAppend:
    case PhysNodeKind::kHashJoin:
    case PhysNodeKind::kNestedLoopJoin: {
      for (const PhysPtr& child : node.children()) {
        if (auto stats = ResolvePhysicalColumnStats(*child, id)) return stats;
      }
      return std::nullopt;
    }
    case PhysNodeKind::kHashAgg: {
      const auto& agg = static_cast<const HashAggNode&>(node);
      const auto& keys = agg.group_by();
      if (std::find(keys.begin(), keys.end(), id) == keys.end()) {
        return std::nullopt;
      }
      return ResolvePhysicalColumnStats(*node.child(0), id);
    }
    case PhysNodeKind::kPartitionSelector:
    case PhysNodeKind::kFilter:
    case PhysNodeKind::kSort:
    case PhysNodeKind::kLimit:
    case PhysNodeKind::kTopN:
    case PhysNodeKind::kMotion:
      return ResolvePhysicalColumnStats(*node.child(0), id);
    default:
      return std::nullopt;
  }
}

double CardinalityEstimator::EquiJoinSelectivity(
    const std::vector<std::optional<ColumnStats>>& left_stats,
    const std::vector<std::optional<ColumnStats>>& right_stats,
    double left_rows, double right_rows) {
  MPPDB_CHECK(left_stats.size() == right_stats.size());
  double sel = 1.0;
  for (size_t i = 0; i < left_stats.size(); ++i) {
    // An NDV can never exceed the rows feeding the join, and an unresolved
    // side contributes its row count (every row potentially distinct).
    const double ndv_left =
        left_stats[i] ? std::min(left_stats[i]->ndv, std::max(1.0, left_rows))
                      : std::max(1.0, left_rows);
    const double ndv_right =
        right_stats[i] ? std::min(right_stats[i]->ndv, std::max(1.0, right_rows))
                       : std::max(1.0, right_rows);
    sel *= 1.0 / std::max(1.0, std::max(ndv_left, ndv_right));
  }
  return sel;
}

double CardinalityEstimator::EstimateRows(const LogicalPtr& node) const {
  switch (node->kind()) {
    case LogicalKind::kGet: {
      const auto& get = static_cast<const LogicalGet&>(*node);
      const TableStore* store = storage_->GetStore(get.table()->oid);
      if (store == nullptr) return 1000.0;
      return std::max<double>(1.0, static_cast<double>(store->TotalRows()));
    }
    case LogicalKind::kSelect: {
      const auto& select = static_cast<const LogicalSelect&>(*node);
      return std::max(1.0,
                      EstimateRows(select.child(0)) * Selectivity(select.predicate()));
    }
    case LogicalKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(*node);
      double left = EstimateRows(join.child(0));
      double right = EstimateRows(join.child(1));
      if (join.join_type() == JoinType::kSemi) {
        return std::max(1.0, left * 0.5);
      }
      if (join.predicate() == nullptr) return std::max(1.0, left * right);
      EquiJoinKeys keys =
          ExtractEquiJoinKeys(join.predicate(), join.child(0)->OutputIds(),
                              join.child(1)->OutputIds());
      if (keys.left.empty()) {
        // No equi pairs: fall back to the magic 1/max(L, R) shape.
        return std::max(1.0, left * right / std::max(left, right));
      }
      std::vector<std::optional<ColumnStats>> left_stats;
      std::vector<std::optional<ColumnStats>> right_stats;
      for (size_t i = 0; i < keys.left.size(); ++i) {
        left_stats.push_back(ResolveColumnStats(join.child(0), keys.left[i]));
        right_stats.push_back(ResolveColumnStats(join.child(1), keys.right[i]));
      }
      const double sel = EquiJoinSelectivity(left_stats, right_stats, left, right) *
                         Selectivity(keys.residual);
      return std::max(1.0, left * right * sel);
    }
    case LogicalKind::kProject:
      return EstimateRows(node->child(0));
    case LogicalKind::kAgg: {
      const auto& agg = static_cast<const LogicalAgg&>(*node);
      if (agg.group_by().empty()) return 1.0;
      return std::max(1.0, std::sqrt(EstimateRows(agg.child(0))));
    }
    case LogicalKind::kSort:
      return EstimateRows(node->child(0));
    case LogicalKind::kLimit: {
      const auto& limit = static_cast<const LogicalLimit&>(*node);
      return std::min(static_cast<double>(limit.limit()),
                      EstimateRows(limit.child(0)));
    }
    case LogicalKind::kValues:
      return static_cast<double>(
          static_cast<const LogicalValues&>(*node).rows().size());
  }
  return 1000.0;
}

double CardinalityEstimator::EstimatePhysicalRows(const PhysicalNode& node) const {
  switch (node.kind()) {
    case PhysNodeKind::kTableScan: {
      const auto& scan = static_cast<const TableScanNode&>(node);
      const TableStore* store = storage_->GetStore(scan.table_oid());
      if (store == nullptr) return 1000.0;
      return std::max<double>(
          1.0, static_cast<double>(store->UnitTotalRows(scan.unit_oid())));
    }
    case PhysNodeKind::kCheckedPartScan: {
      const auto& scan = static_cast<const CheckedPartScanNode&>(node);
      const TableStore* store = storage_->GetStore(scan.table_oid());
      if (store == nullptr) return 1000.0;
      return std::max<double>(
          1.0, static_cast<double>(store->UnitTotalRows(scan.leaf_oid())));
    }
    case PhysNodeKind::kDynamicScan: {
      // Which partitions survive is only known at runtime; assume all.
      const auto& scan = static_cast<const DynamicScanNode&>(node);
      const TableStore* store = storage_->GetStore(scan.table_oid());
      if (store == nullptr) return 1000.0;
      return std::max<double>(1.0, static_cast<double>(store->TotalRows()));
    }
    case PhysNodeKind::kDynamicIndexScan: {
      const auto& scan = static_cast<const DynamicIndexScanNode&>(node);
      const TableStore* store = storage_->GetStore(scan.table_oid());
      if (store == nullptr) return 1000.0;
      const double total =
          std::max<double>(1.0, static_cast<double>(store->TotalRows()));
      switch (scan.mode()) {
        case IndexScanMode::kMinMax:
          // At most one candidate row per unit/segment pair.
          return std::max<double>(
              1.0, static_cast<double>(store->UnitOids().size() *
                                       static_cast<size_t>(
                                           store->num_segments())));
        case IndexScanMode::kOrderedWalk:
          if (scan.per_unit_limit() > 0) {
            return std::min(
                total, static_cast<double>(scan.per_unit_limit() *
                                           store->UnitOids().size()));
          }
          return total;
        case IndexScanMode::kRangeSeek:
          return std::max(1.0, total * Selectivity(scan.residual()));
      }
      return total;
    }
    case PhysNodeKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(node);
      return std::max(1.0, EstimatePhysicalRows(*node.child(0)) *
                               Selectivity(filter.predicate()));
    }
    case PhysNodeKind::kHashJoin: {
      const auto& join = static_cast<const HashJoinNode&>(node);
      const double build = EstimatePhysicalRows(*node.child(0));
      const double probe = EstimatePhysicalRows(*node.child(1));
      if (join.join_type() == JoinType::kSemi) {
        return std::max(1.0, probe * 0.5);  // probe side is preserved
      }
      std::vector<std::optional<ColumnStats>> build_stats;
      std::vector<std::optional<ColumnStats>> probe_stats;
      for (size_t i = 0; i < join.build_keys().size(); ++i) {
        build_stats.push_back(
            ResolvePhysicalColumnStats(*node.child(0), join.build_keys()[i]));
        probe_stats.push_back(
            ResolvePhysicalColumnStats(*node.child(1), join.probe_keys()[i]));
      }
      const double sel =
          (join.build_keys().empty()
               ? 1.0 / std::max(build, probe)
               : EquiJoinSelectivity(build_stats, probe_stats, build, probe)) *
          Selectivity(join.residual());
      return std::max(1.0, build * probe * sel);
    }
    case PhysNodeKind::kNestedLoopJoin: {
      const auto& join = static_cast<const NestedLoopJoinNode&>(node);
      const double left = EstimatePhysicalRows(*node.child(0));
      const double right = EstimatePhysicalRows(*node.child(1));
      if (join.join_type() == JoinType::kSemi) {
        return std::max(1.0, left * 0.5);
      }
      return std::max(1.0, left * right * Selectivity(join.predicate()));
    }
    case PhysNodeKind::kIndexNLJoin: {
      const auto& join = static_cast<const IndexNLJoinNode&>(node);
      const double outer = EstimatePhysicalRows(*node.child(0));
      auto inner = TableColumnStats(join.inner_table(), join.inner_key_column());
      // Matches per outer row ≈ inner rows / inner-key NDV.
      const double per_probe =
          inner && inner->ndv >= 1.0 ? inner->row_count / inner->ndv : 1.0;
      return std::max(1.0, outer * per_probe * Selectivity(join.residual()));
    }
    case PhysNodeKind::kHashAgg: {
      const auto& agg = static_cast<const HashAggNode&>(node);
      if (agg.group_by().empty()) return 1.0;
      return std::max(1.0, std::sqrt(EstimatePhysicalRows(*node.child(0))));
    }
    case PhysNodeKind::kLimit:
      return std::min(
          static_cast<double>(static_cast<const LimitNode&>(node).limit()),
          EstimatePhysicalRows(*node.child(0)));
    case PhysNodeKind::kTopN:
      return std::min(
          static_cast<double>(static_cast<const TopNNode&>(node).limit()),
          EstimatePhysicalRows(*node.child(0)));
    case PhysNodeKind::kAppend: {
      double total = 0;
      for (const PhysPtr& child : node.children()) {
        total += EstimatePhysicalRows(*child);
      }
      return std::max(1.0, total);
    }
    case PhysNodeKind::kSequence:
      return EstimatePhysicalRows(*node.child(node.children().size() - 1));
    case PhysNodeKind::kValues:
      return static_cast<double>(
          static_cast<const ValuesNode&>(node).rows().size());
    case PhysNodeKind::kPartitionSelector:
    case PhysNodeKind::kProject:
    case PhysNodeKind::kSort:
    case PhysNodeKind::kMotion:
      return EstimatePhysicalRows(*node.child(0));
    default:
      return 1.0;
  }
}

}  // namespace mppdb
