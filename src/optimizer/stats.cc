#include "optimizer/stats.h"

#include <algorithm>
#include <cmath>

namespace mppdb {

double CardinalityEstimator::Selectivity(const ExprPtr& pred) {
  if (pred == nullptr) return 1.0;
  switch (pred->kind()) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*pred);
      switch (cmp.op()) {
        case CompareOp::kEq:
          return 0.05;
        case CompareOp::kNe:
          return 0.95;
        default:
          return 0.33;
      }
    }
    case ExprKind::kAnd: {
      double s = 1.0;
      for (const auto& child : pred->children()) s *= Selectivity(child);
      return std::max(s, 1e-6);
    }
    case ExprKind::kOr: {
      double keep = 1.0;
      for (const auto& child : pred->children()) keep *= 1.0 - Selectivity(child);
      return 1.0 - keep;
    }
    case ExprKind::kNot:
      return 1.0 - Selectivity(pred->child(0));
    case ExprKind::kInList:
      return std::min(1.0, 0.05 * static_cast<double>(pred->children().size() - 1));
    case ExprKind::kIsNull:
      return 0.05;
    case ExprKind::kConst: {
      const Datum& v = static_cast<const ConstExpr&>(*pred).value();
      if (v.is_null()) return 0.0;
      if (v.type() == TypeId::kBool) return v.bool_value() ? 1.0 : 0.0;
      return 1.0;
    }
    default:
      return 0.5;
  }
}

double CardinalityEstimator::EstimateRows(const LogicalPtr& node) const {
  switch (node->kind()) {
    case LogicalKind::kGet: {
      const auto& get = static_cast<const LogicalGet&>(*node);
      const TableStore* store = storage_->GetStore(get.table()->oid);
      if (store == nullptr) return 1000.0;
      return std::max<double>(1.0, static_cast<double>(store->TotalRows()));
    }
    case LogicalKind::kSelect: {
      const auto& select = static_cast<const LogicalSelect&>(*node);
      return std::max(1.0,
                      EstimateRows(select.child(0)) * Selectivity(select.predicate()));
    }
    case LogicalKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(*node);
      double left = EstimateRows(join.child(0));
      double right = EstimateRows(join.child(1));
      if (join.join_type() == JoinType::kSemi) {
        return std::max(1.0, left * 0.5);
      }
      // Equi-join heuristic: |L ⋈ R| ≈ L*R / max(L, R).
      double sel = join.predicate() == nullptr ? 1.0 : 1.0 / std::max(left, right);
      return std::max(1.0, left * right * sel);
    }
    case LogicalKind::kProject:
      return EstimateRows(node->child(0));
    case LogicalKind::kAgg: {
      const auto& agg = static_cast<const LogicalAgg&>(*node);
      if (agg.group_by().empty()) return 1.0;
      return std::max(1.0, std::sqrt(EstimateRows(agg.child(0))));
    }
    case LogicalKind::kSort:
      return EstimateRows(node->child(0));
    case LogicalKind::kLimit: {
      const auto& limit = static_cast<const LogicalLimit&>(*node);
      return std::min(static_cast<double>(limit.limit()),
                      EstimateRows(limit.child(0)));
    }
    case LogicalKind::kValues:
      return static_cast<double>(
          static_cast<const LogicalValues&>(*node).rows().size());
  }
  return 1000.0;
}

}  // namespace mppdb
