#include "optimizer/join_filter_placement.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/macros.h"

namespace mppdb {

namespace {

/// Cost gate: a filter must promise to pay for its build and probes. The
/// probe side must dominate the build side, and the build side must be small
/// enough that summarizing it (min/max fold + bloom inserts) is cheap
/// relative to the scan work it can save.
constexpr double kMinProbeToBuildRatio = 2.0;
constexpr double kMaxBuildRowsEst = static_cast<double>(size_t{1} << 20);

bool KeysPresent(const PhysicalNode& node, const std::vector<ColRefId>& keys) {
  const std::vector<ColRefId> outputs = node.OutputIds();
  for (ColRefId key : keys) {
    if (std::find(outputs.begin(), outputs.end(), key) == outputs.end()) {
      return false;
    }
  }
  return true;
}

class Placer {
 public:
  explicit Placer(const CardinalityEstimator& estimator)
      : estimator_(estimator) {}

  PhysPtr Rewrite(const PhysPtr& node) {
    std::vector<PhysPtr> children;
    children.reserve(node->children().size());
    for (const PhysPtr& child : node->children()) {
      children.push_back(Rewrite(child));
    }
    PhysPtr rebuilt = CloneWithChildren(node, std::move(children));
    if (node->kind() != PhysNodeKind::kHashJoin) return rebuilt;
    if (PhysPtr with_filter = TryAttach(rebuilt)) return with_filter;
    return rebuilt;
  }

 private:
  /// Attempts to place one runtime filter on `join` (a kHashJoin node whose
  /// children are final). Returns nullptr when the cost gate or the
  /// probe-side walk says no.
  PhysPtr TryAttach(const PhysPtr& join) {
    const auto& hj = static_cast<const HashJoinNode&>(*join);
    if (hj.build_keys().empty()) return nullptr;
    const PhysPtr& build = join->child(0);
    const PhysPtr& probe = join->child(1);
    const double build_est = estimator_.EstimatePhysicalRows(*build);
    const double probe_est = estimator_.EstimatePhysicalRows(*probe);
    if (build_est > kMaxBuildRowsEst) return nullptr;
    if (probe_est < kMinProbeToBuildRatio * build_est) return nullptr;
    // The build keys must be live in the build child's output (they are by
    // construction of the join, but the publish site resolves them there).
    if (!KeysPresent(*build, hj.build_keys())) return nullptr;

    const bool global = build->kind() == PhysNodeKind::kMotion;
    const int filter_id = next_filter_id_;
    std::optional<PhysPtr> annotated_probe = Descend(
        probe, hj.probe_keys(), filter_id, global, /*below_motion=*/false);
    if (!annotated_probe) return nullptr;
    ++next_filter_id_;

    JoinFilterSpec spec;
    spec.filter_id = filter_id;
    spec.key_columns = hj.build_keys();
    spec.build_rows_est = build_est;
    spec.global = global;

    if (global) {
      // Publish from the Motion feeding the build side: the merged summary
      // over every segment's source rows, available to any segment.
      JoinFilterAnnotations motion_ann = build->join_filters();
      motion_ann.publishes.push_back(std::move(spec));
      PhysPtr annotated_build =
          WithJoinFilters(build, build->children(), std::move(motion_ann));
      return CloneWithChildren(join, {annotated_build, *annotated_probe});
    }
    // Publish from the join itself: one local summary per segment, built
    // from that segment's materialized build rows.
    JoinFilterAnnotations join_ann = join->join_filters();
    join_ann.publishes.push_back(std::move(spec));
    return WithJoinFilters(join, {build, *annotated_probe},
                           std::move(join_ann));
  }

  /// Walks the probe side looking for consumer sites. Returns the annotated
  /// copy of `node`, or nullopt if no site was reached on this path.
  std::optional<PhysPtr> Descend(const PhysPtr& node,
                                 const std::vector<ColRefId>& keys,
                                 int filter_id, bool global,
                                 bool below_motion) {
    switch (node->kind()) {
      case PhysNodeKind::kFilter: {
        // Consume after the Filter's own predicate: skip decisions, error
        // outcomes, and the predicate's counters stay untouched.
        if (!KeysPresent(*node, keys)) return std::nullopt;
        return Attach(node, keys, filter_id, global, below_motion);
      }
      case PhysNodeKind::kTableScan: {
        const auto& scan = static_cast<const TableScanNode&>(*node);
        // Rowid-emitting scans feed DML row location; never annotated.
        if (!scan.rowid_ids().empty()) return std::nullopt;
        if (!KeysPresent(*node, keys)) return std::nullopt;
        return Attach(node, keys, filter_id, global, below_motion);
      }
      case PhysNodeKind::kDynamicScan: {
        const auto& scan = static_cast<const DynamicScanNode&>(*node);
        if (!scan.rowid_ids().empty()) return std::nullopt;
        if (!KeysPresent(*node, keys)) return std::nullopt;
        return Attach(node, keys, filter_id, global, below_motion);
      }
      case PhysNodeKind::kDynamicIndexScan: {
        // Index scans never emit rowids; probe after the residual filter.
        if (!KeysPresent(*node, keys)) return std::nullopt;
        return Attach(node, keys, filter_id, global, below_motion);
      }
      case PhysNodeKind::kCheckedPartScan: {
        if (!KeysPresent(*node, keys)) return std::nullopt;
        return Attach(node, keys, filter_id, global, below_motion);
      }
      case PhysNodeKind::kProject: {
        // Cross only if every key maps onto a plain column of the child; a
        // computed item could raise an error on rows the filter would drop.
        const auto& project = static_cast<const ProjectNode&>(*node);
        std::vector<ColRefId> child_keys;
        child_keys.reserve(keys.size());
        for (ColRefId key : keys) {
          const ProjectItem* match = nullptr;
          for (const ProjectItem& item : project.items()) {
            if (item.output_id == key) {
              match = &item;
              break;
            }
          }
          if (match == nullptr ||
              match->expr->kind() != ExprKind::kColumnRef) {
            return std::nullopt;
          }
          child_keys.push_back(
              static_cast<const ColumnRefExpr&>(*match->expr).id());
        }
        std::optional<PhysPtr> child =
            Descend(node->child(0), child_keys, filter_id, global, below_motion);
        if (!child) return std::nullopt;
        return CloneWithChildren(node, {*child});
      }
      case PhysNodeKind::kSequence: {
        // Only the last child produces the Sequence's rows.
        std::vector<PhysPtr> children = node->children();
        std::optional<PhysPtr> last = Descend(children.back(), keys, filter_id,
                                              global, below_motion);
        if (!last) return std::nullopt;
        children.back() = *last;
        return CloneWithChildren(node, std::move(children));
      }
      case PhysNodeKind::kAppend: {
        // Each branch filters independently; branches that cannot host a
        // probe simply pass their rows through (the filter is advisory).
        std::vector<PhysPtr> children = node->children();
        bool any = false;
        for (PhysPtr& child : children) {
          if (std::optional<PhysPtr> annotated =
                  Descend(child, keys, filter_id, global, below_motion)) {
            child = *annotated;
            any = true;
          }
        }
        if (!any) return std::nullopt;
        return CloneWithChildren(node, std::move(children));
      }
      case PhysNodeKind::kMotion: {
        // Filtering below the exchange is where the payoff is (rejected rows
        // are never serialized), but it needs the cross-segment merged
        // summary: sound only when the build side publishes globally, and
        // the executor's rows_moved compensation covers exactly one Motion.
        if (!global || below_motion) return std::nullopt;
        std::optional<PhysPtr> child = Descend(node->child(0), keys, filter_id,
                                               global, /*below_motion=*/true);
        if (!child) return std::nullopt;
        return CloneWithChildren(node, {*child});
      }
      default:
        return std::nullopt;
    }
  }

  PhysPtr Attach(const PhysPtr& node, const std::vector<ColRefId>& keys,
                 int filter_id, bool global, bool below_motion) {
    JoinFilterProbe probe;
    probe.filter_id = filter_id;
    probe.key_columns = keys;
    probe.global = global;
    probe.below_motion = below_motion;
    JoinFilterAnnotations ann = node->join_filters();
    ann.probes.push_back(std::move(probe));
    return WithJoinFilters(node, node->children(), std::move(ann));
  }

  const CardinalityEstimator& estimator_;
  int next_filter_id_ = 0;
};

}  // namespace

PhysPtr PlaceJoinFilters(const PhysPtr& plan,
                         const CardinalityEstimator& estimator) {
  if (plan == nullptr) return plan;
  Placer placer(estimator);
  return placer.Rewrite(plan);
}

}  // namespace mppdb
