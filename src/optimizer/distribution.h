#ifndef MPPDB_OPTIMIZER_DISTRIBUTION_H_
#define MPPDB_OPTIMIZER_DISTRIBUTION_H_

#include <string>
#include <vector>

#include "expr/expr.h"

namespace mppdb {

/// A physical data-distribution property (paper §3.1): how an intermediate
/// result is spread across the cluster's segments. Used both as a delivered
/// property (what a plan produces) and a required property (what a parent
/// needs); Motion operators are the enforcers that convert between them.
struct DistributionSpec {
  enum class Kind {
    kAny,         ///< requirement only: anything goes
    kHashed,      ///< rows hashed on `columns`
    kReplicated,  ///< full copy on every segment
    kSingleton,   ///< all rows on one segment (coordinator-side)
    kRandom,      ///< delivered only: spread with no co-location guarantee
  };

  Kind kind = Kind::kAny;
  std::vector<ColRefId> columns;  ///< for kHashed

  static DistributionSpec Any() { return {Kind::kAny, {}}; }
  static DistributionSpec Hashed(std::vector<ColRefId> cols) {
    return {Kind::kHashed, std::move(cols)};
  }
  static DistributionSpec Replicated() { return {Kind::kReplicated, {}}; }
  static DistributionSpec Singleton() { return {Kind::kSingleton, {}}; }
  static DistributionSpec Random() { return {Kind::kRandom, {}}; }

  bool operator==(const DistributionSpec& other) const {
    return kind == other.kind && columns == other.columns;
  }

  /// True if data delivered as `*this` meets requirement `required`.
  /// Singleton trivially co-locates, so it satisfies kHashed; kAny accepts
  /// everything.
  bool Satisfies(const DistributionSpec& required) const {
    switch (required.kind) {
      case Kind::kAny:
        return true;
      case Kind::kHashed:
        return (kind == Kind::kHashed && columns == required.columns) ||
               kind == Kind::kSingleton;
      case Kind::kReplicated:
        return kind == Kind::kReplicated;
      case Kind::kSingleton:
        return kind == Kind::kSingleton;
      case Kind::kRandom:
        return true;  // "random" imposes nothing
    }
    return false;
  }

  std::string ToString() const {
    switch (kind) {
      case Kind::kAny:
        return "Any";
      case Kind::kReplicated:
        return "Replicated";
      case Kind::kSingleton:
        return "Singleton";
      case Kind::kRandom:
        return "Random";
      case Kind::kHashed: {
        std::string out = "Hashed(";
        for (size_t i = 0; i < columns.size(); ++i) {
          if (i > 0) out += ",";
          out += std::to_string(columns[i]);
        }
        return out + ")";
      }
    }
    return "?";
  }
};

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_DISTRIBUTION_H_
