#ifndef MPPDB_OPTIMIZER_JOIN_FILTER_PLACEMENT_H_
#define MPPDB_OPTIMIZER_JOIN_FILTER_PLACEMENT_H_

#include "exec/plan.h"
#include "optimizer/stats.h"

namespace mppdb {

/// Post-optimization pass attaching runtime join-filter annotations to a
/// chosen physical plan (SELECT only; DML plans are left untouched).
///
/// For every hash join that passes the cost gate — estimated probe rows at
/// least twice the estimated build rows, and a bounded build side — the pass
/// walks the probe side looking for a consumer site: the first Filter node,
/// or a bare scan (TableScan / DynamicScan / CheckedPartScan without rowid
/// outputs). The walk crosses only row-preserving operators whose per-row
/// accounting the executor can compensate exactly: pass-through Projects
/// (key columns remapped through ColumnRef items; computed items stop the
/// walk), Sequence (last child), Append (each child independently), and at
/// most one Motion. Crossing a Motion requires the join's build child to be
/// a Motion itself: only there can a cross-segment merged summary be
/// published (PublishGlobalJoinFilter), which is the sound summary for rows
/// that have not been exchanged yet. Limits, Sorts, aggregates, and nested
/// joins stop the walk — a filter that is not provably transparent to
/// results is simply not placed.
///
/// Producer placement mirrors the consumer: when the build child is a
/// Motion, the JoinFilterSpec rides on that Motion (merged global summary,
/// built from every source batch before routing); otherwise it rides on the
/// join itself (per-segment local summary over the materialized build side,
/// which matches the executor's per-segment join semantics exactly).
///
/// Annotations never change results: they are advisory (a consumer that
/// finds no published summary scans normally), and the executor keeps all
/// pre-existing ExecStats logical, so plans with and without annotations are
/// observationally identical except for the joinfilter_* counters.
PhysPtr PlaceJoinFilters(const PhysPtr& plan,
                         const CardinalityEstimator& estimator);

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_JOIN_FILTER_PLACEMENT_H_
