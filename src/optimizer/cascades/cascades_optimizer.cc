#include "optimizer/cascades/cascades_optimizer.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"
#include "expr/constraint_derivation.h"
#include "expr/sargable.h"
#include "optimizer/join_filter_placement.h"
#include "optimizer/placement.h"
#include "storage/storage.h"

namespace mppdb {

namespace {

constexpr double kSelectorRowCost = 0.1;
constexpr double kFilterRowCost = 0.05;
constexpr double kHashBuildRowCost = 1.5;
constexpr double kPinnedScanFraction = 0.15;
// Index access paths: probing a per-unit index costs a seek, and a row read
// through the index (binary search neighborhood + position materialization)
// costs more than a row streamed by a sequential scan (cost 1.0/row).
constexpr double kIndexSeekCost = 1.0;
constexpr double kIndexRowCost = 2.0;
// Bounded top-N heap: cheaper than a full Sort (2.0/row) — most rows only
// pay the heap-front comparison.
constexpr double kTopNRowCost = 0.5;

// Natural delivered distribution of a table scan.
DistributionSpec NaturalDistribution(const LogicalGet& get) {
  switch (get.table()->distribution) {
    case TableDistribution::kHashed:
      return DistributionSpec::Hashed(get.DistributionKeyIds());
    case TableDistribution::kReplicated:
      return DistributionSpec::Replicated();
    case TableDistribution::kRandom:
      return DistributionSpec::Random();
  }
  return DistributionSpec::Random();
}

// Schema position of ColRefId `id` in the Get's output, or -1.
int SchemaColumnOf(const LogicalGet& get, ColRefId id) {
  for (size_t c = 0; c < get.column_ids().size(); ++c) {
    if (get.column_ids()[c] == id) return static_cast<int>(c);
  }
  return -1;
}

IndexBound ToIndexBound(const IntervalBound& bound) {
  if (bound.unbounded) return IndexBound::Unbounded();
  return bound.inclusive ? IndexBound::Inclusive(bound.value)
                         : IndexBound::Exclusive(bound.value);
}

PhysPtr MakeMotion(MotionKind kind, std::vector<ColRefId> cols, PhysPtr child) {
  return std::make_shared<MotionNode>(kind, std::move(cols), std::move(child));
}

// Sorts specs by scan id for deterministic request keys.
void SortSpecs(std::vector<PartSelectorSpec>* specs) {
  std::sort(specs->begin(), specs->end(),
            [](const PartSelectorSpec& a, const PartSelectorSpec& b) {
              return a.scan_id < b.scan_id;
            });
}

}  // namespace

std::string CascadesOptimizer::Request::Key() const {
  std::string key = dist.ToString();
  key += "|";
  for (const auto& spec : specs) {
    key += spec.ToString();
    key += ";";
  }
  key += "|";
  for (int pin : pinned) {
    key += std::to_string(pin);
    key += ",";
  }
  return key;
}

CascadesOptimizer::CascadesOptimizer(const Catalog* catalog,
                                     const StorageEngine* storage)
    : catalog_(catalog), storage_(storage), estimator_(storage) {}

CascadesOptimizer::CascadesOptimizer(const Catalog* catalog, const StorageEngine* storage,
                                     Options options)
    : catalog_(catalog), storage_(storage), estimator_(storage), options_(options) {}

double CascadesOptimizer::MotionCost(MotionKind kind, double rows) const {
  // Interconnect traffic dominates local work in an MPP cluster; a moved row
  // costs a multiple of a locally processed one (serialization + network).
  constexpr double kNetworkRowCost = 2.0;
  switch (kind) {
    case MotionKind::kGather:
      return rows * kNetworkRowCost;
    case MotionKind::kRedistribute:
      return rows * kNetworkRowCost * 1.2;
    case MotionKind::kBroadcast:
      return rows * kNetworkRowCost * static_cast<double>(storage_->num_segments());
  }
  return rows;
}

CascadesOptimizer::Request CascadesOptimizer::ForwardToChild(
    const Request& req, DistributionSpec child_dist) {
  Request child = req;
  child.dist = std::move(child_dist);
  return child;
}

CascadesOptimizer::BestPlan CascadesOptimizer::OptimizeGroup(int group_id,
                                                             const Request& req) {
  auto key = std::make_pair(group_id, req.Key());
  auto it = best_.find(key);
  if (it != best_.end()) return it->second;
  ++last_request_count_;

  const Group& group = memo_->group(group_id);

  // Specs whose DynamicScan lives outside this subtree are resolved here by
  // pass-through PartitionSelector enforcers (paper Fig. 13, Group 2): peel
  // one, recurse for the rest.
  for (size_t i = 0; i < req.specs.size(); ++i) {
    if (group.scan_ids.count(req.specs[i].scan_id) > 0) continue;
    PartSelectorSpec spec = req.specs[i];
    Request inner = req;
    inner.specs.erase(inner.specs.begin() + static_cast<std::ptrdiff_t>(i));
    BestPlan child = OptimizeGroup(group_id, inner);
    BestPlan out;
    if (child.valid) {
      // Keep only predicate conjuncts evaluable with this group's output.
      std::unordered_set<ColRefId> available(group.output_ids.begin(),
                                             group.output_ids.end());
      for (size_t level = 0; level < spec.part_predicates.size(); ++level) {
        if (spec.part_predicates[level] == nullptr) continue;
        spec.part_predicates[level] =
            FindPredOnKey(spec.part_keys[level], spec.part_predicates[level],
                          available);
      }
      if (!options_.enable_partition_selection) {
        spec.part_predicates.assign(spec.part_keys.size(), nullptr);
      }
      out.valid = true;
      out.plan = MakePartitionSelector(spec, child.plan);
      out.cost = child.cost + kSelectorRowCost * group.row_estimate;
      out.delivered = child.delivered;
    }
    best_[key] = out;
    return out;
  }

  BestPlan best;
  for (const GroupExpr& expr : group.exprs) {
    BestPlan candidate = OptimizeExpr(group_id, expr, req);
    if (candidate.valid && (!best.valid || candidate.cost < best.cost)) {
      best = std::move(candidate);
    }
  }

  // Distribution enforcers (Motion). Blocked for pinned requests: a Motion
  // here would separate the pinned DynamicScan from its PartitionSelector.
  if (req.pinned.empty() && (req.dist.kind == DistributionSpec::Kind::kHashed ||
                             req.dist.kind == DistributionSpec::Kind::kReplicated ||
                             req.dist.kind == DistributionSpec::Kind::kSingleton)) {
    Request relaxed = req;
    relaxed.dist = DistributionSpec::Any();
    BestPlan child = OptimizeGroup(group_id, relaxed);
    if (child.valid) {
      BestPlan enforced;
      if (child.delivered.Satisfies(req.dist)) {
        enforced = child;
      } else if (child.delivered.kind != DistributionSpec::Kind::kReplicated) {
        MotionKind kind = MotionKind::kGather;
        std::vector<ColRefId> cols;
        switch (req.dist.kind) {
          case DistributionSpec::Kind::kHashed:
            kind = MotionKind::kRedistribute;
            cols = req.dist.columns;
            break;
          case DistributionSpec::Kind::kReplicated:
            kind = MotionKind::kBroadcast;
            break;
          default:
            kind = MotionKind::kGather;
            break;
        }
        enforced.valid = true;
        enforced.plan = MakeMotion(kind, std::move(cols), child.plan);
        enforced.cost = child.cost + MotionCost(kind, group.row_estimate);
        enforced.delivered = req.dist;
      }
      if (enforced.valid && (!best.valid || enforced.cost < best.cost)) {
        best = std::move(enforced);
      }
    }
  }

  best_[key] = best;
  return best;
}

CascadesOptimizer::BestPlan CascadesOptimizer::OptimizeExpr(int group_id,
                                                            const GroupExpr& expr,
                                                            const Request& req) {
  switch (expr.op->kind()) {
    case LogicalKind::kGet:
      return ImplementGet(expr, req);
    case LogicalKind::kSelect:
      return ImplementSelect(group_id, expr, req);
    case LogicalKind::kJoin:
      return ImplementJoin(group_id, expr, req);
    case LogicalKind::kProject:
      return ImplementProject(expr, req);
    case LogicalKind::kAgg:
      return ImplementAgg(expr, req);
    case LogicalKind::kSort:
    case LogicalKind::kLimit:
    case LogicalKind::kValues:
      return ImplementSortLimitValues(expr, req);
  }
  return BestPlan{};
}

CascadesOptimizer::BestPlan CascadesOptimizer::ImplementGet(const GroupExpr& expr,
                                                            const Request& req) {
  const auto& get = static_cast<const LogicalGet&>(*expr.op);
  const TableDescriptor* table = get.table();
  double rows = estimator_.EstimateRows(expr.op);

  DistributionSpec natural = NaturalDistribution(get);
  if (!natural.Satisfies(req.dist)) return BestPlan{};

  BestPlan out;
  if (!table->IsPartitioned()) {
    out.valid = true;
    out.plan = std::make_shared<TableScanNode>(table->oid, table->oid,
                                               get.column_ids(), get.rowid_ids());
    out.cost = rows;
    out.delivered = natural;
    return out;
  }

  const PartitionScheme& scheme = *table->partition_scheme;
  auto scan = std::make_shared<DynamicScanNode>(table->oid, expr.scan_id,
                                                get.column_ids(), get.rowid_ids());

  const PartSelectorSpec* spec = nullptr;
  for (const auto& s : req.specs) {
    if (s.scan_id == expr.scan_id) {
      spec = &s;
      break;
    }
  }
  bool pinned = std::find(req.pinned.begin(), req.pinned.end(), expr.scan_id) !=
                req.pinned.end();

  if (spec != nullptr) {
    PartSelectorSpec local = *spec;
    if (!options_.enable_partition_selection) {
      local.part_predicates.assign(local.part_keys.size(), nullptr);
    }
    PhysPtr selector = MakePartitionSelector(local, nullptr);
    out.plan = std::make_shared<SequenceNode>(std::vector<PhysPtr>{selector, scan});
    // Cost: estimate the statically selected fraction of partitions.
    std::vector<ConstraintSet> constraints;
    for (size_t level = 0; level < local.part_keys.size(); ++level) {
      ExprPtr static_pred =
          local.part_predicates[level] == nullptr
              ? nullptr
              : FindPredOnKey(local.part_keys[level], local.part_predicates[level], {});
      constraints.push_back(static_pred == nullptr
                                ? ConstraintSet::All()
                                : DeriveConstraint(static_pred, local.part_keys[level]));
    }
    double selected = static_cast<double>(scheme.SelectPartitions(constraints).size());
    double fraction = selected / static_cast<double>(scheme.NumLeaves());
    out.cost = std::max(1.0, rows * fraction);
  } else if (pinned) {
    // Selector placed above (join-induced dynamic elimination).
    out.plan = scan;
    out.cost = std::max(1.0, rows * kPinnedScanFraction);
  } else {
    return BestPlan{};  // nothing would open the propagation channel
  }
  out.valid = true;
  out.delivered = natural;
  return out;
}

CascadesOptimizer::IndexLeaf CascadesOptimizer::MakeIndexLeaf(
    const LogicalGet& get, int scan_id, const PhysPtr& scan,
    const Request& req) const {
  IndexLeaf leaf;
  const TableDescriptor* table = get.table();
  const TableStore* store = storage_->GetStore(table->oid);
  if (store == nullptr) return leaf;
  leaf.units = std::max<double>(
      1.0, static_cast<double>(store->UnitOids().size()) *
               static_cast<double>(store->num_segments()));
  if (!table->IsPartitioned()) {
    leaf.valid = true;
    leaf.plan = scan;
    return leaf;
  }
  const PartitionScheme& scheme = *table->partition_scheme;
  const PartSelectorSpec* spec = nullptr;
  for (const auto& s : req.specs) {
    if (s.scan_id == scan_id) {
      spec = &s;
      break;
    }
  }
  const bool pinned =
      std::find(req.pinned.begin(), req.pinned.end(), scan_id) != req.pinned.end();
  if (spec != nullptr) {
    PartSelectorSpec local = *spec;
    if (!options_.enable_partition_selection) {
      local.part_predicates.assign(local.part_keys.size(), nullptr);
    }
    PhysPtr selector = MakePartitionSelector(local, nullptr);
    leaf.plan = std::make_shared<SequenceNode>(std::vector<PhysPtr>{selector, scan});
    std::vector<ConstraintSet> constraints;
    for (size_t level = 0; level < local.part_keys.size(); ++level) {
      ExprPtr static_pred =
          local.part_predicates[level] == nullptr
              ? nullptr
              : FindPredOnKey(local.part_keys[level], local.part_predicates[level], {});
      constraints.push_back(static_pred == nullptr
                                ? ConstraintSet::All()
                                : DeriveConstraint(static_pred, local.part_keys[level]));
    }
    double selected = static_cast<double>(scheme.SelectPartitions(constraints).size());
    leaf.part_fraction = selected / static_cast<double>(scheme.NumLeaves());
    leaf.valid = true;
  } else if (pinned) {
    // Selector placed above by a join; the scan reads the propagation channel.
    leaf.plan = scan;
    leaf.part_fraction = kPinnedScanFraction;
    leaf.valid = true;
  }
  return leaf;
}

double CascadesOptimizer::IndexMatchFraction(Oid table_oid, int column,
                                             const Interval& interval,
                                             const ExprPtr& conjunct) const {
  std::optional<ColumnStats> stats = estimator_.TableColumnStats(table_oid, column);
  if (stats && stats->range_valid && stats->row_count >= 1.0 &&
      IsIntegral(stats->min.type()) && IsIntegral(stats->max.type())) {
    const IntervalBound& blo = interval.lo();
    const IntervalBound& bhi = interval.hi();
    const bool bounds_integral =
        (blo.unbounded || (!blo.value.is_null() && IsIntegral(blo.value.type()))) &&
        (bhi.unbounded || (!bhi.value.is_null() && IsIntegral(bhi.value.type())));
    if (bounds_integral) {
      const double min_all = static_cast<double>(stats->min.AsInt64());
      const double max_all = static_cast<double>(stats->max.AsInt64());
      double lo = min_all;
      double hi = max_all;
      if (!blo.unbounded) {
        lo = static_cast<double>(blo.value.AsInt64()) + (blo.inclusive ? 0.0 : 1.0);
      }
      if (!bhi.unbounded) {
        hi = static_cast<double>(bhi.value.AsInt64()) - (bhi.inclusive ? 0.0 : 1.0);
      }
      lo = std::max(lo, min_all);
      hi = std::min(hi, max_all);
      if (hi < lo) return 0.0;
      double fraction = (hi - lo + 1.0) / (max_all - min_all + 1.0);
      if (hi == lo) fraction = std::min(fraction, 1.0 / stats->ndv);
      const double non_null =
          stats->row_count > 0 ? stats->non_null_count / stats->row_count : 1.0;
      return std::min(1.0, fraction * non_null);
    }
  }
  return CardinalityEstimator::Selectivity(conjunct);
}

CascadesOptimizer::BestPlan CascadesOptimizer::ImplementIndexSeek(
    const GroupExpr& expr, const Request& req, const Request& child_req) {
  BestPlan none;
  const auto& select = static_cast<const LogicalSelect&>(*expr.op);
  const Group& child_group = memo_->group(expr.child_groups[0]);
  if (child_group.exprs.size() != 1) return none;
  const GroupExpr& get_expr = child_group.exprs[0];
  if (get_expr.op->kind() != LogicalKind::kGet) return none;
  const auto& get = static_cast<const LogicalGet&>(*get_expr.op);
  if (!get.rowid_ids().empty()) return none;
  const TableDescriptor* table = get.table();

  DistributionSpec natural = NaturalDistribution(get);
  if (!natural.Satisfies(req.dist)) return none;

  // The seek drops rows whose key conjunct is FALSE *or NULL* without
  // evaluating anything else on them; that is only observation-free when the
  // whole predicate is provably error-free (a NULL conjunct does not
  // short-circuit the oracle's AND, so truncated conjuncts would still run).
  SargablePredicate sargable = AnalyzeSargable(select.predicate());
  if (sargable.truncated) return none;

  // Per indexed schema column, intersect the intervals of every single-test
  // kValueSet conjunct: each such test is a row-level necessary condition
  // (the row can satisfy its conjunct only if column ∈ values), so their
  // intersection is one for the whole AND — this is what turns
  // `k >= lo AND k < hi` into one bounded seek instead of two half-open
  // candidates.
  std::map<int, Interval> candidates;
  std::map<int, ExprPtr> candidate_exprs;
  for (const SargableConjunct& conjunct : sargable.prefix) {
    if (conjunct.tests.size() != 1) continue;
    const SargableTest& test = conjunct.tests[0];
    if (test.kind != SargableTest::Kind::kValueSet) continue;
    if (test.values.IsAll() || test.values.IsNone()) continue;
    if (test.values.intervals().size() != 1) continue;
    const Interval& interval = test.values.intervals()[0];
    int column = SchemaColumnOf(get, test.column);
    if (column < 0 || !table->HasIndexOn(column)) continue;
    auto [it, fresh] = candidates.emplace(column, interval);
    if (!fresh) it->second = Interval::Intersect(it->second, interval);
    candidate_exprs.emplace(column, conjunct.expr);
  }
  int best_column = -1;
  Interval best_interval = Interval::All();
  double best_fraction = 1.0;
  for (const auto& [column, interval] : candidates) {
    if (interval.lo().unbounded && interval.hi().unbounded) continue;
    // A provably-empty intersection would be sound to seek, but bounds in
    // the wrong order are not worth special-casing in the executor.
    if (interval.IsEmpty()) continue;
    double fraction =
        IndexMatchFraction(table->oid, column, interval, candidate_exprs.at(column));
    if (best_column < 0 || fraction < best_fraction) {
      best_column = column;
      best_interval = interval;
      best_fraction = fraction;
    }
  }
  if (best_column < 0) return none;

  const int scan_id = table->IsPartitioned() ? get_expr.scan_id : -1;
  PhysPtr scan = std::make_shared<DynamicIndexScanNode>(
      table->oid, scan_id, get.column_ids(), best_column,
      IndexScanMode::kRangeSeek, ToIndexBound(best_interval.lo()),
      ToIndexBound(best_interval.hi()), select.predicate(),
      /*ascending=*/true, /*per_unit_limit=*/0);
  IndexLeaf leaf = MakeIndexLeaf(get, scan_id, scan, child_req);
  if (!leaf.valid) return none;

  const double table_rows = child_group.row_estimate;
  const double match_rows =
      std::max(1.0, table_rows * best_fraction * leaf.part_fraction);
  BestPlan out;
  out.valid = true;
  out.plan = leaf.plan;
  out.cost = leaf.units * leaf.part_fraction * kIndexSeekCost +
             match_rows * kIndexRowCost + kFilterRowCost * match_rows;
  out.delivered = natural;
  return out;
}

CascadesOptimizer::BestPlan CascadesOptimizer::ImplementOrderedIndexLimit(
    const GroupExpr& limit_expr, const GroupExpr& sort_expr, const Request& req) {
  BestPlan none;
  if (!req.pinned.empty()) return none;  // a Gather would split the pinned pair
  const auto& limit = static_cast<const LogicalLimit&>(*limit_expr.op);
  const auto& sort = static_cast<const LogicalSort&>(*sort_expr.op);
  if (limit.limit() == 0) return none;
  if (sort.keys().size() != 1) return none;
  const Group& grand_group = memo_->group(sort_expr.child_groups[0]);
  if (grand_group.exprs.size() != 1) return none;
  // A bare Get, optionally under a pure column/constant Project (the shape
  // the binder emits for SELECT <cols> ... ORDER BY ... LIMIT). Anything
  // else breaks the per-unit early stop: a residual filter means the k-th
  // *surviving* row can lie arbitrarily deep in a unit's walk, and a
  // computed projection could error on a row the early stop skipped.
  const Group* get_group = &grand_group;
  const std::vector<ProjectItem>* proj_items = nullptr;
  if (grand_group.exprs[0].op->kind() == LogicalKind::kProject) {
    const auto& proj = static_cast<const LogicalProject&>(*grand_group.exprs[0].op);
    for (const ProjectItem& item : proj.items()) {
      if (item.expr == nullptr) return none;
      if (item.expr->kind() != ExprKind::kColumnRef &&
          item.expr->kind() != ExprKind::kConst) {
        return none;
      }
    }
    proj_items = &proj.items();
    get_group = &memo_->group(grand_group.exprs[0].child_groups[0]);
    if (get_group->exprs.size() != 1) return none;
  }
  const GroupExpr& get_expr = get_group->exprs[0];
  if (get_expr.op->kind() != LogicalKind::kGet) return none;
  const auto& get = static_cast<const LogicalGet&>(*get_expr.op);
  if (!get.rowid_ids().empty()) return none;
  const TableDescriptor* table = get.table();
  const SortKey& key = sort.keys()[0];
  // The sort key names a Project output when projecting: map it back to the
  // underlying table column.
  ColRefId key_id = key.column;
  if (proj_items != nullptr) {
    const ProjectItem* match = nullptr;
    for (const ProjectItem& item : *proj_items) {
      if (item.output_id == key.column) {
        match = &item;
        break;
      }
    }
    if (match == nullptr || match->expr->kind() != ExprKind::kColumnRef) return none;
    key_id = static_cast<const ColumnRefExpr&>(*match->expr).id();
  }
  const int column = SchemaColumnOf(get, key_id);
  if (column < 0 || !table->HasIndexOn(column)) return none;

  const int scan_id = table->IsPartitioned() ? get_expr.scan_id : -1;
  PhysPtr scan = std::make_shared<DynamicIndexScanNode>(
      table->oid, scan_id, get.column_ids(), column, IndexScanMode::kOrderedWalk,
      IndexBound::Unbounded(), IndexBound::Unbounded(), nullptr, key.ascending,
      /*per_unit_limit=*/limit.limit());
  IndexLeaf leaf = MakeIndexLeaf(get, scan_id, scan, req);
  if (!leaf.valid) return none;

  PhysPtr gathered = MakeMotion(MotionKind::kGather, {}, leaf.plan);
  if (proj_items != nullptr) {
    gathered = std::make_shared<ProjectNode>(*proj_items, gathered);
  }
  const double table_rows = get_group->row_estimate;
  const double walk_rows = std::max(
      1.0, std::min(table_rows * leaf.part_fraction,
                    static_cast<double>(limit.limit()) * leaf.units *
                        leaf.part_fraction));
  BestPlan out;
  out.valid = true;
  out.plan = std::make_shared<TopNNode>(sort.keys(), limit.limit(), gathered);
  out.cost = leaf.units * leaf.part_fraction * kIndexSeekCost +
             walk_rows * kIndexRowCost + MotionCost(MotionKind::kGather, walk_rows) +
             walk_rows * kTopNRowCost;
  out.delivered = DistributionSpec::Singleton();
  return out;
}

CascadesOptimizer::BestPlan CascadesOptimizer::ImplementMinMaxIndexSeek(
    const GroupExpr& expr, const Request& req) {
  BestPlan none;
  if (!req.pinned.empty()) return none;  // a Gather would split the pinned pair
  const auto& agg = static_cast<const LogicalAgg&>(*expr.op);
  if (!agg.group_by().empty() || agg.aggs().size() != 1) return none;
  const AggItem& item = agg.aggs()[0];
  if (item.func != AggFunc::kMin && item.func != AggFunc::kMax) return none;
  if (item.arg == nullptr || item.arg->kind() != ExprKind::kColumnRef) return none;
  const ColRefId arg_id = static_cast<const ColumnRefExpr&>(*item.arg).id();
  const Group& child_group = memo_->group(expr.child_groups[0]);
  if (child_group.exprs.size() != 1) return none;
  const GroupExpr& get_expr = child_group.exprs[0];
  if (get_expr.op->kind() != LogicalKind::kGet) return none;
  const auto& get = static_cast<const LogicalGet&>(*get_expr.op);
  if (!get.rowid_ids().empty()) return none;
  const TableDescriptor* table = get.table();
  const int column = SchemaColumnOf(get, arg_id);
  if (column < 0 || !table->HasIndexOn(column)) return none;

  DistributionSpec delivered = DistributionSpec::Singleton();
  if (!delivered.Satisfies(req.dist)) return none;

  const int scan_id = table->IsPartitioned() ? get_expr.scan_id : -1;
  PhysPtr scan = std::make_shared<DynamicIndexScanNode>(
      table->oid, scan_id, get.column_ids(), column, IndexScanMode::kMinMax,
      IndexBound::Unbounded(), IndexBound::Unbounded(), nullptr,
      /*ascending=*/item.func == AggFunc::kMin, /*per_unit_limit=*/0);
  IndexLeaf leaf = MakeIndexLeaf(get, scan_id, scan, req);
  if (!leaf.valid) return none;

  // The true extreme is among the per-unit extremes; the unchanged aggregate
  // over the gathered candidates reduces them (and yields NULL when no unit
  // has a live non-NULL entry, matching the full-scan aggregate).
  PhysPtr gathered = MakeMotion(MotionKind::kGather, {}, leaf.plan);
  const double candidates = std::max(1.0, leaf.units * leaf.part_fraction);
  BestPlan out;
  out.valid = true;
  out.plan = std::make_shared<HashAggNode>(agg.group_by(), agg.aggs(), gathered);
  out.cost = leaf.units * leaf.part_fraction * kIndexSeekCost +
             candidates * kIndexRowCost +
             MotionCost(MotionKind::kGather, candidates) + candidates;
  out.delivered = delivered;
  return out;
}

CascadesOptimizer::BestPlan CascadesOptimizer::ImplementSelect(int group_id,
                                                               const GroupExpr& expr,
                                                               const Request& req) {
  (void)group_id;
  const auto& select = static_cast<const LogicalSelect&>(*expr.op);
  Request child_req = ForwardToChild(req, req.dist);
  if (options_.enable_partition_selection) {
    // Algorithm 3: collect static partition-key conjuncts into the specs.
    for (PartSelectorSpec& spec : child_req.specs) {
      AugmentSpecFromPredicate(select.predicate(), {}, &spec);
    }
  }
  BestPlan best;
  BestPlan child = OptimizeGroup(expr.child_groups[0], child_req);
  if (child.valid) {
    best.valid = true;
    best.plan = std::make_shared<FilterNode>(select.predicate(), child.plan);
    best.cost = child.cost +
                kFilterRowCost * memo_->group(expr.child_groups[0]).row_estimate;
    best.delivered = child.delivered;
  }
  if (options_.enable_index_paths) {
    BestPlan seek = ImplementIndexSeek(expr, req, child_req);
    if (seek.valid && (!best.valid || seek.cost < best.cost)) {
      best = std::move(seek);
    }
  }
  return best;
}

CascadesOptimizer::BestPlan CascadesOptimizer::ImplementProject(const GroupExpr& expr,
                                                                const Request& req) {
  const auto& project = static_cast<const LogicalProject&>(*expr.op);

  // Which output columns are identity pass-throughs?
  std::unordered_set<ColRefId> pass_through;
  for (const auto& item : project.items()) {
    if (item.expr->kind() == ExprKind::kColumnRef &&
        static_cast<const ColumnRefExpr&>(*item.expr).id() == item.output_id) {
      pass_through.insert(item.output_id);
    }
  }
  if (req.dist.kind == DistributionSpec::Kind::kHashed) {
    for (ColRefId col : req.dist.columns) {
      if (pass_through.count(col) == 0) return BestPlan{};  // enforcer path
    }
  }
  Request child_req = ForwardToChild(req, req.dist);
  BestPlan child = OptimizeGroup(expr.child_groups[0], child_req);
  if (!child.valid) return BestPlan{};
  BestPlan out;
  out.valid = true;
  out.plan = std::make_shared<ProjectNode>(project.items(), child.plan);
  out.cost = child.cost;
  out.delivered = child.delivered;
  if (out.delivered.kind == DistributionSpec::Kind::kHashed) {
    for (ColRefId col : out.delivered.columns) {
      if (pass_through.count(col) == 0) {
        out.delivered = DistributionSpec::Random();
        break;
      }
    }
  }
  return out;
}

namespace {

// Rewrites aggregate items into the global stage of a two-phase aggregation:
// each item consumes its own partial output column (count becomes a sum of
// partial counts; sum/min/max combine naturally). Returns false — two-phase
// is not applicable — when an avg is present (it would need a sum/count
// column pair).
bool MakeGlobalAggItems(const std::vector<AggItem>& items,
                        std::vector<AggItem>* global_items) {
  for (const AggItem& item : items) {
    AggItem global = item;
    global.arg = MakeColumnRef(item.output_id, item.name, TypeId::kInt64);
    switch (item.func) {
      case AggFunc::kCount:
      case AggFunc::kCountStar:
        global.func = AggFunc::kSum;
        break;
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        break;
      case AggFunc::kAvg:
        return false;
    }
    global_items->push_back(std::move(global));
  }
  return true;
}

}  // namespace

CascadesOptimizer::BestPlan CascadesOptimizer::ImplementAgg(const GroupExpr& expr,
                                                            const Request& req) {
  const auto& agg = static_cast<const LogicalAgg&>(*expr.op);
  double child_rows = memo_->group(expr.child_groups[0]).row_estimate;
  double group_rows = memo_->group(expr.child_groups[0]).row_estimate * 0.1 + 1;

  std::vector<DistributionSpec> alternatives;
  alternatives.push_back(DistributionSpec::Singleton());
  if (!agg.group_by().empty()) {
    alternatives.push_back(DistributionSpec::Hashed(agg.group_by()));
  }

  BestPlan best;
  // Single-phase: aggregate where the (re)distributed data lives.
  for (DistributionSpec& child_dist : alternatives) {
    if (!child_dist.Satisfies(req.dist)) continue;  // agg preserves child dist
    BestPlan child = OptimizeGroup(expr.child_groups[0],
                                   ForwardToChild(req, child_dist));
    if (!child.valid) continue;
    BestPlan out;
    out.valid = true;
    out.plan = std::make_shared<HashAggNode>(agg.group_by(), agg.aggs(), child.plan);
    out.cost = child.cost + child_rows;
    out.delivered = child.delivered;
    if (!best.valid || out.cost < best.cost) best = std::move(out);
  }

  // Two-phase: aggregate locally on whatever distribution the child has,
  // move only the partial groups, then combine. Invalid when a selector
  // above this group is pinned to a scan below (the Motion would split the
  // producer/consumer pair) — and skipped for avg (needs a sum/count pair).
  std::vector<AggItem> global_items;
  if (options_.enable_two_phase_agg && req.pinned.empty() &&
      MakeGlobalAggItems(agg.aggs(), &global_items)) {
    BestPlan child = OptimizeGroup(expr.child_groups[0],
                                   ForwardToChild(req, DistributionSpec::Any()));
    if (child.valid &&
        child.delivered.kind != DistributionSpec::Kind::kReplicated) {
      PhysPtr local =
          std::make_shared<HashAggNode>(agg.group_by(), agg.aggs(), child.plan);
      DistributionSpec delivered = DistributionSpec::Singleton();
      MotionKind motion_kind = MotionKind::kGather;
      std::vector<ColRefId> motion_cols;
      if (req.dist.kind == DistributionSpec::Kind::kHashed &&
          !agg.group_by().empty() &&
          DistributionSpec::Hashed(agg.group_by()).Satisfies(req.dist)) {
        motion_kind = MotionKind::kRedistribute;
        motion_cols = agg.group_by();
        delivered = DistributionSpec::Hashed(agg.group_by());
      }
      if (delivered.Satisfies(req.dist)) {
        PhysPtr moved = std::make_shared<MotionNode>(motion_kind, motion_cols, local);
        PhysPtr global = std::make_shared<HashAggNode>(agg.group_by(),
                                                       std::move(global_items), moved);
        double partial_rows =
            std::min(child_rows,
                     group_rows * static_cast<double>(storage_->num_segments()));
        BestPlan out;
        out.valid = true;
        out.plan = std::move(global);
        out.cost = child.cost + child_rows + MotionCost(motion_kind, partial_rows) +
                   partial_rows;
        out.delivered = delivered;
        if (!best.valid || out.cost < best.cost) best = std::move(out);
      }
    }
  }

  // MinMax2IndexSeek: an ungrouped MIN/MAX of an indexed column needs one
  // live index entry per unit, not a scan.
  if (options_.enable_index_paths) {
    BestPlan idx = ImplementMinMaxIndexSeek(expr, req);
    if (idx.valid && (!best.valid || idx.cost < best.cost)) best = std::move(idx);
  }
  return best;
}

CascadesOptimizer::BestPlan CascadesOptimizer::ImplementSortLimitValues(
    const GroupExpr& expr, const Request& req) {
  if (expr.op->kind() == LogicalKind::kValues) {
    const auto& values = static_cast<const LogicalValues&>(*expr.op);
    DistributionSpec delivered = DistributionSpec::Singleton();
    if (!delivered.Satisfies(req.dist)) return BestPlan{};
    BestPlan out;
    out.valid = true;
    out.plan = std::make_shared<ValuesNode>(values.rows(), values.OutputIds());
    out.cost = static_cast<double>(values.rows().size());
    out.delivered = delivered;
    return out;
  }
  // Sort and Limit are computed on gathered data.
  DistributionSpec delivered = DistributionSpec::Singleton();
  if (!delivered.Satisfies(req.dist)) return BestPlan{};
  BestPlan out;
  BestPlan child = OptimizeGroup(expr.child_groups[0],
                                 ForwardToChild(req, DistributionSpec::Singleton()));
  double child_rows = memo_->group(expr.child_groups[0]).row_estimate;
  if (child.valid) {
    out.valid = true;
    if (expr.op->kind() == LogicalKind::kSort) {
      out.plan = std::make_shared<SortNode>(
          static_cast<const LogicalSort&>(*expr.op).keys(), child.plan);
      out.cost = child.cost + child_rows * 2;
    } else {
      out.plan = std::make_shared<LimitNode>(
          static_cast<const LogicalLimit&>(*expr.op).limit(), child.plan);
      out.cost = child.cost;
    }
    out.delivered = delivered;
  }

  if (expr.op->kind() == LogicalKind::kLimit && options_.enable_index_paths) {
    const auto& limit = static_cast<const LogicalLimit&>(*expr.op);
    const Group& child_group = memo_->group(expr.child_groups[0]);
    for (const GroupExpr& sort_expr : child_group.exprs) {
      if (sort_expr.op->kind() != LogicalKind::kSort) continue;
      const auto& sort = static_cast<const LogicalSort&>(*sort_expr.op);
      // Fuse adjacent Sort+Limit into one bounded top-N heap: output is the
      // first `limit` rows of the stable sort, at O(n log k) and O(k) space.
      BestPlan grand =
          OptimizeGroup(sort_expr.child_groups[0],
                        ForwardToChild(req, DistributionSpec::Singleton()));
      if (grand.valid) {
        double grand_rows = memo_->group(sort_expr.child_groups[0]).row_estimate;
        BestPlan fused;
        fused.valid = true;
        fused.plan =
            std::make_shared<TopNNode>(sort.keys(), limit.limit(), grand.plan);
        fused.cost = grand.cost + grand_rows * kTopNRowCost;
        fused.delivered = delivered;
        if (!out.valid || fused.cost < out.cost) out = std::move(fused);
      }
      // Limit2DynamicIndexScan: per-partition ordered index walks capped at
      // `limit`, merged through the same top-N heap.
      BestPlan walk = ImplementOrderedIndexLimit(expr, sort_expr, req);
      if (walk.valid && (!out.valid || walk.cost < out.cost)) {
        out = std::move(walk);
      }
      break;
    }
  }
  return out;
}

namespace {

// Collects static partition-key conjuncts from Select operators below
// `group_id` (on the path to the spec's scan) into the spec. Used when a
// join moves a spec to its build side: the selector then combines the
// join-induced predicate with the probe side's own static restrictions, so
// dynamic and static elimination intersect (e.g. "fact.sk >= X" below the
// join AND "fact.sk = dim.sk" from the join).
void CollectStaticPredsBelow(const Memo& memo, int group_id, PartSelectorSpec* spec) {
  const Group& group = memo.group(group_id);
  if (group.scan_ids.count(spec->scan_id) == 0) return;
  for (const GroupExpr& expr : group.exprs) {
    if (expr.op->kind() == LogicalKind::kSelect) {
      const auto& select = static_cast<const LogicalSelect&>(*expr.op);
      AugmentSpecFromPredicate(select.predicate(), {}, spec);
    }
    for (int child : expr.child_groups) {
      CollectStaticPredsBelow(memo, child, spec);
    }
  }
}

}  // namespace

CascadesOptimizer::BestPlan CascadesOptimizer::ImplementJoin(int group_id,
                                                             const GroupExpr& expr,
                                                             const Request& req) {
  const auto& join = static_cast<const LogicalJoin&>(*expr.op);
  const Group& group = memo_->group(group_id);
  double out_rows = group.row_estimate;

  // Side assignments: children[0] of the physical join is the build side
  // (executes first). Inner joins commute; semi joins must probe with the
  // preserved (left) side.
  struct SideAssignment {
    int build_group;
    int probe_group;
  };
  std::vector<SideAssignment> sides;
  sides.push_back({expr.child_groups[1], expr.child_groups[0]});
  if (join.join_type() == JoinType::kInner) {
    sides.push_back({expr.child_groups[0], expr.child_groups[1]});
  }

  BestPlan best;

  // The Index-Join implementation of the model (paper §2.2): the outer child
  // computes the partition keys; the inner looks up an index on the
  // partition key. Applicable when the inner side is a bare (possibly
  // filtered) Get of a non-replicated, indexed table — single-level
  // partitioned on the join key or unpartitioned.
  if (options_.enable_index_join && join.join_type() == JoinType::kInner) {
    for (const SideAssignment& side : sides) {
      const Group& outer_group = memo_->group(side.build_group);
      const Group& inner_group = memo_->group(side.probe_group);
      if (inner_group.exprs.size() != 1) continue;
      const GroupExpr& inner_expr = inner_group.exprs[0];
      const LogicalGet* get = nullptr;
      ExprPtr inner_filter;
      if (inner_expr.op->kind() == LogicalKind::kGet) {
        get = static_cast<const LogicalGet*>(inner_expr.op.get());
      } else if (inner_expr.op->kind() == LogicalKind::kSelect) {
        const Group& below = memo_->group(inner_expr.child_groups[0]);
        if (below.exprs.size() == 1 &&
            below.exprs[0].op->kind() == LogicalKind::kGet) {
          get = static_cast<const LogicalGet*>(below.exprs[0].op.get());
          inner_filter = static_cast<const LogicalSelect&>(*inner_expr.op).predicate();
        }
      }
      if (get == nullptr || !get->rowid_ids().empty()) continue;
      const TableDescriptor* table = get->table();
      if (table->distribution == TableDistribution::kReplicated) continue;
      if (table->IsPartitioned() && table->partition_scheme->num_levels() != 1) {
        continue;
      }
      EquiJoinKeys keys = ExtractEquiJoinKeys(join.predicate(),
                                              outer_group.output_ids,
                                              inner_group.output_ids);
      if (keys.left.empty()) continue;
      // Pick the equi pair usable for routing + index seek.
      int chosen = -1;
      int key_column = -1;
      for (size_t k = 0; k < keys.right.size(); ++k) {
        int column = -1;
        for (size_t c = 0; c < get->column_ids().size(); ++c) {
          if (get->column_ids()[c] == keys.right[k]) {
            column = static_cast<int>(c);
            break;
          }
        }
        if (column < 0) continue;
        if (table->IsPartitioned() &&
            get->PartitionKeyIds()[0] != keys.right[k]) {
          continue;  // must route through f_T on the partitioning key
        }
        if (!table->HasIndexOn(column)) continue;
        chosen = static_cast<int>(k);
        key_column = column;
        break;
      }
      if (chosen < 0) continue;
      // No selector pins may target the inner scan (its spec is subsumed by
      // the per-tuple routing), and the outer side must resolve its own
      // specs; the inner scan's spec is dropped.
      bool pinned_inner = false;
      std::vector<int> outer_pins;
      for (int pin : req.pinned) {
        if (inner_group.scan_ids.count(pin) > 0) {
          pinned_inner = true;
        } else {
          outer_pins.push_back(pin);
        }
      }
      if (pinned_inner) continue;
      std::vector<PartSelectorSpec> outer_specs;
      for (const PartSelectorSpec& spec : req.specs) {
        if (inner_group.scan_ids.count(spec.scan_id) > 0) continue;  // subsumed
        outer_specs.push_back(spec);
      }
      SortSpecs(&outer_specs);

      Request outer_req{DistributionSpec::Replicated(), outer_specs, outer_pins};
      BestPlan outer = OptimizeGroup(side.build_group, outer_req);
      if (!outer.valid) continue;

      // Remaining equi pairs + any residual + the inner filter apply after
      // the lookup.
      std::vector<ExprPtr> residuals;
      for (size_t k = 0; k < keys.left.size(); ++k) {
        if (static_cast<int>(k) == chosen) continue;
        residuals.push_back(MakeComparison(
            CompareOp::kEq,
            MakeColumnRef(keys.left[k], "o", TypeId::kInt64),
            MakeColumnRef(keys.right[k], "i", TypeId::kInt64)));
      }
      residuals.push_back(keys.residual);
      residuals.push_back(inner_filter);

      DistributionSpec delivered = DistributionSpec::Random();
      if (table->distribution == TableDistribution::kHashed) {
        delivered = DistributionSpec::Hashed(get->DistributionKeyIds());
      }
      if (!delivered.Satisfies(req.dist)) continue;

      BestPlan out;
      out.valid = true;
      out.plan = std::make_shared<IndexNLJoinNode>(
          outer.plan, table->oid, get->column_ids(), key_column,
          keys.left[static_cast<size_t>(chosen)], Conj(std::move(residuals)));
      double outer_rows = memo_->group(side.build_group).row_estimate;
      out.cost = outer.cost + outer_rows * 4.0 + out_rows;
      out.delivered = delivered;
      if (!best.valid || out.cost < best.cost) best = std::move(out);
    }
  }

  for (const SideAssignment& side : sides) {
    const Group& build_group = memo_->group(side.build_group);
    const Group& probe_group = memo_->group(side.probe_group);
    EquiJoinKeys keys = ExtractEquiJoinKeys(join.predicate(), build_group.output_ids,
                                            probe_group.output_ids);
    std::vector<ColRefId>& build_keys = keys.left;
    std::vector<ColRefId>& probe_keys = keys.right;

    // Route specs and pins to the side containing each scan; probe-side
    // specs whose partition key is constrained by the join predicate are
    // dynamic-elimination candidates (Algorithm 4).
    std::vector<PartSelectorSpec> build_specs, probe_specs, dpe_candidates;
    for (const PartSelectorSpec& spec : req.specs) {
      if (build_group.scan_ids.count(spec.scan_id) > 0) {
        build_specs.push_back(spec);
        continue;
      }
      PartSelectorSpec augmented = spec;
      std::unordered_set<ColRefId> available(build_group.output_ids.begin(),
                                             build_group.output_ids.end());
      bool useful = options_.enable_dynamic_elimination &&
                    options_.enable_partition_selection &&
                    AugmentSpecFromPredicate(join.predicate(), available, &augmented);
      if (useful) {
        // Fold in static key restrictions from below the join so dynamic and
        // static elimination intersect at the selector.
        CollectStaticPredsBelow(*memo_, side.probe_group, &augmented);
        dpe_candidates.push_back(std::move(augmented));
      } else {
        probe_specs.push_back(spec);
      }
    }
    std::vector<int> build_pins, probe_pins;
    for (int pin : req.pinned) {
      (build_group.scan_ids.count(pin) > 0 ? build_pins : probe_pins).push_back(pin);
    }

    // Two routings when DPE candidates exist: eliminate dynamically (specs
    // move to the build side; scans become pinned on the probe side) or not.
    std::vector<bool> dpe_choices = dpe_candidates.empty() ? std::vector<bool>{false}
                                                           : std::vector<bool>{true,
                                                                               false};
    for (bool use_dpe : dpe_choices) {
      std::vector<PartSelectorSpec> b_specs = build_specs;
      std::vector<PartSelectorSpec> p_specs = probe_specs;
      std::vector<int> p_pins = probe_pins;
      if (use_dpe) {
        for (const auto& cand : dpe_candidates) {
          b_specs.push_back(cand);
          p_pins.push_back(cand.scan_id);
        }
      } else {
        for (const auto& cand : dpe_candidates) {
          PartSelectorSpec original = cand;
          // Recover the pre-augmentation spec from the request.
          for (const auto& spec : req.specs) {
            if (spec.scan_id == cand.scan_id) {
              original = spec;
              break;
            }
          }
          p_specs.push_back(original);
        }
      }
      SortSpecs(&b_specs);
      SortSpecs(&p_specs);
      std::sort(p_pins.begin(), p_pins.end());

      // Distribution alternatives.
      struct DistAlt {
        DistributionSpec build;
        DistributionSpec probe;
        bool delivered_from_probe;
      };
      std::vector<DistAlt> alts;
      if (!build_keys.empty()) {
        alts.push_back({DistributionSpec::Hashed(build_keys),
                        DistributionSpec::Hashed(probe_keys), true});
      }
      alts.push_back({DistributionSpec::Replicated(), DistributionSpec::Any(), true});
      if (join.join_type() == JoinType::kInner) {
        alts.push_back({DistributionSpec::Any(), DistributionSpec::Replicated(),
                        false});
      }

      for (const DistAlt& alt : alts) {
        Request build_req{alt.build, b_specs, build_pins};
        Request probe_req{alt.probe, p_specs, p_pins};
        BestPlan build = OptimizeGroup(side.build_group, build_req);
        if (!build.valid) continue;
        BestPlan probe = OptimizeGroup(side.probe_group, probe_req);
        if (!probe.valid) continue;

        DistributionSpec delivered =
            alt.delivered_from_probe ? probe.delivered : build.delivered;
        if (alt.delivered_from_probe &&
            build.delivered.kind == DistributionSpec::Kind::kReplicated &&
            probe.delivered.kind == DistributionSpec::Kind::kReplicated) {
          delivered = DistributionSpec::Replicated();
        }
        if (!delivered.Satisfies(req.dist)) continue;

        BestPlan out;
        out.valid = true;
        if (!build_keys.empty()) {
          out.plan = std::make_shared<HashJoinNode>(join.join_type(), build_keys,
                                                    probe_keys, keys.residual,
                                                    build.plan, probe.plan);
        } else {
          out.plan = std::make_shared<NestedLoopJoinNode>(
              join.join_type(), join.predicate(), build.plan, probe.plan);
        }
        out.cost = build.cost + probe.cost +
                   kHashBuildRowCost * build_group.row_estimate +
                   probe_group.row_estimate + out_rows;
        if (build_keys.empty()) {
          out.cost += build_group.row_estimate * probe_group.row_estimate * 0.01;
        }
        out.delivered = delivered;
        if (!best.valid || out.cost < best.cost) best = std::move(out);
      }
    }
  }
  return best;
}

std::vector<PartSelectorSpec> CascadesOptimizer::InitialSpecs() const {
  std::vector<PartSelectorSpec> specs;
  for (size_t gid = 0; gid < memo_->size(); ++gid) {
    for (const GroupExpr& expr : memo_->group(static_cast<int>(gid)).exprs) {
      if (expr.scan_id < 0) continue;
      const auto& get = static_cast<const LogicalGet&>(*expr.op);
      PartSelectorSpec spec;
      spec.scan_id = expr.scan_id;
      spec.table_oid = get.table()->oid;
      spec.part_keys = get.PartitionKeyIds();
      spec.part_predicates.assign(spec.part_keys.size(), nullptr);
      specs.push_back(std::move(spec));
    }
  }
  SortSpecs(&specs);
  return specs;
}

Result<PhysPtr> CascadesOptimizer::PlanSelect(const BoundStatement& stmt) {
  (void)stmt;
  Request root_req{DistributionSpec::Singleton(), InitialSpecs(), {}};
  int root_group = static_cast<int>(memo_->size()) - 1;
  BestPlan best = OptimizeGroup(root_group, root_req);
  if (!best.valid) {
    return Status::PlanError("cascades optimizer found no valid plan for statement");
  }
  MPPDB_RETURN_IF_ERROR(ValidateSelectorPlacement(best.plan));
  if (options_.enable_join_filters) {
    return PlaceJoinFilters(best.plan, estimator_);
  }
  return best.plan;
}

Result<PhysPtr> CascadesOptimizer::PlanDml(const BoundStatement& stmt) {
  Request root_req{DistributionSpec::Singleton(), InitialSpecs(), {}};
  int root_group = static_cast<int>(memo_->size()) - 1;
  BestPlan best = OptimizeGroup(root_group, root_req);
  if (!best.valid) {
    return Status::PlanError("cascades optimizer found no valid plan for DML source");
  }
  MPPDB_RETURN_IF_ERROR(ValidateSelectorPlacement(best.plan));
  switch (stmt.kind) {
    case BoundStatement::Kind::kInsert:
      return PhysPtr(std::make_shared<InsertNode>(stmt.target_table->oid,
                                                  stmt.count_output_id, best.plan));
    case BoundStatement::Kind::kUpdate:
      return PhysPtr(std::make_shared<UpdateNode>(
          stmt.target_table->oid, stmt.target_column_ids, stmt.target_rowid_ids,
          stmt.set_items, stmt.count_output_id, best.plan));
    case BoundStatement::Kind::kDelete:
      return PhysPtr(std::make_shared<DeleteNode>(stmt.target_table->oid,
                                                  stmt.target_rowid_ids,
                                                  stmt.count_output_id, best.plan));
    default:
      return Status::PlanError("not a DML statement");
  }
}

Result<PhysPtr> CascadesOptimizer::Plan(const BoundStatement& stmt) {
  memo_ = std::make_unique<Memo>(&estimator_);
  best_.clear();
  last_request_count_ = 0;
  memo_->Insert(NormalizeLogical(stmt.root));
  if (stmt.kind == BoundStatement::Kind::kSelect) return PlanSelect(stmt);
  return PlanDml(stmt);
}

}  // namespace mppdb
