#ifndef MPPDB_OPTIMIZER_CASCADES_MEMO_H_
#define MPPDB_OPTIMIZER_CASCADES_MEMO_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "optimizer/logical.h"
#include "optimizer/stats.h"

namespace mppdb {

/// One logically equivalent expression inside a group: a logical operator
/// whose children are other groups (paper §3.1 / Fig. 13).
struct GroupExpr {
  LogicalPtr op;  ///< children of this node are ignored; use child_groups
  std::vector<int> child_groups;
  /// Partition scan id if `op` is a Get of a partitioned table, else -1.
  int scan_id = -1;
};

/// A set of logically equivalent expressions plus shared logical properties.
struct Group {
  std::vector<GroupExpr> exprs;
  std::vector<ColRefId> output_ids;
  /// Partition scan ids of DynamicScans contained in this subtree.
  std::unordered_set<int> scan_ids;
  double row_estimate = 1.0;
};

/// Compact encoding of the optimizer's search space (paper §3.1): groups of
/// logically equivalent expressions referencing child groups.
class Memo {
 public:
  explicit Memo(const CardinalityEstimator* estimator) : estimator_(estimator) {}

  /// Recursively inserts a logical tree; returns the root group id.
  /// Partitioned-table Gets are assigned scan ids on the way.
  int Insert(const LogicalPtr& node);

  const Group& group(int id) const { return groups_[static_cast<size_t>(id)]; }
  Group& group(int id) { return groups_[static_cast<size_t>(id)]; }
  size_t size() const { return groups_.size(); }

  int next_scan_id() const { return next_scan_id_; }

  /// Debug rendering of all groups.
  std::string ToString() const;

 private:
  const CardinalityEstimator* estimator_;
  std::vector<Group> groups_;
  int next_scan_id_ = 1;
};

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_CASCADES_MEMO_H_
