#ifndef MPPDB_OPTIMIZER_CASCADES_CASCADES_OPTIMIZER_H_
#define MPPDB_OPTIMIZER_CASCADES_CASCADES_OPTIMIZER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/plan.h"
#include "expr/interval.h"
#include "optimizer/cascades/memo.h"
#include "optimizer/distribution.h"
#include "optimizer/part_selector_spec.h"
#include "optimizer/stats.h"

namespace mppdb {

/// The Orca-style optimizer of the paper (§3.1): a Cascades memo with two
/// physical properties per optimization request —
///   * required data distribution (enforced by Motion operators), and
///   * required partition propagation: the PartSelectorSpecs that must be
///     resolved by the plan of a group (enforced by PartitionSelector).
///
/// A request additionally carries `pinned` scan ids: DynamicScans whose
/// selector is placed *above* the group (join-induced dynamic elimination).
/// Motion enforcement is disabled for pinned requests, which is exactly the
/// paper's "no Motion between PartitionSelector, DynamicScan and their
/// lowest common ancestor" constraint; orderings like
/// PartitionSelector(Replicate(Scan(S))) fall out of peeling partition
/// specs before distribution enforcement (paper Fig. 13, requests #8/#6).
///
/// Plans produced here keep one DynamicScan per partitioned table — plan
/// size is independent of partition counts (paper §4.4).
class CascadesOptimizer {
 public:
  struct Options {
    /// When false, PartitionSelectors carry no predicates (select-all), so
    /// every partition is scanned — the paper's Fig. 17 "partition selection
    /// disabled" configuration.
    bool enable_partition_selection = true;
    /// When false, the join-induced pass-through alternative is not
    /// considered (static elimination still applies).
    bool enable_dynamic_elimination = true;
    /// When false, only single-phase aggregation is considered (ablation of
    /// the local/global aggregation split).
    bool enable_two_phase_agg = true;
    /// When false, the Index-Join implementation of the partition-selection
    /// model (paper §2.2) is not considered.
    bool enable_index_join = true;
    /// When false, the post-optimization runtime join-filter placement pass
    /// (optimizer/join_filter_placement.h) is skipped entirely — the cost
    /// gate's off switch. Plans differ only in join-filter annotations.
    bool enable_join_filters = true;
    /// When false, ordered index access paths (DynamicIndexScan for sargable
    /// range seeks, ORDER BY + LIMIT walks, and ungrouped MIN/MAX) and the
    /// fused bounded top-N operator are not considered; plans are exactly
    /// those of the pre-index optimizer.
    bool enable_index_paths = true;
  };

  CascadesOptimizer(const Catalog* catalog, const StorageEngine* storage);
  CascadesOptimizer(const Catalog* catalog, const StorageEngine* storage,
                    Options options);

  /// Optimizes a bound statement into an executable physical plan
  /// (Gather-rooted for SELECT).
  Result<PhysPtr> Plan(const BoundStatement& stmt);

  /// Number of distinct (group, request) optimizations performed for the
  /// last statement (search-effort metric for tests/benches).
  size_t last_request_count() const { return last_request_count_; }

 private:
  struct Request {
    DistributionSpec dist;
    std::vector<PartSelectorSpec> specs;  ///< sorted by scan_id
    std::vector<int> pinned;              ///< sorted scan ids

    std::string Key() const;
  };

  struct BestPlan {
    bool valid = false;
    double cost = 0;
    PhysPtr plan;
    DistributionSpec delivered;
  };

  BestPlan OptimizeGroup(int group_id, const Request& req);
  BestPlan OptimizeExpr(int group_id, const GroupExpr& expr, const Request& req);

  BestPlan ImplementGet(const GroupExpr& expr, const Request& req);
  BestPlan ImplementSelect(int group_id, const GroupExpr& expr, const Request& req);
  BestPlan ImplementJoin(int group_id, const GroupExpr& expr, const Request& req);
  BestPlan ImplementProject(const GroupExpr& expr, const Request& req);
  BestPlan ImplementAgg(const GroupExpr& expr, const Request& req);
  BestPlan ImplementSortLimitValues(const GroupExpr& expr, const Request& req);

  /// An index access-path leaf: the DynamicIndexScan plus, for a partitioned
  /// table whose selector spec is in the request, its PartitionSelector
  /// wrapped in a Sequence. `part_fraction` is the statically surviving
  /// fraction of leaves (cost input); `units` the unit×segment seek count.
  struct IndexLeaf {
    bool valid = false;
    PhysPtr plan;
    double part_fraction = 1.0;
    double units = 1.0;
  };
  IndexLeaf MakeIndexLeaf(const LogicalGet& get, int scan_id,
                          const PhysPtr& scan, const Request& req) const;

  /// Select2IndexSeek: sargable range conjunct over a bare Get with an index
  /// on the tested column → IndexRangeSeek with the full predicate as
  /// residual. `child_req` carries the predicate-augmented selector specs.
  BestPlan ImplementIndexSeek(const GroupExpr& expr, const Request& req,
                              const Request& child_req);

  /// Limit2DynamicIndexScan: ORDER BY key + LIMIT k over a bare Get with an
  /// index on the key → per-partition ordered walks capped at k, gathered
  /// and merged through a bounded top-N heap.
  BestPlan ImplementOrderedIndexLimit(const GroupExpr& limit_expr,
                                      const GroupExpr& sort_expr,
                                      const Request& req);

  /// MinMax2IndexSeek: ungrouped MIN/MAX of an indexed column of a bare Get
  /// → first/last live index entry per unit, gathered under the aggregate.
  BestPlan ImplementMinMaxIndexSeek(const GroupExpr& expr, const Request& req);

  /// Estimated fraction of table rows whose `column` value falls in
  /// `interval` (synopsis-backed when the column range is integral; falls
  /// back to the conjunct's heuristic selectivity).
  double IndexMatchFraction(Oid table_oid, int column, const Interval& interval,
                            const ExprPtr& conjunct) const;

  /// Routes request specs/pins to a unary operator's child (they all live in
  /// the child subtree).
  static Request ForwardToChild(const Request& req, DistributionSpec child_dist);

  Result<PhysPtr> PlanSelect(const BoundStatement& stmt);
  Result<PhysPtr> PlanDml(const BoundStatement& stmt);

  /// Builds the initial PartSelectorSpecs for every partitioned Get in the
  /// memo (predicates empty; they are augmented during request routing).
  std::vector<PartSelectorSpec> InitialSpecs() const;

  double MotionCost(MotionKind kind, double rows) const;

  const Catalog* catalog_;
  const StorageEngine* storage_;
  CardinalityEstimator estimator_;
  Options options_;

  std::unique_ptr<Memo> memo_;
  std::map<std::pair<int, std::string>, BestPlan> best_;
  size_t last_request_count_ = 0;
};

}  // namespace mppdb

#endif  // MPPDB_OPTIMIZER_CASCADES_CASCADES_OPTIMIZER_H_
