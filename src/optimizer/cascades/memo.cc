#include "optimizer/cascades/memo.h"

namespace mppdb {

int Memo::Insert(const LogicalPtr& node) {
  GroupExpr expr;
  expr.op = node;
  Group group;
  for (const auto& child : node->children()) {
    int child_id = Insert(child);
    expr.child_groups.push_back(child_id);
    const Group& child_group = groups_[static_cast<size_t>(child_id)];
    group.scan_ids.insert(child_group.scan_ids.begin(), child_group.scan_ids.end());
  }
  if (node->kind() == LogicalKind::kGet) {
    const auto& get = static_cast<const LogicalGet&>(*node);
    if (get.table()->IsPartitioned()) {
      expr.scan_id = next_scan_id_++;
      group.scan_ids.insert(expr.scan_id);
    }
  }
  group.output_ids = node->OutputIds();
  group.row_estimate = estimator_->EstimateRows(node);
  group.exprs.push_back(std::move(expr));
  groups_.push_back(std::move(group));
  return static_cast<int>(groups_.size()) - 1;
}

std::string Memo::ToString() const {
  std::string out;
  for (size_t i = 0; i < groups_.size(); ++i) {
    out += "Group " + std::to_string(i) + ":\n";
    for (const GroupExpr& expr : groups_[i].exprs) {
      out += "  " + expr.op->Describe() + " [";
      for (size_t c = 0; c < expr.child_groups.size(); ++c) {
        if (c > 0) out += ",";
        out += std::to_string(expr.child_groups[c]);
      }
      out += "]";
      if (expr.scan_id >= 0) out += " scanId=" + std::to_string(expr.scan_id);
      out += "\n";
    }
  }
  return out;
}

}  // namespace mppdb
