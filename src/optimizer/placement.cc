#include "optimizer/placement.h"

#include <unordered_set>

#include "common/macros.h"
#include "common/string_util.h"
#include "expr/constraint_derivation.h"

namespace mppdb {

std::string PartSelectorSpec::ToString() const {
  std::vector<std::string> preds;
  for (const auto& p : part_predicates) {
    preds.push_back(p == nullptr ? "-" : p->ToString());
  }
  return "<scan " + std::to_string(scan_id) + ", table " + std::to_string(table_oid) +
         ", preds [" + Join(preds, "; ") + "]>";
}

namespace {

// The paper's Operator::HasPartScanId helper.
bool HasScanId(const PhysPtr& node, int scan_id) {
  if (node->kind() == PhysNodeKind::kDynamicScan) {
    return static_cast<const DynamicScanNode&>(*node).scan_id() == scan_id;
  }
  if (node->kind() == PhysNodeKind::kDynamicIndexScan) {
    return static_cast<const DynamicIndexScanNode&>(*node).scan_id() == scan_id;
  }
  for (const auto& child : node->children()) {
    if (HasScanId(child, scan_id)) return true;
  }
  return false;
}

// True if DynamicScan `scan_id` is reachable from `node` without crossing a
// Motion boundary — the precondition for feeding it from a selector placed
// in a sibling subtree (paper §3.1).
bool MotionFreePathToScan(const PhysPtr& node, int scan_id) {
  if (node->kind() == PhysNodeKind::kMotion) return false;
  if (node->kind() == PhysNodeKind::kDynamicScan) {
    return static_cast<const DynamicScanNode&>(*node).scan_id() == scan_id;
  }
  if (node->kind() == PhysNodeKind::kDynamicIndexScan) {
    return static_cast<const DynamicIndexScanNode&>(*node).scan_id() == scan_id;
  }
  for (const auto& child : node->children()) {
    if (MotionFreePathToScan(child, scan_id)) return true;
  }
  return false;
}

}  // namespace

bool AugmentSpecFromPredicate(const ExprPtr& pred,
                              const std::unordered_set<ColRefId>& available,
                              PartSelectorSpec* spec) {
  bool any = false;
  for (size_t level = 0; level < spec->part_keys.size(); ++level) {
    ExprPtr found = FindPredOnKey(spec->part_keys[level], pred, available);
    if (found != nullptr) {
      spec->part_predicates[level] = Conj({found, spec->part_predicates[level]});
      any = true;
    }
  }
  return any;
}

PhysPtr MakePartitionSelector(const PartSelectorSpec& spec, PhysPtr child) {
  std::vector<ExprPtr> preds = spec.part_predicates;
  if (child == nullptr) {
    // Standalone selectors keep only statically evaluable conjuncts per
    // level; the remaining constraint is a sound superset.
    for (size_t level = 0; level < preds.size(); ++level) {
      if (preds[level] == nullptr) continue;
      preds[level] = FindPredOnKey(spec.part_keys[level], preds[level], {});
    }
  }
  return std::make_shared<PartitionSelectorNode>(spec.table_oid, spec.scan_id,
                                                 spec.part_keys, std::move(preds),
                                                 std::move(child));
}

namespace {

ExprPtr MakeRef(ColRefId id) {
  return MakeColumnRef(id, "c" + std::to_string(id), TypeId::kInt64);
}

// Reconstructs a join's full predicate (equi-conditions plus residual) as a
// scalar expression so that FindPredOnKey can mine it (Algorithm 4's
// this.Predicate()).
ExprPtr JoinPredicateExpr(const PhysPtr& node) {
  if (node->kind() == PhysNodeKind::kHashJoin) {
    const auto& join = static_cast<const HashJoinNode&>(*node);
    std::vector<ExprPtr> conjuncts;
    for (size_t i = 0; i < join.build_keys().size(); ++i) {
      conjuncts.push_back(MakeComparison(CompareOp::kEq, MakeRef(join.build_keys()[i]),
                                         MakeRef(join.probe_keys()[i])));
    }
    if (join.residual() != nullptr) conjuncts.push_back(join.residual());
    return Conj(std::move(conjuncts));
  }
  MPPDB_CHECK(node->kind() == PhysNodeKind::kNestedLoopJoin);
  return static_cast<const NestedLoopJoinNode&>(*node).predicate();
}

// The paper's EnforcePartSelectors: places each on-top spec either as a
// pass-through selector (its DynamicScan lives elsewhere) or via a Sequence
// with a standalone selector (its DynamicScan is inside `expr`).
PhysPtr EnforcePartSelectors(const std::vector<PartSelectorSpec>& on_top,
                             PhysPtr expr) {
  for (const PartSelectorSpec& spec : on_top) {
    if (HasScanId(expr, spec.scan_id)) {
      PhysPtr selector = MakePartitionSelector(spec, nullptr);
      expr = std::make_shared<SequenceNode>(std::vector<PhysPtr>{selector, expr});
    } else {
      expr = MakePartitionSelector(spec, expr);
    }
  }
  return expr;
}

// ComputePartSelectors dispatch: fills `on_top` and `child_specs` (one list
// per child) for the given operator, per Algorithms 2-4.
void ComputePartSelectors(const PhysPtr& expr, std::vector<PartSelectorSpec> input,
                          std::vector<PartSelectorSpec>* on_top,
                          std::vector<std::vector<PartSelectorSpec>>* child_specs) {
  child_specs->assign(expr->children().size(), {});
  const bool is_join = expr->kind() == PhysNodeKind::kHashJoin ||
                       expr->kind() == PhysNodeKind::kNestedLoopJoin;
  const bool is_filter = expr->kind() == PhysNodeKind::kFilter;

  for (PartSelectorSpec& spec : input) {
    if (!HasScanId(expr, spec.scan_id)) {
      on_top->push_back(std::move(spec));  // Algorithm 2 line 3
      continue;
    }
    if (expr->kind() == PhysNodeKind::kDynamicScan) {
      on_top->push_back(std::move(spec));  // resolved adjacent to the scan
      continue;
    }
    if (is_filter) {
      // Algorithm 3: mine the selection predicate for static conjuncts on
      // the partitioning keys before pushing down.
      const auto& filter = static_cast<const FilterNode&>(*expr);
      AugmentSpecFromPredicate(filter.predicate(), {}, &spec);
      (*child_specs)[0].push_back(std::move(spec));
      continue;
    }
    if (is_join) {
      // Algorithm 4.
      bool defined_in_outer = HasScanId(expr->child(0), spec.scan_id);
      if (defined_in_outer) {
        (*child_specs)[0].push_back(std::move(spec));  // line 9
        continue;
      }
      ExprPtr join_pred = JoinPredicateExpr(expr);
      std::vector<ColRefId> outer_ids = expr->child(0)->OutputIds();
      std::unordered_set<ColRefId> available(outer_ids.begin(), outer_ids.end());
      PartSelectorSpec augmented = spec;
      bool useful = join_pred != nullptr &&
                    AugmentSpecFromPredicate(join_pred, available, &augmented);
      if (useful && MotionFreePathToScan(expr->child(1), spec.scan_id)) {
        // line 16: dynamic elimination — selector goes to the side that
        // executes first.
        (*child_specs)[0].push_back(std::move(augmented));
      } else {
        // line 12, or Motion-safety fallback: resolve near the scan.
        (*child_specs)[1].push_back(std::move(spec));
      }
      continue;
    }
    // Algorithm 2 default: push to the child that defines the scan.
    for (size_t i = 0; i < expr->children().size(); ++i) {
      if (HasScanId(expr->child(i), spec.scan_id)) {
        (*child_specs)[i].push_back(std::move(spec));
        break;
      }
    }
  }
}

}  // namespace

namespace {

void CollectScansAndSelectors(const PhysPtr& node,
                              std::vector<const DynamicScanNode*>* scans,
                              std::unordered_set<int>* selector_ids) {
  if (node->kind() == PhysNodeKind::kDynamicScan) {
    scans->push_back(&static_cast<const DynamicScanNode&>(*node));
    return;
  }
  if (node->kind() == PhysNodeKind::kPartitionSelector) {
    selector_ids->insert(static_cast<const PartitionSelectorNode&>(*node).scan_id());
  }
  for (const auto& child : node->children()) {
    CollectScansAndSelectors(child, scans, selector_ids);
  }
}

}  // namespace

std::vector<PartSelectorSpec> CollectUnresolvedScans(const PhysPtr& plan,
                                                     const Catalog& catalog) {
  std::vector<const DynamicScanNode*> scans;
  std::unordered_set<int> selector_ids;
  CollectScansAndSelectors(plan, &scans, &selector_ids);
  std::vector<PartSelectorSpec> specs;
  for (const DynamicScanNode* scan : scans) {
    if (selector_ids.count(scan->scan_id()) > 0) continue;  // already resolved
    const TableDescriptor* table = catalog.FindTable(scan->table_oid());
    MPPDB_CHECK(table != nullptr && table->IsPartitioned());
    PartSelectorSpec spec;
    spec.scan_id = scan->scan_id();
    spec.table_oid = scan->table_oid();
    for (int key_column : table->PartitionKeyColumns()) {
      spec.part_keys.push_back(scan->column_ids()[static_cast<size_t>(key_column)]);
    }
    spec.part_predicates.assign(spec.part_keys.size(), nullptr);
    specs.push_back(std::move(spec));
  }
  return specs;
}

Result<PhysPtr> PlacePartSelectors(const PhysPtr& expr,
                                   std::vector<PartSelectorSpec> specs,
                                   const Catalog& catalog) {
  std::vector<PartSelectorSpec> on_top;
  std::vector<std::vector<PartSelectorSpec>> child_specs;
  ComputePartSelectors(expr, std::move(specs), &on_top, &child_specs);

  std::vector<PhysPtr> new_children;
  new_children.reserve(expr->children().size());
  for (size_t i = 0; i < expr->children().size(); ++i) {
    MPPDB_ASSIGN_OR_RETURN(PhysPtr new_child,
                           PlacePartSelectors(expr->child(i),
                                              std::move(child_specs[i]), catalog));
    new_children.push_back(std::move(new_child));
  }
  PhysPtr rebuilt = CloneWithChildren(expr, std::move(new_children));
  return EnforcePartSelectors(on_top, std::move(rebuilt));
}

Result<PhysPtr> PlaceAllPartSelectors(const PhysPtr& plan, const Catalog& catalog) {
  std::vector<PartSelectorSpec> specs = CollectUnresolvedScans(plan, catalog);
  MPPDB_ASSIGN_OR_RETURN(PhysPtr placed, PlacePartSelectors(plan, std::move(specs),
                                                            catalog));
  MPPDB_RETURN_IF_ERROR(ValidateSelectorPlacement(placed));
  return placed;
}

namespace {

// Simulated execution-order walk: children left to right, then the node.
// Selector events record completion of OID production; scan events check a
// matching earlier selector in the same slice.
struct PlacementValidator {
  int next_slice = 0;
  // (scan_id, slice) pairs for selectors that have completed.
  std::unordered_set<int64_t> produced;
  Status status = Status::OK();

  static int64_t Key(int scan_id, int slice) {
    return (static_cast<int64_t>(scan_id) << 32) | static_cast<uint32_t>(slice);
  }

  void Walk(const PhysPtr& node, int slice) {
    if (!status.ok()) return;
    for (const auto& child : node->children()) {
      int child_slice = slice;
      if (node->kind() == PhysNodeKind::kMotion) child_slice = ++next_slice;
      Walk(child, child_slice);
    }
    if (node->kind() == PhysNodeKind::kPartitionSelector) {
      const auto& sel = static_cast<const PartitionSelectorNode&>(*node);
      produced.insert(Key(sel.scan_id(), slice));
    } else if (node->kind() == PhysNodeKind::kDynamicScan) {
      const auto& scan = static_cast<const DynamicScanNode&>(*node);
      if (produced.count(Key(scan.scan_id(), slice)) == 0) {
        status = Status::PlanError(
            "DynamicScan (scan id " + std::to_string(scan.scan_id()) +
            ") has no PartitionSelector that runs earlier in its slice");
      }
    } else if (node->kind() == PhysNodeKind::kDynamicIndexScan) {
      const auto& scan = static_cast<const DynamicIndexScanNode&>(*node);
      // scan_id < 0 marks an unpartitioned table: no selector expected.
      if (scan.scan_id() >= 0 &&
          produced.count(Key(scan.scan_id(), slice)) == 0) {
        status = Status::PlanError(
            "DynamicIndexScan (scan id " + std::to_string(scan.scan_id()) +
            ") has no PartitionSelector that runs earlier in its slice");
      }
    }
  }
};

}  // namespace

Status ValidateSelectorPlacement(const PhysPtr& plan) {
  PlacementValidator validator;
  validator.Walk(plan, 0);
  return validator.status;
}

}  // namespace mppdb
